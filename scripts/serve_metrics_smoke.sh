#!/bin/sh
# Serve-metrics smoke: start the daemon, send one optimize over the
# frame protocol, scrape GET /metrics through the HTTP shim with stock
# curl, and assert the exposition (a) carries the required series and
# (b) parses as Prometheus text format 0.0.4 (every non-comment line is
# `name[{labels}] value` with a numeric value).  Exercises exactly the
# path a Prometheus scrape job would.
set -eu

BIN=${BIN:-_build/default/bin/sram_opt.exe}
DIR=$(mktemp -d "${TMPDIR:-/tmp}/serve_metrics_smoke.XXXXXX")
SOCK="$DIR/serve.sock"
SRV_PID=

cleanup() {
    [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null && wait "$SRV_PID" 2>/dev/null
    rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

"$BIN" serve --socket "$SOCK" --flight-dir "$DIR/flight" >"$DIR/serve.log" 2>&1 &
SRV_PID=$!

for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && break
    sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: server socket never appeared"; cat "$DIR/serve.log"; exit 1; }

# Populate request histograms, memo stats and the trace-id path.
"$BIN" query --socket "$SOCK" --capacity 1KB --reduced \
    --trace-id smoke-metrics-1 --json >/dev/null

OUT="$DIR/metrics.txt"
curl -fsS --unix-socket "$SOCK" http://localhost/metrics -o "$OUT"

for series in \
    '^# TYPE sram_opt_serve_requests_total counter' \
    '^sram_opt_serve_requests_total [0-9]' \
    '^sram_opt_serve_e2e_seconds_window{window="10s",quantile="0.99"}' \
    '^sram_opt_serve_e2e_seconds{quantile="0.5"}' \
    '^sram_opt_serve_events_window{event="serve_deadline_expired",window="60s"}' \
    '^sram_opt_memo_hit_rate' \
    '^sram_opt_gc_major_words_total' \
    '^sram_opt_build_info'
do
    grep -q "$series" "$OUT" || {
        echo "FAIL: missing series: $series"
        cat "$OUT"
        exit 1
    }
done

# Format check: every non-empty non-comment line must end in a numeric
# value (exposition floats, integers, or +/-Inf / NaN).
awk '
    /^#/ || NF == 0 { next }
    $NF !~ /^[-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$/ {
        print "FAIL: unparseable metrics line: " $0
        bad = 1
    }
    END { exit bad }
' "$OUT"

# /healthz answers on the same shim; unknown paths are 404.
[ "$(curl -s --unix-socket "$SOCK" http://localhost/healthz)" = "ok" ] || {
    echo "FAIL: /healthz did not answer ok"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' --unix-socket "$SOCK" http://localhost/nope)
[ "$code" = "404" ] || { echo "FAIL: expected 404 for /nope, got $code"; exit 1; }

"$BIN" query --socket "$SOCK" -e shutdown
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=

echo "serve-metrics smoke: OK ($(grep -c '^sram_opt_' "$OUT") samples scraped)"
