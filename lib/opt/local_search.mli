(** Coordinate-descent local search over the co-optimization space.

    The third search strategy (after exhaustive and annealing): cycle the
    four coordinates (V_SSC, n_r, N_pre, N_wr), line-scanning each against
    the others until a full cycle makes no improvement; optionally restart
    from several deterministic seeds.  On this space the objective is
    well-behaved enough that a handful of restarts reaches the exhaustive
    optimum with ~100x fewer evaluations — and unlike annealing the run is
    a fixed, explainable procedure. *)

val search :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?restarts:int ->
  ?w:int ->
  ?journal:Persist.Checkpoint.t ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result
(** Same result shape as {!Exhaustive.search}; [restarts] deterministic
    starting points (default 4).  Evaluations run through the staged
    kernel with per-geometry staging memoized across line scans, and a
    V_SSC line whose admissible bound cannot strictly beat the incumbent
    is skipped whole ([result.pruned] counts skipped lines); the descent
    visits and accepts exactly the same states as the unpruned
    procedure.

    [journal] (default {!Persist.Checkpoint.default}) checkpoints each
    completed restart — the descent from a fixed start is deterministic
    and sequential, so a resumed run replays the journaled restarts
    (candidate and evaluated/pruned deltas included) and recomputes
    only the missing ones, reproducing the uninterrupted result
    exactly. *)
