(** The common search-strategy interface.

    One dispatch point over the five engines, with the common knobs
    (space, objective, budget, deadline, [?rng_seed], [?journal]) in
    one signature.  {!Framework.optimize}, the CLI's
    [optimize --method] and the serve [optimize] endpoint all route
    through {!run}; driving an engine through it is observationally
    identical to calling the engine directly (the backfill tests pin
    the full-sweep checksum [67fd83cd67998ac0] through
    [run Exhaustive]).

    Engine-specific knobs (annealing schedules, population sizes,
    kernels) stay on the engines' own entry points; [run] leaves them
    at their defaults. *)

type t =
  | Exhaustive    (** the bit-deterministic oracle (staged kernel) *)
  | Local_search  (** coordinate descent with deterministic restarts *)
  | Anneal        (** simulated annealing, deterministic per seed *)
  | Nsga2         (** crowded non-dominated GA + descent polish *)
  | Surrogate     (** quadratic model + expected improvement + polish *)

val all : t list

val name : t -> string
(** "exhaustive" / "local" / "anneal" / "nsga2" / "surrogate" — the
    CLI flag values and the wire protocol's spellings. *)

val of_name : string -> t option

val deterministic : t -> bool
(** True when the engine ignores [rng_seed] (exhaustive, local
    search) — the framework cache normalizes the seed away for these
    so repeated queries hit. *)

val default_seed : int
(** 42, matching the CLI's historical [anneal --seed] default. *)

val parse_method : string -> (Space.method_ option * t option) option
(** The [--method] / wire grammar: ["m1"]/["m2"] name a voltage-pin
    policy (strategy unchanged), a strategy name alone picks the
    engine (policy unchanged), ["POLICY:STRATEGY"] (e.g. ["m1:nsga2"])
    sets both.  [None] on anything else.  Case-insensitive. *)

val run :
  t ->
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?kernel:Exhaustive.kernel ->
  ?stage_ctx:Array_model.Array_eval.ctx ->
  ?journal:Persist.Checkpoint.t ->
  ?deadline:float ->
  ?budget:int ->
  ?rng_seed:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result
(** Run one engine with the common knobs.  Per-engine mapping:
    - [Exhaustive] honors everything except [budget]/[rng_seed]
      (it visits the whole space; there is nothing to randomize);
    - [Local_search] honors [journal]; [pool]/[deadline]/[budget]/
      [rng_seed]/[kernel] are not supported by the engine and are
      ignored;
    - [Anneal] honors [rng_seed]; [levels]/[pool]/[journal]/[deadline]/
      [budget]/[kernel] are ignored;
    - [Nsga2]/[Surrogate] honor everything except [kernel]/[journal]
      (they evaluate through the batched scan kernel; their runs are
      cheap to recompute, so nothing is checkpointed).
    All engines return the same {!Exhaustive.result} shape (golden-
    diffed by the backfill tests). *)

val run_front :
  t ->
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?budget:int ->
  ?rng_seed:int ->
  ?deadline:float ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result * Exhaustive.candidate list
(** As {!run} but also the energy-delay Pareto front: exhaustive runs
    unpruned ({!Exhaustive.search_all}) and returns the true front;
    NSGA-II / surrogate return the front over every point they
    scanned; the scalar engines return their single winner. *)
