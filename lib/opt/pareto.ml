let delay (c : Exhaustive.candidate) = c.Exhaustive.metrics.Array_model.Array_eval.d_array
let energy (c : Exhaustive.candidate) = c.Exhaustive.metrics.Array_model.Array_eval.e_total

let objectives c = [| delay c; energy c |]

let dominates a b =
  delay a <= delay b && energy a <= energy b
  && (delay a < delay b || energy a < energy b)

let front candidates =
  (* Sort by delay, then sweep keeping the running energy minimum: a point
     enters the front iff it improves energy over everything faster. *)
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (delay a) (delay b) in
        if c <> 0 then c else compare (energy a) (energy b))
      candidates
  in
  let rec sweep best_energy acc = function
    | [] -> List.rev acc
    | c :: rest ->
      if energy c < best_energy then sweep (energy c) (c :: acc) rest
      else sweep best_energy acc rest
  in
  sweep infinity [] sorted

let knee candidates =
  match front candidates with
  | [] -> None
  | front_members ->
    let delays = List.map delay front_members in
    let energies = List.map energy front_members in
    let dmin = List.fold_left min infinity delays in
    let dmax = List.fold_left max neg_infinity delays in
    let emin = List.fold_left min infinity energies in
    let emax = List.fold_left max neg_infinity energies in
    let span x lo hi = if hi > lo then (x -. lo) /. (hi -. lo) else 0.0 in
    let dist c =
      let dn = span (delay c) dmin dmax in
      let en = span (energy c) emin emax in
      sqrt ((dn *. dn) +. (en *. en))
    in
    let best =
      List.fold_left
        (fun (bc, bd) c ->
          let d = dist c in
          if d < bd then (c, d) else (bc, bd))
        (List.hd front_members, dist (List.hd front_members))
        (List.tl front_members)
    in
    Some (fst best)
