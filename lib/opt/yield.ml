let voltage_grid = 0.010

let snap_up v = ceil ((v /. voltage_grid) -. 1e-9) *. voltage_grid

let cell_of ?(corner = Finfet.Corners.TT) ?(celsius = Finfet.Thermal.t_ref_celsius)
    flavor =
  let lib = Lazy.force Finfet.Library.default in
  let derate d =
    Finfet.Thermal.at_temperature ~celsius (Finfet.Corners.apply corner d)
  in
  Finfet.Variation.nominal_cell
    ~nfet:(derate (Finfet.Library.nfet lib flavor))
    ~pfet:(derate (Finfet.Library.pfet lib flavor))

type levels = {
  vddc_min : float;
  vwl_min : float;
  hsnm_nominal : float;
}

let rsnm_cache :
  (Finfet.Library.flavor * float * float * int, float) Runtime.Memo.t =
  Runtime.Memo.create ~name:"yield.rsnm" ~capacity:1024 ()

let rsnm_at ?(points = 81) ~flavor ~vddc ~vssc () =
  Runtime.Memo.find_or_compute rsnm_cache (flavor, vddc, vssc, points)
    (fun () ->
      let cell = cell_of flavor in
      Sram_cell.Margins.read_snm ~points ~cell
        (Sram_cell.Sram6t.read ~vddc ~vssc ()))

let solve_cache :
  (Finfet.Library.flavor * float * int * Finfet.Corners.corner option
   * float option,
   levels)
  Runtime.Memo.t =
  Runtime.Memo.create ~name:"yield.solve" ~capacity:64 ()

let solve_uncached ?(delta = Finfet.Tech.min_margin) ?(points = 81) ?corner
    ?celsius ~flavor () =
  let cell = cell_of ?corner ?celsius flavor in
  let vdd = Finfet.Tech.vdd_nominal in
  (* RSNM grows monotonically with V_DDC (stronger pull-down feedback). *)
  let rsnm_gap vddc =
    Sram_cell.Margins.read_snm ~points ~cell (Sram_cell.Sram6t.read ~vddc ())
    -. delta
  in
  let vddc_min =
    if rsnm_gap vdd >= 0.0 then vdd
    else snap_up (Numerics.Roots.bisect ~tol:1e-3 rsnm_gap ~lo:vdd ~hi:0.80)
  in
  (* WM(v_wl) = v_wl - minimum flipping level, so the minimum write level
     is one bisection of the flip point away. *)
  let flip =
    Sram_cell.Margins.minimum_flipping_vwl ~cell (Sram_cell.Sram6t.write0 ())
  in
  let vwl_min = max vdd (snap_up (flip +. delta)) in
  let hsnm_nominal = Sram_cell.Margins.hold_snm ~points ~cell vdd in
  { vddc_min; vwl_min; hsnm_nominal }

(* Disk tier (inactive until the CLI sets --cache-dir): yield pins are
   pure functions of the key, so they persist across processes. *)
let disk_cache = Persist.Cache.create ~name:"yield.solve" ()

let disk_key (flavor, delta, points, corner, celsius) =
  Printf.sprintf "%s|%.17g|%d|%s|%s"
    (Finfet.Library.flavor_to_string flavor)
    delta points
    (match corner with None -> "-" | Some c -> Finfet.Corners.name c)
    (match celsius with None -> "-" | Some t -> Printf.sprintf "%.17g" t)

let levels_to_json l =
  Persist.Json.Obj
    [
      ("vddc_min", Persist.Json.Float l.vddc_min);
      ("vwl_min", Persist.Json.Float l.vwl_min);
      ("hsnm_nominal", Persist.Json.Float l.hsnm_nominal);
    ]

let levels_of_json j =
  match
    ( Persist.Json.float_field j "vddc_min",
      Persist.Json.float_field j "vwl_min",
      Persist.Json.float_field j "hsnm_nominal" )
  with
  | Some vddc_min, Some vwl_min, Some hsnm_nominal ->
    Some { vddc_min; vwl_min; hsnm_nominal }
  | _ -> None

let solve ?(delta = Finfet.Tech.min_margin) ?(points = 81) ?corner ?celsius
    ~flavor () =
  Runtime.Memo.find_or_compute_tiered solve_cache
    (flavor, delta, points, corner, celsius)
    ~load:(fun key ->
      Option.bind (Persist.Cache.find disk_cache (disk_key key)) levels_of_json)
    ~store:(fun key levels ->
      Persist.Cache.add disk_cache (disk_key key) (levels_to_json levels))
    (fun () ->
      Runtime.Telemetry.time "yield.solve" (fun () ->
          solve_uncached ~delta ~points ?corner ?celsius ~flavor ()))

let margins_ok ?(delta = Finfet.Tech.min_margin) ?(points = 81) ~flavor ~vddc
    ~vssc ~vwl () =
  let cell = cell_of flavor in
  let vdd = Finfet.Tech.vdd_nominal in
  let hsnm = Sram_cell.Margins.hold_snm ~points ~cell vdd in
  if hsnm < delta then false
  else if rsnm_at ~points ~flavor ~vddc ~vssc () < delta then false
  else begin
    let wm =
      Sram_cell.Margins.write_margin ~cell (Sram_cell.Sram6t.write0 ~vwl ())
    in
    wm >= delta
  end
