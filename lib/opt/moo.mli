(** Multi-objective primitives over raw objective vectors (minimization).

    The NSGA-II selection machinery, factored out SRAM-free so the
    property tests can drive it with arbitrary random point sets.  All
    functions treat [points.(i)] as one candidate's objective vector;
    every vector in a call must have the same dimension. *)

val dominates : float array -> float array -> bool
(** [dominates a b]: [a] is no worse than [b] in every objective and
    strictly better in at least one.  Consistent with
    {!Pareto.dominates} when the vectors are (delay, energy).
    @raise Invalid_argument on dimension mismatch. *)

val fast_nondominated_sort : float array array -> int array
(** Deb's fast non-dominated sort.  Returns [rank] with [rank.(i) = 0]
    for the non-dominated front, [1] for the front once it is removed,
    and so on.  For any pair, [dominates points.(i) points.(j)] implies
    [rank.(i) < rank.(j)] (property-tested). *)

val crowding_distance : float array array -> int array -> float array
(** [crowding_distance points members]: crowding distance of each
    member of one front, aligned with [members] (indices into
    [points]).  Canonical distinct-value formulation: a point on any
    objective's minimum or maximum gets [infinity]; interior points sum
    the normalized gap between the neighboring {e distinct} values per
    objective, so the result is permutation-invariant even with
    duplicate points (property-tested). *)
