(* Sensitivity and Pareto provenance around a found winner.  Cold path:
   a handful of [evaluate] calls per axis, one keep-all enumeration for
   the front. *)

module AE = Array_model.Array_eval

type neighbor = {
  nb_value : float;
  nb_score : float;
  nb_delta : float;
}

type axis = {
  ax_name : string;
  ax_value : float;
  ax_minus : neighbor option;
  ax_plus : neighbor option;
}

let index_of arr x =
  let found = ref None in
  Array.iteri (fun i v -> if v = x && !found = None then found := Some i) arr;
  !found

let sensitivity ?(space = Space.default)
    ?(objective = Objective.Energy_delay_product) ~env ~pins
    ~(winner : Exhaustive.candidate) () =
  let g = winner.Exhaustive.geometry in
  let a = winner.Exhaustive.assist in
  let capacity_bits = Array_model.Geometry.capacity_bits g in
  (* The search's own score for the winner is bit-identical to a fresh
     [evaluate] (kernel identity), so deltas are true finite
     differences of the objective. *)
  let base = Objective.eval objective (AE.evaluate env g a) in
  let probe make value =
    match make () with
    | exception Invalid_argument _ -> None
    | None -> None
    | Some score ->
      Some { nb_value = value; nb_score = score;
             nb_delta = (score -. base) /. base }
  in
  let geometry_axis name value values ~of_index =
    let minus, plus =
      match index_of values value with
      | None -> (None, None)
      | Some i ->
        let at j =
          if j < 0 || j >= Array.length values then None
          else
            probe
              (fun () ->
                match of_index values.(j) with
                | None -> None
                | Some g' ->
                  Some (Objective.eval objective (AE.evaluate env g' a)))
              (float_of_int values.(j))
        in
        (at (i - 1), at (i + 1))
    in
    { ax_name = name; ax_value = float_of_int value;
      ax_minus = minus; ax_plus = plus }
  in
  let nr_axis =
    geometry_axis "n_r" g.Array_model.Geometry.nr space.Space.nr_values
      ~of_index:(fun nr ->
        if
          nr > capacity_bits
          || not (Array_model.Geometry.is_power_of_two (capacity_bits / nr))
        then None
        else
          Some
            (Array_model.Geometry.create ~nr ~nc:(capacity_bits / nr)
               ~w:g.Array_model.Geometry.w
               ~n_pre:g.Array_model.Geometry.n_pre
               ~n_wr:g.Array_model.Geometry.n_wr ()))
  in
  let n_pre_axis =
    geometry_axis "N_pre" g.Array_model.Geometry.n_pre
      space.Space.n_pre_values
      ~of_index:(fun n_pre ->
        Some
          (Array_model.Geometry.create ~nr:g.Array_model.Geometry.nr
             ~nc:g.Array_model.Geometry.nc ~w:g.Array_model.Geometry.w
             ~n_pre ~n_wr:g.Array_model.Geometry.n_wr ()))
  in
  let n_wr_axis =
    geometry_axis "N_wr" g.Array_model.Geometry.n_wr space.Space.n_wr_values
      ~of_index:(fun n_wr ->
        Some
          (Array_model.Geometry.create ~nr:g.Array_model.Geometry.nr
             ~nc:g.Array_model.Geometry.nc ~w:g.Array_model.Geometry.w
             ~n_pre:g.Array_model.Geometry.n_pre ~n_wr ()))
  in
  let vssc_axis =
    let value = a.Array_model.Components.vssc in
    if not pins.Space.vssc_allowed then
      { ax_name = "V_SSC"; ax_value = value; ax_minus = None; ax_plus = None }
    else begin
      let values = space.Space.vssc_values in
      let minus, plus =
        match index_of values value with
        | None -> (None, None)
        | Some i ->
          let at j =
            if j < 0 || j >= Array.length values then None
            else
              probe
                (fun () ->
                  let a' = Space.assist_of pins ~vssc:values.(j) in
                  Some (Objective.eval objective (AE.evaluate env g a')))
                values.(j)
          in
          (at (i - 1), at (i + 1))
      in
      { ax_name = "V_SSC"; ax_value = value; ax_minus = minus;
        ax_plus = plus }
    end
  in
  [ nr_axis; n_pre_axis; n_wr_axis; vssc_axis ]

type provenance = {
  pv_source : string;
  pv_evaluated : int;
  pv_front : Exhaustive.candidate list;
  pv_dominated : int;
  pv_knee : Exhaustive.candidate option;
}

let pareto ?space ?objective ?levels ?pool ?w ~env ~capacity_bits ~method_ ()
    =
  let _, candidates =
    Exhaustive.search_all ?space ?objective ?levels ?pool ?w ~env
      ~capacity_bits ~method_ ()
  in
  let front = Pareto.front candidates in
  let evaluated = List.length candidates in
  { pv_source = "exhaustive (keep-all staged kernel, no pruning)";
    pv_evaluated = evaluated;
    pv_front = front;
    pv_dominated = evaluated - List.length front;
    pv_knee = Pareto.knee candidates }

let energy_rollup (at : AE.attribution) =
  let m = at.AE.at_metrics in
  let read_w = at.AE.at_alpha *. at.AE.at_beta in
  let write_w = at.AE.at_alpha *. (1.0 -. at.AE.at_beta) in
  (* Merge by component name, preserving first-appearance order. *)
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  let add weight (name, e) =
    if not (Hashtbl.mem tbl name) then order := name :: !order;
    Hashtbl.replace tbl name
      ((try Hashtbl.find tbl name with Not_found -> 0.0) +. (weight *. e))
  in
  List.iter (add read_w) at.AE.at_read_energy;
  List.iter (add write_w) at.AE.at_write_energy;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order
  @ [ ("leakage", m.AE.e_leakage) ]
