(* One name, one signature, five engines.

   Everything above lib/opt — {!Framework.optimize}, the CLI's
   [optimize --method], the serve [optimize] endpoint — dispatches on
   this module instead of hard-coding the exhaustive engine.  Each
   engine keeps its own richer entry point (schedules, populations,
   kernels); [run] forwards the common knobs and leaves the rest at
   the engine defaults, so driving an engine through the dispatch is
   observationally identical to calling it directly (the backfill
   tests pin this: the full-sweep checksum 67fd83cd67998ac0 must
   reproduce through [run Exhaustive]). *)

type t =
  | Exhaustive
  | Local_search
  | Anneal
  | Nsga2
  | Surrogate

let all = [ Exhaustive; Local_search; Anneal; Nsga2; Surrogate ]

let name = function
  | Exhaustive -> "exhaustive"
  | Local_search -> "local"
  | Anneal -> "anneal"
  | Nsga2 -> "nsga2"
  | Surrogate -> "surrogate"

let of_name = function
  | "exhaustive" -> Some Exhaustive
  | "local" -> Some Local_search
  | "anneal" -> Some Anneal
  | "nsga2" -> Some Nsga2
  | "surrogate" -> Some Surrogate
  | _ -> None

let deterministic = function
  | Exhaustive | Local_search -> true
  | Anneal | Nsga2 | Surrogate -> false

(* The CLI's and the wire protocol's `method` grammar:
   "m1" / "m2" name a voltage-pin policy, a strategy name alone picks
   the search engine (pin policy unchanged), and "POLICY:STRATEGY"
   (e.g. "m1:nsga2") sets both. *)
let parse_method s =
  let s = String.lowercase_ascii (String.trim s) in
  let pin = function
    | "m1" -> Some Space.M1
    | "m2" -> Some Space.M2
    | _ -> None
  in
  match String.index_opt s ':' with
  | Some i ->
    let left = String.sub s 0 i in
    let right = String.sub s (i + 1) (String.length s - i - 1) in
    (match (pin left, of_name right) with
    | Some p, Some st -> Some (Some p, Some st)
    | _ -> None)
  | None -> (
    match pin s with
    | Some p -> Some (Some p, None)
    | None -> (
      match of_name s with
      | Some st -> Some (None, Some st)
      | None -> None))

let default_seed = 42

let run strategy ?space ?objective ?levels ?pool ?w ?kernel ?stage_ctx
    ?journal ?deadline ?budget ?(rng_seed = default_seed) ~env ~capacity_bits
    ~method_ () =
  match strategy with
  | Exhaustive ->
    Exhaustive.search ?space ?objective ?levels ?pool ?w ?kernel ?stage_ctx
      ?journal ?deadline ~env ~capacity_bits ~method_ ()
  | Local_search ->
    (* The descent is sequential and deterministic; [budget] maps to
       nothing it honors (restarts stay at the engine default) and
       [deadline] is not supported — both documented in the mli. *)
    Local_search.search ?space ?objective ?levels ?w ?journal ~env
      ~capacity_bits ~method_ ()
  | Anneal ->
    Anneal.search ?space ?objective ?w ~seed:rng_seed ~env ~capacity_bits
      ~method_ ()
  | Nsga2 ->
    Nsga2.search ?space ?objective ?levels ?pool ?w ?budget ~seed:rng_seed
      ?deadline ~env ~capacity_bits ~method_ ()
  | Surrogate ->
    Surrogate.search ?space ?objective ?levels ?pool ?w ?budget ~seed:rng_seed
      ?deadline ~env ~capacity_bits ~method_ ()

let run_front strategy ?space ?objective ?levels ?pool ?w ?budget
    ?(rng_seed = default_seed) ?deadline ~env ~capacity_bits ~method_ () =
  match strategy with
  | Exhaustive ->
    let result, all =
      Exhaustive.search_all ?space ?objective ?levels ?pool ?w ~env
        ~capacity_bits ~method_ ()
    in
    (result, Pareto.front all)
  | Nsga2 ->
    Nsga2.search_front ?space ?objective ?levels ?pool ?w ?budget
      ~seed:rng_seed ?deadline ~env ~capacity_bits ~method_ ()
  | Surrogate ->
    Surrogate.search_front ?space ?objective ?levels ?pool ?w ?budget
      ~seed:rng_seed ?deadline ~env ~capacity_bits ~method_ ()
  | Local_search | Anneal ->
    (* Scalar-only engines: the best they can say about the trade-off
       plane is their single winner. *)
    let result =
      run strategy ?space ?objective ?levels ?pool ?w ?budget ~rng_seed
        ?deadline ~env ~capacity_bits ~method_ ()
    in
    (result, [ result.Exhaustive.best ])
