(** Scan-line evaluation cache: the shared substrate of the heuristic
    multi-objective searches ({!Nsga2}, {!Surrogate}).

    Pricing one geometry prices its whole V_SSC line through the
    batched scan kernel ({!Array_model.Array_eval.scan}); this cache
    performs each distinct (n_r, N_pre, N_wr) scan exactly once,
    fills missing lines in parallel ({!Runtime.Pool.parmap},
    index-ordered), and counts every produced scan point in
    [evaluated] — the same unit as the exhaustive oracle's
    [considered], so budget comparisons are honest.

    Everything observable (scores, points, incumbents, fronts) is a
    pure function of the request sequence: bit-identical at any
    [--jobs]. *)

type key = {
  nr_i : int;     (** index into the capacity-filtered n_r values *)
  n_pre_i : int;
  n_wr_i : int;
}

type t

val create :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  counter:string ->
  unit ->
  t
(** An empty cache over the method's effective space (V_SSC collapses
    to [{0}] under M1; n_r filtered to the capacity's valid rows).
    [counter] names the telemetry counter charged per scan point.
    @raise Invalid_argument on a non-power-of-two capacity or an empty
    geometry space. *)

val nv : t -> int
(** Points per line (V_SSC values). *)

val n_nr : t -> int
val n_pre : t -> int
val n_wr : t -> int
val levels : t -> Yield.levels
val pins : t -> Space.pins

val evaluated : t -> int
(** Scan points produced so far. *)

val line_count : t -> int
(** Distinct geometries scanned. *)

val ensure : t -> key list -> unit
(** Scan every not-yet-cached key (missing lines run on the pool;
    incumbent updates fold in request order — deterministic). *)

val score : t -> key -> int -> float
(** Scalar objective at (geometry, vssc index); scans the line on a
    cache miss.  Bit-identical to [Objective.eval] of the completed
    metrics. *)

val point : t -> key -> int -> float * float
(** (d_array, e_total) at (geometry, vssc index). *)

val line_best : t -> key -> int * float
(** The line's scalar-best (vssc index, score). *)

val best : t -> (key * int * float) option
(** Global incumbent over every scanned line: strictly-better score
    wins, ties keep the earlier scan. *)

val candidate : t -> key -> int -> Exhaustive.candidate
(** Materialize full metrics for one point (staged + completed). *)

val descend : t -> key -> key
(** Coordinate descent on g(geometry) = line minimum, cycling
    n_r / N_pre / N_wr with whole-row batch scans until a full cycle
    stops improving; ties keep the incumbent.  A stalled cycle probes
    joint +-1/+-2 steps on every axis pair (pattern search) before
    giving up — the escape move for the coupled (N_pre, N_wr) minima an
    axis-aligned descent sticks on.  The polish step both heuristics
    run after sampling. *)

val descend_edges : t -> key -> key * key
(** Two extra coordinate descents from [start], one on the line-minimum
    of pure delay and one of pure energy, returning the (min-delay,
    min-energy) endpoints reached.  Pulls the front's extreme designs —
    which the scalar polish has no reason to visit — into the cache;
    the step that lifts {!front}'s hypervolume to the bench gate. *)

val front : t -> Exhaustive.candidate list
(** Pareto front (increasing delay) over every scanned point. *)

val result : t -> Exhaustive.result
(** The incumbent packaged in the common result shape
    ([considered = evaluated]: a heuristic decides exactly what it
    scans).
    @raise Invalid_argument if nothing has been evaluated. *)
