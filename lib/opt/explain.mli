(** Why the winner wins: per-axis sensitivity and Pareto provenance.

    The paper's evidence is explanations — breakdowns, trade-off
    curves, sensitivity of EDP to each design axis — not a single
    optimal point.  This module derives those explanations around an
    already-found winner: {!sensitivity} probes the objective one grid
    step along each search axis (finite differences on the same
    [Array_eval.evaluate] the search used, so the numbers are the
    search's own), and {!pareto} re-enumerates the space with the
    record-keeping kernel to report the delay-energy front the winner
    sits on, with provenance (which search produced it, how many
    candidates it dominates). *)

type neighbor = {
  nb_value : float;  (** the neighbor's coordinate (fins, rows, volts) *)
  nb_score : float;  (** objective there *)
  nb_delta : float;  (** (nb_score - winner) / winner *)
}

type axis = {
  ax_name : string;  (** ["n_r"], ["N_pre"], ["N_wr"], ["V_SSC"] *)
  ax_value : float;  (** the winner's coordinate *)
  ax_minus : neighbor option;  (** one grid step down, if valid *)
  ax_plus : neighbor option;   (** one grid step up, if valid *)
}

val sensitivity :
  ?space:Space.t ->
  ?objective:Objective.t ->
  env:Array_model.Array_eval.env ->
  pins:Space.pins ->
  winner:Exhaustive.candidate ->
  unit ->
  axis list
(** One axis per search variable, in the order n_r, N_pre, N_wr,
    V_SSC.  A neighbor is [None] at a grid edge, where the stepped
    geometry is invalid for the capacity, or (for V_SSC under M1) when
    the pin policy forbids the axis.  Evaluations bypass the winner's
    search entirely — a missing neighbor can never change the winner. *)

type provenance = {
  pv_source : string;      (** which search produced the candidates *)
  pv_evaluated : int;      (** candidates materialized *)
  pv_front : Exhaustive.candidate list;  (** by increasing delay *)
  pv_dominated : int;      (** evaluated - |front| *)
  pv_knee : Exhaustive.candidate option;
}

val pareto :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  provenance
(** Full enumeration via [Exhaustive.search_all] (the keep-all kernel
    never prunes, so the front is over every candidate in the space),
    reduced by [Pareto.front]/[Pareto.knee]. *)

val energy_rollup :
  Array_model.Array_eval.attribution -> (string * float) list
(** Each attribution term weighted by its share of Equation (5)'s
    E_total — read terms by [alpha * beta], write terms by
    [alpha * (1 - beta)], components present in both paths merged, plus
    a final ["leakage"] row — for display as fractions of the total.
    (Display arithmetic: bit-exactness lives in the unweighted lists;
    see [Array_eval.attribution_consistent].) *)
