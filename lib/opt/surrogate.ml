(* Scalarized surrogate search: fit a cheap global model of the
   objective over the (normalized) geometry axes, spend evaluations
   where the model says the optimum plausibly hides, and let the
   exhaustive engine handle spaces too small to be worth modeling.

   The response surface is a full quadratic in the three normalized
   geometry coordinates (10 coefficients), least-squares fitted
   ({!Numerics.Lu.solve_least_squares}) to log-scores of every scanned
   line's V_SSC minimum — the V_SSC axis is minimized out exactly by
   the batched line scan ({!Line_cache}), so the model only has to
   capture the geometry landscape, which log-EDP makes near-quadratic.
   Acquisition is expected improvement with a distance-inflated
   uncertainty: sigma(x) = rms residual * (0.1 + distance to the
   nearest sample), so unexplored regions stay attractive even where
   the mean model is confident.  All draws come from one seeded
   {!Numerics.Rng} stream on the calling domain; line evaluations are
   the only parallel work — bit-identical at any [--jobs].

   Like {!Nsga2}, the sampling phase ends with a coordinate-descent
   polish from the incumbent ({!Line_cache.descend}), which drives
   winner-regret against the exhaustive oracle to zero. *)

let check_deadline deadline =
  match deadline with
  | Some d when Runtime.Telemetry.now () > d -> raise Exhaustive.Deadline_exceeded
  | _ -> ()

let default_fallback_threshold = 2048

(* phi(x): quadratic feature vector of the 3 normalized coordinates. *)
let features x =
  [| 1.0; x.(0); x.(1); x.(2);
     x.(0) *. x.(0); x.(1) *. x.(1); x.(2) *. x.(2);
     x.(0) *. x.(1); x.(0) *. x.(2); x.(1) *. x.(2) |]

let predict coeffs x =
  let phi = features x in
  let acc = ref 0.0 in
  Array.iteri (fun i c -> acc := !acc +. (c *. phi.(i))) coeffs;
  !acc

let normal_pdf z = exp (-0.5 *. z *. z) /. sqrt (2.0 *. Float.pi)

let search_front ?space ?objective ?levels ?pool ?w ?(init = 16)
    ?(iterations = 48) ?budget ?(seed = 42)
    ?(fallback_threshold = default_fallback_threshold) ?deadline ~env
    ~capacity_bits ~method_ () =
  let space_v = match space with Some s -> s | None -> Space.default in
  let size = Space.size ?w space_v ~capacity_bits method_ in
  if size <= fallback_threshold then begin
    (* Below the threshold the exhaustive engine is cheaper than any
       model: run it outright (unpruned, so the full candidate list
       feeds the front). *)
    let result, all =
      Exhaustive.search_all ?space ?objective ?levels ?pool ?w ~env
        ~capacity_bits ~method_ ()
    in
    (result, Pareto.front all)
  end
  else begin
    let pool = match pool with Some p -> p | None -> Runtime.Pool.default () in
    let lc =
      Line_cache.create ?space ?objective ?levels ~pool ?w ~env ~capacity_bits
        ~method_ ~counter:"surrogate.search" ()
    in
    let nv = Line_cache.nv lc in
    let n_nr = Line_cache.n_nr lc in
    let n_np = Line_cache.n_pre lc in
    let n_nw = Line_cache.n_wr lc in
    let n_geoms = n_nr * n_np * n_nw in
    let budget =
      match budget with
      | Some b -> b
      | None -> max ((init + iterations + 8) * nv) (n_geoms * nv * 2 / 100)
    in
    let sample_budget = budget * 3 / 5 in
    let rng = Numerics.Rng.create ~seed in
    let key_of_index i =
      { Line_cache.nr_i = i mod n_nr;
        n_pre_i = i / n_nr mod n_np;
        n_wr_i = i / (n_nr * n_np) }
    in
    let index_of_key (k : Line_cache.key) =
      k.Line_cache.nr_i + (n_nr * (k.Line_cache.n_pre_i + (n_np * k.Line_cache.n_wr_i)))
    in
    let coord dim i =
      if dim <= 1 then 0.5 else float_of_int i /. float_of_int (dim - 1)
    in
    let x_of_key (k : Line_cache.key) =
      [| coord n_nr k.Line_cache.nr_i;
         coord n_np k.Line_cache.n_pre_i;
         coord n_nw k.Line_cache.n_wr_i |]
    in
    (* Initial design: half low-discrepancy (per-axis irrational
       strides, the local search's restart idiom), half uniform draws —
       distinct keys, deterministic. *)
    let initial =
      let n = max init 10 in
      let seen = Hashtbl.create 32 in
      let acc = ref [] in
      let add k =
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          acc := k :: !acc
        end
      in
      let pick dim stride j =
        let frac =
          Float.rem ((float_of_int j *. stride) +. (0.5 *. stride)) 1.0
        in
        min (dim - 1) (int_of_float (frac *. float_of_int dim))
      in
      for j = 0 to (n / 2) - 1 do
        add
          { Line_cache.nr_i = pick n_nr 0.754877 j;
            n_pre_i = pick n_np 0.569840 j;
            n_wr_i = pick n_nw 0.914107 j }
      done;
      let guard = ref 0 in
      while List.length !acc < n && !guard < 100 * n do
        incr guard;
        add (key_of_index (Numerics.Rng.int_below rng n_geoms))
      done;
      List.rev !acc
    in
    Line_cache.ensure lc initial;
    let sampled = Hashtbl.create 64 in
    List.iter (fun k -> Hashtbl.replace sampled (index_of_key k) k) initial;
    let sampled_list () =
      Hashtbl.fold (fun i k acc -> (i, k) :: acc) sampled []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let it = ref 0 in
    let stop = ref false in
    while (not !stop) && !it < iterations do
      check_deadline deadline;
      if Line_cache.evaluated lc + nv > sample_budget then stop := true
      else begin
        let samples = sampled_list () in
        let m = List.length samples in
        let next =
          let fitted =
            try
              let rows =
                Array.of_list
                  (List.map (fun (_, k) -> features (x_of_key k)) samples)
              in
              let ys =
                Array.of_list
                  (List.map
                     (fun (_, k) -> log (snd (Line_cache.line_best lc k)))
                     samples)
              in
              if m < Array.length rows.(0) then None
              else
                let coeffs =
                  Numerics.Lu.solve_least_squares (Numerics.Matrix.of_arrays rows) ys
                in
                let resid = ref 0.0 in
                List.iteri
                  (fun j (_, k) ->
                    let r = ys.(j) -. predict coeffs (x_of_key k) in
                    resid := !resid +. (r *. r))
                  samples;
                let s = sqrt (!resid /. float_of_int m) in
                Some (coeffs, Float.max s 1e-6)
            with Numerics.Lu.Singular -> None
          in
          match fitted with
          | None ->
            (* Degenerate fit: spend the evaluation on exploration. *)
            let guard = ref 0 in
            let k = ref (key_of_index (Numerics.Rng.int_below rng n_geoms)) in
            while Hashtbl.mem sampled (index_of_key !k) && !guard < 1000 do
              incr guard;
              k := key_of_index (Numerics.Rng.int_below rng n_geoms)
            done;
            if Hashtbl.mem sampled (index_of_key !k) then None else Some !k
          | Some (coeffs, s) ->
            let f_best =
              match Line_cache.best lc with
              | Some (_, _, b) -> log b
              | None -> infinity
            in
            let xs = List.map (fun (_, k) -> x_of_key k) samples in
            let best_ei = ref neg_infinity in
            let best_key = ref None in
            for i = 0 to n_geoms - 1 do
              if not (Hashtbl.mem sampled i) then begin
                let k = key_of_index i in
                let x = x_of_key k in
                let mu = predict coeffs x in
                let dmin =
                  List.fold_left
                    (fun acc xo ->
                      let dx = x.(0) -. xo.(0)
                      and dy = x.(1) -. xo.(1)
                      and dz = x.(2) -. xo.(2) in
                      Float.min acc
                        (sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz))))
                    infinity xs
                in
                let sigma = (s *. (0.1 +. dmin)) +. 1e-12 in
                let z = (f_best -. mu) /. sigma in
                let ei =
                  ((f_best -. mu) *. Numerics.Stats.normal_cdf z)
                  +. (sigma *. normal_pdf z)
                in
                if ei > !best_ei then begin
                  best_ei := ei;
                  best_key := Some k
                end
              end
            done;
            !best_key
        in
        (match next with
        | None -> stop := true
        | Some k ->
          Line_cache.ensure lc [ k ];
          Hashtbl.replace sampled (index_of_key k) k);
        incr it
      end
    done;
    (* Polish: coordinate descent from the incumbent. *)
    check_deadline deadline;
    (match Line_cache.best lc with
    | Some (k, _, _) ->
      let k' = Line_cache.descend lc k in
      ignore (Line_cache.descend_edges lc k')
    | None -> ());
    (Line_cache.result lc, Line_cache.front lc)
  end

let search ?space ?objective ?levels ?pool ?w ?init ?iterations ?budget ?seed
    ?fallback_threshold ?deadline ~env ~capacity_bits ~method_ () =
  fst
    (search_front ?space ?objective ?levels ?pool ?w ?init ?iterations ?budget
       ?seed ?fallback_threshold ?deadline ~env ~capacity_bits ~method_ ())
