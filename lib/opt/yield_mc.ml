type config = {
  k : float;
  samples : int;
  sigma_vt : float;
  seed : int;
  points : int;
}

let default_config =
  { k = 3.0; samples = 25; sigma_vt = Finfet.Variation.sigma_vt_default;
    seed = 7; points = 31 }

let devices_of flavor =
  let lib = Lazy.force Finfet.Library.default in
  (Finfet.Library.nfet lib flavor, Finfet.Library.pfet lib flavor)

let mu_minus_k_sigma cfg values = Numerics.Stats.mu_minus_k_sigma values ~k:cfg.k

(* Batch size of the chunked (pool) sampling path.  Fixed — independent
   of the pool's job count — so the concatenated sample stream, and with
   it every solved pin, is identical for 1, 2 or N jobs. *)
let batch_samples = 8

let batch_seed base index = base + (1021 * (index + 1))

let concat_samples parts =
  let field f =
    Array.concat (List.map f (Array.to_list parts))
  in
  { Sram_cell.Montecarlo.hsnm = field (fun s -> s.Sram_cell.Montecarlo.hsnm);
    rsnm = field (fun s -> s.Sram_cell.Montecarlo.rsnm);
    wm = field (fun s -> s.Sram_cell.Montecarlo.wm) }

(* Draw the margin samples for one constraint evaluation.  Without a
   pool this is the original single-stream draw; with a pool the draws
   split into fixed-size batches with per-batch RNG streams keyed by
   (seed, batch index), evaluated in parallel and concatenated in batch
   order. *)
let samples_at ?pool cfg ~flavor ~vddc ~vssc ~vwl =
  let nfet, pfet = devices_of flavor in
  let draw ~seed ~n =
    Sram_cell.Montecarlo.sample_margins ~sigma_vt:cfg.sigma_vt
      ~points:cfg.points ~seed ~n ~nfet ~pfet
      ~read_condition:(Sram_cell.Sram6t.read ~vddc ~vssc ())
      ~write_condition:(Sram_cell.Sram6t.write0 ~vwl ())
      ()
  in
  match pool with
  | None -> draw ~seed:cfg.seed ~n:cfg.samples
  | Some pool ->
    let batches = (cfg.samples + batch_samples - 1) / batch_samples in
    let parts =
      Runtime.Pool.parmap ~chunk:1 pool
        (fun b ->
          let n = min batch_samples (cfg.samples - (b * batch_samples)) in
          draw ~seed:(batch_seed cfg.seed b) ~n)
        (Array.init batches (fun b -> b))
    in
    concat_samples parts

(* One constraint evaluation: sample margins at the given rails. *)
let sample_worst ?pool cfg ~flavor ~vddc ~vssc ~vwl =
  let samples = samples_at ?pool cfg ~flavor ~vddc ~vssc ~vwl in
  min
    (mu_minus_k_sigma cfg samples.Sram_cell.Montecarlo.hsnm)
    (min
       (mu_minus_k_sigma cfg samples.Sram_cell.Montecarlo.rsnm)
       (mu_minus_k_sigma cfg samples.Sram_cell.Montecarlo.wm))

type key = {
  k_flavor : Finfet.Library.flavor;
  k_vddc : float;
  k_vssc : float;
  k_vwl : float;
  k_cfg : config;
  k_chunked : bool;  (* chunked (pool) draws use a different stream *)
}

let cache : (key, float) Runtime.Memo.t =
  Runtime.Memo.create ~name:"yield_mc.worst_margin" ~capacity:512 ()

let worst_margin ?(config = default_config) ?pool ~flavor ~vddc ~vssc ~vwl () =
  let key =
    { k_flavor = flavor; k_vddc = vddc; k_vssc = vssc; k_vwl = vwl;
      k_cfg = config; k_chunked = pool <> None }
  in
  Runtime.Memo.find_or_compute cache key (fun () ->
      Runtime.Telemetry.time "yield_mc.worst_margin" (fun () ->
          sample_worst ?pool config ~flavor ~vddc ~vssc ~vwl))

type levels = {
  vddc_min : float;
  vwl_min : float;
  achieved_margin : float;
}

(* Grid walk upward on the 10 mV grid until the per-margin k-sigma
   condition holds; the margins' means are monotone in their own voltage,
   so the first passing grid point is the minimum. *)
let grid_search ~lo ~hi passes =
  let rec walk v =
    if v > hi then hi
    else if passes v then v
    else walk (v +. Yield.voltage_grid)
  in
  walk lo

let solve ?(config = default_config) ?pool ~flavor () =
  let margins_at ~vddc ~vwl =
    samples_at ?pool config ~flavor ~vddc ~vssc:0.0 ~vwl
  in
  let vdd = Finfet.Tech.vdd_nominal in
  (* RSNM pins V_DDC (WL level is irrelevant to the read distribution). *)
  let vddc_min =
    grid_search ~lo:vdd ~hi:0.80 (fun vddc ->
        let s = margins_at ~vddc ~vwl:vdd in
        mu_minus_k_sigma config s.Sram_cell.Montecarlo.rsnm >= 0.0)
  in
  (* WM pins V_WL. *)
  let vwl_min =
    grid_search ~lo:vdd ~hi:0.85 (fun vwl ->
        let s = margins_at ~vddc:vddc_min ~vwl in
        mu_minus_k_sigma config s.Sram_cell.Montecarlo.wm >= 0.0)
  in
  { vddc_min;
    vwl_min;
    achieved_margin =
      worst_margin ~config ?pool ~flavor ~vddc:vddc_min ~vssc:0.0
        ~vwl:vwl_min () }
