(** Exhaustive search over the co-optimization space.

    With V_DDC / V_WL pinned by yield, "only four variables with
    relatively small ranges are left, [so] we can derive the minimum
    energy-delay product point ... using an exhaustive search"
    (Section 5).  Every candidate is priced through the analytic array
    model; the search is deterministic. *)

type candidate = {
  geometry : Array_model.Geometry.t;
  assist : Array_model.Components.assist;
  metrics : Array_model.Array_eval.metrics;
  score : float;
}

type result = {
  best : candidate;
  evaluated : int;
  levels : Yield.levels;
  pins : Space.pins;
}

val search :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  result
(** Find the minimum-objective design for the environment's cell flavor.
    [levels] overrides the yield-driven V_DDC / V_WL pins (default: solve
    them with {!Yield.solve}; pass Monte-Carlo-derived pins from
    {!Yield_mc} for the k-sigma constraint formulation).
    [pool] (default {!Runtime.Pool.default}) evaluates geometry chunks
    on worker domains; the index-ordered reduction makes the result —
    winner, tie-breaking and all — bit-identical to the sequential scan
    for any job count.
    @raise Invalid_argument if the capacity is not a power of two or no
    geometry candidate exists. *)

val search_all :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  result * candidate list
(** As {!search} but also returns every evaluated candidate (input to
    Pareto-front extraction and ablations).  Memory: one record per
    design point. *)
