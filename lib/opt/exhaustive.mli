(** Exhaustive search over the co-optimization space.

    With V_DDC / V_WL pinned by yield, "only four variables with
    relatively small ranges are left, [so] we can derive the minimum
    energy-delay product point ... using an exhaustive search"
    (Section 5).  Every candidate is priced through the analytic array
    model; the search is deterministic.

    Two evaluation kernels are available.  [`Staged] (the default)
    factors each evaluation through {!Array_model.Array_eval.stage} /
    [complete] — geometry work once per geometry, assist work once per
    assist — and skips a geometry's whole vssc scan when its admissible
    lower bound ({!Array_model.Array_eval.bound_metrics}) strictly
    exceeds a score already published by another worker.  [`Reference]
    prices every candidate with {!Array_model.Array_eval.evaluate} and
    never prunes.  Both return bit-identical winners; [`Reference]
    exists as the oracle for the kernel benchmark and tests. *)

type candidate = {
  geometry : Array_model.Geometry.t;
  assist : Array_model.Components.assist;
  metrics : Array_model.Array_eval.metrics;
  score : float;
}

type result = {
  best : candidate;
  evaluated : int;
  (** Model evaluations actually performed (telemetry-backed count, not
      the [geometries x vssc_values] product — pruned scans don't
      evaluate). *)
  pruned : int;
  (** Whole vssc scans skipped by the admissible bound.  Timing-dependent
      under parallelism (a worker prunes against whatever has been
      published when it looks); the winner is not. *)
  skipped : int;
  (** Individual scan points abandoned mid-line when a suffix
      envelope's bound exceeded the tightened incumbent.  Like
      [pruned], timing-dependent; [evaluated + skipped + pruned x
      scan-length] always accounts for the whole space. *)
  considered : int;
  (** The full [geometries x vssc_values] product: every point the
      search decided, whether by evaluating it or by covering it with
      an admissible bound.  Deterministic (unlike the three counters
      above), so [considered / wall] is the throughput measure that
      stays comparable across kernels with different pruning power. *)
  levels : Yield.levels;
  pins : Space.pins;
}

type kernel = [ `Staged | `Reference ]

exception Deadline_exceeded
(** Raised by {!search} when its [deadline] passes mid-sweep.  The
    search leaves no partial state behind (nothing is memoized or
    journaled for the aborted run), so the caller — the serving loop —
    reports a timeout and stays healthy. *)

val search :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?kernel:kernel ->
  ?stage_ctx:Array_model.Array_eval.ctx ->
  ?journal:Persist.Checkpoint.t ->
  ?deadline:float ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  result
(** Find the minimum-objective design for the environment's cell flavor.
    [levels] overrides the yield-driven V_DDC / V_WL pins (default: solve
    them with {!Yield.solve}; pass Monte-Carlo-derived pins from
    {!Yield_mc} for the k-sigma constraint formulation).
    [pool] (default {!Runtime.Pool.default}) evaluates geometry chunks
    on worker domains; the index-ordered reduction makes the result —
    winner, tie-breaking and all — bit-identical to the sequential scan
    for any job count.  [kernel] selects the evaluation path (default
    [`Staged]).

    [stage_ctx] shares staged-geometry work across searches: a sweep
    passes one {!Array_model.Array_eval.ctx} per environment so the
    geometry grids the capacities and configs have in common stage only
    once.  Ignored when its environment is not (physically) the
    search's [env]; when absent the process-wide registered context for
    [env] is used, so sharing happens by default.

    [journal] (default {!Persist.Checkpoint.default}, i.e. the CLI's
    [--checkpoint] file when set) switches the sweep to fixed chunks of
    [checkpoint_every] geometries, journaling each completed chunk's
    winner.  A resumed journal skips completed chunks and folds their
    stored winners back in; because the chunked reduction is the same
    order-respecting fold as the flat one and candidates round-trip
    through JSON bit-exactly, the resumed winner is bit-identical to an
    uninterrupted run's at any [--jobs] (see DESIGN.md §8).

    [deadline] — absolute {!Runtime.Telemetry.now} seconds — aborts the
    sweep with {!Deadline_exceeded} once passed, checked before every
    geometry scan (one scan is microseconds, so expiry is prompt).
    @raise Invalid_argument if the capacity is not a power of two or no
    geometry candidate exists. *)

val search_all :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?kernel:kernel ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  result * candidate list
(** As {!search} but also returns every evaluated candidate (input to
    Pareto-front extraction and ablations).  Never prunes — the full
    candidate list is the contract — so [result.pruned] is 0 and
    [result.evaluated] covers the whole space.  Never journals (the
    full candidate list is too large to checkpoint usefully).  Memory:
    one record per design point. *)

(** {2 Checksums and codecs}

    Shared by the bench harness, the checkpoint journal and the
    framework disk cache. *)

val checksum : result list -> string
(** FNV-1a 64-bit hex digest over each chosen design's geometry, vssc,
    score and EDP bits.  Excludes [evaluated]/[pruned] (timing-dependent
    under parallelism).  Two sweeps that pick the same designs
    bit-for-bit produce equal checksums. *)

val candidate_to_json : candidate -> Persist.Json.t
val candidate_of_json : Persist.Json.t -> candidate option
(** Bit-exact round-trip: floats are emitted with 17 significant
    digits, so [candidate_of_json (candidate_to_json c) = Some c]
    including every float bit. *)

val result_to_json : result -> Persist.Json.t
val result_of_json : Persist.Json.t -> result option
val levels_to_json : Yield.levels -> Persist.Json.t
val levels_of_json : Persist.Json.t -> Yield.levels option
