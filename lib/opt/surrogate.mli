(** Scalarized surrogate search (quadratic model + expected improvement).

    Models log(objective at each geometry's V_SSC-minimum) as a full
    quadratic in the three normalized geometry coordinates, fitted by
    least squares over every scanned line; acquisition is expected
    improvement with a distance-inflated uncertainty, maximized exactly
    over the unscanned grid.  V_SSC never enters the model — the
    batched line scan ({!Line_cache}) minimizes that axis exactly.
    Ends with a coordinate-descent polish from the incumbent.  Below
    [fallback_threshold] design points the exhaustive engine runs
    outright instead (modeling a space that small costs more than
    scanning it).

    Deterministic per seed and bit-identical at any [--jobs] (one RNG
    stream on the calling domain; parallel work is pure line scans). *)

val default_fallback_threshold : int
(** 2048 design points. *)

val search_front :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?init:int ->
  ?iterations:int ->
  ?budget:int ->
  ?seed:int ->
  ?fallback_threshold:int ->
  ?deadline:float ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result * Exhaustive.candidate list
(** The common result shape plus the Pareto front over every scanned
    point (on the fallback path: the true front).  [init] (default 16)
    initial lines — half low-discrepancy, half seeded-uniform;
    [iterations] (default 48) acquisition steps at most; [budget] caps
    scan points (default [max ((init + iterations + 8) * nv) (2% of
    the space)]), sampling stops at 60% of it and the rest feeds the
    polish.  [deadline] raises {!Exhaustive.Deadline_exceeded} between
    acquisitions. *)

val search :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?init:int ->
  ?iterations:int ->
  ?budget:int ->
  ?seed:int ->
  ?fallback_threshold:int ->
  ?deadline:float ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result
(** {!search_front} without materializing the front. *)
