(* Shared evaluation substrate for the heuristic multi-objective
   searches ({!Nsga2}, {!Surrogate}).

   Both algorithms decide *geometries*; pricing one geometry prices its
   whole V_SSC line for free through the batched scan kernel
   ({!Array_model.Array_eval.scan}).  This module caches those lines —
   one scan per distinct (n_r, N_pre, N_wr) ever touched — and accounts
   evaluations honestly: [evaluated] counts every scan point produced,
   which is exactly what the exhaustive oracle's [considered] counts,
   so the bench's "evaluations used vs exhaustive" comparison is
   apples-to-apples.

   Determinism: a line's contents depend only on (env, space, pins,
   geometry) — never on job count or arrival order — and the fill path
   runs missing keys through {!Runtime.Pool.parmap}, whose index-
   ordered results make the incumbent fold below bit-identical at any
   [--jobs].  Everything the calling algorithms observe (scores,
   points, bests) is therefore a pure function of the key sequence they
   request. *)

type key = {
  nr_i : int;
  n_pre_i : int;
  n_wr_i : int;
}

type line = {
  l_e : float array;
  l_d : float array;
  l_edp : float array;
  l_best_i : int;      (* argmin of the scalar objective on this line *)
  l_best_score : float;
}

type t = {
  env : Array_model.Array_eval.env;
  objective : Objective.t;
  w : int;
  capacity_bits : int;
  levels : Yield.levels;
  pins : Space.pins;
  space : Space.t;
  vssc_values : float array;
  assists : Array_model.Components.assist array;
  prepared : Array_model.Array_eval.prepared array;
  nr_values : int array;  (* filtered to the capacity's valid rows *)
  pool : Runtime.Pool.t option;
  lines : (key, line) Hashtbl.t;
  mutable evaluated : int;
  (* Global incumbent over every scanned line, maintained in request
     order (deterministic): strictly-better-score wins, ties keep the
     earlier line. *)
  mutable best : (key * int * float) option;
  counter : Runtime.Telemetry.counter;
}

let scan_buf = Runtime.Pool.local Array_model.Array_eval.scan_buffer

let create ?(space = Space.default)
    ?(objective = Objective.Energy_delay_product) ?levels ?pool ?(w = 64)
    ~env ~capacity_bits ~method_ ~counter () =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Line_cache.create: capacity must be a power of two";
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels = match levels with Some l -> l | None -> Yield.solve ~flavor () in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  let nr_values =
    Array.of_list
      (List.filter
         (fun nr ->
           nr <= capacity_bits
           && Array_model.Geometry.is_power_of_two (capacity_bits / nr))
         (Array.to_list space.Space.nr_values))
  in
  if Array.length nr_values = 0 then
    invalid_arg "Line_cache.create: empty geometry space";
  let assists =
    Array.map (fun vssc -> Space.assist_of pins ~vssc) vssc_values
  in
  let prepared = Array.map (Array_model.Array_eval.prepare env) assists in
  { env; objective; w; capacity_bits; levels; pins; space; vssc_values;
    assists; prepared; nr_values; pool;
    lines = Hashtbl.create 256; evaluated = 0; best = None;
    counter = Runtime.Telemetry.counter counter }

let nv t = Array.length t.vssc_values
let n_nr t = Array.length t.nr_values
let n_pre t = Array.length t.space.Space.n_pre_values
let n_wr t = Array.length t.space.Space.n_wr_values
let levels t = t.levels
let pins t = t.pins
let evaluated t = t.evaluated
let line_count t = Hashtbl.length t.lines

let geometry_of t k =
  let nr = t.nr_values.(k.nr_i) in
  Array_model.Geometry.create ~nr ~nc:(t.capacity_bits / nr) ~w:t.w
    ~n_pre:t.space.Space.n_pre_values.(k.n_pre_i)
    ~n_wr:t.space.Space.n_wr_values.(k.n_wr_i)
    ()

(* The scalar objective read off the scan buffers, bit-identical to
   [Objective.eval] of the completed metrics (ED^2 left-associates as
   edp *. d — the kernel contract the local search also relies on). *)
let score_of_line l objective i =
  match objective with
  | Objective.Energy_delay_product -> l.l_edp.(i)
  | Objective.Energy_delay_squared -> l.l_edp.(i) *. l.l_d.(i)
  | Objective.Energy_only -> l.l_e.(i)
  | Objective.Delay_only -> l.l_d.(i)

let scan_line t k =
  let st = Array_model.Array_eval.stage t.env (geometry_of t k) in
  let buf = Runtime.Pool.get_local scan_buf in
  Array_model.Array_eval.scan st t.prepared buf;
  let dim = nv t in
  let open Array_model.Array_eval in
  let l =
    { l_e = Array.sub (scan_e_total buf) 0 dim;
      l_d = Array.sub (scan_d_array buf) 0 dim;
      l_edp = Array.sub (scan_edp buf) 0 dim;
      l_best_i = 0;
      l_best_score = 0.0 }
  in
  let best_i = ref 0 in
  let best_s = ref (score_of_line l t.objective 0) in
  for i = 1 to dim - 1 do
    let s = score_of_line l t.objective i in
    if s < !best_s then begin
      best_i := i;
      best_s := s
    end
  done;
  { l with l_best_i = !best_i; l_best_score = !best_s }

(* Fill every missing key, scanning in parallel but folding incumbents
   in the (deterministic) request order. *)
let ensure t keys =
  let missing =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun k ->
        if Hashtbl.mem t.lines k || Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      keys
  in
  if missing <> [] then begin
    let keys = Array.of_list missing in
    let lines =
      match t.pool with
      | Some pool -> Runtime.Pool.parmap ~chunk:1 pool (scan_line t) keys
      | None -> Array.map (scan_line t) keys
    in
    let dim = nv t in
    Array.iteri
      (fun i k ->
        let l = lines.(i) in
        Hashtbl.add t.lines k l;
        t.evaluated <- t.evaluated + dim;
        Runtime.Telemetry.add t.counter dim;
        Obs.Progress.add_evals dim;
        let improved =
          match t.best with
          | None -> true
          | Some (_, _, s) -> l.l_best_score < s
        in
        if improved then t.best <- Some (k, l.l_best_i, l.l_best_score))
      keys
  end

let line t k =
  ensure t [ k ];
  Hashtbl.find t.lines k

let score t k i = score_of_line (line t k) t.objective i
let point t k i =
  let l = line t k in
  (l.l_d.(i), l.l_e.(i))

let line_best t k =
  let l = line t k in
  (l.l_best_i, l.l_best_score)

let best t = t.best

let candidate t k i =
  let st = Array_model.Array_eval.stage t.env (geometry_of t k) in
  let metrics = Array_model.Array_eval.complete st t.prepared.(i) in
  { Exhaustive.geometry = Array_model.Array_eval.staged_geometry st;
    assist = t.assists.(i);
    metrics;
    score = score t k i }

(* Coordinate descent on the vssc-minimized landscape g(geometry) =
   min over the line — each coordinate move prices a whole row of
   lines, cycled until a full cycle stops improving.  Deterministic:
   ties keep the incumbent index.  The polish step both heuristics run
   after their sampling phase; on this space the basin around the
   near-optimal designs the samplers reach is descent-connected to the
   grid optimum, which is what drives winner-regret to zero. *)
let descend_by ?(probe = true) ?(window = max_int) t value start =
  let axis_dim = function
    | `Nr -> n_nr t
    | `Npre -> n_pre t
    | `Nwr -> n_wr t
  in
  let with_index k axis i =
    match axis with
    | `Nr -> { k with nr_i = i }
    | `Npre -> { k with n_pre_i = i }
    | `Nwr -> { k with n_wr_i = i }
  in
  let axis_index k = function
    | `Nr -> k.nr_i
    | `Npre -> k.n_pre_i
    | `Nwr -> k.n_wr_i
  in
  let scan_axis k axis =
    let dim = axis_dim axis in
    let i0 = axis_index k axis in
    (* [window] may be [max_int]; guard the arithmetic from overflow. *)
    let lo = if window >= dim then 0 else max 0 (i0 - window) in
    let hi = if window >= dim then dim - 1 else min (dim - 1) (i0 + window) in
    let row = List.init (hi - lo + 1) (fun j -> with_index k axis (lo + j)) in
    ensure t row;
    let best = ref k and best_v = ref (value k) in
    List.iter
      (fun k' ->
        let v = value k' in
        if v < !best_v then begin
          best := k';
          best_v := v
        end)
      row;
    !best
  in
  (* Escape hatch for coupled minima: when every single-axis full-row
     move stalls, probe joint +-1/+-2 steps on each *pair* of axes (a
     pattern-search move).  The (N_pre, N_wr) coupling is real on this
     landscape — both feed the same decoder/driver energy split — and
     an axis-aligned descent alone provably sticks one grid step away
     from the optimum on the reduced grid. *)
  let joint_probe k =
    let offsets = [ -2; -1; 1; 2 ] in
    let neighbors =
      List.concat_map
        (fun (a, b) ->
          List.concat_map
            (fun da ->
              List.filter_map
                (fun db ->
                  let ia = axis_index k a + da and ib = axis_index k b + db in
                  if
                    ia < 0 || ia >= axis_dim a || ib < 0 || ib >= axis_dim b
                  then None
                  else Some (with_index (with_index k a ia) b ib))
                offsets)
            offsets)
        [ (`Nr, `Npre); (`Nr, `Nwr); (`Npre, `Nwr) ]
    in
    ensure t neighbors;
    let v0 = value k in
    let best, best_v =
      List.fold_left
        (fun ((_, bv) as acc) k' ->
          let v = value k' in
          if v < bv then (k', v) else acc)
        (k, v0) neighbors
    in
    if best_v < v0 -. 1e-40 then Some best else None
  in
  let rec cycle k =
    let k' =
      List.fold_left (fun k axis -> scan_axis k axis) k [ `Nr; `Npre; `Nwr ]
    in
    if value k' < value k -. 1e-40 then cycle k'
    else if probe then
      match joint_probe k' with Some k'' -> cycle k'' | None -> k'
    else k'
  in
  ensure t [ start ];
  cycle start

let descend t start = descend_by t (fun k -> snd (line_best t k)) start

(* The knee polish above chases the scalar objective; the front's
   *endpoints* — the min-delay and min-energy designs — can live on
   lines it never prices.  Two extra descents on the line-minima of
   each pure metric pull those extremes into the cache, which is what
   lifts the returned front's hypervolume to the >= 99% gate. *)
let descend_edges t start =
  let line_min proj k =
    let l = line t k in
    Array.fold_left min infinity (proj l)
  in
  (* No joint probe and windowed rows here: the endpoints only have to
     land close enough for front coverage (the hypervolume gate), not
     exactly — a +-4-index walk per cycle keeps moving while it
     improves and reaches the extremes at a fraction of the full-row
     scan cost. *)
  let d_end =
    descend_by ~probe:false ~window:4 t (line_min (fun l -> l.l_d)) start
  in
  let e_end =
    descend_by ~probe:false ~window:4 t (line_min (fun l -> l.l_e)) start
  in
  (d_end, e_end)

(* The Pareto front over every scanned point, materialized as
   candidates.  Sort-sweep on (d, e) with a full deterministic
   tie-break so the survivor among duplicates is stable. *)
let front t =
  let points = ref [] in
  Hashtbl.iter
    (fun k l ->
      for i = 0 to nv t - 1 do
        points := (l.l_d.(i), l.l_e.(i), k, i) :: !points
      done)
    t.lines;
  let sorted =
    List.sort
      (fun (d1, e1, k1, i1) (d2, e2, k2, i2) ->
        let c = compare d1 d2 in
        if c <> 0 then c
        else
          let c = compare e1 e2 in
          if c <> 0 then c else compare (k1, i1) (k2, i2))
      !points
  in
  let rec sweep best_e acc = function
    | [] -> List.rev acc
    | (_, e, k, i) :: rest ->
      if e < best_e then sweep e ((k, i) :: acc) rest
      else sweep best_e acc rest
  in
  List.map (fun (k, i) -> candidate t k i) (sweep infinity [] sorted)

(* Package the search outcome in the common result shape.  A heuristic
   decides exactly the points it scans. *)
let result t =
  match t.best with
  | None -> invalid_arg "Line_cache.result: nothing evaluated"
  | Some (k, i, _) ->
    { Exhaustive.best = candidate t k i;
      evaluated = t.evaluated;
      pruned = 0;
      skipped = 0;
      considered = t.evaluated;
      levels = t.levels;
      pins = t.pins }
