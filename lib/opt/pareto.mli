(** Delay-energy Pareto front over evaluated candidates.

    The EDP optimum is one point of this front; exposing the whole front
    lets a designer trade a stricter latency budget against energy (and is
    the data behind the framework's extension studies). *)

val objectives : Exhaustive.candidate -> float array
(** The candidate's [| d_array; e_total |] vector — the coordinates
    {!front}, {!dominates} and the NSGA-II machinery ({!Moo}) rank by. *)

val dominates : Exhaustive.candidate -> Exhaustive.candidate -> bool
(** [dominates a b]: [a] is no slower and no more energetic than [b],
    and strictly better in at least one of the two.  Agrees with
    {!Moo.dominates} on {!objectives} vectors (property-tested). *)

val front : Exhaustive.candidate list -> Exhaustive.candidate list
(** Non-dominated candidates under (d_array, e_total), sorted by
    increasing delay.  A candidate is dominated if another is no worse in
    both dimensions and better in one. *)

val knee : Exhaustive.candidate list -> Exhaustive.candidate option
(** The front member with the minimum normalized distance to the ideal
    (min-delay, min-energy) corner — a robust "balanced" pick. *)
