type state = {
  vssc_i : int;
  nr_i : int;
  n_pre_i : int;
  n_wr_i : int;
}

(* Per-domain scan buffer for the vssc line scans (one per domain per
   process; local search itself is sequential but may run on any pool
   worker). *)
let scan_buf = Runtime.Pool.local Array_model.Array_eval.scan_buffer

let search ?(space = Space.default) ?(objective = Objective.Energy_delay_product)
    ?levels ?(restarts = 4) ?(w = 64) ?journal ~env ~capacity_bits ~method_ ()
    =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Local_search.search: capacity must be a power of two";
  let journal =
    match journal with Some _ as j -> j | None -> Persist.Checkpoint.default ()
  in
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels = match levels with Some l -> l | None -> Yield.solve ~flavor () in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  let nr_values =
    Array.of_list
      (List.filter
         (fun nr ->
           nr <= capacity_bits
           && Array_model.Geometry.is_power_of_two (capacity_bits / nr))
         (Array.to_list space.Space.nr_values))
  in
  if Array.length nr_values = 0 then
    invalid_arg "Local_search.search: empty geometry space";
  let evaluated = ref 0 in
  let pruned = ref 0 in
  let evals_counter = Runtime.Telemetry.counter "local_search.search" in
  (* Assist-side work once per vssc level; geometry-side work memoized per
     distinct (n_r, N_pre, N_wr) visited — line scans revisit geometries
     constantly, so the staged records pay for themselves within one
     descent cycle. *)
  let assists =
    Array.map (fun vssc -> Space.assist_of pins ~vssc) vssc_values
  in
  let prepared = Array.map (Array_model.Array_eval.prepare env) assists in
  let envelope = Array_model.Array_eval.envelope prepared in
  let staged_tbl = Hashtbl.create 64 in
  (* (staged record, admissible lower bound on the objective over the
     whole vssc line for that geometry). *)
  let staged_for s =
    let key = (s.nr_i, s.n_pre_i, s.n_wr_i) in
    match Hashtbl.find_opt staged_tbl key with
    | Some entry -> entry
    | None ->
      let nr = nr_values.(s.nr_i) in
      let geometry =
        Array_model.Geometry.create ~nr ~nc:(capacity_bits / nr) ~w
          ~n_pre:space.Space.n_pre_values.(s.n_pre_i)
          ~n_wr:space.Space.n_wr_values.(s.n_wr_i)
          ()
      in
      let st = Array_model.Array_eval.stage env geometry in
      let bound =
        Objective.eval objective
          (Array_model.Array_eval.bound_metrics st envelope)
      in
      let entry = (st, bound) in
      Hashtbl.add staged_tbl key entry;
      entry
  in
  let eval state =
    let st, _ = staged_for state in
    let metrics =
      Array_model.Array_eval.complete st prepared.(state.vssc_i)
    in
    incr evaluated;
    Runtime.Telemetry.incr evals_counter;
    Obs.Progress.add_evals 1;
    { Exhaustive.geometry = Array_model.Array_eval.staged_geometry st;
      assist = assists.(state.vssc_i);
      metrics;
      score = Objective.eval objective metrics }
  in
  (* A vssc line keeps the geometry fixed, so the whole line runs
     through the batched scan kernel: one [Array_eval.scan] into the
     per-domain buffer, a flat winner fold, and a single [complete] for
     the winner — no metrics record per point.  Scores read from the
     buffer are bit-identical to [Objective.eval] of the corresponding
     completed metrics (ED^2 left-associates as edp *. d), so every
     accept/reject decision matches the record-per-point scan's. *)
  let scan_vssc state =
    let st, _ = staged_for state in
    let buf = Runtime.Pool.get_local scan_buf in
    Array_model.Array_eval.scan st prepared buf;
    let dim = Array.length vssc_values in
    let score_at i =
      let open Array_model.Array_eval in
      match objective with
      | Objective.Energy_delay_product -> (scan_edp buf).(i)
      | Objective.Energy_delay_squared ->
        (scan_edp buf).(i) *. (scan_d_array buf).(i)
      | Objective.Energy_only -> (scan_e_total buf).(i)
      | Objective.Delay_only -> (scan_d_array buf).(i)
    in
    let best_i = ref 0 in
    let best_s = ref (score_at 0) in
    for i = 1 to dim - 1 do
      let s = score_at i in
      if s < !best_s then begin
        best_i := i;
        best_s := s
      end
    done;
    evaluated := !evaluated + dim;
    Runtime.Telemetry.add evals_counter dim;
    Obs.Progress.add_evals dim;
    let metrics = Array_model.Array_eval.complete st prepared.(!best_i) in
    ( { state with vssc_i = !best_i },
      { Exhaustive.geometry = Array_model.Array_eval.staged_geometry st;
        assist = assists.(!best_i);
        metrics;
        score = !best_s } )
  in
  (* Line scan of one coordinate with the rest pinned. *)
  let scan state coordinate =
    match coordinate with
    | `Vssc -> scan_vssc state
    | (`Nr | `Npre | `Nwr) as coordinate ->
      let dim =
        match coordinate with
        | `Nr -> Array.length nr_values
        | `Npre -> Array.length space.Space.n_pre_values
        | `Nwr -> Array.length space.Space.n_wr_values
      in
      let with_index i =
        match coordinate with
        | `Nr -> { state with nr_i = i }
        | `Npre -> { state with n_pre_i = i }
        | `Nwr -> { state with n_wr_i = i }
      in
      let best = ref (with_index 0) in
      let best_cand = ref (eval !best) in
      for i = 1 to dim - 1 do
        let s = with_index i in
        let c = eval s in
        if c.Exhaustive.score < !best_cand.Exhaustive.score then begin
          best := s;
          best_cand := c
        end
      done;
      (!best, !best_cand)
  in
  let descend start =
    let rec cycle state candidate =
      let state', candidate' =
        List.fold_left
          (fun (s, c) coordinate ->
            (* A vssc line keeps the geometry fixed, so the staged bound
               covers every point on it: when the bound already matches or
               exceeds the incumbent, no point can *strictly* improve and
               the whole scan is skipped — same accept/reject decisions as
               the unpruned descent, fewer evaluations. *)
            let prune =
              match coordinate with
              | `Vssc ->
                let _, bound = staged_for s in
                bound >= c.Exhaustive.score
              | `Nr | `Npre | `Nwr -> false
            in
            if prune then begin
              incr pruned;
              (s, c)
            end
            else
              let s', c' = scan s coordinate in
              if c'.Exhaustive.score < c.Exhaustive.score then (s', c')
              else (s, c))
          (state, candidate)
          [ `Vssc; `Nr; `Npre; `Nwr ]
      in
      if candidate'.Exhaustive.score < candidate.Exhaustive.score -. 1e-40 then
        cycle state' candidate'
      else candidate'
    in
    cycle start (eval start)
  in
  (* Deterministic low-discrepancy spread of starting points: each
     coordinate walks its own irrational stride so restarts explore
     genuinely different basins (a single diagonal would revisit the same
     one). *)
  let start k =
    let pick n stride =
      let frac = Float.rem ((float_of_int k *. stride) +. (0.5 *. stride)) 1.0 in
      min (n - 1) (int_of_float (frac *. float_of_int n))
    in
    { vssc_i = pick (Array.length vssc_values) 0.754877;
      nr_i = pick (Array.length nr_values) 0.569840;
      n_pre_i = pick (Array.length space.Space.n_pre_values) 0.362547;
      n_wr_i = pick (Array.length space.Space.n_wr_values) 0.914107 }
  in
  (* Each restart is one checkpoint chunk: the descent from a fixed
     start is fully deterministic and sequential, so its winning
     candidate and its evaluated/pruned deltas replay exactly.  The
     task signature folds in everything the descent depends on, so a
     stale journal matches nothing and the restart recomputes. *)
  let task =
    let h = ref 0xcbf29ce484222325L in
    let mix i64 = h := Int64.mul (Int64.logxor !h i64) 0x100000001b3L in
    let mixi i = mix (Int64.of_int i) in
    let mixf x = mix (Int64.bits_of_float x) in
    mixi capacity_bits;
    mixi w;
    Array.iter mixf vssc_values;
    Array.iter mixi nr_values;
    Array.iter mixi space.Space.n_pre_values;
    Array.iter mixi space.Space.n_wr_values;
    mixf pins.Space.vddc;
    mixf pins.Space.vwl;
    mixi (if pins.Space.vssc_allowed then 1 else 0);
    mixf env.Array_model.Array_eval.alpha;
    mixf env.Array_model.Array_eval.beta;
    mixf env.Array_model.Array_eval.dcdc_overhead;
    let accounting =
      match env.Array_model.Array_eval.accounting with
      | Array_model.Array_eval.Paper_strict -> "paper"
      | Array_model.Array_eval.Physical -> "physical"
    in
    Printf.sprintf "local|%s|%s|%s|%s|cap=%d|%016Lx"
      (Objective.name objective)
      (Finfet.Library.flavor_to_string flavor)
      (Space.method_name method_) accounting capacity_bits !h
  in
  let module J = Persist.Json in
  let restart k =
    let replayed =
      match journal with
      | None -> None
      | Some jr -> (
        match Persist.Checkpoint.completed jr ~task ~chunk:k with
        | None -> None
        | Some data -> (
          match
            ( Option.bind (J.member "best" data) Exhaustive.candidate_of_json,
              J.int_field data "evaluated",
              J.int_field data "pruned" )
          with
          | Some c, Some ev, Some pr ->
            evaluated := !evaluated + ev;
            pruned := !pruned + pr;
            Some c
          | _ -> None))
    in
    match replayed with
    | Some c -> c
    | None ->
      let ev0 = !evaluated and pr0 = !pruned in
      let candidate = descend (start k) in
      (match journal with
      | Some jr ->
        Persist.Checkpoint.record jr ~task ~chunk:k
          (J.Obj
             [
               ("best", Exhaustive.candidate_to_json candidate);
               ("evaluated", J.Int (!evaluated - ev0));
               ("pruned", J.Int (!pruned - pr0));
             ])
      | None -> ());
      candidate
  in
  let best = ref None in
  Runtime.Telemetry.time "local_search.search" (fun () ->
      for k = 0 to restarts - 1 do
        let candidate = restart k in
        match !best with
        | Some b when b.Exhaustive.score <= candidate.Exhaustive.score -> ()
        | Some _ | None ->
          best := Some candidate;
          (* Observation only: the journal never feeds back into the
             descent, so results are identical with it on or off. *)
          if Obs.Search.enabled () then begin
            let g = candidate.Exhaustive.geometry in
            Obs.Search.record_incumbent ~source:"local_search"
              ~score:candidate.Exhaustive.score
              ~edp:candidate.Exhaustive.metrics.Array_model.Array_eval.edp
              ~design:
                { Obs.Search.nr = g.Array_model.Geometry.nr;
                  nc = g.Array_model.Geometry.nc;
                  n_pre = g.Array_model.Geometry.n_pre;
                  n_wr = g.Array_model.Geometry.n_wr;
                  vssc =
                    candidate.Exhaustive.assist.Array_model.Components.vssc }
          end
      done);
  match !best with
  | None -> invalid_arg "Local_search.search: no candidates"
  | Some best ->
    (* A heuristic search decides exactly the points it evaluates. *)
    { Exhaustive.best; evaluated = !evaluated; pruned = !pruned; skipped = 0;
      considered = !evaluated; levels; pins }
