type schedule = {
  initial_temperature : float;
  cooling : float;
  steps : int;
}

let default_schedule =
  { initial_temperature = 0.3; cooling = 0.995; steps = 2000 }

type state = {
  vssc_i : int;
  nr_i : int;
  n_pre_i : int;
  n_wr_i : int;
}

let search ?(space = Space.default) ?(objective = Objective.Energy_delay_product)
    ?(schedule = default_schedule) ?(w = 64) ~seed ~env ~capacity_bits ~method_ () =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Anneal.search: capacity must be a power of two";
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels = Yield.solve ~flavor () in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  (* Restrict the row grid to organizations valid for this capacity. *)
  let nr_values =
    Array.of_list
      (List.filter
         (fun nr ->
           nr <= capacity_bits
           && Array_model.Geometry.is_power_of_two (capacity_bits / nr))
         (Array.to_list space.Space.nr_values))
  in
  if Array.length nr_values = 0 then invalid_arg "Anneal.search: empty geometry space";
  let rng = Numerics.Rng.create ~seed in
  let evaluated = ref 0 in
  let eval state =
    let nr = nr_values.(state.nr_i) in
    let geometry =
      Array_model.Geometry.create ~nr ~nc:(capacity_bits / nr) ~w
        ~n_pre:space.Space.n_pre_values.(state.n_pre_i)
        ~n_wr:space.Space.n_wr_values.(state.n_wr_i)
        ()
    in
    let assist = Space.assist_of pins ~vssc:vssc_values.(state.vssc_i) in
    let metrics = Array_model.Array_eval.evaluate env geometry assist in
    incr evaluated;
    let score = Objective.eval objective metrics in
    { Exhaustive.geometry; assist; metrics; score }
  in
  let random_state () =
    { vssc_i = Numerics.Rng.int_below rng (Array.length vssc_values);
      nr_i = Numerics.Rng.int_below rng (Array.length nr_values);
      n_pre_i = Numerics.Rng.int_below rng (Array.length space.Space.n_pre_values);
      n_wr_i = Numerics.Rng.int_below rng (Array.length space.Space.n_wr_values) }
  in
  let perturb state =
    (* Move one coordinate by +-1 (local move); occasionally jump. *)
    if Numerics.Rng.uniform rng < 0.1 then random_state ()
    else begin
      let bump i n =
        let d = if Numerics.Rng.uniform rng < 0.5 then -1 else 1 in
        max 0 (min (n - 1) (i + d))
      in
      match Numerics.Rng.int_below rng 4 with
      | 0 -> { state with vssc_i = bump state.vssc_i (Array.length vssc_values) }
      | 1 -> { state with nr_i = bump state.nr_i (Array.length nr_values) }
      | 2 ->
        { state with
          n_pre_i = bump state.n_pre_i (Array.length space.Space.n_pre_values) }
      | _ ->
        { state with
          n_wr_i = bump state.n_wr_i (Array.length space.Space.n_wr_values) }
    end
  in
  let current = ref (random_state ()) in
  let current_cand = ref (eval !current) in
  let best = ref !current_cand in
  let temperature = ref schedule.initial_temperature in
  for _ = 1 to schedule.steps do
    let next = perturb !current in
    let cand = eval next in
    let relative =
      (cand.Exhaustive.score -. !current_cand.Exhaustive.score)
      /. !current_cand.Exhaustive.score
    in
    let accept =
      relative <= 0.0
      || Numerics.Rng.uniform rng < exp (-.relative /. max !temperature 1e-6)
    in
    if accept then begin
      current := next;
      current_cand := cand
    end;
    if cand.Exhaustive.score < !best.Exhaustive.score then begin
      best := cand;
      (* Observation only — the annealing trajectory (RNG draws,
         accepts) is identical with the journal on or off. *)
      if Obs.Search.enabled () then begin
        let g = cand.Exhaustive.geometry in
        Obs.Search.record_incumbent ~source:"anneal"
          ~score:cand.Exhaustive.score
          ~edp:cand.Exhaustive.metrics.Array_model.Array_eval.edp
          ~design:
            { Obs.Search.nr = g.Array_model.Geometry.nr;
              nc = g.Array_model.Geometry.nc;
              n_pre = g.Array_model.Geometry.n_pre;
              n_wr = g.Array_model.Geometry.n_wr;
              vssc = cand.Exhaustive.assist.Array_model.Components.vssc }
      end
    end;
    temperature := !temperature *. schedule.cooling
  done;
  (* A heuristic search decides exactly the points it evaluates. *)
  { Exhaustive.best = !best; evaluated = !evaluated; pruned = 0; skipped = 0;
    considered = !evaluated; levels; pins }
