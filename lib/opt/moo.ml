(* Generic multi-objective machinery over raw objective vectors
   (minimization everywhere).  Kept free of any SRAM types so the
   QCheck properties can hammer it with arbitrary point sets; the
   candidate-typed entry points live in {!Pareto} and {!Nsga2}. *)

let dominates a b =
  let n = Array.length a in
  if Array.length b <> n then
    invalid_arg "Moo.dominates: dimension mismatch";
  let no_worse = ref true in
  let better = ref false in
  for m = 0 to n - 1 do
    if a.(m) > b.(m) then no_worse := false
    else if a.(m) < b.(m) then better := true
  done;
  !no_worse && !better

(* Deb's fast non-dominated sort, O(M N^2): compute, for every point,
   the set it dominates and the count of points dominating it, then
   peel fronts.  Ranks depend only on the dominance relation, so they
   are permutation-equivariant by construction (property-tested). *)
let fast_nondominated_sort points =
  let n = Array.length points in
  let rank = Array.make n (-1) in
  if n > 0 then begin
    let dominated_by = Array.make n [] in
    let domination_count = Array.make n 0 in
    for p = 0 to n - 1 do
      for q = 0 to n - 1 do
        if p <> q && dominates points.(p) points.(q) then begin
          dominated_by.(p) <- q :: dominated_by.(p);
          domination_count.(q) <- domination_count.(q) + 1
        end
      done
    done;
    let current = ref [] in
    for p = n - 1 downto 0 do
      if domination_count.(p) = 0 then begin
        rank.(p) <- 0;
        current := p :: !current
      end
    done;
    let level = ref 0 in
    while !current <> [] do
      let next = ref [] in
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              domination_count.(q) <- domination_count.(q) - 1;
              if domination_count.(q) = 0 then begin
                rank.(q) <- !level + 1;
                next := q :: !next
              end)
            dominated_by.(p))
        !current;
      incr level;
      (* Restore ascending order so the peel is deterministic (it does
         not affect ranks, only the iteration order of the next wave). *)
      current := List.sort compare !next
    done
  end;
  rank

(* Crowding distance in its canonical (permutation-invariant) form:
   each objective contributes (next distinct value - previous distinct
   value) / (max - min) around the point's own value, and any point
   sitting on an objective's minimum or maximum gets infinity.  Points
   with identical coordinates therefore get identical distances —
   unlike the textbook sorted-neighbor formulation, whose treatment of
   duplicates depends on input order. *)
let crowding_distance points members =
  let k = Array.length members in
  let dist = Array.make k 0.0 in
  if k > 0 then begin
    let n_obj = Array.length points.(members.(0)) in
    for m = 0 to n_obj - 1 do
      let values =
        Array.map (fun i -> points.(i).(m)) members |> Array.to_list
        |> List.sort_uniq compare |> Array.of_list
      in
      let nv = Array.length values in
      let lo = values.(0) and hi = values.(nv - 1) in
      let span = hi -. lo in
      (* Binary search for the point's own value among the distinct
         values of this objective. *)
      let find v =
        let l = ref 0 and r = ref (nv - 1) in
        while !l < !r do
          let mid = (!l + !r) / 2 in
          if values.(mid) < v then l := mid + 1 else r := mid
        done;
        !l
      in
      for j = 0 to k - 1 do
        let v = points.(members.(j)).(m) in
        if v = lo || v = hi then dist.(j) <- infinity
        else if span > 0.0 then begin
          let i = find v in
          dist.(j) <-
            dist.(j) +. ((values.(i + 1) -. values.(i - 1)) /. span)
        end
      done
    done
  end;
  dist
