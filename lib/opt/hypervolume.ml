(* Exact hypervolume indicators for minimization fronts.

   The hypervolume of a point set P with respect to a reference point r
   is the Lebesgue measure of the region dominated by P and bounded by
   r: volume { y : exists p in P, p <= y <= r }.  It is the standard
   strictly-Pareto-compliant quality indicator for approximate fronts —
   an approximation whose hypervolume reaches >= 99% of the true
   front's cannot have lost a significant region of the trade-off. *)

(* 2D: sort by the first objective ascending (second ascending as the
   tie-break so the better duplicate is swept first), then accumulate
   rectangles against a falling second-objective water line.  Dominated
   and out-of-reference points contribute nothing by construction. *)
let hv2 ~ref_:(rx, ry) points =
  let sorted =
    List.sort
      (fun (x1, y1) (x2, y2) ->
        let c = compare x1 x2 in
        if c <> 0 then c else compare y1 y2)
      points
  in
  let hv = ref 0.0 in
  let water = ref ry in
  List.iter
    (fun (x, y) ->
      if x < rx && y < !water then begin
        hv := !hv +. ((rx -. x) *. (!water -. y));
        water := y
      end)
    sorted;
  !hv

(* 3D by slicing the third objective: between consecutive distinct
   z-levels the dominated region's cross-section is constant, and equal
   to the 2D dominated region of every point at or below the slice.
   O(n^2 log n), exact. *)
let hv3 ~ref_:(rx, ry, rz) points =
  let points = List.filter (fun (x, y, z) -> x < rx && y < ry && z < rz) points in
  match points with
  | [] -> 0.0
  | _ ->
    let zs =
      List.map (fun (_, _, z) -> z) points
      |> List.sort_uniq compare |> Array.of_list
    in
    let n = Array.length zs in
    let hv = ref 0.0 in
    for k = 0 to n - 1 do
      let z_lo = zs.(k) in
      let z_hi = if k + 1 < n then zs.(k + 1) else rz in
      let slice =
        List.filter_map
          (fun (x, y, z) -> if z <= z_lo then Some (x, y) else None)
          points
      in
      hv := !hv +. (hv2 ~ref_:(rx, ry) slice *. (z_hi -. z_lo))
    done;
    !hv

(* Reference point for comparing an approximate front against the true
   one: the nadir of the true front pushed out by [margin], so boundary
   points still contribute area and both fronts are measured against
   the same box. *)
let reference ?(margin = 0.1) points =
  match points with
  | [] -> invalid_arg "Hypervolume.reference: empty front"
  | (x0, y0) :: rest ->
    let wx, wy =
      List.fold_left
        (fun (mx, my) (x, y) -> (Float.max mx x, Float.max my y))
        (x0, y0) rest
    in
    let pad w = if w = 0.0 then 1e-30 else abs_float w *. margin in
    (wx +. pad wx, wy +. pad wy)

let ratio ~truth approx =
  let ref_ = reference truth in
  let hv_truth = hv2 ~ref_ truth in
  if hv_truth <= 0.0 then (if approx = [] then 0.0 else 1.0)
  else hv2 ~ref_ approx /. hv_truth
