(** NSGA-II over the co-optimization space.

    Non-dominated sorting genetic search on the (d_array, e_total)
    plane, evaluations batched through the scan kernel via
    {!Line_cache} (one line scan per distinct geometry).  Selection is
    the crowded non-dominated comparison ({!Moo}) with deterministic
    tie-breaks; every stochastic draw comes from a per-individual RNG
    stream seeded as [seed + 1021 * (gen * pop + i + 1)], so same-seed
    runs are bit-identical at any [--jobs] (property-tested).  After
    the evolutionary phase the incumbent is polished by coordinate
    descent ({!Line_cache.descend}) — the memetic step that holds
    winner-regret at zero against the exhaustive oracle (the
    [bench moo] gate). *)

val search_front :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?pop:int ->
  ?generations:int ->
  ?budget:int ->
  ?seed:int ->
  ?deadline:float ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result * Exhaustive.candidate list
(** The common result shape plus the Pareto front over every scanned
    point.  [pop] (default 24, >= 4) individuals per generation,
    [generations] (default 40) at most; [budget] caps scan points
    (default [max (6 * pop * nv) (3% of the space)]) — the GA phase
    stops at 60% of it, the rest feeds the descent polish.  [deadline]
    (absolute {!Runtime.Telemetry.now} seconds) raises
    {!Exhaustive.Deadline_exceeded} between generations.
    [result.evaluated = result.considered] counts every scan point
    produced, the same unit as the exhaustive oracle's [considered]. *)

val search :
  ?space:Space.t ->
  ?objective:Objective.t ->
  ?levels:Yield.levels ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?pop:int ->
  ?generations:int ->
  ?budget:int ->
  ?seed:int ->
  ?deadline:float ->
  env:Array_model.Array_eval.env ->
  capacity_bits:int ->
  method_:Space.method_ ->
  unit ->
  Exhaustive.result
(** {!search_front} without materializing the front. *)
