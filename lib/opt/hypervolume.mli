(** Exact hypervolume indicators (minimization).

    Hypervolume of a front w.r.t. a reference point [r]: the measure of
    the region dominated by the front and bounded by [r].  The strictly
    Pareto-compliant indicator the oracle tests and [bench moo] gate
    on: an approximate front with >= 99% of the true front's
    hypervolume has not lost a significant trade-off region. *)

val hv2 : ref_:float * float -> (float * float) list -> float
(** Exact 2D hypervolume.  Points at or beyond the reference in either
    coordinate contribute nothing; dominated points are handled
    (they add no area).  O(n log n). *)

val hv3 : ref_:float * float * float -> (float * float * float) list -> float
(** Exact 3D hypervolume by slicing the third objective into constant
    cross-sections.  O(n^2 log n). *)

val reference : ?margin:float -> (float * float) list -> (float * float)
(** The nadir (componentwise worst) of a front pushed out by [margin]
    (default 10%%) — the common box both the true and the approximate
    front are measured against.
    @raise Invalid_argument on an empty front. *)

val ratio : truth:(float * float) list -> (float * float) list -> float
(** [ratio ~truth approx]: hypervolume of [approx] over hypervolume of
    [truth], both against {!reference} of [truth].  1.0 means the
    approximation covers the whole true front. *)
