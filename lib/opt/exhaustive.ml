type candidate = {
  geometry : Array_model.Geometry.t;
  assist : Array_model.Components.assist;
  metrics : Array_model.Array_eval.metrics;
  score : float;
}

type result = {
  best : candidate;
  evaluated : int;
  levels : Yield.levels;
  pins : Space.pins;
}

(* Earlier-candidate-wins tie break: replace only on a strictly better
   score.  Identical to the sequential scan's [b.score <= score] guard. *)
let better acc candidate =
  match (acc, candidate) with
  | None, c -> c
  | acc, None -> acc
  | Some a, Some c -> if c.score < a.score then Some c else Some a

let run ?(space = Space.default) ?(objective = Objective.Energy_delay_product)
    ?levels ?pool ?w ~env ~capacity_bits ~method_ ~keep_all () =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Exhaustive.search: capacity must be a power of two";
  let pool = match pool with Some p -> p | None -> Runtime.Pool.default () in
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels =
    match levels with Some l -> l | None -> Yield.solve ~flavor ()
  in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  let geometries =
    Array.of_list (Space.candidate_geometries ?w space ~capacity_bits)
  in
  if Array.length geometries = 0 then
    invalid_arg "Exhaustive.search: empty geometry space";
  let evals = Runtime.Telemetry.counter "exhaustive.search" in
  (* One task per geometry chunk: scan the vssc axis in order, keeping
     the first-best candidate (and, when asked, every candidate in
     evaluation order).  The chunked results are reduced in geometry
     order below, so the output is bit-identical to the sequential
     geometry-major / vssc-minor scan for any job count. *)
  let eval_geometry geometry =
    let best = ref None in
    let all = ref [] in
    Array.iter
      (fun vssc ->
        let assist = Space.assist_of pins ~vssc in
        let metrics = Array_model.Array_eval.evaluate env geometry assist in
        let score = Objective.eval objective metrics in
        let candidate = { geometry; assist; metrics; score } in
        if keep_all then all := candidate :: !all;
        match !best with
        | Some b when b.score <= score -> ()
        | Some _ | None -> best := Some candidate)
      vssc_values;
    Runtime.Telemetry.add evals (Array.length vssc_values);
    (!best, List.rev !all)
  in
  let per_geometry =
    Runtime.Telemetry.time "exhaustive.search" (fun () ->
        Runtime.Pool.parmap pool eval_geometry geometries)
  in
  let best =
    Array.fold_left (fun acc (b, _) -> better acc b) None per_geometry
  in
  let evaluated = Array.length geometries * Array.length vssc_values in
  let all =
    if keep_all then List.concat_map snd (Array.to_list per_geometry) else []
  in
  match best with
  | None -> invalid_arg "Exhaustive.search: no candidates"
  | Some best -> ({ best; evaluated; levels; pins }, all)

let search ?space ?objective ?levels ?pool ?w ~env ~capacity_bits ~method_ () =
  fst
    (run ?space ?objective ?levels ?pool ?w ~env ~capacity_bits ~method_
       ~keep_all:false ())

let search_all ?space ?objective ?levels ?pool ?w ~env ~capacity_bits ~method_
    () =
  run ?space ?objective ?levels ?pool ?w ~env ~capacity_bits ~method_
    ~keep_all:true ()
