type candidate = {
  geometry : Array_model.Geometry.t;
  assist : Array_model.Components.assist;
  metrics : Array_model.Array_eval.metrics;
  score : float;
}

type result = {
  best : candidate;
  evaluated : int;
  pruned : int;
  levels : Yield.levels;
  pins : Space.pins;
}

type kernel = [ `Staged | `Reference ]

(* Earlier-candidate-wins tie break: replace only on a strictly better
   score.  Identical to the sequential scan's [b.score <= score] guard. *)
let better acc candidate =
  match (acc, candidate) with
  | None, c -> c
  | acc, None -> acc
  | Some a, Some c -> if c.score < a.score then Some c else Some a

let run ?(space = Space.default) ?(objective = Objective.Energy_delay_product)
    ?levels ?pool ?w ?(kernel = `Staged) ~env ~capacity_bits ~method_ ~keep_all
    () =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Exhaustive.search: capacity must be a power of two";
  let pool = match pool with Some p -> p | None -> Runtime.Pool.default () in
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels =
    match levels with Some l -> l | None -> Yield.solve ~flavor ()
  in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  let geometries =
    Array.of_list (Space.candidate_geometries ?w space ~capacity_bits)
  in
  if Array.length geometries = 0 then
    invalid_arg "Exhaustive.search: empty geometry space";
  let evals = Runtime.Telemetry.counter "exhaustive.search" in
  let pruned_scans = Runtime.Telemetry.counter "exhaustive.pruned" in
  let nv = Array.length vssc_values in
  let assists = Array.map (fun vssc -> Space.assist_of pins ~vssc) vssc_values in
  (* Actual work counters (the old [geometries x vssc_values] product is
     wrong once scans are pruned). *)
  let n_evaluated = Atomic.make 0 in
  let n_pruned = Atomic.make 0 in
  let count_evals n =
    ignore (Atomic.fetch_and_add n_evaluated n);
    Runtime.Telemetry.add evals n;
    Obs.Progress.add_evals n
  in
  Obs.Progress.add_total (Array.length geometries);
  (* One task per geometry chunk: scan the vssc axis in order, keeping
     the first-best candidate (and, when asked, every candidate in
     evaluation order).  The chunked results are reduced in geometry
     order below, so the output is bit-identical to the sequential
     geometry-major / vssc-minor scan for any job count. *)
  let eval_geometry_reference geometry =
    let best = ref None in
    let all = ref [] in
    Array.iter
      (fun assist ->
        let metrics = Array_model.Array_eval.evaluate env geometry assist in
        let score = Objective.eval objective metrics in
        let candidate = { geometry; assist; metrics; score } in
        if keep_all then all := candidate :: !all;
        match !best with
        | Some b when b.score <= score -> ()
        | Some _ | None -> best := Some candidate)
      assists;
    count_evals nv;
    (!best, List.rev !all)
  in
  let eval_geometry =
    match kernel with
    | `Reference -> eval_geometry_reference
    | `Staged ->
      let prepared = Array.map (Array_model.Array_eval.prepare env) assists in
      let envelope = Array_model.Array_eval.envelope prepared in
      (* Workers publish each geometry's scan minimum — an actually
         achieved score — and prune a later geometry only when its
         admissible lower bound strictly exceeds a published score.  A
         pruned geometry's true minimum is then strictly above the global
         minimum, so the winner (and the earlier-geometry tie break) is
         the same as the unpruned scan's for any job count; only the
         prune/eval counts are timing-dependent. *)
      let incumbent = Runtime.Shared_min.create () in
      fun geometry ->
        let st = Array_model.Array_eval.stage env geometry in
        let prune =
          (not keep_all)
          && Objective.eval objective
               (Array_model.Array_eval.bound_metrics st envelope)
             > Runtime.Shared_min.get incumbent
        in
        if prune then begin
          ignore (Atomic.fetch_and_add n_pruned 1);
          Runtime.Telemetry.incr pruned_scans;
          Obs.Progress.add_pruned 1;
          (None, [])
        end
        else if keep_all then begin
          let best = ref None in
          let all = ref [] in
          Array.iteri
            (fun i assist ->
              let metrics = Array_model.Array_eval.complete st prepared.(i) in
              let score = Objective.eval objective metrics in
              let candidate = { geometry; assist; metrics; score } in
              all := candidate :: !all;
              match !best with
              | Some b when b.score <= score -> ()
              | Some _ | None -> best := Some candidate)
            assists;
          count_evals nv;
          (!best, List.rev !all)
        end
        else begin
          (* Hot path: no candidate record or list per evaluation — track
             the winning index and build one candidate per geometry. *)
          let m0 = Array_model.Array_eval.complete st prepared.(0) in
          let best_i = ref 0 in
          let best_m = ref m0 in
          let best_score = ref (Objective.eval objective m0) in
          for i = 1 to nv - 1 do
            let m = Array_model.Array_eval.complete st prepared.(i) in
            let s = Objective.eval objective m in
            if s < !best_score then begin
              best_i := i;
              best_m := m;
              best_score := s
            end
          done;
          count_evals nv;
          Runtime.Shared_min.publish incumbent !best_score;
          ( Some
              { geometry;
                assist = assists.(!best_i);
                metrics = !best_m;
                score = !best_score },
            [] )
        end
  in
  (* The per-geometry trace span is gated on [`Fine] detail: a full
     Table 4 sweep scans ~10^4 geometries and per-geometry events would
     dominate the trace buffer, so coarse traces keep only the
     structural spans (sweep / search / pool chunks). *)
  let eval_geometry g =
    let r =
      if Obs.Trace.fine_active () then
        Obs.Trace.with_span "exhaustive.eval" (fun () -> eval_geometry g)
      else eval_geometry g
    in
    Obs.Progress.add_done 1;
    r
  in
  let per_geometry =
    Runtime.Telemetry.time "exhaustive.search" (fun () ->
        Runtime.Pool.parmap pool eval_geometry geometries)
  in
  let best =
    Array.fold_left (fun acc (b, _) -> better acc b) None per_geometry
  in
  let all =
    if keep_all then List.concat_map snd (Array.to_list per_geometry) else []
  in
  match best with
  | None -> invalid_arg "Exhaustive.search: no candidates"
  | Some best ->
    ( { best;
        evaluated = Atomic.get n_evaluated;
        pruned = Atomic.get n_pruned;
        levels;
        pins },
      all )

let search ?space ?objective ?levels ?pool ?w ?kernel ~env ~capacity_bits
    ~method_ () =
  fst
    (run ?space ?objective ?levels ?pool ?w ?kernel ~env ~capacity_bits
       ~method_ ~keep_all:false ())

let search_all ?space ?objective ?levels ?pool ?w ?kernel ~env ~capacity_bits
    ~method_ () =
  run ?space ?objective ?levels ?pool ?w ?kernel ~env ~capacity_bits ~method_
    ~keep_all:true ()
