type candidate = {
  geometry : Array_model.Geometry.t;
  assist : Array_model.Components.assist;
  metrics : Array_model.Array_eval.metrics;
  score : float;
}

type result = {
  best : candidate;
  evaluated : int;
  pruned : int;
  skipped : int;
  considered : int;
  levels : Yield.levels;
  pins : Space.pins;
}

type kernel = [ `Staged | `Reference ]

let kernel_name = function `Staged -> "staged" | `Reference -> "reference"

(* Earlier-candidate-wins tie break: replace only on a strictly better
   score.  Identical to the sequential scan's [b.score <= score] guard. *)
let better acc candidate =
  match (acc, candidate) with
  | None, c -> c
  | acc, None -> acc
  | Some a, Some c -> if c.score < a.score then Some c else Some a

(* ----- FNV-1a checksum of chosen designs -----

   Over the fields that define a chosen design: if two sweeps pick the
   same designs bit-for-bit, their checksums match.  Deliberately
   excludes [evaluated]/[pruned], which are timing-dependent under
   parallelism while the winner is not. *)
let checksum (results : result list) =
  let h = ref 0xcbf29ce484222325L in
  let mix i64 = h := Int64.mul (Int64.logxor !h i64) 0x100000001b3L in
  List.iter
    (fun r ->
      let b = r.best in
      let g = b.geometry in
      mix (Int64.of_int g.Array_model.Geometry.nr);
      mix (Int64.of_int g.Array_model.Geometry.nc);
      mix (Int64.of_int g.Array_model.Geometry.n_pre);
      mix (Int64.of_int g.Array_model.Geometry.n_wr);
      mix (Int64.bits_of_float b.assist.Array_model.Components.vssc);
      mix (Int64.bits_of_float b.score);
      mix (Int64.bits_of_float b.metrics.Array_model.Array_eval.edp))
    results;
  Printf.sprintf "%016Lx" !h

(* ----- JSON codecs (journal / disk-cache payloads) -----

   Floats go through Persist.Json's %.17g representation, so a decoded
   candidate is bit-identical to the one encoded — the property the
   resume bit-identity guarantee needs. *)

module J = Persist.Json

let geometry_to_json (g : Array_model.Geometry.t) =
  J.Obj
    [
      ("nr", J.Int g.Array_model.Geometry.nr);
      ("nc", J.Int g.Array_model.Geometry.nc);
      ("w", J.Int g.Array_model.Geometry.w);
      ("n_pre", J.Int g.Array_model.Geometry.n_pre);
      ("n_wr", J.Int g.Array_model.Geometry.n_wr);
    ]

let geometry_of_json j =
  match
    ( J.int_field j "nr",
      J.int_field j "nc",
      J.int_field j "w",
      J.int_field j "n_pre",
      J.int_field j "n_wr" )
  with
  | Some nr, Some nc, Some w, Some n_pre, Some n_wr -> (
    try Some (Array_model.Geometry.create ~nr ~nc ~w ~n_pre ~n_wr ())
    with Invalid_argument _ -> None)
  | _ -> None

let assist_to_json (a : Array_model.Components.assist) =
  J.Obj
    [
      ("vddc", J.Float a.Array_model.Components.vddc);
      ("vssc", J.Float a.Array_model.Components.vssc);
      ("vwl", J.Float a.Array_model.Components.vwl);
    ]

let assist_of_json j =
  match
    (J.float_field j "vddc", J.float_field j "vssc", J.float_field j "vwl")
  with
  | Some vddc, Some vssc, Some vwl ->
    Some { Array_model.Components.vddc; vssc; vwl }
  | _ -> None

let metrics_to_json (m : Array_model.Array_eval.metrics) =
  let open Array_model.Array_eval in
  J.Obj
    [
      ("d_read", J.Float m.d_read);
      ("d_write", J.Float m.d_write);
      ("d_array", J.Float m.d_array);
      ("e_read", J.Float m.e_read);
      ("e_write", J.Float m.e_write);
      ("e_switching", J.Float m.e_switching);
      ("e_leakage", J.Float m.e_leakage);
      ("e_total", J.Float m.e_total);
      ("edp", J.Float m.edp);
      ("d_bl_read", J.Float m.d_bl_read);
      ("d_row_path_read", J.Float m.d_row_path_read);
      ("d_col_path", J.Float m.d_col_path);
    ]

let metrics_of_json j =
  let f = J.float_field j in
  match
    ( (f "d_read", f "d_write", f "d_array", f "e_read", f "e_write"),
      (f "e_switching", f "e_leakage", f "e_total", f "edp"),
      (f "d_bl_read", f "d_row_path_read", f "d_col_path") )
  with
  | ( (Some d_read, Some d_write, Some d_array, Some e_read, Some e_write),
      (Some e_switching, Some e_leakage, Some e_total, Some edp),
      (Some d_bl_read, Some d_row_path_read, Some d_col_path) ) ->
    Some
      {
        Array_model.Array_eval.d_read;
        d_write;
        d_array;
        e_read;
        e_write;
        e_switching;
        e_leakage;
        e_total;
        edp;
        d_bl_read;
        d_row_path_read;
        d_col_path;
      }
  | _ -> None

let candidate_to_json c =
  J.Obj
    [
      ("geometry", geometry_to_json c.geometry);
      ("assist", assist_to_json c.assist);
      ("metrics", metrics_to_json c.metrics);
      ("score", J.Float c.score);
    ]

let candidate_of_json j =
  match
    ( Option.bind (J.member "geometry" j) geometry_of_json,
      Option.bind (J.member "assist" j) assist_of_json,
      Option.bind (J.member "metrics" j) metrics_of_json,
      J.float_field j "score" )
  with
  | Some geometry, Some assist, Some metrics, Some score ->
    Some { geometry; assist; metrics; score }
  | _ -> None

let levels_to_json (l : Yield.levels) =
  J.Obj
    [
      ("vddc_min", J.Float l.Yield.vddc_min);
      ("vwl_min", J.Float l.Yield.vwl_min);
      ("hsnm_nominal", J.Float l.Yield.hsnm_nominal);
    ]

let levels_of_json j =
  match
    ( J.float_field j "vddc_min",
      J.float_field j "vwl_min",
      J.float_field j "hsnm_nominal" )
  with
  | Some vddc_min, Some vwl_min, Some hsnm_nominal ->
    Some { Yield.vddc_min; vwl_min; hsnm_nominal }
  | _ -> None

let pins_to_json (p : Space.pins) =
  J.Obj
    [
      ("vddc", J.Float p.Space.vddc);
      ("vwl", J.Float p.Space.vwl);
      ("vssc_allowed", J.Bool p.Space.vssc_allowed);
      ("extra_levels", J.Int p.Space.extra_levels);
    ]

let pins_of_json j =
  match
    ( J.float_field j "vddc",
      J.float_field j "vwl",
      Option.bind (J.member "vssc_allowed" j) J.to_bool,
      J.int_field j "extra_levels" )
  with
  | Some vddc, Some vwl, Some vssc_allowed, Some extra_levels ->
    Some { Space.vddc; vwl; vssc_allowed; extra_levels }
  | _ -> None

let result_to_json r =
  J.Obj
    [
      ("best", candidate_to_json r.best);
      ("evaluated", J.Int r.evaluated);
      ("pruned", J.Int r.pruned);
      ("skipped", J.Int r.skipped);
      ("considered", J.Int r.considered);
      ("levels", levels_to_json r.levels);
      ("pins", pins_to_json r.pins);
    ]

let result_of_json j =
  match
    ( Option.bind (J.member "best" j) candidate_of_json,
      J.int_field j "evaluated",
      J.int_field j "pruned",
      Option.bind (J.member "levels" j) levels_of_json,
      Option.bind (J.member "pins" j) pins_of_json )
  with
  | Some best, Some evaluated, Some pruned, Some levels, Some pins ->
    (* [skipped] and [considered] postdate the codec; payloads written
       before them count no mid-scan abandonment (0 states that
       exactly), and the best stand-in for an unrecorded product is the
       work actually performed. *)
    let skipped = Option.value (J.int_field j "skipped") ~default:0 in
    let considered =
      Option.value (J.int_field j "considered") ~default:evaluated
    in
    Some { best; evaluated; pruned; skipped; considered; levels; pins }
  | _ -> None

(* ----- checkpoint task signature -----

   Everything a chunk result depends on is folded into the signature,
   so a journal written against different grids, pins, environment
   knobs or chunking simply matches nothing and the sweep recomputes —
   a stale journal can never corrupt a resumed run. *)
let task_signature ~objective ~kernel ~(env : Array_model.Array_eval.env)
    ~capacity_bits ~method_ ~every ~(geometries : Array_model.Geometry.t array)
    ~(vssc_values : float array) ~(pins : Space.pins) =
  let h = ref 0xcbf29ce484222325L in
  let mix i64 = h := Int64.mul (Int64.logxor !h i64) 0x100000001b3L in
  let mixi i = mix (Int64.of_int i) in
  let mixf x = mix (Int64.bits_of_float x) in
  mixi capacity_bits;
  mixi every;
  mixi (Array.length geometries);
  Array.iter
    (fun (g : Array_model.Geometry.t) ->
      mixi g.Array_model.Geometry.nr;
      mixi g.Array_model.Geometry.nc;
      mixi g.Array_model.Geometry.w;
      mixi g.Array_model.Geometry.n_pre;
      mixi g.Array_model.Geometry.n_wr)
    geometries;
  Array.iter mixf vssc_values;
  mixf pins.Space.vddc;
  mixf pins.Space.vwl;
  mixi (if pins.Space.vssc_allowed then 1 else 0);
  mixi pins.Space.extra_levels;
  mixf env.Array_model.Array_eval.alpha;
  mixf env.Array_model.Array_eval.beta;
  mixf env.Array_model.Array_eval.dcdc_overhead;
  let accounting =
    match env.Array_model.Array_eval.accounting with
    | Array_model.Array_eval.Paper_strict -> "paper"
    | Array_model.Array_eval.Physical -> "physical"
  in
  Printf.sprintf "search|%s|%s|%s|%s|%s|cap=%d|%016Lx"
    (Objective.name objective) (kernel_name kernel)
    (Finfet.Library.flavor_to_string env.Array_model.Array_eval.cell_flavor)
    (Space.method_name method_) accounting capacity_bits !h

exception Deadline_exceeded

(* ----- batched-scan reduction helpers -----

   Scores read straight from the scan buffer, matching [Objective.eval]'s
   arithmetic bit-for-bit: EDP is the buffer's edp slot, ED^2
   left-associates as (e *. d) *. d = edp *. d, and the single-field
   objectives are their slots verbatim. *)

let score_at objective buf i =
  let open Array_model.Array_eval in
  match objective with
  | Objective.Energy_delay_product -> (scan_edp buf).(i)
  | Objective.Energy_delay_squared -> (scan_edp buf).(i) *. (scan_d_array buf).(i)
  | Objective.Energy_only -> (scan_e_total buf).(i)
  | Objective.Delay_only -> (scan_d_array buf).(i)

(* First-strictly-better winner fold over scanned slots [lo, hi) —
   the sequential scan's earlier-index-wins tie break.  The objective
   match sits outside the loop; the loop itself reads flat float arrays
   and allocates only when the incumbent improves (boxed ref store). *)
let fold_block objective buf ~lo ~hi best_i best_score =
  let open Array_model.Array_eval in
  match objective with
  | Objective.Energy_delay_product ->
    let a = scan_edp buf in
    for i = lo to hi - 1 do
      let s = Array.unsafe_get a i in
      if s < !best_score then begin
        best_i := i;
        best_score := s
      end
    done
  | Objective.Energy_delay_squared ->
    let a = scan_edp buf and d = scan_d_array buf in
    for i = lo to hi - 1 do
      let s = Array.unsafe_get a i *. Array.unsafe_get d i in
      if s < !best_score then begin
        best_i := i;
        best_score := s
      end
    done
  | Objective.Energy_only ->
    let a = scan_e_total buf in
    for i = lo to hi - 1 do
      let s = Array.unsafe_get a i in
      if s < !best_score then begin
        best_i := i;
        best_score := s
      end
    done
  | Objective.Delay_only ->
    let a = scan_d_array buf in
    for i = lo to hi - 1 do
      let s = Array.unsafe_get a i in
      if s < !best_score then begin
        best_i := i;
        best_score := s
      end
    done

(* Per-domain scan buffers: one allocation per domain per process —
   not per chunk, not per geometry — shared by every search this
   process runs (the buffers grow to the largest scan seen and stay). *)
let scan_buf = Runtime.Pool.local Array_model.Array_eval.scan_buffer
let bound_buf = Runtime.Pool.local Array_model.Array_eval.scan_buffer

(* Candidate grids keyed by (space, capacity, w) — all plain data, so
   structural comparison is safe.  A Table 4 sweep re-enumerates the
   same grid for all four (flavor, method) searches of a capacity. *)
let geometry_memo :
    (Space.t * int * int option, Array_model.Geometry.t array) Runtime.Memo.t =
  Runtime.Memo.create ~name:"exhaustive.geometries" ~capacity:16 ()

(* Suffix-envelope block size: bounds are evaluated once per block, so
   the block trades bound overhead (one extra scan point per block)
   against how promptly a scan abandons its tail once the incumbent
   tightens below it. *)
let scan_block = 8

(* Bound tightness: relative gap (realized - bound) / realized between a
   line's admissible whole-line bound and the minimum its full scan
   actually achieved.  Near 0 means the envelope is nearly exact; mass
   near 1 would mean pruning works only because the incumbent is far
   better, not because the bound is tight.  Recorded for surviving
   fully-scanned lines when observability is on ([--stats] / serving),
   read back as quantiles by [--stats], BENCH_explain.json and the
   Prometheus exposition. *)
let bound_gap_hist = Obs.Histogram.create ~sample:1 "opt.bound_gap"

let journal_design (g : Array_model.Geometry.t) ~vssc =
  { Obs.Search.nr = g.Array_model.Geometry.nr;
    nc = g.Array_model.Geometry.nc;
    n_pre = g.Array_model.Geometry.n_pre;
    n_wr = g.Array_model.Geometry.n_wr;
    vssc }

let run ?(space = Space.default) ?(objective = Objective.Energy_delay_product)
    ?levels ?pool ?w ?(kernel = `Staged) ?stage_ctx ?journal ?deadline ~env
    ~capacity_bits ~method_ ~keep_all () =
  if not (Array_model.Geometry.is_power_of_two capacity_bits) then
    invalid_arg "Exhaustive.search: capacity must be a power of two";
  let pool = match pool with Some p -> p | None -> Runtime.Pool.default () in
  let journal =
    match journal with Some _ as j -> j | None -> Persist.Checkpoint.default ()
  in
  let flavor = env.Array_model.Array_eval.cell_flavor in
  let levels =
    match levels with Some l -> l | None -> Yield.solve ~flavor ()
  in
  let pins = Space.pins_for method_ levels in
  let vssc_values =
    if pins.Space.vssc_allowed then space.Space.vssc_values else [| 0.0 |]
  in
  (* The candidate grid depends only on (space, capacity, w) — a Table 4
     sweep enumerates the same grid for every (flavor, method) pair, so
     the array is shared through a memo.  Consumers only read it. *)
  let geometries =
    Runtime.Memo.find_or_compute geometry_memo (space, capacity_bits, w)
      (fun () ->
        Array.of_list (Space.candidate_geometries ?w space ~capacity_bits))
  in
  if Array.length geometries = 0 then
    invalid_arg "Exhaustive.search: empty geometry space";
  let evals = Runtime.Telemetry.counter "exhaustive.search" in
  let pruned_scans = Runtime.Telemetry.counter "exhaustive.pruned" in
  let nv = Array.length vssc_values in
  let assists = Array.map (fun vssc -> Space.assist_of pins ~vssc) vssc_values in
  (* Actual work counters (the old [geometries x vssc_values] product is
     wrong once scans are pruned).  On a resumed run these count only
     this process's work — replayed chunks contribute nothing. *)
  let n_evaluated = Atomic.make 0 in
  let n_pruned = Atomic.make 0 in
  let n_skipped = Atomic.make 0 in
  let count_evals n =
    ignore (Atomic.fetch_and_add n_evaluated n);
    Runtime.Telemetry.add evals n;
    Obs.Progress.add_evals n
  in
  Obs.Progress.add_total (Array.length geometries);
  (* Workers publish each geometry's scan minimum — an actually achieved
     score — and prune a later geometry only when its admissible lower
     bound strictly exceeds a published score.  A pruned geometry's true
     minimum is then strictly above the global minimum, so the winner
     (and the earlier-geometry tie break) is the same as the unpruned
     scan's for any job count; only the prune/eval counts are
     timing-dependent.  Hoisted out of the kernel match so a resumed
     run can seed it from journaled incumbents. *)
  let incumbent = Runtime.Shared_min.create () in
  (* One task per geometry chunk: scan the vssc axis in order, keeping
     the first-best candidate (and, when asked, every candidate in
     evaluation order).  The chunked results are reduced in geometry
     order below, so the output is bit-identical to the sequential
     geometry-major / vssc-minor scan for any job count. *)
  let eval_geometry_reference geometry =
    let best = ref None in
    let all = ref [] in
    Array.iter
      (fun assist ->
        let metrics = Array_model.Array_eval.evaluate env geometry assist in
        let score = Objective.eval objective metrics in
        let candidate = { geometry; assist; metrics; score } in
        if keep_all then all := candidate :: !all;
        match !best with
        | Some b when b.score <= score -> ()
        | Some _ | None -> best := Some candidate)
      assists;
    count_evals nv;
    (!best, List.rev !all)
  in
  let eval_line =
    match kernel with
    | `Reference -> fun i -> eval_geometry_reference geometries.(i)
    | `Staged when keep_all ->
      (* keep_all never prunes (the full candidate list is the
         contract), so it stays on the record-materializing path. *)
      let prepared = Array.map (Array_model.Array_eval.prepare env) assists in
      fun i ->
        let geometry = geometries.(i) in
        let st = Array_model.Array_eval.stage env geometry in
        let best = ref None in
        let all = ref [] in
        Array.iteri
          (fun i assist ->
            let metrics = Array_model.Array_eval.complete st prepared.(i) in
            let score = Objective.eval objective metrics in
            let candidate = { geometry; assist; metrics; score } in
            all := candidate :: !all;
            match !best with
            | Some b when b.score <= score -> ()
            | Some _ | None -> best := Some candidate)
          assists;
        count_evals nv;
        (!best, List.rev !all)
    | `Staged ->
      (* Hot path: the whole vssc scan runs through the allocation-free
         batched kernel; [metrics] is materialized once, for the line's
         winner.  Staging goes through a context — hoisted env-constant
         currents plus a geometry-keyed cache shared across the searches
         of a sweep (the caller passes its sweep-wide [stage_ctx]). *)
      let ctx =
        match stage_ctx with
        | Some c when Array_model.Array_eval.ctx_env c == env -> c
        | Some _ | None -> Array_model.Array_eval.ctx_for env
      in
      (* The whole grid is staged up front (cached per domain by the
         memoized grid's identity, so the sibling method's search gets
         it back for free) and each line reads its staged record by
         index — no per-line cache lookup on the scan path. *)
      let staged_arr = Array_model.Array_eval.stage_array ctx geometries in
      let prepared = Array.map (Array_model.Array_eval.prepare env) assists in
      (* Suffix envelopes as scan points: element 0 bounds the whole
         line (the per-geometry prune), element j > 0 bounds the points
         block j onward — evaluated by the same batched scan as real
         candidates, so pruning adds no record allocation either. *)
      let bound_ps =
        Array.map
          (Array_model.Array_eval.bound_prepared env)
          (Array_model.Array_eval.suffix_envelopes prepared ~block:scan_block)
      in
      let nb = Array.length bound_ps in
      (* Shared result for pruned lines: ~98% of lines die on the
         whole-line bound, so the constant saves a tuple per line. *)
      let pruned_line = (None, []) in
      fun i ->
        let st = Array.unsafe_get staged_arr i in
        let bbuf = Runtime.Pool.get_local bound_buf in
        (* Bound slot 0 (the whole-line bound) decides the per-geometry
           prune; most lines die on it, so the remaining suffix bounds
           are scanned only for survivors — a pruned line costs exactly
           one bound evaluation, as in the unbatched kernel. *)
        Array_model.Array_eval.scan_slice st bound_ps bbuf ~lo:0 ~hi:1;
        let line_bound = score_at objective bbuf 0 in
        if line_bound > Runtime.Shared_min.get incumbent then begin
          let np = Atomic.fetch_and_add n_pruned 1 in
          Runtime.Telemetry.incr pruned_scans;
          Obs.Progress.add_pruned 1;
          (* Journal a sample of prune decisions (observation only — the
             prune itself already happened).  The search's own prune
             counter doubles as the sampling clock, so the armed cost
             per pruned line is the [enabled] load alone; totals are
             folded into the journal once, at completion.  Whole-line
             events carry no vssc coordinate. *)
          if np land (Obs.Search.prune_sample - 1) = 0 && Obs.Search.enabled ()
          then
            Obs.Search.record_sampled_prune ~source:"exhaustive"
              ~bound:line_bound
              ~design:(journal_design geometries.(i) ~vssc:Float.nan);
          pruned_line
        end
        else begin
          if nb > 1 then
            Array_model.Array_eval.scan_slice st bound_ps bbuf ~lo:1 ~hi:nb;
          let buf = Runtime.Pool.get_local scan_buf in
          (* Block 0 seeds the incumbent from index 0 exactly as the
             sequential scan does, then folds the rest of the block. *)
          let h0 = min nv scan_block in
          Array_model.Array_eval.scan_slice st prepared buf ~lo:0 ~hi:h0;
          let best_i = ref 0 in
          let best_score = ref (score_at objective buf 0) in
          fold_block objective buf ~lo:1 ~hi:h0 best_i best_score;
          let scanned = ref h0 in
          let j = ref 1 in
          let live = ref (!j < nb) in
          while !live do
            (* Incremental envelope check between blocks: every point
               not yet scanned scores >= the suffix bound, so when that
               bound strictly exceeds both this line's best-so-far and
               the cross-line incumbent, the tail cannot contain the
               winner (or a tie) and the scan abandons it.  The prune
               stays exact as the incumbent tightens mid-scan. *)
            let tail_bound = score_at objective bbuf !j in
            let cutoff =
              Float.min !best_score (Runtime.Shared_min.get incumbent)
            in
            if tail_bound > cutoff then live := false
            else begin
              let lo = !j * scan_block in
              let hi = min nv (lo + scan_block) in
              Array_model.Array_eval.scan_slice st prepared buf ~lo ~hi;
              fold_block objective buf ~lo ~hi best_i best_score;
              scanned := hi;
              incr j;
              if !j >= nb then live := false
            end
          done;
          count_evals !scanned;
          if !scanned < nv then
            ignore (Atomic.fetch_and_add n_skipped (nv - !scanned));
          let bi = !best_i in
          let metrics = Array_model.Array_eval.complete st prepared.(bi) in
          let score = !best_score in
          (* Bound tightness is only meaningful against the line's true
             minimum, so abandoned scans (whose tail could still have
             improved [best_score], just not the winner) are excluded. *)
          if !scanned = nv && Obs.Control.is_enabled () && score > 0.0 then
            Obs.Histogram.observe bound_gap_hist
              ((score -. line_bound) /. score);
          (* The journal piggybacks on the CAS the search already pays:
             [publish_improved]'s boolean is read only when armed, so
             the published min — and therefore the winner — is
             identical with the journal on or off. *)
          let improved = Runtime.Shared_min.publish_improved incumbent score in
          if improved && Obs.Search.enabled () then
            Obs.Search.record_incumbent ~source:"exhaustive" ~score
              ~edp:metrics.Array_model.Array_eval.edp
              ~design:
                (journal_design geometries.(i)
                   ~vssc:assists.(bi).Array_model.Components.vssc);
          ( Some
              { geometry = Array.unsafe_get geometries i;
                assist = assists.(bi);
                metrics;
                score },
            [] )
        end
  in
  (* The per-geometry trace span is gated on [`Fine] detail: a full
     Table 4 sweep scans ~10^4 geometries and per-geometry events would
     dominate the trace buffer, so coarse traces keep only the
     structural spans (sweep / search / pool chunks). *)
  let eval_line i =
    (* Deadline check at geometry granularity: one geometry's vssc scan
       is microseconds, so an expired serving deadline stops the search
       almost immediately.  Under a pool the exception is re-raised in
       the caller once in-flight tasks finish — and every other chunk
       hits this same check on its next geometry, so the whole sweep
       drains in one scan's time rather than running to completion. *)
    (match deadline with
     | Some d when Runtime.Telemetry.now () > d -> raise Deadline_exceeded
     | _ -> ());
    let r =
      if Obs.Trace.fine_active () then
        Obs.Trace.with_span "exhaustive.eval" (fun () -> eval_line i)
      else eval_line i
    in
    Obs.Progress.add_done 1;
    r
  in
  (* Journaled path: geometries are processed in fixed chunks of
     [checkpoint_every]; each completed chunk is journaled with its
     best candidate and the running incumbent.  On resume, completed
     chunks are skipped and their stored winners folded back in.
     Because chunk-major order equals geometry order and [better] is an
     order-respecting left fold, the reduction over chunk bests is the
     same fold as the flat per-geometry reduction — and the stored
     candidates round-trip bit-exactly — so the final winner is
     bit-identical to an uninterrupted run at any job count. *)
  let run_chunked journal =
    let every = Persist.Checkpoint.checkpoint_every journal in
    let ngeom = Array.length geometries in
    let n_chunks = (ngeom + every - 1) / every in
    let task =
      task_signature ~objective ~kernel ~env ~capacity_bits ~method_ ~every
        ~geometries ~vssc_values ~pins
    in
    (* Seed the incumbent with every journaled chunk winner so pruning
       starts warm; winner determinism never depends on this. *)
    List.iter
      (fun (_, data) ->
        match Option.bind (J.member "best" data) candidate_of_json with
        | Some c -> Runtime.Shared_min.publish incumbent c.score
        | None -> ())
      (Persist.Checkpoint.completed_for journal ~task);
    let eval_chunk ci =
      let lo = ci * every in
      let hi = min ngeom ((ci + 1) * every) - 1 in
      (* A journaled chunk replays only if its stored best round-trips:
         a JSON [Null] best is a legitimately empty chunk, but a best
         that no longer decodes (e.g. Geometry invariants tightened
         since the journal was written) must be recomputed — treating
         it as empty could silently drop the true winner. *)
      let replayed =
        match Persist.Checkpoint.completed journal ~task ~chunk:ci with
        | None -> None
        | Some data -> (
          match J.member "best" data with
          | Some J.Null -> Some None
          | Some j -> (
            match candidate_of_json j with
            | Some c -> Some (Some c)
            | None -> None)
          | None -> None)
      in
      match replayed with
      | Some stored_best ->
        Obs.Progress.add_done (hi - lo + 1);
        stored_best
      | None ->
        let best = ref None in
        for i = lo to hi do
          best := better !best (fst (eval_line i))
        done;
        if Obs.Search.enabled () then
          Obs.Search.record_chunk ~source:"exhaustive" ~index:ci
            ~score:(match !best with Some c -> c.score | None -> infinity);
        let incumbent_json =
          let s = Runtime.Shared_min.get incumbent in
          if Float.is_finite s then J.Float s else J.Null
        in
        Persist.Checkpoint.record journal ~task ~chunk:ci
          (J.Obj
             [
               ( "best",
                 match !best with
                 | Some c -> candidate_to_json c
                 | None -> J.Null );
               ("incumbent", incumbent_json);
               ("lo", J.Int lo);
               ("hi", J.Int hi);
             ]);
        !best
    in
    Runtime.Pool.parmap ~chunk:1 pool eval_chunk
      (Array.init n_chunks (fun i -> i))
  in
  let best, all =
    match journal with
    | Some journal when not keep_all ->
      let chunk_bests =
        Runtime.Telemetry.time "exhaustive.search" (fun () ->
            run_chunked journal)
      in
      (Array.fold_left better None chunk_bests, [])
    | _ ->
      let per_geometry =
        Runtime.Telemetry.time "exhaustive.search" (fun () ->
            Runtime.Pool.parmap pool eval_line
              (Array.init (Array.length geometries) (fun i -> i)))
      in
      ( Array.fold_left (fun acc (b, _) -> better acc b) None per_geometry,
        if keep_all then List.concat_map snd (Array.to_list per_geometry)
        else [] )
  in
  match best with
  | None -> invalid_arg "Exhaustive.search: no candidates"
  | Some best ->
    Obs.Search.note_prunes (Atomic.get n_pruned);
    ( { best;
        evaluated = Atomic.get n_evaluated;
        pruned = Atomic.get n_pruned;
        skipped = Atomic.get n_skipped;
        considered = Array.length geometries * nv;
        levels;
        pins },
      all )

let search ?space ?objective ?levels ?pool ?w ?kernel ?stage_ctx ?journal
    ?deadline ~env ~capacity_bits ~method_ () =
  fst
    (run ?space ?objective ?levels ?pool ?w ?kernel ?stage_ctx ?journal
       ?deadline ~env ~capacity_bits ~method_ ~keep_all:false ())

let search_all ?space ?objective ?levels ?pool ?w ?kernel ~env ~capacity_bits
    ~method_ () =
  run ?space ?objective ?levels ?pool ?w ?kernel ~env ~capacity_bits ~method_
    ~keep_all:true ()
