(* NSGA-II over the co-optimization space, gated by the exhaustive
   oracle (test/test_moo.ml, bench moo).

   The genome is the four grid indices (n_r, N_pre, N_wr, V_SSC);
   fitness is the bi-objective vector (d_array, e_total) read off the
   batched scan kernel through {!Line_cache} — evaluating an individual
   prices its geometry's whole V_SSC line once, so the energy-delay
   front information the selection needs arrives at exhaustive-kernel
   throughput.  Selection is Deb's crowded non-dominated sort
   ({!Moo.fast_nondominated_sort} / {!Moo.crowding_distance}) with
   fully deterministic tie-breaks (rank, then crowding, then index).

   Determinism at any [--jobs]: every stochastic draw comes from a
   per-individual RNG stream seeded as [seed + 1021 * (gen * pop + i +
   1)] (the per-batch idiom {!Yield_mc} uses), consumed on the calling
   domain; parallelism only touches the pure line evaluations, which
   {!Line_cache} folds in request order.  Same seed, same population,
   same winner — bit for bit — at jobs 1, 2, 4, or 64.

   After the evolutionary phase the incumbent's geometry is polished by
   {!Line_cache.descend} (memetic step): the GA reliably lands in the
   global basin with a few percent of the space scanned, and the
   descent walks the remaining grid steps, which is what holds
   winner-regret at zero against the oracle. *)

type individual = {
  g : Line_cache.key;
  v : int;  (* V_SSC index *)
}

let check_deadline deadline =
  match deadline with
  | Some d when Runtime.Telemetry.now () > d -> raise Exhaustive.Deadline_exceeded
  | _ -> ()

let record_incumbent lc =
  if Obs.Search.enabled () then
    match Line_cache.best lc with
    | None -> ()
    | Some (k, i, score) ->
      let c = Line_cache.candidate lc k i in
      let g = c.Exhaustive.geometry in
      Obs.Search.record_incumbent ~source:"nsga2" ~score
        ~edp:c.Exhaustive.metrics.Array_model.Array_eval.edp
        ~design:
          { Obs.Search.nr = g.Array_model.Geometry.nr;
            nc = g.Array_model.Geometry.nc;
            n_pre = g.Array_model.Geometry.n_pre;
            n_wr = g.Array_model.Geometry.n_wr;
            vssc = c.Exhaustive.assist.Array_model.Components.vssc }

let search_front ?space ?objective ?levels ?pool ?w ?(pop = 24)
    ?(generations = 40) ?budget ?(seed = 42) ?deadline ~env ~capacity_bits
    ~method_ () =
  if pop < 4 then invalid_arg "Nsga2.search_front: pop must be >= 4";
  let pool = match pool with Some p -> p | None -> Runtime.Pool.default () in
  let lc =
    Line_cache.create ?space ?objective ?levels ~pool ?w ~env ~capacity_bits
      ~method_ ~counter:"nsga2.search" ()
  in
  let nv = Line_cache.nv lc in
  let n_nr = Line_cache.n_nr lc in
  let n_np = Line_cache.n_pre lc in
  let n_nw = Line_cache.n_wr lc in
  let space_points = n_nr * n_np * n_nw * nv in
  (* 2.5% of the space by default: together with the polish rows this
     keeps the measured total under the bench gate's 5%-of-oracle
     ceiling at every Table 4 capacity. *)
  let budget =
    match budget with
    | Some b -> b
    | None -> max (6 * pop * nv) (space_points * 5 / 200)
  in
  (* Reserve the budget tail for the descent polish: the GA phase stops
     at 60%, descent rows take the rest (and the gate in bench moo
     checks the measured total). *)
  let ga_budget = budget * 3 / 5 in
  let stream gen i =
    Numerics.Rng.create ~seed:(seed + (1021 * ((gen * pop) + i + 1)))
  in
  let random_individual rng =
    { g =
        { Line_cache.nr_i = Numerics.Rng.int_below rng n_nr;
          n_pre_i = Numerics.Rng.int_below rng n_np;
          n_wr_i = Numerics.Rng.int_below rng n_nw };
      v = Numerics.Rng.int_below rng nv }
  in
  let evaluate inds =
    Line_cache.ensure lc
      (Array.to_list (Array.map (fun ind -> ind.g) inds))
  in
  let objectives inds =
    Array.map
      (fun ind ->
        let d, e = Line_cache.point lc ind.g ind.v in
        [| d; e |])
      inds
  in
  (* rank + crowding for a whole population, aligned by index. *)
  let rank_and_crowd pts =
    let rank = Moo.fast_nondominated_sort pts in
    let crowd = Array.make (Array.length pts) 0.0 in
    let max_rank = Array.fold_left max 0 rank in
    for r = 0 to max_rank do
      let members =
        Array.of_list
          (List.filter
             (fun i -> rank.(i) = r)
             (List.init (Array.length pts) Fun.id))
      in
      if Array.length members > 0 then begin
        let d = Moo.crowding_distance pts members in
        Array.iteri (fun j i -> crowd.(i) <- d.(j)) members
      end
    done;
    (rank, crowd)
  in
  (* Crowded-comparison winner: lower rank, then larger crowding, then
     lower index (the deterministic tie-break). *)
  let better rank crowd a b =
    if rank.(a) <> rank.(b) then rank.(a) < rank.(b)
    else if crowd.(a) <> crowd.(b) then crowd.(a) > crowd.(b)
    else a < b
  in
  let mutate_gene rng dim i =
    if dim <= 1 then i
    else if Numerics.Rng.uniform rng < 0.5 then begin
      (* local step of 1 or 2 grid points, reflected at the edges *)
      let step = 1 + Numerics.Rng.int_below rng 2 in
      let dir = if Numerics.Rng.uniform rng < 0.5 then -1 else 1 in
      let j = i + (dir * step) in
      if j < 0 then min (dim - 1) (-j)
      else if j >= dim then max 0 ((2 * (dim - 1)) - j)
      else j
    end
    else Numerics.Rng.int_below rng dim
  in
  let population = ref (Array.init pop (fun i -> random_individual (stream 0 i))) in
  evaluate !population;
  record_incumbent lc;
  let gen = ref 1 in
  let continue_ = ref (generations > 0) in
  while !continue_ do
    check_deadline deadline;
    let parents = !population in
    let pts = objectives parents in
    let rank, crowd = rank_and_crowd pts in
    let offspring =
      Array.init pop (fun i ->
          let rng = stream !gen i in
          let pick () =
            let a = Numerics.Rng.int_below rng pop in
            let b = Numerics.Rng.int_below rng pop in
            if better rank crowd a b then parents.(a) else parents.(b)
          in
          let p1 = pick () in
          let p2 = pick () in
          let child =
            if Numerics.Rng.uniform rng < 0.9 then
              (* uniform crossover, gene by gene *)
              let take a b = if Numerics.Rng.uniform rng < 0.5 then a else b in
              { g =
                  { Line_cache.nr_i =
                      take p1.g.Line_cache.nr_i p2.g.Line_cache.nr_i;
                    n_pre_i = take p1.g.Line_cache.n_pre_i p2.g.Line_cache.n_pre_i;
                    n_wr_i = take p1.g.Line_cache.n_wr_i p2.g.Line_cache.n_wr_i };
                v = take p1.v p2.v }
            else p1
          in
          let maybe dim i =
            if Numerics.Rng.uniform rng < 0.25 then mutate_gene rng dim i else i
          in
          { g =
              { Line_cache.nr_i = maybe n_nr child.g.Line_cache.nr_i;
                n_pre_i = maybe n_np child.g.Line_cache.n_pre_i;
                n_wr_i = maybe n_nw child.g.Line_cache.n_wr_i };
            v = maybe nv child.v })
    in
    evaluate offspring;
    record_incumbent lc;
    let combined = Array.append parents offspring in
    let pts = objectives combined in
    let rank, crowd = rank_and_crowd pts in
    let order =
      List.sort
        (fun a b -> if better rank crowd a b then -1 else 1)
        (List.init (Array.length combined) Fun.id)
    in
    population :=
      Array.of_list
        (List.map (fun i -> combined.(i)) (List.filteri (fun j _ -> j < pop) order));
    incr gen;
    if !gen > generations || Line_cache.evaluated lc >= ga_budget then
      continue_ := false
  done;
  (* Memetic polish: coordinate descent from the incumbent's geometry
     on the vssc-minimized landscape. *)
  check_deadline deadline;
  (match Line_cache.best lc with
  | Some (k, _, _) ->
    let k' = Line_cache.descend lc k in
    ignore (Line_cache.descend_edges lc k')
  | None -> ());
  record_incumbent lc;
  (Line_cache.result lc, Line_cache.front lc)

let search ?space ?objective ?levels ?pool ?w ?pop ?generations ?budget ?seed
    ?deadline ~env ~capacity_bits ~method_ () =
  fst
    (search_front ?space ?objective ?levels ?pool ?w ?pop ?generations ?budget
       ?seed ?deadline ~env ~capacity_bits ~method_ ())
