(** Monte-Carlo (mu - k sigma) yield-constrained voltage pinning — the
    "accurate way to analytically express the constraint" that the paper
    states (Section 4) and then sets aside for the simplified threshold
    rule.  This module implements it, so the two constraint formulations
    can be compared end to end (bench `ablation`).

    The constraint is min over {HSNM, RSNM, WM} of (mu - k sigma) >= 0,
    with the margins sampled over per-transistor threshold-voltage
    variation. *)

type config = {
  k : float;          (** sigma multiplier, 1..6 (paper's range) *)
  samples : int;      (** Monte Carlo draws per constraint evaluation *)
  sigma_vt : float;   (** per-device Vt standard deviation *)
  seed : int;         (** base RNG seed (deterministic pipeline) *)
  points : int;       (** butterfly resolution per sample *)
}

val default_config : config
(** k = 3, 25 samples, sigma_vt = 20 mV, seed 7, 31-point butterflies. *)

val worst_margin :
  ?config:config ->
  ?pool:Runtime.Pool.t ->
  flavor:Finfet.Library.flavor ->
  vddc:float -> vssc:float -> vwl:float ->
  unit ->
  float
(** min over the three margins of (mu - k sigma) at the given assist
    levels (memoized per argument tuple).  With [pool] the Monte Carlo
    draws run as fixed-size batches on the pool, each batch with its own
    RNG stream keyed by (seed, batch index) — the result is identical
    for any job count (but uses a different sample stream than the
    single-threaded draw, so the two are cached separately). *)

type levels = {
  vddc_min : float;
  vwl_min : float;
  achieved_margin : float;  (** worst (mu - k sigma) at the solved pins *)
}

val solve :
  ?config:config ->
  ?pool:Runtime.Pool.t ->
  flavor:Finfet.Library.flavor ->
  unit ->
  levels
(** Minimum V_DDC and V_WL (snapped up to the 10 mV grid) such that the
    k-sigma constraint holds at V_SSC = 0.  V_DDC is driven by the RSNM
    distribution and V_WL by the WM distribution; both searches exploit
    the monotonicity of the respective mean margins in their voltage.
    [pool] parallelizes the Monte Carlo batches per constraint
    evaluation, deterministically (see {!worst_margin}). *)
