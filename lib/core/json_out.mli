(** Minimal JSON emission for scripting against the experiment results.

    The CLI's [--json] outputs are built from this tree; keeping the
    emitter in-repo avoids a dependency and is enough for the flat
    records the framework produces.  Strings are escaped per RFC 8259;
    floats use shortest round-trip formatting. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_string_pretty : ?indent:int -> t -> string
(** Multi-line rendering with the given indent width (default 2). *)

(** {1 Conversions for the framework's records} *)

val of_metrics : Array_model.Array_eval.metrics -> t

val of_design_row : Experiments.design_row -> t

val of_headline : Framework.headline -> t

val design_table_json :
  ?capacities:int list -> unit -> t
(** The full Table 4 / Figure 7 dataset as a JSON array. *)

(** {1 Runtime telemetry export} *)

val of_memo_stats : Runtime.Memo.stats -> t

val of_telemetry : Runtime.Telemetry.snapshot -> t

val of_histogram : Obs.Histogram.snapshot -> t
(** One latency histogram as name / samples / mean / min / max /
    p50 / p90 / p99 (seconds).  The snapshot must be non-empty:
    an empty one has infinite min/max, which JSON cannot express. *)

val histograms_json : unit -> t
(** Every registered {!Obs.Histogram} with at least one sample. *)

val of_window_slice : string -> Obs.Histogram.snapshot -> t
(** One trailing-window view: window label, sample count, sum, mean and
    p50/p90/p99 — all well-defined (0) for an empty window, so slices
    are always emittable (unlike {!of_histogram}). *)

val windows_json : unit -> t option
(** The ["windows"] section of the stats schema: the rotation period,
    every {!Obs.Window}-registered histogram as cumulative +
    per-window slices, and every tracked SLO counter as total +
    per-window deltas.  [None] when nothing registered a window (one-
    shot runs), keeping the non-serving schemas unchanged. *)

val runtime_stats_json : unit -> t
(** Default-pool job count, telemetry counters/spans, every memo
    cache's hit/miss/occupancy statistics, and all non-empty latency
    histograms — the CLI's [--stats --json] payload.  When the process
    has served requests (any [serve.*] counter is nonzero) a ["server"]
    section repeats the request/admission counters with the prefix
    stripped, so the serving bench and `stats` endpoint share this
    schema; a serving process likewise adds the ["windows"] section
    ({!windows_json}), and a run with an armed {!Obs.Search} journal a
    ["search_journal"] summary.  The full schema is documented in
    DESIGN.md §7 and pinned by the [stats.json] golden. *)

(** {1 Search-journal export (Obs.Search)} *)

val of_search_event : Obs.Search.event -> t
(** Non-finite fields (EDP of a prune event, V_SSC of a whole-line
    event) are omitted, never emitted as invalid JSON. *)

val of_search_summary : Obs.Search.summary -> t

val search_journal_json : unit -> t
(** [{"summary": ..., "events": [...]}] — the convergence curve
    [--search-log] writes and BENCH_explain.json embeds.  Events are in
    timestamp order. *)

(** {1 Attribution and explanation export} *)

val of_attribution : Array_model.Array_eval.attribution -> t
(** The ordered bit-exact term lists, the reference metrics, a
    [consistent_bitwise] flag (re-checked at emission), and the
    display-weighted E_total rollup. *)

val of_sensitivity : Opt.Explain.axis list -> t

val of_pareto : Opt.Explain.provenance -> t
