type config = {
  flavor : Finfet.Library.flavor;
  method_ : Opt.Space.method_;
}

let all_configs =
  [ { flavor = Finfet.Library.Lvt; method_ = Opt.Space.M1 };
    { flavor = Finfet.Library.Hvt; method_ = Opt.Space.M1 };
    { flavor = Finfet.Library.Lvt; method_ = Opt.Space.M2 };
    { flavor = Finfet.Library.Hvt; method_ = Opt.Space.M2 } ]

let config_name { flavor; method_ } =
  Printf.sprintf "6T-%s-%s"
    (Finfet.Library.flavor_to_string flavor)
    (Opt.Space.method_name method_)

type optimized = {
  capacity_bits : int;
  config : config;
  result : Opt.Exhaustive.result;
}

(* Canonical description of a search space's contents, so that any two
   [Opt.Space.t] values spanning the same grid memoize to the same key.
   Floats are normalized: [-0.0] (which [Space.default] actually contains
   at index 0, and which hashes differently from [+0.0]) collapses to
   [0.0], and sub-microvolt representation noise between arithmetically-
   built and literal grids is rounded away — 1 uV is far below the 10 mV
   search resolution, so distinct grids cannot collide. *)
type space_sig = {
  s_vssc : float list;
  s_nr : int list;
  s_n_pre : int list;
  s_n_wr : int list;
}

let canon_volts v =
  let r = Float.round (v *. 1e6) /. 1e6 in
  if r = 0.0 then 0.0 else r

let space_sig (s : Opt.Space.t) =
  { s_vssc = List.map canon_volts (Array.to_list s.Opt.Space.vssc_values);
    s_nr = Array.to_list s.Opt.Space.nr_values;
    s_n_pre = Array.to_list s.Opt.Space.n_pre_values;
    s_n_wr = Array.to_list s.Opt.Space.n_wr_values }

type cache_key = {
  k_capacity : int;
  k_config : config;
  k_objective : Opt.Objective.t;
  k_accounting : Array_model.Array_eval.accounting;
  k_w : int;
  k_space : space_sig;
  k_strategy : Opt.Strategy.t;
  (* Seed and budget only distinguish runs of the stochastic engines;
     for the deterministic ones they are normalized to the defaults so
     a request that spells them out still hits the cache. *)
  k_seed : int;
  k_budget : int;  (* 0 = engine default *)
}

let cache : (cache_key, optimized) Runtime.Memo.t =
  Runtime.Memo.create ~name:"framework.optimize" ~capacity:256 ()

(* Disk tier under --cache-dir: a full optimized design per key, so a
   Table 4 sweep repeated across processes costs one replay.  The key
   string spells out the whole canonical space grid (17 significant
   digits per voltage) — no hashing, so distinct grids cannot collide. *)
let disk_cache = Persist.Cache.create ~name:"framework.optimize" ()

let disk_key (k : cache_key) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s|cap=%d|%s|%s|w=%d|" (config_name k.k_config)
       k.k_capacity
       (Opt.Objective.name k.k_objective)
       (match k.k_accounting with
       | Array_model.Array_eval.Paper_strict -> "paper"
       | Array_model.Array_eval.Physical -> "physical")
       k.k_w);
  List.iter (fun v -> Buffer.add_string b (Printf.sprintf "%.17g," v))
    k.k_space.s_vssc;
  Buffer.add_char b '|';
  let ints xs = List.iter (fun v -> Buffer.add_string b (string_of_int v ^ ",")) xs in
  ints k.k_space.s_nr;
  Buffer.add_char b '|';
  ints k.k_space.s_n_pre;
  Buffer.add_char b '|';
  ints k.k_space.s_n_wr;
  (* Exhaustive keys keep their historical spelling, so disk caches
     written before the strategy dispatch existed stay valid; the
     other engines get an explicit suffix. *)
  if k.k_strategy <> Opt.Strategy.Exhaustive then
    Buffer.add_string b
      (Printf.sprintf "|strategy=%s|seed=%d|budget=%d"
         (Opt.Strategy.name k.k_strategy) k.k_seed k.k_budget);
  Buffer.contents b

let disk_load (k : cache_key) =
  match Persist.Cache.find disk_cache (disk_key k) with
  | None -> None
  | Some j ->
    Option.map
      (fun result ->
        { capacity_bits = k.k_capacity; config = k.k_config; result })
      (Opt.Exhaustive.result_of_json j)

let disk_store (k : cache_key) (o : optimized) =
  Persist.Cache.add disk_cache (disk_key k)
    (Opt.Exhaustive.result_to_json o.result)

let env_cache :
  (Finfet.Library.flavor * Array_model.Array_eval.accounting,
   Array_model.Array_eval.env)
  Runtime.Memo.t =
  Runtime.Memo.create ~name:"framework.env" ~capacity:8 ()

let env_for ~flavor ~accounting =
  Runtime.Memo.find_or_compute env_cache (flavor, accounting) (fun () ->
      Array_model.Array_eval.make_env ~accounting ~cell_flavor:flavor ())

(* The staging context registered for a memoized environment: because
   [env_for] returns the same physical env value per (flavor,
   accounting), every search the framework launches against it —
   across capacities, configs, sweeps and serve requests — shares one
   geometry-keyed staged cache.  The (n_r, n_c) grids of the five
   Table 4 capacities overlap heavily, and a config pair (M1/M2 of one
   flavor) shares its grid outright, so repeat geometries stage once
   per process instead of once per search. *)
let stage_ctx_for ~flavor ~accounting =
  Array_model.Array_eval.ctx_for (env_for ~flavor ~accounting)

let optimize ?space ?(objective = Opt.Objective.Energy_delay_product)
    ?(accounting = Array_model.Array_eval.Paper_strict) ?pool ?(w = 64)
    ?deadline ?(strategy = Opt.Strategy.Exhaustive)
    ?(rng_seed = Opt.Strategy.default_seed) ?budget ~capacity_bits ~config ()
    =
  let stochastic = not (Opt.Strategy.deterministic strategy) in
  let key =
    { k_capacity = capacity_bits; k_config = config; k_objective = objective;
      k_accounting = accounting; k_w = w;
      k_space =
        space_sig (match space with Some s -> s | None -> Opt.Space.default);
      k_strategy = strategy;
      k_seed = (if stochastic then rng_seed else Opt.Strategy.default_seed);
      k_budget =
        (if stochastic then Option.value ~default:0 budget else 0) }
  in
  (* The key canonicalizes the space's contents, so custom-space runs
     (e.g. [headline ~space:Opt.Space.reduced], the benchmark's staple)
     memoize just like default-space ones. *)
  Runtime.Memo.find_or_compute_tiered cache key ~load:disk_load
    ~store:disk_store (fun () ->
      Obs.Log.debug ~section:"framework"
        "optimize miss: %s %d bits — running %s search"
        (config_name config) capacity_bits
        (Opt.Strategy.name strategy);
      Runtime.Telemetry.time "framework.optimize" (fun () ->
          let env = env_for ~flavor:config.flavor ~accounting in
          let stage_ctx = Array_model.Array_eval.ctx_for env in
          let result =
            Opt.Strategy.run strategy ?space ~objective ?pool ~w ~stage_ctx
              ?deadline ?budget ~rng_seed ~env ~capacity_bits
              ~method_:config.method_ ()
          in
          { capacity_bits; config; result }))

let paper_capacities =
  List.map (fun bytes -> bytes * 8) [ 128; 256; 1024; 4096; 16384 ]

let sweep_capacities ?space ?accounting ?pool ~capacities ~configs () =
  Runtime.Telemetry.time "framework.sweep" (fun () ->
      List.concat_map
        (fun capacity_bits ->
          List.map
            (fun config ->
              optimize ?space ?accounting ?pool ~capacity_bits ~config ())
            configs)
        capacities)

let metrics o = o.result.Opt.Exhaustive.best.Opt.Exhaustive.metrics
let geometry o = o.result.Opt.Exhaustive.best.Opt.Exhaustive.geometry
let assist o = o.result.Opt.Exhaustive.best.Opt.Exhaustive.assist

type headline = {
  avg_edp_reduction : float;
  avg_delay_penalty : float;
  max_delay_penalty : float;
  per_capacity : (int * float * float) list;
}

let headline ?capacities ?space ?accounting ?pool () =
  let capacities =
    match capacities with
    | Some c -> c
    | None -> List.map (fun bytes -> bytes * 8) [ 1024; 4096; 16384 ]
  in
  let per_capacity =
    List.map
      (fun capacity_bits ->
        let hvt =
          optimize ?space ?accounting ?pool ~capacity_bits
            ~config:{ flavor = Finfet.Library.Hvt; method_ = Opt.Space.M2 } ()
        in
        let lvt =
          optimize ?space ?accounting ?pool ~capacity_bits
            ~config:{ flavor = Finfet.Library.Lvt; method_ = Opt.Space.M2 } ()
        in
        let mh = metrics hvt and ml = metrics lvt in
        let reduction =
          1.0 -. (mh.Array_model.Array_eval.edp /. ml.Array_model.Array_eval.edp)
        in
        let penalty =
          (mh.Array_model.Array_eval.d_array /. ml.Array_model.Array_eval.d_array)
          -. 1.0
        in
        (capacity_bits, reduction, penalty))
      capacities
  in
  let n = float_of_int (List.length per_capacity) in
  let avg f = List.fold_left (fun acc x -> acc +. f x) 0.0 per_capacity /. n in
  { avg_edp_reduction = avg (fun (_, r, _) -> r);
    avg_delay_penalty = avg (fun (_, _, p) -> p);
    max_delay_penalty =
      List.fold_left (fun acc (_, _, p) -> max acc p) neg_infinity per_capacity;
    per_capacity }
