(** The device-circuit-architecture co-optimization framework: the paper's
    primary contribution, wrapped as a single entry point.

    Given a capacity, a cell device flavor (device level), a voltage-pin
    policy (circuit level: which assist rails exist and at what levels),
    the framework searches the array organization and assist voltages
    (architecture level) for the minimum energy-delay-product design whose
    cell margins meet the yield rule. *)

type config = {
  flavor : Finfet.Library.flavor;
  method_ : Opt.Space.method_;
}

val all_configs : config list
(** The paper's four: LVT/HVT x M1/M2. *)

val config_name : config -> string
(** e.g. "6T-HVT-M2". *)

type optimized = {
  capacity_bits : int;
  config : config;
  result : Opt.Exhaustive.result;
}

val optimize :
  ?space:Opt.Space.t ->
  ?objective:Opt.Objective.t ->
  ?accounting:Array_model.Array_eval.accounting ->
  ?pool:Runtime.Pool.t ->
  ?w:int ->
  ?deadline:float ->
  ?strategy:Opt.Strategy.t ->
  ?rng_seed:int ->
  ?budget:int ->
  capacity_bits:int ->
  config:config ->
  unit ->
  optimized
(** One full co-optimization run.  Results are memoized (bounded LRU)
    per (capacity, config, objective, accounting, w, space contents,
    strategy, seed, budget) — the space is keyed by a canonical
    signature of its grids (with [-0.0] / representation noise
    normalized away), so repeated CLI / serving requests for the same
    design are cache hits whether or not the space was passed
    explicitly.  [strategy] (default {!Opt.Strategy.Exhaustive})
    selects the search engine via {!Opt.Strategy.run}; [rng_seed]
    (default {!Opt.Strategy.default_seed}) and [budget] feed the
    stochastic engines and are normalized out of the cache key for the
    deterministic ones.  [pool] parallelizes the underlying search
    deterministically (default: {!Runtime.Pool.default}).  [deadline]
    (absolute {!Runtime.Telemetry.now} seconds, the serving layer's
    per-request budget) aborts a cache-missing search with
    {!Opt.Exhaustive.Deadline_exceeded}; nothing partial is cached, and
    a memo or disk hit is returned regardless of the deadline. *)

val paper_capacities : int list
(** 128B, 256B, 1KB, 4KB, 16KB — in bits. *)

val stage_ctx_for :
  flavor:Finfet.Library.flavor ->
  accounting:Array_model.Array_eval.accounting ->
  Array_model.Array_eval.ctx
(** The staging context shared by every search the framework runs for
    this (flavor, accounting): environments are memoized per pair, so
    the context's geometry-keyed staged cache is hit across capacities,
    configs, sweeps and serve requests — the (n_r, n_c) grids overlap
    heavily across the Table 4 capacities and are identical between the
    M1/M2 configs of one flavor.  Exposed for benchmarks that drive
    {!Opt.Exhaustive.search} directly with framework environments. *)

val sweep_capacities :
  ?space:Opt.Space.t ->
  ?accounting:Array_model.Array_eval.accounting ->
  ?pool:Runtime.Pool.t ->
  capacities:int list ->
  configs:config list ->
  unit ->
  optimized list
(** Cross product, memoized. *)

type headline = {
  avg_edp_reduction : float;
      (** mean (1 - EDP_hvt_m2 / EDP_lvt_m2) over capacities >= 1KB *)
  avg_delay_penalty : float;
      (** mean (D_hvt_m2 / D_lvt_m2 - 1) over the same capacities *)
  max_delay_penalty : float;
  per_capacity : (int * float * float) list;
      (** capacity_bits, edp reduction, delay penalty *)
}

val headline :
  ?capacities:int list ->
  ?space:Opt.Space.t ->
  ?accounting:Array_model.Array_eval.accounting ->
  ?pool:Runtime.Pool.t ->
  unit ->
  headline
(** The paper's abstract numbers: HVT-M2 vs LVT-M2 over 1KB..16KB
    (its claim: 59%% lower EDP, max 12%% / avg 9%% delay penalty). *)

val metrics : optimized -> Array_model.Array_eval.metrics
val geometry : optimized -> Array_model.Geometry.t
val assist : optimized -> Array_model.Components.assist
