type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf (String key);
        Buffer.add_char buf ':';
        emit buf value)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let rec emit_pretty buf ~indent ~level = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> emit buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
    let pad n = Buffer.add_string buf (String.make (indent * n) ' ') in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (level + 1);
        emit_pretty buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf ']'
  | Obj fields ->
    let pad n = Buffer.add_string buf (String.make (indent * n) ' ') in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (level + 1);
        emit buf (String key);
        Buffer.add_string buf ": ";
        emit_pretty buf ~indent ~level:(level + 1) value)
      fields;
    Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf '}'

let to_string_pretty ?(indent = 2) t =
  let buf = Buffer.create 512 in
  emit_pretty buf ~indent ~level:0 t;
  Buffer.contents buf

let of_metrics (m : Array_model.Array_eval.metrics) =
  Obj
    [ ("d_read_s", Float m.Array_model.Array_eval.d_read);
      ("d_write_s", Float m.Array_model.Array_eval.d_write);
      ("d_array_s", Float m.Array_model.Array_eval.d_array);
      ("e_read_j", Float m.Array_model.Array_eval.e_read);
      ("e_write_j", Float m.Array_model.Array_eval.e_write);
      ("e_switching_j", Float m.Array_model.Array_eval.e_switching);
      ("e_leakage_j", Float m.Array_model.Array_eval.e_leakage);
      ("e_total_j", Float m.Array_model.Array_eval.e_total);
      ("edp_js", Float m.Array_model.Array_eval.edp);
      ("d_bl_read_s", Float m.Array_model.Array_eval.d_bl_read) ]

let of_design_row (r : Experiments.design_row) =
  Obj
    [ ("capacity_bits", Int r.Experiments.capacity_bits);
      ("config", String (Framework.config_name r.Experiments.config));
      ("nr", Int r.Experiments.nr);
      ("nc", Int r.Experiments.nc);
      ("n_pre", Int r.Experiments.n_pre);
      ("n_wr", Int r.Experiments.n_wr);
      ("vddc_v", Float r.Experiments.vddc);
      ("vssc_v", Float r.Experiments.vssc);
      ("vwl_v", Float r.Experiments.vwl);
      ("d_array_s", Float r.Experiments.d_array);
      ("e_total_j", Float r.Experiments.e_total);
      ("edp_js", Float r.Experiments.edp);
      ("d_bl_read_s", Float r.Experiments.d_bl_read) ]

let of_headline (h : Framework.headline) =
  Obj
    [ ("avg_edp_reduction", Float h.Framework.avg_edp_reduction);
      ("avg_delay_penalty", Float h.Framework.avg_delay_penalty);
      ("max_delay_penalty", Float h.Framework.max_delay_penalty);
      ("per_capacity",
       List
         (List.map
            (fun (bits, reduction, penalty) ->
              Obj
                [ ("capacity_bits", Int bits);
                  ("edp_reduction", Float reduction);
                  ("delay_penalty", Float penalty) ])
            h.Framework.per_capacity)) ]

let design_table_json ?capacities () =
  List (List.map of_design_row (Experiments.design_table ?capacities ()))

let of_memo_stats (s : Runtime.Memo.stats) =
  Obj
    [ ("name", String s.Runtime.Memo.name);
      ("capacity", Int s.Runtime.Memo.capacity);
      ("length", Int s.Runtime.Memo.length);
      ("hits", Int s.Runtime.Memo.hits);
      ("misses", Int s.Runtime.Memo.misses);
      ("evictions", Int s.Runtime.Memo.evictions);
      ("hit_rate", Float (Runtime.Memo.hit_rate s));
      ("occupancy", Float (Runtime.Memo.occupancy s)) ]

let of_histogram (s : Obs.Histogram.snapshot) =
  Obj
    [ ("name", String s.Obs.Histogram.name);
      ("samples", Int s.Obs.Histogram.count);
      ("sample_every", Int s.Obs.Histogram.sample);
      ("mean_s", Float (Obs.Histogram.mean s));
      ("min_s", Float s.Obs.Histogram.min_s);
      ("max_s", Float s.Obs.Histogram.max_s);
      ("p50_s", Float (Obs.Histogram.percentile s 0.50));
      ("p90_s", Float (Obs.Histogram.percentile s 0.90));
      ("p99_s", Float (Obs.Histogram.percentile s 0.99));
      ("gc_coincident", Int s.Obs.Histogram.gc_coincident) ]

(* Empty histograms are dropped rather than emitted: their min/max are
   infinities, which have no JSON representation. *)
let histograms_json () =
  List
    (List.filter_map
       (fun (s : Obs.Histogram.snapshot) ->
         if s.Obs.Histogram.count > 0 then Some (of_histogram s) else None)
       (Obs.Histogram.snapshots ()))

let of_telemetry (snap : Runtime.Telemetry.snapshot) =
  Obj
    [ ("counters",
       Obj
         (List.map
            (fun (name, n) -> (name, Int n))
            snap.Runtime.Telemetry.counters));
      ("spans",
       List
         (List.map
            (fun (s : Runtime.Telemetry.span) ->
              Obj
                [ ("name", String s.Runtime.Telemetry.span_name);
                  ("calls", Int s.Runtime.Telemetry.calls);
                  ("total_s", Float s.Runtime.Telemetry.total_s) ])
            snap.Runtime.Telemetry.spans)) ]

(* A windowed slice never emits min/max (re-estimated bounds, and
   infinities when the window is empty) — just the sample count, sum
   and quantiles, all of which are well-defined (0) for an empty
   window. *)
let of_window_slice label (s : Obs.Histogram.snapshot) =
  Obj
    [ ("window", String label);
      ("samples", Int s.Obs.Histogram.count);
      ("sum_s", Float s.Obs.Histogram.sum);
      ("mean_s", Float (Obs.Histogram.mean s));
      ("p50_s", Float (Obs.Histogram.percentile s 0.50));
      ("p90_s", Float (Obs.Histogram.percentile s 0.90));
      ("p99_s", Float (Obs.Histogram.percentile s 0.99)) ]

(* The `windows` section of the stats schema (DESIGN.md §7): recent-
   traffic views of the windowed histograms and SLO counters, absent
   entirely for one-shot runs (nothing registered a window). *)
let windows_json () =
  let histograms = Obs.Window.report () in
  let counters = Obs.Window.counter_report () in
  if histograms = [] && counters = [] then None
  else
    Some
      (Obj
         [ ("period_s", Float (Obs.Window.current_period ()));
           ("histograms",
            List
              (List.filter_map
                 (fun (name, cumulative, windows) ->
                   if cumulative.Obs.Histogram.count = 0 then None
                   else
                     Some
                       (Obj
                          [ ("name", String name);
                            ("cumulative", of_histogram cumulative);
                            ("windows",
                             List
                               (List.map
                                  (fun (label, s) -> of_window_slice label s)
                                  windows)) ]))
                 histograms));
           ("counters",
            List
              (List.map
                 (fun (name, total, windows) ->
                   Obj
                     [ ("name", String name);
                       ("total", Int total);
                       ("windows",
                        List
                          (List.map
                             (fun (label, delta) ->
                               Obj
                                 [ ("window", String label);
                                   ("delta", Int delta) ])
                             windows)) ])
                 counters)) ])

(* When the process is (or was) a server, surface the [serve.*] request
   counters as their own section — BENCH_serve.json and the `stats`
   endpoint then carry the serving telemetry under one key instead of
   scattered through the flat counter list.  One-shot runs have no
   serve counters and omit the section, keeping the other BENCH_*.json
   schemas unchanged. *)
let server_stats_json () =
  let prefix = "serve." in
  let serve_counters =
    List.filter_map
      (fun (name, v) ->
        if String.starts_with ~prefix name then
          Some
            ( String.sub name (String.length prefix)
                (String.length name - String.length prefix),
              Int v )
        else None)
      (Runtime.Telemetry.snapshot ()).Runtime.Telemetry.counters
  in
  if serve_counters = [] then None else Some (Obj serve_counters)

(* ----- search journal (Obs.Search) ----- *)

(* Non-finite floats have no JSON representation, and several journal
   fields legitimately carry them (EDP of a prune event, V_SSC of a
   whole-line event, timestamps of an improvement that never happened) —
   those fields are omitted rather than emitted. *)
let finite_field name v = if Float.is_finite v then [ (name, Float v) ] else []

let of_search_design (d : Obs.Search.design) =
  Obj
    ([ ("nr", Int d.Obs.Search.nr);
       ("nc", Int d.Obs.Search.nc);
       ("n_pre", Int d.Obs.Search.n_pre);
       ("n_wr", Int d.Obs.Search.n_wr) ]
     @ finite_field "vssc_v" d.Obs.Search.vssc)

let of_search_event (ev : Obs.Search.event) =
  Obj
    ([ ("t_s", Float ev.Obs.Search.t);
       ("kind", String (Obs.Search.kind_name ev.Obs.Search.kind));
       ("source", String ev.Obs.Search.source) ]
     @ finite_field "score" ev.Obs.Search.score
     @ finite_field "edp_js" ev.Obs.Search.edp
     @ (match ev.Obs.Search.design with
        | Some d -> [ ("design", of_search_design d) ]
        | None -> [])
     @
     match ev.Obs.Search.kind with
     | Obs.Search.Chunk -> [ ("chunk", Int ev.Obs.Search.detail) ]
     | Obs.Search.Incumbent | Obs.Search.Prune -> [])

let of_search_summary (s : Obs.Search.summary) =
  Obj
    ([ ("incumbents", Int s.Obs.Search.incumbents);
       ("chunks", Int s.Obs.Search.chunks);
       ("prunes", Int s.Obs.Search.prunes);
       ("prune_sample", Int Obs.Search.prune_sample);
       ("journaled", Int s.Obs.Search.journaled);
       ("dropped", Int s.Obs.Search.dropped) ]
     @ finite_field "best_score" s.Obs.Search.best_score
     @ finite_field "first_improvement_s" s.Obs.Search.first_improvement_s
     @ finite_field "last_improvement_s" s.Obs.Search.last_improvement_s)

(* The full convergence curve: what --search-log writes and the bench
   harness embeds.  Events are already in timestamp order. *)
let search_journal_json () =
  Obj
    [ ("summary", of_search_summary (Obs.Search.summary ()));
      ("events", List (List.map of_search_event (Obs.Search.events ()))) ]

(* ----- attribution (Array_eval.attribute) ----- *)

let of_terms terms =
  List (List.map (fun (name, v) -> Obj [ ("component", String name);
                                         ("value", Float v) ]) terms)

let of_attribution (at : Array_model.Array_eval.attribution) =
  let open Array_model.Array_eval in
  Obj
    [ ("metrics", of_metrics at.at_metrics);
      ("alpha", Float at.at_alpha);
      ("beta", Float at.at_beta);
      ("consistent_bitwise", Bool (attribution_consistent at));
      ("read_energy_j", of_terms at.at_read_energy);
      ("write_energy_j", of_terms at.at_write_energy);
      ("read_delay_row_s", of_terms at.at_read_row);
      ("read_delay_col_s", of_terms at.at_read_col);
      ("read_delay_tail_s", of_terms at.at_read_tail);
      ("write_delay_row_s", of_terms at.at_write_row);
      ("write_delay_col_s", of_terms at.at_write_col);
      ("write_delay_tail_s", of_terms at.at_write_tail);
      ("e_total_rollup_j", of_terms (Opt.Explain.energy_rollup at)) ]

let of_sensitivity (axes : Opt.Explain.axis list) =
  let of_neighbor = function
    | None -> Null
    | Some (n : Opt.Explain.neighbor) ->
      Obj
        [ ("value", Float n.Opt.Explain.nb_value);
          ("score", Float n.Opt.Explain.nb_score);
          ("delta", Float n.Opt.Explain.nb_delta) ]
  in
  List
    (List.map
       (fun (ax : Opt.Explain.axis) ->
         Obj
           [ ("axis", String ax.Opt.Explain.ax_name);
             ("value", Float ax.Opt.Explain.ax_value);
             ("minus", of_neighbor ax.Opt.Explain.ax_minus);
             ("plus", of_neighbor ax.Opt.Explain.ax_plus) ])
       axes)

let of_pareto (p : Opt.Explain.provenance) =
  let of_candidate (c : Opt.Exhaustive.candidate) =
    let g = c.Opt.Exhaustive.geometry in
    let m = c.Opt.Exhaustive.metrics in
    Obj
      [ ("nr", Int g.Array_model.Geometry.nr);
        ("nc", Int g.Array_model.Geometry.nc);
        ("n_pre", Int g.Array_model.Geometry.n_pre);
        ("n_wr", Int g.Array_model.Geometry.n_wr);
        ("vssc_v", Float c.Opt.Exhaustive.assist.Array_model.Components.vssc);
        ("d_array_s", Float m.Array_model.Array_eval.d_array);
        ("e_total_j", Float m.Array_model.Array_eval.e_total);
        ("edp_js", Float m.Array_model.Array_eval.edp) ]
  in
  Obj
    [ ("source", String p.Opt.Explain.pv_source);
      ("evaluated", Int p.Opt.Explain.pv_evaluated);
      ("dominated", Int p.Opt.Explain.pv_dominated);
      ("front", List (List.map of_candidate p.Opt.Explain.pv_front));
      ("knee",
       match p.Opt.Explain.pv_knee with
       | Some c -> of_candidate c
       | None -> Null) ]

let runtime_stats_json () =
  let base =
    [ ("jobs", Int (Runtime.Pool.default_jobs ()));
      ("telemetry", of_telemetry (Runtime.Telemetry.snapshot ()));
      ("memos", List (List.map of_memo_stats (Runtime.Memo.registered_stats ())));
      ("histograms", histograms_json ()) ]
  in
  let optional =
    (match windows_json () with
     | None -> []
     | Some w -> [ ("windows", w) ])
    @ (match server_stats_json () with
       | None -> []
       | Some server -> [ ("server", server) ])
    @
    (* Convergence summary rides along whenever a journal recorded
       anything (events or counted prunes). *)
    (let s = Obs.Search.summary () in
     if s.Obs.Search.journaled > 0 || s.Obs.Search.prunes > 0 then
       [ ("search_journal", of_search_summary s) ]
     else [])
  in
  Obj (base @ optional)
