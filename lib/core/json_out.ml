type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf (String key);
        Buffer.add_char buf ':';
        emit buf value)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

let rec emit_pretty buf ~indent ~level = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> emit buf v
  | List [] -> Buffer.add_string buf "[]"
  | Obj [] -> Buffer.add_string buf "{}"
  | List items ->
    let pad n = Buffer.add_string buf (String.make (indent * n) ' ') in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (level + 1);
        emit_pretty buf ~indent ~level:(level + 1) item)
      items;
    Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf ']'
  | Obj fields ->
    let pad n = Buffer.add_string buf (String.make (indent * n) ' ') in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_string buf ",\n";
        pad (level + 1);
        emit buf (String key);
        Buffer.add_string buf ": ";
        emit_pretty buf ~indent ~level:(level + 1) value)
      fields;
    Buffer.add_char buf '\n';
    pad level;
    Buffer.add_char buf '}'

let to_string_pretty ?(indent = 2) t =
  let buf = Buffer.create 512 in
  emit_pretty buf ~indent ~level:0 t;
  Buffer.contents buf

let of_metrics (m : Array_model.Array_eval.metrics) =
  Obj
    [ ("d_read_s", Float m.Array_model.Array_eval.d_read);
      ("d_write_s", Float m.Array_model.Array_eval.d_write);
      ("d_array_s", Float m.Array_model.Array_eval.d_array);
      ("e_read_j", Float m.Array_model.Array_eval.e_read);
      ("e_write_j", Float m.Array_model.Array_eval.e_write);
      ("e_switching_j", Float m.Array_model.Array_eval.e_switching);
      ("e_leakage_j", Float m.Array_model.Array_eval.e_leakage);
      ("e_total_j", Float m.Array_model.Array_eval.e_total);
      ("edp_js", Float m.Array_model.Array_eval.edp);
      ("d_bl_read_s", Float m.Array_model.Array_eval.d_bl_read) ]

let of_design_row (r : Experiments.design_row) =
  Obj
    [ ("capacity_bits", Int r.Experiments.capacity_bits);
      ("config", String (Framework.config_name r.Experiments.config));
      ("nr", Int r.Experiments.nr);
      ("nc", Int r.Experiments.nc);
      ("n_pre", Int r.Experiments.n_pre);
      ("n_wr", Int r.Experiments.n_wr);
      ("vddc_v", Float r.Experiments.vddc);
      ("vssc_v", Float r.Experiments.vssc);
      ("vwl_v", Float r.Experiments.vwl);
      ("d_array_s", Float r.Experiments.d_array);
      ("e_total_j", Float r.Experiments.e_total);
      ("edp_js", Float r.Experiments.edp);
      ("d_bl_read_s", Float r.Experiments.d_bl_read) ]

let of_headline (h : Framework.headline) =
  Obj
    [ ("avg_edp_reduction", Float h.Framework.avg_edp_reduction);
      ("avg_delay_penalty", Float h.Framework.avg_delay_penalty);
      ("max_delay_penalty", Float h.Framework.max_delay_penalty);
      ("per_capacity",
       List
         (List.map
            (fun (bits, reduction, penalty) ->
              Obj
                [ ("capacity_bits", Int bits);
                  ("edp_reduction", Float reduction);
                  ("delay_penalty", Float penalty) ])
            h.Framework.per_capacity)) ]

let design_table_json ?capacities () =
  List (List.map of_design_row (Experiments.design_table ?capacities ()))

let of_memo_stats (s : Runtime.Memo.stats) =
  Obj
    [ ("name", String s.Runtime.Memo.name);
      ("capacity", Int s.Runtime.Memo.capacity);
      ("length", Int s.Runtime.Memo.length);
      ("hits", Int s.Runtime.Memo.hits);
      ("misses", Int s.Runtime.Memo.misses);
      ("evictions", Int s.Runtime.Memo.evictions);
      ("hit_rate", Float (Runtime.Memo.hit_rate s));
      ("occupancy", Float (Runtime.Memo.occupancy s)) ]

let of_histogram (s : Obs.Histogram.snapshot) =
  Obj
    [ ("name", String s.Obs.Histogram.name);
      ("samples", Int s.Obs.Histogram.count);
      ("sample_every", Int s.Obs.Histogram.sample);
      ("mean_s", Float (Obs.Histogram.mean s));
      ("min_s", Float s.Obs.Histogram.min_s);
      ("max_s", Float s.Obs.Histogram.max_s);
      ("p50_s", Float (Obs.Histogram.percentile s 0.50));
      ("p90_s", Float (Obs.Histogram.percentile s 0.90));
      ("p99_s", Float (Obs.Histogram.percentile s 0.99));
      ("gc_coincident", Int s.Obs.Histogram.gc_coincident) ]

(* Empty histograms are dropped rather than emitted: their min/max are
   infinities, which have no JSON representation. *)
let histograms_json () =
  List
    (List.filter_map
       (fun (s : Obs.Histogram.snapshot) ->
         if s.Obs.Histogram.count > 0 then Some (of_histogram s) else None)
       (Obs.Histogram.snapshots ()))

let of_telemetry (snap : Runtime.Telemetry.snapshot) =
  Obj
    [ ("counters",
       Obj
         (List.map
            (fun (name, n) -> (name, Int n))
            snap.Runtime.Telemetry.counters));
      ("spans",
       List
         (List.map
            (fun (s : Runtime.Telemetry.span) ->
              Obj
                [ ("name", String s.Runtime.Telemetry.span_name);
                  ("calls", Int s.Runtime.Telemetry.calls);
                  ("total_s", Float s.Runtime.Telemetry.total_s) ])
            snap.Runtime.Telemetry.spans)) ]

(* A windowed slice never emits min/max (re-estimated bounds, and
   infinities when the window is empty) — just the sample count, sum
   and quantiles, all of which are well-defined (0) for an empty
   window. *)
let of_window_slice label (s : Obs.Histogram.snapshot) =
  Obj
    [ ("window", String label);
      ("samples", Int s.Obs.Histogram.count);
      ("sum_s", Float s.Obs.Histogram.sum);
      ("mean_s", Float (Obs.Histogram.mean s));
      ("p50_s", Float (Obs.Histogram.percentile s 0.50));
      ("p90_s", Float (Obs.Histogram.percentile s 0.90));
      ("p99_s", Float (Obs.Histogram.percentile s 0.99)) ]

(* The `windows` section of the stats schema (DESIGN.md §7): recent-
   traffic views of the windowed histograms and SLO counters, absent
   entirely for one-shot runs (nothing registered a window). *)
let windows_json () =
  let histograms = Obs.Window.report () in
  let counters = Obs.Window.counter_report () in
  if histograms = [] && counters = [] then None
  else
    Some
      (Obj
         [ ("period_s", Float (Obs.Window.current_period ()));
           ("histograms",
            List
              (List.filter_map
                 (fun (name, cumulative, windows) ->
                   if cumulative.Obs.Histogram.count = 0 then None
                   else
                     Some
                       (Obj
                          [ ("name", String name);
                            ("cumulative", of_histogram cumulative);
                            ("windows",
                             List
                               (List.map
                                  (fun (label, s) -> of_window_slice label s)
                                  windows)) ]))
                 histograms));
           ("counters",
            List
              (List.map
                 (fun (name, total, windows) ->
                   Obj
                     [ ("name", String name);
                       ("total", Int total);
                       ("windows",
                        List
                          (List.map
                             (fun (label, delta) ->
                               Obj
                                 [ ("window", String label);
                                   ("delta", Int delta) ])
                             windows)) ])
                 counters)) ])

(* When the process is (or was) a server, surface the [serve.*] request
   counters as their own section — BENCH_serve.json and the `stats`
   endpoint then carry the serving telemetry under one key instead of
   scattered through the flat counter list.  One-shot runs have no
   serve counters and omit the section, keeping the other BENCH_*.json
   schemas unchanged. *)
let server_stats_json () =
  let prefix = "serve." in
  let serve_counters =
    List.filter_map
      (fun (name, v) ->
        if String.starts_with ~prefix name then
          Some
            ( String.sub name (String.length prefix)
                (String.length name - String.length prefix),
              Int v )
        else None)
      (Runtime.Telemetry.snapshot ()).Runtime.Telemetry.counters
  in
  if serve_counters = [] then None else Some (Obj serve_counters)

let runtime_stats_json () =
  let base =
    [ ("jobs", Int (Runtime.Pool.default_jobs ()));
      ("telemetry", of_telemetry (Runtime.Telemetry.snapshot ()));
      ("memos", List (List.map of_memo_stats (Runtime.Memo.registered_stats ())));
      ("histograms", histograms_json ()) ]
  in
  let optional =
    (match windows_json () with
     | None -> []
     | Some w -> [ ("windows", w) ])
    @ (match server_stats_json () with
       | None -> []
       | Some server -> [ ("server", server) ])
  in
  Obj (base @ optional)
