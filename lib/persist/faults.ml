(* Deterministic fault injection for the persistence layer.

   Faults are armed per process (via [arm], the CLI, or the
   SRAM_OPT_FAULTS env var) and fire at record-write boundaries in
   Record_log, counted over *data* records only (headers are exempt so
   "kill after record N" means N application records regardless of how
   many logs were opened).  [Injected] models a process death: once it
   fires the layer goes sticky-dead and every later append also raises,
   so a test that keeps running after the "crash" cannot quietly keep
   journaling. *)

exception Injected of string

type fault =
  | Short_write of int  (* write only a prefix of record N, then die *)
  | Enospc of int       (* fail record N's write with ENOSPC, once *)
  | Kill of int         (* die at the boundary after record N *)

let mutex = Mutex.create ()
let armed : fault list ref = ref []
let record_count = ref 0
let dead = ref false

let injected_counter = Runtime.Telemetry.counter "persist.faults.injected"

let arm f = Mutex.protect mutex (fun () -> armed := f :: !armed)

let disarm_all () =
  Mutex.protect mutex (fun () ->
      armed := [];
      record_count := 0;
      dead := false)

let fault_to_string = function
  | Short_write n -> Printf.sprintf "short:%d" n
  | Enospc n -> Printf.sprintf "enospc:%d" n
  | Kill n -> Printf.sprintf "kill:%d" n

let parse s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad fault spec %S (want kind:N)" s)
  | Some i ->
    let kind = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt arg with
    | None -> Error (Printf.sprintf "bad fault count in %S" s)
    | Some n -> (
      match kind with
      | "short" -> Ok (Short_write n)
      | "enospc" -> Ok (Enospc n)
      | "kill" -> Ok (Kill n)
      | _ -> Error (Printf.sprintf "unknown fault kind %S" kind)))

let env_var = "SRAM_OPT_FAULTS"

let load_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec ->
    String.split_on_char ',' spec
    |> List.iter (fun s ->
           match parse (String.trim s) with
           | Ok f -> arm f
           | Error msg -> Obs.Log.warn ~section:"persist" "%s: %s" env_var msg)

let die msg =
  dead := true;
  Runtime.Telemetry.incr injected_counter;
  raise (Injected msg)

(* Called by Record_log before writing data record [n] (0-based count
   of data records across the process).  Returns [Some ()] if the
   record should be torn: the log writes a prefix of the frame, then
   calls [short_write_die]. *)
let on_record () =
  Mutex.protect mutex (fun () ->
      if !dead then die "persistence layer already killed by injected fault";
      let n = !record_count in
      record_count := n + 1;
      let short = ref None in
      let keep =
        List.filter
          (fun f ->
            match f with
            | Enospc k when k = n ->
              Runtime.Telemetry.incr injected_counter;
              (* The genuine exception a full disk produces, so tests
                 exercise the same Unix_error -> Sys_error unification
                 real failures take through Record_log. *)
              raise
                (Unix.Unix_error (Unix.ENOSPC, "write", "injected fault"))
            | Short_write k when k = n ->
              short := Some f;
              false
            | _ -> true)
          !armed
      in
      armed := keep;
      match !short with
      | Some (Short_write _) -> Some ()
      | _ -> None)

(* Called by Record_log after data record [n] is fully on disk. *)
let after_record () =
  Mutex.protect mutex (fun () ->
      let n = !record_count - 1 in
      if List.exists (function Kill k -> k = n | _ -> false) !armed then begin
        armed := List.filter (function Kill k -> k <> n | _ -> true) !armed;
        die (Printf.sprintf "injected kill after record %d" n)
      end)

let short_write_die n =
  Mutex.protect mutex (fun () ->
      die (Printf.sprintf "injected short write (%d bytes kept)" n))

let injected_count () = Runtime.Telemetry.value injected_counter
