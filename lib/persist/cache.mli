(** Named on-disk caches backing [Runtime.Memo] (the disk tier of
    [Memo.find_or_compute_tiered]).

    Handles are created once at module-init time and stay inactive —
    [find] returns [None], [add] is a no-op — until [set_dir] points
    the layer at a directory (the CLI's [--cache-dir]).  Each cache
    then lives in [<dir>/<name>.rlog], replayed on open and compacted
    when duplication gets heavy.  Keys are strings built by the caller;
    values are JSON.  Write failures (e.g. ENOSPC) degrade the cache to
    memory-only with a warning rather than failing the computation. *)

type t

val create : name:string -> unit -> t
(** Registers a cache handle.  [name] becomes the log filename. *)

val set_dir : string option -> unit
(** Activates every registered cache under the given directory
    (creating it if needed), replaying existing logs; [None]
    deactivates them all.  Called by the CLI, once, before work. *)

val dir : unit -> string option
val active : t -> bool

val find : t -> string -> Json.t option
(** Telemetry: [persist.cache.hit] / [persist.cache.miss]. *)

val add : t -> string -> Json.t -> unit
(** Stores in memory and appends to the log ([persist.cache.store]). *)

val sync : t -> unit
val size : t -> int
val name : t -> string
