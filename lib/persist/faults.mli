(** Deterministic fault injection at record-log write boundaries.

    Used by the crash-recovery tests and the [SRAM_OPT_FAULTS] env var
    (comma-separated specs, e.g. ["kill:3,enospc:7"]).  Record indices
    count {e data} records appended process-wide since the last
    [disarm_all]; log headers are exempt. *)

exception Injected of string
(** Models a process death.  Once raised, the layer is sticky-dead:
    every subsequent append also raises until [disarm_all]. *)

type fault =
  | Short_write of int
      (** Write only a prefix of data record N, then die — leaves a
          torn record for recovery to discard. *)
  | Enospc of int
      (** Fail data record N's write with a genuine
          [Unix.Unix_error (ENOSPC, ..)] — surfaced by [Record_log] as
          [Sys_error], like any real OS write failure — once;
          subsequent writes succeed. *)
  | Kill of int
      (** Die cleanly at the boundary {e after} data record N — the
          log is valid, the process is gone. *)

val arm : fault -> unit
val disarm_all : unit -> unit
(** Clears all armed faults, the process-wide record counter, and the
    sticky-dead flag.  Tests must call this in cleanup. *)

val parse : string -> (fault, string) result
(** Parses ["short:N"], ["enospc:N"] or ["kill:N"]. *)

val env_var : string
(** ["SRAM_OPT_FAULTS"]. *)

val load_env : unit -> unit
(** Arms every spec in [$SRAM_OPT_FAULTS]; malformed specs are logged
    via [Obs.Log.warn] and skipped. *)

val fault_to_string : fault -> string

val injected_count : unit -> int
(** Value of the [persist.faults.injected] telemetry counter. *)

(**/**)

(* Record_log internals. *)
val on_record : unit -> unit option
val after_record : unit -> unit
val short_write_die : int -> 'a
