(* IEEE CRC-32 (reflected, polynomial 0xEDB88320), table-driven.
   Pure OCaml so the record log carries no external dependency; ints
   are 63-bit on every platform we build for, so a land with 0xFFFFFFFF
   keeps values in the unsigned 32-bit range. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s pos len =
  let t = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := t.((!crc lxor Char.code (String.unsafe_get s i)) land 0xFF)
           lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string s = update 0 s 0 (String.length s)
