(* Append-only record log with per-record CRC32 and crash recovery.

   On-disk layout:

     magic   "SRLG1\n"                        (6 bytes)
     frame*  u32-LE payload length
             u32-LE CRC32 of payload
             payload (compact JSON)

   The first frame is always a header record
   {"schema":..,"version":..,"git_commit":..,"meta":{..}} so a reader
   can refuse logs written by an incompatible schema.  Recovery policy
   is prefix-keeping: scan frames until the first length/CRC/parse
   failure, keep everything before it, discard the rest.  Writers use
   raw Unix file descriptors (not out_channels) so the byte offset of
   every frame is known exactly and a failed append can be truncated
   back to a record boundary. *)

let magic = "SRLG1\n"

let flush_span = "persist.flush"
let replay_span = "persist.replay"
let c_records_written = Runtime.Telemetry.counter "persist.records.written"
let c_records_recovered = Runtime.Telemetry.counter "persist.records.recovered"
let c_bytes_discarded = Runtime.Telemetry.counter "persist.bytes.discarded"

type header = {
  schema : string;
  version : int;
  git_commit : string;
  meta : (string * Json.t) list;
}

(* Memoized `git rev-parse` so every log header records provenance;
   "unknown" outside a work tree. *)
let git_commit_head =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let header_to_json h =
  Json.Obj
    [
      ("schema", Json.String h.schema);
      ("version", Json.Int h.version);
      ("git_commit", Json.String h.git_commit);
      ("meta", Json.Obj h.meta);
    ]

let header_of_json j =
  match (Json.string_field j "schema", Json.int_field j "version") with
  | Some schema, Some version ->
    let git_commit =
      Option.value (Json.string_field j "git_commit") ~default:"unknown"
    in
    let meta =
      match Json.member "meta" j with Some (Json.Obj kv) -> kv | _ -> []
    in
    Some { schema; version; git_commit; meta }
  | _ -> None

(* ----- frame encoding ----- *)

let put_u32_le b v =
  Bytes.set b 0 (Char.chr (v land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((v lsr 24) land 0xFF))

let get_u32_le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  let hdr = Bytes.create 4 in
  put_u32_le hdr len;
  Bytes.blit hdr 0 b 0 4;
  put_u32_le hdr (Crc32.string payload);
  Bytes.blit hdr 0 b 4 4;
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

(* ----- reading / recovery ----- *)

type recovery = {
  header : header;
  records : Json.t list;
  recovered : int;
  discarded_bytes : int;
  valid_end : int;  (* byte offset just past the last valid frame *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let scan raw =
  (* Returns (frames in order, valid_end).  Stops at the first frame
     whose length, CRC or JSON fails — torn tail from a crash. *)
  let total = String.length raw in
  let frames = ref [] in
  let pos = ref (String.length magic) in
  let ok = ref true in
  while !ok && !pos + 8 <= total do
    let len = get_u32_le raw !pos in
    let crc = get_u32_le raw (!pos + 4) in
    if len < 0 || !pos + 8 + len > total then ok := false
    else begin
      let payload = String.sub raw (!pos + 8) len in
      if Crc32.string payload <> crc then ok := false
      else
        match Json.of_string payload with
        | Error _ -> ok := false
        | Ok j ->
          frames := j :: !frames;
          pos := !pos + 8 + len
    end
  done;
  (List.rev !frames, !pos)

let read ~path =
  Runtime.Telemetry.time replay_span (fun () ->
      if not (Sys.file_exists path) then Error (path ^ ": no such file")
      else
        let raw = read_file path in
        if
          String.length raw < String.length magic
          || String.sub raw 0 (String.length magic) <> magic
        then Error (path ^ ": bad magic (not a record log)")
        else
          match scan raw with
          | [], valid_end ->
            ignore valid_end;
            Error (path ^ ": no valid header record")
          | hdr_json :: records, valid_end -> (
            match header_of_json hdr_json with
            | None -> Error (path ^ ": malformed header record")
            | Some header ->
              let recovered = List.length records in
              let discarded_bytes = String.length raw - valid_end in
              Runtime.Telemetry.add c_records_recovered recovered;
              Runtime.Telemetry.add c_bytes_discarded discarded_bytes;
              if discarded_bytes > 0 then
                Obs.Log.warn ~section:"persist"
                  "%s: discarded %d trailing bytes (torn tail), kept %d records"
                  path discarded_bytes recovered;
              Ok { header; records; recovered; discarded_bytes; valid_end }))

(* ----- writing ----- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  mutable pos : int;  (* current end-of-log offset *)
  mutable closed : bool;
  lock : Mutex.t;
}

(* Real OS write failures (ENOSPC, EIO...) surface as
   [Unix.Unix_error]; every degradation handler in this layer keys on
   [Sys_error], so unify the two here — otherwise a genuinely full
   disk would escape the handlers that the injected faults exercise. *)
let sys_error_of_unix e fn =
  Sys_error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  try
    while !off < n do
      off := !off + Unix.write fd b !off (n - !off)
    done
  with Unix.Unix_error (e, fn, _) -> raise (sys_error_of_unix e fn)

let append_frame t ~is_header payload =
  Mutex.protect t.lock (fun () ->
      if t.closed then invalid_arg "Record_log: log is closed";
      let data = frame payload in
      let start = t.pos in
      let tear =
        if is_header then None
        else
          try Faults.on_record ()
          with Unix.Unix_error (e, fn, _) -> raise (sys_error_of_unix e fn)
      in
      match tear with
      | Some () ->
        (* Injected torn write: half the frame hits the disk, then the
           "process dies".  No repair — that is recovery's job. *)
        let k = max 1 (String.length data / 2) in
        write_all t.fd (String.sub data 0 k);
        t.pos <- start + k;
        Faults.short_write_die k
      | None -> (
        match
          Runtime.Telemetry.time flush_span (fun () -> write_all t.fd data)
        with
        | () ->
          t.pos <- start + String.length data;
          if not is_header then begin
            Runtime.Telemetry.incr c_records_written;
            Faults.after_record ()
          end
        | exception Sys_error msg ->
          (* Real write failure: restore the record boundary so the
             in-process log stays consistent, then let callers decide
             whether to degrade. *)
          (try
             Unix.ftruncate t.fd start;
             ignore (Unix.lseek t.fd start Unix.SEEK_SET)
           with _ -> ());
          raise (Sys_error msg)))

let append t record = append_frame t ~is_header:false (Json.to_string record)

let sync t =
  Mutex.protect t.lock (fun () ->
      if not t.closed then
        Runtime.Telemetry.time flush_span (fun () ->
            try Unix.fsync t.fd
            with Unix.Unix_error (e, fn, _) ->
              raise (sys_error_of_unix e fn)))

let close t =
  Mutex.protect t.lock (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (try Unix.fsync t.fd with _ -> ());
        Unix.close t.fd
      end)

let path t = t.path
let git_commit () = Lazy.force git_commit_head

let create ~path ?(version = 1) ?(meta = []) ?commit ~schema () =
  let dir = Filename.dirname path in
  if dir <> "" && not (Sys.file_exists dir) then
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let t = { path; fd; pos = 0; closed = false; lock = Mutex.create () } in
  write_all fd magic;
  t.pos <- String.length magic;
  let commit = match commit with Some c -> c | None -> git_commit () in
  let header = { schema; version; git_commit = commit; meta } in
  append_frame t ~is_header:true (Json.to_string (header_to_json header));
  t

let open_append ~path ?(version = 1) ?expect_commit ~schema () =
  if not (Sys.file_exists path) then Ok (create ~path ~version ~schema (), [])
  else
    match read ~path with
    | Error e -> Error e
    | Ok r ->
      let expect =
        match expect_commit with Some c -> c | None -> git_commit ()
      in
      if r.header.schema <> schema then
        Error
          (Printf.sprintf "%s: schema mismatch (log %S, expected %S)" path
             r.header.schema schema)
      else if r.header.version <> version then
        Error
          (Printf.sprintf "%s: version mismatch (log %d, expected %d)" path
             r.header.version version)
      else if
        (* Cached evaluation results are replayed bit-for-bit, so a log
           written by a different build of the model must not be served.
           "unknown" (no git metadata) disables the check rather than
           invalidating every log. *)
        r.header.git_commit <> "unknown"
        && expect <> "unknown"
        && r.header.git_commit <> expect
      then
        Error
          (Printf.sprintf
             "%s: git commit mismatch (log %s, current %s); stale results"
             path r.header.git_commit expect)
      else begin
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        (* Chop any torn tail so new frames land on a record boundary. *)
        Unix.ftruncate fd r.valid_end;
        ignore (Unix.lseek fd r.valid_end Unix.SEEK_SET);
        let t =
          { path; fd; pos = r.valid_end; closed = false; lock = Mutex.create () }
        in
        Ok (t, r.records)
      end

(* Atomic whole-file replacement: write to a temp file in the same
   directory, fsync, rename over the target.  Readers see either the
   old complete log or the new one, never a mixture. *)
let write_snapshot ~path ?(version = 1) ?(meta = []) ~schema records =
  let tmp = path ^ ".tmp" in
  let t = create ~path:tmp ~version ~meta ~schema () in
  (try List.iter (append t) records
   with e ->
     close t;
     (try Sys.remove tmp with _ -> ());
     raise e);
  sync t;
  close t;
  Sys.rename tmp path
