(* Sweep checkpoint journal.

   One journal file holds records {"task":sig,"chunk":i,"data":..},
   appended by the searches as each geometry chunk completes.  The task
   signature encodes everything the chunk result depends on (objective,
   kernel, flavor, accounting, full grids...), so resuming against a
   changed configuration silently matches nothing and recomputes — a
   stale journal can slow a run down but never corrupt it.

   Like Cache, an ambient default is settable by the CLI so the
   searches pick the journal up without parameter threading. *)

type t = {
  log : Record_log.t;
  (* (task, chunk) -> data, from replay plus this run's appends *)
  done_chunks : (string * int, Json.t) Hashtbl.t;
  replayed : int;
  mutable appended : int;
  mutable degraded : bool;
  every : int;
  lock : Mutex.t;
}

let schema = "sweep-journal"
let c_chunks = Runtime.Telemetry.counter "persist.checkpoint.chunks"
let c_replayed = Runtime.Telemetry.counter "persist.checkpoint.replayed"

let decode_record j =
  match
    (Json.string_field j "task", Json.int_field j "chunk", Json.member "data" j)
  with
  | Some task, Some chunk, Some data -> Some (task, chunk, data)
  | _ -> None

let create ~path ?(resume = false) ?(checkpoint_every = 64) () =
  let every = max 1 checkpoint_every in
  if not resume then begin
    let log = Record_log.create ~path ~schema () in
    Ok
      {
        log;
        done_chunks = Hashtbl.create 256;
        replayed = 0;
        appended = 0;
        degraded = false;
        every;
        lock = Mutex.create ();
      }
  end
  else
    match Record_log.open_append ~path ~schema () with
    | Error e -> Error e
    | Ok (log, records) ->
      let done_chunks = Hashtbl.create 256 in
      List.iter
        (fun r ->
          match decode_record r with
          | Some (task, chunk, data) ->
            Hashtbl.replace done_chunks (task, chunk) data
          | None -> ())
        records;
      let replayed = Hashtbl.length done_chunks in
      Runtime.Telemetry.add c_replayed replayed;
      if replayed > 0 then
        Obs.Log.info ~section:"persist"
          "resume: %d completed chunks replayed from %s" replayed path;
      Ok
        {
          log;
          done_chunks;
          replayed;
          appended = 0;
          degraded = false;
          every;
          lock = Mutex.create ();
        }

let checkpoint_every t = t.every
let replayed t = t.replayed
let appended t = Mutex.protect t.lock (fun () -> t.appended)

let completed t ~task ~chunk =
  Mutex.protect t.lock (fun () ->
      Hashtbl.find_opt t.done_chunks (task, chunk))

let completed_for t ~task =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun (tk, chunk) data acc ->
          if tk = task then (chunk, data) :: acc else acc)
        t.done_chunks [])

let record t ~task ~chunk data =
  Mutex.protect t.lock (fun () ->
      let r =
        Json.Obj
          [
            ("task", Json.String task);
            ("chunk", Json.Int chunk);
            ("data", data);
          ]
      in
      (* Faults.Injected must propagate — it models a dead process.
         Real write errors degrade: the sweep result is still correct,
         only resumability is lost.  Once a write has failed the
         journal stops touching the disk, so a full disk costs one
         failed write total rather than one per chunk. *)
      if not t.degraded then
        (try
           Record_log.append t.log r;
           t.appended <- t.appended + 1;
           Runtime.Telemetry.incr c_chunks
         with Sys_error msg ->
           t.degraded <- true;
           Obs.Log.warn ~section:"persist"
             "checkpoint write failed (%s); chunk %d of %s not journaled, \
              journaling disabled"
             msg chunk task);
      Hashtbl.replace t.done_chunks (task, chunk) data)

let sync t = Record_log.sync t.log
let close t = Record_log.close t.log
let path t = Record_log.path t.log

(* ----- ambient default, mirroring Pool.set_default_jobs ----- *)

let default_ref : t option ref = ref None
let set_default d = default_ref := d
let default () = !default_ref
