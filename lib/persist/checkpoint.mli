(** Checkpoint journal for long sweeps.

    Searches append one record per completed geometry chunk, keyed by a
    task signature (everything the result depends on) and a chunk
    index.  [--resume] replays the journal; chunks already present are
    skipped and their stored winners folded back in, reproducing a
    bit-identical final result (see DESIGN.md §8). *)

type t

val create :
  path:string -> ?resume:bool -> ?checkpoint_every:int -> unit ->
  (t, string) result
(** [resume:false] (default) truncates any existing journal;
    [resume:true] recovers the valid prefix and replays it.
    [checkpoint_every] is the chunk size in geometries (default 64,
    clamped to >= 1). *)

val checkpoint_every : t -> int
val replayed : t -> int
(** Number of distinct completed chunks recovered at open. *)

val appended : t -> int
(** Chunks journaled by this process so far. *)

val completed : t -> task:string -> chunk:int -> Json.t option
(** The stored payload for a chunk, if it was already completed. *)

val completed_for : t -> task:string -> (int * Json.t) list
(** All completed chunks for a task (unordered). *)

val record : t -> task:string -> chunk:int -> Json.t -> unit
(** Journals a completed chunk.  Real write failures degrade with a
    warning; [Faults.Injected] propagates (it models process death). *)

val sync : t -> unit
val close : t -> unit
val path : t -> string

(** {2 Ambient default} — set once by the CLI so searches pick the
    journal up without parameter threading. *)

val set_default : t option -> unit
val default : unit -> t option
