(* On-disk cache tier backing Runtime.Memo.

   Each named cache is one record log <dir>/<name>.rlog of
   {"k":key,"v":value} records, replayed into a Hashtbl on open (later
   records win, so re-stores are harmless).  Handles are registered at
   module-init time and stay inactive (pure pass-through) until the CLI
   calls [set_dir]; this mirrors the ambient Pool.set_default_jobs
   idiom so call sites never thread a cache directory around.

   Write failures degrade the cache to memory-only with a warning —
   a full disk must never kill a sweep that would succeed without the
   cache. *)

type t = {
  name : string;
  table : (string, Json.t) Hashtbl.t;
  mutable log : Record_log.t option;
  mutable appended : int;
  mutable degraded : bool;
  lock : Mutex.t;
}

let c_hit = Runtime.Telemetry.counter "persist.cache.hit"
let c_miss = Runtime.Telemetry.counter "persist.cache.miss"
let c_store = Runtime.Telemetry.counter "persist.cache.store"

let registry : t list ref = ref []
let registry_lock = Mutex.create ()
let active_dir : string option ref = ref None

let create ~name () =
  let t =
    {
      name;
      table = Hashtbl.create 64;
      log = None;
      appended = 0;
      degraded = false;
      lock = Mutex.create ();
    }
  in
  Mutex.protect registry_lock (fun () -> registry := t :: !registry);
  t

let schema_of t = "cache/" ^ t.name

let entry_of_record j =
  match (Json.member "k" j, Json.member "v" j) with
  | Some (Json.String k), Some v -> Some (k, v)
  | _ -> None

let record_of_entry k v = Json.Obj [ ("k", Json.String k); ("v", v) ]

let close_log t =
  match t.log with
  | Some log ->
    (try Record_log.close log with _ -> ());
    t.log <- None
  | None -> ()

let open_in_dir t dir =
  Mutex.protect t.lock (fun () ->
      close_log t;
      Hashtbl.reset t.table;
      t.appended <- 0;
      t.degraded <- false;
      let path = Filename.concat dir (t.name ^ ".rlog") in
      match Record_log.open_append ~path ~schema:(schema_of t) () with
      | Error msg ->
        Obs.Log.warn ~section:"persist" "cache %s: %s; starting fresh" t.name
          msg;
        (try Sys.remove path with _ -> ());
        (match Record_log.open_append ~path ~schema:(schema_of t) () with
        | Ok (log, _) -> t.log <- Some log
        | Error msg ->
          t.degraded <- true;
          Obs.Log.warn ~section:"persist" "cache %s unusable: %s" t.name msg)
      | Ok (log, records) ->
        List.iter
          (fun r ->
            match entry_of_record r with
            | Some (k, v) -> Hashtbl.replace t.table k v
            | None -> ())
          records;
        let distinct = Hashtbl.length t.table in
        let replayed = List.length records in
        (* Compact when the log carries heavy duplication: rewrite the
           distinct entries atomically and reopen. *)
        if replayed > 64 && replayed > 2 * distinct then begin
          Record_log.close log;
          let reopen () =
            match Record_log.open_append ~path ~schema:(schema_of t) () with
            | Ok (log, _) -> t.log <- Some log
            | Error msg ->
              t.degraded <- true;
              Obs.Log.warn ~section:"persist"
                "cache %s: reopen after compaction failed: %s" t.name msg
          in
          let entries =
            Hashtbl.fold (fun k v acc -> record_of_entry k v :: acc) t.table []
          in
          match Record_log.write_snapshot ~path ~schema:(schema_of t) entries with
          | () -> reopen ()
          | exception Sys_error msg ->
            (* Compaction is an optimization; the duplicated log on disk
               is still valid, so fall back to it. *)
            Obs.Log.warn ~section:"persist"
              "cache %s: compaction failed (%s); keeping uncompacted log"
              t.name msg;
            reopen ()
        end
        else t.log <- Some log)

let set_dir dir =
  let all = Mutex.protect registry_lock (fun () -> !registry) in
  active_dir := dir;
  match dir with
  | None -> List.iter (fun t -> Mutex.protect t.lock (fun () -> close_log t)) all
  | Some d ->
    if not (Sys.file_exists d) then
      (try Unix.mkdir d 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    List.iter (fun t -> open_in_dir t d) all

let dir () = !active_dir

let active t = Mutex.protect t.lock (fun () -> t.log <> None)

let find t key =
  Mutex.protect t.lock (fun () ->
      if t.log = None then None
      else
        match Hashtbl.find_opt t.table key with
        | Some v ->
          Runtime.Telemetry.incr c_hit;
          Some v
        | None ->
          Runtime.Telemetry.incr c_miss;
          None)

let add t key value =
  Mutex.protect t.lock (fun () ->
      match t.log with
      | None -> ()
      | Some log ->
        Hashtbl.replace t.table key value;
        Runtime.Telemetry.incr c_store;
        (* Once degraded, never touch the disk again — a full disk
           would otherwise cost a failing write per store.  [t.log]
           stays [Some] as the activity gate for the memory tier; the
           fd underneath is closed. *)
        if not t.degraded then (
          try Record_log.append log (record_of_entry key value)
          with Sys_error msg ->
            t.degraded <- true;
            (try Record_log.close log with _ -> ());
            Obs.Log.warn ~section:"persist"
              "cache %s: write failed (%s); continuing memory-only" t.name msg))

let sync t =
  Mutex.protect t.lock (fun () ->
      match t.log with Some log -> Record_log.sync log | None -> ())

let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let name t = t.name
