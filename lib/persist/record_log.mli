(** Append-only record log: length-prefixed JSON frames with per-record
    CRC32 and a schema/version/git-commit header, plus prefix-keeping
    crash recovery and atomic snapshot compaction.

    Format: a 6-byte magic ["SRLG1\n"], then frames of
    [u32-LE length | u32-LE crc32 | payload].  The first frame is the
    header.  See DESIGN.md §8 for the crash model. *)

type header = {
  schema : string;
  version : int;
  git_commit : string;
  meta : (string * Json.t) list;
}

type t
(** A writer handle.  Appends are mutex-protected and safe to share
    across domains. *)

val create :
  path:string -> ?version:int -> ?meta:(string * Json.t) list ->
  ?commit:string -> schema:string -> unit -> t
(** Creates (or truncates) a log at [path] and writes the header.
    Creates the parent directory if missing (one level).  [commit]
    overrides the recorded provenance (default: [git_commit ()]) —
    tests use it to exercise the mismatch path. *)

val open_append :
  path:string -> ?version:int -> ?expect_commit:string ->
  schema:string -> unit -> (t * Json.t list, string) result
(** Reopens an existing log for appending, first recovering its valid
    prefix (a torn tail is truncated away).  Returns the writer and the
    replayed data records in write order.  Creates a fresh log if
    [path] does not exist.  Fails on magic/schema/version mismatch, and
    on a git-commit mismatch against [expect_commit] (default:
    [git_commit ()]) — replayed results must come from the same build
    of the model.  A commit of ["unknown"] on either side disables the
    commit check. *)

val append : t -> Json.t -> unit
(** Appends one record.  Raises [Sys_error] on real write failure
    (after restoring the record boundary) and [Faults.Injected] when an
    armed fault fires.  OS-level failures ([Unix.Unix_error], e.g.
    ENOSPC/EIO) are re-raised as [Sys_error] so callers have a single
    degradation signal. *)

val sync : t -> unit
(** fsync to stable storage. *)

val close : t -> unit
val path : t -> string

type recovery = {
  header : header;
  records : Json.t list;     (** valid data records, in write order *)
  recovered : int;           (** [List.length records] *)
  discarded_bytes : int;     (** torn-tail bytes dropped *)
  valid_end : int;           (** offset just past the last valid frame *)
}

val read : path:string -> (recovery, string) result
(** Reads and validates a log without opening it for writing.
    Recovery is prefix-keeping: scanning stops at the first bad
    length/CRC/JSON frame and everything after it is discarded. *)

val write_snapshot :
  path:string -> ?version:int -> ?meta:(string * Json.t) list ->
  schema:string -> Json.t list -> unit
(** Atomically replaces [path] with a fresh log containing [records]:
    written to [path ^ ".tmp"], fsynced, then renamed into place. *)

val git_commit : unit -> string
(** Short git commit of HEAD, or ["unknown"]; memoized. *)
