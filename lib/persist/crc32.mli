(** IEEE CRC-32 (the zlib/PNG polynomial), used to detect torn or
    corrupted records in the append-only log. *)

val string : string -> int
(** CRC-32 of a whole string, in [0, 0xFFFFFFFF]. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum over
    [s.[pos .. pos+len-1]]. [string s = update 0 s 0 (length s)]. *)
