type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----- emission ----- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* 17 significant digits round-trip every finite IEEE double exactly
   through [float_of_string], which is what lets replayed records
   reproduce bit-identical scores.  Non-finite floats have no JSON
   representation and are a caller bug. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg "Persist.Json: non-finite float has no JSON representation";
  if Float.is_integer f && abs_float f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    (* Integral floats in [1e15, 1e17) render without '.' or 'e' and
       would replay as Int; keep the float marker so the constructor
       round-trips, not just the value. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
    then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf (String key);
        Buffer.add_char buf ':';
        emit buf value)
      fields;
    Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  emit buf t;
  Buffer.contents buf

(* ----- parsing ----- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | Some got -> fail st (Printf.sprintf "expected %C, got %C" c got)
  | None -> fail st (Printf.sprintf "expected %C, got end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if st.pos >= String.length st.src then fail st "unterminated escape";
       let e = st.src.[st.pos] in
       st.pos <- st.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if st.pos + 4 > String.length st.src then fail st "short \\u escape";
         let v =
           (hex_digit st st.src.[st.pos] lsl 12)
           lor (hex_digit st st.src.[st.pos + 1] lsl 8)
           lor (hex_digit st st.src.[st.pos + 2] lsl 4)
           lor hex_digit st st.src.[st.pos + 3]
         in
         st.pos <- st.pos + 4;
         (* We only ever emit \u for C0 controls; decode the basic
            multilingual plane as UTF-8 so foreign files survive too. *)
         if v < 0x80 then Buffer.add_char buf (Char.chr v)
         else if v < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (v lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (v lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (v land 0x3F)))
         end
       | _ -> fail st "bad escape");
      go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_number_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_number_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.src start (st.pos - start) in
  if text = "" then fail st "expected a number";
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad float %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Integer overflow: fall back to float rather than failing. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value st :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        fields := (key, value) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1; go ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at byte %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ----- accessors ----- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let int_field j key = Option.bind (member key j) to_int
let float_field j key = Option.bind (member key j) to_float
let string_field j key = Option.bind (member key j) to_string_opt
