(** Minimal JSON value type with a compact emitter and a strict parser.

    Unlike [Sram_edp.Json_out] (output-only, higher in the dependency
    graph) this module both emits and parses, because the record log
    must replay what it wrote.  Floats are printed with enough digits
    ([%.17g]) that [of_string (to_string v)] reproduces every finite
    IEEE double bit-for-bit — the property the resume protocol's
    bit-identical-winner guarantee rests on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) serialization.
    @raise Invalid_argument on non-finite floats, which have no JSON
    representation; encode them as [Null] explicitly if needed. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document. *)

(** {2 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int] (JSON does not distinguish). *)

val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val int_field : t -> string -> int option
val float_field : t -> string -> float option
val string_field : t -> string -> string option
