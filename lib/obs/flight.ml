(* The flight recorder: a postmortem of the recent past.

   While armed, two bounded rings run continuously — the per-domain
   span ring inside [Trace] and a ring of recent warn+ log lines fed by
   [Log]'s sink hook.  [dump] freezes both into one Perfetto-loadable
   Chrome trace file, so a deadline miss, internal error or SIGQUIT in
   a long-running daemon yields the span tree and warnings leading up
   to it without anyone having started an explicit --trace run. *)

type log_entry = {
  le_ts : float;  (* absolute Clock.now () at emit *)
  le_slot : int;
  le_level : Log.level;
  le_section : string;
  le_text : string;
  le_ctx : string;
}

let placeholder =
  { le_ts = 0.0; le_slot = 0; le_level = Log.Warn; le_section = "";
    le_text = ""; le_ctx = "" }

let lock = Mutex.create ()
let log_ring = ref [||]
let log_pos = ref 0
let log_total = ref 0
let dump_dir = ref (Filename.get_temp_dir_name ())
let dumps = ref 0
let dump_cap = ref 64
let seq = ref 0

let set_dir d =
  Mutex.lock lock;
  dump_dir := d;
  Mutex.unlock lock

let dir () =
  Mutex.lock lock;
  let d = !dump_dir in
  Mutex.unlock lock;
  d

let set_max_dumps n =
  Mutex.lock lock;
  dump_cap := max 0 n;
  Mutex.unlock lock

let dumps_written () =
  Mutex.lock lock;
  let n = !dumps in
  Mutex.unlock lock;
  n

(* Runs under Log's emit lock — must stay cheap and must not log. *)
let sink _ts level section text ctx =
  Mutex.lock lock;
  if Array.length !log_ring > 0 then begin
    !log_ring.(!log_pos) <-
      { le_ts = Clock.now ();
        le_slot = Control.slot ();
        le_level = level;
        le_section = section;
        le_text = text;
        le_ctx = ctx };
    log_pos := (!log_pos + 1) mod Array.length !log_ring;
    incr log_total
  end;
  Mutex.unlock lock

let arm ?(capacity = 4096) ?(log_capacity = 256) ?dir () =
  Mutex.lock lock;
  log_ring := Array.make (max 16 log_capacity) placeholder;
  log_pos := 0;
  log_total := 0;
  (match dir with Some d -> dump_dir := d | None -> ());
  Mutex.unlock lock;
  Trace.arm_flight ~capacity ();
  Log.set_sink (Some sink)

let disarm () =
  Log.set_sink None;
  Trace.disarm_flight ();
  Mutex.lock lock;
  log_ring := [||];
  log_pos := 0;
  log_total := 0;
  Mutex.unlock lock

let armed () = Trace.flight_armed ()

let recent_logs () =
  Mutex.lock lock;
  let ring = !log_ring in
  let cap = Array.length ring in
  let n = min !log_total cap in
  let start = if !log_total > cap then !log_pos else 0 in
  let out = List.init n (fun i -> ring.((start + i) mod cap)) in
  Mutex.unlock lock;
  out

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    s

(* A log line becomes an instant event on the emitting domain's
   timeline; its trace id rides in ev_ctx so the exporter tags it the
   same way it tags spans. *)
let event_of_log epoch le =
  { Trace.ev_name =
      Printf.sprintf "log.%s %s: %s" (Log.to_string le.le_level)
        le.le_section le.le_text;
    ev_phase = Trace.I;
    ev_ts = le.le_ts -. epoch;
    ev_slot = le.le_slot;
    ev_ctx = le.le_ctx }

let dump ~reason ?trace_id () =
  Mutex.lock lock;
  let allowed = !dumps < !dump_cap in
  if allowed then begin
    incr dumps;
    incr seq
  end;
  let n = !seq and d = !dump_dir in
  Mutex.unlock lock;
  if not allowed then None
  else begin
    let epoch = Trace.epoch () in
    let marker =
      { Trace.ev_name = "flight.dump: " ^ reason;
        ev_phase = Trace.I;
        ev_ts = Clock.now () -. epoch;
        ev_slot = Control.slot ();
        ev_ctx = (match trace_id with Some id -> id | None -> "") }
    in
    let events =
      List.stable_sort
        (fun a b -> compare a.Trace.ev_ts b.Trace.ev_ts)
        (Trace.flight_events ()
        @ List.map (event_of_log epoch) (recent_logs ())
        @ [ marker ])
    in
    (* pid + a monotonic per-process sequence keep two triggers in the
       same second (or two daemons sharing a dump dir) from colliding;
       the trace id makes the file findable from a client-side log line
       without opening every dump. *)
    let id_part =
      match trace_id with
      | Some id when id <> "" -> "-" ^ sanitize id
      | Some _ | None -> ""
    in
    let path =
      Filename.concat d
        (Printf.sprintf "flight-%d-%03d-%s%s.json" (Unix.getpid ()) n
           (sanitize reason) id_part)
    in
    match
      (if not (Sys.file_exists d) then Unix.mkdir d 0o755);
      let oc = open_out path in
      output_string oc (Trace.chrome_string_of_events events);
      output_char oc '\n';
      close_out oc
    with
    | () -> Some path
    | exception _ -> None
  end
