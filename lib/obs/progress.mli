(** Live progress reporter for long sweeps.

    The search layer bumps four process-wide counters (geometries total
    / done / pruned, evaluations); a ticker domain repaints one stderr
    status line every [interval] seconds with the counts, the
    evaluation rate and an ETA extrapolated from the done fraction.

    Off by default: when inactive, every [add_*] is a single atomic
    load, and no ticker domain exists.  The CLI's [--progress] flag
    turns it on around the command body.  Counters accumulate across
    the searches of a sweep, so the ETA covers the whole run. *)

val start : ?interval:float -> ?channel:out_channel -> unit -> unit
(** Zero the counters and spawn the ticker (default: 0.25 s to
    stderr).  No-op when already running. *)

val stop : unit -> unit
(** Stop and join the ticker, then print a final newline-terminated
    status line.  No-op when not running. *)

val active : unit -> bool

val add_total : int -> unit
(** More geometries discovered (a search announces its space). *)

val add_done : int -> unit
val add_pruned : int -> unit
val add_evals : int -> unit

val counts : unit -> int * int * int * int
(** [(total, done, pruned, evals)] — for tests. *)
