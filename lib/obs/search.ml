(* Bounded search-event journal.  See search.mli for the contract.

   Incumbent improvements are rare (tens per sweep) and prune events
   are sampled, so a mutex around the append is invisible next to the
   scan kernel; the disarmed fast path is the single [Atomic.get] in
   [enabled]. *)

type kind = Incumbent | Chunk | Prune

type design = {
  nr : int;
  nc : int;
  n_pre : int;
  n_wr : int;
  vssc : float;
}

type event = {
  t : float;
  kind : kind;
  source : string;
  score : float;
  edp : float;
  design : design option;
  detail : int;
}

let kind_name = function
  | Incumbent -> "incumbent"
  | Chunk -> "chunk"
  | Prune -> "prune"

let prune_sample = 512

let armed = Atomic.make false
let enabled () = Atomic.get armed

let lock = Mutex.create ()
let epoch = ref 0.0

(* Events are stored in one flat unboxed float array (12 slots per
   event: t, kind, source id, score, edp, has-design, nr, nc, n_pre,
   n_wr, vssc, detail) so an armed append allocates nothing.  The scan
   kernel it observes is allocation-free; a journal of boxed records
   would tax it with minor collections it never asked for.  Events are
   materialized back into records only on the cold {!events} path. *)
let stride = 12
let store : float array ref = ref [||]
let len = ref 0
let dropped_n = ref 0

(* Source names are interned to small ids so the hot path stores a
   float.  The three optimizer layers get fixed ids; anything else
   (tests, future searches) is added under the journal lock. *)
let extras : string array ref = ref [||]
let n_extras = ref 0

let src_id_locked s =
  match s with
  | "exhaustive" -> 0
  | "local_search" -> 1
  | "anneal" -> 2
  | s ->
    let rec find i =
      if i >= !n_extras then begin
        if !n_extras = Array.length !extras then begin
          let bigger = Array.make (max 4 (2 * Array.length !extras)) "" in
          Array.blit !extras 0 bigger 0 !n_extras;
          extras := bigger
        end;
        !extras.(!n_extras) <- s;
        incr n_extras;
        3 + (!n_extras - 1)
      end
      else if String.equal !extras.(i) s then 3 + i
      else find (i + 1)
    in
    find 0

let src_name_locked = function
  | 0 -> "exhaustive"
  | 1 -> "local_search"
  | 2 -> "anneal"
  | i -> if i - 3 < !n_extras then !extras.(i - 3) else "?"

(* Monotonic counters, kept outside the buffer so they survive a full
   buffer and stay cheap to bump (prunes fire once per pruned geometry
   when armed). *)
let n_incumbents = Atomic.make 0
let n_chunks = Atomic.make 0
let n_prunes = Atomic.make 0

(* Convergence facts live outside the buffer too: a journal that hit
   its cap still reports the true best score and improvement times. *)
let best = ref infinity
let first_imp = ref nan
let last_imp = ref nan

let arm ?(capacity = 8192) () =
  Mutex.lock lock;
  store := Array.make (max 1 capacity * stride) 0.0;
  len := 0;
  dropped_n := 0;
  best := infinity;
  first_imp := nan;
  last_imp := nan;
  epoch := Clock.now ();
  Mutex.unlock lock;
  Atomic.set n_incumbents 0;
  Atomic.set n_chunks 0;
  Atomic.set n_prunes 0;
  Atomic.set armed true

let disarm () = Atomic.set armed false

let kind_code = function Incumbent -> 0.0 | Chunk -> 1.0 | Prune -> 2.0

let emit_locked ~t ~kind ~source ~score ~edp ~design ~detail =
  let s = !store in
  let i = !len * stride in
  if i < Array.length s then begin
    Array.unsafe_set s i t;
    Array.unsafe_set s (i + 1) (kind_code kind);
    Array.unsafe_set s (i + 2) (float_of_int (src_id_locked source));
    Array.unsafe_set s (i + 3) score;
    Array.unsafe_set s (i + 4) edp;
    (match design with
    | None ->
      Array.unsafe_set s (i + 5) 0.0;
      Array.unsafe_set s (i + 6) 0.0;
      Array.unsafe_set s (i + 7) 0.0;
      Array.unsafe_set s (i + 8) 0.0;
      Array.unsafe_set s (i + 9) 0.0;
      Array.unsafe_set s (i + 10) 0.0
    | Some d ->
      Array.unsafe_set s (i + 5) 1.0;
      Array.unsafe_set s (i + 6) (float_of_int d.nr);
      Array.unsafe_set s (i + 7) (float_of_int d.nc);
      Array.unsafe_set s (i + 8) (float_of_int d.n_pre);
      Array.unsafe_set s (i + 9) (float_of_int d.n_wr);
      Array.unsafe_set s (i + 10) d.vssc);
    Array.unsafe_set s (i + 11) (float_of_int detail);
    incr len
  end
  else incr dropped_n

let now_rel () = Clock.now () -. !epoch

let emit ~kind ~source ~score ~edp ~design ~detail =
  let t = now_rel () in
  Mutex.lock lock;
  emit_locked ~t ~kind ~source ~score ~edp ~design ~detail;
  Mutex.unlock lock

let record_incumbent ~source ~score ~edp ~design =
  if enabled () then begin
    Atomic.incr n_incumbents;
    let t = now_rel () in
    Mutex.lock lock;
    if Float.is_nan !first_imp then first_imp := t;
    last_imp := t;
    if score < !best then best := score;
    emit_locked ~t ~kind:Incumbent ~source ~score ~edp ~design:(Some design)
      ~detail:0;
    Mutex.unlock lock
  end

let record_chunk ~source ~index ~score =
  if enabled () then begin
    Atomic.incr n_chunks;
    emit ~kind:Chunk ~source ~score ~edp:nan ~design:None ~detail:index
  end

let record_prune ~source ~bound ~design =
  if enabled () then begin
    let n = Atomic.fetch_and_add n_prunes 1 in
    if n mod prune_sample = 0 then
      emit ~kind:Prune ~source ~score:bound ~edp:nan ~design:(Some design)
        ~detail:0
  end

(* Hot-loop variants: a search that already counts its prunes reuses
   that counter as the sampling clock and folds the total in once, so
   the armed per-prune cost is one atomic load instead of a
   fetch-and-add plus an extra journal event. *)

let record_sampled_prune ~source ~bound ~design =
  if enabled () then
    emit ~kind:Prune ~source ~score:bound ~edp:nan ~design:(Some design)
      ~detail:0

let note_prunes n =
  if enabled () && n > 0 then ignore (Atomic.fetch_and_add n_prunes n)

let events () =
  Mutex.lock lock;
  let n = !len in
  let s = !store in
  let out =
    List.init n (fun j ->
        let i = j * stride in
        let kind =
          match int_of_float s.(i + 1) with
          | 0 -> Incumbent
          | 1 -> Chunk
          | _ -> Prune
        in
        let design =
          if s.(i + 5) = 0.0 then None
          else
            Some
              { nr = int_of_float s.(i + 6);
                nc = int_of_float s.(i + 7);
                n_pre = int_of_float s.(i + 8);
                n_wr = int_of_float s.(i + 9);
                vssc = s.(i + 10) }
        in
        { t = s.(i);
          kind;
          source = src_name_locked (int_of_float s.(i + 2));
          score = s.(i + 3);
          edp = s.(i + 4);
          design;
          detail = int_of_float s.(i + 11) })
  in
  Mutex.unlock lock;
  List.stable_sort (fun a b -> compare a.t b.t) out

type summary = {
  incumbents : int;
  chunks : int;
  prunes : int;
  journaled : int;
  dropped : int;
  best_score : float;
  first_improvement_s : float;
  last_improvement_s : float;
}

let summary () =
  Mutex.lock lock;
  let journaled = !len in
  let dropped = !dropped_n in
  let best_score = !best in
  let first = !first_imp and last = !last_imp in
  Mutex.unlock lock;
  { incumbents = Atomic.get n_incumbents;
    chunks = Atomic.get n_chunks;
    prunes = Atomic.get n_prunes;
    journaled;
    dropped;
    best_score;
    first_improvement_s = first;
    last_improvement_s = last }

let print_report ?(channel = stdout) () =
  let s = summary () in
  if s.journaled > 0 || s.prunes > 0 then begin
    Printf.fprintf channel "search journal:\n";
    Printf.fprintf channel
      "  %d incumbent updates, %d chunk completions, %d bound prunes \
       (1 in %d journaled), %d events stored, %d dropped\n"
      s.incumbents s.chunks s.prunes prune_sample s.journaled s.dropped;
    if s.incumbents > 0 then
      Printf.fprintf channel
        "  best score %.6g; first improvement at %.3f s, last at %.3f s\n"
        s.best_score s.first_improvement_s s.last_improvement_s
  end
