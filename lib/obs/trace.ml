type phase = B | E | I

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : float;
  ev_slot : int;
}

type buffer = {
  buf_slot : int;
  mutable buf_events : event array;
  mutable buf_len : int;
}

let placeholder = { ev_name = ""; ev_phase = I; ev_ts = 0.0; ev_slot = 0 }

let tracing = Atomic.make false
let fine = Atomic.make true
let t0 = Atomic.make 0.0

let reg_lock = Mutex.create ()
let buffers : buffer list ref = ref []

(* One buffer per domain, created and registered on the domain's first
   event.  Buffers of finished domains stay registered (their events are
   still wanted at export time); a fresh [start] rewinds them all. *)
let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { buf_slot = Control.slot ();
          buf_events = Array.make 1024 placeholder;
          buf_len = 0 }
      in
      Mutex.lock reg_lock;
      buffers := b :: !buffers;
      Mutex.unlock reg_lock;
      b)

let push name phase =
  let b = Domain.DLS.get buffer_key in
  let cap = Array.length b.buf_events in
  if b.buf_len = cap then begin
    let bigger = Array.make (2 * cap) placeholder in
    Array.blit b.buf_events 0 bigger 0 cap;
    b.buf_events <- bigger
  end;
  b.buf_events.(b.buf_len) <-
    { ev_name = name;
      ev_phase = phase;
      ev_ts = Clock.now () -. Atomic.get t0;
      ev_slot = b.buf_slot };
  b.buf_len <- b.buf_len + 1

let active () = Atomic.get tracing
let fine_active () = Atomic.get tracing && Atomic.get fine

let with_span name f =
  if not (Atomic.get tracing) then f ()
  else begin
    push name B;
    match f () with
    | v ->
      push name E;
      v
    | exception e ->
      push name E;
      raise e
  end

let instant name = if Atomic.get tracing then push name I

let start ?(detail = `Fine) () =
  Mutex.lock reg_lock;
  List.iter (fun b -> b.buf_len <- 0) !buffers;
  Mutex.unlock reg_lock;
  Atomic.set fine (match detail with `Fine -> true | `Coarse -> false);
  Atomic.set t0 (Clock.now ());
  Atomic.set tracing true

let stop () = Atomic.set tracing false

let events () =
  Mutex.lock reg_lock;
  let bufs = !buffers in
  Mutex.unlock reg_lock;
  let all =
    List.concat_map
      (fun b -> Array.to_list (Array.sub b.buf_events 0 b.buf_len))
      bufs
  in
  (* Stable: per-buffer (= per-domain) event order is preserved for
     equal timestamps, keeping B/E nesting valid per timeline. *)
  List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts) all

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_string () =
  let evs = events () in
  let slots =
    List.sort_uniq compare (List.map (fun e -> e.ev_slot) evs)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"sram-opt\"}}";
  List.iter
    (fun slot ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           slot
           (escape (Control.slot_name slot))))
    slots;
  List.iter
    (fun e ->
      let ts = 1e6 *. e.ev_ts in
      match e.ev_phase with
      | B | E ->
        Buffer.add_string buf
          (Printf.sprintf
             ",{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d}"
             (escape e.ev_name)
             (match e.ev_phase with B -> "B" | _ -> "E")
             ts e.ev_slot)
      | I ->
        Buffer.add_string buf
          (Printf.sprintf
             ",{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d}"
             (escape e.ev_name) ts e.ev_slot))
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write path =
  let n = List.length (events ()) in
  let oc = open_out path in
  output_string oc (to_chrome_string ());
  output_char oc '\n';
  close_out oc;
  n
