type phase = B | E | I | X of float

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : float;
  ev_slot : int;
  ev_ctx : string;  (* request trace id; "" = none *)
}

type buffer = {
  buf_slot : int;
  mutable buf_events : event array;
  mutable buf_len : int;
}

(* Fixed-capacity overwrite-oldest ring: the flight recorder's
   always-affordable record of the recent past. *)
type ring = {
  ring_slot : int;
  ring_events : event array;
  mutable ring_pos : int;    (* next write position *)
  mutable ring_total : int;  (* lifetime writes; >= capacity once wrapped *)
}

let placeholder = { ev_name = ""; ev_phase = I; ev_ts = 0.0; ev_slot = 0; ev_ctx = "" }

let tracing = Atomic.make false
let fine = Atomic.make true
let t0 = Atomic.make 0.0

(* Flight recording is independent of [tracing]: a serving daemon keeps
   the ring armed for its whole life, while full tracing is an explicit
   --trace run.  0 = disarmed. *)
let flight_capacity = Atomic.make 0

(* The current request-scoped trace id, stamped into every event and
   log line recorded while set.  A process-wide slot is correct for the
   serving path (requests evaluate one at a time); the pool workers a
   request fans out to inherit it for free. *)
let context = Atomic.make ""

let set_context id = Atomic.set context id
let clear_context () = Atomic.set context ""
let get_context () = match Atomic.get context with "" -> None | id -> Some id

let with_context id f =
  let previous = Atomic.get context in
  Atomic.set context id;
  Fun.protect ~finally:(fun () -> Atomic.set context previous) f

let reg_lock = Mutex.create ()
let buffers : buffer list ref = ref []
let rings : ring list ref = ref []

(* One buffer per domain, created and registered on the domain's first
   event.  Buffers of finished domains stay registered (their events are
   still wanted at export time); a fresh [start] rewinds them all. *)
let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { buf_slot = Control.slot ();
          buf_events = Array.make 1024 placeholder;
          buf_len = 0 }
      in
      Mutex.lock reg_lock;
      buffers := b :: !buffers;
      Mutex.unlock reg_lock;
      b)

let ring_key =
  Domain.DLS.new_key (fun () ->
      let cap = max 16 (Atomic.get flight_capacity) in
      let r =
        { ring_slot = Control.slot ();
          ring_events = Array.make cap placeholder;
          ring_pos = 0;
          ring_total = 0 }
      in
      Mutex.lock reg_lock;
      rings := r :: !rings;
      Mutex.unlock reg_lock;
      r)

let push name phase =
  let ev =
    { ev_name = name;
      ev_phase = phase;
      ev_ts = Clock.now () -. Atomic.get t0;
      ev_slot = Control.slot ();
      ev_ctx = Atomic.get context }
  in
  if Atomic.get tracing then begin
    let b = Domain.DLS.get buffer_key in
    let cap = Array.length b.buf_events in
    if b.buf_len = cap then begin
      let bigger = Array.make (2 * cap) placeholder in
      Array.blit b.buf_events 0 bigger 0 cap;
      b.buf_events <- bigger
    end;
    b.buf_events.(b.buf_len) <- ev;
    b.buf_len <- b.buf_len + 1
  end;
  if Atomic.get flight_capacity > 0 then begin
    let r = Domain.DLS.get ring_key in
    r.ring_events.(r.ring_pos) <- ev;
    r.ring_pos <- (r.ring_pos + 1) mod Array.length r.ring_events;
    r.ring_total <- r.ring_total + 1
  end

let active () = Atomic.get tracing || Atomic.get flight_capacity > 0
let fine_active () = Atomic.get tracing && Atomic.get fine

(* One ring slot per span when only the flight ring is listening: a
   complete (X) event recorded at close carries the duration, halving
   the per-span cost on the serving hot path and doubling the history a
   fixed ring retains.  Full tracing keeps B/E pairs, whose live
   nesting structure the exporter and tests rely on. *)
let push_complete name t_start =
  let ev =
    { ev_name = name;
      ev_phase = X (Clock.now () -. t_start);
      ev_ts = t_start -. Atomic.get t0;
      ev_slot = Control.slot ();
      ev_ctx = Atomic.get context }
  in
  if Atomic.get flight_capacity > 0 then begin
    let r = Domain.DLS.get ring_key in
    r.ring_events.(r.ring_pos) <- ev;
    r.ring_pos <- (r.ring_pos + 1) mod Array.length r.ring_events;
    r.ring_total <- r.ring_total + 1
  end

let with_span name f =
  if Atomic.get tracing then begin
    push name B;
    match f () with
    | v ->
      push name E;
      v
    | exception e ->
      push name E;
      raise e
  end
  else if Atomic.get flight_capacity > 0 then begin
    let t_start = Clock.now () in
    match f () with
    | v ->
      push_complete name t_start;
      v
    | exception e ->
      push_complete name t_start;
      raise e
  end
  else f ()

let instant name = if active () then push name I

let anchor_t0 () =
  if Atomic.get t0 = 0.0 then Atomic.set t0 (Clock.now ())

let epoch () = Atomic.get t0

let start ?(detail = `Fine) () =
  Mutex.lock reg_lock;
  List.iter (fun b -> b.buf_len <- 0) !buffers;
  Mutex.unlock reg_lock;
  Atomic.set fine (match detail with `Fine -> true | `Coarse -> false);
  Atomic.set t0 (Clock.now ());
  Atomic.set tracing true

let stop () = Atomic.set tracing false

(* Per-domain ring capacities are fixed at the domain's first event, so
   arming applies the capacity to rings created afterwards; already-
   registered rings keep their size (their contents stay wanted). *)
let arm_flight ?(capacity = 4096) () =
  anchor_t0 ();
  Atomic.set flight_capacity (max 16 capacity)

let disarm_flight () = Atomic.set flight_capacity 0

let flight_armed () = Atomic.get flight_capacity > 0

let sorted_events all =
  (* Stable: per-buffer (= per-domain) event order is preserved for
     equal timestamps, keeping B/E nesting valid per timeline. *)
  List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts) all

let events () =
  Mutex.lock reg_lock;
  let bufs = !buffers in
  Mutex.unlock reg_lock;
  sorted_events
    (List.concat_map
       (fun b -> Array.to_list (Array.sub b.buf_events 0 b.buf_len))
       bufs)

let flight_events () =
  Mutex.lock reg_lock;
  let rs = !rings in
  Mutex.unlock reg_lock;
  sorted_events
    (List.concat_map
       (fun r ->
         let cap = Array.length r.ring_events in
         let n = min r.ring_total cap in
         (* Oldest-first: from ring_pos when wrapped, from 0 otherwise. *)
         let start = if r.ring_total > cap then r.ring_pos else 0 in
         List.init n (fun i -> r.ring_events.((start + i) mod cap)))
       rs)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let chrome_string_of_events evs =
  let slots =
    List.sort_uniq compare (List.map (fun e -> e.ev_slot) evs)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  Buffer.add_string buf
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"sram-opt\"}}";
  List.iter
    (fun slot ->
      Buffer.add_string buf
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           slot
           (escape (Control.slot_name slot))))
    slots;
  let args_of e =
    if e.ev_ctx = "" then ""
    else Printf.sprintf ",\"args\":{\"trace_id\":\"%s\"}" (escape e.ev_ctx)
  in
  List.iter
    (fun e ->
      let ts = 1e6 *. e.ev_ts in
      match e.ev_phase with
      | B | E ->
        Buffer.add_string buf
          (Printf.sprintf
             ",{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":0,\"tid\":%d%s}"
             (escape e.ev_name)
             (match e.ev_phase with B -> "B" | _ -> "E")
             ts e.ev_slot (args_of e))
      | I ->
        Buffer.add_string buf
          (Printf.sprintf
             ",{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d%s}"
             (escape e.ev_name) ts e.ev_slot (args_of e))
      | X dur ->
        Buffer.add_string buf
          (Printf.sprintf
             ",{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d%s}"
             (escape e.ev_name) ts (1e6 *. dur) e.ev_slot (args_of e)))
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let to_chrome_string () = chrome_string_of_events (events ())

let write path =
  let evs = events () in
  let n = List.length evs in
  let oc = open_out path in
  output_string oc (chrome_string_of_events evs);
  output_char oc '\n';
  close_out oc;
  n
