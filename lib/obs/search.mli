(** Search-event journal: how the incumbent converged, not just where.

    While armed, the optimizer layers append structured events —
    incumbent improvements (timestamp, objective score, EDP, design
    coordinates), checkpoint-chunk completions, and a deterministic
    1-in-{!prune_sample} sample of bound prunes — into one bounded,
    mutex-protected buffer.  The journal is strictly observational: no
    search decision ever reads it, so winners are bit-identical with
    the journal on or off at any job count.

    Disarmed cost is one atomic load per would-be event ({!enabled} is
    the hot-path gate, same discipline as [Control.is_enabled]); armed
    cost is bounded by the event cap and measured by the
    [bench explain] overhead gate (< 3%).

    Timestamps are seconds since {!arm} on the monotonic clock.  Under
    a pool, events from different domains may interleave slightly out
    of order; {!events} sorts by timestamp before returning. *)

type kind =
  | Incumbent  (** a search published a new best score *)
  | Chunk      (** a checkpoint chunk completed *)
  | Prune      (** a whole-line bound prune (sampled) *)

type design = {
  nr : int;
  nc : int;
  n_pre : int;
  n_wr : int;
  vssc : float;  (** volts; [nan] when the event covers a whole line *)
}

type event = {
  t : float;       (** seconds since {!arm} *)
  kind : kind;
  source : string; (** ["exhaustive"], ["local_search"], ["anneal"] *)
  score : float;   (** objective value (for [Prune]: the admissible bound) *)
  edp : float;     (** EDP of the design, [nan] when not materialized *)
  design : design option;
  detail : int;    (** [Chunk]: chunk index; otherwise 0 *)
}

val kind_name : kind -> string

val prune_sample : int
(** Prune events are journaled once per this many prunes (counters
    still count every one).  Always a power of two, so hot loops can
    sample with [land (prune_sample - 1)] instead of [mod]. *)

val arm : ?capacity:int -> unit -> unit
(** Start journaling into a fresh buffer of at most [capacity] events
    (default 8192); events past the cap are counted in {!dropped}
    rather than stored. *)

val disarm : unit -> unit
(** Stop journaling.  The buffer and counters survive until the next
    {!arm} so a finished run can still be exported. *)

val enabled : unit -> bool
(** The hot-path gate: one atomic load. *)

val record_incumbent :
  source:string -> score:float -> edp:float -> design:design -> unit

val record_chunk : source:string -> index:int -> score:float -> unit
(** [score] is the chunk's best (or [infinity] for an empty chunk). *)

val record_prune : source:string -> bound:float -> design:design -> unit
(** Counts every call; journals one in {!prune_sample}. *)

val record_sampled_prune :
  source:string -> bound:float -> design:design -> unit
(** Journal one prune event the caller already sampled; does not touch
    the prune counter.  Pair with {!note_prunes} from hot loops that
    keep their own prune count — the armed per-prune cost then stays a
    single atomic load. *)

val note_prunes : int -> unit
(** Fold [n] prunes into the counter without journaling; searches call
    it once at completion, so mid-search summaries lag by at most one
    in-flight search. *)

val events : unit -> event list
(** Journaled events in timestamp order. *)

type summary = {
  incumbents : int;      (** improvement events recorded *)
  chunks : int;
  prunes : int;          (** every prune counted, not just journaled *)
  journaled : int;       (** events actually stored *)
  dropped : int;         (** events past the buffer cap *)
  best_score : float;
  (** lowest incumbent score, tracked outside the buffer so it survives
      the cap; [infinity] if none *)
  first_improvement_s : float;  (** [nan] if no incumbents *)
  last_improvement_s : float;   (** [nan] if no incumbents *)
}

val summary : unit -> summary

val print_report : ?channel:out_channel -> unit -> unit
(** Human-readable convergence summary (the [--stats] block); silent
    when nothing was journaled. *)
