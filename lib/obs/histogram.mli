(** Log-bucketed latency histograms, mergeable across domains.

    64 buckets spaced by a factor of sqrt(2) from a 1 ns floor cover
    1 ns to ~4.3 s — every latency in this codebase — with <= 21%
    relative quantization error per bucket.  Counts are sharded per
    domain slot ({!Control.slot}), so {!observe} touches only the
    calling domain's own cache lines: no lock, no contention on the hot
    path.  {!snapshot} merges the shards; snapshots of separately
    recorded histograms {!merge} exactly (bucket counts add).

    Hot call sites record {e sampled} latencies: {!tick} fires on every
    [sample]-th call per slot, dividing the ~60 ns clock cost by the
    sample factor while leaving percentile estimates unbiased for the
    i.i.d.-ish latency streams measured here.  Recording is gated on
    {!Control.is_enabled}; when disabled, {!tick} and {!time} cost one
    atomic load.

    Histograms register by name in a process registry (like
    [Telemetry.counter]) so [--stats] and the bench harness can report
    every site without threading handles. *)

type t

val default_buckets : int  (** 64 *)

val default_lo : float  (** 1e-9 s: upper edge of bucket 0 is lo * sqrt 2 *)

val create : ?sample:int -> ?lo:float -> ?buckets:int -> string -> t
(** Get or create the histogram registered under this name (parameters
    are only applied on first creation).  [sample] is the per-slot
    sampling period of {!tick} / {!time} (default 1: every call). *)

val observe : t -> float -> unit
(** Record one latency (seconds) into the calling domain's shard.
    Unconditional — callers gate on {!tick} or {!Control.is_enabled}. *)

val major_collections : unit -> int
(** Current [Gc] major-collection count; bracket a timed region with
    two reads to learn whether a slow sample straddled a major slice
    (allocates one [Gc.stat] record — only call on sampled paths). *)

val observe_gc : t -> float -> int -> unit
(** [observe_gc h dt gc_delta] is {!observe} plus GC-coincidence
    accounting: when [gc_delta > 0] (the {!major_collections} delta
    across the timed region) the sample is counted in the snapshot's
    [gc_coincident] tally, so p99/max outliers can be attributed to —
    or exonerated from — collector interference. *)

val tick : t -> bool
(** [false] when recording is disabled or this call is not a sampling
    point; [true] on every [sample]-th call per slot when enabled.  The
    caller then times the operation and {!observe}s it. *)

val time : t -> (unit -> 'a) -> 'a
(** [time h f] runs [f], observing its latency when {!tick} fires.
    Convenience form; allocates a closure, so prefer the explicit
    {!tick}/{!observe} pattern on allocation-sensitive paths. *)

val bucket_of : t -> float -> int
(** Index of the bucket a value lands in (clamped to the range). *)

type snapshot = {
  name : string;
  sample : int;       (** sampling period the histogram records at *)
  lo : float;
  count : int;        (** recorded observations (samples, not calls) *)
  sum : float;
  min_s : float;      (** +inf when empty *)
  max_s : float;      (** -inf when empty *)
  gc_coincident : int;
  (** samples whose timed region straddled >= 1 major GC slice
      (recorded via {!observe_gc}; 0 for plain {!observe} sites) *)
  buckets : int array;
}

val snapshot : t -> snapshot
(** Merge the per-slot shards.  Concurrent {!observe}s may tear a
    snapshot by a count or two; quiesce recording for exact numbers. *)

val bucket_bounds : snapshot -> int -> float * float
(** [(lower, upper)] edges of a bucket; bucket 0's lower edge is 0. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum.  [Invalid_argument] when the bucket layouts differ. *)

val diff : snapshot -> snapshot -> snapshot
(** [diff newer older]: the observations recorded between two snapshots
    of the same histogram — counts, bucket counts, sum and gc tallies
    subtract (exactly, for the integer fields; the sum in one float
    subtraction, so a diff against a zero baseline reproduces the
    cumulative sum bit-for-bit).  min/max are re-estimated from the
    surviving buckets' bounds, tightened by the cumulative extrema —
    valid clamps for {!percentile}, not the exact in-window extrema.
    [Invalid_argument] when the bucket layouts differ.  This is the
    windowed-metrics primitive: {!Obs.Window} keeps cumulative
    snapshots at rotation points and serves any trailing window as one
    [diff]. *)

val percentile : snapshot -> float -> float
(** [percentile s 0.99]: linear interpolation inside the covering
    bucket, clamped to the observed [min_s, max_s]; monotone in the
    requested fraction.  0 when empty. *)

val mean : snapshot -> float

val snapshots : unit -> snapshot list
(** Every registered histogram, sorted by name. *)

val reset : t -> unit
val reset_all : unit -> unit

val print_report : ?channel:out_channel -> unit -> unit
(** Table of non-empty histograms: samples, p50/p90/p99, max, mean,
    and the GC-coincident sample count. *)
