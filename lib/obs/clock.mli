(** Time sources for the observability layer.

    {!now} is a monotonic clock (CLOCK_MONOTONIC via the bechamel stub)
    when the platform provides one, so span totals and derived rates
    survive wall-clock steps; it falls back to [Unix.gettimeofday]
    otherwise.  The absolute value of {!now} is meaningless — only
    differences are. *)

val monotonic_available : bool
(** Whether {!now} is actually backed by the monotonic source. *)

val now : unit -> float
(** Monotonic seconds (arbitrary epoch).  Never steps backwards when
    {!monotonic_available}. *)

val wall : unit -> float
(** Wall-clock seconds since the Unix epoch, for timestamps meant to be
    correlated with the outside world. *)
