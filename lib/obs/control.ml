let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let max_slots = 128

(* The domain id is already a dense small integer and [Domain.self] is a
   noalloc primitive, so it beats domain-local storage as a shard index:
   [slot] must stay a few nanoseconds because histogram [tick]s call it
   on ~100 ns evaluation paths. *)
let slot () = (Domain.self () :> int) land (max_slots - 1)

let names_lock = Mutex.create ()
let names : (int, string) Hashtbl.t = Hashtbl.create 16

let set_worker_name name =
  let s = slot () in
  Mutex.lock names_lock;
  Hashtbl.replace names s name;
  Mutex.unlock names_lock

let slot_name s =
  Mutex.lock names_lock;
  let n = Hashtbl.find_opt names s in
  Mutex.unlock names_lock;
  match n with Some n -> n | None -> Printf.sprintf "domain-%d" s
