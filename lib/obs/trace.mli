(** Hierarchical spans with per-domain event buffers and a Chrome
    trace-event exporter.

    Each recording domain appends begin/end events into its own
    growable buffer (registered once, under a mutex, at the domain's
    first event) — the hot path is an array store plus one clock read,
    with no shared lock.  Buffers are drained at export time into the
    Chrome trace-event JSON format, one timeline (tid) per domain slot,
    loadable in Perfetto or chrome://tracing.

    Tracing is off by default; {!start} arms it.  [`Fine] detail also
    enables the per-geometry spans the search layer guards with
    {!fine_active} (tens of thousands of events per search); [`Coarse]
    keeps only the structural spans (sweep / search / chunks /
    characterization). *)

type phase = B | E | I

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : float;  (** seconds since {!start} *)
  ev_slot : int;  (** recording domain's {!Control.slot} *)
}

val start : ?detail:[ `Fine | `Coarse ] -> unit -> unit
(** Clear all buffers and begin recording (default [`Fine]). *)

val stop : unit -> unit
(** Stop recording; buffered events stay available for {!write}. *)

val active : unit -> bool

val fine_active : unit -> bool
(** Recording, and at [`Fine] detail — gates high-volume spans. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f]: wrap [f] in begin/end events when recording
    (exception-safe); just [f ()] otherwise. *)

val instant : string -> unit
(** A zero-duration marker event. *)

val events : unit -> event list
(** All buffered events, sorted by timestamp (stable per domain). *)

val to_chrome_string : unit -> string
(** The buffered events as one Chrome trace-event JSON document, with
    process/thread-name metadata per slot. *)

val write : string -> int
(** Write {!to_chrome_string} to a file; returns the event count. *)
