(** Hierarchical spans with per-domain event buffers, a Chrome
    trace-event exporter, request-scoped trace ids, and an always-on
    bounded flight ring.

    Each recording domain appends begin/end events into its own
    growable buffer (registered once, under a mutex, at the domain's
    first event) — the hot path is an array store plus one clock read,
    with no shared lock.  Buffers are drained at export time into the
    Chrome trace-event JSON format, one timeline (tid) per domain slot,
    loadable in Perfetto or chrome://tracing.

    Two independent recorders share the same instrumentation points:

    - {e Tracing} ({!start} / {!stop}) — the explicit [--trace] run:
      growable buffers capture everything until exported with {!write}.
      [`Fine] detail also enables the per-geometry spans the search
      layer guards with {!fine_active}; [`Coarse] keeps only the
      structural spans.
    - The {e flight ring} ({!arm_flight}) — a fixed-size per-domain
      overwrite-oldest ring of recent coarse spans that a long-running
      daemon keeps armed for its whole life.  {!flight_events} returns
      the retained window; {!Flight} turns it into postmortem dump
      files.

    Events carry the current {e trace context} — a request-scoped id
    set by the serving path around each request — so every span
    recorded while handling a request can be attributed to it in the
    exported timeline ([args.trace_id] in the Chrome JSON). *)

type phase =
  | B | E       (** span begin/end pairs, recorded while tracing *)
  | I           (** zero-duration marker *)
  | X of float  (** complete span with its duration in seconds —
                    recorded at span close when only the flight ring is
                    listening, so a span costs one ring slot, not two *)

type event = {
  ev_name : string;
  ev_phase : phase;
  ev_ts : float;   (** seconds since {!start} / first {!arm_flight} *)
  ev_slot : int;   (** recording domain's {!Control.slot} *)
  ev_ctx : string; (** trace context at record time; [""] = none *)
}

val start : ?detail:[ `Fine | `Coarse ] -> unit -> unit
(** Clear all buffers and begin recording (default [`Fine]). *)

val stop : unit -> unit
(** Stop recording; buffered events stay available for {!write}. *)

val active : unit -> bool
(** Recording into the trace buffers or the flight ring. *)

val fine_active : unit -> bool
(** Tracing (not just flight-recording), at [`Fine] detail — gates
    high-volume per-candidate spans. *)

(** {2 Request context} *)

val set_context : string -> unit
(** Set the trace id stamped into subsequently recorded events and
    {!Log} lines.  Process-wide: the serving path handles one request
    at a time, and worker domains inherit the id for free. *)

val clear_context : unit -> unit

val get_context : unit -> string option

val with_context : string -> (unit -> 'a) -> 'a
(** Run with the context set, restoring the previous value
    (exception-safe). *)

(** {2 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f]: wrap [f] in begin/end events when recording
    (exception-safe); just [f ()] otherwise. *)

val instant : string -> unit
(** A zero-duration marker event. *)

(** {2 Flight ring} *)

val arm_flight : ?capacity:int -> unit -> unit
(** Record every coarse span/instant into a per-domain ring of
    [capacity] events (default 4096, min 16), overwriting the oldest.
    Rings created before arming keep their original capacity. *)

val disarm_flight : unit -> unit

val flight_armed : unit -> bool

val flight_events : unit -> event list
(** The retained ring contents across all domains, oldest first per
    domain, merged in timestamp order. *)

val epoch : unit -> float
(** The clock value [ev_ts] is measured from (0.0 before any {!start}
    or {!arm_flight}) — lets {!Flight} place log lines on the same time
    axis as span events. *)

(** {2 Export} *)

val events : unit -> event list
(** All buffered trace events, sorted by timestamp (stable per
    domain). *)

val chrome_string_of_events : event list -> string
(** An arbitrary event list as one Chrome trace-event JSON document,
    with process/thread-name metadata per slot and [args.trace_id] on
    context-tagged events. *)

val to_chrome_string : unit -> string
(** [chrome_string_of_events (events ())]. *)

val write : string -> int
(** Write {!to_chrome_string} to a file; returns the event count. *)
