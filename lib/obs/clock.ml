(* bechamel's stub is a direct clock_gettime(CLOCK_MONOTONIC) returning
   nanoseconds; probe it once so a hypothetical broken platform degrades
   to gettimeofday instead of handing out zeros. *)
let monotonic_available =
  try
    let a = Monotonic_clock.now () in
    let b = Monotonic_clock.now () in
    Int64.compare a 0L > 0 && Int64.compare b a >= 0
  with _ -> false

let monotonic () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let wall = Unix.gettimeofday

let now = if monotonic_available then monotonic else wall
