let active_flag = Atomic.make false
let total = Atomic.make 0
let done_count = Atomic.make 0
let pruned = Atomic.make 0
let evals = Atomic.make 0
let start_time = Atomic.make 0.0

let ticker : unit Domain.t option ref = ref None
let out = ref stderr

let active () = Atomic.get active_flag

let add_total n = if active () then ignore (Atomic.fetch_and_add total n)
let add_done n = if active () then ignore (Atomic.fetch_and_add done_count n)
let add_pruned n = if active () then ignore (Atomic.fetch_and_add pruned n)
let add_evals n = if active () then ignore (Atomic.fetch_and_add evals n)

let counts () =
  (Atomic.get total, Atomic.get done_count, Atomic.get pruned, Atomic.get evals)

let render () =
  let t = Atomic.get total and d = Atomic.get done_count in
  let p = Atomic.get pruned and e = Atomic.get evals in
  let elapsed = Clock.now () -. Atomic.get start_time in
  let rate = if elapsed > 0.0 then float_of_int e /. elapsed else 0.0 in
  let eta =
    if d > 0 && t > d then
      Printf.sprintf "%.1fs"
        (elapsed *. float_of_int (t - d) /. float_of_int d)
    else "-"
  in
  Printf.sprintf "geometries %d/%d  pruned %d  %.0f evals/s  ETA %s" d t p
    rate eta

let start ?(interval = 0.25) ?channel () =
  if not (Atomic.get active_flag) then begin
    (match channel with Some c -> out := c | None -> out := stderr);
    Atomic.set total 0;
    Atomic.set done_count 0;
    Atomic.set pruned 0;
    Atomic.set evals 0;
    Atomic.set start_time (Clock.now ());
    Atomic.set active_flag true;
    ticker :=
      Some
        (Domain.spawn (fun () ->
             while Atomic.get active_flag do
               Unix.sleepf interval;
               if Atomic.get active_flag then
                 (* \r repaint + erase-to-eol keeps one live line. *)
                 Printf.fprintf !out "\r  %s\x1b[K%!" (render ())
             done))
  end

let stop () =
  if Atomic.get active_flag then begin
    Atomic.set active_flag false;
    (match !ticker with Some d -> Domain.join d | None -> ());
    ticker := None;
    Printf.fprintf !out "\r  %s\x1b[K\n%!" (render ())
  end
