type level = Quiet | Error | Warn | Info | Debug

let severity = function
  | Quiet -> -1
  | Error -> 0
  | Warn -> 1
  | Info -> 2
  | Debug -> 3

let to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "off" | "none" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let initial =
  match Sys.getenv_opt "SRAM_OPT_LOG" with
  | Some s -> (match of_string s with Some l -> l | None -> Warn)
  | None -> Warn

let current = Atomic.make initial

let set_level l = Atomic.set current l
let level () = Atomic.get current
let enabled l = severity l <= severity (Atomic.get current)

let lock = Mutex.create ()
let channel = ref stderr

let set_channel c =
  Mutex.lock lock;
  channel := c;
  Mutex.unlock lock

(* Secondary consumer of warn+ lines, independent of the console level:
   the flight recorder captures recent warnings/errors even when the
   console is quiet.  A ref, not a direct call into Flight, so Log stays
   at the bottom of the dependency order. *)
let sink : (float -> level -> string -> string -> string -> unit) option ref =
  ref None

let set_sink s =
  Mutex.lock lock;
  sink := s;
  Mutex.unlock lock

let t0 = Clock.now ()

let emit l section msg =
  let ts = Clock.now () -. t0 in
  let ctx = match Trace.get_context () with Some id -> id | None -> "" in
  Mutex.lock lock;
  if enabled l then begin
    if ctx = "" then
      Printf.fprintf !channel "[%8.3f] %-5s %s: %s\n%!" ts (to_string l)
        section msg
    else
      Printf.fprintf !channel "[%8.3f] %-5s %s: %s [trace_id=%s]\n%!" ts
        (to_string l) section msg ctx
  end;
  (match !sink with
  | Some f when severity l <= severity Warn -> f ts l section msg ctx
  | _ -> ());
  Mutex.unlock lock

let msg l ~section fmt =
  Printf.ksprintf
    (fun s -> if enabled l || !sink <> None then emit l section s)
    fmt

let error ~section fmt = msg Error ~section fmt
let warn ~section fmt = msg Warn ~section fmt
let info ~section fmt = msg Info ~section fmt
let debug ~section fmt = msg Debug ~section fmt
