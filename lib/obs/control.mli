(** Shared switches and per-domain identity for the observability layer.

    Recording histograms costs a little even when nobody reads them, so
    the whole layer sits behind one process-wide {!is_enabled} flag that
    hot paths check first (a single atomic load).  Tracing has its own
    flag in {!Trace}; the progress reporter its own in {!Progress}.

    Every domain that records gets a small integer {e slot} — a stable
    per-domain index used to shard histogram counts and to label trace
    timelines — derived from the domain id (a few nanoseconds to read,
    cheap enough for per-evaluation sampling ticks). *)

val set_enabled : bool -> unit
(** Master switch for histogram recording ([--stats] sets it). *)

val is_enabled : unit -> bool

val max_slots : int
(** Number of distinct shard slots.  Slot assignment wraps past this
    many domains, which only merges their shard counters — never a
    correctness issue. *)

val slot : unit -> int
(** This domain's slot in [0, max_slots). *)

val set_worker_name : string -> unit
(** Label the calling domain's slot for trace timelines (the pool names
    its workers ["worker-1"], ["worker-2"], …; the CLI names the calling
    domain ["main"]). *)

val slot_name : int -> string
(** The label registered for a slot, or ["domain-<slot>"]. *)
