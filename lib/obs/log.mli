(** Leveled structured logger, replacing ad-hoc [Printf.eprintf] calls.

    Lines go to stderr (or {!set_channel}) as

    {v [   0.123] warn  spice: operating point did not fully converge v}

    with seconds-since-startup, the level and a section tag.  The level
    defaults to [Warn]; the [SRAM_OPT_LOG] environment variable sets the
    initial level, the CLI's [--log-level] overrides it.  Formatting of
    suppressed messages still runs ([Printf.ksprintf]), so keep log
    calls off hot paths — they are for lifecycle events, not per-eval
    chatter.

    Lines emitted while a request-scoped trace id is set
    ({!Trace.set_context}) carry a [trace_id=...] suffix, and warn+
    lines are also delivered to the {!set_sink} hook (regardless of the
    console level) so the flight recorder retains recent warnings even
    when the console is quiet. *)

type level = Quiet | Error | Warn | Info | Debug

val of_string : string -> level option
(** Parses ["quiet"|"off"|"none"], ["error"], ["warn"|"warning"],
    ["info"], ["debug"] (case-insensitive). *)

val to_string : level -> string

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Whether a message at this level would be emitted. *)

val set_channel : out_channel -> unit
(** Redirect output (tests); default stderr. *)

val set_sink : (float -> level -> string -> string -> string -> unit) option -> unit
(** Install (or clear) a secondary consumer of warn+ lines:
    [f ts level section message trace_id] runs under the log lock for
    every warn/error message, independent of the console level.  Used
    by {!Flight} to keep recent warnings in its ring; keep the sink
    cheap and non-raising. *)

val error : section:string -> ('a, unit, string, unit) format4 -> 'a
val warn : section:string -> ('a, unit, string, unit) format4 -> 'a
val info : section:string -> ('a, unit, string, unit) format4 -> 'a
val debug : section:string -> ('a, unit, string, unit) format4 -> 'a
