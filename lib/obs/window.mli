(** Windowed (recent-traffic) views over cumulative {!Histogram}s and
    monotone counters, for long-running processes.

    A lifetime histogram answers "what has the p99 ever been"; a serving
    daemon needs "what is the p99 {e now}".  Each window keeps a ring of
    cumulative snapshots taken at rotation points (default 1 s apart,
    300 retained); the trailing window over the last [k] intervals is
    one {!Histogram.diff} between the live snapshot and the entry [k]
    rotations ago.  Because the entries are cumulative — not
    per-interval deltas re-merged — window counts and bucket counts are
    exact, and the full-history window reproduces the cumulative
    histogram bit-for-bit (the QCheck property in test_obs).

    Rotation is driven by the owner's event loop ({!maybe_rotate} every
    iteration costs one clock read); nothing here spawns a domain.
    Registered windows and tracked counters are enumerated by
    {!report} / {!counter_report} for the [stats] endpoint, [--stats]
    and the Prometheus exposition. *)

type t

val default_period : float
(** 1.0 s between rotations. *)

val default_intervals : int
(** 300 retained rotations = 5 min. *)

val standard_windows : (string * int) list
(** [("10s", 10); ("60s", 60); ("300s", 300)] — the label and interval
    count of each window {!report} and the stats schema expose. *)

val create : ?intervals:int -> Histogram.t -> t
(** Get or create the window registered under the histogram's name
    ([intervals] applies on first creation only). *)

val track : string -> (unit -> int) -> unit
(** Register a monotone counter source (e.g. a [Telemetry] counter's
    current value) to be sampled at every rotation, so
    {!counter_report} can expose windowed deltas — SLO counters like
    deadline misses and busy rejections per minute. *)

val rotate : t -> unit
(** Force one rotation of a single window (tests). *)

val rotate_all : unit -> unit
(** Force one rotation of every window and tracked counter. *)

val maybe_rotate : ?now:float -> unit -> unit
(** Rotate everything once per elapsed period since the last rotation
    (capped at the ring size); cheap no-op within a period.  Event
    loops call this every iteration. *)

val set_period : float -> unit
val current_period : unit -> float

val merged : t -> intervals:int -> Histogram.snapshot
(** The trailing window covering the last [intervals] rotations (plus
    the part-interval since the last rotation).  Falls back to the
    creation-time baseline — i.e. the full recorded history — when
    fewer rotations are retained. *)

val cumulative : t -> Histogram.snapshot
(** The live cumulative snapshot of the underlying histogram. *)

val retained : t -> int
(** Rotations currently held (saturates at [intervals]). *)

val intervals : t -> int

val name : t -> string

val find : string -> t option

val report :
  unit -> (string * Histogram.snapshot * (string * Histogram.snapshot) list) list
(** Every registered window, sorted by name:
    [(name, cumulative, [(window label, windowed snapshot); ...])] with
    one entry per {!standard_windows}. *)

val counter_report : unit -> (string * int * (string * int) list) list
(** Every tracked counter: [(name, current value, windowed deltas)]. *)

val reset_all : unit -> unit
(** Drop every window and tracked counter (tests and forked children). *)
