let default_buckets = 64
let default_lo = 1e-9
let ratio = sqrt 2.0

type t = {
  h_name : string;
  sample : int;
  lo : float;
  n_buckets : int;
  counts : int array array;  (* slot -> bucket -> count *)
  sums : float array;
  mins : float array;
  maxs : float array;
  totals : int array;
  countdown : int array;     (* per-slot sampling countdown *)
  gc_hits : int array;       (* samples that straddled a major GC slice *)
}

let registry_lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let make ~sample ~lo ~buckets name =
  let slots = Control.max_slots in
  { h_name = name;
    sample = max 1 sample;
    lo;
    n_buckets = max 1 buckets;
    counts = Array.init slots (fun _ -> Array.make (max 1 buckets) 0);
    sums = Array.make slots 0.0;
    mins = Array.make slots infinity;
    maxs = Array.make slots neg_infinity;
    totals = Array.make slots 0;
    countdown = Array.make slots 1;
    gc_hits = Array.make slots 0 }

let create ?(sample = 1) ?(lo = default_lo) ?(buckets = default_buckets) name =
  Mutex.lock registry_lock;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
      let h = make ~sample ~lo ~buckets name in
      Hashtbl.add registry name h;
      h
  in
  Mutex.unlock registry_lock;
  h

(* Bucket i holds v with lo * r^i <= v < lo * r^(i+1) (i >= 1); bucket 0
   additionally absorbs everything <= lo.  log_r(x) = 2 * log2(x) for
   r = sqrt 2. *)
let bucket_of t v =
  if not (v > t.lo) then 0
  else begin
    let i = int_of_float (2.0 *. Float.log2 (v /. t.lo)) in
    if i < 0 then 0 else if i >= t.n_buckets then t.n_buckets - 1 else i
  end

let observe t v =
  let s = Control.slot () in
  let b = bucket_of t v in
  t.counts.(s).(b) <- t.counts.(s).(b) + 1;
  t.totals.(s) <- t.totals.(s) + 1;
  t.sums.(s) <- t.sums.(s) +. v;
  if v < t.mins.(s) then t.mins.(s) <- v;
  if v > t.maxs.(s) then t.maxs.(s) <- v

(* GC-coincidence accounting: the p99/max outliers of a nanosecond-scale
   histogram are only diagnosable if we know whether the slow samples
   ran concurrently with collector work.  Callers bracket the timed
   region with {!major_collections} and report the delta here. *)
let major_collections () = (Gc.quick_stat ()).Gc.major_collections

let observe_gc t v gc_delta =
  observe t v;
  if gc_delta > 0 then begin
    let s = Control.slot () in
    t.gc_hits.(s) <- t.gc_hits.(s) + 1
  end

let tick t =
  Control.is_enabled ()
  && begin
    let s = Control.slot () in
    let c = t.countdown.(s) in
    if c <= 1 then begin
      t.countdown.(s) <- t.sample;
      true
    end
    else begin
      t.countdown.(s) <- c - 1;
      false
    end
  end

let time t f =
  if tick t then begin
    let t0 = Clock.now () in
    match f () with
    | v ->
      observe t (Clock.now () -. t0);
      v
    | exception e ->
      observe t (Clock.now () -. t0);
      raise e
  end
  else f ()

type snapshot = {
  name : string;
  sample : int;
  lo : float;
  count : int;
  sum : float;
  min_s : float;
  max_s : float;
  gc_coincident : int;
  buckets : int array;
}

let snapshot t =
  let buckets = Array.make t.n_buckets 0 in
  let count = ref 0 in
  let sum = ref 0.0 in
  let min_s = ref infinity in
  let max_s = ref neg_infinity in
  let gc_hits = ref 0 in
  for s = 0 to Control.max_slots - 1 do
    let row = t.counts.(s) in
    for b = 0 to t.n_buckets - 1 do
      buckets.(b) <- buckets.(b) + row.(b)
    done;
    count := !count + t.totals.(s);
    sum := !sum +. t.sums.(s);
    gc_hits := !gc_hits + t.gc_hits.(s);
    if t.mins.(s) < !min_s then min_s := t.mins.(s);
    if t.maxs.(s) > !max_s then max_s := t.maxs.(s)
  done;
  { name = t.h_name;
    sample = t.sample;
    lo = t.lo;
    count = !count;
    sum = !sum;
    min_s = !min_s;
    max_s = !max_s;
    gc_coincident = !gc_hits;
    buckets }

let bucket_bounds (s : snapshot) i =
  let lower = if i = 0 then 0.0 else s.lo *. (ratio ** float_of_int i) in
  let upper = s.lo *. (ratio ** float_of_int (i + 1)) in
  (lower, upper)

let merge (a : snapshot) (b : snapshot) =
  if a.lo <> b.lo || Array.length a.buckets <> Array.length b.buckets then
    invalid_arg "Histogram.merge: bucket layouts differ";
  { name = a.name;
    sample = a.sample;
    lo = a.lo;
    count = a.count + b.count;
    sum = a.sum +. b.sum;
    min_s = Float.min a.min_s b.min_s;
    max_s = Float.max a.max_s b.max_s;
    gc_coincident = a.gc_coincident + b.gc_coincident;
    buckets = Array.mapi (fun i c -> c + b.buckets.(i)) a.buckets }

(* [diff newer older]: the observations recorded between two snapshots
   of the SAME histogram.  Counts, bucket counts and gc hits subtract
   exactly (ints); the sum subtracts in one operation, so a window whose
   older endpoint is the zero baseline reproduces the cumulative sum
   bit-for-bit.  The true min/max of the in-between observations are not
   recoverable from cumulative extrema, so they are re-estimated from
   the surviving buckets' bounds — [percentile] only uses them as
   clamps, and a bucket bound is always a valid clamp for the bucket's
   contents. *)
let diff (newer : snapshot) (older : snapshot) =
  if newer.lo <> older.lo
     || Array.length newer.buckets <> Array.length older.buckets
  then invalid_arg "Histogram.diff: bucket layouts differ";
  let buckets =
    Array.mapi (fun i c -> max 0 (c - older.buckets.(i))) newer.buckets
  in
  let count = max 0 (newer.count - older.count) in
  let lowest = ref (-1) and highest = ref (-1) in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if !lowest < 0 then lowest := i;
        highest := i
      end)
    buckets;
  let min_s, max_s =
    if count = 0 || !lowest < 0 then (infinity, neg_infinity)
    else begin
      let lower0, _ = bucket_bounds newer !lowest in
      let _, upper1 = bucket_bounds newer !highest in
      (* The cumulative extrema bound every sample ever seen, including
         the window's, so they tighten the bucket-edge estimate where
         they are sharper. *)
      (Float.max lower0 newer.min_s, Float.min upper1 newer.max_s)
    end
  in
  { name = newer.name;
    sample = newer.sample;
    lo = newer.lo;
    count;
    sum = newer.sum -. older.sum;
    min_s;
    max_s;
    gc_coincident = max 0 (newer.gc_coincident - older.gc_coincident);
    buckets }

let percentile (s : snapshot) p =
  if s.count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let target = p *. float_of_int s.count in
    let n = Array.length s.buckets in
    let result = ref s.max_s in
    let cum = ref 0.0 in
    (try
       for i = 0 to n - 1 do
         let c = float_of_int s.buckets.(i) in
         if c > 0.0 && !cum +. c >= target then begin
           let frac = (target -. !cum) /. c in
           let lower, upper = bucket_bounds s i in
           result := lower +. (frac *. (upper -. lower));
           raise Exit
         end;
         cum := !cum +. c
       done
     with Exit -> ());
    Float.max s.min_s (Float.min s.max_s !result)
  end

let mean (s : snapshot) =
  if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

let snapshots () =
  Mutex.lock registry_lock;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a : snapshot) b -> compare a.name b.name)
    (List.map snapshot hs)

let reset t =
  for s = 0 to Control.max_slots - 1 do
    Array.fill t.counts.(s) 0 t.n_buckets 0;
    t.sums.(s) <- 0.0;
    t.mins.(s) <- infinity;
    t.maxs.(s) <- neg_infinity;
    t.totals.(s) <- 0;
    t.countdown.(s) <- 1;
    t.gc_hits.(s) <- 0
  done

let reset_all () =
  Mutex.lock registry_lock;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.iter reset hs

let pp_s v =
  if v >= 1.0 then Printf.sprintf "%.2f s" v
  else if v >= 1e-3 then Printf.sprintf "%.2f ms" (v *. 1e3)
  else if v >= 1e-6 then Printf.sprintf "%.2f us" (v *. 1e6)
  else Printf.sprintf "%.0f ns" (v *. 1e9)

let print_report ?(channel = stdout) () =
  let snaps = List.filter (fun s -> s.count > 0) (snapshots ()) in
  if snaps <> [] then begin
    Printf.fprintf channel "%-28s %9s %10s %10s %10s %10s %10s %7s\n"
      "histogram" "samples" "p50" "p90" "p99" "max" "mean" "gc-hit";
    List.iter
      (fun s ->
        Printf.fprintf channel "%-28s %9d %10s %10s %10s %10s %10s %7d\n"
          s.name s.count
          (pp_s (percentile s 0.50))
          (pp_s (percentile s 0.90))
          (pp_s (percentile s 0.99))
          (pp_s s.max_s) (pp_s (mean s)) s.gc_coincident)
      snaps
  end
