(* Windowed views over cumulative histograms and counters.

   A long-running daemon's lifetime histogram is dominated by cold
   start: after an hour of warm traffic the cumulative p99 still
   remembers the first 160 ms request.  Each window keeps a ring of
   cumulative snapshots taken at rotation points (default every second,
   300 retained = 5 minutes of history); the trailing window over the
   last k intervals is then one [Histogram.diff] between the live
   snapshot and the entry k rotations ago.  Storing cumulative
   snapshots instead of per-interval deltas makes the arithmetic exact:
   counts and bucket counts subtract as ints, and the full-history
   window (older endpoint = the zero baseline) reproduces the
   cumulative sum bit-for-bit — the invariant the QCheck property in
   test_obs pins. *)

let default_period = 1.0
let default_intervals = 300

let standard_windows = [ ("10s", 10); ("60s", 60); ("300s", 300) ]

type t = {
  w_name : string;
  hist : Histogram.t;
  w_intervals : int;
  ring : Histogram.snapshot array;  (* cumulative at each rotation *)
  mutable head : int;               (* next write position *)
  mutable filled : int;
  baseline : Histogram.snapshot;    (* cumulative at window creation *)
}

type tracked = {
  t_name : string;
  source : unit -> int;
  t_base : int;
  values : int array;               (* source value at each rotation *)
  mutable t_head : int;
  mutable t_filled : int;
}

let lock = Mutex.create ()
let windows : (string, t) Hashtbl.t = Hashtbl.create 8
let tracked_counters : (string, tracked) Hashtbl.t = Hashtbl.create 8
let period = Atomic.make default_period
let last_rotation = Atomic.make 0.0

let set_period p = Atomic.set period (Float.max 1e-3 p)
let current_period () = Atomic.get period

let create ?(intervals = default_intervals) hist =
  let name = (Histogram.snapshot hist).Histogram.name in
  Mutex.lock lock;
  let w =
    match Hashtbl.find_opt windows name with
    | Some w -> w
    | None ->
      let baseline = Histogram.snapshot hist in
      let w =
        { w_name = name;
          hist;
          w_intervals = max 1 intervals;
          ring = Array.make (max 1 intervals) baseline;
          head = 0;
          filled = 0;
          baseline }
      in
      Hashtbl.add windows name w;
      w
  in
  Mutex.unlock lock;
  w

let track name source =
  Mutex.lock lock;
  (if not (Hashtbl.mem tracked_counters name) then
     let t =
       { t_name = name;
         source;
         t_base = source ();
         values = Array.make default_intervals 0;
         t_head = 0;
         t_filled = 0 }
     in
     Hashtbl.add tracked_counters name t);
  Mutex.unlock lock

(* Callers hold [lock]. *)
let rotate_locked w =
  w.ring.(w.head) <- Histogram.snapshot w.hist;
  w.head <- (w.head + 1) mod w.w_intervals;
  if w.filled < w.w_intervals then w.filled <- w.filled + 1

let rotate_tracked_locked t =
  t.values.(t.t_head) <- t.source ();
  t.t_head <- (t.t_head + 1) mod Array.length t.values;
  if t.t_filled < Array.length t.values then t.t_filled <- t.t_filled + 1

let rotate w =
  Mutex.lock lock;
  rotate_locked w;
  Mutex.unlock lock

let rotate_all () =
  Mutex.lock lock;
  Hashtbl.iter (fun _ w -> rotate_locked w) windows;
  Hashtbl.iter (fun _ t -> rotate_tracked_locked t) tracked_counters;
  Mutex.unlock lock

(* The serve loop calls this every pump iteration; it costs one clock
   compare until a period boundary passes.  A loop stalled across
   several periods rotates once per elapsed period (capped at the ring
   size) so window spans stay ~[k * period] even after a long request
   monopolized the loop — the stalled intervals just hold duplicate
   cumulative snapshots (empty deltas). *)
let maybe_rotate ?now () =
  let now = match now with Some t -> t | None -> Clock.now () in
  let p = Atomic.get period in
  let last = Atomic.get last_rotation in
  if last = 0.0 then Atomic.set last_rotation now
  else if now -. last >= p then begin
    let missed = int_of_float ((now -. last) /. p) in
    let n = min missed default_intervals in
    for _ = 1 to n do
      rotate_all ()
    done;
    Atomic.set last_rotation (last +. (float_of_int missed *. p))
  end

(* The cumulative snapshot [k] rotations ago (0 = the most recent
   rotation point); the creation-time baseline once [k] reaches past
   the retained history. *)
let entry_ago w k =
  if w.filled = 0 || k >= w.filled then w.baseline
  else begin
    let idx = (w.head - 1 - k + (2 * w.w_intervals)) mod w.w_intervals in
    w.ring.(idx)
  end

let merged w ~intervals =
  Mutex.lock lock;
  let older = entry_ago w (max 0 (intervals - 1)) in
  Mutex.unlock lock;
  Histogram.diff (Histogram.snapshot w.hist) older

let cumulative w = Histogram.snapshot w.hist

let retained w =
  Mutex.lock lock;
  let n = w.filled in
  Mutex.unlock lock;
  n

let intervals w = w.w_intervals

let name w = w.w_name

let find name =
  Mutex.lock lock;
  let w = Hashtbl.find_opt windows name in
  Mutex.unlock lock;
  w

let report () =
  Mutex.lock lock;
  let ws = Hashtbl.fold (fun _ w acc -> w :: acc) windows [] in
  Mutex.unlock lock;
  List.sort
    (fun (a, _, _) (b, _, _) -> compare a b)
    (List.map
       (fun w ->
         ( w.w_name,
           cumulative w,
           List.map
             (fun (label, k) -> (label, merged w ~intervals:k))
             standard_windows ))
       ws)

let counter_ago_locked t k =
  if t.t_filled = 0 || k >= t.t_filled then t.t_base
  else begin
    let n = Array.length t.values in
    let idx = (t.t_head - 1 - k + (2 * n)) mod n in
    t.values.(idx)
  end

let counter_report () =
  Mutex.lock lock;
  let ts = Hashtbl.fold (fun _ t acc -> t :: acc) tracked_counters [] in
  let rows =
    List.map
      (fun t ->
        let current = t.source () in
        ( t.t_name,
          current,
          List.map
            (fun (label, k) ->
              (label, max 0 (current - counter_ago_locked t (k - 1))))
            standard_windows ))
      ts
  in
  Mutex.unlock lock;
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) rows

let reset_all () =
  Mutex.lock lock;
  Hashtbl.reset windows;
  Hashtbl.reset tracked_counters;
  Mutex.unlock lock;
  Atomic.set last_rotation 0.0
