(** The flight recorder: bounded always-on capture of the recent past,
    dumped on demand as a Perfetto-loadable trace file.

    While armed, two rings run continuously with fixed memory cost —
    {!Trace}'s per-domain span ring and a ring of recent warn+ log
    lines (fed via {!Log.set_sink}, independent of the console level).
    {!dump} freezes both into one Chrome trace-event file, so a
    deadline miss, internal error, slow request or SIGQUIT in a
    long-running daemon yields the span timeline and warnings leading
    up to it without an explicit [--trace] run.  Span and log events
    carry the request trace id they were recorded under
    ([args.trace_id] in the exported JSON). *)

type log_entry = {
  le_ts : float;  (** absolute clock at emit *)
  le_slot : int;
  le_level : Log.level;
  le_section : string;
  le_text : string;
  le_ctx : string;  (** trace id at emit; [""] = none *)
}

val arm : ?capacity:int -> ?log_capacity:int -> ?dir:string -> unit -> unit
(** Arm both rings ([capacity] span events per domain, default 4096;
    [log_capacity] warn+ lines, default 256) and set the dump
    directory (default: the system temp dir). *)

val disarm : unit -> unit

val armed : unit -> bool

val set_dir : string -> unit
val dir : unit -> string

val set_max_dumps : int -> unit
(** Cap on files {!dump} will write over the process lifetime (default
    64) — a crash loop must not fill the disk. *)

val dumps_written : unit -> int

val recent_logs : unit -> log_entry list
(** The retained warn+ lines, oldest first. *)

val dump : reason:string -> ?trace_id:string -> unit -> string option
(** Write the retained spans and log lines (plus a ["flight.dump:
    <reason>"] marker carrying [trace_id]) as one Chrome trace file in
    {!dir}; returns the path, or [None] when the dump cap is reached or
    the write fails.  Never raises.

    The filename is
    [flight-<pid>-<seq>-<reason>[-<trace_id>].json]: the monotonic
    per-process sequence makes two dumps in the same second distinct,
    and the sanitized trace id (when given) links the file to the
    request that triggered it. *)
