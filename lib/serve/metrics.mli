(** Prometheus text exposition (format 0.0.4) of the serving telemetry.

    {!render} walks the same registries the [stats] endpoint reads and
    prints them in the exposition grammar a stock Prometheus scrape
    parses — all names under the [sram_opt_] prefix:

    - every [serve.*] {!Runtime.Telemetry} counter as a
      [..._total] counter;
    - every {!Obs.Window}-tracked SLO counter as
      [sram_opt_serve_events_window{event=...,window=...}] gauges
      (increments within the trailing 10s/60s/300s windows);
    - every registered latency window as a cumulative summary
      ([..._seconds{quantile=...}], [_sum], [_count]) plus windowed
      quantile gauges ([..._seconds_window{window=...,quantile=...}]);
    - memo cache hits/misses/hit-rate/occupancy per cache;
    - GC allocation totals and heap size;
    - an [sram_opt_build_info] marker.

    The same string is served as the [metrics] frame endpoint's payload
    and verbatim over the plain [GET /metrics] HTTP shim (see
    DESIGN.md §9). *)

val render : unit -> string

val sanitize : string -> string
(** Dotted internal names as Prometheus metric-name fragments
    (["serve.handle.optimize"] becomes ["serve_handle_optimize"]). *)
