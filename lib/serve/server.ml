module P = Protocol
module J = Persist.Json

type config = {
  socket_path : string option;
  tcp : (string * int) option;
  max_queue : int;
  default_deadline_ms : float option;
  max_frame : int;
  install_signals : bool;
  observability : bool;
  flight_dir : string option;
  slow_ms : float option;
}

let default_config =
  { socket_path = None;
    tcp = None;
    max_queue = 64;
    default_deadline_ms = None;
    max_frame = Frame.max_frame_default;
    install_signals = true;
    observability = true;
    flight_dir = None;
    slow_ms = None }

type summary = {
  connections : int;
  served : int;
  errors : int;
}

(* A connection's first bytes decide its dialect: frame streams open
   with a u32-LE length (always far below the 4 MiB cap), while an
   ASCII "GET " read as a length is ~540 MB — so the shim can serve
   plain-HTTP monitoring scrapes on the same listener without a
   reserved port. *)
type mode = Sniff | Frames | Http

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  peer : string;
  mutable mode : mode;
  mutable alive : bool;
}

type pending = {
  conn : conn;
  req : P.request;
  tid : string option;  (* the trace id this request runs under *)
  t_admit : float;
}

(* ----- telemetry ----- *)

let now = Runtime.Telemetry.now
let count name = Runtime.Telemetry.incr (Runtime.Telemetry.counter name)
let h_queue_wait = lazy (Obs.Histogram.create "serve.queue_wait")
let h_e2e = lazy (Obs.Histogram.create "serve.e2e")
let h_handle name = Obs.Histogram.create ("serve.handle." ^ name)

let slo_counters =
  [ "serve.requests"; "serve.responses"; "serve.errors";
    "serve.deadline_expired"; "serve.rejected_busy"; "serve.bad_request";
    "serve.bad_frame" ]

(* Register the windowed views and arm the flight recorder.  Windows
   are created up front for every endpoint histogram so the stats /
   metrics output has stable shape from the first scrape. *)
let init_observability config =
  Obs.Flight.arm ?dir:config.flight_dir ();
  (* Search journal on for the server's lifetime: its counters feed the
     Prometheus exposition.  Observation only — winners stay
     bit-identical to a journal-off run. *)
  Obs.Search.arm ();
  ignore (Obs.Window.create (Lazy.force h_queue_wait));
  ignore (Obs.Window.create (Lazy.force h_e2e));
  List.iter
    (fun ep -> ignore (Obs.Window.create (h_handle ep)))
    [ "ping"; "optimize"; "explain"; "stats"; "metrics"; "shutdown" ];
  List.iter
    (fun c ->
      let counter = Runtime.Telemetry.counter c in
      Obs.Window.track c (fun () -> Runtime.Telemetry.value counter))
    slo_counters

(* ----- request evaluation ----- *)

let error code message = Error (code, message)

let optimize_payload (q : P.query) ~deadline =
  let space =
    if q.P.space = P.no_override then None
    else Some (P.space_of_override q.P.space)
  in
  let config =
    { Sram_edp.Framework.flavor = q.P.flavor; method_ = q.P.method_ }
  in
  let t0 = now () in
  match
    Sram_edp.Framework.optimize ?space ~objective:q.P.objective
      ~accounting:q.P.accounting ~w:q.P.w ?deadline ~strategy:q.P.strategy
      ~rng_seed:q.P.rng_seed ~capacity_bits:q.P.capacity_bits ~config ()
  with
  | o ->
    let result = o.Sram_edp.Framework.result in
    Ok
      (J.Obj
         [ ("capacity_bits", J.Int q.P.capacity_bits);
           ("config", J.String (Sram_edp.Framework.config_name config));
           ("strategy", J.String (Opt.Strategy.name q.P.strategy));
           ("checksum", J.String (Opt.Exhaustive.checksum [ result ]));
           ("eval_s", J.Float (now () -. t0));
           ("result", Opt.Exhaustive.result_to_json result) ])
  | exception Opt.Exhaustive.Deadline_exceeded ->
    count "serve.deadline_expired";
    error P.Deadline "deadline passed during the search"
  | exception Invalid_argument msg -> error P.Bad_request msg

(* Same memoized entry as optimize, so explaining a design the server
   already answered costs a cache hit plus a handful of evaluations;
   the attribution is checked to refold bit-exactly before the payload
   leaves the process. *)
let explain_payload (q : P.query) ~deadline =
  let space =
    if q.P.space = P.no_override then None
    else Some (P.space_of_override q.P.space)
  in
  let config =
    { Sram_edp.Framework.flavor = q.P.flavor; method_ = q.P.method_ }
  in
  let t0 = now () in
  match
    Sram_edp.Framework.optimize ?space ~objective:q.P.objective
      ~accounting:q.P.accounting ~w:q.P.w ?deadline ~strategy:q.P.strategy
      ~rng_seed:q.P.rng_seed ~capacity_bits:q.P.capacity_bits ~config ()
  with
  | o ->
    let result = o.Sram_edp.Framework.result in
    let winner = result.Opt.Exhaustive.best in
    let env =
      Array_model.Array_eval.ctx_env
        (Sram_edp.Framework.stage_ctx_for ~flavor:q.P.flavor
           ~accounting:q.P.accounting)
    in
    let at =
      Array_model.Array_eval.attribute env winner.Opt.Exhaustive.geometry
        winner.Opt.Exhaustive.assist
    in
    if not (Array_model.Array_eval.attribution_consistent at) then
      error P.Internal
        "attribution terms do not refold to evaluate's totals bit-for-bit"
    else begin
      let sens =
        Opt.Explain.sensitivity ?space ~objective:q.P.objective ~env
          ~pins:result.Opt.Exhaustive.pins ~winner ()
      in
      (* [Json_out] and the wire use different JSON trees; round-trip
         through the compact string, as the stats endpoint does. *)
      let jo =
        Sram_edp.Json_out.Obj
          [ ("attribution", Sram_edp.Json_out.of_attribution at);
            ("sensitivity", Sram_edp.Json_out.of_sensitivity sens) ]
      in
      match J.of_string (Sram_edp.Json_out.to_string jo) with
      | Ok (J.Obj fields) ->
        Ok
          (J.Obj
             ([ ("capacity_bits", J.Int q.P.capacity_bits);
                ("config", J.String (Sram_edp.Framework.config_name config));
                ("checksum", J.String (Opt.Exhaustive.checksum [ result ]));
                ("eval_s", J.Float (now () -. t0)) ]
             @ fields))
      | Ok _ -> error P.Internal "explain serialization: unexpected shape"
      | Error e -> error P.Internal ("explain serialization: " ^ e)
    end
  | exception Opt.Exhaustive.Deadline_exceeded ->
    count "serve.deadline_expired";
    error P.Deadline "deadline passed during the search"
  | exception Invalid_argument msg -> error P.Bad_request msg

let stats_payload () =
  (* [Json_out] and the wire use different JSON trees (emit-only vs
     emit+parse); round-tripping through the compact string unifies
     them at a cost of ~µs per stats call. *)
  match J.of_string (Sram_edp.Json_out.to_string (Sram_edp.Json_out.runtime_stats_json ())) with
  | Ok j -> Ok j
  | Error e -> error P.Internal ("stats serialization: " ^ e)

let handle ~default_deadline_ms ~draining (p : pending) =
  let wait = now () -. p.t_admit in
  Obs.Histogram.observe (Lazy.force h_queue_wait) wait;
  count ("serve.req." ^ P.endpoint_name p.req.P.endpoint);
  let deadline =
    match
      (p.req.P.deadline_ms, default_deadline_ms)
    with
    | Some ms, _ | None, Some ms -> Some (p.t_admit +. (ms /. 1000.0))
    | None, None -> None
  in
  let expired = match deadline with Some d -> now () > d | None -> false in
  let evaluate () =
    if expired then begin
      count "serve.deadline_expired";
      error P.Deadline "deadline passed while queued"
    end
    else
      let h = h_handle (P.endpoint_name p.req.P.endpoint) in
      Obs.Histogram.time h @@ fun () ->
      match p.req.P.endpoint with
      | P.Ping ->
        Ok
          (J.Obj
             [ ("pid", J.Int (Unix.getpid ()));
               ("git_commit", J.String (Persist.Record_log.git_commit ())) ])
      | P.Stats -> stats_payload ()
      | P.Metrics -> Ok (J.String (Metrics.render ()))
      | P.Shutdown ->
        draining := true;
        Ok (J.Obj [ ("draining", J.Bool true) ])
      | P.Optimize q -> (
        try optimize_payload q ~deadline
        with e ->
          error P.Internal (Printexc.to_string e))
      | P.Explain q -> (
        try explain_payload q ~deadline
        with e ->
          error P.Internal (Printexc.to_string e))
  in
  (* Everything recorded while evaluating — spans from the search
     layers, warn+ log lines — carries this request's trace id, so a
     flight dump or --trace timeline attributes work to requests.
     Span names are static strings: the request path must not allocate
     for observability beyond the event records themselves. *)
  let body =
    match p.tid with
    | None -> evaluate ()
    | Some id ->
      let span =
        match p.req.P.endpoint with
        | P.Ping -> "serve.request.ping"
        | P.Stats -> "serve.request.stats"
        | P.Metrics -> "serve.request.metrics"
        | P.Shutdown -> "serve.request.shutdown"
        | P.Optimize _ -> "serve.request.optimize"
        | P.Explain _ -> "serve.request.explain"
      in
      Obs.Trace.with_context id (fun () ->
          Obs.Trace.with_span span evaluate)
  in
  { P.rid = p.req.P.id; rtrace_id = p.tid; body }

(* ----- socket plumbing ----- *)

let write_string fd s =
  let pos = ref 0 and remaining = ref (String.length s) in
  while !remaining > 0 do
    let n = Unix.write_substring fd s !pos !remaining in
    pos := !pos + n;
    remaining := !remaining - n
  done

(* Frames are small (requests ~200 B, responses a few KB), so writes
   briefly flip the descriptor back to blocking rather than running a
   writable-select state machine; a dead peer surfaces as EPIPE, which
   just drops the connection. *)
let send_raw conn s =
  if conn.alive then begin
    match
      Unix.clear_nonblock conn.fd;
      Fun.protect
        ~finally:(fun () -> try Unix.set_nonblock conn.fd with _ -> ())
        (fun () -> s conn.fd)
    with
    | () -> ()
    | exception Unix.Unix_error _ ->
      Obs.Log.info ~section:"serve" "dropping %s: peer went away mid-response"
        conn.peer;
      conn.alive <- false
  end

let send conn response =
  let payload = J.to_string (P.response_to_json response) in
  send_raw conn (fun fd -> Frame.write fd payload)

let close_conn conn =
  if conn.alive then conn.alive <- false;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ----- the HTTP shim ----- *)

let http_response status content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let contains_blank_line s =
  let n = String.length s in
  let rec scan i =
    if i + 1 >= n then false
    else if s.[i] = '\n' && (s.[i + 1] = '\n' || (s.[i + 1] = '\r' && i + 2 < n && s.[i + 2] = '\n'))
    then true
    else scan (i + 1)
  in
  scan 0

let http_request_path s =
  match String.index_opt s '\n' with
  | None -> None
  | Some eol ->
    let line = String.trim (String.sub s 0 eol) in
    (match String.split_on_char ' ' line with
     | _method :: path :: _ -> Some path
     | _ -> None)

(* One scrape per connection: answer the GET and close ("Connection:
   close"), which is all a Prometheus scrape needs. *)
let handle_http conn =
  let s = Frame.peek conn.dec in
  if contains_blank_line s then begin
    count "serve.http_scrapes";
    let resp =
      match http_request_path s with
      | Some "/metrics" ->
        http_response "200 OK"
          "text/plain; version=0.0.4; charset=utf-8" (Metrics.render ())
      | Some "/healthz" -> http_response "200 OK" "text/plain" "ok\n"
      | _ ->
        http_response "404 Not Found" "text/plain"
          "not found (try /metrics)\n"
    in
    send_raw conn (fun fd -> write_string fd resp);
    close_conn conn
  end
  else if String.length s > 8192 then
    (* A request head that long is not a monitoring scrape. *)
    close_conn conn

let listen_unix path =
  (match Unix.stat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
   | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let listen_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "?"

(* ----- the serve loop ----- *)

let run config =
  if config.socket_path = None && config.tcp = None then
    invalid_arg "Serve.Server.run: no listener configured";
  Obs.Control.set_enabled true;
  if config.observability then init_observability config;
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let draining = ref false in
  let dump_requested = ref false in
  let old_handlers =
    if not config.install_signals then []
    else
      (( Sys.sigquit,
         Sys.signal Sys.sigquit
           (Sys.Signal_handle (fun _ -> dump_requested := true)) )
      :: List.map
           (fun s ->
             ( s,
               Sys.signal s
                 (Sys.Signal_handle
                    (fun _ ->
                      (* First signal drains; an operator mashing Ctrl-C
                         means now. *)
                      if !draining then Stdlib.exit 130 else draining := true)) ))
           [ Sys.sigint; Sys.sigterm ])
  in
  let listeners =
    (match config.socket_path with
     | Some path -> [ listen_unix path ]
     | None -> [])
    @ (match config.tcp with
       | Some (host, port) -> [ listen_tcp host port ]
       | None -> [])
  in
  let conns = ref [] in
  let queue : pending Queue.t = Queue.create () in
  let connections = ref 0 and served = ref 0 and errors = ref 0 in
  let tid_seq = ref 0 in
  let tid_prefix = "t-" ^ string_of_int (Unix.getpid ()) ^ "-" in
  let gen_tid () =
    incr tid_seq;
    tid_prefix ^ string_of_int !tid_seq
  in
  let read_buf = Bytes.create 65536 in
  let respond conn (r : P.response) =
    (match r.P.body with
     | Ok _ -> incr served
     | Error _ -> incr errors; count "serve.errors");
    count "serve.responses";
    send conn r
  in
  let flight_dump ~reason tid =
    if config.observability then
      match Obs.Flight.dump ~reason ?trace_id:tid () with
      | Some path ->
        Obs.Log.info ~section:"serve" "flight dump (%s): %s" reason path
      | None -> ()
  in
  let admit conn (req : P.request) =
    count "serve.requests";
    (* Every response to a parsed request carries a trace id: the
       client's when supplied, a server-generated one otherwise. *)
    let tid =
      match req.P.trace_id with
      | Some _ as t -> t
      | None -> if config.observability then Some (gen_tid ()) else None
    in
    if !draining then
      respond conn
        { P.rid = req.P.id;
          rtrace_id = tid;
          body = error P.Shutting_down "server is draining" }
    else if Queue.length queue >= config.max_queue then begin
      count "serve.rejected_busy";
      respond conn
        { P.rid = req.P.id;
          rtrace_id = tid;
          body =
            error P.Busy
              (Printf.sprintf "admission queue full (%d pending)"
                 config.max_queue) }
    end
    else Queue.add { conn; req; tid; t_admit = now () } queue
  in
  (* Parse every complete frame buffered on the connection.  A framing
     error (oversized, checksum) means the byte stream can no longer be
     trusted: answer once and drop the connection.  A well-framed but
     malformed request only fails that request. *)
  let drain_frames conn =
    let continue = ref true in
    while !continue && conn.alive do
      match Frame.next conn.dec with
      | Ok None -> continue := false
      | Ok (Some payload) -> (
        match Result.bind (J.of_string payload) P.request_of_json with
        | Ok req -> admit conn req
        | Error e ->
          count "serve.bad_request";
          respond conn
            { P.rid = 0; rtrace_id = None; body = error P.Bad_request e }
        | exception _ ->
          count "serve.bad_request";
          respond conn
            { P.rid = 0;
              rtrace_id = None;
              body = error P.Bad_request "unparseable request" })
      | Error e ->
        count "serve.bad_frame";
        respond conn
          { P.rid = 0;
            rtrace_id = None;
            body = error P.Bad_request (Frame.error_to_string e) };
        close_conn conn;
        continue := false
    done
  in
  let dispatch conn =
    (match conn.mode with
     | Sniff ->
       let s = Frame.peek conn.dec in
       if String.length s >= 4 then
         conn.mode <- (if String.sub s 0 4 = "GET " then Http else Frames)
     | Frames | Http -> ());
    match conn.mode with
    | Sniff -> ()
    | Frames -> drain_frames conn
    | Http -> handle_http conn
  in
  let pump_conn conn =
    let continue = ref true in
    while !continue && conn.alive do
      match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
      | 0 ->
        if conn.mode <> Http && Frame.buffered conn.dec > 0 then
          Obs.Log.info ~section:"serve"
            "%s closed mid-frame (%d bytes undelivered)" conn.peer
            (Frame.buffered conn.dec);
        close_conn conn;
        continue := false
      | n ->
        Frame.feed conn.dec read_buf n;
        if n < Bytes.length read_buf then continue := false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
        close_conn conn;
        continue := false
    done;
    if conn.alive then dispatch conn
  in
  let accept_all listener =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true listener with
      | fd, _ ->
        if !draining then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Unix.set_nonblock fd;
          incr connections;
          count "serve.connections";
          conns :=
            { fd;
              dec = Frame.decoder ~max_len:config.max_frame ();
              peer = peer_name fd;
              mode = Sniff;
              alive = true }
            :: !conns
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let pump timeout =
    conns := List.filter (fun c -> c.alive) !conns;
    let watched = listeners @ List.map (fun c -> c.fd) !conns in
    match Unix.select watched [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if List.mem fd listeners then accept_all fd
          else
            match List.find_opt (fun c -> c.fd = fd) !conns with
            | Some conn -> pump_conn conn
            | None -> ())
        ready
  in
  Obs.Log.info ~section:"serve" "serving (queue %d, default deadline %s)"
    config.max_queue
    (match config.default_deadline_ms with
     | Some ms -> Printf.sprintf "%.0f ms" ms
     | None -> "none");
  while not (!draining && Queue.is_empty queue) do
    pump (if Queue.is_empty queue then 0.25 else 0.0);
    if config.observability then Obs.Window.maybe_rotate ();
    if !dump_requested then begin
      dump_requested := false;
      flight_dump ~reason:"sigquit" None
    end;
    match Queue.take_opt queue with
    | None -> ()
    | Some p ->
      let r =
        handle ~default_deadline_ms:config.default_deadline_ms ~draining p
      in
      respond p.conn r;
      let e2e = now () -. p.t_admit in
      Obs.Histogram.observe (Lazy.force h_e2e) e2e;
      (* Postmortems: a deadline miss or internal error dumps the
         flight ring; a response over the slow threshold dumps its span
         tree and logs a warning. *)
      (match r.P.body with
       | Error (P.Deadline, _) -> flight_dump ~reason:"deadline" p.tid
       | Error (P.Internal, _) -> flight_dump ~reason:"internal" p.tid
       | _ -> ());
      (match config.slow_ms with
       | Some ms when e2e *. 1000.0 > ms ->
         Obs.Log.warn ~section:"serve"
           "slow request %s (%s): %.1f ms > %.1f ms"
           (match p.tid with Some id -> id | None -> "-")
           (P.endpoint_name p.req.P.endpoint)
           (e2e *. 1000.0) ms;
         flight_dump ~reason:"slow" p.tid
       | _ -> ())
  done;
  List.iter close_conn !conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  (match config.socket_path with
   | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  List.iter (fun (s, h) -> Sys.set_signal s h) old_handlers;
  Sys.set_signal Sys.sigpipe old_pipe;
  Obs.Log.info ~section:"serve" "drained: %d connections, %d served, %d errors"
    !connections !served !errors;
  { connections = !connections; served = !served; errors = !errors }
