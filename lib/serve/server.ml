module P = Protocol
module J = Persist.Json

type config = {
  socket_path : string option;
  tcp : (string * int) option;
  max_queue : int;
  default_deadline_ms : float option;
  max_frame : int;
  install_signals : bool;
}

let default_config =
  { socket_path = None;
    tcp = None;
    max_queue = 64;
    default_deadline_ms = None;
    max_frame = Frame.max_frame_default;
    install_signals = true }

type summary = {
  connections : int;
  served : int;
  errors : int;
}

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  peer : string;
  mutable alive : bool;
}

type pending = {
  conn : conn;
  req : P.request;
  t_admit : float;
}

(* ----- telemetry ----- *)

let now = Runtime.Telemetry.now
let count name = Runtime.Telemetry.incr (Runtime.Telemetry.counter name)
let h_queue_wait = lazy (Obs.Histogram.create "serve.queue_wait")
let h_e2e = lazy (Obs.Histogram.create "serve.e2e")
let h_handle name = Obs.Histogram.create ("serve.handle." ^ name)

(* ----- request evaluation ----- *)

let error code message = Error (code, message)

let optimize_payload (q : P.query) ~deadline =
  let space =
    if q.P.space = P.no_override then None
    else Some (P.space_of_override q.P.space)
  in
  let config =
    { Sram_edp.Framework.flavor = q.P.flavor; method_ = q.P.method_ }
  in
  let t0 = now () in
  match
    Sram_edp.Framework.optimize ?space ~objective:q.P.objective
      ~accounting:q.P.accounting ~w:q.P.w ?deadline
      ~capacity_bits:q.P.capacity_bits ~config ()
  with
  | o ->
    let result = o.Sram_edp.Framework.result in
    Ok
      (J.Obj
         [ ("capacity_bits", J.Int q.P.capacity_bits);
           ("config", J.String (Sram_edp.Framework.config_name config));
           ("checksum", J.String (Opt.Exhaustive.checksum [ result ]));
           ("eval_s", J.Float (now () -. t0));
           ("result", Opt.Exhaustive.result_to_json result) ])
  | exception Opt.Exhaustive.Deadline_exceeded ->
    count "serve.deadline_expired";
    error P.Deadline "deadline passed during the search"
  | exception Invalid_argument msg -> error P.Bad_request msg

let stats_payload () =
  (* [Json_out] and the wire use different JSON trees (emit-only vs
     emit+parse); round-tripping through the compact string unifies
     them at a cost of ~µs per stats call. *)
  match J.of_string (Sram_edp.Json_out.to_string (Sram_edp.Json_out.runtime_stats_json ())) with
  | Ok j -> Ok j
  | Error e -> error P.Internal ("stats serialization: " ^ e)

let handle ~default_deadline_ms ~draining (p : pending) =
  let wait = now () -. p.t_admit in
  Obs.Histogram.observe (Lazy.force h_queue_wait) wait;
  count ("serve.req." ^ P.endpoint_name p.req.P.endpoint);
  let deadline =
    match
      (p.req.P.deadline_ms, default_deadline_ms)
    with
    | Some ms, _ | None, Some ms -> Some (p.t_admit +. (ms /. 1000.0))
    | None, None -> None
  in
  let expired = match deadline with Some d -> now () > d | None -> false in
  let body =
    if expired then begin
      count "serve.deadline_expired";
      error P.Deadline "deadline passed while queued"
    end
    else
      let h = h_handle (P.endpoint_name p.req.P.endpoint) in
      Obs.Histogram.time h @@ fun () ->
      match p.req.P.endpoint with
      | P.Ping ->
        Ok
          (J.Obj
             [ ("pid", J.Int (Unix.getpid ()));
               ("git_commit", J.String (Persist.Record_log.git_commit ())) ])
      | P.Stats -> stats_payload ()
      | P.Shutdown ->
        draining := true;
        Ok (J.Obj [ ("draining", J.Bool true) ])
      | P.Optimize q -> (
        try optimize_payload q ~deadline
        with e ->
          error P.Internal (Printexc.to_string e))
  in
  { P.rid = p.req.P.id; body }

(* ----- socket plumbing ----- *)

(* Frames are small (requests ~200 B, responses a few KB), so writes
   briefly flip the descriptor back to blocking rather than running a
   writable-select state machine; a dead peer surfaces as EPIPE, which
   just drops the connection. *)
let send conn response =
  if conn.alive then begin
    let payload = J.to_string (P.response_to_json response) in
    match
      Unix.clear_nonblock conn.fd;
      Fun.protect
        ~finally:(fun () -> try Unix.set_nonblock conn.fd with _ -> ())
        (fun () -> Frame.write conn.fd payload)
    with
    | () -> ()
    | exception Unix.Unix_error _ ->
      Obs.Log.info ~section:"serve" "dropping %s: peer went away mid-response"
        conn.peer;
      conn.alive <- false
  end

let close_conn conn =
  if conn.alive then conn.alive <- false;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let listen_unix path =
  (match Unix.stat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
   | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let listen_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "?"

(* ----- the serve loop ----- *)

let run config =
  if config.socket_path = None && config.tcp = None then
    invalid_arg "Serve.Server.run: no listener configured";
  Obs.Control.set_enabled true;
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let draining = ref false in
  let old_handlers =
    if not config.install_signals then []
    else
      List.map
        (fun s ->
          ( s,
            Sys.signal s
              (Sys.Signal_handle
                 (fun _ ->
                   (* First signal drains; an operator mashing Ctrl-C
                      means now. *)
                   if !draining then Stdlib.exit 130 else draining := true)) ))
        [ Sys.sigint; Sys.sigterm ]
  in
  let listeners =
    (match config.socket_path with
     | Some path -> [ listen_unix path ]
     | None -> [])
    @ (match config.tcp with
       | Some (host, port) -> [ listen_tcp host port ]
       | None -> [])
  in
  let conns = ref [] in
  let queue : pending Queue.t = Queue.create () in
  let connections = ref 0 and served = ref 0 and errors = ref 0 in
  let read_buf = Bytes.create 65536 in
  let respond conn (r : P.response) =
    (match r.P.body with
     | Ok _ -> incr served
     | Error _ -> incr errors; count "serve.errors");
    count "serve.responses";
    send conn r
  in
  let admit conn (req : P.request) =
    count "serve.requests";
    if !draining then
      respond conn
        { P.rid = req.P.id;
          body = error P.Shutting_down "server is draining" }
    else if Queue.length queue >= config.max_queue then begin
      count "serve.rejected_busy";
      respond conn
        { P.rid = req.P.id;
          body =
            error P.Busy
              (Printf.sprintf "admission queue full (%d pending)"
                 config.max_queue) }
    end
    else Queue.add { conn; req; t_admit = now () } queue
  in
  (* Parse every complete frame buffered on the connection.  A framing
     error (oversized, checksum) means the byte stream can no longer be
     trusted: answer once and drop the connection.  A well-framed but
     malformed request only fails that request. *)
  let drain_frames conn =
    let continue = ref true in
    while !continue && conn.alive do
      match Frame.next conn.dec with
      | Ok None -> continue := false
      | Ok (Some payload) -> (
        match Result.bind (J.of_string payload) P.request_of_json with
        | Ok req -> admit conn req
        | Error e ->
          count "serve.bad_request";
          respond conn { P.rid = 0; body = error P.Bad_request e }
        | exception _ ->
          count "serve.bad_request";
          respond conn
            { P.rid = 0; body = error P.Bad_request "unparseable request" })
      | Error e ->
        count "serve.bad_frame";
        respond conn
          { P.rid = 0; body = error P.Bad_request (Frame.error_to_string e) };
        close_conn conn;
        continue := false
    done
  in
  let pump_conn conn =
    let continue = ref true in
    while !continue && conn.alive do
      match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
      | 0 ->
        if Frame.buffered conn.dec > 0 then
          Obs.Log.info ~section:"serve"
            "%s closed mid-frame (%d bytes undelivered)" conn.peer
            (Frame.buffered conn.dec);
        close_conn conn;
        continue := false
      | n ->
        Frame.feed conn.dec read_buf n;
        if n < Bytes.length read_buf then continue := false
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
        close_conn conn;
        continue := false
    done;
    if conn.alive then drain_frames conn
  in
  let accept_all listener =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true listener with
      | fd, _ ->
        if !draining then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Unix.set_nonblock fd;
          incr connections;
          count "serve.connections";
          conns :=
            { fd;
              dec = Frame.decoder ~max_len:config.max_frame ();
              peer = peer_name fd;
              alive = true }
            :: !conns
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let pump timeout =
    conns := List.filter (fun c -> c.alive) !conns;
    let watched = listeners @ List.map (fun c -> c.fd) !conns in
    match Unix.select watched [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if List.mem fd listeners then accept_all fd
          else
            match List.find_opt (fun c -> c.fd = fd) !conns with
            | Some conn -> pump_conn conn
            | None -> ())
        ready
  in
  Obs.Log.info ~section:"serve" "serving (queue %d, default deadline %s)"
    config.max_queue
    (match config.default_deadline_ms with
     | Some ms -> Printf.sprintf "%.0f ms" ms
     | None -> "none");
  while not (!draining && Queue.is_empty queue) do
    pump (if Queue.is_empty queue then 0.25 else 0.0);
    match Queue.take_opt queue with
    | None -> ()
    | Some p ->
      let r =
        handle ~default_deadline_ms:config.default_deadline_ms ~draining p
      in
      respond p.conn r;
      Obs.Histogram.observe (Lazy.force h_e2e) (now () -. p.t_admit)
  done;
  List.iter close_conn !conns;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  (match config.socket_path with
   | Some path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
   | None -> ());
  List.iter (fun (s, h) -> Sys.set_signal s h) old_handlers;
  Sys.set_signal Sys.sigpipe old_pipe;
  Obs.Log.info ~section:"serve" "drained: %d connections, %d served, %d errors"
    !connections !served !errors;
  { connections = !connections; served = !served; errors = !errors }
