module P = Protocol
module J = Persist.Json

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
}

let addr_of ?tcp ?socket_path () =
  match (tcp, socket_path) with
  | Some (host, port), None ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    Ok (Unix.PF_INET, Unix.ADDR_INET (inet, port))
  | None, Some path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Some _, Some _ | None, None ->
    Error "connect: give exactly one of ~tcp / ~socket_path"

let connect ?tcp ?socket_path () =
  match addr_of ?tcp ?socket_path () with
  | Error _ as e -> e
  | Ok (domain, addr) -> (
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok { fd; next_id = 1 }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect: %s" (Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call ?deadline_ms ?trace_id t endpoint =
  let id = t.next_id in
  t.next_id <- id + 1;
  let req = { P.id; deadline_ms; trace_id; endpoint } in
  match Frame.write t.fd (J.to_string (P.request_to_json req)) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Printf.sprintf "send: %s" (Unix.error_message e))
  | () -> (
    match Frame.read t.fd with
    | Error e -> Error (Printf.sprintf "receive: %s" (Frame.error_to_string e))
    | Ok payload -> (
      match Result.bind (J.of_string payload) P.response_of_json with
      | Error e -> Error (Printf.sprintf "bad response: %s" e)
      | Ok r when r.P.rid <> id ->
        Error
          (Printf.sprintf "response id %d does not match request id %d" r.P.rid
             id)
      | Ok r -> Ok r))

let payload_of = function
  | Error _ as e -> e
  | Ok { P.body = Ok payload; _ } -> Ok payload
  | Ok { P.body = Error (code, msg); _ } ->
    Error (Printf.sprintf "%s: %s" (P.error_code_to_string code) msg)

let ping t = payload_of (call t P.Ping)
let stats t = payload_of (call t P.Stats)

let metrics t =
  match payload_of (call t P.Metrics) with
  | Error _ as e -> e
  | Ok (J.String text) -> Ok text
  | Ok _ -> Error "metrics payload: expected a string"

let shutdown t =
  match payload_of (call t P.Shutdown) with
  | Ok _ -> Ok ()
  | Error _ as e -> e

let wait_ready ?(timeout_s = 10.0) ?tcp ?socket_path () =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec attempt pause =
    match connect ?tcp ?socket_path () with
    | Ok t -> (
      match ping t with
      | Ok _ -> Ok t
      | Error e ->
        close t;
        retry pause e)
    | Error e -> retry pause e
  and retry pause last =
    if Unix.gettimeofday () >= deadline then
      Error (Printf.sprintf "server not ready after %.1f s (%s)" timeout_s last)
    else begin
      (try ignore (Unix.select [] [] [] pause) with Unix.Unix_error _ -> ());
      attempt (Float.min 0.2 (pause *. 2.0))
    end
  in
  attempt 0.01

type answer = {
  capacity_bits : int;
  config : string;
  checksum : string;
  eval_s : float;
  result : Opt.Exhaustive.result;
}

let explain ?deadline_ms ?trace_id t query =
  payload_of (call ?deadline_ms ?trace_id t (P.Explain query))

let optimize ?deadline_ms ?trace_id t query =
  match payload_of (call ?deadline_ms ?trace_id t (P.Optimize query)) with
  | Error _ as e -> e
  | Ok payload -> (
    let field name get =
      match get payload name with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "optimize payload: missing %s" name)
    in
    let ( let* ) = Result.bind in
    let* capacity_bits = field "capacity_bits" J.int_field in
    let* config = field "config" J.string_field in
    let* checksum = field "checksum" J.string_field in
    let* eval_s = field "eval_s" J.float_field in
    let* rj = field "result" (fun j n -> J.member n j) in
    match Opt.Exhaustive.result_of_json rj with
    | None -> Error "optimize payload: result does not decode"
    | Some result -> Ok { capacity_bits; config; checksum; eval_s; result })
