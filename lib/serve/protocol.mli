(** The serving wire protocol: request / response values and their
    compact-JSON codecs ({!Persist.Json}), independent of any socket.

    A request names an endpoint, an id the response echoes (so a client
    can pipeline), and an optional deadline relative to the moment the
    server admits the request.  Responses carry either an endpoint-
    specific JSON payload or a typed error.  See DESIGN.md §9 for the
    frame layout and endpoint semantics. *)

(** Overrides of the search-space grids; [None] means the corresponding
    axis of {!Opt.Space.default}. *)
type space_override = {
  vssc : float array option;   (** volts *)
  nr : int array option;
  n_pre : int array option;
  n_wr : int array option;
}

val no_override : space_override
val space_of_override : space_override -> Opt.Space.t
val reduced_override : space_override
(** {!Opt.Space.reduced} spelled as an override (the tests' and load
    generator's staple — small enough to answer in milliseconds). *)

type query = {
  capacity_bits : int;
  flavor : Finfet.Library.flavor;
  method_ : Opt.Space.method_;
  strategy : Opt.Strategy.t;
  (** search engine ({!Opt.Strategy.run} dispatch).  On the wire the
      ["method"] field speaks {!Opt.Strategy.parse_method}'s grammar
      (["m2"], ["nsga2"], ["m1:nsga2"], ...); an explicit ["strategy"]
      field wins.  An unknown spelling is a decode error — the server
      answers a typed [bad_request] and keeps the connection open. *)
  rng_seed : int;
  (** seed for the stochastic engines (wire field ["rng_seed"]); same
      seed, same answer, bit for bit *)
  objective : Opt.Objective.t;
  accounting : Array_model.Array_eval.accounting;
  w : int;
  space : space_override;
}

val default_query : query
(** 4KB, HVT, M2, exhaustive strategy (seed 42), EDP, strict
    accounting, w = 64, no override. *)

type endpoint =
  | Ping                (** liveness probe; payload echoes the server pid *)
  | Optimize of query   (** one co-optimization; payload is the winner *)
  | Explain of query
  (** the winner's bit-exact attribution and per-axis sensitivity; the
      search itself reuses the optimize memo, so explaining a design
      already served is cheap *)
  | Stats               (** runtime telemetry snapshot *)
  | Metrics             (** Prometheus text exposition (payload: one string) *)
  | Shutdown            (** ack, then drain and exit the serve loop *)

val endpoint_name : endpoint -> string
(** "ping" / "optimize" / "explain" / "stats" / "metrics" / "shutdown" —
    histogram and counter labels. *)

type request = {
  id : int;
  deadline_ms : float option;  (** admission-relative; None = server default *)
  trace_id : string option;
  (** client-chosen request-scoped id; the server generates one when
      absent, tags the request's spans and log lines with it, and
      echoes it in the response either way *)
  endpoint : endpoint;
}

type error_code =
  | Bad_request     (** unparseable or malformed request *)
  | Busy            (** admission queue full — retry later *)
  | Deadline        (** deadline passed before or during evaluation *)
  | Shutting_down   (** server is draining; no new work accepted *)
  | Internal        (** evaluation raised; message carries the exn text *)

val error_code_to_string : error_code -> string

type response = {
  rid : int;  (** echoes {!request.id} *)
  rtrace_id : string option;
  (** the trace id this request ran under (client-supplied or
      server-generated); [None] only when the request never reached the
      handler (e.g. an unparseable frame) *)
  body : (Persist.Json.t, error_code * string) result;
}

(** {2 Codecs} — total decoders returning [Error] with a reason on any
    shape mismatch; [of_json (to_json v)] reproduces [v] including
    every float bit (QCheck-verified). *)

val request_to_json : request -> Persist.Json.t
val request_of_json : Persist.Json.t -> (request, string) result
val response_to_json : response -> Persist.Json.t
val response_of_json : Persist.Json.t -> (response, string) result
