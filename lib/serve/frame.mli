(** Wire framing for the serving protocol: [u32-LE payload length |
    u32-LE CRC-32 | payload bytes], the same frame layout as the
    {!Persist.Record_log} on-disk format (minus the file magic), so one
    crash/corruption model covers both the disk and the wire.

    Payloads are compact JSON ({!Persist.Json}); this module only moves
    opaque strings.  Two read paths are provided: a blocking
    read-exactly loop for clients (one outstanding request per
    connection) and an incremental decoder for the server's
    select-driven loop, which must never block on a slow or malicious
    peer mid-frame. *)

val max_frame_default : int
(** 4 MiB — far above any request or response this protocol carries;
    a length prefix beyond the limit is treated as garbage, not as an
    instruction to allocate. *)

type error =
  | Eof               (** peer closed cleanly between frames *)
  | Truncated         (** peer closed mid-frame *)
  | Oversized of int  (** declared length beyond [max_len] *)
  | Crc_mismatch      (** payload did not match its checksum *)

val error_to_string : error -> string

val write : Unix.file_descr -> string -> unit
(** Write one frame (header + payload), looping over short writes.
    Raises [Unix.Unix_error] (e.g. [EPIPE]) on a dead peer. *)

val read : ?max_len:int -> Unix.file_descr -> (string, error) result
(** Blocking read of exactly one frame.  [max_len] defaults to
    {!max_frame_default}. *)

(** {2 Incremental decoding} — feed bytes as they arrive, pop complete
    frames.  A decoder error is sticky: the connection's byte stream is
    unsynchronized and must be dropped. *)

type decoder

val decoder : ?max_len:int -> unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf n] appends the first [n] bytes of [buf]. *)

val next : decoder -> (string option, error) result
(** Pop the next complete frame; [Ok None] when more bytes are needed.
    Only [Oversized] and [Crc_mismatch] occur here ([Eof]/[Truncated]
    are the caller's to diagnose from the socket). *)

val buffered : decoder -> int
(** Bytes held but not yet consumed — nonzero at EOF means the peer
    died mid-frame. *)

val peek : decoder -> string
(** The unconsumed bytes, without consuming them.  The server's
    HTTP shim sniffs these to tell a plain-text [GET /metrics] from a
    frame stream (an ASCII request line read as a u32-LE length is
    ~500 MB — no valid frame starts that way). *)
