(** Blocking client for the serving protocol — the library under the
    [sram_opt query] CLI, the load-generator bench and the tests.

    One connection carries one outstanding request at a time ({!call}
    writes, then blocks for the matching response); concurrency comes
    from opening several clients, which is exactly what the load
    generator does.  All entry points return [Error] with a readable
    reason instead of raising on transport failures. *)

type t

val connect :
  ?tcp:string * int -> ?socket_path:string -> unit -> (t, string) result
(** Connect over the Unix-domain path, or TCP when [tcp] is given
    instead.  Exactly one of the two must be provided. *)

val wait_ready :
  ?timeout_s:float -> ?tcp:string * int -> ?socket_path:string -> unit ->
  (t, string) result
(** {!connect}, retrying with backoff until the server answers a ping
    or [timeout_s] (default 10 s) elapses — for callers that just
    started the server process. *)

val close : t -> unit

val call :
  ?deadline_ms:float -> ?trace_id:string -> t -> Protocol.endpoint ->
  (Protocol.response, string) result
(** Send one request (ids are assigned per connection) and block for
    its response.  [Error] covers transport and framing failures; a
    server-side failure comes back as [Ok] with an error body.
    [trace_id] names the request in the server's spans, logs and
    flight dumps; the response's [rtrace_id] echoes it (or carries the
    server-generated id when omitted). *)

(** {2 Typed conveniences} — unwrap [Ok] payloads, folding protocol
    errors into the [Error] string. *)

val ping : t -> (Persist.Json.t, string) result

val stats : t -> (Persist.Json.t, string) result

val metrics : t -> (string, string) result
(** The Prometheus text exposition ({!Metrics.render}), fetched over
    the frame protocol (the [GET /metrics] HTTP shim serves the same
    string). *)

val shutdown : t -> (unit, string) result

type answer = {
  capacity_bits : int;
  config : string;       (** e.g. "6T-HVT-M2" *)
  checksum : string;     (** {!Opt.Exhaustive.checksum} of the winner *)
  eval_s : float;        (** server-side handling time *)
  result : Opt.Exhaustive.result;
}

val explain :
  ?deadline_ms:float -> ?trace_id:string -> t -> Protocol.query ->
  (Persist.Json.t, string) result
(** The winner's attribution / sensitivity payload for [query], raw:
    callers print or pick fields rather than decode a record.  The
    server computes it from the same optimize memo, so explaining an
    already-served design is a cache hit. *)

val optimize :
  ?deadline_ms:float -> ?trace_id:string -> t -> Protocol.query ->
  (answer, string) result
(** The decoded winner is bit-exact: the wire codec preserves every
    float bit, so [answer.result] equals what the server computed and
    [checksum] re-derives locally. *)
