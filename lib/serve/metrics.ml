(* Prometheus text exposition (format 0.0.4) of the serving telemetry.

   One render walks the same registries the stats endpoint reads —
   serve.* counters, the windowed latency histograms, memo caches, GC —
   and prints them in the exposition grammar a stock Prometheus scrape
   parses: `# TYPE` headers, `_total` counters, summary quantiles, and
   windowed gauges labelled {window="10s"}.  Served both as the
   `metrics` frame endpoint (payload: this string) and verbatim over
   the plain `GET /metrics` HTTP shim on the TCP listener. *)

let prefix = "sram_opt_"

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]* — dots and dashes become
   underscores ("serve.handle.optimize" -> "serve_handle_optimize"). *)
let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let escape_label s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && abs_float v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let header buf name kind help =
  Buffer.add_string buf (Printf.sprintf "# HELP %s%s %s\n" prefix name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s%s %s\n" prefix name kind)

let line buf name labels value =
  Buffer.add_string buf prefix;
  Buffer.add_string buf name;
  (match labels with
  | [] -> ()
  | labels ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}');
  Buffer.add_char buf ' ';
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let quantiles = [ ("0.5", 0.50); ("0.9", 0.90); ("0.99", 0.99) ]

let serve_counters buf =
  let counters = (Runtime.Telemetry.snapshot ()).Runtime.Telemetry.counters in
  List.iter
    (fun (name, v) ->
      if String.starts_with ~prefix:"serve." name then begin
        let metric = sanitize name ^ "_total" in
        header buf metric "counter" ("cumulative " ^ name);
        line buf metric [] (string_of_int v)
      end)
    counters

let windowed_counters buf =
  let rows = Obs.Window.counter_report () in
  if rows <> [] then begin
    let metric = "serve_events_window" in
    header buf metric "gauge"
      "event-counter increments within the trailing window";
    List.iter
      (fun (name, _current, windows) ->
        List.iter
          (fun (label, delta) ->
            line buf metric
              [ ("event", sanitize name); ("window", label) ]
              (string_of_int delta))
          windows)
      rows
  end

let summary buf metric (s : Obs.Histogram.snapshot) =
  header buf metric "summary" ("cumulative latency of " ^ s.Obs.Histogram.name);
  List.iter
    (fun (q_label, q) ->
      line buf metric
        [ ("quantile", q_label) ]
        (fmt_float (Obs.Histogram.percentile s q)))
    quantiles;
  line buf (metric ^ "_sum") [] (fmt_float s.Obs.Histogram.sum);
  line buf (metric ^ "_count") [] (string_of_int s.Obs.Histogram.count)

let windowed buf metric (windows : (string * Obs.Histogram.snapshot) list) =
  header buf metric "gauge"
    "windowed latency quantiles over the trailing window";
  List.iter
    (fun (label, (s : Obs.Histogram.snapshot)) ->
      List.iter
        (fun (q_label, q) ->
          line buf metric
            [ ("window", label); ("quantile", q_label) ]
            (fmt_float (Obs.Histogram.percentile s q)))
        quantiles;
      line buf (metric ^ "_count")
        [ ("window", label) ]
        (string_of_int s.Obs.Histogram.count))
    windows

let histograms buf =
  List.iter
    (fun (name, cumulative, windows) ->
      let base = sanitize name ^ "_seconds" in
      summary buf base cumulative;
      windowed buf (base ^ "_window") windows)
    (Obs.Window.report ())

(* Search-introspection exposure: journal counters from [Obs.Search]
   and the bound-quality summary from the "opt.bound_gap" histogram.
   Both appear once a search has run (the server arms the journal at
   startup), so dashboards can plot pruning effectiveness and bound
   slack across the serving lifetime. *)
let search buf =
  let s = Obs.Search.summary () in
  if s.Obs.Search.incumbents > 0 || s.Obs.Search.prunes > 0
     || s.Obs.Search.chunks > 0
  then begin
    let counter name help v =
      header buf name "counter" help;
      line buf name [] (string_of_int v)
    in
    counter "search_incumbents_total"
      "incumbent improvements recorded by the search journal"
      s.Obs.Search.incumbents;
    counter "search_prunes_total"
      "geometry lines pruned by the admissible lower bound"
      s.Obs.Search.prunes;
    counter "search_chunks_total" "search chunks completed"
      s.Obs.Search.chunks;
    counter "search_events_journaled_total"
      "events retained in the bounded journal" s.Obs.Search.journaled;
    counter "search_events_dropped_total"
      "events dropped at the journal capacity bound" s.Obs.Search.dropped;
    if Float.is_finite s.Obs.Search.best_score then begin
      header buf "search_best_score" "gauge"
        "best objective score the journal has seen";
      line buf "search_best_score" [] (fmt_float s.Obs.Search.best_score)
    end
  end;
  match
    List.find_opt
      (fun (sn : Obs.Histogram.snapshot) ->
        sn.Obs.Histogram.name = "opt.bound_gap")
      (Obs.Histogram.snapshots ())
  with
  | Some sn when sn.Obs.Histogram.count > 0 ->
    let metric = "opt_bound_gap_ratio" in
    header buf metric "summary"
      "relative slack of the line lower bound vs the realized line minimum";
    List.iter
      (fun (q_label, q) ->
        line buf metric
          [ ("quantile", q_label) ]
          (fmt_float (Obs.Histogram.percentile sn q)))
      quantiles;
    line buf (metric ^ "_sum") [] (fmt_float sn.Obs.Histogram.sum);
    line buf (metric ^ "_count") [] (string_of_int sn.Obs.Histogram.count)
  | Some _ | None -> ()

let memos buf =
  let stats = Runtime.Memo.registered_stats () in
  if stats <> [] then begin
    header buf "memo_hits_total" "counter" "memo cache hits";
    List.iter
      (fun (s : Runtime.Memo.stats) ->
        line buf "memo_hits_total"
          [ ("memo", s.Runtime.Memo.name) ]
          (string_of_int s.Runtime.Memo.hits))
      stats;
    header buf "memo_misses_total" "counter" "memo cache misses";
    List.iter
      (fun (s : Runtime.Memo.stats) ->
        line buf "memo_misses_total"
          [ ("memo", s.Runtime.Memo.name) ]
          (string_of_int s.Runtime.Memo.misses))
      stats;
    header buf "memo_hit_rate" "gauge" "memo cache hit rate";
    List.iter
      (fun (s : Runtime.Memo.stats) ->
        line buf "memo_hit_rate"
          [ ("memo", s.Runtime.Memo.name) ]
          (fmt_float (Runtime.Memo.hit_rate s)))
      stats;
    header buf "memo_entries" "gauge" "memo cache occupancy";
    List.iter
      (fun (s : Runtime.Memo.stats) ->
        line buf "memo_entries"
          [ ("memo", s.Runtime.Memo.name) ]
          (string_of_int s.Runtime.Memo.length))
      stats
  end

let gc buf =
  let s = Gc.quick_stat () in
  header buf "gc_minor_words_total" "counter" "words allocated in the minor heap";
  line buf "gc_minor_words_total" [] (fmt_float s.Gc.minor_words);
  header buf "gc_major_words_total" "counter" "words allocated in the major heap";
  line buf "gc_major_words_total" [] (fmt_float s.Gc.major_words);
  header buf "gc_major_collections_total" "counter" "major GC cycles";
  line buf "gc_major_collections_total" [] (string_of_int s.Gc.major_collections);
  header buf "gc_heap_words" "gauge" "major heap size in words";
  line buf "gc_heap_words" [] (string_of_int s.Gc.heap_words)

let build_info buf =
  header buf "build_info" "gauge" "build metadata";
  line buf "build_info"
    [ ("ocaml", Sys.ocaml_version); ("jobs", string_of_int (Runtime.Pool.default_jobs ())) ]
    "1"

let render () =
  let buf = Buffer.create 4096 in
  serve_counters buf;
  windowed_counters buf;
  histograms buf;
  search buf;
  memos buf;
  gc buf;
  build_info buf;
  Buffer.contents buf
