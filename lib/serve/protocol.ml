module J = Persist.Json

type space_override = {
  vssc : float array option;
  nr : int array option;
  n_pre : int array option;
  n_wr : int array option;
}

let no_override = { vssc = None; nr = None; n_pre = None; n_wr = None }

let space_of_override o =
  let d = Opt.Space.default in
  { Opt.Space.vssc_values =
      (match o.vssc with Some v -> v | None -> d.Opt.Space.vssc_values);
    nr_values = (match o.nr with Some v -> v | None -> d.Opt.Space.nr_values);
    n_pre_values =
      (match o.n_pre with Some v -> v | None -> d.Opt.Space.n_pre_values);
    n_wr_values =
      (match o.n_wr with Some v -> v | None -> d.Opt.Space.n_wr_values) }

let reduced_override =
  let r = Opt.Space.reduced in
  { vssc = Some r.Opt.Space.vssc_values;
    nr = Some r.Opt.Space.nr_values;
    n_pre = Some r.Opt.Space.n_pre_values;
    n_wr = Some r.Opt.Space.n_wr_values }

type query = {
  capacity_bits : int;
  flavor : Finfet.Library.flavor;
  method_ : Opt.Space.method_;
  strategy : Opt.Strategy.t;
  rng_seed : int;
  objective : Opt.Objective.t;
  accounting : Array_model.Array_eval.accounting;
  w : int;
  space : space_override;
}

let default_query =
  { capacity_bits = 4096 * 8;
    flavor = Finfet.Library.Hvt;
    method_ = Opt.Space.M2;
    strategy = Opt.Strategy.Exhaustive;
    rng_seed = Opt.Strategy.default_seed;
    objective = Opt.Objective.Energy_delay_product;
    accounting = Array_model.Array_eval.Paper_strict;
    w = 64;
    space = no_override }

type endpoint =
  | Ping
  | Optimize of query
  | Explain of query
  | Stats
  | Metrics
  | Shutdown

let endpoint_name = function
  | Ping -> "ping"
  | Optimize _ -> "optimize"
  | Explain _ -> "explain"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

type request = {
  id : int;
  deadline_ms : float option;
  trace_id : string option;
  endpoint : endpoint;
}

type error_code =
  | Bad_request
  | Busy
  | Deadline
  | Shutting_down
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Busy -> "busy"
  | Deadline -> "deadline"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "busy" -> Some Busy
  | "deadline" -> Some Deadline
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

type response = {
  rid : int;
  rtrace_id : string option;  (* echo of the request's trace id *)
  body : (J.t, error_code * string) result;
}

(* ----- enum spellings (the CLI's flag values, lowercased) ----- *)

let objective_to_string = function
  | Opt.Objective.Energy_delay_product -> "edp"
  | Opt.Objective.Energy_delay_squared -> "ed2"
  | Opt.Objective.Energy_only -> "energy"
  | Opt.Objective.Delay_only -> "delay"

let objective_of_string = function
  | "edp" -> Some Opt.Objective.Energy_delay_product
  | "ed2" -> Some Opt.Objective.Energy_delay_squared
  | "energy" -> Some Opt.Objective.Energy_only
  | "delay" -> Some Opt.Objective.Delay_only
  | _ -> None

let accounting_to_string = function
  | Array_model.Array_eval.Paper_strict -> "strict"
  | Array_model.Array_eval.Physical -> "physical"

let accounting_of_string = function
  | "strict" -> Some Array_model.Array_eval.Paper_strict
  | "physical" -> Some Array_model.Array_eval.Physical
  | _ -> None

(* ----- encoding ----- *)

let floats a = J.List (Array.to_list a |> List.map (fun v -> J.Float v))
let ints a = J.List (Array.to_list a |> List.map (fun v -> J.Int v))

let space_override_to_json (o : space_override) =
  let field name enc = function None -> [] | Some v -> [ (name, enc v) ] in
  J.Obj
    (field "vssc_v" floats o.vssc
    @ field "nr" ints o.nr
    @ field "n_pre" ints o.n_pre
    @ field "n_wr" ints o.n_wr)

let query_to_json (q : query) =
  let base =
    [ ("capacity_bits", J.Int q.capacity_bits);
      ("flavor",
       J.String (String.lowercase_ascii (Finfet.Library.flavor_to_string q.flavor)));
      ("method", J.String (String.lowercase_ascii (Opt.Space.method_name q.method_)));
      ("strategy", J.String (Opt.Strategy.name q.strategy));
      ("rng_seed", J.Int q.rng_seed);
      ("objective", J.String (objective_to_string q.objective));
      ("accounting", J.String (accounting_to_string q.accounting));
      ("w", J.Int q.w) ]
  in
  let space =
    if q.space = no_override then []
    else [ ("space", space_override_to_json q.space) ]
  in
  J.Obj (base @ space)

let request_to_json (r : request) =
  let deadline =
    match r.deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", J.Float ms) ]
  in
  let trace =
    match r.trace_id with
    | None -> []
    | Some id -> [ ("trace_id", J.String id) ]
  in
  let query =
    match r.endpoint with
    | Optimize q | Explain q -> [ ("query", query_to_json q) ]
    | Ping | Stats | Metrics | Shutdown -> []
  in
  J.Obj
    ([ ("id", J.Int r.id);
       ("endpoint", J.String (endpoint_name r.endpoint)) ]
    @ deadline @ trace @ query)

let response_to_json (r : response) =
  let trace =
    match r.rtrace_id with
    | None -> []
    | Some id -> [ ("trace_id", J.String id) ]
  in
  match r.body with
  | Ok payload ->
    J.Obj
      ([ ("id", J.Int r.rid); ("status", J.String "ok") ]
      @ trace
      @ [ ("payload", payload) ])
  | Error (code, message) ->
    J.Obj
      ([ ("id", J.Int r.rid); ("status", J.String "error") ]
      @ trace
      @ [ ("code", J.String (error_code_to_string code));
          ("message", J.String message) ])

(* ----- decoding ----- *)

let ( let* ) = Result.bind

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed %s" what)

let float_array_field j name =
  match J.member name j with
  | None -> Ok None
  | Some v ->
    let* l = require (name ^ " array") (J.to_list v) in
    let* fs =
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          let* f = require (name ^ " element") (J.to_float x) in
          Ok (f :: acc))
        l (Ok [])
    in
    Ok (Some (Array.of_list fs))

let int_array_field j name =
  match J.member name j with
  | None -> Ok None
  | Some v ->
    let* l = require (name ^ " array") (J.to_list v) in
    let* is =
      List.fold_right
        (fun x acc ->
          let* acc = acc in
          let* i = require (name ^ " element") (J.to_int x) in
          Ok (i :: acc))
        l (Ok [])
    in
    Ok (Some (Array.of_list is))

let space_override_of_json j =
  let* vssc = float_array_field j "vssc_v" in
  let* nr = int_array_field j "nr" in
  let* n_pre = int_array_field j "n_pre" in
  let* n_wr = int_array_field j "n_wr" in
  Ok { vssc; nr; n_pre; n_wr }

let enum_field j name of_string ~default =
  match J.member name j with
  | None -> Ok default
  | Some v ->
    let* s = require name (J.to_string_opt v) in
    require (Printf.sprintf "%s value %S" name s)
      (of_string (String.lowercase_ascii s))

let query_of_json j =
  let* capacity_bits = require "capacity_bits" (J.int_field j "capacity_bits") in
  let* flavor =
    enum_field j "flavor"
      (fun s -> Finfet.Library.flavor_of_string s)
      ~default:default_query.flavor
  in
  (* The "method" field speaks {!Opt.Strategy.parse_method}'s grammar:
     a pin policy ("m1"/"m2"), a strategy name ("nsga2", ...), or both
     ("m1:nsga2").  An explicit "strategy" field wins over whatever the
     method spelled; anything unparseable is a typed decode error —
     the server answers [bad_request], the connection stays open. *)
  let* pin, method_strategy =
    match J.member "method" j with
    | None -> Ok (None, None)
    | Some v ->
      let* s = require "method" (J.to_string_opt v) in
      require
        (Printf.sprintf "method value %S" s)
        (Opt.Strategy.parse_method s)
  in
  let method_ = Option.value ~default:default_query.method_ pin in
  let* strategy =
    enum_field j "strategy" Opt.Strategy.of_name
      ~default:(Option.value ~default:default_query.strategy method_strategy)
  in
  let rng_seed =
    Option.value ~default:default_query.rng_seed (J.int_field j "rng_seed")
  in
  let* objective =
    enum_field j "objective" objective_of_string ~default:default_query.objective
  in
  let* accounting =
    enum_field j "accounting" accounting_of_string
      ~default:default_query.accounting
  in
  let w = Option.value ~default:default_query.w (J.int_field j "w") in
  let* space =
    match J.member "space" j with
    | None -> Ok no_override
    | Some sj -> space_override_of_json sj
  in
  Ok
    { capacity_bits; flavor; method_; strategy; rng_seed; objective;
      accounting; w; space }

let request_of_json j =
  let* id = require "id" (J.int_field j "id") in
  let* endpoint_s = require "endpoint" (J.string_field j "endpoint") in
  let deadline_ms = J.float_field j "deadline_ms" in
  let trace_id = J.string_field j "trace_id" in
  let* endpoint =
    match endpoint_s with
    | "ping" -> Ok Ping
    | "stats" -> Ok Stats
    | "metrics" -> Ok Metrics
    | "shutdown" -> Ok Shutdown
    | "optimize" | "explain" ->
      let* qj = require "query" (J.member "query" j) in
      let* q = query_of_json qj in
      Ok (if endpoint_s = "explain" then Explain q else Optimize q)
    | other -> Error (Printf.sprintf "unknown endpoint %S" other)
  in
  Ok { id; deadline_ms; trace_id; endpoint }

let response_of_json j =
  let* rid = require "id" (J.int_field j "id") in
  let* status = require "status" (J.string_field j "status") in
  let rtrace_id = J.string_field j "trace_id" in
  match status with
  | "ok" ->
    let* payload = require "payload" (J.member "payload" j) in
    Ok { rid; rtrace_id; body = Ok payload }
  | "error" ->
    let* code_s = require "code" (J.string_field j "code") in
    let* code = require ("code " ^ code_s) (error_code_of_string code_s) in
    let message = Option.value ~default:"" (J.string_field j "message") in
    Ok { rid; rtrace_id; body = Error (code, message) }
  | other -> Error (Printf.sprintf "unknown status %S" other)
