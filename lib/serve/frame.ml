let max_frame_default = 4 * 1024 * 1024

type error =
  | Eof
  | Truncated
  | Oversized of int
  | Crc_mismatch

let error_to_string = function
  | Eof -> "connection closed"
  | Truncated -> "connection closed mid-frame"
  | Oversized n -> Printf.sprintf "frame length %d exceeds the limit" n
  | Crc_mismatch -> "frame checksum mismatch"

let header_bytes = 8

let put_u32_le b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32_le b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let write_all fd b pos len =
  let pos = ref pos and remaining = ref len in
  while !remaining > 0 do
    let n = Unix.write fd b !pos !remaining in
    pos := !pos + n;
    remaining := !remaining - n
  done

let write fd payload =
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  put_u32_le b 0 len;
  put_u32_le b 4 (Persist.Crc32.string payload);
  Bytes.blit_string payload 0 b header_bytes len;
  (* One write for header + payload: a request fits a single syscall and
     the peer never observes a header without its payload en route. *)
  write_all fd b 0 (Bytes.length b)

(* Blocking read of exactly [len] bytes; distinguishes EOF at a frame
   boundary ([`Eof]) from EOF inside one ([`Truncated]). *)
let read_exactly fd b len =
  let got = ref 0 in
  let result = ref `Ok in
  while !result = `Ok && !got < len do
    match Unix.read fd b !got (len - !got) with
    | 0 -> result := if !got = 0 then `Eof else `Truncated
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  !result

let read ?(max_len = max_frame_default) fd =
  let header = Bytes.create header_bytes in
  match read_exactly fd header header_bytes with
  | `Eof -> Error Eof
  | `Truncated -> Error Truncated
  | `Ok ->
    let len = get_u32_le header 0 in
    let crc = get_u32_le header 4 in
    if len > max_len then Error (Oversized len)
    else begin
      let payload = Bytes.create len in
      match read_exactly fd payload len with
      | `Eof | `Truncated -> Error Truncated
      | `Ok ->
        let payload = Bytes.unsafe_to_string payload in
        if Persist.Crc32.string payload <> crc then Error Crc_mismatch
        else Ok payload
    end

type decoder = {
  max_len : int;
  buf : Buffer.t;
  mutable consumed : int;  (** prefix of [buf] already handed out *)
  mutable failed : error option;
}

let decoder ?(max_len = max_frame_default) () =
  { max_len; buf = Buffer.create 256; consumed = 0; failed = None }

let feed d b n = Buffer.add_subbytes d.buf b 0 n

let buffered d = Buffer.length d.buf - d.consumed

let peek d = Buffer.sub d.buf d.consumed (buffered d)

let next d =
  match d.failed with
  | Some e -> Error e
  | None ->
    if buffered d < header_bytes then Ok None
    else begin
      let header = Buffer.to_bytes d.buf in
      let len = get_u32_le header d.consumed in
      let crc = get_u32_le header (d.consumed + 4) in
      if len > d.max_len || len < 0 then begin
        d.failed <- Some (Oversized len);
        Error (Oversized len)
      end
      else if buffered d < header_bytes + len then Ok None
      else begin
        let payload =
          Bytes.sub_string header (d.consumed + header_bytes) len
        in
        d.consumed <- d.consumed + header_bytes + len;
        (* Drop the consumed prefix once it dominates the buffer, so a
           long-lived connection doesn't accumulate every past frame. *)
        if d.consumed > 4096 && d.consumed * 2 > Buffer.length d.buf then begin
          let rest =
            Buffer.sub d.buf d.consumed (Buffer.length d.buf - d.consumed)
          in
          Buffer.clear d.buf;
          Buffer.add_string d.buf rest;
          d.consumed <- 0
        end;
        if Persist.Crc32.string payload <> crc then begin
          d.failed <- Some Crc_mismatch;
          Error Crc_mismatch
        end
        else Ok (Some payload)
      end
    end
