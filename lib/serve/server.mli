(** The optimizer-as-a-service daemon: a select-driven serve loop over
    Unix-domain (and optionally TCP) listeners speaking the
    length-prefixed {!Protocol} over {!Frame}s.

    Concurrency model: client connections multiplex on one event loop;
    admitted requests queue (bounded — over-admission answers [Busy]
    immediately rather than building unbounded latency) and evaluate
    one at a time on the process's shared {!Runtime.Pool} (the CLI's
    [--jobs]), so a single query already saturates the machine and two
    queries never fight for cores.  All requests share the process-wide
    warm {!Runtime.Memo} tier and the [--cache-dir] disk tier: a
    repeated query is a cache hit (~µs) regardless of which connection
    asks.

    Deadlines: each request's budget (its own [deadline_ms], or the
    server default) starts at admission.  An expired request is
    answered [Deadline] without evaluating; one that expires mid-search
    is cancelled via {!Opt.Exhaustive.Deadline_exceeded} and answered
    [Deadline] — the server and its caches stay consistent because an
    aborted search stores nothing.

    Shutdown: SIGINT / SIGTERM (when [install_signals]) or the
    [shutdown] endpoint put the loop into drain mode — no new
    connections or requests are admitted (late arrivals get
    [Shutting_down]), queued requests are answered, then listeners
    close and {!run} returns.  A second signal exits immediately.

    Telemetry: per-endpoint counters ([serve.req.*]) and latency
    histograms ([serve.queue_wait], [serve.handle.*], [serve.e2e])
    feed [--stats], the [stats] endpoint and BENCH_serve.json.

    Observability (on by default; the bench harness turns it off to
    measure its own overhead): every parsed request runs under a trace
    id — the client's, or a server-generated [t-<pid>-<n>] — echoed in
    the response, stamped on every span and log line recorded while
    handling it, and wrapped in a [serve.request.<endpoint>] span.  The
    latency histograms get {!Obs.Window}ed views (rotated from the
    serve loop) so [stats] and [metrics] report recent p50/p99
    alongside cumulative, with the SLO counters (deadline misses, busy
    rejections, frame errors) windowed the same way.  {!Obs.Flight} is
    armed for the server's lifetime; a deadline miss, internal error,
    over-[slow_ms] response or SIGQUIT dumps the recent span/log rings
    as a Perfetto-loadable file in [flight_dir].

    Monitoring: any connection whose first bytes are ["GET "] is served
    as one plain-HTTP exchange — [GET /metrics] answers the Prometheus
    text exposition ({!Metrics.render}), [/healthz] answers [ok] — so a
    stock Prometheus scrapes the same TCP listener the frame protocol
    uses. *)

type config = {
  socket_path : string option;  (** Unix-domain listener (unlinked on exit) *)
  tcp : (string * int) option;  (** optional (host, port) TCP listener *)
  max_queue : int;              (** admission bound (default 64) *)
  default_deadline_ms : float option;
      (** budget for requests that set none; [None] = unlimited *)
  max_frame : int;              (** per-frame byte cap *)
  install_signals : bool;       (** drain on SIGINT/SIGTERM (default true) *)
  observability : bool;
      (** trace ids, windowed metrics and the flight recorder
          (default true; the bench baseline turns it off) *)
  flight_dir : string option;   (** flight-dump directory; [None] = temp dir *)
  slow_ms : float option;
      (** responses slower than this log a warning and dump the flight
          ring; [None] disables the slow-request dump *)
}

val default_config : config
(** No listeners (callers must set at least one), queue of 64, no
    default deadline, {!Frame.max_frame_default}, signals installed,
    observability on, temp-dir flight dumps, no slow threshold. *)

type summary = {
  connections : int;  (** accepted over the server's lifetime *)
  served : int;       (** requests answered [Ok] *)
  errors : int;       (** requests answered with an error *)
}

val run : config -> summary
(** Serve until drained.  Raises [Invalid_argument] when no listener is
    configured and [Unix.Unix_error] when binding fails (e.g. a stale
    socket path on another filesystem, a privileged TCP port). *)
