(** The optimizer-as-a-service daemon: a select-driven serve loop over
    Unix-domain (and optionally TCP) listeners speaking the
    length-prefixed {!Protocol} over {!Frame}s.

    Concurrency model: client connections multiplex on one event loop;
    admitted requests queue (bounded — over-admission answers [Busy]
    immediately rather than building unbounded latency) and evaluate
    one at a time on the process's shared {!Runtime.Pool} (the CLI's
    [--jobs]), so a single query already saturates the machine and two
    queries never fight for cores.  All requests share the process-wide
    warm {!Runtime.Memo} tier and the [--cache-dir] disk tier: a
    repeated query is a cache hit (~µs) regardless of which connection
    asks.

    Deadlines: each request's budget (its own [deadline_ms], or the
    server default) starts at admission.  An expired request is
    answered [Deadline] without evaluating; one that expires mid-search
    is cancelled via {!Opt.Exhaustive.Deadline_exceeded} and answered
    [Deadline] — the server and its caches stay consistent because an
    aborted search stores nothing.

    Shutdown: SIGINT / SIGTERM (when [install_signals]) or the
    [shutdown] endpoint put the loop into drain mode — no new
    connections or requests are admitted (late arrivals get
    [Shutting_down]), queued requests are answered, then listeners
    close and {!run} returns.  A second signal exits immediately.

    Telemetry: per-endpoint counters ([serve.req.*]) and latency
    histograms ([serve.queue_wait], [serve.handle.*], [serve.e2e])
    feed [--stats], the [stats] endpoint and BENCH_serve.json. *)

type config = {
  socket_path : string option;  (** Unix-domain listener (unlinked on exit) *)
  tcp : (string * int) option;  (** optional (host, port) TCP listener *)
  max_queue : int;              (** admission bound (default 64) *)
  default_deadline_ms : float option;
      (** budget for requests that set none; [None] = unlimited *)
  max_frame : int;              (** per-frame byte cap *)
  install_signals : bool;       (** drain on SIGINT/SIGTERM (default true) *)
}

val default_config : config
(** No listeners (callers must set at least one), queue of 64, no
    default deadline, {!Frame.max_frame_default}, signals installed. *)

type summary = {
  connections : int;  (** accepted over the server's lifetime *)
  served : int;       (** requests answered [Ok] *)
  errors : int;       (** requests answered with an error *)
}

val run : config -> summary
(** Serve until drained.  Raises [Invalid_argument] when no listener is
    configured and [Unix.Unix_error] when binding fails (e.g. a stale
    socket path on another filesystem, a privileged TCP port). *)
