(** Bounded, content-addressed memoization with LRU eviction and
    hit/miss accounting.

    A memo fronts an expensive pure computation (periphery / device
    characterization, yield-pin bisection, read-current solves) so that
    capacity sweeps and repeated serving requests stop recomputing
    identical work.  Keys are compared and hashed structurally, exactly
    like the ad-hoc [Hashtbl] caches this module replaces.

    All operations are domain-safe (a single mutex per memo); the
    compute callback of {!find_or_compute} runs outside the lock, so
    concurrent misses on different keys proceed in parallel.  Two
    domains racing on the same key may both compute it — for the pure
    functions memoized here both results are identical, so the cache
    stays deterministic.

    Every memo registers itself in a process-wide registry so the CLI's
    [--stats] flag and the bench harness can report hit rates without
    threading handles around. *)

type ('k, 'v) t

type stats = {
  name : string;
  capacity : int;
  length : int;
  hits : int;
  misses : int;
  evictions : int;
}

val create : ?name:string -> capacity:int -> unit -> ('k, 'v) t
(** An empty memo holding at most [capacity] entries (>= 1, or
    [Invalid_argument]).  [name] labels the registry entry. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup; counts a hit or a miss and refreshes recency on hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert (or overwrite) as most recent, evicting the least recently
    used entry when over capacity. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_opt] then, on miss, compute-and-[add].  The computation runs
    without holding the memo's lock. *)

val find_or_compute_tiered :
  ('k, 'v) t -> 'k -> load:('k -> 'v option) -> store:('k -> 'v -> unit) ->
  (unit -> 'v) -> 'v
(** Three-tier lookup: memory memo, then [load] (a slower tier such as
    a [Persist.Cache] disk log), then compute.  A [load] hit is
    promoted into the memo; a computed value goes to both the memo and
    [store].  [load]/[store]/compute all run outside the lock. *)

val length : ('k, 'v) t -> int
val stats : ('k, 'v) t -> stats

val hit_rate : stats -> float
(** hits / (hits + misses), or 0 when never consulted. *)

val occupancy : stats -> float
(** length / capacity — how full the cache is (1.0 = at capacity, so
    eviction pressure; near 0 = oversized). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (statistics are kept). *)

val reset : ('k, 'v) t -> unit
(** Drop every entry and zero the statistics. *)

val registered_stats : unit -> stats list
(** Stats of every memo created so far, in creation order. *)

val reset_all : unit -> unit
(** {!reset} every registered memo — used by benchmarks to compare cold
    runs fairly. *)

val print_stats : ?channel:out_channel -> unit -> unit
(** Text table of {!registered_stats} (one line per memo). *)
