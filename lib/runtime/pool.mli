(** Fixed-size OCaml 5 domain pool with deterministic data-parallel maps.

    The pool owns [jobs - 1] worker domains (the caller participates as
    the remaining worker) fed from a shared task queue.  All map/fold
    entry points chunk their input by index and reduce in index order,
    so for a pure [f] the result is bit-identical to the sequential
    [Array.map f] regardless of the job count or scheduling — parallel
    searches return exactly the design points the sequential code does.

    Each worker domain registers with the observability layer at spawn
    (a named [Obs] slot), so when tracing is on every worker shows up
    as its own timeline with a span per executed chunk.

    Built on stdlib [Domain] / [Mutex] / [Condition] only. *)

type t

val create : ?jobs:int -> unit -> t
(** A pool with [jobs] total workers (clamped to >= 1; default
    {!Domain.recommended_domain_count}).  [jobs = 1] spawns no domains:
    every operation degenerates to its inline sequential equivalent. *)

val jobs : t -> int
(** Total parallelism, including the calling domain. *)

val parmap : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parmap pool f arr] is [Array.map f arr] evaluated on the pool.
    Results land at the index of their input; [chunk] bounds the number
    of consecutive elements per task (default: sized for ~4 tasks per
    worker).  If any [f] raises, one of the exceptions is re-raised in
    the caller after all tasks finish.  Nested calls are permitted (the
    caller helps drain the queue, so progress is guaranteed). *)

val fold :
  ?chunk:int ->
  t ->
  map:('a -> 'b) ->
  reduce:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** Index-ordered map-reduce: maps on the pool, then folds the mapped
    values left-to-right in input order on the caller.  Deterministic
    for any [reduce], associative or not. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [parmap] over a list, preserving order. *)

val shutdown : t -> unit
(** Join the worker domains.  Must not race an in-flight [parmap];
    after shutdown the pool runs everything inline (jobs = 1
    semantics).  Idempotent. *)

val set_default_jobs : int -> unit
(** Configure the process-wide default pool used when no explicit pool
    is passed to the search entry points (e.g. the CLI's [--jobs]).
    Replaces (and shuts down) any previously created default pool. *)

val default : unit -> t
(** The process-wide default pool, created on first use (1 job unless
    {!set_default_jobs} raised it). *)

val default_jobs : unit -> int
(** Job count the default pool has (or will be created with). *)

(** {2 Per-domain storage}

    Reusable per-domain scratch (e.g. scan buffers): one value per
    domain, created lazily by [init] on that domain's first
    {!get_local}.  Workers of every pool — and the caller — each get
    their own copy, so values need no synchronization as long as they
    don't escape the domain.  Keys should be created once at module
    initialization; each {!local} call allocates a fresh DLS slot. *)

type 'a local

val local : (unit -> 'a) -> 'a local
(** Register a per-domain value with its initializer. *)

val get_local : 'a local -> 'a
(** This domain's copy, created on first use. *)
