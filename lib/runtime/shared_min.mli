(** A monotonically decreasing score shared across worker domains.

    Searches publish each incumbent score here so that other workers can
    prune against it.  The value only moves down (CAS retry loop), so a
    reader sees either [infinity] or some score that a finished
    evaluation actually achieved — a safe incumbent to prune against:
    stale reads only make pruning less aggressive, never wrong. *)

type t

val create : unit -> t
(** Starts at [infinity] (nothing published — nothing prunes). *)

val get : t -> float

val publish : t -> float -> unit
(** Lower the shared value to [x] if [x] is smaller; no-op otherwise. *)

val publish_improved : t -> float -> bool
(** Like {!publish}, and reports whether [x] actually lowered the
    value.  Lets an observer (the search journal) piggyback on the CAS
    the search already pays instead of re-reading the shared cell. *)

val reset : t -> unit
