type counter = { c_name : string; cell : int Atomic.t }

type span_state = {
  s_name : string;
  mutable s_calls : int;
  mutable s_total : float;
  s_hist : Obs.Histogram.t;  (* per-call latency distribution *)
}

let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let spans : (string, span_state) Hashtbl.t = Hashtbl.create 16

(* Bumped by [reset]; a [time] span whose epoch is stale by the time it
   completes was interrupted by a reset and is dropped, so it cannot
   leak its pre-reset start time into the zeroed table. *)
let epoch_cell = Atomic.make 0

let counter name =
  Mutex.lock lock;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
      let c = { c_name = name; cell = Atomic.make 0 } in
      Hashtbl.add counters name c;
      c
  in
  Mutex.unlock lock;
  c

let add c n = ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let value c = Atomic.get c.cell

let now = Obs.Clock.now

let span_state name =
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt spans name with
    | Some s -> s
    | None ->
      let s =
        { s_name = name;
          s_calls = 0;
          s_total = 0.0;
          s_hist = Obs.Histogram.create name }
      in
      Hashtbl.add spans name s;
      s
  in
  Mutex.unlock lock;
  s

let record_span s dt =
  Mutex.lock lock;
  s.s_calls <- s.s_calls + 1;
  s.s_total <- s.s_total +. dt;
  Mutex.unlock lock

(* The one instrumentation point of the stack: every [time] site gets a
   span total, a trace span when tracing, and a latency histogram when
   observability is enabled. *)
let time label f =
  let s = span_state label in
  let e0 = Atomic.get epoch_cell in
  let t0 = now () in
  let finish () =
    let dt = now () -. t0 in
    if Atomic.get epoch_cell = e0 then begin
      record_span s dt;
      if Obs.Control.is_enabled () then Obs.Histogram.observe s.s_hist dt
    end
  in
  Obs.Trace.with_span label (fun () ->
      match f () with
      | v ->
        finish ();
        v
      | exception e ->
        finish ();
        raise e)

type span = {
  span_name : string;
  calls : int;
  total_s : float;
}

type snapshot = {
  epoch : int;
  counters : (string * int) list;
  spans : span list;
}

let epoch () = Atomic.get epoch_cell

let snapshot () =
  Mutex.lock lock;
  let e = Atomic.get epoch_cell in
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc) counters []
  in
  let ss =
    Hashtbl.fold
      (fun _ s acc ->
        { span_name = s.s_name; calls = s.s_calls; total_s = s.s_total } :: acc)
      spans []
  in
  Mutex.unlock lock;
  { epoch = e;
    counters = List.sort compare cs;
    spans = List.sort (fun a b -> compare a.span_name b.span_name) ss }

let reset () =
  ignore (Atomic.fetch_and_add epoch_cell 1);
  Mutex.lock lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
  Hashtbl.iter
    (fun _ s ->
      s.s_calls <- 0;
      s.s_total <- 0.0)
    spans;
  Mutex.unlock lock

let print_report ?(channel = stdout) () =
  let snap = snapshot () in
  if snap.counters <> [] then begin
    Printf.fprintf channel "%-28s %12s\n" "counter" "count";
    List.iter
      (fun (name, n) -> Printf.fprintf channel "%-28s %12d\n" name n)
      snap.counters
  end;
  if snap.spans <> [] then begin
    Printf.fprintf channel "%-28s %8s %12s %14s\n" "span" "calls" "total"
      "rate";
    List.iter
      (fun s ->
        let rate =
          match List.assoc_opt s.span_name snap.counters with
          | Some n when s.total_s > 0.0 ->
            Printf.sprintf "%.0f /s" (float_of_int n /. s.total_s)
          | _ -> "-"
        in
        Printf.fprintf channel "%-28s %8d %10.3f ms %14s\n" s.span_name
          s.calls (1e3 *. s.total_s) rate)
      snap.spans
  end
