type t = float Atomic.t

let create () = Atomic.make infinity

let get = Atomic.get

let rec publish_improved t x =
  let cur = Atomic.get t in
  if x < cur then
    Atomic.compare_and_set t cur x || publish_improved t x
  else false

let publish t x = ignore (publish_improved t x)

let reset t = Atomic.set t infinity
