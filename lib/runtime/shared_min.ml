type t = float Atomic.t

let create () = Atomic.make infinity

let get = Atomic.get

let rec publish t x =
  let cur = Atomic.get t in
  if x < cur && not (Atomic.compare_and_set t cur x) then publish t x

let reset t = Atomic.set t infinity
