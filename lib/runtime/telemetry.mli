(** Lightweight process-wide telemetry: named counters and timed spans.

    Counters are atomic (safe to bump from pool workers); spans
    accumulate monotonic wall time per label on the calling domain.
    The search layers record evaluation counts and per-phase times
    here; the CLI's [--stats] flag and the bench harness read them back
    as text or export them through [core/json_out].

    {!time} is also the stack's unified observability hook: besides the
    span total, every call emits a trace span when [Obs.Trace] is
    recording and a latency observation into the [Obs.Histogram]
    registered under the span's name when observability is enabled —
    so call sites need no extra plumbing to show up in [--trace] /
    [--stats] percentiles.

    Conventions: a span and a counter may share a name (e.g.
    ["exhaustive.search"]); the report then derives a rate
    (counts per second of span time), which is how evals/sec is
    published. *)

type counter

val counter : string -> counter
(** Get or create the counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val now : unit -> float
(** Monotonic seconds ([Obs.Clock.now]): immune to wall-clock steps,
    meaningful only as differences. *)

val time : string -> (unit -> 'a) -> 'a
(** [time label f] runs [f], adding its elapsed time to span [label]
    (exceptions still account the elapsed time).  A span in flight
    across a {!reset} is dropped rather than recorded against the
    zeroed table. *)

type span = {
  span_name : string;
  calls : int;
  total_s : float;
}

type snapshot = {
  epoch : int;                     (** reset generation; see {!reset} *)
  counters : (string * int) list;  (** sorted by name *)
  spans : span list;               (** sorted by name *)
}

val snapshot : unit -> snapshot

val epoch : unit -> int
(** Current reset generation (starts at 0, +1 per {!reset}). *)

val reset : unit -> unit
(** Zero every counter and span and bump the epoch, invalidating spans
    currently in flight. *)

val print_report : ?channel:out_channel -> unit -> unit
(** Text dump of the snapshot: counters, spans, and derived rates for
    span/counter name pairs. *)
