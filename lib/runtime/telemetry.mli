(** Lightweight process-wide telemetry: named counters and timed spans.

    Counters are atomic (safe to bump from pool workers); spans
    accumulate wall-clock time per label on the calling domain.  The
    search layers record evaluation counts and per-phase times here;
    the CLI's [--stats] flag and the bench harness read them back as
    text or export them through [core/json_out].

    Conventions: a span and a counter may share a name (e.g.
    ["exhaustive.search"]); the report then derives a rate
    (counts per second of span time), which is how evals/sec is
    published. *)

type counter

val counter : string -> counter
(** Get or create the counter with this name. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val now : unit -> float
(** Wall-clock seconds (monotonic enough for span accounting). *)

val time : string -> (unit -> 'a) -> 'a
(** [time label f] runs [f], adding its wall time to span [label]
    (exceptions still account the elapsed time). *)

type span = {
  span_name : string;
  calls : int;
  total_s : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  spans : span list;               (** sorted by name *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every counter and span. *)

val print_report : ?channel:out_channel -> unit -> unit
(** Text dump of the snapshot: counters, spans, and derived rates for
    span/counter name pairs. *)
