type t = {
  mutable jobs : int;
  lock : Mutex.t;
  work : (unit -> unit) Queue.t;
  pending : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      if t.closed then None
      else if Queue.is_empty t.work then begin
        Condition.wait t.pending t.lock;
        next ()
      end
      else Some (Queue.pop t.work)
    in
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some job ->
      job ();
      loop ()
  in
  loop ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    { jobs;
      lock = Mutex.create ();
      work = Queue.create ();
      pending = Condition.create ();
      closed = false;
      workers = [] }
  in
  if jobs > 1 then
    t.workers <-
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              (* Label this domain's trace timeline (the caller
                 participates as worker 0). *)
              Obs.Control.set_worker_name (Printf.sprintf "worker-%d" (i + 1));
              worker t ()));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.pending;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- [];
  t.jobs <- 1

let parmap ?chunk t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.jobs <= 1 || n = 1 then Array.map f arr
  else begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 ((n + (4 * t.jobs) - 1) / (4 * t.jobs))
    in
    let chunks = (n + chunk - 1) / chunk in
    let res = Array.make n None in
    let error = Atomic.make None in
    let remaining = Atomic.make chunks in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    let run_chunk c () =
      let lo = c * chunk and hi = min (n - 1) (((c + 1) * chunk) - 1) in
      Obs.Trace.with_span "pool.chunk" (fun () ->
          try
            for i = lo to hi do
              res.(i) <- Some (f arr.(i))
            done
          with e -> ignore (Atomic.compare_and_set error None (Some e)));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_lock;
        Condition.broadcast done_cond;
        Mutex.unlock done_lock
      end
    in
    Mutex.lock t.lock;
    for c = 1 to chunks - 1 do
      Queue.push (run_chunk c) t.work
    done;
    Condition.broadcast t.pending;
    Mutex.unlock t.lock;
    run_chunk 0 ();
    (* Help drain the queue, then wait for straggler chunks running on
       worker domains. *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock t.lock;
        let job =
          if Queue.is_empty t.work then None else Some (Queue.pop t.work)
        in
        Mutex.unlock t.lock;
        match job with
        | Some job ->
          job ();
          help ()
        | None ->
          Mutex.lock done_lock;
          while Atomic.get remaining > 0 do
            Condition.wait done_cond done_lock
          done;
          Mutex.unlock done_lock
      end
    in
    help ();
    (match Atomic.get error with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) res
  end

let fold ?chunk t ~map ~reduce ~init arr =
  Array.fold_left reduce init (parmap ?chunk t map arr)

let map_list ?chunk t f l = Array.to_list (parmap ?chunk t f (Array.of_list l))

(* ----- process-wide default pool ----- *)

let default_lock = Mutex.create ()
let default_pool : t option ref = ref None
let requested_jobs = ref 1

let set_default_jobs n =
  Mutex.lock default_lock;
  let previous = !default_pool in
  requested_jobs := max 1 n;
  default_pool := None;
  Mutex.unlock default_lock;
  match previous with None -> () | Some p -> shutdown p

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create ~jobs:!requested_jobs () in
      default_pool := Some p;
      p
  in
  Mutex.unlock default_lock;
  pool

let default_jobs () =
  Mutex.lock default_lock;
  let n = match !default_pool with Some p -> p.jobs | None -> !requested_jobs in
  Mutex.unlock default_lock;
  n

(* ----- per-domain storage -----

   A thin veneer over [Domain.DLS]: one value per domain, created
   lazily the first time that domain asks.  Scan buffers and other
   reusable scratch live here so a parallel sweep allocates one buffer
   per domain for the process lifetime, not one per chunk — and jobs=1
   runs always hit the same warm buffer. *)

type 'a local = 'a Domain.DLS.key

let local init = Domain.DLS.new_key init

let get_local key = Domain.DLS.get key
