type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;  (* toward most recent *)
  mutable next : ('k, 'v) node option;  (* toward least recent *)
}

type ('k, 'v) t = {
  name : string;
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;  (* most recently used *)
  mutable last : ('k, 'v) node option;   (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

type stats = {
  name : string;
  capacity : int;
  length : int;
  hits : int;
  misses : int;
  evictions : int;
}

let registry_lock = Mutex.create ()
let registry : (unit -> stats) list ref = ref []
let resetters : (unit -> unit) list ref = ref []

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.first <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  (match t.first with
   | Some f -> f.prev <- Some node
   | None -> t.last <- Some node);
  t.first <- Some node

let stats_locked (t : (_, _) t) =
  { name = t.name;
    capacity = t.capacity;
    length = Hashtbl.length t.table;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions }

let stats t =
  Mutex.lock t.lock;
  let s = stats_locked t in
  Mutex.unlock t.lock;
  s

let clear_locked t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let clear t =
  Mutex.lock t.lock;
  clear_locked t;
  Mutex.unlock t.lock

let reset t =
  Mutex.lock t.lock;
  clear_locked t;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Mutex.unlock t.lock

let create ?(name = "memo") ~capacity () =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be >= 1";
  let t =
    { name;
      capacity;
      table = Hashtbl.create (min capacity 64);
      first = None;
      last = None;
      hits = 0;
      misses = 0;
      evictions = 0;
      lock = Mutex.create () }
  in
  Mutex.lock registry_lock;
  registry := (fun () -> stats t) :: !registry;
  resetters := (fun () -> reset t) :: !resetters;
  Mutex.unlock registry_lock;
  t

(* One shared latency histogram across every memo: lookups contend on
   the same kind of lock + hashtable work, and a single site keeps the
   [--stats] table compact.  Sampled 1-in-16 per domain. *)
let lookup_hist = Obs.Histogram.create ~sample:16 "memo.lookup"

let find_opt t k =
  let sampled = Obs.Histogram.tick lookup_hist in
  let t0 = if sampled then Obs.Clock.now () else 0.0 in
  Mutex.lock t.lock;
  let v =
    match Hashtbl.find_opt t.table k with
    | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value
    | None ->
      t.misses <- t.misses + 1;
      None
  in
  Mutex.unlock t.lock;
  if sampled then Obs.Histogram.observe lookup_hist (Obs.Clock.now () -. t0);
  v

let add t k v =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table k with
   | Some old ->
     unlink t old;
     Hashtbl.remove t.table k
   | None -> ());
  let node = { key = k; value = v; prev = None; next = None } in
  Hashtbl.replace t.table k node;
  push_front t node;
  if Hashtbl.length t.table > t.capacity then begin
    match t.last with
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.key;
      t.evictions <- t.evictions + 1
    | None -> ()
  end;
  Mutex.unlock t.lock

let find_or_compute t k f =
  match find_opt t k with
  | Some v -> v
  | None ->
    let v = f () in
    add t k v;
    v

let find_or_compute_tiered t k ~load ~store f =
  match find_opt t k with
  | Some v -> v
  | None -> (
    match load k with
    | Some v ->
      add t k v;
      v
    | None ->
      let v = f () in
      add t k v;
      store k v;
      v)

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let occupancy (s : stats) = float_of_int s.length /. float_of_int s.capacity

let registered_stats () =
  Mutex.lock registry_lock;
  let fs = List.rev !registry in
  Mutex.unlock registry_lock;
  List.map (fun f -> f ()) fs

let reset_all () =
  Mutex.lock registry_lock;
  let fs = !resetters in
  Mutex.unlock registry_lock;
  List.iter (fun f -> f ()) fs

let print_stats ?(channel = stdout) () =
  let rows = registered_stats () in
  Printf.fprintf channel "%-28s %9s %6s %9s %9s %9s %8s\n" "memo" "size"
    "occup" "hits" "misses" "evicted" "hit rate";
  List.iter
    (fun (s : stats) ->
      Printf.fprintf channel "%-28s %4d/%-4d %5.0f%% %9d %9d %9d %7.1f%%\n"
        s.name s.length s.capacity
        (100.0 *. occupancy s)
        s.hits s.misses s.evictions
        (100.0 *. hit_rate s))
    rows
