(** Interconnect delay / switching-energy components — Table 2 of the
    paper, evaluated through Equation (1):

      D = C dV / I        E_sw = C V dV

    with C from {!Caps}, I from {!Currents}, and (V, dV) per the table's
    rows.  Components with zero voltage change cost nothing. *)

type de = { delay : float; energy : float }

type assist = {
  vddc : float;  (** read-assist cell supply (Vdd boost level) *)
  vssc : float;  (** read-assist cell ground (negative, or 0) *)
  vwl : float;   (** write-assist wordline level (WL overdrive) *)
}

val no_assist : assist
(** All rails at nominal: vddc = vdd, vssc = 0, vwl = vdd. *)

val equation1 : c:float -> v:float -> dv:float -> i:float -> de
(** Equation (1) itself: D = C dV / I, E = C V dV, and [{0; 0}] when
    [dv <= 0].  The staged evaluation kernel re-prices components from
    hoisted (C, V, dV, I) operands through this exact function, which is
    what makes its results bit-identical to the component helpers
    below. *)

val cvdd : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val cvss : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val wl_read : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val wl_write : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val col : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val bl_read : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val bl_write : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val precharge_read : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
val precharge_write : Caps.device_caps -> Currents.t -> Geometry.t -> assist -> de
