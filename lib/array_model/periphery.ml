type t = {
  row_decoder : Gates.Decoder.result array;
  col_decoder : Gates.Decoder.result array;
  driver_delay : float;
  driver_energy : float;
  sense_delay : float;
  sense_energy : float;
  write_cell_delay : Numerics.Interp.Table1d.t;
  write_cell_energy : float;
  p_leak_cell : float;
}

let max_address_bits = 14

let characterize ?(delta_vs = Finfet.Tech.delta_v_sense) ~lib ~cell_flavor () =
  let nfet = Finfet.Library.nfet lib Finfet.Library.Lvt in
  let pfet = Finfet.Library.pfet lib Finfet.Library.Lvt in
  let driver = Gates.Superbuffer.default_wl_driver ~nfet ~pfet in
  let c_out = Gates.Superbuffer.input_cap driver in
  let dec = Gates.Decoder.characterize ~nfet ~pfet ~max_bits:max_address_bits ~c_out in
  let sa = Gates.Sense_amp.default ~nfet ~pfet in
  let vdd = Finfet.Tech.vdd_nominal in
  let cell =
    Finfet.Variation.nominal_cell
      ~nfet:(Finfet.Library.nfet lib cell_flavor)
      ~pfet:(Finfet.Library.pfet lib cell_flavor)
  in
  let vwl_grid = [| 0.42; 0.46; 0.50; 0.54; 0.58; 0.64; 0.72 |] in
  let delay_at vwl =
    let r = Sram_cell.Dynamics.write_delay ~cell (Sram_cell.Sram6t.write0 ~vwl ()) in
    if r.Sram_cell.Dynamics.flipped then r.Sram_cell.Dynamics.delay
    else 50e-12 (* failed writes are priced prohibitively, never optimal *)
  in
  let write_cell_delay =
    Numerics.Interp.Table1d.create vwl_grid (Array.map delay_at vwl_grid)
  in
  let c_node = Sram_cell.Sram6t.storage_node_cap cell in
  { row_decoder = dec;
    col_decoder = dec;
    driver_delay = Gates.Superbuffer.first_stages_delay driver;
    driver_energy = Gates.Superbuffer.first_stages_energy driver ~vdd;
    sense_delay = Gates.Sense_amp.delay sa ~delta_v:delta_vs;
    sense_energy = Gates.Sense_amp.energy sa ~vdd;
    write_cell_delay;
    write_cell_energy = 2.0 *. c_node *. vdd *. vdd;
    p_leak_cell = Sram_cell.Leakage.power ~cell ();
  }

let shared_cache : (Finfet.Library.flavor, t) Runtime.Memo.t =
  Runtime.Memo.create ~name:"periphery.characterize" ~capacity:8 ()

let shared ~cell_flavor =
  Runtime.Memo.find_or_compute shared_cache cell_flavor (fun () ->
      Runtime.Telemetry.time "periphery.characterize" (fun () ->
          characterize ~lib:(Lazy.force Finfet.Library.default) ~cell_flavor ()))

let row_dec t ~bits =
  assert (bits >= 0 && bits < Array.length t.row_decoder);
  t.row_decoder.(bits)

let col_dec t ~bits =
  assert (bits >= 0 && bits < Array.length t.col_decoder);
  t.col_decoder.(bits)

let write_delay t ~vwl = Numerics.Interp.Table1d.eval t.write_cell_delay vwl
