type de = { delay : float; energy : float }

type assist = {
  vddc : float;
  vssc : float;
  vwl : float;
}

let vdd = Finfet.Tech.vdd_nominal

let no_assist = { vddc = vdd; vssc = 0.0; vwl = vdd }

(* Equation (1); a component whose rail does not move is free. *)
let de ~c ~v ~dv ~i =
  if dv <= 0.0 then { delay = 0.0; energy = 0.0 }
  else begin
    assert (i > 0.0);
    { delay = c *. dv /. i; energy = c *. v *. dv }
  end

let equation1 = de

let cvdd d cur g a =
  de ~c:(Caps.cvdd d g) ~v:vdd ~dv:(a.vddc -. vdd)
    ~i:(Currents.cvdd_driver cur ~vddc:a.vddc)

let cvss d cur g a =
  de ~c:(Caps.cvss d g) ~v:vdd ~dv:(abs_float a.vssc)
    ~i:(Currents.cvss_driver cur ~vssc:a.vssc)

let wl_read d cur g _a =
  de ~c:(Caps.wl d g) ~v:vdd ~dv:vdd ~i:(Currents.wl_read cur)

let wl_write d cur g a =
  de ~c:(Caps.wl d g) ~v:vdd ~dv:a.vwl ~i:(Currents.wl_write cur ~vwl:a.vwl)

let col d cur g _a =
  if not (Geometry.has_column_mux g) then { delay = 0.0; energy = 0.0 }
  else de ~c:(Caps.col d g) ~v:vdd ~dv:vdd ~i:(Currents.col_driver cur)

let bl_read d cur g a =
  de ~c:(Caps.bl d g)
    ~v:(a.vddc -. a.vssc)
    ~dv:Finfet.Tech.delta_v_sense
    ~i:(Currents.read_current cur ~vddc:a.vddc ~vssc:a.vssc)

let bl_write d cur g _a =
  de ~c:(Caps.bl d g) ~v:vdd ~dv:vdd ~i:(Currents.bl_write cur ~n_wr:g.Geometry.n_wr)

let precharge_read d cur g _a =
  de ~c:(Caps.bl d g) ~v:vdd ~dv:Finfet.Tech.delta_v_sense
    ~i:(Currents.precharge cur ~n_pre:g.Geometry.n_pre)

let precharge_write d cur g _a =
  de ~c:(Caps.bl d g) ~v:vdd ~dv:vdd
    ~i:(Currents.precharge cur ~n_pre:g.Geometry.n_pre)
