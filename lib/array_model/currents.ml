type t = {
  nfet_per : Finfet.Device.params;  (* LVT periphery devices *)
  pfet_per : Finfet.Device.params;
  lib : Finfet.Library.t;
  cell_flavor : Finfet.Library.flavor;
  read_current_model :
    [ `Simulated | `Paper_fit | `Custom of vddc:float -> vssc:float -> float ];
  read_cache : (float * float, float) Runtime.Memo.t;
}

let create ~lib ~cell_flavor ~read_current_model =
  { nfet_per = Finfet.Library.nfet lib Finfet.Library.Lvt;
    pfet_per = Finfet.Library.pfet lib Finfet.Library.Lvt;
    lib;
    cell_flavor;
    read_current_model;
    (* Domain-safe: the exhaustive search hits this from pool workers.
       A search only ever sees |vssc_values| distinct keys, so the bound
       is generous. *)
    read_cache = Runtime.Memo.create ~name:"currents.read" ~capacity:1024 () }

let vdd = Finfet.Tech.vdd_nominal

let i_on_pfet t = Finfet.Device.i_on t.pfet_per ()

let i_on_tg t =
  Finfet.Device.ids t.nfet_per ~vgs:vdd ~vds:(0.5 *. vdd)
  +. Finfet.Device.ids t.pfet_per ~vgs:vdd ~vds:(0.5 *. vdd)

let rail_fins = float_of_int Gates.Superbuffer.rail_driver_fins
let wl_fins = float_of_int Gates.Superbuffer.wl_driver_fins

let cvdd_driver t ~vddc =
  (* PFET mux pulling the row's supply rail up to the boosted level. *)
  0.30 *. rail_fins *. Finfet.Device.ids t.pfet_per ~vgs:vddc ~vds:vddc

let cvss_driver t ~vssc =
  (* NFET mux pulling the row's ground rail down to the negative level;
     its gate drive spans vdd - vssc, its available swing |vssc|. *)
  let swing = max (-.vssc) 0.02 in
  0.15 *. rail_fins *. Finfet.Device.ids t.nfet_per ~vgs:(vdd -. vssc) ~vds:swing

let wl_read t = 0.25 *. wl_fins *. i_on_pfet t

let wl_write t ~vwl =
  0.18 *. wl_fins *. Finfet.Device.ids t.pfet_per ~vgs:vwl ~vds:vwl

let col_driver t = 0.33 *. wl_fins *. i_on_pfet t

let bl_write t ~n_wr = 0.50 *. float_of_int n_wr *. i_on_tg t

let precharge t ~n_pre = 0.50 *. float_of_int n_pre *. i_on_pfet t

let read_current t ~vddc ~vssc =
  match t.read_current_model with
  | `Paper_fit -> Finfet.Calibration.paper_read_current ~vddc ~vssc
  | `Custom f -> f ~vddc ~vssc
  | `Simulated ->
    Runtime.Memo.find_or_compute t.read_cache (vddc, vssc) (fun () ->
        Finfet.Library.i_read t.lib t.cell_flavor ~vddc ~vssc)
