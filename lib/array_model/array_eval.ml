type accounting = Paper_strict | Physical

type env = {
  lib : Finfet.Library.t;
  cell_flavor : Finfet.Library.flavor;
  currents : Currents.t;
  periphery : Periphery.t;
  dcaps : Caps.device_caps;
  alpha : float;
  beta : float;
  dcdc_overhead : float;
  accounting : accounting;
}

let make_env ?(alpha = 0.5) ?(beta = 0.5) ?(dcdc_overhead = 1.25)
    ?(accounting = Paper_strict) ?(read_current_model = `Simulated)
    ?cell_width_factor ~cell_flavor () =
  let lib = Lazy.force Finfet.Library.default in
  let currents = Currents.create ~lib ~cell_flavor ~read_current_model in
  let periphery = Periphery.shared ~cell_flavor in
  let dcaps =
    Caps.device_caps_of ?cell_width_factor
      ~nfet:(Finfet.Library.nfet lib cell_flavor)
      ~pfet:(Finfet.Library.pfet lib cell_flavor)
      ()
  in
  { lib; cell_flavor; currents; periphery; dcaps; alpha; beta; dcdc_overhead;
    accounting }

type metrics = {
  d_read : float;
  d_write : float;
  d_array : float;
  e_read : float;
  e_write : float;
  e_switching : float;
  e_leakage : float;
  e_total : float;
  edp : float;
  d_bl_read : float;
  d_row_path_read : float;
  d_col_path : float;
}

let vdd = Finfet.Tech.vdd_nominal

let evaluate env (g : Geometry.t) (a : Components.assist) =
  let open Components in
  let d = env.dcaps and cur = env.currents and per = env.periphery in
  let cvdd = Components.cvdd d cur g a in
  let cvss = Components.cvss d cur g a in
  let wl_rd = Components.wl_read d cur g a in
  let wl_wr = Components.wl_write d cur g a in
  let col = Components.col d cur g a in
  let bl_rd = Components.bl_read d cur g a in
  let bl_wr = Components.bl_write d cur g a in
  let pre_rd = Components.precharge_read d cur g a in
  let pre_wr = Components.precharge_write d cur g a in
  let row_dec = Periphery.row_dec per ~bits:(Geometry.row_address_bits g) in
  let col_dec = Periphery.col_dec per ~bits:(Geometry.column_address_bits g) in
  (* --- Table 3: delays --- *)
  let d_row_path_read =
    row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. wl_rd.delay
  in
  let d_col_path =
    if Geometry.has_column_mux g then
      col_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. col.delay
    else 0.0
  in
  let d_read =
    max (d_row_path_read +. bl_rd.delay) d_col_path
    +. per.Periphery.sense_delay +. pre_rd.delay
  in
  let d_write_cell = Periphery.write_delay per ~vwl:a.vwl in
  let d_row_path_write =
    row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. wl_wr.delay
  in
  let d_write =
    max d_row_path_write (d_col_path +. bl_wr.delay)
    +. d_write_cell +. pre_wr.delay
  in
  let d_array = max d_read d_write in
  (* --- Table 3: switching energies --- *)
  let assist_scaled e = env.dcdc_overhead *. e in
  let e_cvdd = assist_scaled cvdd.energy in
  let e_cvss = assist_scaled cvss.energy in
  let e_wl_wr = if a.vwl > vdd then assist_scaled wl_wr.energy else wl_wr.energy in
  let nc = float_of_int g.Geometry.nc in
  (* A row narrower than the access width is read/written whole. *)
  let w = float_of_int (min g.Geometry.w g.Geometry.nc) in
  let n_unselected = max 0.0 (nc -. w) in
  let e_read, e_write =
    match env.accounting with
    | Paper_strict ->
      let e_read =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_rd.energy +. bl_rd.energy +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy
        +. per.Periphery.sense_energy +. pre_rd.energy +. e_cvdd +. e_cvss
      in
      let e_write =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_wr.energy +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy +. bl_wr.energy
        +. per.Periphery.write_cell_energy +. pre_wr.energy
      in
      (e_read, e_write)
    | Physical ->
      (* Every cell under the active word line conducts, so all n_c
         bitlines discharge and are re-precharged on a read; W sense amps
         evaluate.  A write swings W bitlines rail-to-rail and disturbs
         the other n_c - W columns by a read-like Delta V_S dip (priced at
         nominal rails: write operations carry no read assists). *)
      let c_bl = Caps.bl d g in
      let disturb = 2.0 *. c_bl *. vdd *. Finfet.Tech.delta_v_sense in
      let e_read =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_rd.energy
        +. (nc *. (bl_rd.energy +. pre_rd.energy))
        +. col_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. col.energy
        +. (w *. per.Periphery.sense_energy)
        +. e_cvdd +. e_cvss
      in
      let e_write =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. e_wl_wr +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy
        +. (w *. (bl_wr.energy +. per.Periphery.write_cell_energy +. pre_wr.energy))
        +. (n_unselected *. disturb)
      in
      (e_read, e_write)
  in
  (* --- Equations (2)-(5) --- *)
  let e_switching = (env.beta *. e_read) +. ((1.0 -. env.beta) *. e_write) in
  let m = float_of_int (Geometry.capacity_bits g) in
  let e_leakage = m *. per.Periphery.p_leak_cell *. d_array in
  let e_total = (env.alpha *. e_switching) +. e_leakage in
  { d_read; d_write; d_array;
    e_read; e_write; e_switching; e_leakage; e_total;
    edp = e_total *. d_array;
    d_bl_read = bl_rd.delay;
    d_row_path_read;
    d_col_path }

let edp env g a = (evaluate env g a).edp

(* ----- staged evaluation kernel -----

   [evaluate] recomputes, for every (geometry, assist) pair, work that
   depends on only one of the two coordinates: wire capacitances, decoder
   characterization and the assist-blind Table 2 components depend only
   on the geometry, while the assist-rail drive currents and the write
   cell delay depend only on the assist.  The kernel hoists both sides:
   [stage] captures everything geometry-determined, [prepare] everything
   assist-determined, and [complete] finishes the cross terms — a few
   dozen float operations, no table lookups, no memo locks.

   Bit-identity with [evaluate] is by construction: every hoisted leaf is
   produced by the same expression (often the same function) as the
   reference path, and [complete] re-runs the combining arithmetic in the
   reference path's exact association order. *)

let stage_counter = Runtime.Telemetry.counter "array_eval.stage"

(* Latency distributions of the two kernel stages, sampled so the ~60 ns
   clock reads stay invisible next to the ~100 ns [complete] hot path
   (the [tick] fast path is one atomic load when observability is off). *)
let stage_hist = Obs.Histogram.create ~sample:64 "array_eval.stage"
let eval_hist = Obs.Histogram.create ~sample:128 "array_eval.eval_staged"

type staged = {
  st_env : env;
  st_geometry : Geometry.t;
  (* Equation (1) C operands that depend on the geometry *)
  c_cvdd : float;
  c_cvss : float;
  c_wl : float;
  c_bl : float;
  (* assist-blind components, fully priced *)
  st_wl_rd : Components.de;
  st_col : Components.de;
  st_bl_wr : Components.de;
  st_pre_rd : Components.de;
  st_pre_wr : Components.de;
  st_row_dec : Gates.Decoder.result;
  st_col_dec : Gates.Decoder.result;
  (* pre-folded delay/energy prefixes (reference association order) *)
  d_row_prefix : float;      (* row_dec + driver *)
  st_d_row_path_read : float;
  st_d_col_path : float;
  e_rowdrv : float;          (* row_dec.energy + driver_energy *)
  e_rd_prefix : float;       (* e_rowdrv + wl_rd.energy *)
  (* Physical-accounting geometry terms *)
  nc_f : float;
  w_f : float;
  n_unselected : float;
  disturb : float;
  w_sense_energy : float;    (* w * sense_energy *)
  w_write_term : float;      (* w * (bl_wr.e + write_cell_e + pre_wr.e) *)
  disturb_term : float;      (* n_unselected * disturb *)
  (* leakage slope: M * P_leak,cell *)
  mp_leak : float;
}

let stage_core env (g : Geometry.t) =
  Runtime.Telemetry.incr stage_counter;
  let d = env.dcaps and cur = env.currents and per = env.periphery in
  (* These components ignore the assist argument. *)
  let a0 = Components.no_assist in
  let wl_rd = Components.wl_read d cur g a0 in
  let col = Components.col d cur g a0 in
  let bl_wr = Components.bl_write d cur g a0 in
  let pre_rd = Components.precharge_read d cur g a0 in
  let pre_wr = Components.precharge_write d cur g a0 in
  let row_dec = Periphery.row_dec per ~bits:(Geometry.row_address_bits g) in
  let col_dec = Periphery.col_dec per ~bits:(Geometry.column_address_bits g) in
  let d_row_prefix = row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay in
  let d_col_path =
    if Geometry.has_column_mux g then
      col_dec.Gates.Decoder.delay +. per.Periphery.driver_delay
      +. col.Components.delay
    else 0.0
  in
  let nc = float_of_int g.Geometry.nc in
  let w = float_of_int (min g.Geometry.w g.Geometry.nc) in
  let n_unselected = max 0.0 (nc -. w) in
  let c_bl = Caps.bl d g in
  let disturb = 2.0 *. c_bl *. vdd *. Finfet.Tech.delta_v_sense in
  let e_rowdrv = row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy in
  { st_env = env;
    st_geometry = g;
    c_cvdd = Caps.cvdd d g;
    c_cvss = Caps.cvss d g;
    c_wl = Caps.wl d g;
    c_bl;
    st_wl_rd = wl_rd;
    st_col = col;
    st_bl_wr = bl_wr;
    st_pre_rd = pre_rd;
    st_pre_wr = pre_wr;
    st_row_dec = row_dec;
    st_col_dec = col_dec;
    d_row_prefix;
    st_d_row_path_read = d_row_prefix +. wl_rd.Components.delay;
    st_d_col_path = d_col_path;
    e_rowdrv;
    e_rd_prefix = e_rowdrv +. wl_rd.Components.energy;
    nc_f = nc;
    w_f = w;
    n_unselected;
    disturb;
    w_sense_energy = w *. per.Periphery.sense_energy;
    w_write_term =
      w
      *. (bl_wr.Components.energy +. per.Periphery.write_cell_energy
          +. pre_wr.Components.energy);
    disturb_term = n_unselected *. disturb;
    mp_leak =
      float_of_int (Geometry.capacity_bits g) *. per.Periphery.p_leak_cell }

let stage env g =
  if Obs.Histogram.tick stage_hist then begin
    let t0 = Obs.Clock.now () in
    let st = stage_core env g in
    Obs.Histogram.observe stage_hist (Obs.Clock.now () -. t0);
    st
  end
  else stage_core env g

type prepared = {
  p_assist : Components.assist;
  dv_cvdd : float;
  i_cvdd : float;
  dv_cvss : float;
  i_cvss : float;
  dv_wl_wr : float;
  i_wl_wr : float;
  v_bl_rd : float;
  i_bl_rd : float;
  p_d_write_cell : float;
  wl_boosted : bool;
}

let prepare env (a : Components.assist) =
  let cur = env.currents and per = env.periphery in
  { p_assist = a;
    dv_cvdd = a.Components.vddc -. vdd;
    i_cvdd = Currents.cvdd_driver cur ~vddc:a.Components.vddc;
    dv_cvss = abs_float a.Components.vssc;
    i_cvss = Currents.cvss_driver cur ~vssc:a.Components.vssc;
    dv_wl_wr = a.Components.vwl;
    i_wl_wr = Currents.wl_write cur ~vwl:a.Components.vwl;
    v_bl_rd = a.Components.vddc -. a.Components.vssc;
    i_bl_rd =
      Currents.read_current cur ~vddc:a.Components.vddc ~vssc:a.Components.vssc;
    p_d_write_cell = Periphery.write_delay per ~vwl:a.Components.vwl;
    wl_boosted = a.Components.vwl > vdd }

(* The shared completion: prices the four assist-dependent components from
   hoisted operands and re-runs the Table 3 / Equations (2)-(5) arithmetic
   in [evaluate]'s association order.  [e_wl_scale] abstracts the one
   conditional that differs between an actual assist (vwl > vdd) and the
   lower envelope (all enveloped assists boosted). *)
let complete_parts st ~dv_cvdd ~i_cvdd ~dv_cvss ~i_cvss ~dv_wl_wr ~i_wl_wr
    ~v_bl_rd ~i_bl_rd ~d_write_cell ~wl_boosted =
  let env = st.st_env in
  let per = env.periphery in
  let cvdd = Components.equation1 ~c:st.c_cvdd ~v:vdd ~dv:dv_cvdd ~i:i_cvdd in
  let cvss = Components.equation1 ~c:st.c_cvss ~v:vdd ~dv:dv_cvss ~i:i_cvss in
  let wl_wr = Components.equation1 ~c:st.c_wl ~v:vdd ~dv:dv_wl_wr ~i:i_wl_wr in
  let bl_rd =
    Components.equation1 ~c:st.c_bl ~v:v_bl_rd ~dv:Finfet.Tech.delta_v_sense
      ~i:i_bl_rd
  in
  (* --- Table 3: delays --- *)
  let d_row_path_read = st.st_d_row_path_read in
  let d_col_path = st.st_d_col_path in
  let d_read =
    max (d_row_path_read +. bl_rd.Components.delay) d_col_path
    +. per.Periphery.sense_delay +. st.st_pre_rd.Components.delay
  in
  let d_row_path_write = st.d_row_prefix +. wl_wr.Components.delay in
  let d_write =
    max d_row_path_write (d_col_path +. st.st_bl_wr.Components.delay)
    +. d_write_cell +. st.st_pre_wr.Components.delay
  in
  let d_array = max d_read d_write in
  (* --- Table 3: switching energies --- *)
  let assist_scaled e = env.dcdc_overhead *. e in
  let e_cvdd = assist_scaled cvdd.Components.energy in
  let e_cvss = assist_scaled cvss.Components.energy in
  let e_wl_wr =
    if wl_boosted then assist_scaled wl_wr.Components.energy
    else wl_wr.Components.energy
  in
  let e_read, e_write =
    match env.accounting with
    | Paper_strict ->
      let e_read =
        st.e_rd_prefix +. bl_rd.Components.energy
        +. st.st_col_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. st.st_col.Components.energy +. per.Periphery.sense_energy
        +. st.st_pre_rd.Components.energy +. e_cvdd +. e_cvss
      in
      let e_write =
        st.e_rowdrv +. wl_wr.Components.energy
        +. st.st_col_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. st.st_col.Components.energy +. st.st_bl_wr.Components.energy
        +. per.Periphery.write_cell_energy +. st.st_pre_wr.Components.energy
      in
      (e_read, e_write)
    | Physical ->
      let e_read =
        st.e_rd_prefix
        +. (st.nc_f
            *. (bl_rd.Components.energy +. st.st_pre_rd.Components.energy))
        +. st.st_col_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. st.st_col.Components.energy +. st.w_sense_energy +. e_cvdd
        +. e_cvss
      in
      let e_write =
        st.e_rowdrv +. e_wl_wr +. st.st_col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. st.st_col.Components.energy
        +. st.w_write_term +. st.disturb_term
      in
      (e_read, e_write)
  in
  (* --- Equations (2)-(5) --- *)
  let e_switching = (env.beta *. e_read) +. ((1.0 -. env.beta) *. e_write) in
  let e_leakage = st.mp_leak *. d_array in
  let e_total = (env.alpha *. e_switching) +. e_leakage in
  { d_read; d_write; d_array;
    e_read; e_write; e_switching; e_leakage; e_total;
    edp = e_total *. d_array;
    d_bl_read = bl_rd.Components.delay;
    d_row_path_read;
    d_col_path }

let complete_core st (p : prepared) =
  complete_parts st ~dv_cvdd:p.dv_cvdd ~i_cvdd:p.i_cvdd ~dv_cvss:p.dv_cvss
    ~i_cvss:p.i_cvss ~dv_wl_wr:p.dv_wl_wr ~i_wl_wr:p.i_wl_wr
    ~v_bl_rd:p.v_bl_rd ~i_bl_rd:p.i_bl_rd ~d_write_cell:p.p_d_write_cell
    ~wl_boosted:p.wl_boosted

let complete st (p : prepared) =
  if Obs.Histogram.tick eval_hist then begin
    let t0 = Obs.Clock.now () in
    let m = complete_core st p in
    Obs.Histogram.observe eval_hist (Obs.Clock.now () -. t0);
    m
  end
  else complete_core st p

let eval_staged st a = complete st (prepare st.st_env a)

(* ----- admissible lower envelope -----

   Across a vssc scan only four components move.  Taking, per Equation (1)
   operand, the extreme that minimizes the component (smallest dV and V,
   largest I) yields component values that lower-bound the component at
   every enveloped assist; since every combining operation in
   [complete_parts] (+., *., /., max, all on non-negative operands) is
   monotone under IEEE rounding, the resulting metrics lower-bound every
   actual metrics field — no epsilon needed.  The envelope's fields are
   per-field bounds; they are generally not attained by any single
   assist. *)

type envelope = {
  b_dv_cvdd : float;
  b_i_cvdd : float;
  b_dv_cvss : float;
  b_i_cvss : float;
  b_dv_wl_wr : float;
  b_i_wl_wr : float;
  b_v_bl_rd : float;
  b_i_bl_rd : float;
  b_d_write_cell : float;
  b_wl_boosted_all : bool;
}

let envelope (ps : prepared array) =
  if Array.length ps = 0 then invalid_arg "Array_eval.envelope: empty";
  Array.fold_left
    (fun acc p ->
      { b_dv_cvdd = min acc.b_dv_cvdd p.dv_cvdd;
        b_i_cvdd = max acc.b_i_cvdd p.i_cvdd;
        b_dv_cvss = min acc.b_dv_cvss p.dv_cvss;
        b_i_cvss = max acc.b_i_cvss p.i_cvss;
        b_dv_wl_wr = min acc.b_dv_wl_wr p.dv_wl_wr;
        b_i_wl_wr = max acc.b_i_wl_wr p.i_wl_wr;
        b_v_bl_rd = min acc.b_v_bl_rd p.v_bl_rd;
        b_i_bl_rd = max acc.b_i_bl_rd p.i_bl_rd;
        b_d_write_cell = min acc.b_d_write_cell p.p_d_write_cell;
        b_wl_boosted_all = acc.b_wl_boosted_all && p.wl_boosted })
    { b_dv_cvdd = ps.(0).dv_cvdd;
      b_i_cvdd = ps.(0).i_cvdd;
      b_dv_cvss = ps.(0).dv_cvss;
      b_i_cvss = ps.(0).i_cvss;
      b_dv_wl_wr = ps.(0).dv_wl_wr;
      b_i_wl_wr = ps.(0).i_wl_wr;
      b_v_bl_rd = ps.(0).v_bl_rd;
      b_i_bl_rd = ps.(0).i_bl_rd;
      b_d_write_cell = ps.(0).p_d_write_cell;
      b_wl_boosted_all = ps.(0).wl_boosted }
    ps

let bound_metrics st (b : envelope) =
  (* A mixed-boost envelope must use the smaller of the two possible
     scalings for the WL-overdrive write energy; 1.0 *. e = e exactly, so
     the all-boosted case reproduces [complete]'s scaled value. *)
  let wl_boosted =
    b.b_wl_boosted_all || st.st_env.dcdc_overhead < 1.0
  in
  complete_parts st ~dv_cvdd:b.b_dv_cvdd ~i_cvdd:b.b_i_cvdd
    ~dv_cvss:b.b_dv_cvss ~i_cvss:b.b_i_cvss ~dv_wl_wr:b.b_dv_wl_wr
    ~i_wl_wr:b.b_i_wl_wr ~v_bl_rd:b.b_v_bl_rd ~i_bl_rd:b.b_i_bl_rd
    ~d_write_cell:b.b_d_write_cell ~wl_boosted

let staged_env st = st.st_env
let staged_geometry st = st.st_geometry
let prepared_assist p = p.p_assist
