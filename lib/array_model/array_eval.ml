type accounting = Paper_strict | Physical

type env = {
  lib : Finfet.Library.t;
  cell_flavor : Finfet.Library.flavor;
  currents : Currents.t;
  periphery : Periphery.t;
  dcaps : Caps.device_caps;
  alpha : float;
  beta : float;
  dcdc_overhead : float;
  accounting : accounting;
}

let make_env ?(alpha = 0.5) ?(beta = 0.5) ?(dcdc_overhead = 1.25)
    ?(accounting = Paper_strict) ?(read_current_model = `Simulated)
    ?cell_width_factor ~cell_flavor () =
  let lib = Lazy.force Finfet.Library.default in
  let currents = Currents.create ~lib ~cell_flavor ~read_current_model in
  let periphery = Periphery.shared ~cell_flavor in
  let dcaps =
    Caps.device_caps_of ?cell_width_factor
      ~nfet:(Finfet.Library.nfet lib cell_flavor)
      ~pfet:(Finfet.Library.pfet lib cell_flavor)
      ()
  in
  { lib; cell_flavor; currents; periphery; dcaps; alpha; beta; dcdc_overhead;
    accounting }

type metrics = {
  d_read : float;
  d_write : float;
  d_array : float;
  e_read : float;
  e_write : float;
  e_switching : float;
  e_leakage : float;
  e_total : float;
  edp : float;
  d_bl_read : float;
  d_row_path_read : float;
  d_col_path : float;
}

let vdd = Finfet.Tech.vdd_nominal

let evaluate env (g : Geometry.t) (a : Components.assist) =
  let open Components in
  let d = env.dcaps and cur = env.currents and per = env.periphery in
  let cvdd = Components.cvdd d cur g a in
  let cvss = Components.cvss d cur g a in
  let wl_rd = Components.wl_read d cur g a in
  let wl_wr = Components.wl_write d cur g a in
  let col = Components.col d cur g a in
  let bl_rd = Components.bl_read d cur g a in
  let bl_wr = Components.bl_write d cur g a in
  let pre_rd = Components.precharge_read d cur g a in
  let pre_wr = Components.precharge_write d cur g a in
  let row_dec = Periphery.row_dec per ~bits:(Geometry.row_address_bits g) in
  let col_dec = Periphery.col_dec per ~bits:(Geometry.column_address_bits g) in
  (* --- Table 3: delays --- *)
  let d_row_path_read =
    row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. wl_rd.delay
  in
  let d_col_path =
    if Geometry.has_column_mux g then
      col_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. col.delay
    else 0.0
  in
  let d_read =
    max (d_row_path_read +. bl_rd.delay) d_col_path
    +. per.Periphery.sense_delay +. pre_rd.delay
  in
  let d_write_cell = Periphery.write_delay per ~vwl:a.vwl in
  let d_row_path_write =
    row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay +. wl_wr.delay
  in
  let d_write =
    max d_row_path_write (d_col_path +. bl_wr.delay)
    +. d_write_cell +. pre_wr.delay
  in
  let d_array = max d_read d_write in
  (* --- Table 3: switching energies --- *)
  let assist_scaled e = env.dcdc_overhead *. e in
  let e_cvdd = assist_scaled cvdd.energy in
  let e_cvss = assist_scaled cvss.energy in
  let e_wl_wr = if a.vwl > vdd then assist_scaled wl_wr.energy else wl_wr.energy in
  let nc = float_of_int g.Geometry.nc in
  (* A row narrower than the access width is read/written whole. *)
  let w = float_of_int (min g.Geometry.w g.Geometry.nc) in
  let n_unselected = max 0.0 (nc -. w) in
  let e_read, e_write =
    match env.accounting with
    | Paper_strict ->
      let e_read =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_rd.energy +. bl_rd.energy +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy
        +. per.Periphery.sense_energy +. pre_rd.energy +. e_cvdd +. e_cvss
      in
      let e_write =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_wr.energy +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy +. bl_wr.energy
        +. per.Periphery.write_cell_energy +. pre_wr.energy
      in
      (e_read, e_write)
    | Physical ->
      (* Every cell under the active word line conducts, so all n_c
         bitlines discharge and are re-precharged on a read; W sense amps
         evaluate.  A write swings W bitlines rail-to-rail and disturbs
         the other n_c - W columns by a read-like Delta V_S dip (priced at
         nominal rails: write operations carry no read assists). *)
      let c_bl = Caps.bl d g in
      let disturb = 2.0 *. c_bl *. vdd *. Finfet.Tech.delta_v_sense in
      let e_read =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. wl_rd.energy
        +. (nc *. (bl_rd.energy +. pre_rd.energy))
        +. col_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. col.energy
        +. (w *. per.Periphery.sense_energy)
        +. e_cvdd +. e_cvss
      in
      let e_write =
        row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy
        +. e_wl_wr +. col_dec.Gates.Decoder.energy
        +. per.Periphery.driver_energy +. col.energy
        +. (w *. (bl_wr.energy +. per.Periphery.write_cell_energy +. pre_wr.energy))
        +. (n_unselected *. disturb)
      in
      (e_read, e_write)
  in
  (* --- Equations (2)-(5) --- *)
  let e_switching = (env.beta *. e_read) +. ((1.0 -. env.beta) *. e_write) in
  let m = float_of_int (Geometry.capacity_bits g) in
  let e_leakage = m *. per.Periphery.p_leak_cell *. d_array in
  let e_total = (env.alpha *. e_switching) +. e_leakage in
  { d_read; d_write; d_array;
    e_read; e_write; e_switching; e_leakage; e_total;
    edp = e_total *. d_array;
    d_bl_read = bl_rd.delay;
    d_row_path_read;
    d_col_path }

let edp env g a = (evaluate env g a).edp

(* ----- attribution -----

   [attribute] re-prices the same Table 3 components [evaluate] does
   and lists each addend in the reference fold order instead of summing
   it away.  It deliberately duplicates the combining arithmetic above:
   folding the lists back (head-seeded, left-associated — see [refold])
   must reproduce every [metrics] field bit for bit, which the QCheck
   property suite asserts against [evaluate] so the two paths cannot
   drift apart silently.  Cold path only — it allocates lists and runs
   [evaluate] once for the reference record. *)

type attribution = {
  at_metrics : metrics;
  at_alpha : float;
  at_beta : float;
  at_read_energy : (string * float) list;
  at_write_energy : (string * float) list;
  at_read_row : (string * float) list;
  at_read_col : (string * float) list;
  at_read_tail : (string * float) list;
  at_write_row : (string * float) list;
  at_write_col : (string * float) list;
  at_write_tail : (string * float) list;
}

let refold = function
  | [] -> 0.0
  | (_, x) :: rest -> List.fold_left (fun acc (_, y) -> acc +. y) x rest

let attribute env (g : Geometry.t) (a : Components.assist) =
  let open Components in
  let d = env.dcaps and cur = env.currents and per = env.periphery in
  let cvdd = Components.cvdd d cur g a in
  let cvss = Components.cvss d cur g a in
  let wl_rd = Components.wl_read d cur g a in
  let wl_wr = Components.wl_write d cur g a in
  let col = Components.col d cur g a in
  let bl_rd = Components.bl_read d cur g a in
  let bl_wr = Components.bl_write d cur g a in
  let pre_rd = Components.precharge_read d cur g a in
  let pre_wr = Components.precharge_write d cur g a in
  let row_dec = Periphery.row_dec per ~bits:(Geometry.row_address_bits g) in
  let col_dec = Periphery.col_dec per ~bits:(Geometry.column_address_bits g) in
  let assist_scaled e = env.dcdc_overhead *. e in
  let e_cvdd = assist_scaled cvdd.energy in
  let e_cvss = assist_scaled cvss.energy in
  let e_wl_wr =
    if a.vwl > vdd then assist_scaled wl_wr.energy else wl_wr.energy
  in
  let nc = float_of_int g.Geometry.nc in
  let w = float_of_int (min g.Geometry.w g.Geometry.nc) in
  let n_unselected = max 0.0 (nc -. w) in
  let read_energy, write_energy =
    match env.accounting with
    | Paper_strict ->
      ( [ ("row decoder", row_dec.Gates.Decoder.energy);
          ("row driver", per.Periphery.driver_energy);
          ("wordline", wl_rd.energy);
          ("bitline", bl_rd.energy);
          ("col decoder", col_dec.Gates.Decoder.energy);
          ("col driver", per.Periphery.driver_energy);
          ("column mux", col.energy);
          ("sense amp", per.Periphery.sense_energy);
          ("precharge", pre_rd.energy);
          ("DC-DC V_DDC", e_cvdd);
          ("DC-DC V_SSC", e_cvss) ],
        [ ("row decoder", row_dec.Gates.Decoder.energy);
          ("row driver", per.Periphery.driver_energy);
          ("wordline", wl_wr.energy);
          ("col decoder", col_dec.Gates.Decoder.energy);
          ("col driver", per.Periphery.driver_energy);
          ("column mux", col.energy);
          ("bitline", bl_wr.energy);
          ("write cell", per.Periphery.write_cell_energy);
          ("precharge", pre_wr.energy) ] )
    | Physical ->
      let c_bl = Caps.bl d g in
      let disturb = 2.0 *. c_bl *. vdd *. Finfet.Tech.delta_v_sense in
      ( [ ("row decoder", row_dec.Gates.Decoder.energy);
          ("row driver", per.Periphery.driver_energy);
          ("wordline", wl_rd.energy);
          ("bitlines+precharge (all n_c)", nc *. (bl_rd.energy +. pre_rd.energy));
          ("col decoder", col_dec.Gates.Decoder.energy);
          ("col driver", per.Periphery.driver_energy);
          ("column mux", col.energy);
          ("sense amps (W)", w *. per.Periphery.sense_energy);
          ("DC-DC V_DDC", e_cvdd);
          ("DC-DC V_SSC", e_cvss) ],
        [ ("row decoder", row_dec.Gates.Decoder.energy);
          ("row driver", per.Periphery.driver_energy);
          ("wordline", e_wl_wr);
          ("col decoder", col_dec.Gates.Decoder.energy);
          ("col driver", per.Periphery.driver_energy);
          ("column mux", col.energy);
          ("write columns (W)",
           w *. (bl_wr.energy +. per.Periphery.write_cell_energy
                 +. pre_wr.energy));
          ("read disturb (n_c-W)", n_unselected *. disturb) ] )
  in
  let col_path_stages =
    if Geometry.has_column_mux g then
      [ ("col decoder", col_dec.Gates.Decoder.delay);
        ("col driver", per.Periphery.driver_delay);
        ("column mux", col.delay) ]
    else []
  in
  { at_metrics = evaluate env g a;
    at_alpha = env.alpha;
    at_beta = env.beta;
    at_read_energy = read_energy;
    at_write_energy = write_energy;
    at_read_row =
      [ ("row decoder", row_dec.Gates.Decoder.delay);
        ("row driver", per.Periphery.driver_delay);
        ("wordline", wl_rd.delay);
        ("bitline", bl_rd.delay) ];
    at_read_col = col_path_stages;
    at_read_tail =
      [ ("sense amp", per.Periphery.sense_delay);
        ("precharge", pre_rd.delay) ];
    at_write_row =
      [ ("row decoder", row_dec.Gates.Decoder.delay);
        ("row driver", per.Periphery.driver_delay);
        ("wordline", wl_wr.delay) ];
    at_write_col = col_path_stages @ [ ("bitline", bl_wr.delay) ];
    at_write_tail =
      [ ("write cell", Periphery.write_delay per ~vwl:a.vwl);
        ("precharge", pre_wr.delay) ] }

let attribution_consistent at =
  let m = at.at_metrics in
  let bits_eq x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y) in
  let tail_fold seed stages =
    List.fold_left (fun acc (_, x) -> acc +. x) seed stages
  in
  let e_read = refold at.at_read_energy in
  let e_write = refold at.at_write_energy in
  let d_read =
    tail_fold (max (refold at.at_read_row) (refold at.at_read_col))
      at.at_read_tail
  in
  let d_write =
    tail_fold (max (refold at.at_write_row) (refold at.at_write_col))
      at.at_write_tail
  in
  let d_array = max d_read d_write in
  let e_switching =
    (at.at_beta *. e_read) +. ((1.0 -. at.at_beta) *. e_write)
  in
  let e_total = (at.at_alpha *. e_switching) +. m.e_leakage in
  bits_eq e_read m.e_read
  && bits_eq e_write m.e_write
  && bits_eq d_read m.d_read
  && bits_eq d_write m.d_write
  && bits_eq d_array m.d_array
  && bits_eq e_switching m.e_switching
  && bits_eq e_total m.e_total
  && bits_eq (e_total *. d_array) m.edp

(* ----- staged evaluation kernel -----

   [evaluate] recomputes, for every (geometry, assist) pair, work that
   depends on only one of the two coordinates: wire capacitances, decoder
   characterization and the assist-blind Table 2 components depend only
   on the geometry, while the assist-rail drive currents and the write
   cell delay depend only on the assist.  The kernel hoists both sides:
   [stage] captures everything geometry-determined, [prepare] everything
   assist-determined, and [complete] finishes the cross terms — a few
   dozen float operations, no table lookups, no memo locks.

   Bit-identity with [evaluate] is by construction: every hoisted leaf is
   produced by the same expression (often the same function) as the
   reference path, and [complete] re-runs the combining arithmetic in the
   reference path's exact association order. *)

let stage_counter = Runtime.Telemetry.counter "array_eval.stage"

(* Latency distributions of the two kernel stages, sampled so the ~60 ns
   clock reads stay invisible next to the ~100 ns [complete] hot path
   (the [tick] fast path is one atomic load when observability is off). *)
let stage_hist = Obs.Histogram.create ~sample:64 "array_eval.stage"
let eval_hist = Obs.Histogram.create ~sample:128 "array_eval.eval_staged"

(* The staged constants live in an all-float record: OCaml stores those
   flat (one unboxed float per field), whereas a mixed record would box
   every float field individually — ~20 extra minor allocations per
   staged geometry, which dominated staging cost on the full sweep.
   Assist-blind components are stored pre-folded (the fold runs the
   reference association order once at staging), so the record carries
   only the values [complete_parts]/[scan_slice] actually read. *)
type staged_k = {
  (* Equation (1) C operands that depend on the geometry *)
  c_cvdd : float;
  c_cvss : float;
  c_wl : float;
  c_bl : float;
  (* pre-folded delay prefixes (reference association order) *)
  d_row_prefix : float;      (* row_dec + driver *)
  st_d_row_path_read : float;(* d_row_prefix + wl_rd.delay *)
  st_d_col_path : float;
  d_col_blwr : float;        (* d_col_path + bl_wr.delay *)
  pre_rd_delay : float;
  pre_wr_delay : float;
  (* pre-folded energy prefixes and per-component energies *)
  e_rowdrv : float;          (* row_dec.energy + driver_energy *)
  e_rd_prefix : float;       (* e_rowdrv + wl_rd.energy *)
  col_dec_e : float;
  col_e : float;
  bl_wr_e : float;
  pre_rd_e : float;
  pre_wr_e : float;
  (* Physical-accounting geometry terms *)
  nc_f : float;
  w_sense_energy : float;    (* w * sense_energy *)
  w_write_term : float;      (* w * (bl_wr.e + write_cell_e + pre_wr.e) *)
  disturb_term : float;      (* n_unselected * disturb *)
  (* leakage slope: M * P_leak,cell *)
  mp_leak : float;
}

type staged = {
  st_env : env;
  st_geometry : Geometry.t;
  st_k : staged_k;
}

(* ----- staging context: cross-search geometry sharing -----

   Two observations make staging much cheaper than [Components]'
   one-call-per-component shape:

   - the assist-blind components' drive currents are env constants:
     [Currents.wl_read]/[col_driver] don't depend on the geometry at
     all, and [bl_write]/[precharge] only through the small integers
     n_wr/n_pre — yet each call re-evaluates the FinFET device model.
     A context hoists them once per environment (the per-n_wr/n_pre
     draws eagerly, via the exact [Currents] functions, so staged
     records built from a context are bit-identical to the direct
     path's);
   - a Table 4 sweep re-stages the same geometries across searches
     (M1 and M2 of one flavor share the full grid), so staging goes
     through a geometry-keyed cache of finished [staged] records.

   The caches are *per domain* (thread-local via [Domain.DLS]): the
   lookup is an int-keyed [Hashtbl] probe with no lock and no shared
   mutation.  Domains may re-stage a geometry another domain already
   staged — staging is deterministic, so the copies are bit-identical
   and winner reduction is unaffected — and in exchange the hot path
   never contends (a shared mutex-guarded cache made staged wall time
   *degrade* from 1 to 4 jobs).  Tables are bounded ([ctx_cache_cap]
   entries, first-come) so a long-lived server cannot grow one without
   limit. *)

(* Fields of [staged] that depend on the geometry only through
   (nr, nc, w): wire caps, decoders, the WL read component and every
   prefix folded from them.  A capacity's grid has ~10 such combinations
   against ~10^4 (n_pre, n_wr) variants, so hoisting them into a
   row-core record makes the per-geometry staging residue a handful of
   [equation1] applications. *)
type row_core = {
  rc_c_cvdd : float;
  rc_c_cvss : float;
  rc_c_wl : float;
  rc_d_row_prefix : float;
  rc_d_row_path_read : float;
  rc_col_dec_delay : float;
  rc_col_dec_e : float;
  rc_e_rowdrv : float;
  rc_e_rd_prefix : float;
  rc_nc_f : float;
  rc_w_f : float;
  rc_w_sense_energy : float;
  rc_n_unselected : float;
  rc_mp_leak : float;
}

type ctx = {
  x_env : env;
  x_i_wl_read : float;          (* Currents.wl_read *)
  x_i_col : float;              (* Currents.col_driver *)
  x_i_bl_write : float array;   (* Currents.bl_write, indexed by n_wr *)
  x_i_precharge : float array;  (* Currents.precharge, indexed by n_pre *)
}

let ctx_current_slots = 128
let ctx_cache_cap = 65536
let ctx_rows_cap = 4096

(* Geometry coordinates packed into one immediate key: no tuple
   allocation and an O(1) integer hash/equality per cache probe.
   Field widths cover every geometry the spaces generate (nr/nc up to
   2^21, w/n_pre/n_wr up to 2^7 - 1); anything wider simply bypasses
   the caches and stages directly.  The row-core key is the full key's
   (nr, nc, w) prefix, i.e. [key lsr 14]. *)
let pack_key ~nr ~nc ~w ~n_pre ~n_wr =
  if nr < 0x200000 && nc < 0x200000 && w < 0x80 && n_pre < 0x80 && n_wr < 0x80
  then
    Some
      (((((((nr lsl 21) lor nc) lsl 7) lor w) lsl 7) lor n_pre) lsl 7
       lor n_wr)
  else None

let make_ctx env =
  let cur = env.currents in
  { x_env = env;
    x_i_wl_read = Currents.wl_read cur;
    x_i_col = Currents.col_driver cur;
    x_i_bl_write =
      Array.init ctx_current_slots (fun n_wr -> Currents.bl_write cur ~n_wr);
    x_i_precharge =
      Array.init ctx_current_slots (fun n_pre -> Currents.precharge cur ~n_pre) }

let ctx_env ctx = ctx.x_env

(* The per-domain cache pair for one context.  A domain keeps a short
   MRU list of these (several environments stay warm at once: a Table 4
   sweep interleaves hvt/lvt searches); [staging_generation] stamps
   entries so [reset_staging] invalidates every domain's tables without
   cross-domain communication — stale entries are dropped lazily on the
   owning domain's next lookup. *)
type dcaches = {
  dc_ctx : ctx;
  dc_gen : int;
  dc_rows : (int, row_core) Hashtbl.t;
  dc_cache : (int, staged) Hashtbl.t;
  (* Whole-grid staging results keyed by the geometry array's identity:
     a sweep's searches share one memoized grid per capacity, so the
     second (method) search over the same grid reuses the first's
     staged array without a single per-line lookup. *)
  mutable dc_arrays : (Geometry.t array * staged array) list;
}

let staging_generation = Atomic.make 0
let dcaches_cap = 8

let dls_caches : dcaches list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let caches_for ctx =
  let r = Domain.DLS.get dls_caches in
  let gen = Atomic.get staging_generation in
  match !r with
  | c :: _ when c.dc_ctx == ctx && c.dc_gen = gen -> c
  | l -> (
    let live = List.filter (fun c -> c.dc_gen = gen) l in
    match List.find_opt (fun c -> c.dc_ctx == ctx) live with
    | Some c ->
      r := c :: List.filter (fun c' -> c' != c) live;
      c
    | None ->
      let c =
        { dc_ctx = ctx;
          dc_gen = gen;
          dc_rows = Hashtbl.create 256;
          (* Sized for a full sweep's grid up front: growing from small
             would rehash tens of thousands of entries mid-scan. *)
          dc_cache = Hashtbl.create ctx_cache_cap;
          dc_arrays = [] }
      in
      let rec take n = function
        | [] -> []
        | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
      in
      r := c :: take (dcaches_cap - 1) live;
      c)

let row_core_of ctx (g : Geometry.t) =
  let env = ctx.x_env in
  let d = env.dcaps and per = env.periphery in
  let wl_rd =
    Components.equation1 ~c:(Caps.wl d g) ~v:vdd ~dv:vdd ~i:ctx.x_i_wl_read
  in
  let row_dec = Periphery.row_dec per ~bits:(Geometry.row_address_bits g) in
  let col_dec = Periphery.col_dec per ~bits:(Geometry.column_address_bits g) in
  let d_row_prefix = row_dec.Gates.Decoder.delay +. per.Periphery.driver_delay in
  let nc = float_of_int g.Geometry.nc in
  let w = float_of_int (min g.Geometry.w g.Geometry.nc) in
  let e_rowdrv = row_dec.Gates.Decoder.energy +. per.Periphery.driver_energy in
  { rc_c_cvdd = Caps.cvdd d g;
    rc_c_cvss = Caps.cvss d g;
    rc_c_wl = Caps.wl d g;
    rc_d_row_prefix = d_row_prefix;
    rc_d_row_path_read = d_row_prefix +. wl_rd.Components.delay;
    rc_col_dec_delay = col_dec.Gates.Decoder.delay;
    rc_col_dec_e = col_dec.Gates.Decoder.energy;
    rc_e_rowdrv = e_rowdrv;
    rc_e_rd_prefix = e_rowdrv +. wl_rd.Components.energy;
    rc_nc_f = nc;
    rc_w_f = w;
    rc_w_sense_energy = w *. per.Periphery.sense_energy;
    rc_n_unselected = max 0.0 (nc -. w);
    rc_mp_leak =
      float_of_int (Geometry.capacity_bits g) *. per.Periphery.p_leak_cell }

let stage_residue ctx rc (g : Geometry.t) =
  Runtime.Telemetry.incr stage_counter;
  let env = ctx.x_env in
  let d = env.dcaps and cur = env.currents and per = env.periphery in
  (* The (n_pre, n_wr) residue: each [equation1] application expands to
     the same expression the corresponding [Components] constructor
     evaluates (the QCheck bit-identity property pins this down against
     [evaluate]). *)
  let c_bl = Caps.bl d g in
  let n_wr = g.Geometry.n_wr and n_pre = g.Geometry.n_pre in
  let i_bl_wr =
    if n_wr < ctx_current_slots then Array.unsafe_get ctx.x_i_bl_write n_wr
    else Currents.bl_write cur ~n_wr
  in
  let i_pre =
    if n_pre < ctx_current_slots then Array.unsafe_get ctx.x_i_precharge n_pre
    else Currents.precharge cur ~n_pre
  in
  let col =
    if not (Geometry.has_column_mux g) then
      { Components.delay = 0.0; energy = 0.0 }
    else Components.equation1 ~c:(Caps.col d g) ~v:vdd ~dv:vdd ~i:ctx.x_i_col
  in
  let bl_wr = Components.equation1 ~c:c_bl ~v:vdd ~dv:vdd ~i:i_bl_wr in
  let pre_rd =
    Components.equation1 ~c:c_bl ~v:vdd ~dv:Finfet.Tech.delta_v_sense ~i:i_pre
  in
  let pre_wr = Components.equation1 ~c:c_bl ~v:vdd ~dv:vdd ~i:i_pre in
  let d_col_path =
    if Geometry.has_column_mux g then
      rc.rc_col_dec_delay +. per.Periphery.driver_delay
      +. col.Components.delay
    else 0.0
  in
  let disturb = 2.0 *. c_bl *. vdd *. Finfet.Tech.delta_v_sense in
  { st_env = env;
    st_geometry = g;
    st_k =
      { c_cvdd = rc.rc_c_cvdd;
        c_cvss = rc.rc_c_cvss;
        c_wl = rc.rc_c_wl;
        c_bl;
        d_row_prefix = rc.rc_d_row_prefix;
        st_d_row_path_read = rc.rc_d_row_path_read;
        st_d_col_path = d_col_path;
        d_col_blwr = d_col_path +. bl_wr.Components.delay;
        pre_rd_delay = pre_rd.Components.delay;
        pre_wr_delay = pre_wr.Components.delay;
        e_rowdrv = rc.rc_e_rowdrv;
        e_rd_prefix = rc.rc_e_rd_prefix;
        col_dec_e = rc.rc_col_dec_e;
        col_e = col.Components.energy;
        bl_wr_e = bl_wr.Components.energy;
        pre_rd_e = pre_rd.Components.energy;
        pre_wr_e = pre_wr.Components.energy;
        nc_f = rc.rc_nc_f;
        w_sense_energy = rc.rc_w_sense_energy;
        w_write_term =
          rc.rc_w_f
          *. (bl_wr.Components.energy +. per.Periphery.write_cell_energy
              +. pre_wr.Components.energy);
        disturb_term = rc.rc_n_unselected *. disturb;
        mp_leak = rc.rc_mp_leak } }

(* Uncached staging, for geometries whose coordinates don't fit the
   packed key. *)
let stage_core ctx (g : Geometry.t) = stage_residue ctx (row_core_of ctx g) g

let stage_cached ctx (g : Geometry.t) =
  match
    pack_key ~nr:g.Geometry.nr ~nc:g.Geometry.nc ~w:g.Geometry.w
      ~n_pre:g.Geometry.n_pre ~n_wr:g.Geometry.n_wr
  with
  | None -> stage_core ctx g
  | Some key -> (
    let c = caches_for ctx in
    match Hashtbl.find c.dc_cache key with
    | st -> st
    | exception Not_found ->
      let rkey = key lsr 14 in
      let rc =
        match Hashtbl.find c.dc_rows rkey with
        | rc -> rc
        | exception Not_found ->
          let rc = row_core_of ctx g in
          if Hashtbl.length c.dc_rows < ctx_rows_cap then
            Hashtbl.add c.dc_rows rkey rc;
          rc
      in
      let st = stage_residue ctx rc g in
      if Hashtbl.length c.dc_cache < ctx_cache_cap then
        Hashtbl.add c.dc_cache key st;
      st)

let stage_with ctx g =
  if Obs.Histogram.tick stage_hist then begin
    let g0 = Obs.Histogram.major_collections () in
    let t0 = Obs.Clock.now () in
    let st = stage_cached ctx g in
    let dt = Obs.Clock.now () -. t0 in
    Obs.Histogram.observe_gc stage_hist dt
      (Obs.Histogram.major_collections () - g0);
    st
  end
  else stage_cached ctx g

let stage_array_cap = 4

let stage_array ctx (gs : Geometry.t array) =
  let c = caches_for ctx in
  let rec find = function
    | [] -> None
    | (k, v) :: tl -> if k == gs then Some v else find tl
  in
  match find c.dc_arrays with
  | Some arr -> arr
  | None ->
    (* Cold grid: the array itself is about to become the cache entry,
       so the per-geometry staged cache would only duplicate it — skip
       it.  Enumeration orders candidates by (n_r, n_c, W), so the
       previous element's row core almost always applies: one integer
       comparison replaces the row-table probe on ~90% of elements. *)
    let last_rkey = ref (-1) in
    let last_rc = ref None in
    let stage1 (g : Geometry.t) =
      match
        pack_key ~nr:g.Geometry.nr ~nc:g.Geometry.nc ~w:g.Geometry.w
          ~n_pre:g.Geometry.n_pre ~n_wr:g.Geometry.n_wr
      with
      | None -> stage_core ctx g
      | Some key ->
        let rkey = key lsr 14 in
        let rc =
          match !last_rc with
          | Some rc when !last_rkey = rkey -> rc
          | _ ->
            let rc =
              match Hashtbl.find c.dc_rows rkey with
              | rc -> rc
              | exception Not_found ->
                let rc = row_core_of ctx g in
                if Hashtbl.length c.dc_rows < ctx_rows_cap then
                  Hashtbl.add c.dc_rows rkey rc;
                rc
            in
            last_rkey := rkey;
            last_rc := Some rc;
            rc
        in
        stage_residue ctx rc g
    in
    let arr = Array.map stage1 gs in
    let rec take n = function
      | [] -> []
      | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
    in
    c.dc_arrays <- (gs, arr) :: take (stage_array_cap - 1) c.dc_arrays;
    arr

(* Contexts are registered per environment value (physical equality:
   environments are built once and shared — the framework memoizes
   them per (flavor, accounting)), newest-first with a small LRU-ish
   cap so ad-hoc test environments cannot pin memory forever. *)
let ctx_registry_cap = 8
let ctx_registry_lock = Mutex.create ()
let ctx_registry : (env * ctx) list ref = ref []

let ctx_for env =
  Mutex.lock ctx_registry_lock;
  match List.find_opt (fun (e, _) -> e == env) !ctx_registry with
  | Some (_, c) ->
    Mutex.unlock ctx_registry_lock;
    c
  | None ->
    let c = make_ctx env in
    ctx_registry :=
      (env, c) :: List.filteri (fun i _ -> i < ctx_registry_cap - 1)
                    !ctx_registry;
    Mutex.unlock ctx_registry_lock;
    c

let reset_staging () =
  Mutex.lock ctx_registry_lock;
  ctx_registry := [];
  Mutex.unlock ctx_registry_lock;
  (* Invalidate every domain's private staging caches: each domain
     drops entries with a stale generation on its next lookup. *)
  Atomic.incr staging_generation

let stage env g = stage_with (ctx_for env) g

type prepared = {
  p_assist : Components.assist;
  dv_cvdd : float;
  i_cvdd : float;
  dv_cvss : float;
  i_cvss : float;
  dv_wl_wr : float;
  i_wl_wr : float;
  v_bl_rd : float;
  i_bl_rd : float;
  p_d_write_cell : float;
  wl_boosted : bool;
  (* Scan-effective operands, derived once at preparation time so the
     batched scan loop is branch-free (without flambda a float produced
     by an if-join is boxed, which would put an allocation on every
     scan point).  A dead component carries a 0.0 numerator and a 1.0
     divisor, which reproduce the reference path's exact 0.0 through
     the same multiplications — the operand substitution is validated
     bit-for-bit by the scan-identity QCheck property. *)
  ps_dv_cvdd : float;
  ps_dv_cvss : float;
  ps_dv_wl : float;
  ps_i_wl : float;
  ps_i_bl : float;
  ps_v_bl : float;
  ps_boost : float;  (* dcdc_overhead when vwl-boosted, else 1.0 *)
}

(* The input validation [Components.equation1] performs per evaluation
   moves here, to preparation time: each assert guards exactly the
   operand set whose component is live, as the per-point branches did. *)
let make_prepared ~assist ~dv_cvdd ~i_cvdd ~dv_cvss ~i_cvss ~dv_wl_wr ~i_wl_wr
    ~v_bl_rd ~i_bl_rd ~d_write_cell ~wl_boosted ~dcdc =
  let bl_live = Finfet.Tech.delta_v_sense > 0.0 in
  { p_assist = assist;
    dv_cvdd;
    i_cvdd;
    dv_cvss;
    i_cvss;
    dv_wl_wr;
    i_wl_wr;
    v_bl_rd;
    i_bl_rd;
    p_d_write_cell = d_write_cell;
    wl_boosted;
    ps_dv_cvdd =
      (if dv_cvdd <= 0.0 then 0.0
       else begin assert (i_cvdd > 0.0); dv_cvdd end);
    ps_dv_cvss =
      (if dv_cvss <= 0.0 then 0.0
       else begin assert (i_cvss > 0.0); dv_cvss end);
    ps_dv_wl =
      (if dv_wl_wr > 0.0 then begin assert (i_wl_wr > 0.0); dv_wl_wr end
       else 0.0);
    ps_i_wl = (if dv_wl_wr > 0.0 then i_wl_wr else 1.0);
    ps_i_bl =
      (if bl_live then begin assert (i_bl_rd > 0.0); i_bl_rd end else 1.0);
    ps_v_bl = (if bl_live then v_bl_rd else 0.0);
    ps_boost = (if wl_boosted then dcdc else 1.0) }

let prepare env (a : Components.assist) =
  let cur = env.currents and per = env.periphery in
  make_prepared ~assist:a
    ~dv_cvdd:(a.Components.vddc -. vdd)
    ~i_cvdd:(Currents.cvdd_driver cur ~vddc:a.Components.vddc)
    ~dv_cvss:(abs_float a.Components.vssc)
    ~i_cvss:(Currents.cvss_driver cur ~vssc:a.Components.vssc)
    ~dv_wl_wr:a.Components.vwl
    ~i_wl_wr:(Currents.wl_write cur ~vwl:a.Components.vwl)
    ~v_bl_rd:(a.Components.vddc -. a.Components.vssc)
    ~i_bl_rd:
      (Currents.read_current cur ~vddc:a.Components.vddc
         ~vssc:a.Components.vssc)
    ~d_write_cell:(Periphery.write_delay per ~vwl:a.Components.vwl)
    ~wl_boosted:(a.Components.vwl > vdd)
    ~dcdc:env.dcdc_overhead

(* The shared completion: prices the four assist-dependent components from
   hoisted operands and re-runs the Table 3 / Equations (2)-(5) arithmetic
   in [evaluate]'s association order.  [e_wl_scale] abstracts the one
   conditional that differs between an actual assist (vwl > vdd) and the
   lower envelope (all enveloped assists boosted). *)
let complete_parts st ~dv_cvdd ~i_cvdd ~dv_cvss ~i_cvss ~dv_wl_wr ~i_wl_wr
    ~v_bl_rd ~i_bl_rd ~d_write_cell ~wl_boosted =
  let env = st.st_env in
  let per = env.periphery in
  let k = st.st_k in
  let cvdd = Components.equation1 ~c:k.c_cvdd ~v:vdd ~dv:dv_cvdd ~i:i_cvdd in
  let cvss = Components.equation1 ~c:k.c_cvss ~v:vdd ~dv:dv_cvss ~i:i_cvss in
  let wl_wr = Components.equation1 ~c:k.c_wl ~v:vdd ~dv:dv_wl_wr ~i:i_wl_wr in
  let bl_rd =
    Components.equation1 ~c:k.c_bl ~v:v_bl_rd ~dv:Finfet.Tech.delta_v_sense
      ~i:i_bl_rd
  in
  (* --- Table 3: delays --- *)
  let d_row_path_read = k.st_d_row_path_read in
  let d_col_path = k.st_d_col_path in
  let d_read =
    max (d_row_path_read +. bl_rd.Components.delay) d_col_path
    +. per.Periphery.sense_delay +. k.pre_rd_delay
  in
  let d_row_path_write = k.d_row_prefix +. wl_wr.Components.delay in
  let d_write =
    max d_row_path_write k.d_col_blwr
    +. d_write_cell +. k.pre_wr_delay
  in
  let d_array = max d_read d_write in
  (* --- Table 3: switching energies --- *)
  let assist_scaled e = env.dcdc_overhead *. e in
  let e_cvdd = assist_scaled cvdd.Components.energy in
  let e_cvss = assist_scaled cvss.Components.energy in
  let e_wl_wr =
    if wl_boosted then assist_scaled wl_wr.Components.energy
    else wl_wr.Components.energy
  in
  let e_read, e_write =
    match env.accounting with
    | Paper_strict ->
      let e_read =
        k.e_rd_prefix +. bl_rd.Components.energy
        +. k.col_dec_e +. per.Periphery.driver_energy
        +. k.col_e +. per.Periphery.sense_energy
        +. k.pre_rd_e +. e_cvdd +. e_cvss
      in
      let e_write =
        k.e_rowdrv +. wl_wr.Components.energy
        +. k.col_dec_e +. per.Periphery.driver_energy
        +. k.col_e +. k.bl_wr_e
        +. per.Periphery.write_cell_energy +. k.pre_wr_e
      in
      (e_read, e_write)
    | Physical ->
      let e_read =
        k.e_rd_prefix
        +. (k.nc_f *. (bl_rd.Components.energy +. k.pre_rd_e))
        +. k.col_dec_e +. per.Periphery.driver_energy
        +. k.col_e +. k.w_sense_energy +. e_cvdd
        +. e_cvss
      in
      let e_write =
        k.e_rowdrv +. e_wl_wr +. k.col_dec_e
        +. per.Periphery.driver_energy +. k.col_e
        +. k.w_write_term +. k.disturb_term
      in
      (e_read, e_write)
  in
  (* --- Equations (2)-(5) --- *)
  let e_switching = (env.beta *. e_read) +. ((1.0 -. env.beta) *. e_write) in
  let e_leakage = k.mp_leak *. d_array in
  let e_total = (env.alpha *. e_switching) +. e_leakage in
  { d_read; d_write; d_array;
    e_read; e_write; e_switching; e_leakage; e_total;
    edp = e_total *. d_array;
    d_bl_read = bl_rd.Components.delay;
    d_row_path_read;
    d_col_path }

let complete_core st (p : prepared) =
  complete_parts st ~dv_cvdd:p.dv_cvdd ~i_cvdd:p.i_cvdd ~dv_cvss:p.dv_cvss
    ~i_cvss:p.i_cvss ~dv_wl_wr:p.dv_wl_wr ~i_wl_wr:p.i_wl_wr
    ~v_bl_rd:p.v_bl_rd ~i_bl_rd:p.i_bl_rd ~d_write_cell:p.p_d_write_cell
    ~wl_boosted:p.wl_boosted

let complete st (p : prepared) =
  if Obs.Histogram.tick eval_hist then begin
    let g0 = Obs.Histogram.major_collections () in
    let t0 = Obs.Clock.now () in
    let m = complete_core st p in
    let dt = Obs.Clock.now () -. t0 in
    Obs.Histogram.observe_gc eval_hist dt
      (Obs.Histogram.major_collections () - g0);
    m
  end
  else complete_core st p

let eval_staged st a = complete st (prepare st.st_env a)

(* ----- admissible lower envelope -----

   Across a vssc scan only four components move.  Taking, per Equation (1)
   operand, the extreme that minimizes the component (smallest dV and V,
   largest I) yields component values that lower-bound the component at
   every enveloped assist; since every combining operation in
   [complete_parts] (+., *., /., max, all on non-negative operands) is
   monotone under IEEE rounding, the resulting metrics lower-bound every
   actual metrics field — no epsilon needed.  The envelope's fields are
   per-field bounds; they are generally not attained by any single
   assist. *)

type envelope = {
  b_dv_cvdd : float;
  b_i_cvdd : float;
  b_dv_cvss : float;
  b_i_cvss : float;
  b_dv_wl_wr : float;
  b_i_wl_wr : float;
  b_v_bl_rd : float;
  b_i_bl_rd : float;
  b_d_write_cell : float;
  b_wl_boosted_all : bool;
}

let envelope (ps : prepared array) =
  if Array.length ps = 0 then invalid_arg "Array_eval.envelope: empty";
  Array.fold_left
    (fun acc p ->
      { b_dv_cvdd = min acc.b_dv_cvdd p.dv_cvdd;
        b_i_cvdd = max acc.b_i_cvdd p.i_cvdd;
        b_dv_cvss = min acc.b_dv_cvss p.dv_cvss;
        b_i_cvss = max acc.b_i_cvss p.i_cvss;
        b_dv_wl_wr = min acc.b_dv_wl_wr p.dv_wl_wr;
        b_i_wl_wr = max acc.b_i_wl_wr p.i_wl_wr;
        b_v_bl_rd = min acc.b_v_bl_rd p.v_bl_rd;
        b_i_bl_rd = max acc.b_i_bl_rd p.i_bl_rd;
        b_d_write_cell = min acc.b_d_write_cell p.p_d_write_cell;
        b_wl_boosted_all = acc.b_wl_boosted_all && p.wl_boosted })
    { b_dv_cvdd = ps.(0).dv_cvdd;
      b_i_cvdd = ps.(0).i_cvdd;
      b_dv_cvss = ps.(0).dv_cvss;
      b_i_cvss = ps.(0).i_cvss;
      b_dv_wl_wr = ps.(0).dv_wl_wr;
      b_i_wl_wr = ps.(0).i_wl_wr;
      b_v_bl_rd = ps.(0).v_bl_rd;
      b_i_bl_rd = ps.(0).i_bl_rd;
      b_d_write_cell = ps.(0).p_d_write_cell;
      b_wl_boosted_all = ps.(0).wl_boosted }
    ps

let bound_metrics st (b : envelope) =
  (* A mixed-boost envelope must use the smaller of the two possible
     scalings for the WL-overdrive write energy; 1.0 *. e = e exactly, so
     the all-boosted case reproduces [complete]'s scaled value. *)
  let wl_boosted =
    b.b_wl_boosted_all || st.st_env.dcdc_overhead < 1.0
  in
  complete_parts st ~dv_cvdd:b.b_dv_cvdd ~i_cvdd:b.b_i_cvdd
    ~dv_cvss:b.b_dv_cvss ~i_cvss:b.b_i_cvss ~dv_wl_wr:b.b_dv_wl_wr
    ~i_wl_wr:b.b_i_wl_wr ~v_bl_rd:b.b_v_bl_rd ~i_bl_rd:b.b_i_bl_rd
    ~d_write_cell:b.b_d_write_cell ~wl_boosted

let staged_env st = st.st_env
let staged_geometry st = st.st_geometry
let prepared_assist p = p.p_assist

(* ----- batched scan kernel -----

   One geometry's whole assist scan into preallocated float arrays
   (structure-of-arrays), with zero per-candidate allocation: every
   temporary in the loop bodies below is a local float (unboxed by the
   native compiler), the outputs land in flat [float array]s, and the
   [metrics] record is never built — the caller materializes it with
   [complete] for the one winning index.

   Bit-identity with [complete] is load-bearing and preserved by
   construction: the loop bodies re-run [complete_parts]' arithmetic in
   the reference association order, and the only hoisted computations
   are (a) loads of loop-invariant operands and (b) *whole
   subexpressions* of the reference arithmetic — [st.c_cvdd *. vdd],
   [1.0 -. beta], [d_col_path +. bl_wr.delay], ... — whose lifting
   cannot re-associate anything.  The two accounting modes get separate
   loops so the hot path carries no per-point match. *)

type scan_buffer = {
  mutable sb_len : int;
  mutable sb_e_total : float array;
  mutable sb_d_array : float array;
  mutable sb_edp : float array;
}

let scan_buffer () =
  { sb_len = 0;
    sb_e_total = Array.make 64 0.0;
    sb_d_array = Array.make 64 0.0;
    sb_edp = Array.make 64 0.0 }

let scan_length b = b.sb_len
let scan_e_total b = b.sb_e_total
let scan_d_array b = b.sb_d_array
let scan_edp b = b.sb_edp

let ensure_capacity buf n =
  if Array.length buf.sb_e_total < n then begin
    let cap = max n (2 * Array.length buf.sb_e_total) in
    buf.sb_e_total <- Array.make cap 0.0;
    buf.sb_d_array <- Array.make cap 0.0;
    buf.sb_edp <- Array.make cap 0.0
  end

let scan_slice st (ps : prepared array) buf ~lo ~hi =
  if lo < 0 || hi < lo || hi > Array.length ps then
    invalid_arg "Array_eval.scan_slice: bad range";
  ensure_capacity buf hi;
  buf.sb_len <- hi;
  let env = st.st_env in
  let per = env.periphery in
  let k = st.st_k in
  (* Loop-invariant operands and whole-subexpression hoists. *)
  let dvs = Finfet.Tech.delta_v_sense in
  let bl_live = dvs > 0.0 in
  let cv_cvdd = k.c_cvdd *. vdd in
  let cv_cvss = k.c_cvss *. vdd in
  let cv_wl = k.c_wl *. vdd in
  let c_wl = k.c_wl in
  let c_bl = k.c_bl in
  let c_bl_dvs = if bl_live then k.c_bl *. dvs else 0.0 in
  let dcdc = env.dcdc_overhead in
  let d_row_path_read = k.st_d_row_path_read in
  let d_col_path = k.st_d_col_path in
  let d_row_prefix = k.d_row_prefix in
  let sense_delay = per.Periphery.sense_delay in
  let pre_rd_delay = k.pre_rd_delay in
  let pre_wr_delay = k.pre_wr_delay in
  let d_col_blwr = k.d_col_blwr in
  let col_dec_e = k.col_dec_e in
  let driver_e = per.Periphery.driver_energy in
  let col_e = k.col_e in
  let sense_e = per.Periphery.sense_energy in
  let pre_rd_e = k.pre_rd_e in
  let pre_wr_e = k.pre_wr_e in
  let bl_wr_e = k.bl_wr_e in
  let write_cell_e = per.Periphery.write_cell_energy in
  let e_rd_prefix = k.e_rd_prefix in
  let e_rowdrv = k.e_rowdrv in
  let nc_f = k.nc_f in
  let w_sense_energy = k.w_sense_energy in
  let w_write_term = k.w_write_term in
  let disturb_term = k.disturb_term in
  let alpha = env.alpha and beta = env.beta in
  let one_minus_beta = 1.0 -. env.beta in
  let mp_leak = k.mp_leak in
  let out_e = buf.sb_e_total
  and out_d = buf.sb_d_array
  and out_edp = buf.sb_edp in
  match env.accounting with
  | Paper_strict ->
    for i = lo to hi - 1 do
      let p = Array.unsafe_get ps i in
      (* Equation (1) components; only the fields the outputs reach are
         computed (cvdd/cvss delays feed nothing).  The loop body is
         branch-free: a dead component's scan-effective operands (0.0
         numerator, 1.0 divisor, set by [make_prepared]) reproduce the
         reference path's 0.0 through these same multiplications, so no
         float is produced by an if-join — without flambda such a join
         boxes, which would allocate on every point. *)
      let e_cvdd_c = cv_cvdd *. p.ps_dv_cvdd in
      let e_cvss_c = cv_cvss *. p.ps_dv_cvss in
      let d_wl_wr = c_wl *. p.ps_dv_wl /. p.ps_i_wl in
      let e_wl_wr_c = cv_wl *. p.ps_dv_wl in
      let d_bl_rd = c_bl_dvs /. p.ps_i_bl in
      let e_bl_rd = c_bl *. p.ps_v_bl *. dvs in
      (* Table 3 delays, then strict-accounting energies.  The maxes are
         spelled as float comparisons because the polymorphic [max]
         boxes both arguments per call — selection is identical
         ([if a >= b then a else b] is [Stdlib.max] at float type). *)
      let rd_row = d_row_path_read +. d_bl_rd in
      let d_read =
        (if rd_row >= d_col_path then rd_row else d_col_path)
        +. sense_delay +. pre_rd_delay
      in
      let wr_row = d_row_prefix +. d_wl_wr in
      let d_write =
        (if wr_row >= d_col_blwr then wr_row else d_col_blwr)
        +. p.p_d_write_cell +. pre_wr_delay
      in
      let d_array = if d_read >= d_write then d_read else d_write in
      let e_cvdd = dcdc *. e_cvdd_c in
      let e_cvss = dcdc *. e_cvss_c in
      let e_read =
        e_rd_prefix +. e_bl_rd +. col_dec_e +. driver_e +. col_e
        +. sense_e +. pre_rd_e +. e_cvdd +. e_cvss
      in
      let e_write =
        e_rowdrv +. e_wl_wr_c +. col_dec_e +. driver_e +. col_e
        +. bl_wr_e +. write_cell_e +. pre_wr_e
      in
      let e_switching = (beta *. e_read) +. (one_minus_beta *. e_write) in
      let e_leakage = mp_leak *. d_array in
      let e_total = (alpha *. e_switching) +. e_leakage in
      Array.unsafe_set out_d i d_array;
      Array.unsafe_set out_e i e_total;
      Array.unsafe_set out_edp i (e_total *. d_array)
    done
  | Physical ->
    for i = lo to hi - 1 do
      let p = Array.unsafe_get ps i in
      (* Branch-free for the same reason as the strict loop above. *)
      let e_cvdd_c = cv_cvdd *. p.ps_dv_cvdd in
      let e_cvss_c = cv_cvss *. p.ps_dv_cvss in
      let d_wl_wr = c_wl *. p.ps_dv_wl /. p.ps_i_wl in
      let e_wl_wr_c = cv_wl *. p.ps_dv_wl in
      let d_bl_rd = c_bl_dvs /. p.ps_i_bl in
      let e_bl_rd = c_bl *. p.ps_v_bl *. dvs in
      let rd_row = d_row_path_read +. d_bl_rd in
      let d_read =
        (if rd_row >= d_col_path then rd_row else d_col_path)
        +. sense_delay +. pre_rd_delay
      in
      let wr_row = d_row_prefix +. d_wl_wr in
      let d_write =
        (if wr_row >= d_col_blwr then wr_row else d_col_blwr)
        +. p.p_d_write_cell +. pre_wr_delay
      in
      let d_array = if d_read >= d_write then d_read else d_write in
      let e_cvdd = dcdc *. e_cvdd_c in
      let e_cvss = dcdc *. e_cvss_c in
      let e_wl_wr = p.ps_boost *. e_wl_wr_c in
      let e_read =
        e_rd_prefix
        +. (nc_f *. (e_bl_rd +. pre_rd_e))
        +. col_dec_e +. driver_e +. col_e +. w_sense_energy +. e_cvdd
        +. e_cvss
      in
      let e_write =
        e_rowdrv +. e_wl_wr +. col_dec_e +. driver_e +. col_e
        +. w_write_term +. disturb_term
      in
      let e_switching = (beta *. e_read) +. (one_minus_beta *. e_write) in
      let e_leakage = mp_leak *. d_array in
      let e_total = (alpha *. e_switching) +. e_leakage in
      Array.unsafe_set out_d i d_array;
      Array.unsafe_set out_e i e_total;
      Array.unsafe_set out_edp i (e_total *. d_array)
    done

let scan st ps buf = scan_slice st ps buf ~lo:0 ~hi:(Array.length ps)

(* ----- envelopes as scan points -----

   An envelope is operand-for-operand a [prepared] value, so bounds are
   evaluated by the same allocation-free scan as real assists: build
   the bound points once per search, scan them once per geometry.  The
   wl-boost flag picks the smaller of the two possible write-energy
   scalings, exactly as [bound_metrics] does. *)

let bound_prepared env (b : envelope) =
  make_prepared ~assist:Components.no_assist
    ~dv_cvdd:b.b_dv_cvdd
    ~i_cvdd:b.b_i_cvdd
    ~dv_cvss:b.b_dv_cvss
    ~i_cvss:b.b_i_cvss
    ~dv_wl_wr:b.b_dv_wl_wr
    ~i_wl_wr:b.b_i_wl_wr
    ~v_bl_rd:b.b_v_bl_rd
    ~i_bl_rd:b.b_i_bl_rd
    ~d_write_cell:b.b_d_write_cell
    ~wl_boosted:(b.b_wl_boosted_all || env.dcdc_overhead < 1.0)
    ~dcdc:env.dcdc_overhead

let envelope_of_point (p : prepared) =
  { b_dv_cvdd = p.dv_cvdd;
    b_i_cvdd = p.i_cvdd;
    b_dv_cvss = p.dv_cvss;
    b_i_cvss = p.i_cvss;
    b_dv_wl_wr = p.dv_wl_wr;
    b_i_wl_wr = p.i_wl_wr;
    b_v_bl_rd = p.v_bl_rd;
    b_i_bl_rd = p.i_bl_rd;
    b_d_write_cell = p.p_d_write_cell;
    b_wl_boosted_all = p.wl_boosted }

let extend_envelope acc (p : prepared) =
  { b_dv_cvdd = min acc.b_dv_cvdd p.dv_cvdd;
    b_i_cvdd = max acc.b_i_cvdd p.i_cvdd;
    b_dv_cvss = min acc.b_dv_cvss p.dv_cvss;
    b_i_cvss = max acc.b_i_cvss p.i_cvss;
    b_dv_wl_wr = min acc.b_dv_wl_wr p.dv_wl_wr;
    b_i_wl_wr = max acc.b_i_wl_wr p.i_wl_wr;
    b_v_bl_rd = min acc.b_v_bl_rd p.v_bl_rd;
    b_i_bl_rd = max acc.b_i_bl_rd p.i_bl_rd;
    b_d_write_cell = min acc.b_d_write_cell p.p_d_write_cell;
    b_wl_boosted_all = acc.b_wl_boosted_all && p.wl_boosted }

(* Suffix envelopes by one incremental right-to-left fold: element [j]
   covers every assist from index [j * block] to the end, so element 0
   is the whole-scan bound and element [j > 0] bounds what remains
   after [j] blocks have been evaluated — the handle a search needs to
   abandon a scan mid-line once the incumbent has tightened below the
   remaining points' admissible bound. *)
let suffix_envelopes (ps : prepared array) ~block =
  let n = Array.length ps in
  if n = 0 then invalid_arg "Array_eval.suffix_envelopes: empty";
  if block <= 0 then invalid_arg "Array_eval.suffix_envelopes: block <= 0";
  let nb = (n + block - 1) / block in
  let out = Array.make nb (envelope_of_point ps.(n - 1)) in
  let acc = ref (envelope_of_point ps.(n - 1)) in
  for i = n - 2 downto 0 do
    acc := extend_envelope !acc ps.(i);
    if i mod block = 0 then out.(i / block) <- !acc
  done;
  (* The last block's boundary may fall past n-2 (e.g. a single-point
     tail); seed wrote the n-1 point, fix up any boundary >= n-1. *)
  let last_boundary = (nb - 1) * block in
  if last_boundary = n - 1 then out.(nb - 1) <- envelope_of_point ps.(n - 1);
  out
