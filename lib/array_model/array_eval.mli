(** Array-level delay and energy — Table 3 and Equations (2)-(5).

    Read:  D_rd = max(row-path + WL + BL, column-path + COL)
                  + D_sense + D_precharge,rd
    Write: D_wr = max(row-path + WL_wr, column-path + COL + BL_wr)
                  + D_write_cell(V_WL) + D_precharge,wr

    D_array = max(D_rd, D_wr)
    E_sw    = beta E_rd + (1 - beta) E_wr
    E_leak  = M P_leak,cell D_array
    E       = alpha E_sw + E_leak

    Two energy-accounting modes are provided:
    - [`Paper_strict] (default) prices each Table 3 component exactly
      once, as the table prints them;
    - [`Physical] multiplies per-bitline components by their
      multiplicity: all n_c columns discharge and re-precharge on a read
      (every cell under the active word line conducts), W sense amps fire,
      W bitlines swing on a write, and the n_c - W unselected columns pay
      a read-disturb discharge.  The choice is an ablation benchmark. *)

type accounting = Paper_strict | Physical

type env = {
  lib : Finfet.Library.t;
  cell_flavor : Finfet.Library.flavor;
  currents : Currents.t;
  periphery : Periphery.t;
  dcaps : Caps.device_caps;
  alpha : float;           (** array activity factor (paper: 0.5) *)
  beta : float;            (** read fraction of accesses (paper: 0.5) *)
  dcdc_overhead : float;   (** assist-rail energy scaling for DC-DC
                               inefficiency (paper: unspecified; 1.25) *)
  accounting : accounting;
}

val make_env :
  ?alpha:float ->
  ?beta:float ->
  ?dcdc_overhead:float ->
  ?accounting:accounting ->
  ?read_current_model:
    [ `Simulated | `Paper_fit | `Custom of vddc:float -> vssc:float -> float ] ->
  ?cell_width_factor:float ->
  cell_flavor:Finfet.Library.flavor ->
  unit ->
  env
(** Environment against the default calibrated library with memoized
    periphery characterization.  [cell_width_factor] scales the cell
    footprint's wire capacitances (1.0 = the 6T layout);
    [`Custom] supplies an alternative read-current model (used by the 8T
    comparison study, whose read stack differs from the 6T one). *)

type metrics = {
  d_read : float;
  d_write : float;
  d_array : float;          (** Equation (2) *)
  e_read : float;           (** E_sw,rd, one access *)
  e_write : float;          (** E_sw,wr, one access *)
  e_switching : float;      (** Equation (3) *)
  e_leakage : float;        (** Equation (4) *)
  e_total : float;          (** Equation (5) *)
  edp : float;              (** e_total x d_array, the objective *)
  d_bl_read : float;        (** bitline discharge term (Figure 7(d)) *)
  d_row_path_read : float;  (** decoder + driver + WL for the read *)
  d_col_path : float;       (** column decoder + driver + COL *)
}

val evaluate : env -> Geometry.t -> Components.assist -> metrics

val edp : env -> Geometry.t -> Components.assist -> float
(** Shortcut for the optimizer's objective. *)

(** {1 Attribution}

    Where an evaluated design's energy and delay actually go,
    component by component — the explanation behind the winner, not a
    new model.  Every list below carries the Table 3 terms {e in the
    exact order [evaluate] folds them}, so re-summing a list with
    {!refold} reproduces the corresponding [metrics] field bit for bit
    (OCaml [+.] is left-associative; {!refold} seeds the fold with the
    first term to preserve the association).  The QCheck property
    suite holds {!attribute} and [evaluate] together on random
    geometries, assists and both accounting modes. *)

type attribution = {
  at_metrics : metrics;  (** the reference [evaluate] result *)
  at_alpha : float;
  at_beta : float;
  (* Energy terms per access, in [evaluate]'s fold order.  Under
     [Physical] accounting, multiplicity-scaled terms appear as the
     single products the reference path adds (e.g. all-columns
     bitline+precharge), never re-distributed. *)
  at_read_energy : (string * float) list;   (** refold = [e_read] *)
  at_write_energy : (string * float) list;  (** refold = [e_write] *)
  (* Delay stages.  d_read = max(refold row, refold col) then the tail
     terms folded in order; d_write likewise; d_array = max of the
     two. *)
  at_read_row : (string * float) list;   (** decoder, driver, WL, BL *)
  at_read_col : (string * float) list;   (** empty without a column mux *)
  at_read_tail : (string * float) list;  (** sense amp, precharge *)
  at_write_row : (string * float) list;
  at_write_col : (string * float) list;  (** column path + write bitline *)
  at_write_tail : (string * float) list; (** write cell, precharge *)
}

val attribute : env -> Geometry.t -> Components.assist -> attribution

val refold : (string * float) list -> float
(** Left fold of [+.] seeded with the first term ([0.0] on an empty
    list) — the association [evaluate] uses. *)

val attribution_consistent : attribution -> bool
(** Re-derive [e_read], [e_write], [e_switching], [e_total], [d_read],
    [d_write], [d_array] and [edp] from the attribution lists and
    compare each against [at_metrics] {e bitwise}
    ([Int64.bits_of_float] equality).  [attribute] guarantees [true];
    exposed so tests and the [explain] command can assert it. *)

(** {1 Staged evaluation kernel}

    [evaluate] recomputes per-(geometry, assist) work that depends on
    only one of the two coordinates.  The staged kernel factors it:
    {!stage} precomputes everything geometry-determined (decoders, wire
    capacitances, assist-blind Table 2 components, segment prefixes),
    {!prepare} everything assist-determined (rail drive currents, write
    cell delay), and {!complete} finishes the cross terms — a few dozen
    float operations with no table lookups or memo locks.  Results are
    bit-identical to [evaluate]: every hoisted leaf comes from the same
    expression as the reference path and the combining arithmetic runs
    in the same association order (asserted field-for-field by the
    QCheck property suite). *)

type staged
(** Geometry-resolved evaluation state: [evaluate] with the assist-
    dependent holes left open. *)

type prepared
(** Assist-resolved evaluation state: rail currents and the write cell
    delay for one assist, reusable across every geometry. *)

val stage : env -> Geometry.t -> staged
(** Hoist all geometry-only computation.  Increments the
    ["array_eval.stage"] telemetry counter. *)

val prepare : env -> Components.assist -> prepared
(** Hoist all assist-only computation (four rail currents and the write
    cell delay). *)

val complete : staged -> prepared -> metrics
(** Finish the evaluation; bit-identical to
    [evaluate env geometry assist] for the matching inputs. *)

val eval_staged : staged -> Components.assist -> metrics
(** [complete st (prepare env a)] — convenience form when the assist has
    not been prepared ahead of time. *)

val staged_env : staged -> env
val staged_geometry : staged -> Geometry.t
val prepared_assist : prepared -> Components.assist

(** {1 Staging context: cross-search geometry sharing}

    The assist-blind components' drive currents are environment
    constants (the FinFET device-model draws depend on the geometry
    only through the small integers n_wr/n_pre), and a Table 4 sweep
    re-stages the same geometries across searches — M1 and M2 of one
    flavor share the full (n_r, n_c) grid, and a long-lived server
    replays whole sweeps.  A [ctx] hoists the currents once per
    environment and carries a bounded, mutex-guarded geometry-keyed
    cache of finished [staged] records; records built through a context
    are bit-identical to [stage]'s (the hoisted draws come from the
    exact [Currents] functions). *)

type ctx

val make_ctx : env -> ctx
(** Fresh context (empty staged cache) for this environment. *)

val ctx_for : env -> ctx
(** The process-wide context registered for this environment value
    (physical equality — environments are built once and shared).
    Creates and registers one on first use; the registry holds the most
    recent handful of environments. *)

val ctx_env : ctx -> env

val stage_with : ctx -> Geometry.t -> staged
(** [stage] through a context: hoisted env constants, geometry-keyed
    cache.  [stage env g] is [stage_with (ctx_for env) g]. *)

val stage_array : ctx -> Geometry.t array -> staged array
(** Stage a whole candidate grid, cached per domain by the *identity*
    of the array: searches that share one memoized grid (e.g. the two
    methods of a Table 4 capacity) get the previous result back without
    any per-geometry lookup.  Element [i] is [stage_with ctx gs.(i)];
    the result is immutable shared state — callers must only read it. *)

val reset_staging : unit -> unit
(** Drop every registered context (benchmarks call this between runs so
    cold-path measurements stay cold). *)

(** {1 Admissible lower envelope}

    Over a set of assists, taking per Equation (1) operand the extreme
    that minimizes each component (smallest dV and V, largest I) gives
    component values lower-bounding the component at every enveloped
    assist.  Every combining operation downstream (+., *., /., max — all
    on non-negative operands) is monotone under IEEE round-to-nearest,
    so {!bound_metrics} lower-bounds every metrics field of every
    enveloped assist with no epsilon.  A search may therefore skip a
    geometry whose bound already exceeds the incumbent without ever
    pruning the optimum. *)

type envelope

val envelope : prepared array -> envelope
(** Component-wise lower envelope of the given assists.  Raises
    [Invalid_argument] on an empty array. *)

val bound_metrics : staged -> envelope -> metrics
(** Admissible per-field lower bounds for this geometry over the
    enveloped assists.  The fields are bounds, generally not attained by
    any single assist. *)

val bound_prepared : env -> envelope -> prepared
(** The envelope as a scan point: a [prepared] whose operands are the
    envelope's extremes (assist slot = [Components.no_assist]).
    Evaluating it — through {!complete} or {!scan} — reproduces
    {!bound_metrics} bit-for-bit, so searches can fold bound evaluation
    into the same allocation-free scan as real candidates. *)

val suffix_envelopes : prepared array -> block:int -> envelope array
(** [suffix_envelopes ps ~block] — element [j] envelopes every assist
    from index [j * block] to the end (element 0 covers the whole
    array).  Built by one right-to-left incremental fold.  A search
    evaluating a scan block-by-block can abandon the line after block
    [j] when the bound of envelope [j + 1] already exceeds the
    incumbent: the suffix bound is admissible for exactly the points
    not yet evaluated, so the pruning stays exact as the incumbent
    tightens mid-scan.  Raises [Invalid_argument] on an empty array or
    non-positive [block]. *)

(** {1 Batched scan kernel}

    One geometry's whole assist scan evaluated into preallocated
    structure-of-arrays float buffers with zero per-candidate
    allocation: no [metrics] record is built per point — the caller
    reduces over the flat arrays and materializes {!complete} for the
    single winning index.  Each buffer slot [i] holds Equation (2)'s
    D_array, Equation (5)'s E_total and the EDP product for assist
    [ps.(i)], bit-identical to the corresponding [eval_staged] fields
    (the loop re-runs the reference arithmetic in the reference
    association order; pinned by the QCheck property suite including
    [-0.0]/subnormal corners). *)

type scan_buffer

val scan_buffer : unit -> scan_buffer
(** Fresh buffer; grows on demand, so one per domain serves every scan
    length (pair with [Runtime.Pool.local]). *)

val scan : staged -> prepared array -> scan_buffer -> unit
(** Evaluate the whole scan into the buffer (length = array length). *)

val scan_slice : staged -> prepared array -> scan_buffer -> lo:int -> hi:int -> unit
(** Evaluate indices [lo, hi): block-wise form for searches that
    interleave evaluation with suffix-bound early exit.  Slots below
    [lo] keep their previous contents; {!scan_length} becomes [hi]. *)

val scan_length : scan_buffer -> int

val scan_e_total : scan_buffer -> float array
(** The backing arrays themselves (no copy); valid indices are
    [0, scan_length); contents are overwritten by the next scan. *)

val scan_d_array : scan_buffer -> float array
val scan_edp : scan_buffer -> float array
