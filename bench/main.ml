(* Benchmark / reproduction harness.

   With no arguments it regenerates every table and figure of the paper's
   evaluation (printing paper-vs-measured rows), runs the ablation studies
   called out in DESIGN.md, and finishes with Bechamel micro-benchmarks of
   the computational kernels (one Test.make per experiment family).

   With an argument it runs one experiment from the DESIGN.md index:
     fig2a fig2b fig3a fig3b fig3c fig3d fig5a fig5b
     table4 fig7a fig7b fig7c fig7d headline ablation timing *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '#')

(* --smoke shrinks experiments to the reduced space at one capacity — a
   seconds-long end-to-end liveness check for `make check`. *)
let smoke = ref false

(* --no-json runs the full benchmarks without refreshing the committed
   BENCH_*.json baselines — for one-off runs under a non-default build
   profile (e.g. `make bench-kernel-opt`'s release build). *)
let no_json = ref false

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* ----- ablations (DESIGN.md section 5) ----- *)

let ablation_accounting () =
  section "Ablation: energy accounting (Table 3 verbatim vs physical multiplicities)";
  List.iter
    (fun (name, accounting) ->
      let h = Sram_edp.Framework.headline ~accounting () in
      Printf.printf
        "%-9s: avg EDP reduction %5.1f%%, delay penalty avg %4.1f%% / max %4.1f%%\n"
        name
        (100.0 *. h.Sram_edp.Framework.avg_edp_reduction)
        (100.0 *. h.Sram_edp.Framework.avg_delay_penalty)
        (100.0 *. h.Sram_edp.Framework.max_delay_penalty))
    [ ("strict", Array_model.Array_eval.Paper_strict);
      ("physical", Array_model.Array_eval.Physical) ];
  print_endline
    "(The paper's leakage-driven story needs its own per-component accounting;\n\
     physical per-bitline pricing shifts weight to switching energy and\n\
     compresses the HVT advantage.)"

let ablation_objective () =
  section "Ablation: optimization objective at 4KB, 6T-HVT-M2";
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let table =
    Sram_edp.Report.create
      ~columns:[ "objective"; "org"; "V_SSC"; "delay"; "energy"; "EDP" ]
  in
  List.iter
    (fun objective ->
      let r =
        Opt.Exhaustive.search ~objective ~env ~capacity_bits:(4096 * 8)
          ~method_:Opt.Space.M2 ()
      in
      let b = r.Opt.Exhaustive.best in
      let g = b.Opt.Exhaustive.geometry in
      let m = b.Opt.Exhaustive.metrics in
      Sram_edp.Report.add_row table
        [ Opt.Objective.name objective;
          Printf.sprintf "%dx%d" g.Array_model.Geometry.nr g.Array_model.Geometry.nc;
          Sram_edp.Units.mv b.Opt.Exhaustive.assist.Array_model.Components.vssc;
          Sram_edp.Units.ps m.Array_model.Array_eval.d_array;
          Sram_edp.Units.fj m.Array_model.Array_eval.e_total;
          Printf.sprintf "%.3g Js" m.Array_model.Array_eval.edp ])
    Opt.Objective.all;
  Sram_edp.Report.print table

let ablation_anneal () =
  section "Ablation: search strategies (exhaustive vs annealing vs coordinate descent)";
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "capacity"; "exhaustive"; "anneal (gap)"; "local search (gap)";
          "considered (exh/ann/ls)" ]
  in
  List.iter
    (fun capacity_bits ->
      let exact = Opt.Exhaustive.search ~env ~capacity_bits ~method_:Opt.Space.M2 () in
      let score (r : Opt.Exhaustive.result) = r.Opt.Exhaustive.best.Opt.Exhaustive.score in
      let describe (r : Opt.Exhaustive.result) =
        Printf.sprintf "%d evals (%s)" r.Opt.Exhaustive.evaluated
          (Sram_edp.Units.percent ((score r /. score exact) -. 1.0))
      in
      let annealed = Opt.Anneal.search ~seed:42 ~env ~capacity_bits ~method_:Opt.Space.M2 () in
      let local = Opt.Local_search.search ~env ~capacity_bits ~method_:Opt.Space.M2 () in
      Sram_edp.Report.add_row table
        [ Sram_edp.Units.capacity capacity_bits;
          Printf.sprintf "%d evals" exact.Opt.Exhaustive.evaluated;
          describe annealed;
          describe local;
          Printf.sprintf "%d / %d / %d" exact.Opt.Exhaustive.considered
            annealed.Opt.Exhaustive.considered
            local.Opt.Exhaustive.considered ])
    Sram_edp.Framework.paper_capacities;
  Sram_edp.Report.print table

let ablation_read_model () =
  section "Ablation: simulated stack current vs the paper's power-law fit";
  let at model =
    let env =
      Array_model.Array_eval.make_env ~read_current_model:model
        ~cell_flavor:Finfet.Library.Hvt ()
    in
    let r =
      Opt.Exhaustive.search ~env ~capacity_bits:(4096 * 8) ~method_:Opt.Space.M2 ()
    in
    r.Opt.Exhaustive.best
  in
  let sim = at `Simulated and fit = at `Paper_fit in
  let describe label (b : Opt.Exhaustive.candidate) =
    Printf.printf "%-10s: V_SSC=%s D=%s EDP=%.3g Js\n" label
      (Sram_edp.Units.mv b.Opt.Exhaustive.assist.Array_model.Components.vssc)
      (Sram_edp.Units.ps b.Opt.Exhaustive.metrics.Array_model.Array_eval.d_array)
      b.Opt.Exhaustive.metrics.Array_model.Array_eval.edp
  in
  describe "simulated" sim;
  describe "paper fit" fit

let ablation_ksigma () =
  section "Ablation: simplified margin rule vs Monte Carlo mu - k sigma";
  let lib = Lazy.force Finfet.Library.default in
  let flavor = Finfet.Library.Hvt in
  let levels = Opt.Yield.solve ~flavor () in
  let pins = Opt.Space.pins_for Opt.Space.M2 levels in
  let samples =
    Sram_cell.Montecarlo.sample_margins ~points:31 ~seed:2026 ~n:40
      ~nfet:(Finfet.Library.nfet lib flavor)
      ~pfet:(Finfet.Library.pfet lib flavor)
      ~read_condition:(Sram_cell.Sram6t.read ~vddc:pins.Opt.Space.vddc ())
      ~write_condition:(Sram_cell.Sram6t.write0 ~vwl:pins.Opt.Space.vwl ())
      ()
  in
  Printf.printf "HVT at pinned rails (V_DDC=%s, V_WL=%s), 40 MC samples:\n"
    (Sram_edp.Units.mv pins.Opt.Space.vddc) (Sram_edp.Units.mv pins.Opt.Space.vwl);
  List.iter
    (fun k ->
      let s = Sram_cell.Montecarlo.summarize ~k samples in
      Printf.printf "  k=%.0f: worst (mu - k sigma) = %s -> %s\n" k
        (Sram_edp.Units.mv s.Sram_cell.Montecarlo.worst_mu_minus_k_sigma)
        (if Sram_cell.Montecarlo.passes_k_sigma ~k samples then "PASS" else "FAIL"))
    [ 1.0; 3.0; 6.0 ];
  Printf.printf
    "  simplified rule (min margin >= %s at nominal corners): PASS by construction\n"
    (Sram_edp.Units.mv Finfet.Tech.min_margin);
  (* Re-pin the assist voltages under the k-sigma constraint itself and
     re-run the 4KB co-optimization — the "accurate way" end to end. *)
  List.iter
    (fun k ->
      let mc =
        Opt.Yield_mc.solve
          ~config:{ Opt.Yield_mc.default_config with Opt.Yield_mc.k }
          ~flavor ()
      in
      let injected =
        { Opt.Yield.vddc_min = mc.Opt.Yield_mc.vddc_min;
          vwl_min = mc.Opt.Yield_mc.vwl_min;
          hsnm_nominal = levels.Opt.Yield.hsnm_nominal }
      in
      let env = Array_model.Array_eval.make_env ~cell_flavor:flavor () in
      let r =
        Opt.Exhaustive.search ~levels:injected ~env ~capacity_bits:(4096 * 8)
          ~method_:Opt.Space.M2 ()
      in
      let m = r.Opt.Exhaustive.best.Opt.Exhaustive.metrics in
      Printf.printf
        "  k=%.0f pins: V_DDC=%s V_WL=%s -> 4KB HVT-M2 D=%s EDP=%.3g Js\n" k
        (Sram_edp.Units.mv mc.Opt.Yield_mc.vddc_min)
        (Sram_edp.Units.mv mc.Opt.Yield_mc.vwl_min)
        (Sram_edp.Units.ps m.Array_model.Array_eval.d_array)
        m.Array_model.Array_eval.edp)
    [ 3.0; 6.0 ];
  Printf.printf
    "  (the simplified 35%%-of-Vdd pins were V_DDC=%s V_WL=%s)\n"
    (Sram_edp.Units.mv pins.Opt.Space.vddc)
    (Sram_edp.Units.mv pins.Opt.Space.vwl)

let ablation_validate () =
  section "Validation: Equation (1) vs distributed-RC column transient";
  let lib = Lazy.force Finfet.Library.default in
  let cell =
    Finfet.Variation.nominal_cell
      ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
      ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
  in
  let table =
    Sram_edp.Report.create
      ~columns:[ "column"; "condition"; "analytic"; "simulated"; "error" ]
  in
  List.iter
    (fun (nr, vssc, with_wire_resistance) ->
      let config =
        { Sram_cell.Column.default_config with
          Sram_cell.Column.nr; with_wire_resistance }
      in
      let r =
        Sram_cell.Column.validate ~cell config
          (Sram_cell.Sram6t.read ~vddc:0.55 ~vssc ())
      in
      Sram_edp.Report.add_row table
        [ Printf.sprintf "%d rows%s" nr
            (if with_wire_resistance then "" else " (no wire R)");
          Printf.sprintf "V_SSC=%s" (Sram_edp.Units.mv vssc);
          Sram_edp.Units.ps r.Sram_cell.Column.analytic;
          Sram_edp.Units.ps r.Sram_cell.Column.simulated;
          Sram_edp.Units.percent r.Sram_cell.Column.relative_error ])
    [ (64, 0.0, true);
      (64, -0.240, true);
      (256, 0.0, true);
      (512, 0.0, true);
      (512, 0.0, false) ];
  Sram_edp.Report.print table;
  print_endline
    "(The paper's lumped C dV / I model neglects wire resistance; the error\n\
     it introduces stays in the single digits even at 512 rows.)";
  let wtable =
    Sram_edp.Report.create
      ~columns:[ "column"; "N_wr"; "analytic"; "simulated"; "error" ]
  in
  List.iter
    (fun (nr, n_wr) ->
      let config =
        { Sram_cell.Column.default_config with Sram_cell.Column.nr; n_wr }
      in
      let r = Sram_cell.Column.validate_write ~cell config in
      Sram_edp.Report.add_row wtable
        [ Printf.sprintf "%d rows" nr;
          string_of_int n_wr;
          Sram_edp.Units.ps r.Sram_cell.Column.analytic;
          Sram_edp.Units.ps r.Sram_cell.Column.simulated;
          Sram_edp.Units.percent r.Sram_cell.Column.relative_error ])
    [ (64, 1); (64, 4); (256, 2); (512, 2); (512, 8) ];
  Sram_edp.Report.print
    ~title:"Validation: Table 2's BL-write pricing vs a transmission-gate transient"
    wtable;
  print_endline
    "(The full-swing write model holds within ~20% while the transmission\n\
     gate is the bottleneck; once a strong buffer outruns the bitline's own\n\
     RC — 512 rows, 8 fins — the wire dominates and C dV / I underestimates\n\
     several-fold.  The optimizer's small N_wr choices keep it in the valid\n\
     regime.)"

let ablation_banking () =
  section "Extension: bank-count co-optimization, 64KB 6T-HVT-M2";
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let best, all =
    Cache_model.Banked.optimize ~space:Opt.Space.reduced ~env
      ~capacity_bits:(64 * 1024 * 8) ~method_:Opt.Space.M2 ()
  in
  let table =
    Sram_edp.Report.create
      ~columns:[ "banks"; "H-tree"; "total delay"; "energy"; "EDP"; "" ]
  in
  List.iter
    (fun (d : Cache_model.Banked.bank_design) ->
      Sram_edp.Report.add_row table
        [ string_of_int d.Cache_model.Banked.banks;
          Sram_edp.Units.ps d.Cache_model.Banked.d_htree;
          Sram_edp.Units.ps d.Cache_model.Banked.d_total;
          Sram_edp.Units.fj d.Cache_model.Banked.e_total;
          Printf.sprintf "%.3g Js" d.Cache_model.Banked.edp;
          (if d.Cache_model.Banked.banks = best.Cache_model.Banked.banks
           then "<-- best" else "") ])
    all;
  Sram_edp.Report.print table

let ablation_corners () =
  section "Extension: five-corner signoff of the pinned HVT rails";
  let lib = Lazy.force Finfet.Library.default in
  let nfet = Finfet.Library.nfet lib Finfet.Library.Hvt in
  let pfet = Finfet.Library.pfet lib Finfet.Library.Hvt in
  let table =
    Sram_edp.Report.create ~columns:[ "corner"; "HSNM"; "RSNM"; "WM"; "leakage" ]
  in
  List.iter
    (fun corner ->
      let cell = Finfet.Corners.cell corner ~nfet ~pfet in
      Sram_edp.Report.add_row table
        [ Finfet.Corners.name corner;
          Sram_edp.Units.mv
            (Sram_cell.Margins.hold_snm ~points:41 ~cell Finfet.Tech.vdd_nominal);
          Sram_edp.Units.mv
            (Sram_cell.Margins.read_snm ~points:41 ~cell
               (Sram_cell.Sram6t.read ~vddc:0.55 ()));
          Sram_edp.Units.mv
            (Sram_cell.Margins.write_margin ~cell (Sram_cell.Sram6t.write0 ~vwl:0.55 ()));
          Sram_edp.Units.nw (Sram_cell.Leakage.power ~cell ()) ])
    Finfet.Corners.all;
  Sram_edp.Report.print table

let ablation_eight_t () =
  section "Extension: 8T-LVT versus the paper's 6T-HVT proposal";
  Sram_edp.Eight_t.print_comparison ~capacity_bits:(4096 * 8);
  Sram_edp.Eight_t.print_comparison ~capacity_bits:(16384 * 8);
  print_endline
    "(The 8T cell fixes read stability structurally — RSNM = HSNM, no boost\n\
     rail — but keeps LVT leakage, adds a read-port leakage path and ~30%\n\
     area; the paper's HVT-plus-assists route wins the EDP comparison.)"

let ablation_workload () =
  section "Extension: workload sensitivity (alpha, beta from synthetic traces)";
  let rows = Workload.Sensitivity.study ~capacity_bits:(4096 * 8) () in
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "workload"; "alpha"; "beta"; "V_SSC"; "delay"; "energy"; "EDP";
          "HVT advantage" ]
  in
  List.iter
    (fun (r : Workload.Sensitivity.study_row) ->
      Sram_edp.Report.add_row table
        [ r.Workload.Sensitivity.name;
          Printf.sprintf "%.2f" r.Workload.Sensitivity.alpha;
          Printf.sprintf "%.2f" r.Workload.Sensitivity.beta;
          Sram_edp.Units.mv r.Workload.Sensitivity.vssc;
          Sram_edp.Units.ps r.Workload.Sensitivity.d_array;
          Sram_edp.Units.fj r.Workload.Sensitivity.e_total;
          Printf.sprintf "%.3g Js" r.Workload.Sensitivity.edp;
          Sram_edp.Units.percent (-.r.Workload.Sensitivity.hvt_advantage) ])
    rows;
  Sram_edp.Report.print table;
  print_endline
    "(Idle-dominated workloads amplify the leakage term and with it the HVT\n\
     advantage — the paper's fixed alpha = 0.5 is the conservative case.)"

let ablation_thermal () =
  section "Extension: temperature derating (leakage and retention margin)";
  let lib = Lazy.force Finfet.Library.default in
  let table =
    Sram_edp.Report.create
      ~columns:[ "T"; "P_leak LVT"; "P_leak HVT"; "ratio"; "HSNM LVT"; "HSNM HVT" ]
  in
  List.iter
    (fun celsius ->
      let cell flavor =
        Finfet.Variation.nominal_cell
          ~nfet:(Finfet.Thermal.at_temperature ~celsius (Finfet.Library.nfet lib flavor))
          ~pfet:(Finfet.Thermal.at_temperature ~celsius (Finfet.Library.pfet lib flavor))
      in
      let lvt = cell Finfet.Library.Lvt and hvt = cell Finfet.Library.Hvt in
      let pl = Sram_cell.Leakage.power ~cell:lvt () in
      let ph = Sram_cell.Leakage.power ~cell:hvt () in
      Sram_edp.Report.add_row table
        [ Printf.sprintf "%.0f C" celsius;
          Sram_edp.Units.nw pl;
          Sram_edp.Units.nw ph;
          Printf.sprintf "%.1fx" (pl /. ph);
          Sram_edp.Units.mv
            (Sram_cell.Margins.hold_snm ~points:41 ~cell:lvt Finfet.Tech.vdd_nominal);
          Sram_edp.Units.mv
            (Sram_cell.Margins.hold_snm ~points:41 ~cell:hvt Finfet.Tech.vdd_nominal) ])
    [ 25.0; 85.0; 125.0 ];
  Sram_edp.Report.print table;
  print_endline
    "(Both flavors leak exponentially with temperature; the LVT/HVT ratio\n\
     narrows as kT erodes the fixed threshold gap, but HVT's retention\n\
     margin barely moves where LVT's drops 37 mV.)"

let ablation_stat_timing () =
  section "Extension: statistical sense timing (3-sigma slow-cell guardband)";
  let lib = Lazy.force Finfet.Library.default in
  let cell =
    Finfet.Variation.nominal_cell
      ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
      ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
  in
  let table =
    Sram_edp.Report.create
      ~columns:[ "V_SSC"; "nominal"; "mean"; "3-sigma slow"; "derate" ]
  in
  List.iter
    (fun vssc ->
      let g =
        Sram_cell.Stat_timing.bl_delay_guardband ~cell
          ~column:Sram_cell.Column.default_config
          ~condition:(Sram_cell.Sram6t.read ~vddc:0.55 ~vssc ())
          ()
      in
      Sram_edp.Report.add_row table
        [ Sram_edp.Units.mv vssc;
          Sram_edp.Units.ps g.Sram_cell.Stat_timing.nominal_delay;
          Sram_edp.Units.ps g.Sram_cell.Stat_timing.mean_delay;
          Sram_edp.Units.ps g.Sram_cell.Stat_timing.k_sigma_delay;
          Printf.sprintf "%.2fx" g.Sram_cell.Stat_timing.derate ])
    [ 0.0; -0.120; -0.240 ];
  Sram_edp.Report.print table;
  print_endline
    "(Beyond its mean speedup, negative Gnd shrinks the relative spread of\n\
     the read current — the 3-sigma guardband falls from 1.58x to 1.19x —\n\
     because the added overdrive makes the stack less Vt-sensitive.)"

let ablation_dcdc () =
  section "Extension: derived DC-DC overheads (vs the assumed 1.25 factor)";
  List.iter
    (fun (label, v_out) ->
      Printf.printf "  %-22s eta=%.1f%%  overhead=%.3f\n" label
        (100.0 *. Array_model.Dcdc.efficiency ~v_out ())
        (Array_model.Dcdc.overhead ~v_out ()))
    [ ("V_DDC/V_WL = 550 mV", 0.550);
      ("V_WL (LVT) = 510 mV", 0.510);
      ("V_DDC (LVT) = 570 mV", 0.570);
      ("V_SSC = -240 mV", -0.240);
      ("V_SSC = -100 mV", -0.100) ];
  let lib = Lazy.force Finfet.Library.default in
  let nfet = Finfet.Library.nfet lib Finfet.Library.Lvt in
  let pfet = Finfet.Library.pfet lib Finfet.Library.Lvt in
  Printf.printf
    "  (fin-quantized WL-driver delay penalty vs continuous sizing: %.1f%% at 40 fF)\n"
    (100.0 *. Gates.Superbuffer.quantization_penalty ~nfet ~pfet ~c_load:40e-15);
  (* And the other fixed constant of Section 5: the sensing swing. *)
  let offset = Gates.Sa_offset.analyze ~n:150 ~nfet ~pfet () in
  Printf.printf
    "  sense-amp offset under mismatch: sigma = %s -> required swing %s (paper: Delta V_S = 120 mV)\n"
    (Sram_edp.Units.mv offset.Gates.Sa_offset.sigma)
    (Sram_edp.Units.mv offset.Gates.Sa_offset.required_swing)

let ablation_minarray () =
  section "Validation: end-to-end transistor-level array read/write";
  let lib = Lazy.force Finfet.Library.default in
  let cell =
    Finfet.Variation.nominal_cell
      ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
      ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
  in
  let r =
    Sram_cell.Minarray.read_experiment ~nr:16 ~nc:4 ~cell
      (Sram_cell.Sram6t.read ~vddc:0.55 ())
  in
  Printf.printf
    "read, 16x4 cells (%d unknowns): sensed in %s vs %s analytic (%s);\n  accessed cell retains: %b; row mates retain: %b; other rows retain: %b\n"
    r.Sram_cell.Minarray.unknowns
    (Sram_edp.Units.ps r.Sram_cell.Minarray.sensed_delay)
    (Sram_edp.Units.ps r.Sram_cell.Minarray.analytic_delay)
    (Sram_edp.Units.percent r.Sram_cell.Minarray.relative_error)
    r.Sram_cell.Minarray.accessed_retains r.Sram_cell.Minarray.row_mates_retain
    r.Sram_cell.Minarray.unselected_retain;
  let w = Sram_cell.Minarray.write_experiment ~cell ~vwl:0.55 () in
  Printf.printf
    "write, 8x4 cells: target flipped in %s; half-selected mates survive: %b; other rows: %b\n"
    (Sram_edp.Units.ps w.Sram_cell.Minarray.write_delay)
    w.Sram_cell.Minarray.mates_survive w.Sram_cell.Minarray.others_survive;
  print_endline
    "(Every cell here is six real transistors; the sparse-LU DC path makes\nthe hundreds-of-unknowns transients tractable.)"

let ablation_segmented () =
  section "Extension: divided word-line architecture at the 16KB optimum";
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let o =
    Sram_edp.Framework.optimize ~capacity_bits:(16384 * 8)
      ~config:{ Sram_edp.Framework.flavor = Finfet.Library.Hvt;
                method_ = Opt.Space.M2 }
      ()
  in
  let g = Sram_edp.Framework.geometry o in
  let a = Sram_edp.Framework.assist o in
  let base = Sram_edp.Framework.metrics o in
  let table =
    Sram_edp.Report.create
      ~columns:[ "WL organization"; "WL delay"; "delay"; "energy"; "EDP" ]
  in
  Sram_edp.Report.add_row table
    [ "flat (paper)";
      Sram_edp.Units.ps
        (Array_model.Components.wl_read env.Array_model.Array_eval.dcaps
           env.Array_model.Array_eval.currents g a)
          .Array_model.Components.delay;
      Sram_edp.Units.ps base.Array_model.Array_eval.d_array;
      Sram_edp.Units.fj base.Array_model.Array_eval.e_total;
      Printf.sprintf "%.3g Js" base.Array_model.Array_eval.edp ];
  let max_segments = Array_model.Segmented.natural_segments g in
  let rec powers s acc = if s > max_segments then List.rev acc else powers (2 * s) (s :: acc) in
  List.iter
    (fun segments ->
      let b =
        Array_model.Segmented.wl env.Array_model.Array_eval.dcaps
          env.Array_model.Array_eval.currents g a ~segments
      in
      let m = Array_model.Segmented.evaluate env g a ~segments in
      Sram_edp.Report.add_row table
        [ Printf.sprintf "%d segments" segments;
          Sram_edp.Units.ps b.Array_model.Segmented.d_total;
          Sram_edp.Units.ps m.Array_model.Array_eval.d_array;
          Sram_edp.Units.fj m.Array_model.Array_eval.e_total;
          Printf.sprintf "%.3g Js" m.Array_model.Array_eval.edp ])
    (powers 2 []);
  Sram_edp.Report.print table;
  print_endline
    "(With enough segments the divided WL beats the paper's flat organization
     on both delay and energy — a natural extension of its architecture
     search space.)"

let ablation_vddc_pin () =
  section "Ablation: is pinning V_DDC at the yield minimum EDP-optimal? (paper's claim)";
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let o =
    Sram_edp.Framework.optimize ~capacity_bits:(4096 * 8)
      ~config:{ Sram_edp.Framework.flavor = Finfet.Library.Hvt;
                method_ = Opt.Space.M2 }
      ()
  in
  let g = Sram_edp.Framework.geometry o in
  let a = Sram_edp.Framework.assist o in
  Printf.printf "EDP of the 4KB optimum as V_DDC rises above its 550 mV pin:\n";
  List.iter
    (fun vddc ->
      let m =
        Array_model.Array_eval.evaluate env g
          { a with Array_model.Components.vddc }
      in
      Printf.printf "  V_DDC=%s: D=%s E=%s EDP=%.4g Js\n" (Sram_edp.Units.mv vddc)
        (Sram_edp.Units.ps m.Array_model.Array_eval.d_array)
        (Sram_edp.Units.fj m.Array_model.Array_eval.e_total)
        m.Array_model.Array_eval.edp)
    [ 0.55; 0.60; 0.65; 0.70 ];
  print_endline
    "(Delay barely moves while energy climbs - confirming the paper's\nargument for pinning V_DDC at the lowest yield-passing level.)"

let ablation_dynamic () =
  section "Extension: dynamic read stability (the static margin is conservative)";
  let lib = Lazy.force Finfet.Library.default in
  let nfet = Finfet.Library.nfet lib Finfet.Library.Hvt in
  let pfet = Finfet.Library.pfet lib Finfet.Library.Hvt in
  let nominal = Finfet.Variation.nominal_cell ~nfet ~pfet in
  let weak =
    { nominal with
      Finfet.Variation.pull_down_l = Finfet.Device.with_vt nfet 0.47;
      Finfet.Variation.access_l = Finfet.Device.with_vt nfet 0.23 }
  in
  let cond = Sram_cell.Sram6t.read () in
  let rsnm = Sram_cell.Margins.read_snm ~points:41 ~cell:weak cond in
  Printf.printf "a 3-sigma-skewed cell: static RSNM = %s (statically rejected)\n"
    (Sram_edp.Units.mv rsnm);
  (match Sram_cell.Dynamic_stability.critical_pulse ~cell:weak ~condition:cond () with
   | Some p ->
     let sensing =
       Assist.Sweep.bl_delay_of_current ~flavor:Finfet.Library.Hvt
         (Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.55 ~vssc:(-0.24))
     in
     Printf.printf
       "  yet it survives WL pulses up to %s - while the assisted 64-row read\n  completes in %s, so dynamically the access is safe.\n"
       (Sram_edp.Units.ps p) (Sram_edp.Units.ps sensing)
   | None -> print_endline "  (cell unexpectedly stable)");
  print_endline
    "(Static-margin assist pinning is therefore conservative; a dynamic\nconstraint would admit lower boost levels - future work the framework\nalready supports measuring.)"

let ablation_array_yield () =
  section "Extension: statistical array yield vs the 35% margin proxy";
  let g = Array_model.Geometry.create ~nr:128 ~nc:256 ~n_pre:24 ~n_wr:2 () in
  let small = Array_model.Geometry.create ~nr:32 ~nc:32 ~n_pre:8 ~n_wr:1 () in
  let proxy = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
  Printf.printf "proxy rule (margins >= 35%% Vdd): V_DDC >= %s regardless of size\n"
    (Sram_edp.Units.mv proxy.Opt.Yield.vddc_min);
  List.iter
    (fun (label, geometry, spare_rows) ->
      let s =
        Opt.Array_yield.solve_vddc ~spare_rows ~flavor:Finfet.Library.Hvt
          ~geometry ()
      in
      Printf.printf
        "  %-22s 99%% array yield at V_DDC >= %s (yield %.4f, cell fail %.2g)\n"
        label (Sram_edp.Units.mv s.Opt.Array_yield.vddc_min)
        s.Opt.Array_yield.achieved_yield s.Opt.Array_yield.cell_fail)
    [ ("128B, no repair", small, 0);
      ("4KB, no repair", g, 0);
      ("4KB, 2 spare rows", g, 2) ];
  print_endline
    "(The direct yield computation is size-aware and less conservative than\nthe paper's fixed-threshold proxy; spare-row repair buys another grid\nstep of boost.)"

let ablations () =
  ablation_accounting ();
  ablation_objective ();
  ablation_anneal ();
  ablation_read_model ();
  ablation_ksigma ();
  ablation_validate ();
  ablation_banking ();
  ablation_corners ();
  ablation_eight_t ();
  ablation_workload ();
  ablation_thermal ();
  ablation_stat_timing ();
  ablation_dcdc ();
  ablation_segmented ();
  ablation_minarray ();
  ablation_vddc_pin ();
  ablation_dynamic ();
  ablation_array_yield ()

(* ----- Bechamel micro-benchmarks ----- *)

let timing () =
  section "Bechamel micro-benchmarks (time per run, OLS estimate)";
  let open Bechamel in
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let geometry = Array_model.Geometry.create ~nr:256 ~nc:512 ~n_pre:26 ~n_wr:3 () in
  let assist = { Array_model.Components.vddc = 0.55; vssc = -0.24; vwl = 0.55 } in
  let lib = Lazy.force Finfet.Library.default in
  let hvt_cell =
    Finfet.Variation.nominal_cell
      ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
      ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
  in
  let tests =
    [ Test.make ~name:"fig2a/hold-snm"
        (Staged.stage (fun () ->
             ignore (Sram_cell.Margins.hold_snm ~points:41 ~cell:hvt_cell 0.45)));
      Test.make ~name:"fig2b/leakage"
        (Staged.stage (fun () -> ignore (Sram_cell.Leakage.power ~cell:hvt_cell ())));
      Test.make ~name:"fig3/read-snm"
        (Staged.stage (fun () ->
             ignore
               (Sram_cell.Margins.read_snm ~points:41 ~cell:hvt_cell
                  (Sram_cell.Sram6t.read ~vddc:0.55 ()))));
      Test.make ~name:"fig3/stack-current"
        (Staged.stage (fun () ->
             ignore
               (Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.55 ~vssc:(-0.12))));
      Test.make ~name:"fig5/write-margin"
        (Staged.stage (fun () ->
             ignore
               (Sram_cell.Margins.write_margin ~cell:hvt_cell
                  (Sram_cell.Sram6t.write0 ~vwl:0.54 ()))));
      Test.make ~name:"table4/array-evaluate"
        (Staged.stage (fun () ->
             ignore (Array_model.Array_eval.evaluate env geometry assist)));
      Test.make ~name:"table4/exhaustive-search-1KB"
        (Staged.stage (fun () ->
             ignore
               (Opt.Exhaustive.search ~space:Opt.Space.reduced ~env
                  ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ())));
      Test.make ~name:"fig7/anneal-search-1KB"
        (Staged.stage (fun () ->
             ignore
               (Opt.Anneal.search ~space:Opt.Space.reduced
                  ~schedule:
                    { Opt.Anneal.initial_temperature = 0.3; cooling = 0.99; steps = 300 }
                  ~seed:1 ~env ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ())));
      Test.make ~name:"substrate/sparse-lu-200"
        (Staged.stage
           (let b = Numerics.Sparse.Builder.create ~n:200 in
            for i = 0 to 199 do
              Numerics.Sparse.Builder.add b i i 2.0;
              if i > 0 then Numerics.Sparse.Builder.add b i (i - 1) (-1.0);
              if i < 199 then Numerics.Sparse.Builder.add b i (i + 1) (-1.0)
            done;
            let a = Numerics.Sparse.of_builder b in
            let rhs = Array.make 200 1.0 in
            fun () -> ignore (Numerics.Sparse_lu.solve a rhs)));
      Test.make ~name:"substrate/ac-frequency-point"
        (Staged.stage
           (let n = Spice.Netlist.create () in
            let vin = Spice.Netlist.fresh_node n "vin" in
            let out = Spice.Netlist.fresh_node n "out" in
            Spice.Netlist.vdc n ~plus:vin ~minus:0 ~volts:0.0;
            Spice.Netlist.resistor n ~plus:vin ~minus:out ~ohms:1000.0;
            Spice.Netlist.capacitor n ~plus:out ~minus:0 ~farads:1e-9;
            fun () ->
              ignore
                (Spice.Ac.at_frequency n ~source_index:0 ~output:out
                   ~frequency:1e5)));
      Test.make ~name:"substrate/dc-operating-point"
        (Staged.stage (fun () ->
             let netlist, _ =
               Sram_cell.Sram6t.build ~cell:hvt_cell (Sram_cell.Sram6t.read ())
             in
             ignore (Spice.Dc.operating_point netlist)));
      Test.make ~name:"substrate/write-transient"
        (Staged.stage (fun () ->
             ignore
               (Sram_cell.Dynamics.write_delay ~cell:hvt_cell
                  (Sram_cell.Sram6t.write0 ~vwl:0.55 ())))) ]
  in
  let grouped = Test.make_grouped ~name:"sram-edp" tests in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let table = Sram_edp.Report.create ~columns:[ "kernel"; "time per run" ] in
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Sram_edp.Report.add_row table [ name; human ])
    (List.sort compare !rows);
  Sram_edp.Report.print table

(* ----- provenance ----- *)

(* Stamp bench JSON with the commit it measured, so successive
   BENCH_*.json files form a comparable trajectory. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

(* ----- runtime scaling benchmark ----- *)

(* Cold Table 4 sweeps at 1 / 2 / 4 jobs: wall time, evaluation rate and
   the memo hit rates once the sweep is warm.  Results also land in
   BENCH_runtime.json for the docs. *)
let runtime_bench () =
  section "Runtime: parallel sweep scaling and memo effectiveness";
  Obs.Control.set_enabled true;
  let capacities = Sram_edp.Framework.paper_capacities in
  let configs = Sram_edp.Framework.all_configs in
  let runs =
    List.map
      (fun jobs ->
        Runtime.Memo.reset_all ();
        Runtime.Telemetry.reset ();
        let pool = Runtime.Pool.create ~jobs () in
        let t0 = Runtime.Telemetry.now () in
        let designs =
          Sram_edp.Framework.sweep_capacities ~pool ~capacities ~configs ()
        in
        let wall = Runtime.Telemetry.now () -. t0 in
        (* The identical sweep again: every design must come out of the
           framework.optimize memo. *)
        let t1 = Runtime.Telemetry.now () in
        ignore (Sram_edp.Framework.sweep_capacities ~pool ~capacities ~configs ());
        let warm_wall = Runtime.Telemetry.now () -. t1 in
        Runtime.Pool.shutdown pool;
        let evals =
          Runtime.Telemetry.value (Runtime.Telemetry.counter "exhaustive.search")
        in
        let memos =
          List.filter
            (fun (s : Runtime.Memo.stats) ->
              s.Runtime.Memo.hits + s.Runtime.Memo.misses > 0)
            (Runtime.Memo.registered_stats ())
        in
        (jobs, wall, warm_wall, List.length designs, evals, memos))
      [ 1; 2; 4 ]
  in
  let wall_1j =
    match runs with (_, w, _, _, _, _) :: _ -> w | [] -> nan
  in
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "jobs"; "wall time"; "speedup"; "warm rerun"; "designs"; "evals";
          "evals/s" ]
  in
  List.iter
    (fun (jobs, wall, warm_wall, designs, evals, _) ->
      Sram_edp.Report.add_row table
        [ string_of_int jobs;
          Printf.sprintf "%.2f s" wall;
          Printf.sprintf "%.2fx" (wall_1j /. wall);
          Printf.sprintf "%.4f s" warm_wall;
          string_of_int designs;
          string_of_int evals;
          Printf.sprintf "%.0f" (float_of_int evals /. wall) ])
    runs;
  Sram_edp.Report.print table;
  (match runs with
   | (_, _, _, _, _, memos) :: _ ->
     print_endline "memo hit rates after cold + warm sweeps:";
     List.iter
       (fun (s : Runtime.Memo.stats) ->
         Printf.printf "  %-24s %6.1f%% (%d hits / %d misses)\n"
           s.Runtime.Memo.name
           (100.0 *. Runtime.Memo.hit_rate s)
           s.Runtime.Memo.hits s.Runtime.Memo.misses)
       memos
   | [] -> ());
  let json =
    Sram_edp.Json_out.Obj
      [ ("benchmark", Sram_edp.Json_out.String "table4-sweep");
        ("git_commit", Sram_edp.Json_out.String (git_commit ()));
        ("host_cores", Sram_edp.Json_out.Int (Domain.recommended_domain_count ()));
        ("capacities_bits",
         Sram_edp.Json_out.List
           (List.map (fun c -> Sram_edp.Json_out.Int c) capacities));
        ("histograms", Sram_edp.Json_out.histograms_json ());
        ("runs",
         Sram_edp.Json_out.List
           (List.map
              (fun (jobs, wall, warm_wall, designs, evals, memos) ->
                Sram_edp.Json_out.Obj
                  [ ("jobs", Sram_edp.Json_out.Int jobs);
                    ("wall_s", Sram_edp.Json_out.Float wall);
                    ("speedup", Sram_edp.Json_out.Float (wall_1j /. wall));
                    ("warm_wall_s", Sram_edp.Json_out.Float warm_wall);
                    ("designs", Sram_edp.Json_out.Int designs);
                    ("evaluations", Sram_edp.Json_out.Int evals);
                    ("memos",
                     Sram_edp.Json_out.List
                       (List.map Sram_edp.Json_out.of_memo_stats memos)) ])
              runs)) ]
  in
  let oc = open_out "BENCH_runtime.json" in
  output_string oc (Sram_edp.Json_out.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_runtime.json"

(* ----- staged-kernel benchmark ----- *)

(* FNV-1a over the fields that define a chosen design: if two sweeps pick
   the same designs bit-for-bit, their checksums match.  Shared with the
   checkpoint tests, so the bench and the resume bit-identity gate agree
   on what "identical" means. *)
let checksum_designs = Opt.Exhaustive.checksum

(* One measured sweep: both wall clock and the caller domain's Gc word
   counters.  At jobs = 1 every evaluation runs on the caller domain, so
   the word deltas are the whole sweep's allocation; at jobs > 1 the
   caller is worker 0 and the deltas are that domain's share. *)
type kernel_run = {
  kr_jobs : int;
  kr_ref_wall : float;
  kr_stg_wall : float;
  kr_ref_evals : int;
  kr_stg_evals : int;
  kr_pruned : int;
  kr_skipped : int;   (* points abandoned mid-scan by suffix bounds *)
  kr_covered : int;   (* reference evals - staged evals (prune + skip) *)
  kr_considered : int;  (* full geometry x vssc product (deterministic) *)
  kr_stg_minor_w : float;
  kr_stg_major_w : float;
  kr_ref_sum : string;
  kr_stg_sum : string;
}

(* The Table 4 sweep through both evaluation kernels at 1/2/4 jobs:
   staged-vs-reference wall clock, evaluations skipped by the admissible
   bound, Gc allocation per evaluation, and a bit-identity checksum of
   the chosen designs.  Bypasses the framework memo on purpose — every
   run prices the full search (staging contexts are also reset, so each
   run stages cold).

   Exit status is a gate: a checksum divergence across kernels or job
   counts fails the run.  Under --smoke the committed BENCH_kernel.json
   baseline is enforced too (checksum equality and an evals/sec floor),
   which is the CI regression gate and the release-profile equality gate
   behind `make bench-kernel-opt`. *)
let kernel_bench () =
  section "Kernel: batched scan + bound pruning vs reference path";
  Obs.Control.set_enabled true;
  let space = if !smoke then Opt.Space.reduced else Opt.Space.default in
  let capacities =
    if !smoke then [ 1024 * 8 ] else Sram_edp.Framework.paper_capacities
  in
  let configs = Sram_edp.Framework.all_configs in
  (* Environments and yield pins are shared setup, hoisted out of the
     timed region for both kernels alike. *)
  let env_of =
    let lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt () in
    let hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let levels_of =
    let lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
    let hvt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let sweep ~pool ~kernel =
    List.concat_map
      (fun capacity_bits ->
        List.map
          (fun (c : Sram_edp.Framework.config) ->
            Opt.Exhaustive.search ~space ~kernel ~pool
              ~levels:(levels_of c.Sram_edp.Framework.flavor)
              ~env:(env_of c.Sram_edp.Framework.flavor) ~capacity_bits
              ~method_:c.Sram_edp.Framework.method_ ())
          configs)
      capacities
  in
  let run jobs kernel =
    Runtime.Memo.reset_all ();
    Array_model.Array_eval.reset_staging ();
    let pool = Runtime.Pool.create ~jobs () in
    let gc0 = Gc.quick_stat () in
    let t0 = Runtime.Telemetry.now () in
    let results = sweep ~pool ~kernel in
    let wall = Runtime.Telemetry.now () -. t0 in
    let gc1 = Gc.quick_stat () in
    Runtime.Pool.shutdown pool;
    ( results, wall,
      gc1.Gc.minor_words -. gc0.Gc.minor_words,
      gc1.Gc.major_words -. gc0.Gc.major_words )
  in
  let sum f l = List.fold_left (fun acc r -> acc + f r) 0 l in
  let measure jobs =
    let ref_res, ref_wall, _, _ = run jobs `Reference in
    let stg_res, stg_wall, stg_minor, stg_major = run jobs `Staged in
    let ref_evals = sum (fun r -> r.Opt.Exhaustive.evaluated) ref_res in
    let stg_evals = sum (fun r -> r.Opt.Exhaustive.evaluated) stg_res in
    { kr_jobs = jobs;
      kr_ref_wall = ref_wall;
      kr_stg_wall = stg_wall;
      kr_ref_evals = ref_evals;
      kr_stg_evals = stg_evals;
      kr_pruned = sum (fun r -> r.Opt.Exhaustive.pruned) stg_res;
      kr_skipped = sum (fun r -> r.Opt.Exhaustive.skipped) stg_res;
      kr_covered = ref_evals - stg_evals;
      kr_considered = sum (fun r -> r.Opt.Exhaustive.considered) stg_res;
      kr_stg_minor_w = stg_minor;
      kr_stg_major_w = stg_major;
      kr_ref_sum = checksum_designs ref_res;
      kr_stg_sum = checksum_designs stg_res }
  in
  (* Reduced-space throughput probe shared by the --smoke gate and the
     full-run baseline recorder, so both numbers are produced by the
     same code under the same conditions.  One cold jobs-1 staged sweep
     of the reduced space lasts ~5 ms — short enough that scheduler and
     timer noise dominate a single sample — so the probe times several
     cold repetitions in one region and reports aggregate throughput. *)
  let smoke_probe () =
    let probe_space = Opt.Space.reduced in
    let probe_caps = [ 1024 * 8 ] in
    let reps = 10 in
    let pool = Runtime.Pool.create ~jobs:1 () in
    let decided = ref 0 in
    let sum_designs = ref "" in
    let t0 = Runtime.Telemetry.now () in
    for _ = 1 to reps do
      Runtime.Memo.reset_all ();
      Array_model.Array_eval.reset_staging ();
      let results =
        List.concat_map
          (fun capacity_bits ->
            List.map
              (fun (c : Sram_edp.Framework.config) ->
                Opt.Exhaustive.search ~space:probe_space ~kernel:`Staged ~pool
                  ~levels:(levels_of c.Sram_edp.Framework.flavor)
                  ~env:(env_of c.Sram_edp.Framework.flavor) ~capacity_bits
                  ~method_:c.Sram_edp.Framework.method_ ())
              configs)
          probe_caps
      in
      decided := !decided + sum (fun r -> r.Opt.Exhaustive.considered) results;
      sum_designs := checksum_designs results
    done;
    let wall = Runtime.Telemetry.now () -. t0 in
    Runtime.Pool.shutdown pool;
    (!sum_designs, float_of_int !decided /. wall)
  in
  let rows = List.map measure [ 1; 2; 4 ] in
  let evals_per_sec r = float_of_int r.kr_stg_evals /. r.kr_stg_wall in
  (* Decided points per second: the search settles every point of the
     geometry x vssc product — by evaluating it or covering it with an
     admissible bound — and the product is the same for both kernels,
     so this is the throughput figure that stays comparable when a
     better kernel *evaluates less* (raw evals/s punishes pruning). *)
  let decided_per_sec r = float_of_int r.kr_considered /. r.kr_stg_wall in
  let words_per_eval r = r.kr_stg_minor_w /. float_of_int r.kr_stg_evals in
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "jobs"; "reference"; "staged"; "speedup"; "decided/s"; "evals/s";
          "prune rate"; "minor w/eval"; "bit-identical" ]
  in
  List.iter
    (fun r ->
      Sram_edp.Report.add_row table
        [ string_of_int r.kr_jobs;
          Printf.sprintf "%.2f s" r.kr_ref_wall;
          Printf.sprintf "%.2f s" r.kr_stg_wall;
          Printf.sprintf "%.2fx" (r.kr_ref_wall /. r.kr_stg_wall);
          Printf.sprintf "%.1fM" (decided_per_sec r /. 1e6);
          Printf.sprintf "%.2fM" (evals_per_sec r /. 1e6);
          Sram_edp.Units.percent
            (float_of_int r.kr_covered /. float_of_int r.kr_ref_evals);
          Printf.sprintf "%.1f" (words_per_eval r);
          (if r.kr_ref_sum = r.kr_stg_sum then "yes" else "NO") ])
    rows;
  Sram_edp.Report.print table;
  let checksums = List.concat_map (fun r -> [ r.kr_ref_sum; r.kr_stg_sum ]) rows in
  let all_identical =
    match checksums with
    | [] -> true
    | first :: rest -> List.for_all (String.equal first) rest
  in
  Printf.printf "chosen designs identical across kernels and job counts: %s\n"
    (if all_identical then "yes" else "NO");
  let failures = ref [] in
  if not all_identical then
    failures := "kernel/job-count checksum divergence" :: !failures;
  if !smoke then begin
    (* Regression gate against the committed full-run baseline.  The
       baseline's [smoke_baseline] section was measured on this same
       reduced space, so the checksum must match bit-for-bit on any
       machine; throughput is machine-dependent, so the floor is 80% of
       baseline on the best of three trials (the row above plus two
       more), which damps scheduler noise without hiding a real
       regression. *)
    match read_file "BENCH_kernel.json" with
    | None ->
      print_endline
        "no committed BENCH_kernel.json — baseline gate skipped \
         (run the full kernel bench to create it)"
    | Some text -> (
      match Persist.Json.of_string text with
      | Error e ->
        failures := Printf.sprintf "BENCH_kernel.json unreadable: %s" e :: !failures
      | Ok json -> (
        match Persist.Json.member "smoke_baseline" json with
        | None ->
          print_endline
            "BENCH_kernel.json has no smoke_baseline — gate skipped \
             (re-run the full kernel bench to record one)"
        | Some base ->
          let expect_sum = Persist.Json.string_field base "checksum" in
          let expect_eps = Persist.Json.float_field base "decided_points_per_sec" in
          let probe_sum, eps0 = smoke_probe () in
          (match expect_sum with
           | Some s when s <> probe_sum ->
             failures :=
               Printf.sprintf
                 "checksum mismatch vs baseline: got %s, baseline %s"
                 probe_sum s
               :: !failures
           | _ -> ());
          (match expect_eps with
           | Some baseline_eps ->
             let best = Float.max eps0 (snd (smoke_probe ())) in
             Printf.printf
               "smoke throughput: %.2fM decided points/s (baseline %.2fM, \
                floor 80%%)\n"
               (best /. 1e6) (baseline_eps /. 1e6);
             if best < 0.8 *. baseline_eps then
               failures :=
                 Printf.sprintf
                   "decided points/sec regression: %.3g < 80%% of baseline %.3g"
                   best baseline_eps
                 :: !failures
           | None -> ())))
  end
  else begin
    (* Full run: measure the reduced-space jobs-1 throughput and
       checksum that --smoke gates against — through the same probe the
       gate uses — then (unless --no-json, the release-profile runs)
       refresh BENCH_kernel.json. *)
    let smoke_sum, eps0 = smoke_probe () in
    let smoke_eps = Float.max eps0 (snd (smoke_probe ())) in
    let json =
      Sram_edp.Json_out.Obj
        [ ("benchmark", Sram_edp.Json_out.String "staged-kernel");
          ("git_commit", Sram_edp.Json_out.String (git_commit ()));
          ("host_cores",
           Sram_edp.Json_out.Int (Domain.recommended_domain_count ()));
          ("capacities_bits",
           Sram_edp.Json_out.List
             (List.map (fun c -> Sram_edp.Json_out.Int c) capacities));
          ("bit_identical", Sram_edp.Json_out.Bool all_identical);
          ("histograms", Sram_edp.Json_out.histograms_json ());
          ("smoke_baseline",
           Sram_edp.Json_out.Obj
             [ ("space", Sram_edp.Json_out.String "reduced");
               ("capacities_bits",
                Sram_edp.Json_out.List [ Sram_edp.Json_out.Int (1024 * 8) ]);
               ("jobs", Sram_edp.Json_out.Int 1);
               ("checksum", Sram_edp.Json_out.String smoke_sum);
               ("decided_points_per_sec", Sram_edp.Json_out.Float smoke_eps) ]);
          ("runs",
           Sram_edp.Json_out.List
             (List.map
                (fun r ->
                  Sram_edp.Json_out.Obj
                    [ ("jobs", Sram_edp.Json_out.Int r.kr_jobs);
                      ("reference_wall_s",
                       Sram_edp.Json_out.Float r.kr_ref_wall);
                      ("staged_wall_s", Sram_edp.Json_out.Float r.kr_stg_wall);
                      ("speedup",
                       Sram_edp.Json_out.Float
                         (r.kr_ref_wall /. r.kr_stg_wall));
                      ("evals_per_sec",
                       Sram_edp.Json_out.Float (evals_per_sec r));
                      ("decided_points_per_sec",
                       Sram_edp.Json_out.Float (decided_per_sec r));
                      ("considered_points",
                       Sram_edp.Json_out.Int r.kr_considered);
                      ("reference_evaluations",
                       Sram_edp.Json_out.Int r.kr_ref_evals);
                      ("staged_evaluations",
                       Sram_edp.Json_out.Int r.kr_stg_evals);
                      ("pruned_scans", Sram_edp.Json_out.Int r.kr_pruned);
                      ("evals_skipped_midscan",
                       Sram_edp.Json_out.Int r.kr_skipped);
                      ("evals_skipped", Sram_edp.Json_out.Int r.kr_covered);
                      ("prune_rate",
                       Sram_edp.Json_out.Float
                         (float_of_int r.kr_covered
                          /. float_of_int r.kr_ref_evals));
                      ("staged_minor_words",
                       Sram_edp.Json_out.Float r.kr_stg_minor_w);
                      ("staged_major_words",
                       Sram_edp.Json_out.Float r.kr_stg_major_w);
                      ("staged_minor_words_per_eval",
                       Sram_edp.Json_out.Float (words_per_eval r));
                      ("checksum_reference",
                       Sram_edp.Json_out.String r.kr_ref_sum);
                      ("checksum_staged",
                       Sram_edp.Json_out.String r.kr_stg_sum) ])
                rows)) ]
    in
    if !no_json then
      print_endline "--no-json: BENCH_kernel.json left untouched"
    else begin
      let oc = open_out "BENCH_kernel.json" in
      output_string oc (Sram_edp.Json_out.to_string_pretty json);
      output_char oc '\n';
      close_out oc;
      print_endline "wrote BENCH_kernel.json"
    end
  end;
  match !failures with
  | [] -> ()
  | fs ->
    List.iter (Printf.eprintf "kernel bench GATE FAILED: %s\n") (List.rev fs);
    exit 1

(* ----- observability overhead benchmark ----- *)

(* Two questions the instrumentation must answer for:
     1. Does enabling histograms/tracing change which designs the search
        picks?  (It must not — checksums across off/stats/trace at 1/2/4
        jobs have to agree bit-for-bit.)
     2. What does the always-compiled-in instrumentation cost when it is
        actually recording?  (< 3% wall time on the staged Table 4 sweep,
        min-of-trials at 1 job so scheduler noise cannot hide a real
        regression.)
   Failing either check exits non-zero, so `make check` gates on it. *)
let obs_bench () =
  section "Observability: instrumentation overhead and determinism";
  let space = if !smoke then Opt.Space.reduced else Opt.Space.default in
  let capacities =
    if !smoke then [ 1024 * 8 ] else Sram_edp.Framework.paper_capacities
  in
  let configs = Sram_edp.Framework.all_configs in
  let env_of =
    let lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt () in
    let hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let levels_of =
    let lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
    let hvt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let sweep ~pool =
    List.concat_map
      (fun capacity_bits ->
        List.map
          (fun (c : Sram_edp.Framework.config) ->
            Opt.Exhaustive.search ~space ~kernel:`Staged ~pool
              ~levels:(levels_of c.Sram_edp.Framework.flavor)
              ~env:(env_of c.Sram_edp.Framework.flavor) ~capacity_bits
              ~method_:c.Sram_edp.Framework.method_ ())
          configs)
      capacities
  in
  let mode_name = function `Off -> "off" | `Stats -> "stats" | `Trace -> "trace" in
  (* Coarse trace detail: the full sweep visits ~10^4 geometries and a
     fine trace of it is a memory benchmark, not an overhead one. *)
  let with_mode mode f =
    (match mode with
     | `Off -> Obs.Control.set_enabled false
     | `Stats -> Obs.Control.set_enabled true
     | `Trace ->
       Obs.Control.set_enabled true;
       Obs.Trace.start ~detail:`Coarse ());
    let r = f () in
    (match mode with `Trace -> Obs.Trace.stop () | `Off | `Stats -> ());
    Obs.Control.set_enabled false;
    r
  in
  (* Determinism: every mode at every job count picks the same designs. *)
  let modes = [ `Off; `Stats; `Trace ] in
  let sums =
    List.map
      (fun jobs ->
        let pool = Runtime.Pool.create ~jobs () in
        let per_mode =
          List.map
            (fun mode ->
              let res = with_mode mode (fun () -> sweep ~pool) in
              (mode_name mode, checksum_designs res))
            modes
        in
        Runtime.Pool.shutdown pool;
        (jobs, per_mode))
      [ 1; 2; 4 ]
  in
  let all_sums = List.concat_map (fun (_, pm) -> List.map snd pm) sums in
  let bit_identical =
    match all_sums with
    | [] -> true
    | first :: rest -> List.for_all (String.equal first) rest
  in
  let table =
    Sram_edp.Report.create ~columns:[ "jobs"; "off"; "stats"; "trace"; "identical" ]
  in
  List.iter
    (fun (jobs, per_mode) ->
      let sum m = List.assoc m per_mode in
      Sram_edp.Report.add_row table
        [ string_of_int jobs; sum "off"; sum "stats"; sum "trace";
          (if List.for_all (fun (_, s) -> String.equal s (sum "off")) per_mode
           then "yes" else "NO") ])
    sums;
  Sram_edp.Report.print table;
  (* Overhead: warm every memo first, then run off/stats back to back in
     each trial (alternating which goes first, so neither mode
     systematically inherits a warmer cache or a quieter slice of the
     host). *)
  let trials = 9 in
  let reps = if !smoke then 10 else 3 in
  let pool = Runtime.Pool.create ~jobs:1 () in
  ignore (sweep ~pool);
  let time_mode mode =
    let t0 = Runtime.Telemetry.now () in
    with_mode mode (fun () ->
        for _ = 1 to reps do
          ignore (sweep ~pool)
        done);
    Runtime.Telemetry.now () -. t0
  in
  (* Wall-time noise on a shared host is strictly additive — background
     load can only slow a trial down, never speed it up — so the
     minimum over trials of each mode is the cleanest estimate of its
     true cost, and the gate compares min(stats)/min(off).  (A median
     of per-trial ratios fails whenever a load burst outlasts half the
     trials, which a single-core container sees regularly.) *)
  let minimum l = List.fold_left min infinity l in
  let measure () =
    let off_walls = ref [] and stats_walls = ref [] in
    for i = 1 to trials do
      let stats_first = i land 1 = 0 in
      let w1 = time_mode (if stats_first then `Stats else `Off) in
      let w2 = time_mode (if stats_first then `Off else `Stats) in
      let off, st = if stats_first then (w2, w1) else (w1, w2) in
      off_walls := off :: !off_walls;
      stats_walls := st :: !stats_walls
    done;
    let off = minimum !off_walls and st = minimum !stats_walls in
    (off, st, (st /. off) -. 1.0)
  in
  let threshold = 0.03 in
  (* The real overhead sits near 1%, well under budget; one re-measure
     on a failing estimate keeps a sustained burst of background load
     from failing the gate while a genuine regression (which both
     rounds would show) still does. *)
  let wall_off, wall_stats, overhead =
    let ((_, _, ov1) as m1) = measure () in
    if ov1 < threshold then m1
    else begin
      let ((_, _, ov2) as m2) = measure () in
      if ov2 < ov1 then m2 else m1
    end
  in
  Runtime.Pool.shutdown pool;
  let pass = overhead < threshold in
  Printf.printf
    "instrumentation overhead (stats on vs off, min over %d paired %d-rep \
     trials): %.3f s vs %.3f s = %+.2f%% (budget %.0f%%) -> %s\n"
    trials reps wall_stats wall_off (100.0 *. overhead) (100.0 *. threshold)
    (if pass then "pass" else "FAIL");
  Printf.printf "chosen designs identical across modes and job counts: %s\n"
    (if bit_identical then "yes" else "NO");
  let json =
    Sram_edp.Json_out.Obj
      [ ("benchmark", Sram_edp.Json_out.String "observability-overhead");
        ("git_commit", Sram_edp.Json_out.String (git_commit ()));
        ("host_cores", Sram_edp.Json_out.Int (Domain.recommended_domain_count ()));
        ("smoke", Sram_edp.Json_out.Bool !smoke);
        ("capacities_bits",
         Sram_edp.Json_out.List
           (List.map (fun c -> Sram_edp.Json_out.Int c) capacities));
        ("bit_identical", Sram_edp.Json_out.Bool bit_identical);
        ("overhead",
         Sram_edp.Json_out.Obj
           [ ("wall_off_s", Sram_edp.Json_out.Float wall_off);
             ("wall_stats_s", Sram_edp.Json_out.Float wall_stats);
             ("overhead", Sram_edp.Json_out.Float overhead);
             ("threshold", Sram_edp.Json_out.Float threshold);
             ("trials", Sram_edp.Json_out.Int trials);
             ("reps", Sram_edp.Json_out.Int reps);
             ("pass", Sram_edp.Json_out.Bool pass) ]);
        ("histograms", Sram_edp.Json_out.histograms_json ());
        ("runs",
         Sram_edp.Json_out.List
           (List.map
              (fun (jobs, per_mode) ->
                Sram_edp.Json_out.Obj
                  (("jobs", Sram_edp.Json_out.Int jobs)
                   :: List.map
                        (fun (m, s) ->
                          ("checksum_" ^ m, Sram_edp.Json_out.String s))
                        per_mode))
              sums)) ]
  in
  (* Like the kernel bench, --smoke never overwrites the committed
     full-space JSON. *)
  if not !smoke then begin
    let oc = open_out "BENCH_obs.json" in
    output_string oc (Sram_edp.Json_out.to_string_pretty json);
    output_char oc '\n';
    close_out oc;
    print_endline "wrote BENCH_obs.json"
  end;
  if not (pass && bit_identical) then exit 1

(* ----- explain / search-journal benchmark ----- *)

(* Two gates for the introspection layer behind `sram_opt explain` and
   `--search-log`:
     1. Is the search journal observation-only?  Winners must be
        bit-identical with the journal armed and disarmed at 1/2/4
        jobs — the journal may watch the search, never steer it.
     2. Is it cheap?  (< 3% wall time on the staged sweep with the
        journal armed, same min-of-paired-trials methodology as
        [obs_bench].)
   BENCH_explain.json embeds the convergence journal of a fresh sweep
   plus the bound-gap histogram, so CI archives a convergence curve
   alongside the gate results. *)
let explain_bench () =
  section "Explain: search journal overhead and bit-identity";
  let capacities =
    if !smoke then [ 1024 * 8 ] else Sram_edp.Framework.paper_capacities
  in
  let configs = Sram_edp.Framework.all_configs in
  let env_of =
    let lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt () in
    let hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let levels_of =
    let lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
    let hvt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let sweep ~space ~pool () =
    List.concat_map
      (fun capacity_bits ->
        List.map
          (fun (c : Sram_edp.Framework.config) ->
            Opt.Exhaustive.search ~space ~kernel:`Staged ~pool
              ~levels:(levels_of c.Sram_edp.Framework.flavor)
              ~env:(env_of c.Sram_edp.Framework.flavor) ~capacity_bits
              ~method_:c.Sram_edp.Framework.method_ ())
          configs)
      capacities
  in
  let with_journal armed f =
    if armed then Obs.Search.arm () else Obs.Search.disarm ();
    let r = f () in
    Obs.Search.disarm ();
    r
  in
  (* Bit-identity: the journal must not perturb the chosen designs.
     The reduced space is enough to exercise every hook, so smoke runs
     stay quick here. *)
  let bit_space = if !smoke then Opt.Space.reduced else Opt.Space.default in
  let sums =
    List.map
      (fun jobs ->
        let pool = Runtime.Pool.create ~jobs () in
        let off = with_journal false (sweep ~space:bit_space ~pool) in
        let on = with_journal true (sweep ~space:bit_space ~pool) in
        Runtime.Pool.shutdown pool;
        (jobs, checksum_designs off, checksum_designs on))
      [ 1; 2; 4 ]
  in
  let bit_identical =
    match sums with
    | [] -> true
    | (_, first, _) :: _ ->
      List.for_all
        (fun (_, off, on) -> String.equal off on && String.equal off first)
        sums
  in
  let table =
    Sram_edp.Report.create
      ~columns:[ "jobs"; "journal off"; "journal on"; "identical" ]
  in
  List.iter
    (fun (jobs, off, on) ->
      Sram_edp.Report.add_row table
        [ string_of_int jobs; off; on;
          (if String.equal off on then "yes" else "NO") ])
    sums;
  Sram_edp.Report.print table;
  (* Overhead: armed vs disarmed back to back in each trial, alternating
     order; min over trials (noise is additive, see obs_bench).
     Always the paper's full design space: journal cost scales with
     incumbent improvements (dozens per search regardless of space
     size), so a microscopic sweep would measure a fixed cost against a
     vanishing baseline and the percentage would be meaningless. *)
  let trials = 9 in
  let reps = if !smoke then 25 else 3 in
  let pool = Runtime.Pool.create ~jobs:1 () in
  let osweep = sweep ~space:Opt.Space.default ~pool in
  ignore (osweep ());
  let time_mode armed =
    let t0 = Runtime.Telemetry.now () in
    with_journal armed (fun () ->
        for _ = 1 to reps do
          ignore (osweep ())
        done);
    Runtime.Telemetry.now () -. t0
  in
  let minimum l = List.fold_left min infinity l in
  let measure () =
    let off_walls = ref [] and on_walls = ref [] in
    for i = 1 to trials do
      let on_first = i land 1 = 0 in
      let w1 = time_mode on_first in
      let w2 = time_mode (not on_first) in
      let off, on = if on_first then (w2, w1) else (w1, w2) in
      off_walls := off :: !off_walls;
      on_walls := on :: !on_walls
    done;
    let off = minimum !off_walls and on = minimum !on_walls in
    (off, on, (on /. off) -. 1.0)
  in
  let threshold = 0.03 in
  let wall_off, wall_on, overhead =
    let ((_, _, ov1) as m1) = measure () in
    if ov1 < threshold then m1
    else begin
      let ((_, _, ov2) as m2) = measure () in
      if ov2 < ov1 then m2 else m1
    end
  in
  Runtime.Pool.shutdown pool;
  let pass = overhead < threshold in
  Printf.printf
    "search journal overhead (armed vs disarmed, min over %d paired %d-rep \
     trials): %.3f s vs %.3f s = %+.2f%% (budget %.0f%%) -> %s\n"
    trials reps wall_on wall_off (100.0 *. overhead) (100.0 *. threshold)
    (if pass then "pass" else "FAIL");
  Printf.printf "winners identical with journal on and off at 1/2/4 jobs: %s\n"
    (if bit_identical then "yes" else "NO");
  (* One fresh journaled sweep with stats on, so the embedded journal
     carries the convergence curve and the bound-gap histogram fills. *)
  let pool = Runtime.Pool.create ~jobs:1 () in
  Obs.Search.arm ();
  Obs.Control.set_enabled true;
  ignore (sweep ~space:Opt.Space.default ~pool ());
  Obs.Control.set_enabled false;
  let journal = Sram_edp.Json_out.search_journal_json () in
  let s = Obs.Search.summary () in
  Obs.Search.disarm ();
  Runtime.Pool.shutdown pool;
  Printf.printf
    "convergence journal: %d incumbents, %d prunes, %d events stored\n"
    s.Obs.Search.incumbents s.Obs.Search.prunes s.Obs.Search.journaled;
  let json =
    Sram_edp.Json_out.Obj
      [ ("benchmark", Sram_edp.Json_out.String "explain-search-journal");
        ("git_commit", Sram_edp.Json_out.String (git_commit ()));
        ("host_cores", Sram_edp.Json_out.Int (Domain.recommended_domain_count ()));
        ("smoke", Sram_edp.Json_out.Bool !smoke);
        ("capacities_bits",
         Sram_edp.Json_out.List
           (List.map (fun c -> Sram_edp.Json_out.Int c) capacities));
        ("bit_identical", Sram_edp.Json_out.Bool bit_identical);
        ("overhead",
         Sram_edp.Json_out.Obj
           [ ("wall_off_s", Sram_edp.Json_out.Float wall_off);
             ("wall_on_s", Sram_edp.Json_out.Float wall_on);
             ("overhead", Sram_edp.Json_out.Float overhead);
             ("threshold", Sram_edp.Json_out.Float threshold);
             ("trials", Sram_edp.Json_out.Int trials);
             ("reps", Sram_edp.Json_out.Int reps);
             ("pass", Sram_edp.Json_out.Bool pass) ]);
        ("search_journal", journal);
        ("histograms", Sram_edp.Json_out.histograms_json ());
        ("runs",
         Sram_edp.Json_out.List
           (List.map
              (fun (jobs, off, on) ->
                Sram_edp.Json_out.Obj
                  [ ("jobs", Sram_edp.Json_out.Int jobs);
                    ("checksum_off", Sram_edp.Json_out.String off);
                    ("checksum_on", Sram_edp.Json_out.String on) ])
              sums)) ]
  in
  if not !smoke then begin
    let oc = open_out "BENCH_explain.json" in
    output_string oc (Sram_edp.Json_out.to_string_pretty json);
    output_char oc '\n';
    close_out oc;
    print_endline "wrote BENCH_explain.json"
  end;
  if not (pass && bit_identical) then exit 1

(* ----- multi-objective search benchmark ----- *)

(* The heuristic engines against the exhaustive oracle, on every
   Table 4 capacity (HVT-M2, the paper's headline config).  Four gates,
   all enforced on the committed BENCH_moo.json run:
     1. winner regret = 0 — NSGA-II and the surrogate land on the
        oracle's EDP optimum, score bit-for-bit;
     2. evaluations <= 5% of the oracle's [considered] (full space
        only: on the reduced smoke grid the surrogate falls back to
        exhaustive by design, so the budget gate would be vacuous);
     3. hypervolume of the returned front >= 99% of the true front's;
     4. same-seed runs bit-identical at 1/2/4 jobs.
   Under --smoke: reduced space, 1KB, jobs 1/2, gates 1/3/4 only. *)
let moo_bench () =
  section "Moo: NSGA-II + surrogate vs the exhaustive oracle";
  let space = if !smoke then Opt.Space.reduced else Opt.Space.default in
  let capacities =
    if !smoke then [ 1024 * 8 ] else Sram_edp.Framework.paper_capacities
  in
  let jobs_list = if !smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let flavor = Finfet.Library.Hvt and method_ = Opt.Space.M2 in
  let env = Array_model.Array_eval.make_env ~cell_flavor:flavor () in
  let levels = Opt.Yield.solve ~flavor () in
  let pairs cs =
    List.map (fun c -> let o = Opt.Pareto.objectives c in (o.(0), o.(1))) cs
  in
  let budget_gate = not !smoke in
  let budget_frac = 0.05 and hv_floor = 0.99 in
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "capacity"; "engine"; "evals"; "of oracle"; "regret"; "hv ratio";
          "identical" ]
  in
  let all_pass = ref true in
  let runs =
    List.map
      (fun capacity_bits ->
        let pool = Runtime.Pool.create ~jobs:1 () in
        let oracle, all =
          Opt.Exhaustive.search_all ~space ~levels ~pool ~env ~capacity_bits
            ~method_ ()
        in
        Runtime.Pool.shutdown pool;
        let truth = pairs (Opt.Pareto.front all) in
        let engines =
          [ ("nsga2",
             fun pool ->
               Opt.Nsga2.search_front ~space ~levels ~pool ~env ~capacity_bits
                 ~method_ ());
            ("surrogate",
             fun pool ->
               Opt.Surrogate.search_front ~space ~levels ~pool ~env
                 ~capacity_bits ~method_ ()) ]
        in
        let per_engine =
          List.map
            (fun (name, search) ->
              let by_jobs =
                List.map
                  (fun jobs ->
                    let pool = Runtime.Pool.create ~jobs () in
                    let res, front = search pool in
                    Runtime.Pool.shutdown pool;
                    (jobs, res, front, checksum_designs [ res ]))
                  jobs_list
              in
              let _, res, front, first_sum = List.hd by_jobs in
              let identical =
                List.for_all
                  (fun (_, _, _, s) -> String.equal s first_sum)
                  by_jobs
              in
              let regret =
                res.Opt.Exhaustive.best.Opt.Exhaustive.score
                -. oracle.Opt.Exhaustive.best.Opt.Exhaustive.score
              in
              let frac =
                float_of_int res.Opt.Exhaustive.evaluated
                /. float_of_int oracle.Opt.Exhaustive.considered
              in
              let hv = Opt.Hypervolume.ratio ~truth (pairs front) in
              let pass =
                regret = 0.0 && identical && hv >= hv_floor
                && ((not budget_gate) || frac <= budget_frac)
              in
              if not pass then all_pass := false;
              Sram_edp.Report.add_row table
                [ Printf.sprintf "%dB" (capacity_bits / 8); name;
                  string_of_int res.Opt.Exhaustive.evaluated;
                  Printf.sprintf "%.2f%%" (100.0 *. frac);
                  Printf.sprintf "%.3g" regret;
                  Printf.sprintf "%.4f" hv;
                  (if identical then "yes" else "NO") ];
              ( name, res, regret, frac, hv, identical, pass,
                List.map (fun (j, _, _, s) -> (j, s)) by_jobs ))
            engines
        in
        (capacity_bits, oracle, per_engine))
      capacities
  in
  Sram_edp.Report.print table;
  Printf.printf
    "gates: regret = 0, hv ratio >= %.2f, bit-identical at jobs %s%s -> %s\n"
    hv_floor
    (String.concat "/" (List.map string_of_int jobs_list))
    (if budget_gate then
       Printf.sprintf ", evals <= %.0f%% of oracle" (100.0 *. budget_frac)
     else " (budget gate: full run only)")
    (if !all_pass then "pass" else "FAIL");
  let json =
    Sram_edp.Json_out.Obj
      [ ("benchmark", Sram_edp.Json_out.String "moo-oracle");
        ("git_commit", Sram_edp.Json_out.String (git_commit ()));
        ("smoke", Sram_edp.Json_out.Bool !smoke);
        ("config", Sram_edp.Json_out.String "6T-HVT-M2");
        ("gates",
         Sram_edp.Json_out.Obj
           [ ("regret", Sram_edp.Json_out.Float 0.0);
             ("budget_frac", Sram_edp.Json_out.Float budget_frac);
             ("hv_ratio_floor", Sram_edp.Json_out.Float hv_floor);
             ("jobs",
              Sram_edp.Json_out.List
                (List.map (fun j -> Sram_edp.Json_out.Int j) jobs_list)) ]);
        ("capacities",
         Sram_edp.Json_out.List
           (List.map
              (fun (capacity_bits, oracle, per_engine) ->
                Sram_edp.Json_out.Obj
                  [ ("capacity_bits", Sram_edp.Json_out.Int capacity_bits);
                    ("oracle_considered",
                     Sram_edp.Json_out.Int oracle.Opt.Exhaustive.considered);
                    ("oracle_checksum",
                     Sram_edp.Json_out.String (checksum_designs [ oracle ]));
                    ("engines",
                     Sram_edp.Json_out.List
                       (List.map
                          (fun (name, res, regret, frac, hv, identical, pass,
                                sums) ->
                            Sram_edp.Json_out.Obj
                              [ ("engine", Sram_edp.Json_out.String name);
                                ("evaluated",
                                 Sram_edp.Json_out.Int
                                   res.Opt.Exhaustive.evaluated);
                                ("of_oracle", Sram_edp.Json_out.Float frac);
                                ("regret", Sram_edp.Json_out.Float regret);
                                ("hv_ratio", Sram_edp.Json_out.Float hv);
                                ("bit_identical",
                                 Sram_edp.Json_out.Bool identical);
                                ("pass", Sram_edp.Json_out.Bool pass);
                                ("checksums",
                                 Sram_edp.Json_out.List
                                   (List.map
                                      (fun (j, s) ->
                                        Sram_edp.Json_out.Obj
                                          [ ("jobs", Sram_edp.Json_out.Int j);
                                            ("checksum",
                                             Sram_edp.Json_out.String s) ])
                                      sums)) ])
                          per_engine)) ])
              runs)) ]
  in
  if not !smoke then begin
    let oc = open_out "BENCH_moo.json" in
    output_string oc (Sram_edp.Json_out.to_string_pretty json);
    output_char oc '\n';
    close_out oc;
    print_endline "wrote BENCH_moo.json"
  end;
  if not !all_pass then exit 1

(* ----- persistence benchmark ----- *)

(* Two questions the persistence layer must answer for:
     1. Does kill+resume reproduce the uninterrupted winner bit-for-bit
        at 1/2/4 jobs?  (The tentpole guarantee: an injected kill mid-
        sweep, then --resume, must land on the same checksum.)
     2. What does journaling cost against the plain sweep?  (Reported;
        the gate is the bit-identity, not the overhead.) *)
let persist_bench () =
  section "Persist: checkpoint journal overhead + kill/resume bit-identity";
  Obs.Control.set_enabled true;
  let space = if !smoke then Opt.Space.reduced else Opt.Space.default in
  let capacities =
    if !smoke then [ 1024 * 8 ] else Sram_edp.Framework.paper_capacities
  in
  let configs = Sram_edp.Framework.all_configs in
  let env_of =
    let lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt () in
    let hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let levels_of =
    let lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
    let hvt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "sram_opt_bench_persist"
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let every = 16 in
  let open_journal ?resume path =
    match Persist.Checkpoint.create ~path ?resume ~checkpoint_every:every () with
    | Ok j -> j
    | Error e -> failwith e
  in
  let sweep ?journal ~pool () =
    List.concat_map
      (fun capacity_bits ->
        List.map
          (fun (c : Sram_edp.Framework.config) ->
            Opt.Exhaustive.search ~space ?journal ~pool
              ~levels:(levels_of c.Sram_edp.Framework.flavor)
              ~env:(env_of c.Sram_edp.Framework.flavor) ~capacity_bits
              ~method_:c.Sram_edp.Framework.method_ ())
          configs)
      capacities
  in
  let rows =
    List.map
      (fun jobs ->
        Persist.Faults.disarm_all ();
        let pool = Runtime.Pool.create ~jobs () in
        let t0 = Runtime.Telemetry.now () in
        let base = sweep ~pool () in
        let plain_wall = Runtime.Telemetry.now () -. t0 in
        let base_sum = checksum_designs base in
        let jp = Filename.concat dir (Printf.sprintf "full_%dj.rlog" jobs) in
        let journal = open_journal jp in
        let t0 = Runtime.Telemetry.now () in
        let journaled = sweep ~journal ~pool () in
        let journal_wall = Runtime.Telemetry.now () -. t0 in
        Persist.Checkpoint.close journal;
        let journal_sum = checksum_designs journaled in
        (* Kill the journaled sweep at an injected record boundary, then
           resume from the journal it left behind. *)
        let kp = Filename.concat dir (Printf.sprintf "kill_%dj.rlog" jobs) in
        let killed = open_journal kp in
        (* disarm_all also resets the process-wide record counter, so
           "kill after record 3" counts from this sweep's first record,
           not from the journaled run above. *)
        Persist.Faults.disarm_all ();
        Persist.Faults.arm (Persist.Faults.Kill 3);
        let died =
          match sweep ~journal:killed ~pool () with
          | _ -> false
          | exception Persist.Faults.Injected _ -> true
        in
        Persist.Checkpoint.close killed;
        Persist.Faults.disarm_all ();
        let resumed_journal = open_journal ~resume:true kp in
        let replayed = Persist.Checkpoint.replayed resumed_journal in
        let resumed = sweep ~journal:resumed_journal ~pool () in
        Persist.Checkpoint.close resumed_journal;
        let resumed_sum = checksum_designs resumed in
        Runtime.Pool.shutdown pool;
        Sys.remove jp;
        Sys.remove kp;
        (jobs, plain_wall, journal_wall, base_sum, journal_sum, resumed_sum,
         died, replayed))
      [ 1; 2; 4 ]
  in
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "jobs"; "plain"; "journaled"; "overhead"; "killed"; "replayed";
          "bit-identical" ]
  in
  List.iter
    (fun (jobs, pw, jw, bs, js, rs, died, replayed) ->
      Sram_edp.Report.add_row table
        [ string_of_int jobs;
          Printf.sprintf "%.2f s" pw;
          Printf.sprintf "%.2f s" jw;
          Printf.sprintf "%+.1f%%" (100.0 *. ((jw /. pw) -. 1.0));
          (if died then "yes" else "NO");
          string_of_int replayed;
          (if bs = js && bs = rs then "yes" else "NO") ])
    rows;
  Sram_edp.Report.print table;
  let pass =
    List.for_all
      (fun (_, _, _, bs, js, rs, died, replayed) ->
        bs = js && bs = rs && died && replayed > 0)
      rows
  in
  Printf.printf
    "kill/resume reproduces the uninterrupted winner at every job count: %s\n"
    (if pass then "yes" else "NO");
  if not !smoke then begin
    let json =
      Sram_edp.Json_out.Obj
        [ ("benchmark", Sram_edp.Json_out.String "persist-checkpoint");
          ("git_commit", Sram_edp.Json_out.String (git_commit ()));
          ("host_cores",
           Sram_edp.Json_out.Int (Domain.recommended_domain_count ()));
          ("capacities_bits",
           Sram_edp.Json_out.List
             (List.map (fun c -> Sram_edp.Json_out.Int c) capacities));
          ("checkpoint_every", Sram_edp.Json_out.Int every);
          ("pass", Sram_edp.Json_out.Bool pass);
          ("runs",
           Sram_edp.Json_out.List
             (List.map
                (fun (jobs, pw, jw, bs, js, rs, died, replayed) ->
                  Sram_edp.Json_out.Obj
                    [ ("jobs", Sram_edp.Json_out.Int jobs);
                      ("plain_wall_s", Sram_edp.Json_out.Float pw);
                      ("journal_wall_s", Sram_edp.Json_out.Float jw);
                      ("journal_overhead",
                       Sram_edp.Json_out.Float ((jw /. pw) -. 1.0));
                      ("killed", Sram_edp.Json_out.Bool died);
                      ("chunks_replayed", Sram_edp.Json_out.Int replayed);
                      ("checksum_plain", Sram_edp.Json_out.String bs);
                      ("checksum_journaled", Sram_edp.Json_out.String js);
                      ("checksum_resumed", Sram_edp.Json_out.String rs) ])
                rows)) ]
    in
    let oc = open_out "BENCH_persist.json" in
    output_string oc (Sram_edp.Json_out.to_string_pretty json);
    output_char oc '\n';
    close_out oc;
    print_endline "wrote BENCH_persist.json"
  end;
  if not pass then exit 1

(* ----- serve: the daemon under concurrent clients ----- *)

(* The daemon is measured as a real separate process: fork a child that
   runs [Serve.Server.run] on a Unix socket under a temp dir, then
   drive it through [Serve.Client].  Client-side concurrency also comes
   from forked workers (the blocking client carries one outstanding
   request per connection), which keeps the parent free of worker
   domains: default jobs are forced to 1 before every fork, so only the
   server child ever spawns domains.

   Three gates (the --smoke run enforces them too):
     1. the server answers every request;
     2. a repeated query (warm memo) is faster than its cold first ask;
     3. every response checksum equals the in-process one-shot result
        for the same query — the wire adds no drift. *)

type serve_row = {
  sr_jobs : int;
  sr_cold_s : float;  (* median cold (first-ask) latency *)
  sr_warm_s : float;  (* median repeat-ask latency *)
  sr_p50_s : float;   (* client-observed, under concurrent load *)
  sr_p99_s : float;
  sr_win_p99_s : float option; (* server-side windowed e2e p99 (10s) *)
  sr_wall_s : float;
  sr_requests : int;
  sr_rps : float;
  sr_hits : int;      (* framework.optimize memo, from the stats endpoint *)
  sr_misses : int;
  sr_deadline_expired : int;  (* SLO counters, from stats *)
  sr_rejected_busy : int;
  sr_identical : bool;
  sr_server : Sram_edp.Json_out.t;  (* serve.* counters, from stats *)
  sr_windows : Sram_edp.Json_out.t; (* windowed histograms/counters *)
}

let serve_fork_server ~dir ?(observability = true) ?(tag = "") jobs =
  Runtime.Pool.set_default_jobs 1;
  let path = Filename.concat dir (Printf.sprintf "serve_%s%d.sock" tag jobs) in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* Every jobs level starts cold, whatever the parent computed for
       its reference checksums before forking. *)
    Runtime.Memo.reset_all ();
    Runtime.Telemetry.reset ();
    Obs.Histogram.reset_all ();
    Runtime.Pool.set_default_jobs jobs;
    let cfg =
      { Serve.Server.default_config with
        Serve.Server.socket_path = Some path;
        install_signals = false;
        observability }
    in
    (try ignore (Serve.Server.run cfg) with _ -> ());
    Unix._exit 0
  | pid -> (pid, path)

let serve_queries () =
  let capacities = if !smoke then [ 1024 * 8 ] else [ 1024 * 8; 4096 * 8 ] in
  List.concat_map
    (fun capacity_bits ->
      List.map
        (fun (c : Sram_edp.Framework.config) ->
          { Serve.Protocol.default_query with
            Serve.Protocol.capacity_bits;
            flavor = c.Sram_edp.Framework.flavor;
            method_ = c.Sram_edp.Framework.method_;
            space = Serve.Protocol.reduced_override })
        Sram_edp.Framework.all_configs)
    capacities

let serve_reference_checksum (q : Serve.Protocol.query) =
  let o =
    Sram_edp.Framework.optimize
      ~space:(Serve.Protocol.space_of_override q.Serve.Protocol.space)
      ~objective:q.Serve.Protocol.objective
      ~accounting:q.Serve.Protocol.accounting ~w:q.Serve.Protocol.w
      ~capacity_bits:q.Serve.Protocol.capacity_bits
      ~config:
        { Sram_edp.Framework.flavor = q.Serve.Protocol.flavor;
          method_ = q.Serve.Protocol.method_ }
      ()
  in
  checksum_designs [ o.Sram_edp.Framework.result ]

let serve_median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let serve_percentile a p =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  a.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* One worker process: its share of the load, latencies up the pipe as
   one "%.17g" line each.  Exit 0 = every response arrived and its
   decoded winner re-derives the server's checksum. *)
let serve_client_worker ~path ~queries ~reps wfd =
  Runtime.Memo.reset_all ();
  let oc = Unix.out_channel_of_descr wfd in
  let ok = ref true in
  (match Serve.Client.connect ~socket_path:path () with
  | Error _ -> ok := false
  | Ok c ->
    let n = List.length queries in
    for i = 0 to reps - 1 do
      let q = List.nth queries (i mod n) in
      let t0 = Unix.gettimeofday () in
      match Serve.Client.optimize c q with
      | Ok a ->
        let dt = Unix.gettimeofday () -. t0 in
        if checksum_designs [ a.Serve.Client.result ]
           <> a.Serve.Client.checksum
        then ok := false
        else Printf.fprintf oc "%.17g\n" dt
      | Error _ -> ok := false
    done;
    Serve.Client.close c);
  flush oc;
  Unix._exit (if !ok then 0 else 2)

let serve_load ~path ~queries ~clients ~reps =
  Runtime.Pool.set_default_jobs 1;
  flush stdout;
  flush stderr;
  let t0 = Unix.gettimeofday () in
  let workers =
    List.init clients (fun _ ->
        let rfd, wfd = Unix.pipe () in
        match Unix.fork () with
        | 0 ->
          Unix.close rfd;
          serve_client_worker ~path ~queries ~reps wfd
        | pid ->
          Unix.close wfd;
          (pid, rfd))
  in
  let latencies = ref [] in
  let all_ok = ref true in
  List.iter
    (fun (pid, rfd) ->
      let ic = Unix.in_channel_of_descr rfd in
      (try
         while true do
           latencies := float_of_string (input_line ic) :: !latencies
         done
       with End_of_file -> ());
      close_in ic;
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _ -> all_ok := false)
    workers;
  let wall = Unix.gettimeofday () -. t0 in
  (Array.of_list !latencies, wall, !all_ok)

let serve_level ~dir ~queries ~refs ~clients ~reps jobs =
  let pid, path = serve_fork_server ~dir jobs in
  let give_up msg =
    Printf.printf "serve bench (%d jobs): %s\n" jobs msg;
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (Unix.waitpid [] pid);
    exit 1
  in
  match Serve.Client.wait_ready ~socket_path:path () with
  | Error e -> give_up ("server did not come up: " ^ e)
  | Ok c0 ->
    let ask q =
      let t0 = Unix.gettimeofday () in
      match Serve.Client.optimize c0 q with
      | Ok a -> (a, Unix.gettimeofday () -. t0)
      | Error e -> give_up ("optimize failed: " ^ e)
    in
    let cold = List.map ask queries in
    let warm = List.map ask queries in
    let identical =
      List.for_all2
        (fun (a, _) r -> a.Serve.Client.checksum = r)
        cold refs
      && List.for_all2
           (fun (a, _) r -> a.Serve.Client.checksum = r)
           warm refs
    in
    let lat_of pass = Array.of_list (List.map snd pass) in
    let latencies, wall, workers_ok =
      serve_load ~path ~queries ~clients ~reps
    in
    if not workers_ok then give_up "a load-generator worker failed";
    let requests = Array.length latencies in
    if requests <> clients * reps then give_up "lost responses under load";
    let hits, misses, deadlines, busies, win_p99, server_counters, windows =
      match Serve.Client.stats c0 with
      | Error e -> give_up ("stats failed: " ^ e)
      | Ok stats ->
        let hm =
          match Persist.Json.member "memos" stats with
          | Some (Persist.Json.List memos) ->
            List.fold_left
              (fun acc m ->
                match Persist.Json.string_field m "name" with
                | Some "framework.optimize" -> (
                  match
                    ( Persist.Json.int_field m "hits",
                      Persist.Json.int_field m "misses" )
                  with
                  | Some h, Some mi -> (h, mi)
                  | _ -> acc)
                | _ -> acc)
              (0, 0) memos
          | _ -> (0, 0)
        in
        let rec jo = function
          | Persist.Json.Null -> Sram_edp.Json_out.Null
          | Persist.Json.Bool b -> Sram_edp.Json_out.Bool b
          | Persist.Json.Int i -> Sram_edp.Json_out.Int i
          | Persist.Json.Float f -> Sram_edp.Json_out.Float f
          | Persist.Json.String s -> Sram_edp.Json_out.String s
          | Persist.Json.List l -> Sram_edp.Json_out.List (List.map jo l)
          | Persist.Json.Obj o ->
            Sram_edp.Json_out.Obj (List.map (fun (k, v) -> (k, jo v)) o)
        in
        let counters =
          match Persist.Json.member "server" stats with
          | Some s -> jo s
          | None -> Sram_edp.Json_out.Null
        in
        let server_int name =
          match Persist.Json.member "server" stats with
          | Some s -> Option.value ~default:0 (Persist.Json.int_field s name)
          | None -> 0
        in
        (* Windowed e2e p99 from the stats `windows` section — the
           server's own recent-traffic view, alongside the client-side
           percentile over the same load. *)
        let win_p99 =
          let ( >>= ) = Option.bind in
          Persist.Json.member "windows" stats
          >>= Persist.Json.member "histograms"
          >>= (function
                | Persist.Json.List rows ->
                  List.find_opt
                    (fun r ->
                      Persist.Json.string_field r "name" = Some "serve.e2e")
                    rows
                | _ -> None)
          >>= Persist.Json.member "windows"
          >>= (function
                | Persist.Json.List slices ->
                  List.find_opt
                    (fun s ->
                      Persist.Json.string_field s "window" = Some "10s")
                    slices
                | _ -> None)
          >>= fun s -> Persist.Json.float_field s "p99_s"
        in
        let windows =
          match Persist.Json.member "windows" stats with
          | Some w -> jo w
          | None -> Sram_edp.Json_out.Null
        in
        ( fst hm, snd hm,
          server_int "deadline_expired", server_int "rejected_busy",
          win_p99, counters, windows )
    in
    (match Serve.Client.shutdown c0 with
    | Ok () -> ()
    | Error e -> give_up ("shutdown failed: " ^ e));
    Serve.Client.close c0;
    ignore (Unix.waitpid [] pid);
    { sr_jobs = jobs;
      sr_cold_s = serve_median (lat_of cold);
      sr_warm_s = serve_median (lat_of warm);
      sr_p50_s = serve_percentile latencies 0.50;
      sr_p99_s = serve_percentile latencies 0.99;
      sr_win_p99_s = win_p99;
      sr_wall_s = wall;
      sr_requests = requests;
      sr_rps = float_of_int requests /. wall;
      sr_hits = hits;
      sr_misses = misses;
      sr_deadline_expired = deadlines;
      sr_rejected_busy = busies;
      sr_identical = identical;
      sr_server = server_counters;
      sr_windows = windows }

(* ----- observability overhead gate ----- *)

(* Tracing, windowed metrics and the flight recorder ride the request
   path; this gate bounds their cost.  Two servers run side by side —
   one default (observability on), one with it off — and the warm
   round-trip latency to each is compared with paired trials: every
   trial measures both sides back-to-back in alternating order, each
   side keeps its min over trials (least-noise estimate), and a
   failing comparison is re-measured once before it counts, so a
   single descheduling blip cannot fail CI.  Both answers must still
   re-derive the one-shot reference checksum. *)
let serve_overhead_threshold = 0.03

let serve_overhead_trials = 9

let serve_overhead_gate ~dir ~reference q =
  let fail msg =
    Printf.printf "serve overhead gate: %s\n" msg;
    exit 1
  in
  let spawn observability tag =
    let pid, path = serve_fork_server ~dir ~observability ~tag 1 in
    match Serve.Client.wait_ready ~socket_path:path () with
    | Error e ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      fail ("server did not come up: " ^ e)
    | Ok c -> (pid, c)
  in
  let pid_on, c_on = spawn true "obs_on_" in
  let pid_off, c_off = spawn false "obs_off_" in
  let ask c =
    match Serve.Client.optimize c q with
    | Ok a -> a.Serve.Client.checksum
    | Error e -> fail ("optimize failed: " ^ e)
  in
  let identical = ask c_on = reference && ask c_off = reference in
  (* Warm round-trips are ~60µs, so even 256 reps per measurement is
     ~15ms — cheap enough to keep the floor estimator tight in smoke
     runs too (a loose floor, not real overhead, is what flakes). *)
  let reps = if !smoke then 200 else 256 in
  (* Per-trial statistic is the MIN round-trip, not the median: the
     floor is the deterministic cost of the path, while the median
     still carries scheduler and GC noise that dwarfs the few-µs
     effect being bounded here.  The monotonic clock matters too —
     gettimeofday's 1µs quantization alone is ±2% of one round-trip. *)
  let measure c =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Obs.Clock.now () in
      ignore (ask c);
      let dt = Obs.Clock.now () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let run_trials () =
    let best_on = ref infinity and best_off = ref infinity in
    for t = 0 to serve_overhead_trials - 1 do
      if t mod 2 = 0 then begin
        best_on := min !best_on (measure c_on);
        best_off := min !best_off (measure c_off)
      end
      else begin
        best_off := min !best_off (measure c_off);
        best_on := min !best_on (measure c_on)
      end
    done;
    (!best_on, !best_off)
  in
  let on_s, off_s = run_trials () in
  let on_s, off_s =
    if (on_s -. off_s) /. off_s < serve_overhead_threshold then (on_s, off_s)
    else begin
      let on2, off2 = run_trials () in
      (min on_s on2, min off_s off2)
    end
  in
  List.iter
    (fun (pid, c) ->
      (match Serve.Client.shutdown c with
      | Ok () -> ()
      | Error e -> fail ("shutdown failed: " ^ e));
      Serve.Client.close c;
      ignore (Unix.waitpid [] pid))
    [ (pid_on, c_on); (pid_off, c_off) ];
  let overhead = (on_s -. off_s) /. off_s in
  (on_s, off_s, overhead, identical)

let serve_bench () =
  section "Serve: daemon latency/throughput under concurrent clients";
  Obs.Control.set_enabled true;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "sram_opt_bench_serve"
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let queries = serve_queries () in
  let refs = List.map serve_reference_checksum queries in
  let clients = if !smoke then 2 else 4 in
  let reps = if !smoke then 8 else 64 in
  let jobs_list = if !smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  Printf.printf
    "%d distinct queries (reduced space), %d clients x %d requests each\n"
    (List.length queries) clients reps;
  let rows = List.map (serve_level ~dir ~queries ~refs ~clients ~reps) jobs_list in
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "jobs"; "cold"; "warm"; "speedup"; "p50"; "p99"; "win p99"; "req/s";
          "memo hits"; "bit-identical" ]
  in
  List.iter
    (fun r ->
      Sram_edp.Report.add_row table
        [ string_of_int r.sr_jobs;
          Printf.sprintf "%.2f ms" (1e3 *. r.sr_cold_s);
          Printf.sprintf "%.3f ms" (1e3 *. r.sr_warm_s);
          Printf.sprintf "%.0fx" (r.sr_cold_s /. r.sr_warm_s);
          Printf.sprintf "%.3f ms" (1e3 *. r.sr_p50_s);
          Printf.sprintf "%.3f ms" (1e3 *. r.sr_p99_s);
          (match r.sr_win_p99_s with
          | Some p -> Printf.sprintf "%.3f ms" (1e3 *. p)
          | None -> "-");
          Printf.sprintf "%.0f" r.sr_rps;
          Printf.sprintf "%d/%d" r.sr_hits (r.sr_hits + r.sr_misses);
          (if r.sr_identical then "yes" else "NO") ])
    rows;
  Sram_edp.Report.print table;
  let on_s, off_s, overhead, overhead_identical =
    serve_overhead_gate ~dir ~reference:(List.hd refs) (List.hd queries)
  in
  let overhead_pass =
    overhead < serve_overhead_threshold && overhead_identical
  in
  Printf.printf
    "observability overhead: warm %.1f us on / %.1f us off -> %+.1f%% \
     (gate < %.0f%%, bit-identical %s): %s\n"
    (1e6 *. on_s) (1e6 *. off_s) (100.0 *. overhead)
    (100.0 *. serve_overhead_threshold)
    (if overhead_identical then "yes" else "NO")
    (if overhead_pass then "pass" else "FAIL");
  let pass =
    List.for_all (fun r -> r.sr_identical && r.sr_warm_s < r.sr_cold_s) rows
    && overhead_pass
  in
  Printf.printf
    "server answers, warm beats cold, responses match the one-shot CLI: %s\n"
    (if pass then "yes" else "NO");
  if not !smoke then begin
    let json =
      Sram_edp.Json_out.Obj
        [ ("benchmark", Sram_edp.Json_out.String "serve");
          ("git_commit", Sram_edp.Json_out.String (git_commit ()));
          ("host_cores",
           Sram_edp.Json_out.Int (Domain.recommended_domain_count ()));
          ("queries", Sram_edp.Json_out.Int (List.length queries));
          ("clients", Sram_edp.Json_out.Int clients);
          ("requests_per_client", Sram_edp.Json_out.Int reps);
          ("pass", Sram_edp.Json_out.Bool pass);
          ("observability_overhead",
           Sram_edp.Json_out.Obj
             [ ("trials", Sram_edp.Json_out.Int serve_overhead_trials);
               ("warm_on_s", Sram_edp.Json_out.Float on_s);
               ("warm_off_s", Sram_edp.Json_out.Float off_s);
               ("overhead", Sram_edp.Json_out.Float overhead);
               ("threshold",
                Sram_edp.Json_out.Float serve_overhead_threshold);
               ("bit_identical",
                Sram_edp.Json_out.Bool overhead_identical);
               ("pass", Sram_edp.Json_out.Bool overhead_pass) ]);
          ("runs",
           Sram_edp.Json_out.List
             (List.map
                (fun r ->
                  Sram_edp.Json_out.Obj
                    ([ ("jobs", Sram_edp.Json_out.Int r.sr_jobs);
                       ("cold_median_s", Sram_edp.Json_out.Float r.sr_cold_s);
                       ("warm_median_s", Sram_edp.Json_out.Float r.sr_warm_s);
                       ("warm_speedup",
                        Sram_edp.Json_out.Float (r.sr_cold_s /. r.sr_warm_s));
                       ("load_p50_s", Sram_edp.Json_out.Float r.sr_p50_s);
                       ("load_p99_s", Sram_edp.Json_out.Float r.sr_p99_s) ]
                    @ (match r.sr_win_p99_s with
                      | Some p ->
                        [ ("windowed_e2e_p99_s", Sram_edp.Json_out.Float p) ]
                      | None -> [])
                    @ [ ("load_wall_s", Sram_edp.Json_out.Float r.sr_wall_s);
                        ("requests", Sram_edp.Json_out.Int r.sr_requests);
                        ("requests_per_s", Sram_edp.Json_out.Float r.sr_rps);
                        ("memo_hits", Sram_edp.Json_out.Int r.sr_hits);
                        ("memo_misses", Sram_edp.Json_out.Int r.sr_misses);
                        ("deadline_expired",
                         Sram_edp.Json_out.Int r.sr_deadline_expired);
                        ("rejected_busy",
                         Sram_edp.Json_out.Int r.sr_rejected_busy);
                        ("bit_identical",
                         Sram_edp.Json_out.Bool r.sr_identical);
                        ("server", r.sr_server);
                        ("windows", r.sr_windows) ]))
                rows)) ]
    in
    let oc = open_out "BENCH_serve.json" in
    output_string oc (Sram_edp.Json_out.to_string_pretty json);
    output_char oc '\n';
    close_out oc;
    print_endline "wrote BENCH_serve.json"
  end;
  if not pass then exit 1

(* ----- dispatch ----- *)

let headline_smoke () =
  section "Headline (smoke: reduced space, 1KB, M2 HVT vs LVT)";
  let h =
    Sram_edp.Framework.headline ~space:Opt.Space.reduced
      ~capacities:[ 1024 * 8 ] ()
  in
  Printf.printf
    "EDP reduction %.1f%%, delay penalty %.1f%% (reduced space; paper-space \
     numbers come from the full headline run)\n"
    (100.0 *. h.Sram_edp.Framework.avg_edp_reduction)
    (100.0 *. h.Sram_edp.Framework.avg_delay_penalty)

let run_one = function
  | "fig2a" | "fig2b" -> Sram_edp.Experiments.print_fig2 ()
  | "fig3a" -> Sram_edp.Experiments.print_fig3a ()
  | "fig3b" | "fig3c" | "fig3d" -> Sram_edp.Experiments.print_fig3bcd ()
  | "fig5a" | "fig5b" -> Sram_edp.Experiments.print_fig5 ()
  | "table4" -> Sram_edp.Experiments.print_table4 ()
  | "fig7a" | "fig7b" | "fig7c" -> Sram_edp.Experiments.print_fig7 ()
  | "fig7d" -> Sram_edp.Experiments.print_fig7d ()
  | "headline" ->
    if !smoke then headline_smoke () else Sram_edp.Experiments.print_headline ()
  | "ablation" -> ablations ()
  | "timing" -> timing ()
  | "runtime" -> runtime_bench ()
  | "kernel" -> kernel_bench ()
  | "obs" -> obs_bench ()
  | "explain" -> explain_bench ()
  | "moo" -> moo_bench ()
  | "persist" -> persist_bench ()
  | "serve" -> serve_bench ()
  | "all" ->
    Sram_edp.Experiments.run_all ();
    ablations ();
    timing ()
  | other ->
    Printf.eprintf
      "unknown experiment %S (try fig2a..fig7d, table4, headline, ablation, \
       timing, runtime, kernel, obs, explain, moo, persist, serve, all)\n"
      other;
    exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let flags, experiments = List.partition (fun a -> String.length a > 0 && a.[0] = '-') args in
  List.iter
    (function
      | "--smoke" -> smoke := true
      | "--no-json" -> no_json := true
      | other ->
        Printf.eprintf "unknown flag %S (try --smoke, --no-json)\n" other;
        exit 1)
    flags;
  match experiments with
  | [] -> run_one "all"
  | names -> List.iter run_one names
