# Tier-1 verification: everything CI gates on.
#   make check         build + unit/property tests + end-to-end smoke runs
#   make check-tests   every test/test_*.ml must be wired into test/dune
#   make bench         runtime scaling benchmark (writes BENCH_runtime.json)
#   make bench-kernel  staged-kernel benchmark (writes BENCH_kernel.json)
#   make bench-kernel-opt  same bench under the release profile (-O3 -unsafe);
#                      never rewrites the baseline, gates winner checksums
#                      against the committed BENCH_kernel.json via --smoke
#   make bench-smoke   staged-kernel benchmark, reduced space, no JSON
#   make bench-obs     observability overhead benchmark (writes BENCH_obs.json)
#   make bench-explain search-journal overhead + bit-identity gate; embeds the
#                      convergence journal (writes BENCH_explain.json)
#   make bench-persist checkpoint/resume bit-identity benchmark (BENCH_persist.json)
#   make bench-moo     NSGA-II + surrogate vs the exhaustive oracle: regret,
#                      budget and hypervolume gates (writes BENCH_moo.json)
#   make bench-serve   daemon load-generator benchmark (writes BENCH_serve.json)
#   make smoke-serve-metrics  end-to-end Prometheus scrape of a live daemon
#   make regen-golden  deliberately rewrite test/golden/* (review the diff!)

.PHONY: all check check-tests test bench bench-kernel bench-kernel-opt \
        bench-smoke bench-obs bench-explain bench-moo bench-persist \
        bench-serve smoke-serve-metrics regen-golden clean

all:
	dune build

check: check-tests
	dune build
	dune runtest
	dune exec bench/main.exe -- headline --smoke
	dune exec bench/main.exe -- kernel --smoke
	dune exec bench/main.exe -- obs --smoke
	dune exec bench/main.exe -- explain --smoke
	dune exec bench/main.exe -- moo --smoke
	dune exec bench/main.exe -- persist --smoke
	dune exec bench/main.exe -- serve --smoke
	$(MAKE) smoke-serve-metrics

# A test file that exists but is missing from the dune test stanza is
# silently never run; fail loudly instead.
check-tests:
	@missing=0; \
	for f in test/test_*.ml; do \
	  name=$$(basename $$f .ml); \
	  grep -qw "$$name" test/dune || { \
	    echo "ERROR: $$f is not listed in test/dune"; missing=1; }; \
	done; \
	[ $$missing -eq 0 ] && echo "check-tests: all test modules wired" || exit 1

test:
	dune runtest

bench:
	dune exec bench/main.exe -- runtime

bench-kernel:
	dune exec bench/main.exe -- kernel

# Release-profile kernel run.  The --smoke gate checks the optimized
# binary still picks bit-identical winners (checksum vs the committed
# baseline) before the full sweep runs; --no-json keeps the dev-profile
# baseline authoritative.
bench-kernel-opt:
	dune build --profile release bench/main.exe
	dune exec --profile release bench/main.exe -- kernel --smoke
	dune exec --profile release bench/main.exe -- kernel --no-json

bench-smoke:
	dune exec bench/main.exe -- kernel --smoke

bench-obs:
	dune exec bench/main.exe -- obs

bench-explain:
	dune exec bench/main.exe -- explain

bench-moo:
	dune exec bench/main.exe -- moo

bench-persist:
	dune exec bench/main.exe -- persist

bench-serve:
	dune exec bench/main.exe -- serve

# Start a real daemon, scrape GET /metrics with stock curl, assert the
# required series exist and the exposition format parses.
smoke-serve-metrics:
	dune build bin/sram_opt.exe
	sh scripts/serve_metrics_smoke.sh

regen-golden:
	dune exec test/regen_golden.exe -- test/golden

clean:
	dune clean
