# Tier-1 verification: everything CI gates on.
#   make check        build + unit/property tests + end-to-end smoke runs
#   make bench        runtime scaling benchmark (writes BENCH_runtime.json)
#   make bench-kernel staged-kernel benchmark (writes BENCH_kernel.json)
#   make bench-smoke  staged-kernel benchmark, reduced space, no JSON
#   make bench-obs    observability overhead benchmark (writes BENCH_obs.json)

.PHONY: all check test bench bench-kernel bench-smoke bench-obs clean

all:
	dune build

check:
	dune build
	dune runtest
	dune exec bench/main.exe -- headline --smoke
	dune exec bench/main.exe -- kernel --smoke
	dune exec bench/main.exe -- obs --smoke

test:
	dune runtest

bench:
	dune exec bench/main.exe -- runtime

bench-kernel:
	dune exec bench/main.exe -- kernel

bench-smoke:
	dune exec bench/main.exe -- kernel --smoke

bench-obs:
	dune exec bench/main.exe -- obs

clean:
	dune clean
