# Tier-1 verification: everything CI gates on.
#   make check        build + unit/property tests + end-to-end smoke runs
#   make bench        runtime scaling benchmark (writes BENCH_runtime.json)
#   make bench-kernel staged-kernel benchmark (writes BENCH_kernel.json)
#   make bench-smoke  staged-kernel benchmark, reduced space, no JSON

.PHONY: all check test bench bench-kernel bench-smoke clean

all:
	dune build

check:
	dune build
	dune runtest
	dune exec bench/main.exe -- headline --smoke
	dune exec bench/main.exe -- kernel --smoke

test:
	dune runtest

bench:
	dune exec bench/main.exe -- runtime

bench-kernel:
	dune exec bench/main.exe -- kernel

bench-smoke:
	dune exec bench/main.exe -- kernel --smoke

clean:
	dune clean
