# Tier-1 verification: everything CI gates on.
#   make check   build + unit/property tests + an end-to-end smoke run
#   make bench   runtime scaling benchmark (writes BENCH_runtime.json)

.PHONY: all check test bench clean

all:
	dune build

check:
	dune build
	dune runtest
	dune exec bench/main.exe -- headline --smoke

test:
	dune runtest

bench:
	dune exec bench/main.exe -- runtime

clean:
	dune clean
