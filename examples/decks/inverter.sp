* Single-fin LVT inverter biased near its trip point
VDD vdd 0 DC 0.45
VIN in  0 DC 0.22
M1  out in vdd pfet_lvt
M2  out in 0   nfet_lvt
C1  out 0 0.1f
.end
