* Resistor divider: V(mid) = 0.75 V
VIN in 0 DC 1.0
R1 in mid 1k
R2 mid 0 3k
.end
