(* Tests of the lib/runtime subsystem: domain-pool determinism (parallel
   results bit-identical to sequential, including candidate order), the
   bounded LRU memo's eviction and accounting, telemetry, and a QCheck
   property that [Pool.parmap] matches [List.map] for arbitrary chunk
   sizes and job counts. *)

open Testutil

(* Shared pools so the suite spawns a handful of domains total instead
   of churning one pool per case. *)
let pool_of =
  let pools = Hashtbl.create 4 in
  fun jobs ->
    match Hashtbl.find_opt pools jobs with
    | Some p -> p
    | None ->
      let p = Runtime.Pool.create ~jobs () in
      Hashtbl.add pools jobs p;
      p

(* ----- Pool ----- *)

let pool_tests =
  [ case "parmap matches Array.map" (fun () ->
        let arr = Array.init 103 (fun i -> i) in
        let f x = (x * x) + 1 in
        let expected = Array.map f arr in
        List.iter
          (fun jobs ->
            Alcotest.(check (array int))
              (Printf.sprintf "jobs=%d" jobs)
              expected
              (Runtime.Pool.parmap (pool_of jobs) f arr))
          [ 1; 2; 3; 4 ]);
    case "parmap handles empty and singleton inputs" (fun () ->
        let p = pool_of 3 in
        Alcotest.(check (array int)) "empty" [||]
          (Runtime.Pool.parmap p (fun x -> x) [||]);
        Alcotest.(check (array int)) "singleton" [| 42 |]
          (Runtime.Pool.parmap p (fun x -> x + 41) [| 1 |]));
    case "fold reduces in index order (non-associative reduce)" (fun () ->
        let arr = Array.init 37 string_of_int in
        let expected = Array.fold_left ( ^ ) "" arr in
        List.iter
          (fun jobs ->
            List.iter
              (fun chunk ->
                Alcotest.(check string)
                  (Printf.sprintf "jobs=%d chunk=%d" jobs chunk)
                  expected
                  (Runtime.Pool.fold ~chunk (pool_of jobs)
                     ~map:(fun s -> s)
                     ~reduce:( ^ ) ~init:"" arr))
              [ 1; 2; 5; 64 ])
          [ 1; 3 ]);
    case "map_list preserves order" (fun () ->
        let l = List.init 19 (fun i -> i) in
        Alcotest.(check (list int))
          "order" (List.map succ l)
          (Runtime.Pool.map_list (pool_of 4) succ l));
    case "exceptions propagate to the caller" (fun () ->
        let p = pool_of 3 in
        Alcotest.check_raises "raises" (Failure "boom") (fun () ->
            ignore
              (Runtime.Pool.parmap ~chunk:1 p
                 (fun i -> if i = 5 then failwith "boom" else i)
                 (Array.init 16 (fun i -> i)))));
    case "shutdown degrades to inline execution" (fun () ->
        let p = Runtime.Pool.create ~jobs:3 () in
        Runtime.Pool.shutdown p;
        Alcotest.(check int) "jobs" 1 (Runtime.Pool.jobs p);
        Alcotest.(check (array int)) "still works" [| 2; 3; 4 |]
          (Runtime.Pool.parmap p succ [| 1; 2; 3 |]);
        Runtime.Pool.shutdown p (* idempotent *)) ]

(* ----- Memo ----- *)

let memo_tests =
  [ case "LRU eviction keeps the cache within capacity" (fun () ->
        let m = Runtime.Memo.create ~name:"test.lru" ~capacity:3 () in
        List.iter (fun k -> Runtime.Memo.add m k (10 * k)) [ 1; 2; 3; 4; 5 ];
        Alcotest.(check int) "length" 3 (Runtime.Memo.length m);
        let s = Runtime.Memo.stats m in
        Alcotest.(check int) "evictions" 2 s.Runtime.Memo.evictions;
        (* 1 and 2 were least recently used; 3..5 survive. *)
        Alcotest.(check (option int)) "evicted" None (Runtime.Memo.find_opt m 1);
        Alcotest.(check (option int)) "evicted" None (Runtime.Memo.find_opt m 2);
        Alcotest.(check (option int)) "kept" (Some 30) (Runtime.Memo.find_opt m 3);
        Alcotest.(check (option int)) "kept" (Some 50) (Runtime.Memo.find_opt m 5));
    case "recency refresh protects hot entries" (fun () ->
        let m = Runtime.Memo.create ~name:"test.recency" ~capacity:2 () in
        Runtime.Memo.add m "a" 1;
        Runtime.Memo.add m "b" 2;
        ignore (Runtime.Memo.find_opt m "a");
        (* "b" is now least recent *)
        Runtime.Memo.add m "c" 3;
        Alcotest.(check (option int)) "a kept" (Some 1)
          (Runtime.Memo.find_opt m "a");
        Alcotest.(check (option int)) "b evicted" None
          (Runtime.Memo.find_opt m "b"));
    case "hit/miss accounting" (fun () ->
        let m = Runtime.Memo.create ~name:"test.stats" ~capacity:4 () in
        let calls = ref 0 in
        let compute k () =
          incr calls;
          k * k
        in
        Alcotest.(check int) "first" 49 (Runtime.Memo.find_or_compute m 7 (compute 7));
        Alcotest.(check int) "second" 49 (Runtime.Memo.find_or_compute m 7 (compute 7));
        Alcotest.(check int) "computed once" 1 !calls;
        let s = Runtime.Memo.stats m in
        Alcotest.(check int) "hits" 1 s.Runtime.Memo.hits;
        Alcotest.(check int) "misses" 1 s.Runtime.Memo.misses;
        check_close "hit rate" 0.5 (Runtime.Memo.hit_rate s));
    case "evicted keys are recomputed" (fun () ->
        let m = Runtime.Memo.create ~name:"test.recompute" ~capacity:1 () in
        let calls = ref 0 in
        let get k =
          Runtime.Memo.find_or_compute m k (fun () ->
              incr calls;
              k)
        in
        ignore (get 1);
        ignore (get 2);
        (* evicts 1 *)
        ignore (get 1);
        Alcotest.(check int) "recomputed" 3 !calls);
    case "reset zeroes statistics, clear keeps them" (fun () ->
        let m = Runtime.Memo.create ~name:"test.reset" ~capacity:2 () in
        ignore (Runtime.Memo.find_or_compute m 1 (fun () -> 1));
        Runtime.Memo.clear m;
        Alcotest.(check int) "cleared" 0 (Runtime.Memo.length m);
        Alcotest.(check int) "stats kept" 1
          (Runtime.Memo.stats m).Runtime.Memo.misses;
        Runtime.Memo.reset m;
        Alcotest.(check int) "stats zeroed" 0
          (Runtime.Memo.stats m).Runtime.Memo.misses);
    case "registry exposes every memo" (fun () ->
        let before = List.length (Runtime.Memo.registered_stats ()) in
        let _m = Runtime.Memo.create ~name:"test.registry" ~capacity:1 () in
        let after = Runtime.Memo.registered_stats () in
        Alcotest.(check int) "registered" (before + 1) (List.length after);
        Alcotest.(check bool) "named" true
          (List.exists
             (fun (s : Runtime.Memo.stats) -> s.Runtime.Memo.name = "test.registry")
             after)) ]

(* ----- Telemetry ----- *)

let telemetry_tests =
  [ case "counters accumulate" (fun () ->
        let c = Runtime.Telemetry.counter "test.counter" in
        let base = Runtime.Telemetry.value c in
        Runtime.Telemetry.incr c;
        Runtime.Telemetry.add c 4;
        Alcotest.(check int) "value" (base + 5) (Runtime.Telemetry.value c));
    case "spans record calls and time" (fun () ->
        let before =
          List.filter
            (fun (s : Runtime.Telemetry.span) ->
              s.Runtime.Telemetry.span_name = "test.span")
            (Runtime.Telemetry.snapshot ()).Runtime.Telemetry.spans
        in
        let calls_before =
          match before with [ s ] -> s.Runtime.Telemetry.calls | _ -> 0
        in
        let v = Runtime.Telemetry.time "test.span" (fun () -> 17) in
        Alcotest.(check int) "passes value through" 17 v;
        let after =
          List.find
            (fun (s : Runtime.Telemetry.span) ->
              s.Runtime.Telemetry.span_name = "test.span")
            (Runtime.Telemetry.snapshot ()).Runtime.Telemetry.spans
        in
        Alcotest.(check int) "calls" (calls_before + 1)
          after.Runtime.Telemetry.calls;
        Alcotest.(check bool) "time accumulates" true
          (after.Runtime.Telemetry.total_s >= 0.0)) ]

(* ----- parallel search determinism ----- *)

let candidate_equal (a : Opt.Exhaustive.candidate) (b : Opt.Exhaustive.candidate) =
  a.Opt.Exhaustive.geometry = b.Opt.Exhaustive.geometry
  && a.Opt.Exhaustive.assist = b.Opt.Exhaustive.assist
  && a.Opt.Exhaustive.score = b.Opt.Exhaustive.score

let search_determinism_tests =
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let check_capacity capacity_bits method_ =
    let run pool =
      Opt.Exhaustive.search_all ~space:Opt.Space.reduced ~pool ~env
        ~capacity_bits ~method_ ()
    in
    let seq_result, seq_all = run (pool_of 1) in
    let par_result, par_all = run (pool_of 3) in
    let label = Printf.sprintf "%db %s" capacity_bits (Opt.Space.method_name method_) in
    Alcotest.(check int)
      (label ^ ": evaluated") seq_result.Opt.Exhaustive.evaluated
      par_result.Opt.Exhaustive.evaluated;
    Alcotest.(check bool)
      (label ^ ": best is bit-identical") true
      (candidate_equal seq_result.Opt.Exhaustive.best
         par_result.Opt.Exhaustive.best);
    Alcotest.(check int)
      (label ^ ": candidate count") (List.length seq_all) (List.length par_all);
    Alcotest.(check bool)
      (label ^ ": candidate order") true
      (List.for_all2 candidate_equal seq_all par_all)
  in
  (* Pruning trades `evaluated`/`pruned` determinism for speed (what gets
     skipped depends on publication timing), but never the winner: the
     selected design must stay bit-identical across job counts. *)
  let check_pruned_winner capacity_bits method_ =
    let run pool =
      Opt.Exhaustive.search ~space:Opt.Space.reduced ~pool ~env ~capacity_bits
        ~method_ ()
    in
    let seq = run (pool_of 1) in
    List.iter
      (fun jobs ->
        let par = run (pool_of jobs) in
        Alcotest.(check bool)
          (Printf.sprintf "%db %s: winner at jobs=%d" capacity_bits
             (Opt.Space.method_name method_) jobs)
          true
          (candidate_equal seq.Opt.Exhaustive.best par.Opt.Exhaustive.best);
        (* Every point is accounted for: evaluated, abandoned mid-scan
           by a suffix bound (skipped), or covered by a whole-line
           prune. *)
        Alcotest.(check int)
          (Printf.sprintf "jobs=%d: no scan dropped" jobs)
          (Opt.Space.size ~w:64 Opt.Space.reduced ~capacity_bits method_)
          (par.Opt.Exhaustive.evaluated + par.Opt.Exhaustive.skipped
           + (par.Opt.Exhaustive.pruned
              * (match method_ with
                 | Opt.Space.M1 -> 1
                 | Opt.Space.M2 ->
                   Array.length Opt.Space.reduced.Opt.Space.vssc_values))))
      [ 2; 4 ]
  in
  [ case "parallel search_all equals sequential (128B, both methods)" (fun () ->
        check_capacity (128 * 8) Opt.Space.M1;
        check_capacity (128 * 8) Opt.Space.M2);
    case "parallel search_all equals sequential (256B, both methods)" (fun () ->
        check_capacity (256 * 8) Opt.Space.M1;
        check_capacity (256 * 8) Opt.Space.M2);
    case "pruned search keeps the same winner at 1/2/4 jobs" (fun () ->
        check_pruned_winner (128 * 8) Opt.Space.M1;
        check_pruned_winner (128 * 8) Opt.Space.M2;
        check_pruned_winner (1024 * 8) Opt.Space.M2) ]

let yield_mc_determinism_tests =
  [ case "chunked MC pins are independent of the job count" (fun () ->
        let config =
          { Opt.Yield_mc.default_config with Opt.Yield_mc.samples = 10; points = 21 }
        in
        let solve pool = Opt.Yield_mc.solve ~config ~pool ~flavor:Finfet.Library.Hvt () in
        let s1 = solve (pool_of 1) in
        let s3 = solve (pool_of 3) in
        check_close "vddc_min" s1.Opt.Yield_mc.vddc_min s3.Opt.Yield_mc.vddc_min;
        check_close "vwl_min" s1.Opt.Yield_mc.vwl_min s3.Opt.Yield_mc.vwl_min;
        check_close "achieved" s1.Opt.Yield_mc.achieved_margin
          s3.Opt.Yield_mc.achieved_margin) ]

(* ----- QCheck: parmap equals List.map ----- *)

let to_alco = QCheck_alcotest.to_alcotest

let prop_parmap_matches_map =
  QCheck.Test.make ~name:"Pool.parmap f = List.map f for any chunk/jobs"
    ~count:60
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 60) (int_range (-1000) 1000))
        (int_range 1 8) (int_range 1 4))
    (fun (l, chunk, jobs) ->
      let f x = (3 * x) - 7 in
      let arr = Array.of_list l in
      let got = Runtime.Pool.parmap ~chunk (pool_of jobs) f arr in
      Array.to_list got = List.map f l)

let property_tests = [ to_alco prop_parmap_matches_map ]

let () =
  Alcotest.run "runtime"
    [ ("pool", pool_tests);
      ("memo", memo_tests);
      ("telemetry", telemetry_tests);
      ("search_determinism", search_determinism_tests);
      ("yield_mc_determinism", yield_mc_determinism_tests);
      ("parmap_property", property_tests) ]
