(* Golden-file regression tests: regenerate each artifact with
   Testutil.Golden_gen and diff it against the committed copy in
   test/golden/ (staged through dune's deps so the files are beside the
   test binary).  A mismatch prints a line-level diff; if the change is
   intentional, run `make regen-golden` and commit the result. *)

open Testutil

let golden_dir = "golden"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let first_diff expected actual =
  let e = String.split_on_char '\n' expected in
  let a = String.split_on_char '\n' actual in
  let rec go n e a =
    match (e, a) with
    | [], [] -> None
    | x :: e', y :: a' when String.equal x y -> go (n + 1) e' a'
    | e, a ->
      let head = function [] -> "<end of file>" | x :: _ -> x in
      Some (n, head e, head a)
  in
  go 1 e a

let check_golden name =
  case name (fun () ->
      let path = Filename.concat golden_dir name in
      if not (Sys.file_exists path) then
        Alcotest.failf "golden file %s missing — run `make regen-golden`" path;
      let expected = read_file path in
      let actual = List.assoc name (Golden_gen.files ()) in
      if not (String.equal expected actual) then
        match first_diff expected actual with
        | Some (line, e, a) ->
          Alcotest.failf
            "%s differs at line %d:\n  golden: %s\n  actual: %s\n\
             If intentional, run `make regen-golden` and commit."
            name line e a
        | None ->
          Alcotest.failf "%s differs (same lines, different bytes)" name)

let structure_tests =
  [ case "table4 golden is valid JSON with one row per design" (fun () ->
        let n_expected =
          List.length Golden_gen.capacities
          * List.length Sram_edp.Framework.all_configs
        in
        match Persist.Json.of_string (Golden_gen.table4_json ()) with
        | Error msg -> Alcotest.failf "table4.json does not parse: %s" msg
        | Ok v ->
          (match Persist.Json.to_list v with
          | Some rows -> Alcotest.(check int) "rows" n_expected (List.length rows)
          | None -> Alcotest.fail "table4.json is not a JSON array"));
    case "stats schema covers every section of the serving payload"
      (fun () ->
        match Persist.Json.of_string (Golden_gen.stats_schema ()) with
        | Error msg -> Alcotest.failf "stats.json does not parse: %s" msg
        | Ok v ->
          List.iter
            (fun key ->
              if Persist.Json.member key v = None then
                Alcotest.failf "stats schema lost its %S section" key)
            [ "jobs"; "telemetry"; "memos"; "histograms"; "windows";
              "server" ]);
  ]

let () =
  Alcotest.run "golden"
    [ ( "files",
        List.map check_golden
          [ "table4.json"; "report.txt"; "datasheet.txt"; "stats.json";
            "strategies.json" ] );
      ("structure", structure_tests);
    ]
