(* Tests for lib/persist: JSON codec round-trips (QCheck), CRC32
   vectors, record-log crash recovery (torn tails, corrupted CRCs,
   injected short writes), the disk cache's degrade-don't-fail policy,
   and the headline checkpoint/resume property — a sweep killed at an
   injected record boundary and resumed from its journal produces a
   bit-identical winner checksum to an uninterrupted run at any job
   count. *)

open Testutil
module J = Persist.Json

(* ----- scratch files ----- *)

let tmp_root =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sram_opt_test_persist_%d" (Unix.getpid ()))
  in
  (if not (Sys.file_exists d) then Sys.mkdir d 0o755);
  d

let fresh =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat tmp_root (Printf.sprintf "%s_%d.rlog" name !n)

let rm path = if Sys.file_exists path then Sys.remove path

(* Every fault test must leave the process-wide fault state clean, and
   must reset the data-record counter *immediately before* arming so
   that records appended by earlier tests in this process don't shift
   the fault's firing point. *)
let with_faults faults f =
  Persist.Faults.disarm_all ();
  List.iter Persist.Faults.arm faults;
  Fun.protect ~finally:Persist.Faults.disarm_all f

(* ----- Json ----- *)

let rec json_eq a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Int x, J.Int y -> x = y
  | J.Float x, J.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | J.String x, J.String y -> String.equal x y
  | J.List x, J.List y ->
    List.length x = List.length y && List.for_all2 json_eq x y
  | J.Obj x, J.Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_eq v1 v2)
         x y
  | _ -> false

let roundtrip v =
  match J.of_string (J.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "parse error on %s: %s" (J.to_string v) msg

let json_gen =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun f -> J.Float f) (float_range (-1e18) 1e18);
        map (fun f -> J.Float f) float;
        map (fun s -> J.String s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  (* Non-finite floats have no JSON encoding; the emitter raises on
     them by contract, so keep the generator finite. *)
  let finite = function
    | J.Float f when not (Float.is_finite f) -> J.Null
    | v -> v
  in
  let leaf = map finite leaf in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (3, leaf);
            (1, map (fun l -> J.List l) (list_size (int_bound 4) (self (depth - 1))));
            ( 1,
              map
                (fun kvs -> J.Obj kvs)
                (list_size (int_bound 4)
                   (pair (string_size ~gen:printable (int_bound 8)) (self (depth - 1)))) );
          ])
    3

let json_arb =
  QCheck.make ~print:(fun v -> J.to_string v) json_gen

let json_tests =
  [ case "scalars round-trip" (fun () ->
        List.iter
          (fun v -> Alcotest.(check bool) (J.to_string v) true (json_eq v (roundtrip v)))
          [ J.Null; J.Bool true; J.Bool false; J.Int 0; J.Int (-42);
            J.Int max_int; J.Int min_int; J.Float 0.5; J.Float (-0.0);
            J.Float 1.2345678901234567e-300; J.String ""; J.String "plain";
            J.List []; J.Obj [] ]);
    case "string escapes and unicode round-trip" (fun () ->
        let v = J.String "a\"b\\c\nd\te\r\x01 \xe2\x82\xac" in
        Alcotest.(check bool) "escaped" true (json_eq v (roundtrip v)));
    case "emitter rejects non-finite floats" (fun () ->
        List.iter
          (fun f ->
            match J.to_string (J.Float f) with
            | exception Invalid_argument _ -> ()
            | s -> Alcotest.failf "non-finite float emitted as %s" s)
          [ Float.nan; Float.infinity; Float.neg_infinity ]);
    case "parser rejects trailing garbage and truncation" (fun () ->
        List.iter
          (fun s ->
            match J.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted malformed input %S" s)
          [ "{\"a\":1} x"; "[1,2"; "{\"a\"}"; ""; "nul"; "1.2.3" ]);
    case "accessors" (fun () ->
        let v = J.Obj [ ("n", J.Int 3); ("x", J.Float 2.5); ("s", J.String "hi") ] in
        Alcotest.(check (option int)) "int_field" (Some 3) (J.int_field v "n");
        Alcotest.(check bool) "int promotes to float" true
          (J.float_field v "n" = Some 3.0);
        Alcotest.(check (option string)) "string_field" (Some "hi") (J.string_field v "s");
        Alcotest.(check (option int)) "missing" None (J.int_field v "zzz"));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random documents round-trip bit-exactly" ~count:500
         json_arb (fun v -> json_eq v (roundtrip v)));
  ]

(* ----- Crc32 ----- *)

let crc_tests =
  [ case "known vectors" (fun () ->
        (* The canonical CRC-32 check value, plus the empty string. *)
        Alcotest.(check int) "123456789" 0xCBF43926 (Persist.Crc32.string "123456789");
        Alcotest.(check int) "empty" 0 (Persist.Crc32.string ""));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"update composes like a single pass" ~count:200
         QCheck.(pair string string)
         (fun (a, b) ->
           let whole = Persist.Crc32.string (a ^ b) in
           let split =
             Persist.Crc32.update
               (Persist.Crc32.update 0 a 0 (String.length a))
               b 0 (String.length b)
           in
           whole = split));
  ]

(* ----- Record_log ----- *)

let mk_records n =
  List.init n (fun i ->
      J.Obj [ ("i", J.Int i); ("x", J.Float (1.0 /. float_of_int (i + 3))) ])

let write_log path records =
  let t = Persist.Record_log.create ~path ~schema:"test" () in
  List.iter (Persist.Record_log.append t) records;
  Persist.Record_log.sync t;
  Persist.Record_log.close t

let read_ok path =
  match Persist.Record_log.read ~path with
  | Ok r -> r
  | Error msg -> Alcotest.failf "read %s: %s" path msg

let file_size path = (Unix.stat path).Unix.st_size

let truncate_by path k =
  let size = file_size path in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (size - k);
  Unix.close fd

let corrupt_byte path off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let check_records msg expected actual =
  Alcotest.(check int) (msg ^ ": count") (List.length expected) (List.length actual);
  List.iter2
    (fun e a -> Alcotest.(check bool) (msg ^ ": payload") true (json_eq e a))
    expected actual

let record_log_tests =
  [ case "write then read preserves order and header" (fun () ->
        let path = fresh "basic" in
        let records = mk_records 5 in
        write_log path records;
        let r = read_ok path in
        check_records "basic" records r.records;
        Alcotest.(check int) "recovered" 5 r.recovered;
        Alcotest.(check int) "no tail" 0 r.discarded_bytes;
        Alcotest.(check string) "schema" "test" r.header.Persist.Record_log.schema;
        rm path);
    case "truncated tail is dropped, prefix kept" (fun () ->
        let path = fresh "torn" in
        let records = mk_records 4 in
        write_log path records;
        truncate_by path 3;
        let r = read_ok path in
        check_records "torn" (mk_records 3) r.records;
        Alcotest.(check bool) "discarded > 0" true (r.discarded_bytes > 0);
        rm path);
    case "corrupted CRC drops the bad record, prefix kept" (fun () ->
        let path = fresh "crc" in
        write_log path (mk_records 3);
        let whole = read_ok path in
        (* Flip the last payload byte of the final frame: the length is
           intact, the CRC no longer matches. *)
        corrupt_byte path (whole.valid_end - 1);
        let r = read_ok path in
        check_records "crc" (mk_records 2) r.records;
        Alcotest.(check bool) "discarded > 0" true (r.discarded_bytes > 0);
        rm path);
    case "open_append replays then continues the same log" (fun () ->
        let path = fresh "cont" in
        write_log path (mk_records 2);
        (match Persist.Record_log.open_append ~path ~schema:"test" () with
        | Error msg -> Alcotest.fail msg
        | Ok (t, replayed) ->
          check_records "replayed" (mk_records 2) replayed;
          Persist.Record_log.append t (J.Obj [ ("i", J.Int 99) ]);
          Persist.Record_log.close t);
        let r = read_ok path in
        Alcotest.(check int) "grew to 3" 3 r.recovered;
        rm path);
    case "open_append rejects a schema mismatch" (fun () ->
        let path = fresh "schema" in
        write_log path (mk_records 1);
        (match Persist.Record_log.open_append ~path ~schema:"other" () with
        | Error _ -> ()
        | Ok (t, _) ->
          Persist.Record_log.close t;
          Alcotest.fail "schema mismatch accepted");
        rm path);
    case "open_append rejects a git-commit mismatch" (fun () ->
        let path = fresh "commit" in
        let t =
          Persist.Record_log.create ~path ~commit:"aaaa1111" ~schema:"test" ()
        in
        Persist.Record_log.append t (J.Int 1);
        Persist.Record_log.close t;
        (match
           Persist.Record_log.open_append ~path ~expect_commit:"bbbb2222"
             ~schema:"test" ()
         with
        | Error _ -> ()
        | Ok (t, _) ->
          Persist.Record_log.close t;
          Alcotest.fail "log from a different commit accepted");
        (match
           Persist.Record_log.open_append ~path ~expect_commit:"aaaa1111"
             ~schema:"test" ()
         with
        | Ok (t, replayed) ->
          Persist.Record_log.close t;
          Alcotest.(check int) "same commit replays" 1 (List.length replayed)
        | Error msg -> Alcotest.failf "same-commit reopen failed: %s" msg);
        rm path);
    case "unknown commit disables the provenance check" (fun () ->
        let path = fresh "commit_unknown" in
        let t =
          Persist.Record_log.create ~path ~commit:"unknown" ~schema:"test" ()
        in
        Persist.Record_log.close t;
        (match
           Persist.Record_log.open_append ~path ~expect_commit:"bbbb2222"
             ~schema:"test" ()
         with
        | Ok (t, _) -> Persist.Record_log.close t
        | Error msg -> Alcotest.failf "unknown-commit log rejected: %s" msg);
        rm path);
    case "snapshot compaction rewrites atomically" (fun () ->
        let path = fresh "snap" in
        write_log path (mk_records 6);
        let keep = mk_records 2 in
        Persist.Record_log.write_snapshot ~path ~schema:"test" keep;
        let r = read_ok path in
        check_records "snapshot" keep r.records;
        Alcotest.(check bool) "no tmp left" false (Sys.file_exists (path ^ ".tmp"));
        rm path);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"records written = records replayed" ~count:50
         (QCheck.list_of_size (QCheck.Gen.int_bound 20) json_arb)
         (fun records ->
           (* Logs replay documents, not subtrees: wrap each random
              value so every record is a standalone document. *)
           let records = List.map (fun v -> J.Obj [ ("v", v) ]) records in
           let path = fresh "prop" in
           write_log path records;
           let r = read_ok path in
           let ok =
             List.length r.records = List.length records
             && List.for_all2 json_eq records r.records
             && r.discarded_bytes = 0
           in
           rm path;
           ok));
  ]

(* ----- Faults ----- *)

let fault_tests =
  [ case "parse specs" (fun () ->
        Alcotest.(check bool) "kill" true
          (Persist.Faults.parse "kill:3" = Ok (Persist.Faults.Kill 3));
        Alcotest.(check bool) "short" true
          (Persist.Faults.parse "short:0" = Ok (Persist.Faults.Short_write 0));
        Alcotest.(check bool) "enospc" true
          (Persist.Faults.parse "enospc:7" = Ok (Persist.Faults.Enospc 7));
        List.iter
          (fun s ->
            match Persist.Faults.parse s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %S" s)
          [ "kill"; "kill:x"; "fry:1"; "" ]);
    case "short write leaves a torn record that recovery discards" (fun () ->
        let path = fresh "short" in
        with_faults [ Persist.Faults.Short_write 2 ] (fun () ->
            let t = Persist.Record_log.create ~path ~schema:"test" () in
            let died =
              match List.iter (Persist.Record_log.append t) (mk_records 5) with
              | () -> false
              | exception Persist.Faults.Injected _ -> true
            in
            Persist.Record_log.close t;
            Alcotest.(check bool) "died at record 2" true died);
        let r = read_ok path in
        check_records "short prefix" (mk_records 2) r.records;
        Alcotest.(check bool) "torn bytes discarded" true (r.discarded_bytes > 0);
        rm path);
    case "kill fires at the boundary after record N, log stays valid" (fun () ->
        let path = fresh "kill" in
        with_faults [ Persist.Faults.Kill 1 ] (fun () ->
            let t = Persist.Record_log.create ~path ~schema:"test" () in
            let died =
              match List.iter (Persist.Record_log.append t) (mk_records 4) with
              | () -> false
              | exception Persist.Faults.Injected _ -> true
            in
            Persist.Record_log.close t;
            Alcotest.(check bool) "died after record 1" true died);
        let r = read_ok path in
        check_records "kill prefix" (mk_records 2) r.records;
        Alcotest.(check int) "clean boundary" 0 r.discarded_bytes;
        rm path);
    case "sticky death: appends after the crash also die" (fun () ->
        let path = fresh "sticky" in
        with_faults [ Persist.Faults.Kill 0 ] (fun () ->
            let t = Persist.Record_log.create ~path ~schema:"test" () in
            (try List.iter (Persist.Record_log.append t) (mk_records 2)
             with Persist.Faults.Injected _ -> ());
            (match Persist.Record_log.append t (J.Int 1) with
            | () -> Alcotest.fail "append succeeded after injected death"
            | exception Persist.Faults.Injected _ -> ());
            Persist.Record_log.close t);
        rm path);
    case "enospc truncates back to the record boundary and re-raises" (fun () ->
        let path = fresh "enospc" in
        with_faults [ Persist.Faults.Enospc 1 ] (fun () ->
            let t = Persist.Record_log.create ~path ~schema:"test" () in
            let records = mk_records 3 in
            let failures = ref 0 in
            List.iter
              (fun v ->
                try Persist.Record_log.append t v
                with Sys_error _ -> incr failures)
              records;
            Persist.Record_log.close t;
            Alcotest.(check int) "one ENOSPC" 1 !failures);
        (* Record 1 failed once; 0 and 2 landed, and the failed write
           left no partial frame behind. *)
        let r = read_ok path in
        Alcotest.(check int) "two records" 2 r.recovered;
        Alcotest.(check int) "no torn bytes" 0 r.discarded_bytes;
        rm path);
  ]

(* ----- Cache ----- *)

let cache_dir = Filename.concat tmp_root "cache"
let test_cache = Persist.Cache.create ~name:"test.roundtrip" ()

let with_cache_dir f =
  Persist.Cache.set_dir (Some cache_dir);
  Fun.protect ~finally:(fun () -> Persist.Cache.set_dir None) f

let cache_tests =
  [ case "inactive until set_dir" (fun () ->
        Persist.Cache.add test_cache "k" (J.Int 1);
        Alcotest.(check (option reject)) "find" None
          (Persist.Cache.find test_cache "k"));
    case "entries persist across a reopen" (fun () ->
        with_cache_dir (fun () ->
            Persist.Cache.add test_cache "answer" (J.Int 42);
            Persist.Cache.sync test_cache);
        with_cache_dir (fun () ->
            match Persist.Cache.find test_cache "answer" with
            | Some (J.Int 42) -> ()
            | Some v -> Alcotest.failf "wrong value %s" (J.to_string v)
            | None -> Alcotest.fail "entry lost across reopen"));
    case "later add wins on replay" (fun () ->
        with_cache_dir (fun () ->
            Persist.Cache.add test_cache "dup" (J.Int 1);
            Persist.Cache.add test_cache "dup" (J.Int 2);
            Persist.Cache.sync test_cache);
        with_cache_dir (fun () ->
            match Persist.Cache.find test_cache "dup" with
            | Some (J.Int 2) -> ()
            | _ -> Alcotest.fail "replay did not keep the last write"));
    case "ENOSPC degrades to memory-only, not a failure" (fun () ->
        with_cache_dir (fun () ->
            with_faults [ Persist.Faults.Enospc 0 ] (fun () ->
                Persist.Cache.add test_cache "lost" (J.Int 7));
            (* Still served from memory in this process... *)
            Alcotest.(check bool) "memory hit" true
              (Persist.Cache.find test_cache "lost" = Some (J.Int 7)));
        (* ...but the failed append never reached the log. *)
        with_cache_dir (fun () ->
            Alcotest.(check (option reject)) "not on disk" None
              (Persist.Cache.find test_cache "lost")));
    case "degraded cache stops touching the disk" (fun () ->
        with_cache_dir (fun () ->
            (* Two armed ENOSPC faults: the first degrades the cache;
               the second would fire if the next store still attempted
               a disk append. *)
            with_faults
              [ Persist.Faults.Enospc 0; Persist.Faults.Enospc 1 ]
              (fun () ->
                let before = Persist.Faults.injected_count () in
                Persist.Cache.add test_cache "d1" (J.Int 1);
                Persist.Cache.add test_cache "d2" (J.Int 2);
                Alcotest.(check int) "one failed write total" 1
                  (Persist.Faults.injected_count () - before));
            Alcotest.(check bool) "memory tier still serves" true
              (Persist.Cache.find test_cache "d2" = Some (J.Int 2))));
  ]

(* ----- Checkpoint / resume bit-identity ----- *)

let env_hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()
let small_cap = 1024 * 8

let sweep ?journal ~pool () =
  Opt.Exhaustive.search ~space:Opt.Space.reduced ~pool ?journal ~env:env_hvt
    ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()

let base_checksum =
  lazy
    (let pool = Runtime.Pool.create ~jobs:1 () in
     Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
     Opt.Exhaustive.checksum [ sweep ~pool () ])

let open_journal ~path ~resume =
  match Persist.Checkpoint.create ~path ~resume ~checkpoint_every:4 () with
  | Ok j -> j
  | Error msg -> Alcotest.failf "checkpoint %s: %s" path msg

(* The acceptance criterion: kill a journaled sweep at an injected
   record boundary, reopen the journal with resume, and the finished
   sweep's winner checksum is bit-identical to an uninterrupted run —
   at every job count. *)
let kill_resume_case jobs =
  slow_case (Printf.sprintf "killed sweep resumes bit-identically (%d jobs)" jobs)
    (fun () ->
      let pool = Runtime.Pool.create ~jobs () in
      Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
      let path = fresh (Printf.sprintf "journal_%dj" jobs) in
      (* Uninterrupted journaled run first: same checksum as plain. *)
      let j = open_journal ~path ~resume:false in
      let full = Opt.Exhaustive.checksum [ sweep ~journal:j ~pool () ] in
      Persist.Checkpoint.close j;
      Alcotest.(check string) "journaled = plain" (Lazy.force base_checksum) full;
      (* Now the crash: fresh journal, die after chunk record 3. *)
      let j = open_journal ~path ~resume:false in
      let died =
        with_faults [ Persist.Faults.Kill 3 ] (fun () ->
            match sweep ~journal:j ~pool () with
            | _ -> false
            | exception Persist.Faults.Injected _ -> true)
      in
      Persist.Checkpoint.close j;
      Alcotest.(check bool) "sweep killed by injected fault" true died;
      (* Resume: completed chunks replay, the rest recompute. *)
      let j = open_journal ~path ~resume:true in
      Alcotest.(check bool) "chunks replayed" true (Persist.Checkpoint.replayed j > 0);
      let resumed = Opt.Exhaustive.checksum [ sweep ~journal:j ~pool () ] in
      Persist.Checkpoint.close j;
      rm path;
      Alcotest.(check string) "resumed = uninterrupted" (Lazy.force base_checksum)
        resumed)

let checkpoint_tests =
  [ case "result codec round-trips the winner bit-exactly" (fun () ->
        let pool = Runtime.Pool.create ~jobs:1 () in
        Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
        let r = sweep ~pool () in
        match Opt.Exhaustive.result_of_json (Opt.Exhaustive.result_to_json r) with
        | None -> Alcotest.fail "result codec round-trip failed"
        | Some r' ->
          Alcotest.(check string) "checksum preserved"
            (Opt.Exhaustive.checksum [ r ])
            (Opt.Exhaustive.checksum [ r' ]);
          Alcotest.(check bool) "winner floats bit-identical" true
            (Int64.bits_of_float r.best.score = Int64.bits_of_float r'.best.score));
    case "stale journal entries are ignored, not folded in" (fun () ->
        (* A journal recorded under a different task signature must not
           contaminate the sweep: recovery matches nothing and the full
           result is recomputed. *)
        let path = fresh "stale" in
        let j = open_journal ~path ~resume:false in
        Persist.Checkpoint.record j ~task:"search|bogus|signature" ~chunk:0
          (J.Obj [ ("best", J.Null); ("lo", J.Int 0); ("hi", J.Int 3) ]);
        Persist.Checkpoint.close j;
        let j = open_journal ~path ~resume:true in
        Alcotest.(check int) "foreign chunk replayed" 1 (Persist.Checkpoint.replayed j);
        let pool = Runtime.Pool.create ~jobs:2 () in
        Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
        let cs = Opt.Exhaustive.checksum [ sweep ~journal:j ~pool () ] in
        Persist.Checkpoint.close j;
        rm path;
        Alcotest.(check string) "winner unaffected" (Lazy.force base_checksum) cs);
    case "checkpoint write failure degrades once, results survive" (fun () ->
        let path = fresh "degrade" in
        let j = open_journal ~path ~resume:false in
        with_faults
          [ Persist.Faults.Enospc 0; Persist.Faults.Enospc 1 ]
          (fun () ->
            let before = Persist.Faults.injected_count () in
            Persist.Checkpoint.record j ~task:"t" ~chunk:0 (J.Int 10);
            Persist.Checkpoint.record j ~task:"t" ~chunk:1 (J.Int 11);
            Alcotest.(check int) "one failed write total" 1
              (Persist.Faults.injected_count () - before));
        (* The in-memory journal still answers for both chunks. *)
        Alcotest.(check bool) "chunk 0 kept" true
          (Persist.Checkpoint.completed j ~task:"t" ~chunk:0 = Some (J.Int 10));
        Alcotest.(check bool) "chunk 1 kept" true
          (Persist.Checkpoint.completed j ~task:"t" ~chunk:1 = Some (J.Int 11));
        Persist.Checkpoint.close j;
        rm path);
    case "resume recomputes chunks whose stored best no longer decodes"
      (fun () ->
        (* Models a journal written before e.g. Geometry invariants were
           tightened: the record is present and matches the task, but
           its stored best fails to decode.  The chunk must be
           recomputed, not replayed as empty. *)
        let mangle_best = function
          | J.Obj kv ->
            J.Obj
              (List.map
                 (fun (k, v) ->
                   match (k, v) with
                   | "data", J.Obj dkv ->
                     ( k,
                       J.Obj
                         (List.map
                            (fun (dk, dv) ->
                              if dk = "best" then
                                (dk, J.Obj [ ("geometry", J.Null) ])
                              else (dk, dv))
                            dkv) )
                   | _ -> (k, v))
                 kv)
          | j -> j
        in
        let path = fresh "undecodable" in
        let pool = Runtime.Pool.create ~jobs:1 () in
        Fun.protect ~finally:(fun () -> Runtime.Pool.shutdown pool) @@ fun () ->
        let j = open_journal ~path ~resume:false in
        ignore (sweep ~journal:j ~pool ());
        Persist.Checkpoint.close j;
        (match Persist.Record_log.read ~path with
        | Error e -> Alcotest.fail e
        | Ok r ->
          Persist.Record_log.write_snapshot ~path ~schema:"sweep-journal"
            (List.map mangle_best r.records));
        let j = open_journal ~path ~resume:true in
        Alcotest.(check bool) "mangled chunks replayed" true
          (Persist.Checkpoint.replayed j > 0);
        let cs = Opt.Exhaustive.checksum [ sweep ~journal:j ~pool () ] in
        Persist.Checkpoint.close j;
        rm path;
        Alcotest.(check string) "winner recomputed identically"
          (Lazy.force base_checksum) cs);
    kill_resume_case 1;
    kill_resume_case 2;
    kill_resume_case 4;
  ]

let () =
  Alcotest.run "persist"
    [ ("json", json_tests);
      ("crc32", crc_tests);
      ("record_log", record_log_tests);
      ("faults", fault_tests);
      ("cache", cache_tests);
      ("checkpoint", checkpoint_tests);
    ]
