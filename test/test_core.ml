(* Tests of the public facade: units and report rendering, the framework
   entry point, and the experiment drivers (shapes and paper anchors of
   the figures the bench harness regenerates). *)

open Testutil

let units_tests =
  [ case "picoseconds" (fun () ->
        Alcotest.(check string) "ps" "134.2 ps" (Sram_edp.Units.ps 134.2e-12));
    case "femtojoules" (fun () ->
        Alcotest.(check string) "fj" "8.86 fJ" (Sram_edp.Units.fj 8.86e-15));
    case "nanowatts" (fun () ->
        Alcotest.(check string) "nw" "1.692 nW" (Sram_edp.Units.nw 1.692e-9));
    case "millivolts" (fun () ->
        Alcotest.(check string) "mv" "-240 mV" (Sram_edp.Units.mv (-0.240)));
    case "microamps" (fun () ->
        Alcotest.(check string) "ua" "12.88 uA" (Sram_edp.Units.ua 12.88e-6));
    case "si prefixes" (fun () ->
        Alcotest.(check string) "n" "5n" (Sram_edp.Units.si 5e-9);
        Alcotest.(check string) "k" "2k" (Sram_edp.Units.si 2e3);
        Alcotest.(check string) "zero" "0" (Sram_edp.Units.si 0.0));
    case "capacities" (fun () ->
        Alcotest.(check string) "128B" "128B" (Sram_edp.Units.capacity (128 * 8));
        Alcotest.(check string) "16KB" "16KB" (Sram_edp.Units.capacity (16384 * 8)));
    case "percent" (fun () ->
        Alcotest.(check string) "pct" "-59.0%" (Sram_edp.Units.percent (-0.59))) ]

let report_tests =
  [ case "renders aligned columns" (fun () ->
        let t = Sram_edp.Report.create ~columns:[ "a"; "bb" ] in
        Sram_edp.Report.add_row t [ "xxx"; "y" ];
        let s = Sram_edp.Report.to_string t in
        Alcotest.(check bool) "has header" true
          (String.length s > 0
           && String.sub s 0 3 = "a  ");
        Alcotest.(check bool) "mentions row" true
          (String.length s > 0
           && (let rec contains i =
                 i + 3 <= String.length s
                 && (String.sub s i 3 = "xxx" || contains (i + 1))
               in
               contains 0)));
    case "rejects mismatched rows" (fun () ->
        let t = Sram_edp.Report.create ~columns:[ "a"; "b" ] in
        Alcotest.(check bool) "raises" true
          (try Sram_edp.Report.add_row t [ "only one" ]; false
           with Invalid_argument _ -> true));
    case "separators render as rules" (fun () ->
        let t = Sram_edp.Report.create ~columns:[ "ab" ] in
        Sram_edp.Report.add_row t [ "v1" ];
        Sram_edp.Report.add_separator t;
        Sram_edp.Report.add_row t [ "v2" ];
        let lines = String.split_on_char '\n' (Sram_edp.Report.to_string t) in
        Alcotest.(check int) "line count" 6 (List.length lines)) ]

let plot_tests =
  let series points = { Sram_edp.Ascii_plot.label = "s"; marker = '#'; points } in
  [ case "canvas has the requested dimensions" (fun () ->
        let s =
          Sram_edp.Ascii_plot.render ~width:20 ~height:5
            [ series [ (0.0, 0.0); (1.0, 1.0) ] ]
        in
        let lines = String.split_on_char '\n' s in
        (* 5 canvas rows + axis + tick row + legend + trailing newline *)
        Alcotest.(check bool) ">= 8 lines" true (List.length lines >= 8);
        let first = List.hd lines in
        Alcotest.(check int) "row width" (9 + 2 + 20) (String.length first));
    case "markers appear on the canvas" (fun () ->
        let s =
          Sram_edp.Ascii_plot.render ~width:10 ~height:4
            [ series [ (0.0, 0.0); (1.0, 1.0) ] ]
        in
        Alcotest.(check bool) "has marker" true (String.contains s '#'));
    case "corner points land in the corners" (fun () ->
        let s =
          Sram_edp.Ascii_plot.render ~width:10 ~height:3
            [ series [ (0.0, 0.0); (1.0, 1.0) ] ]
        in
        let lines = Array.of_list (String.split_on_char '\n' s) in
        (* Top row ends with the max point's marker; bottom canvas row
           starts (after the axis margin) with the min point's. *)
        Alcotest.(check char) "top right" '#' lines.(0).[9 + 2 + 9];
        Alcotest.(check char) "bottom left" '#' lines.(2).[9 + 2]);
    case "log_y rejects non-positive values" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sram_edp.Ascii_plot.render ~log_y:true [ series [ (0.0, 0.0) ] ]);
             false
           with Invalid_argument _ -> true));
    case "empty input rejected" (fun () ->
        Alcotest.(check bool) "raises" true
          (try ignore (Sram_edp.Ascii_plot.render []); false
           with Invalid_argument _ -> true));
    case "legend lists every series" (fun () ->
        let s =
          Sram_edp.Ascii_plot.render
            [ { Sram_edp.Ascii_plot.label = "alpha"; marker = 'a';
                points = [ (0.0, 1.0) ] };
              { Sram_edp.Ascii_plot.label = "beta"; marker = 'b';
                points = [ (1.0, 2.0) ] } ]
        in
        let contains needle hay =
          let n = String.length needle and h = String.length hay in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "alpha" true (contains "a alpha" s);
        Alcotest.(check bool) "beta" true (contains "b beta" s)) ]

let json_tests =
  let open Sram_edp.Json_out in
  [ case "scalars render" (fun () ->
        Alcotest.(check string) "null" "null" (to_string Null);
        Alcotest.(check string) "true" "true" (to_string (Bool true));
        Alcotest.(check string) "int" "42" (to_string (Int 42));
        Alcotest.(check string) "float" "1.5" (to_string (Float 1.5)));
    case "strings escape control characters" (fun () ->
        Alcotest.(check string) "escape" "\"a\\n\\\"b\\\\\""
          (to_string (String "a\n\"b\\")));
    case "containers render compactly" (fun () ->
        Alcotest.(check string) "list" "[1,2]" (to_string (List [ Int 1; Int 2 ]));
        Alcotest.(check string) "obj" "{\"a\":1}" (to_string (Obj [ ("a", Int 1) ])));
    case "pretty rendering is indented and reparses structure" (fun () ->
        let s = to_string_pretty (Obj [ ("xs", List [ Int 1; Int 2 ]) ]) in
        Alcotest.(check bool) "multiline" true (String.contains s '\n'));
    case "metrics serialize with all fields" (fun () ->
        let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
        let g = Array_model.Geometry.create ~nr:64 ~nc:64 ~n_pre:4 ~n_wr:2 () in
        let m = Array_model.Array_eval.evaluate env g Array_model.Components.no_assist in
        match of_metrics m with
        | Obj fields -> Alcotest.(check int) "fields" 10 (List.length fields)
        | Null | Bool _ | Int _ | Float _ | String _ | List _ ->
          Alcotest.fail "expected an object");
    case "headline serializes per-capacity rows" (fun () ->
        match of_headline (Sram_edp.Framework.headline ()) with
        | Obj fields ->
          (match List.assoc "per_capacity" fields with
           | List rows -> Alcotest.(check int) "rows" 3 (List.length rows)
           | _ -> Alcotest.fail "expected a list")
        | _ -> Alcotest.fail "expected an object") ]

let export_tests =
  [ case "csv fields quote when needed" (fun () ->
        Alcotest.(check string) "plain" "abc" (Sram_edp.Export.csv_field "abc");
        Alcotest.(check string) "comma" "\"a,b\"" (Sram_edp.Export.csv_field "a,b");
        Alcotest.(check string) "quote" "\"a\"\"b\"" (Sram_edp.Export.csv_field "a\"b"));
    case "csv lines join and terminate" (fun () ->
        Alcotest.(check string) "line" "a,b,c\n" (Sram_edp.Export.csv_line [ "a"; "b"; "c" ]));
    case "rendered files have consistent column counts" (fun () ->
        List.iter
          (fun (f : Sram_edp.Export.file) ->
            let width = List.length f.Sram_edp.Export.header in
            Alcotest.(check bool) "nonempty" true (f.Sram_edp.Export.rows <> []);
            List.iter
              (fun row -> Alcotest.(check int) f.Sram_edp.Export.filename width (List.length row))
              f.Sram_edp.Export.rows)
          (Sram_edp.Export.fig2_files () @ [ Sram_edp.Export.fig7_file () ]));
    case "the design table exports all twenty rows" (fun () ->
        let f = Sram_edp.Export.fig7_file () in
        Alcotest.(check int) "rows" 20 (List.length f.Sram_edp.Export.rows));
    case "write_all produces readable files" (fun () ->
        let dir = Filename.concat (Filename.get_temp_dir_name ()) "sram_edp_export_test" in
        let paths = Sram_edp.Export.write_all ~dir () in
        Alcotest.(check int) "eight files" 8 (List.length paths);
        List.iter
          (fun path ->
            let ic = open_in path in
            let first = input_line ic in
            close_in ic;
            Alcotest.(check bool) "has header" true (String.contains first ','))
          paths) ]

let hvt_m2 = { Sram_edp.Framework.flavor = Finfet.Library.Hvt; method_ = Opt.Space.M2 }
let lvt_m2 = { Sram_edp.Framework.flavor = Finfet.Library.Lvt; method_ = Opt.Space.M2 }
let cap_1kb = 1024 * 8

let framework_tests =
  [ case "config names" (fun () ->
        Alcotest.(check string) "name" "6T-HVT-M2" (Sram_edp.Framework.config_name hvt_m2);
        Alcotest.(check int) "four configs" 4
          (List.length Sram_edp.Framework.all_configs));
    case "paper capacities" (fun () ->
        Alcotest.(check (list int)) "bits"
          [ 128 * 8; 256 * 8; 1024 * 8; 4096 * 8; 16384 * 8 ]
          Sram_edp.Framework.paper_capacities);
    case "optimize is memoized" (fun () ->
        let a = Sram_edp.Framework.optimize ~capacity_bits:cap_1kb ~config:hvt_m2 () in
        let b = Sram_edp.Framework.optimize ~capacity_bits:cap_1kb ~config:hvt_m2 () in
        Alcotest.(check bool) "same result value" true (a == b));
    case "optimized design satisfies the margin constraint" (fun () ->
        let o = Sram_edp.Framework.optimize ~capacity_bits:cap_1kb ~config:hvt_m2 () in
        let a = Sram_edp.Framework.assist o in
        Alcotest.(check bool) "margins" true
          (Opt.Yield.margins_ok ~flavor:Finfet.Library.Hvt
             ~vddc:a.Array_model.Components.vddc
             ~vssc:a.Array_model.Components.vssc
             ~vwl:a.Array_model.Components.vwl ()));
    case "HVT-M2 beats LVT-M2 on EDP at 1KB+ (the paper's claim)" (fun () ->
        let h = Sram_edp.Framework.optimize ~capacity_bits:cap_1kb ~config:hvt_m2 () in
        let l = Sram_edp.Framework.optimize ~capacity_bits:cap_1kb ~config:lvt_m2 () in
        Alcotest.(check bool) "hvt wins" true
          ((Sram_edp.Framework.metrics h).Array_model.Array_eval.edp
           < (Sram_edp.Framework.metrics l).Array_model.Array_eval.edp));
    case "repeated sweep hits the memo, custom space included" (fun () ->
        (* Regression: the memo key used to carry only a [default_space]
           flag, so explicitly-passed spaces — every bench sweep — never
           hit, and BENCH_runtime.json reported a 0.0 hit rate. *)
        let memo_stats () =
          List.find
            (fun (s : Runtime.Memo.stats) ->
              s.Runtime.Memo.name = "framework.optimize")
            (Runtime.Memo.registered_stats ())
        in
        let sweep () =
          ignore
            (Sram_edp.Framework.sweep_capacities ~space:Opt.Space.reduced
               ~capacities:[ 128 * 8; 256 * 8 ]
               ~configs:Sram_edp.Framework.all_configs ())
        in
        sweep ();
        let cold = memo_stats () in
        sweep ();
        let warm = memo_stats () in
        Alcotest.(check int) "no new misses on the warm sweep"
          cold.Runtime.Memo.misses warm.Runtime.Memo.misses;
        Alcotest.(check bool) "hits > 0" true
          (warm.Runtime.Memo.hits >= cold.Runtime.Memo.hits + 8);
        (* An arithmetically rebuilt grid with -0.0 and representation
           noise canonicalizes to the same key. *)
        let noisy =
          { Opt.Space.reduced with
            Opt.Space.vssc_values =
              Array.init
                (Array.length Opt.Space.reduced.Opt.Space.vssc_values)
                (fun i -> -0.010 *. float_of_int (3 * i)) }
        in
        ignore
          (Sram_edp.Framework.optimize ~space:noisy ~capacity_bits:(128 * 8)
             ~config:hvt_m2 ());
        let after = memo_stats () in
        Alcotest.(check int) "noisy grid is a hit, not a miss"
          warm.Runtime.Memo.misses after.Runtime.Memo.misses);
    case "headline reductions grow with capacity" (fun () ->
        let h = Sram_edp.Framework.headline () in
        let reductions = List.map (fun (_, r, _) -> r) h.Sram_edp.Framework.per_capacity in
        check_increasing ~strict:true "monotone" (Array.of_list reductions);
        Alcotest.(check bool) "positive average" true
          (h.Sram_edp.Framework.avg_edp_reduction > 0.25);
        check_within "penalty bounded (paper: max 12%)" ~lo:0.0 ~hi:0.13
          h.Sram_edp.Framework.max_delay_penalty) ]

let experiments_tests =
  [ case "fig2 series cover the sweep and favor HVT on leakage" (fun () ->
        let leak = Sram_edp.Experiments.fig2b_leakage () in
        Alcotest.(check int) "points" 8 (Array.length leak);
        Array.iter
          (fun (p : Sram_edp.Experiments.voltage_point) ->
            Alcotest.(check bool) "hvt leaks less" true
              (p.Sram_edp.Experiments.hvt < p.Sram_edp.Experiments.lvt))
          leak);
    case "fig2a margins are fractions of the supply" (fun () ->
        Array.iter
          (fun (p : Sram_edp.Experiments.voltage_point) ->
            check_within "lvt" ~lo:0.0 ~hi:(0.5 *. p.Sram_edp.Experiments.vdd)
              p.Sram_edp.Experiments.lvt)
          (Sram_edp.Experiments.fig2a_hsnm ()));
    case "fig3a read current halves with HVT (paper: 2x lower)" (fun () ->
        let r = Sram_edp.Experiments.fig3a () in
        check_within "ratio" ~lo:0.40 ~hi:0.62
          (r.Sram_edp.Experiments.iread_hvt /. r.Sram_edp.Experiments.iread_lvt));
    case "vdd boost sweep crosses the yield rule near 550 mV" (fun () ->
        let s = Sram_edp.Experiments.fig3_read_assist Assist.Technique.Vdd_boost in
        match s.Sram_edp.Experiments.yield_crossing with
        | Some v -> check_within "crossing" ~lo:0.50 ~hi:0.58 v
        | None -> Alcotest.fail "no crossing");
    case "negative Gnd recovers the LVT bitline delay (paper: -100 mV)" (fun () ->
        let s = Sram_edp.Experiments.fig3_read_assist Assist.Technique.Negative_gnd in
        match s.Sram_edp.Experiments.lvt_delay_crossing with
        | Some v -> check_within "crossing" ~lo:(-0.15) ~hi:(-0.05) v
        | None -> Alcotest.fail "no crossing");
    case "WL overdrive meets WM near 540 mV (paper)" (fun () ->
        let s = Sram_edp.Experiments.fig5_write_assist Assist.Technique.Wl_overdrive in
        match s.Sram_edp.Experiments.wm_yield_crossing with
        | Some v -> check_within "crossing" ~lo:0.51 ~hi:0.57 v
        | None -> Alcotest.fail "no crossing");
    case "negative BL meets WM near -100 mV (paper)" (fun () ->
        let s = Sram_edp.Experiments.fig5_write_assist Assist.Technique.Negative_bl in
        match s.Sram_edp.Experiments.wm_yield_crossing with
        | Some v -> check_within "crossing" ~lo:(-0.15) ~hi:(-0.08) v
        | None -> Alcotest.fail "no crossing");
    case "design table covers all capacities and configs" (fun () ->
        let rows = Sram_edp.Experiments.design_table () in
        Alcotest.(check int) "20 rows" 20 (List.length rows);
        List.iter
          (fun (r : Sram_edp.Experiments.design_row) ->
            Alcotest.(check int) "capacity" r.Sram_edp.Experiments.capacity_bits
              (r.Sram_edp.Experiments.nr * r.Sram_edp.Experiments.nc))
          rows);
    case "M2 designs for 1KB+ adopt a deep negative Gnd (paper: -240 mV)" (fun () ->
        let rows = Sram_edp.Experiments.design_table () in
        let m2_16kb =
          List.find
            (fun (r : Sram_edp.Experiments.design_row) ->
              r.Sram_edp.Experiments.capacity_bits = 16384 * 8
              && r.Sram_edp.Experiments.config = hvt_m2)
            rows
        in
        check_within "deep vssc" ~lo:(-0.24) ~hi:(-0.15)
          m2_16kb.Sram_edp.Experiments.vssc);
    case "Figure 7(d): M2 cuts the HVT bitline delay (paper: 3.3x avg)" (fun () ->
        let rows = Sram_edp.Experiments.design_table () in
        let find method_ cap =
          List.find
            (fun (r : Sram_edp.Experiments.design_row) ->
              r.Sram_edp.Experiments.capacity_bits = cap
              && r.Sram_edp.Experiments.config
                 = { Sram_edp.Framework.flavor = Finfet.Library.Hvt; method_ })
            rows
        in
        List.iter
          (fun cap ->
            let m1 = find Opt.Space.M1 cap and m2 = find Opt.Space.M2 cap in
            Alcotest.(check bool) "bl speedup" true
              (m1.Sram_edp.Experiments.d_bl_read
               > 1.5 *. m2.Sram_edp.Experiments.d_bl_read))
          [ 1024 * 8; 4096 * 8; 16384 * 8 ]) ]

let () =
  Alcotest.run "core"
    [ ("units", units_tests);
      ("report", report_tests);
      ("plot", plot_tests);
      ("json", json_tests);
      ("export", export_tests);
      ("framework", framework_tests);
      ("experiments", experiments_tests) ]
