(* Multi-objective search stack: QCheck properties for the NSGA-II
   machinery (Moo) and the hypervolume indicator, oracle-differential
   tests gating the heuristic engines against the exhaustive search on
   reduced Table-4 spaces, and backfill tests pinning that routing the
   pre-existing engines through Opt.Strategy changed nothing — down to
   the full-sweep winner checksum. *)

open Testutil

let to_alco = QCheck_alcotest.to_alcotest

let env_hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()
let levels_hvt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt ()

(* ----- Moo: sorting and crowding over raw point sets ----- *)

(* Coordinates drawn from a coarse grid so duplicates and ties are
   common — the regime where a sloppy sort or a non-canonical crowding
   formulation breaks. *)
let points_gen =
  QCheck.make
    ~print:(fun pts ->
      String.concat ";"
        (List.map
           (fun p -> Printf.sprintf "(%g,%g)" p.(0) p.(1))
           (Array.to_list pts)))
    QCheck.Gen.(
      let coord = map (fun k -> float_of_int k /. 8.0) (int_bound 16) in
      let point = map (fun (x, y) -> [| x; y |]) (pair coord coord) in
      map Array.of_list (list_size (int_range 1 24) point))

let prop_sort_consistent_with_dominates =
  QCheck.Test.make ~name:"nondominated sort ranks agree with dominance"
    ~count:300 points_gen (fun pts ->
      let rank = Opt.Moo.fast_nondominated_sort pts in
      let n = Array.length pts in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Opt.Moo.dominates pts.(i) pts.(j) && rank.(i) >= rank.(j) then
            ok := false
        done;
        (* Rank 0 must be exactly the non-dominated set. *)
        let dominated =
          Array.exists (fun q -> Opt.Moo.dominates q pts.(i)) pts
        in
        if (rank.(i) = 0) = dominated then ok := false
      done;
      !ok)

let prop_moo_dominates_matches_pareto =
  (* The raw-vector dominance must agree with the candidate-level
     Pareto.dominates through Pareto.objectives.  Driven with real
     evaluated candidates so the vectors carry genuine float noise. *)
  QCheck.Test.make ~name:"Moo.dominates agrees with Pareto.dominates"
    ~count:40
    QCheck.(pair small_nat small_nat)
    (fun (i, j) ->
      let _, all =
        Opt.Exhaustive.search_all ~space:Opt.Space.reduced ~levels:levels_hvt
          ~env:env_hvt ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ()
      in
      let arr = Array.of_list all in
      let a = arr.(i mod Array.length arr)
      and b = arr.(j mod Array.length arr) in
      Bool.equal (Opt.Pareto.dominates a b)
        (Opt.Moo.dominates (Opt.Pareto.objectives a) (Opt.Pareto.objectives b)))

let prop_crowding_permutation_invariant =
  QCheck.Test.make ~name:"crowding distance is permutation-invariant"
    ~count:300
    QCheck.(pair points_gen (int_bound 1_000_000))
    (fun (pts, seed) ->
      let n = Array.length pts in
      let members = Array.init n (fun i -> i) in
      (* Fisher-Yates with a deterministic stream. *)
      let rng = Numerics.Rng.create ~seed in
      let perm = Array.copy members in
      for i = n - 1 downto 1 do
        let j = Numerics.Rng.int_below rng (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let base = Opt.Moo.crowding_distance pts members in
      let shuffled = Opt.Moo.crowding_distance pts perm in
      (* Align: shuffled.(k) is the crowding of point perm.(k). *)
      let ok = ref true in
      Array.iteri
        (fun k p ->
          if not (Float.equal shuffled.(k) base.(p)) then ok := false)
        perm;
      !ok)

(* ----- hypervolume ----- *)

let prop_hv2_matches_grid =
  (* Exact sweep vs a midpoint-grid estimate of the dominated region:
     the grid resolves the staircase to ~1 cell per boundary step, so
     2% relative (plus a small absolute floor for tiny volumes) covers
     the discretization error. *)
  QCheck.Test.make ~name:"hv2 matches a brute-force grid estimate" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 12)
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun pts ->
      let ref_ = (1.05, 1.05) in
      let exact = Opt.Hypervolume.hv2 ~ref_ pts in
      let n = 400 in
      let rx, ry = ref_ in
      let cell = rx /. float_of_int n *. (ry /. float_of_int n) in
      let count = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let x = (float_of_int i +. 0.5) *. rx /. float_of_int n in
          let y = (float_of_int j +. 0.5) *. ry /. float_of_int n in
          if List.exists (fun (px, py) -> px <= x && py <= y) pts then
            incr count
        done
      done;
      let estimate = float_of_int !count *. cell in
      abs_float (exact -. estimate)
      <= (0.02 *. Float.max exact estimate) +. 2e-2)

let hypervolume_tests =
  [ case "hv2 of one corner point is the full box" (fun () ->
        check_close ~tol:1e-12 "unit box" 1.0
          (Opt.Hypervolume.hv2 ~ref_:(1.0, 1.0) [ (0.0, 0.0) ]));
    case "hv2 ignores dominated and out-of-box points" (fun () ->
        let front = [ (0.2, 0.8); (0.5, 0.5); (0.8, 0.2) ] in
        let noise = [ (0.6, 0.6); (1.5, 0.1); (0.1, 2.0) ] in
        check_close ~tol:1e-12 "noise-free"
          (Opt.Hypervolume.hv2 ~ref_:(1.0, 1.0) front)
          (Opt.Hypervolume.hv2 ~ref_:(1.0, 1.0) (front @ noise)));
    case "hv3 of one corner point is the full box" (fun () ->
        check_close ~tol:1e-12 "unit cube" 1.0
          (Opt.Hypervolume.hv3 ~ref_:(1.0, 1.0, 1.0) [ (0.0, 0.0, 0.0) ]));
    case "hv3 of two staircase points sums the slices" (fun () ->
        (* (0,.5,0) and (.5,0,0) against (1,1,1): two half-slabs of
           volume .5 overlapping in a quarter-slab: 0.5 + 0.5 - 0.25. *)
        check_close ~tol:1e-12 "staircase" 0.75
          (Opt.Hypervolume.hv3 ~ref_:(1.0, 1.0, 1.0)
             [ (0.0, 0.5, 0.0); (0.5, 0.0, 0.0) ]));
    case "ratio of a front against itself is 1" (fun () ->
        let front = [ (0.2, 0.8); (0.5, 0.5); (0.8, 0.2) ] in
        check_close ~tol:1e-12 "self ratio" 1.0
          (Opt.Hypervolume.ratio ~truth:front front))
  ]

(* ----- oracle differential: heuristics vs exhaustive ----- *)

let pairs_of cs =
  List.map (fun c -> let o = Opt.Pareto.objectives c in (o.(0), o.(1))) cs

let show_front label cs =
  Printf.sprintf "%s front (%d points):\n%s" label (List.length cs)
    (String.concat "\n"
       (List.map
          (fun (d, e) -> Printf.sprintf "  d=%.6e  e=%.6e" d e)
          (pairs_of cs)))

let oracle_case name search_front =
  case name (fun () ->
      List.iter
        (fun capacity_bits ->
          let oracle, all =
            Opt.Exhaustive.search_all ~space:Opt.Space.reduced
              ~levels:levels_hvt ~env:env_hvt ~capacity_bits
              ~method_:Opt.Space.M2 ()
          in
          let truth = Opt.Pareto.front all in
          let res, front =
            search_front ~capacity_bits
          in
          (* Winner regret must be exactly zero: same score bits. *)
          if
            not
              (Float.equal res.Opt.Exhaustive.best.Opt.Exhaustive.score
                 oracle.Opt.Exhaustive.best.Opt.Exhaustive.score)
          then
            Alcotest.failf
              "%s at %dB: winner regret %.3e (heuristic %.17e vs oracle \
               %.17e)\n%s\n%s"
              name (capacity_bits / 8)
              (res.Opt.Exhaustive.best.Opt.Exhaustive.score
              -. oracle.Opt.Exhaustive.best.Opt.Exhaustive.score)
              res.Opt.Exhaustive.best.Opt.Exhaustive.score
              oracle.Opt.Exhaustive.best.Opt.Exhaustive.score
              (show_front "oracle" truth)
              (show_front "heuristic" front);
          (* The heuristic must not out-search the budget: it sees a
             strict subset of what the oracle decided. *)
          Alcotest.(check bool)
            (Printf.sprintf "%dB: evaluated within oracle's considered"
               (capacity_bits / 8))
            true
            (res.Opt.Exhaustive.evaluated
            <= oracle.Opt.Exhaustive.considered);
          let hv = Opt.Hypervolume.ratio ~truth:(pairs_of truth) (pairs_of front) in
          if hv < 0.99 then
            Alcotest.failf "%s at %dB: hypervolume ratio %.4f < 0.99\n%s\n%s"
              name (capacity_bits / 8) hv
              (show_front "oracle" truth)
              (show_front "heuristic" front))
        [ 128 * 8; 1024 * 8; 4 * 1024 * 8 ])

let oracle_tests =
  [ oracle_case "nsga2 recovers the exhaustive winner" (fun ~capacity_bits ->
        Opt.Nsga2.search_front ~space:Opt.Space.reduced ~levels:levels_hvt
          ~env:env_hvt ~capacity_bits ~method_:Opt.Space.M2 ());
    oracle_case "surrogate recovers the exhaustive winner"
      (fun ~capacity_bits ->
        (* Fallback disabled so the model path itself is under test even
           on the reduced grid. *)
        Opt.Surrogate.search_front ~space:Opt.Space.reduced
          ~levels:levels_hvt ~fallback_threshold:0 ~env:env_hvt
          ~capacity_bits ~method_:Opt.Space.M2 ())
  ]

(* ----- determinism across job counts ----- *)

let prop_nsga2_bit_identical_across_jobs =
  QCheck.Test.make ~name:"same-seed nsga2 is bit-identical at 1/2/4 jobs"
    ~count:6
    QCheck.(int_bound 10_000)
    (fun seed ->
      let sums =
        List.map
          (fun jobs ->
            let pool = Runtime.Pool.create ~jobs () in
            let res =
              Opt.Nsga2.search ~space:Opt.Space.reduced ~levels:levels_hvt
                ~pool ~pop:8 ~generations:6 ~seed ~env:env_hvt
                ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ()
            in
            Runtime.Pool.shutdown pool;
            Opt.Exhaustive.checksum [ res ])
          [ 1; 2; 4 ]
      in
      match sums with
      | [ a; b; c ] -> String.equal a b && String.equal b c
      | _ -> false)

let prop_surrogate_bit_identical_across_jobs =
  QCheck.Test.make ~name:"same-seed surrogate is bit-identical at 1/2/4 jobs"
    ~count:4
    QCheck.(int_bound 10_000)
    (fun seed ->
      let sums =
        List.map
          (fun jobs ->
            let pool = Runtime.Pool.create ~jobs () in
            let res =
              Opt.Surrogate.search ~space:Opt.Space.reduced
                ~levels:levels_hvt ~pool ~seed ~fallback_threshold:0
                ~env:env_hvt ~capacity_bits:(1024 * 8)
                ~method_:Opt.Space.M2 ()
            in
            Runtime.Pool.shutdown pool;
            Opt.Exhaustive.checksum [ res ])
          [ 1; 2; 4 ]
      in
      match sums with
      | [ a; b; c ] -> String.equal a b && String.equal b c
      | _ -> false)

(* ----- backfill: the Strategy refactor changed nothing ----- *)

(* The strongest available anchor: the full paper sweep driven through
   [Strategy.run Exhaustive] must still produce the winner checksum
   committed in BENCH_kernel.json (and pinned by test_properties via
   the direct [Exhaustive.search] path). *)
let full_sweep_checksum = "67fd83cd67998ac0"

let test_strategy_exhaustive_full_sweep () =
  let env_of =
    let lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> env_hvt
  in
  let levels_of =
    let lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> levels_hvt
  in
  let sweep jobs =
    let pool = Runtime.Pool.create ~jobs () in
    let results =
      List.concat_map
        (fun capacity_bits ->
          List.map
            (fun (c : Sram_edp.Framework.config) ->
              Opt.Strategy.run Opt.Strategy.Exhaustive ~kernel:`Staged ~pool
                ~levels:(levels_of c.Sram_edp.Framework.flavor)
                ~env:(env_of c.Sram_edp.Framework.flavor) ~capacity_bits
                ~method_:c.Sram_edp.Framework.method_ ())
            Sram_edp.Framework.all_configs)
        Sram_edp.Framework.paper_capacities
    in
    Runtime.Pool.shutdown pool;
    Opt.Exhaustive.checksum results
  in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "Strategy-dispatched full-sweep checksum at %d jobs"
           jobs)
        full_sweep_checksum (sweep jobs))
    [ 1; 2; 4 ]

let test_strategy_matches_direct_calls () =
  let capacity_bits = 1024 * 8 and method_ = Opt.Space.M2 in
  let common = (Opt.Space.reduced, env_hvt) in
  let space, env = common in
  let via st =
    Opt.Strategy.run st ~space ~levels:levels_hvt ~rng_seed:7 ~env
      ~capacity_bits ~method_ ()
  in
  let pairs =
    [ ( "local",
        via Opt.Strategy.Local_search,
        Opt.Local_search.search ~space ~levels:levels_hvt ~env ~capacity_bits
          ~method_ () );
      ( "anneal",
        via Opt.Strategy.Anneal,
        Opt.Anneal.search ~space ~seed:7 ~env ~capacity_bits ~method_ () ) ]
  in
  List.iter
    (fun (name, a, b) ->
      Alcotest.(check string)
        (name ^ " via Strategy = direct call")
        (Opt.Exhaustive.checksum [ b ])
        (Opt.Exhaustive.checksum [ a ]))
    pairs

let test_surrogate_fallback_is_exhaustive () =
  (* A space below the fallback threshold must be searched outright:
     same winner as the exhaustive engine, bit for bit, and the true
     front. *)
  let space =
    { Opt.Space.vssc_values = [| 0.0; -0.1; -0.2 |];
      nr_values = [| 64; 128; 256 |];
      n_pre_values = [| 2; 4 |];
      n_wr_values = [| 2; 4 |] }
  in
  let capacity_bits = 1024 * 8 and method_ = Opt.Space.M2 in
  let sres, sfront =
    Opt.Surrogate.search_front ~space ~levels:levels_hvt ~env:env_hvt
      ~capacity_bits ~method_ ()
  in
  let eres, all =
    Opt.Exhaustive.search_all ~space ~levels:levels_hvt ~env:env_hvt
      ~capacity_bits ~method_ ()
  in
  Alcotest.(check string)
    "fallback winner = exhaustive winner"
    (Opt.Exhaustive.checksum [ eres ])
    (Opt.Exhaustive.checksum [ sres ]);
  Alcotest.(check int)
    "fallback front = true front"
    (List.length (Opt.Pareto.front all))
    (List.length sfront)

(* ----- the --method / wire grammar ----- *)

let strategy_grammar_tests =
  [ case "parse_method accepts pins, strategies and both" (fun () ->
        let check_parse s expected =
          Alcotest.(check bool)
            (Printf.sprintf "parse %S" s)
            true
            (Opt.Strategy.parse_method s = expected)
        in
        check_parse "m1" (Some (Some Opt.Space.M1, None));
        check_parse "M2" (Some (Some Opt.Space.M2, None));
        check_parse "nsga2" (Some (None, Some Opt.Strategy.Nsga2));
        check_parse "  Surrogate " (Some (None, Some Opt.Strategy.Surrogate));
        check_parse "m1:nsga2"
          (Some (Some Opt.Space.M1, Some Opt.Strategy.Nsga2));
        check_parse "m2:anneal"
          (Some (Some Opt.Space.M2, Some Opt.Strategy.Anneal));
        check_parse "bogus" None;
        check_parse "m3:nsga2" None;
        check_parse "m1:bogus" None);
    case "strategy names round-trip through of_name" (fun () ->
        List.iter
          (fun st ->
            match Opt.Strategy.of_name (Opt.Strategy.name st) with
            | Some st' when st' = st -> ()
            | _ ->
              Alcotest.failf "round-trip failed for %s" (Opt.Strategy.name st))
          Opt.Strategy.all)
  ]

let () =
  Alcotest.run "moo"
    [ ( "moo-primitives",
        List.map to_alco
          [ prop_sort_consistent_with_dominates;
            prop_moo_dominates_matches_pareto;
            prop_crowding_permutation_invariant ] );
      ("hypervolume", hypervolume_tests @ [ to_alco prop_hv2_matches_grid ]);
      ("oracle", oracle_tests);
      ( "determinism",
        List.map to_alco
          [ prop_nsga2_bit_identical_across_jobs;
            prop_surrogate_bit_identical_across_jobs ] );
      ( "strategy-backfill",
        [ slow_case "exhaustive via Strategy reproduces the full-sweep \
                     checksum"
            test_strategy_exhaustive_full_sweep;
          case "local and anneal via Strategy match direct calls"
            test_strategy_matches_direct_calls;
          case "surrogate below threshold falls back to exhaustive"
            test_surrogate_fallback_is_exhaustive ] );
      ("strategy-grammar", strategy_grammar_tests)
    ]
