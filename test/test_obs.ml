(* Tests of the lib/obs observability subsystem: clock monotonicity,
   histogram unit + QCheck properties (shard merge equals the whole,
   percentile ordering, bucket roundtrip), trace span balance and Chrome
   JSON well-formedness, telemetry epoch tagging across resets, the
   leveled logger, the progress counters, and a determinism guard that
   the instrumentation never changes which design the search picks. *)

open Testutil

let pool_of =
  let pools = Hashtbl.create 4 in
  fun jobs ->
    match Hashtbl.find_opt pools jobs with
    | Some p -> p
    | None ->
      let p = Runtime.Pool.create ~jobs () in
      Hashtbl.add pools jobs p;
      p

(* Fresh registry names per call: [Histogram.create] is get-or-create,
   so property iterations must not share state. *)
let fresh_name =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "test.%s.%d" prefix !n

(* ----- Clock ----- *)

let clock_tests =
  [ case "now is monotone non-decreasing" (fun () ->
        let prev = ref (Obs.Clock.now ()) in
        for i = 1 to 1000 do
          let t = Obs.Clock.now () in
          if t < !prev then
            Alcotest.failf "clock went backwards at step %d: %.9f -> %.9f" i
              !prev t;
          prev := t
        done);
    case "now advances across a sleep" (fun () ->
        let t0 = Obs.Clock.now () in
        Unix.sleepf 0.01;
        let dt = Obs.Clock.now () -. t0 in
        check_within "10 ms sleep measured" ~lo:0.005 ~hi:5.0 dt) ]

(* ----- Histogram ----- *)

let histogram_tests =
  [ case "snapshot accounting" (fun () ->
        let h = Obs.Histogram.create (fresh_name "acct") in
        List.iter (Obs.Histogram.observe h) [ 1e-6; 2e-6; 3e-6 ];
        let s = Obs.Histogram.snapshot h in
        Alcotest.(check int) "count" 3 s.Obs.Histogram.count;
        check_close "sum" 6e-6 s.Obs.Histogram.sum;
        check_close "min" 1e-6 s.Obs.Histogram.min_s;
        check_close "max" 3e-6 s.Obs.Histogram.max_s;
        check_close "mean" 2e-6 (Obs.Histogram.mean s);
        Alcotest.(check int)
          "bucket totals match count" 3
          (Array.fold_left ( + ) 0 s.Obs.Histogram.buckets));
    case "empty snapshot percentile is 0" (fun () ->
        let h = Obs.Histogram.create (fresh_name "empty") in
        let s = Obs.Histogram.snapshot h in
        Alcotest.(check int) "count" 0 s.Obs.Histogram.count;
        check_close_abs "p99" 0.0 (Obs.Histogram.percentile s 0.99));
    case "create is get-or-create by name" (fun () ->
        let name = fresh_name "shared" in
        let a = Obs.Histogram.create name in
        let b = Obs.Histogram.create name in
        Obs.Histogram.observe a 1e-6;
        Obs.Histogram.observe b 2e-6;
        let s = Obs.Histogram.snapshot a in
        Alcotest.(check int) "both observations landed" 2
          s.Obs.Histogram.count);
    case "merge rejects mismatched layouts" (fun () ->
        let a = Obs.Histogram.create ~buckets:32 (fresh_name "m32") in
        let b = Obs.Histogram.create ~buckets:64 (fresh_name "m64") in
        Alcotest.check_raises "layout mismatch"
          (Invalid_argument "Histogram.merge: bucket layouts differ")
          (fun () ->
            ignore
              (Obs.Histogram.merge (Obs.Histogram.snapshot a)
                 (Obs.Histogram.snapshot b))));
    case "tick is gated on Control.is_enabled" (fun () ->
        let h = Obs.Histogram.create ~sample:1 (fresh_name "gate") in
        Obs.Control.set_enabled false;
        for _ = 1 to 10 do
          if Obs.Histogram.tick h then
            Alcotest.fail "tick fired while disabled"
        done;
        Obs.Control.set_enabled true;
        let fired = ref 0 in
        for _ = 1 to 10 do
          if Obs.Histogram.tick h then incr fired
        done;
        Obs.Control.set_enabled false;
        Alcotest.(check int) "sample=1 fires every call" 10 !fired);
    case "sampled tick fires once per period" (fun () ->
        let h = Obs.Histogram.create ~sample:8 (fresh_name "period") in
        Obs.Control.set_enabled true;
        let fired = ref 0 in
        for _ = 1 to 80 do
          if Obs.Histogram.tick h then incr fired
        done;
        Obs.Control.set_enabled false;
        Alcotest.(check int) "80 calls at sample=8" 10 !fired);
    case "time observes and is exception-safe" (fun () ->
        let h = Obs.Histogram.create ~sample:1 (fresh_name "time") in
        Obs.Control.set_enabled true;
        let v = Obs.Histogram.time h (fun () -> 42) in
        Alcotest.(check int) "result" 42 v;
        (try
           ignore (Obs.Histogram.time h (fun () -> failwith "boom") : int);
           Alcotest.fail "exception swallowed"
         with Failure _ -> ());
        Obs.Control.set_enabled false;
        let s = Obs.Histogram.snapshot h in
        Alcotest.(check int) "both runs observed" 2 s.Obs.Histogram.count) ]

(* ----- Histogram QCheck properties ----- *)

let to_alco = QCheck_alcotest.to_alcotest

let latency_gen =
  (* Spans the histogram's designed range: 1 ns floor to ~4 s ceiling. *)
  QCheck.(map (fun x -> 2e-9 *. Float.exp2 (x *. 30.0)) (float_bound_inclusive 1.0))

let latencies_gen = QCheck.(list_of_size (QCheck.Gen.int_range 1 200) latency_gen)

let prop_merge_of_shards_equals_whole =
  QCheck.Test.make ~name:"merge of two shards equals the whole" ~count:100
    QCheck.(pair latencies_gen latencies_gen)
    (fun (xs, ys) ->
      let a = Obs.Histogram.create (fresh_name "shard_a") in
      let b = Obs.Histogram.create (fresh_name "shard_b") in
      let w = Obs.Histogram.create (fresh_name "whole") in
      List.iter (Obs.Histogram.observe a) xs;
      List.iter (Obs.Histogram.observe b) ys;
      List.iter (Obs.Histogram.observe w) (xs @ ys);
      let m =
        Obs.Histogram.merge (Obs.Histogram.snapshot a)
          (Obs.Histogram.snapshot b)
      in
      let s = Obs.Histogram.snapshot w in
      (* Counts, extrema and bucket contents are exact; the sums differ
         only by float association. *)
      m.Obs.Histogram.count = s.Obs.Histogram.count
      && m.Obs.Histogram.min_s = s.Obs.Histogram.min_s
      && m.Obs.Histogram.max_s = s.Obs.Histogram.max_s
      && m.Obs.Histogram.buckets = s.Obs.Histogram.buckets
      && abs_float (m.Obs.Histogram.sum -. s.Obs.Histogram.sum)
         <= 1e-9 *. s.Obs.Histogram.sum)

let prop_percentiles_ordered =
  QCheck.Test.make ~name:"p50 <= p90 <= p99, all within [min, max]" ~count:100
    latencies_gen
    (fun xs ->
      let h = Obs.Histogram.create (fresh_name "pct") in
      List.iter (Obs.Histogram.observe h) xs;
      let s = Obs.Histogram.snapshot h in
      let p50 = Obs.Histogram.percentile s 0.50 in
      let p90 = Obs.Histogram.percentile s 0.90 in
      let p99 = Obs.Histogram.percentile s 0.99 in
      p50 <= p90 && p90 <= p99
      && p50 >= s.Obs.Histogram.min_s
      && p99 <= s.Obs.Histogram.max_s)

let prop_bucket_roundtrip =
  QCheck.Test.make ~name:"bucket_of v lands within bucket_bounds" ~count:200
    latency_gen
    (fun v ->
      let h = Obs.Histogram.create (fresh_name "roundtrip") in
      let i = Obs.Histogram.bucket_of h v in
      let s = Obs.Histogram.snapshot h in
      let lo, hi = Obs.Histogram.bucket_bounds s i in
      (* 1 ulp of slack: bucket_of computes the index in log space while
         bucket_bounds rebuilds the edges with powers. *)
      v >= lo *. (1.0 -. 1e-12) && v <= hi *. (1.0 +. 1e-12))

let histogram_property_tests =
  [ to_alco prop_merge_of_shards_equals_whole;
    to_alco prop_percentiles_ordered;
    to_alco prop_bucket_roundtrip ]

(* ----- Windowed metrics ----- *)

(* Exact equality for the windowed-ring invariant: counts and buckets
   as ints, the sum by bits (the full-history window diffs against the
   zero baseline, so even the float must reproduce). *)
let exact_eq (a : Obs.Histogram.snapshot) (b : Obs.Histogram.snapshot) =
  a.Obs.Histogram.count = b.Obs.Histogram.count
  && Int64.bits_of_float a.Obs.Histogram.sum
     = Int64.bits_of_float b.Obs.Histogram.sum
  && a.Obs.Histogram.buckets = b.Obs.Histogram.buckets
  && a.Obs.Histogram.gc_coincident = b.Obs.Histogram.gc_coincident

let batches_gen =
  QCheck.(
    list_of_size (Gen.int_range 1 12)
      (list_of_size (Gen.int_range 0 40) latency_gen))

let prop_window_full_history_equals_cumulative =
  QCheck.Test.make
    ~name:"full-history window equals the cumulative histogram at every rotation"
    ~count:60 batches_gen
    (fun batches ->
      let h = Obs.Histogram.create (fresh_name "winfull") in
      let w = Obs.Window.create ~intervals:16 h in
      List.for_all
        (fun batch ->
          List.iter (Obs.Histogram.observe h) batch;
          Obs.Window.rotate w;
          exact_eq
            (Obs.Window.merged w ~intervals:16)
            (Obs.Histogram.snapshot h))
        batches)

let prop_one_interval_window_sees_only_its_batch =
  QCheck.Test.make
    ~name:"one-interval window holds exactly the samples since the last rotation"
    ~count:60 batches_gen
    (fun batches ->
      let h = Obs.Histogram.create (fresh_name "winone") in
      let w = Obs.Window.create ~intervals:16 h in
      Obs.Window.rotate w;
      List.for_all
        (fun batch ->
          List.iter (Obs.Histogram.observe h) batch;
          let m = Obs.Window.merged w ~intervals:1 in
          let seen = m.Obs.Histogram.count = List.length batch in
          Obs.Window.rotate w;
          let drained =
            (Obs.Window.merged w ~intervals:1).Obs.Histogram.count = 0
          in
          seen && drained)
        batches)

let window_tests =
  [ to_alco prop_window_full_history_equals_cumulative;
    to_alco prop_one_interval_window_sees_only_its_batch;
    case "cold-start spike ages out of the window, stays cumulative"
      (fun () ->
        let h = Obs.Histogram.create (fresh_name "aging") in
        let w = Obs.Window.create ~intervals:4 h in
        (* One slow cold-start request... *)
        Obs.Histogram.observe h 0.5;
        (* ...ages past the ring... *)
        for _ = 1 to 5 do
          Obs.Window.rotate w
        done;
        (* ...then warm traffic. *)
        for _ = 1 to 50 do
          Obs.Histogram.observe h 2e-6
        done;
        let windowed = Obs.Window.merged w ~intervals:4 in
        let cumulative = Obs.Window.cumulative w in
        Alcotest.(check int) "window holds only recent" 50
          windowed.Obs.Histogram.count;
        Alcotest.(check int) "cumulative holds everything" 51
          cumulative.Obs.Histogram.count;
        check_within "windowed p99 is the warm path" ~lo:0.0 ~hi:1e-4
          (Obs.Histogram.percentile windowed 0.99);
        check_within "cumulative p99 still remembers the spike" ~lo:0.01
          ~hi:0.5
          (Obs.Histogram.percentile cumulative 0.99));
    case "tracked counters expose windowed deltas" (fun () ->
        let v = ref 0 in
        let name = fresh_name "slo" in
        Obs.Window.track name (fun () -> !v);
        v := 5;
        Obs.Window.rotate_all ();
        v := 12;
        let row () =
          match
            List.find_opt
              (fun (n, _, _) -> n = name)
              (Obs.Window.counter_report ())
          with
          | Some r -> r
          | None -> Alcotest.failf "counter %s not reported" name
        in
        let _, current, windows = row () in
        Alcotest.(check int) "current value" 12 current;
        List.iter
          (fun (label, delta) ->
            Alcotest.(check int)
              (label ^ " delta falls back to the creation baseline") 12 delta)
          windows;
        (* Ten quiet rotations: the early bump leaves the 10s window but
           stays in the longer ones. *)
        for _ = 1 to 10 do
          Obs.Window.rotate_all ()
        done;
        let _, _, windows = row () in
        Alcotest.(check int) "10s delta drained" 0 (List.assoc "10s" windows);
        Alcotest.(check int) "300s delta retained" 12
          (List.assoc "300s" windows));
    case "maybe_rotate rotates once per elapsed period" (fun () ->
        Obs.Window.reset_all ();
        let h = Obs.Histogram.create (fresh_name "period") in
        let w = Obs.Window.create h in
        Obs.Window.maybe_rotate ~now:100.0 ();
        Obs.Window.maybe_rotate ~now:100.5 ();
        Alcotest.(check int) "within the period: no rotation" 0
          (Obs.Window.retained w);
        Obs.Window.maybe_rotate ~now:101.1 ();
        Alcotest.(check int) "one period: one rotation" 1
          (Obs.Window.retained w);
        (* A stalled loop catches up one rotation per missed period. *)
        Obs.Window.maybe_rotate ~now:104.2 ();
        Alcotest.(check int) "three missed periods: three rotations" 4
          (Obs.Window.retained w);
        Obs.Window.reset_all ()) ]

(* ----- Trace ----- *)

(* Every B must close with an E on its own slot's timeline. *)
let check_balanced events =
  let stacks = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let stack =
        match Hashtbl.find_opt stacks e.Obs.Trace.ev_slot with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add stacks e.Obs.Trace.ev_slot s;
          s
      in
      match e.Obs.Trace.ev_phase with
      | Obs.Trace.B -> stack := e.Obs.Trace.ev_name :: !stack
      | Obs.Trace.E -> (
        match !stack with
        | top :: rest ->
          Alcotest.(check string)
            (Printf.sprintf "E matches B on slot %d" e.Obs.Trace.ev_slot)
            top e.Obs.Trace.ev_name;
          stack := rest
        | [] ->
          Alcotest.failf "E %S without B on slot %d" e.Obs.Trace.ev_name
            e.Obs.Trace.ev_slot)
      | Obs.Trace.I | Obs.Trace.X _ -> ())
    events;
  Hashtbl.iter
    (fun slot stack ->
      if !stack <> [] then
        Alcotest.failf "unclosed span %S on slot %d" (List.hd !stack) slot)
    stacks

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let trace_tests =
  [ case "spans nest and balance" (fun () ->
        Obs.Trace.start ();
        Obs.Trace.with_span "outer" (fun () ->
            Obs.Trace.with_span "inner" (fun () -> Obs.Trace.instant "mark"));
        Obs.Trace.stop ();
        let events = Obs.Trace.events () in
        Alcotest.(check int) "2 B + 2 E + 1 I" 5 (List.length events);
        check_balanced events);
    case "with_span closes on exception" (fun () ->
        Obs.Trace.start ();
        (try
           Obs.Trace.with_span "raiser" (fun () -> failwith "boom")
         with Failure _ -> ());
        Obs.Trace.stop ();
        check_balanced (Obs.Trace.events ()));
    case "no events recorded when stopped" (fun () ->
        Obs.Trace.start ();
        Obs.Trace.stop ();
        Obs.Trace.with_span "ghost" (fun () -> ());
        Alcotest.(check int) "buffer stays empty" 0
          (List.length (Obs.Trace.events ())));
    case "fine_active only under `Fine detail" (fun () ->
        Obs.Trace.start ~detail:`Coarse ();
        Alcotest.(check bool) "coarse: active" true (Obs.Trace.active ());
        Alcotest.(check bool) "coarse: not fine" false (Obs.Trace.fine_active ());
        Obs.Trace.stop ();
        Obs.Trace.start ~detail:`Fine ();
        Alcotest.(check bool) "fine: fine" true (Obs.Trace.fine_active ());
        Obs.Trace.stop ());
    case "chrome export is well-formed" (fun () ->
        Obs.Trace.start ();
        Obs.Trace.with_span "exported" (fun () -> ());
        Obs.Trace.stop ();
        let json = Obs.Trace.to_chrome_string () in
        Alcotest.(check bool) "has traceEvents" true
          (contains ~needle:"\"traceEvents\"" json);
        Alcotest.(check bool) "names the process" true
          (contains ~needle:"\"process_name\"" json);
        Alcotest.(check bool) "names a thread" true
          (contains ~needle:"\"thread_name\"" json);
        Alcotest.(check bool) "has the span begin" true
          (contains ~needle:"\"name\":\"exported\",\"ph\":\"B\"" json);
        Alcotest.(check bool) "has the span end" true
          (contains ~needle:"\"ph\":\"E\"" json);
        Alcotest.(check bool) "single process id" false
          (contains ~needle:"\"pid\":1" json));
    case "parallel search produces balanced per-worker timelines" (fun () ->
        let env =
          Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()
        in
        Obs.Trace.start ~detail:`Fine ();
        ignore
          (Opt.Exhaustive.search ~space:Opt.Space.reduced ~pool:(pool_of 2)
             ~env ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ());
        Obs.Trace.stop ();
        let events = Obs.Trace.events () in
        check_balanced events;
        let has name =
          List.exists
            (fun (e : Obs.Trace.event) -> e.Obs.Trace.ev_name = name)
            events
        in
        Alcotest.(check bool) "exhaustive.search span" true
          (has "exhaustive.search");
        Alcotest.(check bool) "pool.chunk spans" true (has "pool.chunk");
        Alcotest.(check bool) "per-geometry eval spans (fine)" true
          (has "exhaustive.eval")) ]

(* ----- Trace context ----- *)

let context_tests =
  [ case "with_context tags exported events and restores on exit" (fun () ->
        Obs.Trace.start ();
        Obs.Trace.with_context "ctx-42" (fun () ->
            Obs.Trace.with_span "ctxspan" (fun () -> ()));
        Obs.Trace.stop ();
        Alcotest.(check bool) "context cleared after with_context" true
          (Obs.Trace.get_context () = None);
        let json = Obs.Trace.to_chrome_string () in
        Alcotest.(check bool) "span carries args.trace_id" true
          (contains ~needle:"\"args\":{\"trace_id\":\"ctx-42\"}" json));
    case "with_context restores the previous id on exception" (fun () ->
        Obs.Trace.set_context "outer-ctx";
        (try Obs.Trace.with_context "inner-ctx" (fun () -> failwith "boom")
         with Failure _ -> ());
        Alcotest.(check (option string)) "outer restored" (Some "outer-ctx")
          (Obs.Trace.get_context ());
        Obs.Trace.clear_context ();
        Alcotest.(check bool) "cleared" true (Obs.Trace.get_context () = None))
  ]

(* ----- Flight recorder ----- *)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let with_log_capture level f =
  let path = Filename.temp_file "sram_opt_log" ".txt" in
  let oc = open_out path in
  let saved = Obs.Log.level () in
  Obs.Log.set_channel oc;
  Obs.Log.set_level level;
  f ();
  Obs.Log.set_level saved;
  Obs.Log.set_channel stderr;
  close_out oc;
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  text

let flight_tests =
  [ case "flight ring is bounded and keeps the newest events" (fun () ->
        Obs.Trace.arm_flight ~capacity:32 ();
        for i = 1 to 200 do
          Obs.Trace.instant (Printf.sprintf "fl.%d" i)
        done;
        Obs.Trace.disarm_flight ();
        let evs = Obs.Trace.flight_events () in
        Alcotest.(check bool) "bounded by capacity" true
          (List.length evs <= 32);
        let names = List.map (fun e -> e.Obs.Trace.ev_name) evs in
        Alcotest.(check bool) "newest retained" true (List.mem "fl.200" names);
        Alcotest.(check bool) "oldest overwritten" false
          (List.mem "fl.1" names));
    case "log sink captures warn+ even with a quiet console" (fun () ->
        Obs.Flight.arm ();
        let text =
          with_log_capture Obs.Log.Quiet (fun () ->
              Obs.Log.warn ~section:"flight" "sinkme %d" 7;
              Obs.Log.info ~section:"flight" "below the sink bar")
        in
        Alcotest.(check string) "console stayed quiet" "" text;
        let logs = Obs.Flight.recent_logs () in
        Alcotest.(check bool) "warn captured" true
          (List.exists
             (fun le -> contains ~needle:"sinkme 7" le.Obs.Flight.le_text)
             logs);
        Alcotest.(check bool) "info not captured" false
          (List.exists
             (fun le -> contains ~needle:"below the sink" le.Obs.Flight.le_text)
             logs);
        Obs.Flight.disarm ());
    case "dump writes a Perfetto-loadable file carrying the trace id"
      (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "sram_opt_flight_%d" (Unix.getpid ()))
        in
        Obs.Flight.arm ~dir ();
        Obs.Trace.with_context "tid-obs-1" (fun () ->
            Obs.Trace.with_span "flight.work" (fun () ->
                ignore
                  (with_log_capture Obs.Log.Quiet (fun () ->
                       Obs.Log.warn ~section:"flight" "trouble brewing"))));
        (match Obs.Flight.dump ~reason:"unit test" ~trace_id:"tid-obs-1" () with
        | None -> Alcotest.fail "dump refused to write"
        | Some path ->
          let text = read_file path in
          Alcotest.(check bool) "chrome trace shape" true
            (contains ~needle:"\"traceEvents\"" text);
          Alcotest.(check bool) "span retained" true
            (contains ~needle:"flight.work" text);
          Alcotest.(check bool) "warn line retained" true
            (contains ~needle:"log.warn flight: trouble brewing" text);
          Alcotest.(check bool) "trace id attributed" true
            (contains ~needle:"\"trace_id\":\"tid-obs-1\"" text);
          Alcotest.(check bool) "dump reason marker" true
            (contains ~needle:"flight.dump: unit test" text);
          (match Persist.Json.of_string text with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "dump is not valid JSON: %s" e);
          Sys.remove path);
        Obs.Flight.disarm ());
    case "dumps with distinct trace ids get distinct filenames" (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "sram_opt_flightname_%d" (Unix.getpid ()))
        in
        Obs.Flight.arm ~dir ();
        let dump tid =
          match Obs.Flight.dump ~reason:"same reason" ?trace_id:tid () with
          | Some path -> path
          | None -> Alcotest.fail "dump refused to write"
        in
        let a = dump (Some "tid-a") in
        let b = dump (Some "tid-b") in
        let c = dump None in
        (* Same reason, same pid: the sequence number and the trace id
           keep a crash-looping request from overwriting its own
           evidence. *)
        Alcotest.(check bool) "all distinct" true
          (a <> b && b <> c && a <> c);
        Alcotest.(check bool) "trace id in filename" true
          (contains ~needle:"tid-a" (Filename.basename a));
        Alcotest.(check bool) "other trace id in filename" true
          (contains ~needle:"tid-b" (Filename.basename b));
        List.iter Sys.remove [ a; b; c ];
        Obs.Flight.disarm ());
    case "dump cap stops a crash loop from filling the disk" (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "sram_opt_flightcap_%d" (Unix.getpid ()))
        in
        Obs.Flight.arm ~dir ();
        Obs.Flight.set_max_dumps (Obs.Flight.dumps_written () + 1);
        (match Obs.Flight.dump ~reason:"allowed" () with
        | Some path -> Sys.remove path
        | None -> Alcotest.fail "first dump should write");
        Alcotest.(check bool) "second dump refused" true
          (Obs.Flight.dump ~reason:"refused" () = None);
        Obs.Flight.set_max_dumps 64;
        Obs.Flight.disarm ()) ]

(* ----- Telemetry epochs ----- *)

let telemetry_epoch_tests =
  [ case "reset drops in-flight span completions" (fun () ->
        Runtime.Telemetry.reset ();
        let e0 = Runtime.Telemetry.epoch () in
        let v =
          Runtime.Telemetry.time "obs.epoch.probe" (fun () ->
              Runtime.Telemetry.reset ();
              42)
        in
        Alcotest.(check int) "result unaffected" 42 v;
        Alcotest.(check bool) "epoch advanced" true
          (Runtime.Telemetry.epoch () > e0);
        let snap = Runtime.Telemetry.snapshot () in
        List.iter
          (fun (s : Runtime.Telemetry.span) ->
            if s.Runtime.Telemetry.span_name = "obs.epoch.probe" then begin
              Alcotest.(check int) "stale completion dropped" 0
                s.Runtime.Telemetry.calls;
              check_close_abs "no time recorded" 0.0
                s.Runtime.Telemetry.total_s
            end)
          snap.Runtime.Telemetry.spans);
    case "spans spanning no reset still record" (fun () ->
        Runtime.Telemetry.reset ();
        ignore (Runtime.Telemetry.time "obs.epoch.clean" (fun () -> 1));
        let snap = Runtime.Telemetry.snapshot () in
        let calls =
          List.fold_left
            (fun acc (s : Runtime.Telemetry.span) ->
              if s.Runtime.Telemetry.span_name = "obs.epoch.clean" then
                s.Runtime.Telemetry.calls
              else acc)
            0 snap.Runtime.Telemetry.spans
        in
        Alcotest.(check int) "recorded once" 1 calls) ]

(* ----- Log ----- *)

let log_tests =
  [ case "of_string parses every level" (fun () ->
        List.iter
          (fun (s, expected) ->
            match Obs.Log.of_string s with
            | Some l ->
              Alcotest.(check string) s (Obs.Log.to_string expected)
                (Obs.Log.to_string l)
            | None -> Alcotest.failf "failed to parse %S" s)
          [ ("quiet", Obs.Log.Quiet); ("ERROR", Obs.Log.Error);
            ("Warn", Obs.Log.Warn); ("info", Obs.Log.Info);
            ("debug", Obs.Log.Debug) ];
        Alcotest.(check bool) "garbage rejected" true
          (Obs.Log.of_string "loud" = None));
    case "messages below the level are suppressed" (fun () ->
        let text =
          with_log_capture Obs.Log.Warn (fun () ->
              Obs.Log.warn ~section:"test" "kept %d" 1;
              Obs.Log.info ~section:"test" "dropped %d" 2;
              Obs.Log.debug ~section:"test" "dropped %d" 3)
        in
        Alcotest.(check bool) "warn kept" true (contains ~needle:"kept 1" text);
        Alcotest.(check bool) "info dropped" false
          (contains ~needle:"dropped" text));
    case "lines carry level and section tags" (fun () ->
        let text =
          with_log_capture Obs.Log.Debug (fun () ->
              Obs.Log.debug ~section:"framework" "cache miss")
        in
        Alcotest.(check bool) "level tag" true
          (contains ~needle:"debug" text);
        Alcotest.(check bool) "section tag" true
          (contains ~needle:"framework: cache miss" text));
    case "lines carry the request trace id while one is set" (fun () ->
        let text =
          with_log_capture Obs.Log.Info (fun () ->
              Obs.Trace.with_context "ctx-log" (fun () ->
                  Obs.Log.info ~section:"serve" "handling");
              Obs.Log.info ~section:"serve" "idle")
        in
        Alcotest.(check bool) "tagged inside the context" true
          (contains ~needle:"handling [trace_id=ctx-log]" text);
        Alcotest.(check bool) "untagged outside" false
          (contains ~needle:"idle [trace_id" text)) ]

(* ----- Progress ----- *)

let progress_tests =
  [ case "counters are inert when inactive" (fun () ->
        Alcotest.(check bool) "inactive" false (Obs.Progress.active ());
        let t0, d0, p0, e0 = Obs.Progress.counts () in
        Obs.Progress.add_total 5;
        Obs.Progress.add_done 3;
        Obs.Progress.add_pruned 2;
        Obs.Progress.add_evals 100;
        Alcotest.(check (list int)) "unchanged" [ t0; d0; p0; e0 ]
          (let t, d, p, e = Obs.Progress.counts () in
           [ t; d; p; e ]));
    case "start/stop lifecycle counts work" (fun () ->
        let devnull = open_out "/dev/null" in
        Obs.Progress.start ~interval:0.01 ~channel:devnull ();
        Alcotest.(check bool) "active" true (Obs.Progress.active ());
        Obs.Progress.add_total 10;
        Obs.Progress.add_done 4;
        Obs.Progress.add_pruned 2;
        Obs.Progress.add_evals 77;
        let t, d, p, e = Obs.Progress.counts () in
        Alcotest.(check (list int)) "counted" [ 10; 4; 2; 77 ] [ t; d; p; e ];
        Unix.sleepf 0.03;
        Obs.Progress.stop ();
        close_out devnull;
        Alcotest.(check bool) "inactive again" false (Obs.Progress.active ())) ]

(* ----- Search journal ----- *)

let some_design =
  { Obs.Search.nr = 64; nc = 64; n_pre = 5; n_wr = 2; vssc = -0.1 }

let search_journal_tests =
  [ case "disarmed journal records nothing" (fun () ->
        Obs.Search.disarm ();
        Obs.Search.arm ();
        Obs.Search.disarm ();
        Alcotest.(check bool) "gate off" false (Obs.Search.enabled ());
        Obs.Search.record_incumbent ~source:"t" ~score:1.0 ~edp:1.0
          ~design:some_design;
        let s = Obs.Search.summary () in
        Alcotest.(check int) "no incumbents" 0 s.Obs.Search.incumbents);
    case "incumbents, chunks and prune sampling are summarized" (fun () ->
        Obs.Search.arm ();
        Obs.Search.record_incumbent ~source:"t" ~score:2.0 ~edp:2.0
          ~design:some_design;
        Obs.Search.record_incumbent ~source:"t" ~score:1.0 ~edp:1.0
          ~design:some_design;
        Obs.Search.record_chunk ~source:"t" ~index:3 ~score:1.0;
        for _ = 1 to (2 * Obs.Search.prune_sample) + 1 do
          Obs.Search.record_prune ~source:"t" ~bound:5.0 ~design:some_design
        done;
        let s = Obs.Search.summary () in
        Obs.Search.disarm ();
        Alcotest.(check int) "incumbents" 2 s.Obs.Search.incumbents;
        Alcotest.(check int) "chunks" 1 s.Obs.Search.chunks;
        Alcotest.(check int)
          "every prune counted"
          ((2 * Obs.Search.prune_sample) + 1)
          s.Obs.Search.prunes;
        (* 1-in-N sampling: 2N+1 calls journal at most 3 prune events. *)
        Alcotest.(check bool) "prunes sampled" true
          (s.Obs.Search.journaled <= 2 + 1 + 3);
        Alcotest.(check (float 0.0)) "best is the last incumbent" 1.0
          s.Obs.Search.best_score;
        Alcotest.(check bool) "improvement times ordered" true
          (s.Obs.Search.first_improvement_s <= s.Obs.Search.last_improvement_s);
        let evs = Obs.Search.events () in
        Alcotest.(check int) "events match journaled" s.Obs.Search.journaled
          (List.length evs);
        let ts = Array.of_list (List.map (fun e -> e.Obs.Search.t) evs) in
        check_increasing "events sorted by time" ts;
        (match
           List.find_opt (fun e -> e.Obs.Search.kind = Obs.Search.Chunk) evs
         with
        | Some e -> Alcotest.(check int) "chunk index" 3 e.Obs.Search.detail
        | None -> Alcotest.fail "chunk event missing"));
    case "buffer cap drops, never grows" (fun () ->
        Obs.Search.arm ~capacity:4 ();
        for i = 1 to 10 do
          Obs.Search.record_incumbent ~source:"t" ~score:(float_of_int (-i))
            ~edp:1.0 ~design:some_design
        done;
        let s = Obs.Search.summary () in
        Obs.Search.disarm ();
        Alcotest.(check int) "journaled at cap" 4 s.Obs.Search.journaled;
        Alcotest.(check int) "rest dropped" 6 s.Obs.Search.dropped;
        Alcotest.(check int) "all counted" 10 s.Obs.Search.incumbents;
        (* Counters live outside the buffer: best_score tracks the last
           improvement even after the buffer filled. *)
        Alcotest.(check (float 0.0)) "best tracked past the cap" (-10.0)
          s.Obs.Search.best_score);
    case "rearming resets the journal" (fun () ->
        Obs.Search.arm ();
        Obs.Search.record_incumbent ~source:"t" ~score:1.0 ~edp:1.0
          ~design:some_design;
        Obs.Search.arm ();
        let s = Obs.Search.summary () in
        Obs.Search.disarm ();
        Alcotest.(check int) "fresh buffer" 0 s.Obs.Search.journaled;
        Alcotest.(check int) "fresh counters" 0 s.Obs.Search.incumbents) ]

(* ----- Determinism guard ----- *)

let determinism_tests =
  [ slow_case "observability does not change the chosen design" (fun () ->
        let env =
          Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()
        in
        let search jobs =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~pool:(pool_of jobs)
            ~env ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ()
        in
        let fingerprint (r : Opt.Exhaustive.result) =
          let b = r.Opt.Exhaustive.best in
          let g = b.Opt.Exhaustive.geometry in
          Printf.sprintf "%d/%d/%d/%d %.17g %.17g" g.Array_model.Geometry.nr
            g.Array_model.Geometry.nc g.Array_model.Geometry.n_pre
            g.Array_model.Geometry.n_wr
            b.Opt.Exhaustive.assist.Array_model.Components.vssc
            b.Opt.Exhaustive.score
        in
        List.iter
          (fun jobs ->
            let plain = fingerprint (search jobs) in
            let devnull = open_out "/dev/null" in
            Obs.Control.set_enabled true;
            Obs.Trace.start ~detail:`Fine ();
            Obs.Progress.start ~interval:0.01 ~channel:devnull ();
            let instrumented = fingerprint (search jobs) in
            Obs.Progress.stop ();
            Obs.Trace.stop ();
            Obs.Control.set_enabled false;
            close_out devnull;
            Alcotest.(check string)
              (Printf.sprintf "identical design at jobs=%d" jobs)
              plain instrumented)
          [ 1; 2; 4 ]) ]

let () =
  Alcotest.run "obs"
    [ ("clock", clock_tests);
      ("histogram", histogram_tests);
      ("histogram_properties", histogram_property_tests);
      ("window", window_tests);
      ("trace", trace_tests);
      ("context", context_tests);
      ("flight", flight_tests);
      ("telemetry_epoch", telemetry_epoch_tests);
      ("log", log_tests);
      ("progress", progress_tests);
      ("search_journal", search_journal_tests);
      ("determinism", determinism_tests) ]
