(* Property-based tests: randomized invariants across every layer,
   registered as alcotest cases via QCheck_alcotest. *)

let lib = Lazy.force Finfet.Library.default
let nfet_hvt = Finfet.Library.nfet lib Finfet.Library.Hvt
let pfet_hvt = Finfet.Library.pfet lib Finfet.Library.Hvt

let dcaps = Array_model.Caps.device_caps_of ~nfet:nfet_hvt ~pfet:pfet_hvt ()

(* Generators *)

let pow2 lo hi =
  QCheck.map (fun k -> 1 lsl k) (QCheck.int_range lo hi)

let geometry_gen =
  QCheck.map
    (fun (((nr, nc), n_pre), n_wr) ->
      Array_model.Geometry.create ~nr ~nc ~n_pre ~n_wr ())
    QCheck.(pair (pair (pair (pow2 1 10) (pow2 0 10)) (int_range 1 50)) (int_range 1 20))

let assist_gen =
  QCheck.map
    (fun ((vddc_step, vssc_step), vwl_step) ->
      { Array_model.Components.vddc = 0.45 +. (0.01 *. float_of_int vddc_step);
        vssc = -0.01 *. float_of_int vssc_step;
        vwl = 0.45 +. (0.01 *. float_of_int vwl_step) })
    QCheck.(pair (pair (int_bound 25) (int_bound 24)) (int_bound 25))

(* --- numerics --- *)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile endpoints are min and max" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 40) (float_range (-100.0) 100.0))
    (fun xs ->
      let lo, hi = Numerics.Stats.min_max xs in
      Numerics.Stats.percentile xs ~p:0.0 = lo
      && Numerics.Stats.percentile xs ~p:100.0 = hi)

let prop_brent_cubic =
  QCheck.Test.make ~name:"brent solves random shifted cubics" ~count:200
    QCheck.(float_range (-3.0) 3.0)
    (fun root ->
      let f x = ((x -. root) ** 3.0) +. (0.5 *. (x -. root)) in
      let solved = Numerics.Roots.brent f ~lo:(root -. 10.0) ~hi:(root +. 10.0) in
      abs_float (solved -. root) < 1e-6)

let prop_table1d_clamp_bounds =
  QCheck.Test.make ~name:"clamped table stays within its data range" ~count:200
    QCheck.(pair (array_of_size (Gen.int_range 2 10) (float_range 0.0 10.0))
              (float_range (-5.0) 15.0))
    (fun (ys, x) ->
      let xs = Array.init (Array.length ys) float_of_int in
      let t = Numerics.Interp.Table1d.create xs ys in
      let lo, hi = Numerics.Stats.min_max ys in
      let v = Numerics.Interp.Table1d.eval t x in
      v >= lo -. 1e-12 && v <= hi +. 1e-12)

let prop_power_law_roundtrip =
  QCheck.Test.make ~name:"power-law fit recovers random parameters" ~count:60
    QCheck.(triple (float_range 1.0 2.0) (float_range 1e-5 1e-3) (float_range 0.1 0.3))
    (fun (a, b, vt) ->
      let vs = Array.init 12 (fun i -> vt +. 0.1 +. (0.04 *. float_of_int i)) in
      let is_ = Array.map (fun v -> b *. ((v -. vt) ** a)) vs in
      let fit = Numerics.Fit.power_law ~vt_lo:0.0 ~vt_hi:(vt +. 0.09) vs is_ in
      abs_float (fit.Numerics.Fit.a -. a) < 0.02
      && fit.Numerics.Fit.rms_error < 1e-3)

let prop_uniform_range =
  QCheck.Test.make ~name:"uniform_range respects arbitrary bounds" ~count:200
    QCheck.(triple (int_bound 10_000) (float_range (-50.0) 50.0) (float_range 0.0 100.0))
    (fun (seed, lo, span) ->
      let rng = Numerics.Rng.create ~seed in
      let hi = lo +. span in
      let x = Numerics.Rng.uniform_range rng ~lo ~hi in
      x >= lo && x <= hi)

(* --- spice --- *)

let prop_divider =
  QCheck.Test.make ~name:"random resistor dividers solve exactly" ~count:100
    QCheck.(pair (float_range 10.0 1e6) (float_range 10.0 1e6))
    (fun (r1, r2) ->
      let n = Spice.Netlist.create () in
      let vin = Spice.Netlist.fresh_node n "vin" in
      let mid = Spice.Netlist.fresh_node n "mid" in
      Spice.Netlist.vdc n ~plus:vin ~minus:0 ~volts:1.0;
      Spice.Netlist.resistor n ~plus:vin ~minus:mid ~ohms:r1;
      Spice.Netlist.resistor n ~plus:mid ~minus:0 ~ohms:r2;
      let s = Spice.Dc.operating_point n in
      abs_float (Spice.Dc.node_voltage s mid -. (r2 /. (r1 +. r2))) < 1e-5)

let prop_step_waveform_bounds =
  QCheck.Test.make ~name:"step waveforms stay between their levels" ~count:200
    QCheck.(triple (float_range 0.0 1.0) (float_range 0.0 1.0) (float_range (-1.0) 3.0))
    (fun (v0, v1, t) ->
      let w = Spice.Netlist.Step { t_delay = 0.5; t_rise = 1.0; v0; v1 } in
      let v = Spice.Netlist.waveform_at w t in
      v >= min v0 v1 -. 1e-12 && v <= max v0 v1 +. 1e-12)

(* --- device --- *)

let prop_ids_monotone_vgs =
  QCheck.Test.make ~name:"drain current is monotone in vgs at any vds" ~count:200
    QCheck.(triple (float_range 0.02 0.8) (float_range 0.0 0.75) (float_range 0.001 0.05))
    (fun (vds, vgs, dv) ->
      Finfet.Device.ids nfet_hvt ~vgs:(vgs +. dv) ~vds
      >= Finfet.Device.ids nfet_hvt ~vgs ~vds)

let prop_stack_bounded_by_pull_down =
  QCheck.Test.make
    ~name:"series stack current never exceeds the lone pull-down's" ~count:100
    QCheck.(pair (float_range 0.45 0.7) (float_range 0.0 0.24))
    (fun (vddc, depth) ->
      let vssc = -.depth in
      let stack =
        Finfet.Calibration.stack_read_current ~access:nfet_hvt
          ~pull_down:nfet_hvt ~vwl:0.45 ~vbl:0.45 ~vddc ~vssc
      in
      let lone =
        Finfet.Device.ids nfet_hvt ~vgs:(vddc -. vssc) ~vds:(0.45 -. vssc)
      in
      stack <= lone +. 1e-12)

(* --- array model --- *)

let prop_caps_positive =
  QCheck.Test.make ~name:"all Table 1 capacitances are positive" ~count:200
    geometry_gen
    (fun g ->
      Array_model.Caps.cvdd dcaps g > 0.0
      && Array_model.Caps.cvss dcaps g > 0.0
      && Array_model.Caps.wl dcaps g > 0.0
      && Array_model.Caps.bl dcaps g > 0.0
      && Array_model.Caps.col dcaps g >= 0.0)

let env_hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()

let prop_metrics_invariants =
  QCheck.Test.make
    ~name:"array metrics: positivity, max-delay and EDP identities" ~count:150
    QCheck.(pair geometry_gen assist_gen)
    (fun (g, a) ->
      let m = Array_model.Array_eval.evaluate env_hvt g a in
      let open Array_model.Array_eval in
      m.d_read > 0.0 && m.d_write > 0.0 && m.e_total > 0.0
      && abs_float (m.d_array -. max m.d_read m.d_write) < 1e-18
      && abs_float (m.edp -. (m.e_total *. m.d_array)) < 1e-30
      && m.e_leakage >= 0.0)

let prop_physical_not_cheaper =
  QCheck.Test.make
    ~name:"physical accounting never undercuts strict accounting" ~count:80
    QCheck.(pair geometry_gen assist_gen)
    (fun (g, a) ->
      let phys =
        Array_model.Array_eval.make_env
          ~accounting:Array_model.Array_eval.Physical
          ~cell_flavor:Finfet.Library.Hvt ()
      in
      let ms = Array_model.Array_eval.evaluate env_hvt g a in
      let mp = Array_model.Array_eval.evaluate phys g a in
      mp.Array_model.Array_eval.e_read
      >= ms.Array_model.Array_eval.e_read -. 1e-20)

let prop_deeper_vssc_faster_reads =
  QCheck.Test.make ~name:"deeper negative Gnd never slows the read" ~count:80
    QCheck.(pair geometry_gen (int_bound 23))
    (fun (g, step) ->
      let at vssc =
        (Array_model.Array_eval.evaluate env_hvt g
           { Array_model.Components.vddc = 0.55; vssc; vwl = 0.55 })
          .Array_model.Array_eval.d_read
      in
      at (-0.01 *. float_of_int (step + 1)) <= at (-0.01 *. float_of_int step) +. 1e-18)

let prop_dcdc_bounds =
  QCheck.Test.make ~name:"dcdc efficiency in (0,1], overhead >= 1" ~count:200
    QCheck.(float_range (-0.9) 0.9)
    (fun v_out ->
      let eta = Array_model.Dcdc.efficiency ~v_out () in
      eta > 0.0 && eta <= 1.0 && Array_model.Dcdc.overhead ~v_out () >= 1.0)

(* --- staged evaluation kernel --- *)

let env_lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt ()

let env_hvt_physical =
  Array_model.Array_eval.make_env ~accounting:Array_model.Array_eval.Physical
    ~cell_flavor:Finfet.Library.Hvt ()

let kernel_envs = [ env_hvt; env_lvt; env_hvt_physical ]

(* Field-for-field Float.equal — NOT a tolerance check: the staged kernel
   promises bit identity with the reference path. *)
let metrics_equal (a : Array_model.Array_eval.metrics)
    (b : Array_model.Array_eval.metrics) =
  let open Array_model.Array_eval in
  Float.equal a.d_read b.d_read
  && Float.equal a.d_write b.d_write
  && Float.equal a.d_array b.d_array
  && Float.equal a.e_read b.e_read
  && Float.equal a.e_write b.e_write
  && Float.equal a.e_switching b.e_switching
  && Float.equal a.e_leakage b.e_leakage
  && Float.equal a.e_total b.e_total
  && Float.equal a.edp b.edp
  && Float.equal a.d_bl_read b.d_bl_read
  && Float.equal a.d_row_path_read b.d_row_path_read
  && Float.equal a.d_col_path b.d_col_path

let prop_staged_bit_identical =
  QCheck.Test.make
    ~name:"eval_staged = evaluate bit-for-bit (LVT, HVT, both accountings)"
    ~count:150
    QCheck.(pair geometry_gen assist_gen)
    (fun (g, a) ->
      List.for_all
        (fun env ->
          let reference = Array_model.Array_eval.evaluate env g a in
          let staged =
            Array_model.Array_eval.(eval_staged (stage env g) a)
          in
          metrics_equal reference staged)
        kernel_envs)

let prop_bound_admissible =
  QCheck.Test.make
    ~name:"envelope bound lower-bounds every enveloped assist's metrics"
    ~count:80
    QCheck.(pair geometry_gen (list_of_size (Gen.int_range 1 8) assist_gen))
    (fun (g, assists) ->
      List.for_all
        (fun env ->
          let open Array_model.Array_eval in
          let st = stage env g in
          let preps =
            Array.of_list (List.map (fun a -> prepare env a) assists)
          in
          let b = bound_metrics st (envelope preps) in
          List.for_all
            (fun a ->
              let m = evaluate env g a in
              b.d_read <= m.d_read && b.d_write <= m.d_write
              && b.d_array <= m.d_array && b.e_read <= m.e_read
              && b.e_write <= m.e_write && b.e_total <= m.e_total
              && b.edp <= m.edp)
            assists)
        kernel_envs)

(* Assist corner cases the batched scan's zero-guard branches must get
   bit-for-bit right: dv exactly zero, negative zero, and subnormal
   magnitudes where naive reassociation would flush differently. *)
let corner_assists =
  [ { Array_model.Components.vddc = 0.45; vssc = 0.0; vwl = 0.45 };
    { Array_model.Components.vddc = 0.45; vssc = -0.0; vwl = 0.45 };
    { Array_model.Components.vddc = 0.5; vssc = -4.9e-324; vwl = 0.5 };
    { Array_model.Components.vddc = 0.55; vssc = -1e-310; vwl = 0.55 } ]

let bits_equal x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let prop_scan_bit_identical =
  (* Stricter than [Float.equal]: raw IEEE bit comparison, so a -0.0
     where the record path produced +0.0 fails the property. *)
  QCheck.Test.make
    ~name:"scan slots = eval_staged bit-for-bit (incl. -0.0/subnormal vssc)"
    ~count:100
    QCheck.(pair geometry_gen (list_of_size (Gen.int_range 1 6) assist_gen))
    (fun (g, random_assists) ->
      let assists = Array.of_list (corner_assists @ random_assists) in
      List.for_all
        (fun env ->
          let open Array_model.Array_eval in
          let st = stage env g in
          let preps = Array.map (prepare env) assists in
          let buf = scan_buffer () in
          scan st preps buf;
          let ok = ref (scan_length buf = Array.length assists) in
          Array.iteri
            (fun i a ->
              let m = eval_staged st a in
              ok :=
                !ok
                && bits_equal (scan_e_total buf).(i) m.e_total
                && bits_equal (scan_d_array buf).(i) m.d_array
                && bits_equal (scan_edp buf).(i) m.edp)
            assists;
          !ok)
        kernel_envs)

let prop_attribution_bit_exact =
  (* The explainer's contract: [attribute] deliberately re-derives
     [evaluate]'s arithmetic term by term, and its ordered lists must
     refold — left-associated, head-seeded — to the very same IEEE
     bits, across random geometries, both accounting modes, and the
     -0.0/subnormal V_SSC corner operands the scan kernel guards. *)
  QCheck.Test.make
    ~name:"attribution terms refold to evaluate's totals bit-for-bit"
    ~count:100
    QCheck.(pair geometry_gen (list_of_size (Gen.int_range 1 4) assist_gen))
    (fun (g, random_assists) ->
      let assists = corner_assists @ random_assists in
      List.for_all
        (fun env ->
          List.for_all
            (fun a ->
              let open Array_model.Array_eval in
              let at = attribute env g a in
              let m = evaluate env g a in
              attribution_consistent at
              && bits_equal at.at_metrics.e_read m.e_read
              && bits_equal at.at_metrics.e_write m.e_write
              && bits_equal at.at_metrics.e_total m.e_total
              && bits_equal at.at_metrics.d_read m.d_read
              && bits_equal at.at_metrics.d_write m.d_write
              && bits_equal at.at_metrics.d_array m.d_array
              && bits_equal at.at_metrics.edp m.edp)
            assists)
        kernel_envs)

let prop_suffix_bounds_admissible =
  (* The mid-scan abandonment invariant: scanning the [bound_prepared]
     image of suffix envelope [j] yields slots that lower-bound every
     real point at index >= j*block, for every objective's read fields.
     If this held only approximately the batched search could abandon a
     line containing the true winner. *)
  QCheck.Test.make
    ~name:"suffix-envelope bound slots lower-bound their whole suffix"
    ~count:60
    QCheck.(triple geometry_gen
              (list_of_size (Gen.int_range 1 12) assist_gen) (int_range 1 4))
    (fun (g, random_assists, block) ->
      let assists = Array.of_list (corner_assists @ random_assists) in
      List.for_all
        (fun env ->
          let open Array_model.Array_eval in
          let st = stage env g in
          let preps = Array.map (prepare env) assists in
          let n = Array.length preps in
          let bound_ps =
            Array.map (bound_prepared env) (suffix_envelopes preps ~block)
          in
          let bbuf = scan_buffer () in
          scan st bound_ps bbuf;
          let buf = scan_buffer () in
          scan st preps buf;
          let ok = ref true in
          for j = 0 to Array.length bound_ps - 1 do
            for i = j * block to n - 1 do
              ok :=
                !ok
                && (scan_e_total bbuf).(j) <= (scan_e_total buf).(i)
                && (scan_d_array bbuf).(j) <= (scan_d_array buf).(i)
                && (scan_edp bbuf).(j) <= (scan_edp buf).(i)
            done
          done;
          !ok)
        kernel_envs)

let prop_pruned_search_matches_reference =
  (* Whole searches: the pruned staged scan must select the same design,
     bit for bit, as the never-pruning reference kernel. *)
  QCheck.Test.make
    ~name:"pruned staged search returns the reference kernel's winner"
    ~count:6
    QCheck.(triple (int_range 0 3) bool (int_bound 3))
    (fun (cap_exp, m2, obj_i) ->
      let capacity_bits = 1024 * (1 lsl cap_exp) in
      let method_ = if m2 then Opt.Space.M2 else Opt.Space.M1 in
      let objective =
        [| Opt.Objective.Energy_delay_product;
           Opt.Objective.Energy_delay_squared; Opt.Objective.Energy_only;
           Opt.Objective.Delay_only |].(obj_i)
      in
      let run kernel =
        Opt.Exhaustive.search ~space:Opt.Space.reduced ~objective ~kernel
          ~env:env_hvt ~capacity_bits ~method_ ()
      in
      let staged = run `Staged in
      let reference = run `Reference in
      let sb = staged.Opt.Exhaustive.best
      and rb = reference.Opt.Exhaustive.best in
      sb.Opt.Exhaustive.geometry = rb.Opt.Exhaustive.geometry
      && sb.Opt.Exhaustive.assist = rb.Opt.Exhaustive.assist
      && Float.equal sb.Opt.Exhaustive.score rb.Opt.Exhaustive.score
      && metrics_equal sb.Opt.Exhaustive.metrics rb.Opt.Exhaustive.metrics
      && staged.Opt.Exhaustive.evaluated + staged.Opt.Exhaustive.pruned
         > 0
      && reference.Opt.Exhaustive.pruned = 0)

(* Not a property but the strongest single determinism check we have:
   the full paper sweep (all capacities x configs, staged kernel) must
   reproduce one specific winner checksum — the value committed in
   BENCH_kernel.json — at every job count.  Any reassociation slip in
   the scan kernel, any order dependence in the parallel reduction, and
   any pruning bound that is not strictly admissible shows up here as a
   changed digest. *)
let full_sweep_checksum = "67fd83cd67998ac0"

let test_full_sweep_deterministic () =
  let env_of =
    let lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt () in
    let hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let levels_of =
    let lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
    let hvt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
    function Finfet.Library.Lvt -> lvt | Finfet.Library.Hvt -> hvt
  in
  let sweep jobs =
    let pool = Runtime.Pool.create ~jobs () in
    let results =
      List.concat_map
        (fun capacity_bits ->
          List.map
            (fun (c : Sram_edp.Framework.config) ->
              Opt.Exhaustive.search ~kernel:`Staged ~pool
                ~levels:(levels_of c.Sram_edp.Framework.flavor)
                ~env:(env_of c.Sram_edp.Framework.flavor) ~capacity_bits
                ~method_:c.Sram_edp.Framework.method_ ())
            Sram_edp.Framework.all_configs)
        Sram_edp.Framework.paper_capacities
    in
    Runtime.Pool.shutdown pool;
    Opt.Exhaustive.checksum results
  in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "full-sweep checksum at %d jobs" jobs)
        full_sweep_checksum (sweep jobs))
    [ 1; 2; 4 ]

(* The scan path's allocation contract, measured directly: once a
   warm-up pass has grown the buffer, repeated scans must allocate
   nothing — the inner loop writes into preallocated float arrays and
   materializes no records.  1000 repetitions of a 26-point scan
   amplify even one boxed float per point into megawords, while the
   measurement's own boxing noise stays under a few dozen words. *)
let test_scan_allocation_free () =
  let open Array_model.Array_eval in
  let env = make_env ~cell_flavor:Finfet.Library.Hvt () in
  let g = Array_model.Geometry.create ~nr:256 ~nc:64 ~n_pre:4 ~n_wr:4 () in
  let st = stage env g in
  let preps =
    Array.init 26 (fun i ->
        prepare env
          { Array_model.Components.vddc = 0.45;
            vssc = -0.01 *. float_of_int i;
            vwl = 0.45 })
  in
  let buf = scan_buffer () in
  scan st preps buf;
  let reps = 1000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    scan st preps buf
  done;
  let delta = Gc.minor_words () -. w0 in
  let per_point = delta /. float_of_int (reps * Array.length preps) in
  if per_point > 0.01 then
    Alcotest.failf "scan allocated %.4f minor words per point (want 0)"
      per_point

(* --- workload --- *)

let prop_trace_summary_bounds =
  QCheck.Test.make ~name:"trace alpha and beta are probabilities" ~count:100
    QCheck.(triple (int_bound 10_000) (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (seed, activity, read_fraction) ->
      let p = Workload.Trace.Uniform { activity; read_fraction } in
      let s = Workload.Trace.characterize (Workload.Trace.generate ~seed p ~length:500) in
      s.Workload.Trace.alpha >= 0.0 && s.Workload.Trace.alpha <= 1.0
      && s.Workload.Trace.beta >= 0.0 && s.Workload.Trace.beta <= 1.0)

(* --- deck round trip on random RC ladders --- *)

let prop_deck_roundtrip =
  QCheck.Test.make ~name:"deck print/parse preserves random ladder solutions"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 2 8))
    (fun (seed, stages) ->
      let rng = Numerics.Rng.create ~seed in
      let n = Spice.Netlist.create () in
      let top = Spice.Netlist.fresh_node n "top" in
      Spice.Netlist.vdc n ~plus:top ~minus:0 ~volts:1.0;
      let rec build prev k =
        if k = 0 then prev
        else begin
          let next = Spice.Netlist.fresh_node n (Printf.sprintf "n%d" k) in
          Spice.Netlist.resistor n ~plus:prev ~minus:next
            ~ohms:(Numerics.Rng.uniform_range rng ~lo:100.0 ~hi:1e5);
          build next (k - 1)
        end
      in
      let last = build top stages in
      Spice.Netlist.resistor n ~plus:last ~minus:0
        ~ohms:(Numerics.Rng.uniform_range rng ~lo:100.0 ~hi:1e5);
      let original =
        Spice.Dc.node_voltage (Spice.Dc.operating_point n) last
      in
      match Spice.Deck.parse ~lib (Spice.Deck.print n) with
      | Error _ -> false
      | Ok (n2, names) ->
        (match Spice.Deck.node names (Spice.Netlist.node_name n last) with
         | None -> false
         | Some node ->
           abs_float
             (Spice.Dc.node_voltage (Spice.Dc.operating_point n2) node
              -. original)
           < 1e-6))

(* --- macro: model-based testing against a reference map --- *)

let prop_macro_matches_reference =
  let op_gen =
    QCheck.(list_of_size (Gen.int_range 1 60)
              (pair (int_bound 127) (option (int_bound 0xFFFF))))
  in
  QCheck.Test.make
    ~name:"macro contents always match a reference associative model" ~count:40
    op_gen
    (fun ops ->
      let macro =
        Sram_macro.Macro.create_optimized ~space:Opt.Space.reduced
          ~capacity_bits:(1024 * 8) ~flavor:Finfet.Library.Hvt
          ~method_:Opt.Space.M1 ()
      in
      let words = Sram_macro.Macro.words macro in
      let reference = Hashtbl.create 32 in
      List.for_all
        (fun (addr_raw, op) ->
          let addr = addr_raw mod words in
          match op with
          | Some data ->
            let data = Int64.of_int data in
            let r = Sram_macro.Macro.write macro ~addr ~data in
            Hashtbl.replace reference addr r.Sram_macro.Macro.data;
            true
          | None ->
            let got = (Sram_macro.Macro.read macro ~addr).Sram_macro.Macro.data in
            (match Hashtbl.find_opt reference addr with
             | Some expected -> got = expected
             | None -> true (* power-up garbage: any value is legal *)))
        ops)

let to_alco = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "properties"
    [ ("numerics",
       List.map to_alco
         [ prop_percentile_bounds; prop_brent_cubic; prop_table1d_clamp_bounds;
           prop_power_law_roundtrip; prop_uniform_range ]);
      ("spice", List.map to_alco [ prop_divider; prop_step_waveform_bounds ]);
      ("device", List.map to_alco [ prop_ids_monotone_vgs; prop_stack_bounded_by_pull_down ]);
      ("array_model",
       List.map to_alco
         [ prop_caps_positive; prop_metrics_invariants; prop_physical_not_cheaper;
           prop_deeper_vssc_faster_reads; prop_dcdc_bounds ]);
      ("staged_kernel",
       List.map to_alco
         [ prop_staged_bit_identical; prop_bound_admissible;
           prop_scan_bit_identical; prop_attribution_bit_exact;
           prop_suffix_bounds_admissible;
           prop_pruned_search_matches_reference ]
       @ [ Alcotest.test_case "full sweep reproduces committed checksum"
             `Slow test_full_sweep_deterministic;
           Alcotest.test_case "warm scan path allocates zero words"
             `Quick test_scan_allocation_free ]);
      ("workload", List.map to_alco [ prop_trace_summary_bounds ]);
      ("deck", List.map to_alco [ prop_deck_roundtrip ]);
      ("macro", List.map to_alco [ prop_macro_matches_reference ]) ]
