(* Tests of the optimization layer: yield-driven voltage pinning, the
   search space and M1/M2 policies, exhaustive search correctness (best
   really is the minimum), Pareto extraction, and annealing. *)

open Testutil

let yield_tests =
  [ case "snap_up lands on the 10 mV grid" (fun () ->
        check_close "snap" 0.54 (Opt.Yield.snap_up 0.531);
        check_close "exact stays" 0.53 (Opt.Yield.snap_up 0.53);
        check_close "tiny above" 0.54 (Opt.Yield.snap_up 0.5301));
    case "HVT levels near the paper's 550 mV pins" (fun () ->
        let l = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        check_within "vddc" ~lo:0.50 ~hi:0.58 l.Opt.Yield.vddc_min;
        check_within "vwl" ~lo:0.51 ~hi:0.59 l.Opt.Yield.vwl_min;
        Alcotest.(check bool) "hold ok" true
          (l.Opt.Yield.hsnm_nominal >= Finfet.Tech.min_margin));
    case "LVT needs a deeper boost than HVT (paper ordering)" (fun () ->
        let lvt = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
        let hvt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "vddc order" true
          (lvt.Opt.Yield.vddc_min > hvt.Opt.Yield.vddc_min);
        Alcotest.(check bool) "vwl order" true
          (lvt.Opt.Yield.vwl_min < hvt.Opt.Yield.vwl_min));
    case "margins_ok accepts the solved pins and rejects weaker ones" (fun () ->
        let l = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "pins ok" true
          (Opt.Yield.margins_ok ~flavor:Finfet.Library.Hvt
             ~vddc:l.Opt.Yield.vddc_min ~vssc:0.0 ~vwl:l.Opt.Yield.vwl_min ());
        Alcotest.(check bool) "nominal fails" false
          (Opt.Yield.margins_ok ~flavor:Finfet.Library.Hvt ~vddc:0.45 ~vssc:0.0
             ~vwl:0.45 ()));
    case "SF corner demands a higher write level" (fun () ->
        let tt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        let sf = Opt.Yield.solve ~corner:Finfet.Corners.SF ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "vwl up" true
          (sf.Opt.Yield.vwl_min > tt.Opt.Yield.vwl_min +. 0.02));
    case "FS corner demands a deeper read boost" (fun () ->
        let tt = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        let fs = Opt.Yield.solve ~corner:Finfet.Corners.FS ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "vddc up" true
          (fs.Opt.Yield.vddc_min > tt.Opt.Yield.vddc_min +. 0.01));
    case "heat raises the required read boost" (fun () ->
        let cold = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        let hot = Opt.Yield.solve ~celsius:125.0 ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "vddc up hot" true
          (hot.Opt.Yield.vddc_min >= cold.Opt.Yield.vddc_min));
    case "rsnm_at is cached and consistent" (fun () ->
        let a = Opt.Yield.rsnm_at ~flavor:Finfet.Library.Hvt ~vddc:0.55 ~vssc:0.0 () in
        let b = Opt.Yield.rsnm_at ~flavor:Finfet.Library.Hvt ~vddc:0.55 ~vssc:0.0 () in
        check_close "cache" a b;
        Alcotest.(check bool) "meets rule at 550" true (a >= Finfet.Tech.min_margin)) ]

let space_tests =
  [ case "default grids match the paper's ranges" (fun () ->
        let s = Opt.Space.default in
        Alcotest.(check int) "vssc" 25 (Array.length s.Opt.Space.vssc_values);
        Alcotest.(check int) "nr" 10 (Array.length s.Opt.Space.nr_values);
        Alcotest.(check int) "npre" 50 (Array.length s.Opt.Space.n_pre_values);
        Alcotest.(check int) "nwr" 20 (Array.length s.Opt.Space.n_wr_values);
        check_close "deepest vssc" (-0.240)
          s.Opt.Space.vssc_values.(24);
        Alcotest.(check int) "largest nr" 1024 s.Opt.Space.nr_values.(9));
    case "M1 shares one boosted level and forbids V_SSC" (fun () ->
        let levels = Opt.Yield.solve ~flavor:Finfet.Library.Lvt () in
        let pins = Opt.Space.pins_for Opt.Space.M1 levels in
        check_close "shared" (max levels.Opt.Yield.vddc_min levels.Opt.Yield.vwl_min)
          pins.Opt.Space.vddc;
        check_close "same" pins.Opt.Space.vddc pins.Opt.Space.vwl;
        Alcotest.(check bool) "no vssc" false pins.Opt.Space.vssc_allowed;
        Alcotest.(check int) "one extra level" 1 pins.Opt.Space.extra_levels);
    case "M2 separates distant levels (LVT) and merges close ones (HVT)" (fun () ->
        let lvt = Opt.Space.pins_for Opt.Space.M2 (Opt.Yield.solve ~flavor:Finfet.Library.Lvt ()) in
        Alcotest.(check bool) "lvt separate" true (lvt.Opt.Space.vddc <> lvt.Opt.Space.vwl);
        Alcotest.(check int) "three pins" 3 lvt.Opt.Space.extra_levels;
        let hvt = Opt.Space.pins_for Opt.Space.M2 (Opt.Yield.solve ~flavor:Finfet.Library.Hvt ()) in
        check_close "hvt merged" hvt.Opt.Space.vddc hvt.Opt.Space.vwl;
        Alcotest.(check int) "two pins" 2 hvt.Opt.Space.extra_levels);
    case "assist_of clamps V_SSC under M1" (fun () ->
        let levels = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        let m1 = Opt.Space.pins_for Opt.Space.M1 levels in
        let a = Opt.Space.assist_of m1 ~vssc:(-0.2) in
        check_close_abs "clamped" 0.0 a.Array_model.Components.vssc);
    case "candidate geometries keep both dimensions powers of two" (fun () ->
        let geoms =
          Opt.Space.candidate_geometries Opt.Space.reduced ~capacity_bits:(1024 * 8)
        in
        Alcotest.(check bool) "nonempty" true (geoms <> []);
        List.iter
          (fun g ->
            Alcotest.(check int) "capacity" (1024 * 8)
              (Array_model.Geometry.capacity_bits g))
          geoms);
    case "size counts the cross product" (fun () ->
        let s = Opt.Space.reduced in
        let geoms = List.length (Opt.Space.candidate_geometries s ~capacity_bits:(1024 * 8)) in
        Alcotest.(check int) "m2"
          (geoms * Array.length s.Opt.Space.vssc_values)
          (Opt.Space.size s ~capacity_bits:(1024 * 8) Opt.Space.M2);
        Alcotest.(check int) "m1" geoms
          (Opt.Space.size s ~capacity_bits:(1024 * 8) Opt.Space.M1)) ]

let env_hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()
let small_cap = 1024 * 8

let exhaustive_tests =
  [ case "best really is the minimum over all candidates" (fun () ->
        let result, all =
          Opt.Exhaustive.search_all ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        Alcotest.(check int) "count matches" result.Opt.Exhaustive.evaluated
          (List.length all);
        List.iter
          (fun (c : Opt.Exhaustive.candidate) ->
            Alcotest.(check bool) "no better candidate" true
              (c.Opt.Exhaustive.score
               >= result.Opt.Exhaustive.best.Opt.Exhaustive.score -. 1e-30))
          all);
    case "search rejects non-power-of-two capacities" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Opt.Exhaustive.search ~env:env_hvt ~capacity_bits:3000
                  ~method_:Opt.Space.M2 ());
             false
           with Invalid_argument _ -> true));
    case "M1 never uses a negative V_SSC" (fun () ->
        let r =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M1 ()
        in
        check_close_abs "vssc" 0.0
          r.Opt.Exhaustive.best.Opt.Exhaustive.assist.Array_model.Components.vssc);
    case "M2 beats (or ties) M1 on the objective" (fun () ->
        let m1 =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M1 ()
        in
        let m2 =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        Alcotest.(check bool) "m2 <= m1" true
          (m2.Opt.Exhaustive.best.Opt.Exhaustive.score
           <= m1.Opt.Exhaustive.best.Opt.Exhaustive.score +. 1e-30));
    case "delay-only objective is at least as fast as the EDP optimum" (fun () ->
        let edp =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        let fast =
          Opt.Exhaustive.search ~space:Opt.Space.reduced
            ~objective:Opt.Objective.Delay_only ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        Alcotest.(check bool) "delay" true
          (fast.Opt.Exhaustive.best.Opt.Exhaustive.metrics.Array_model.Array_eval.d_array
           <= edp.Opt.Exhaustive.best.Opt.Exhaustive.metrics.Array_model.Array_eval.d_array
              +. 1e-30)) ]

let objective_tests =
  [ case "objective formulas" (fun () ->
        let r =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M1 ()
        in
        let m = r.Opt.Exhaustive.best.Opt.Exhaustive.metrics in
        let e = m.Array_model.Array_eval.e_total in
        let d = m.Array_model.Array_eval.d_array in
        check_close "edp" (e *. d) (Opt.Objective.eval Opt.Objective.Energy_delay_product m);
        check_close "ed2" (e *. d *. d) (Opt.Objective.eval Opt.Objective.Energy_delay_squared m);
        check_close "e" e (Opt.Objective.eval Opt.Objective.Energy_only m);
        check_close "d" d (Opt.Objective.eval Opt.Objective.Delay_only m));
    case "objective names" (fun () ->
        Alcotest.(check string) "edp" "EDP" (Opt.Objective.name Opt.Objective.Energy_delay_product);
        Alcotest.(check int) "all four" 4 (List.length Opt.Objective.all)) ]

let pareto_tests =
  [ case "front members are mutually non-dominated" (fun () ->
        let _, all =
          Opt.Exhaustive.search_all ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        let front = Opt.Pareto.front all in
        Alcotest.(check bool) "nonempty" true (front <> []);
        let d (c : Opt.Exhaustive.candidate) = c.Opt.Exhaustive.metrics.Array_model.Array_eval.d_array in
        let e (c : Opt.Exhaustive.candidate) = c.Opt.Exhaustive.metrics.Array_model.Array_eval.e_total in
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a != b then
                  Alcotest.(check bool) "non-dominated" false
                    (d b <= d a && e b <= e a && (d b < d a || e b < e a)))
              front)
          front);
    case "front dominates every candidate" (fun () ->
        let _, all =
          Opt.Exhaustive.search_all ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        let front = Opt.Pareto.front all in
        let d (c : Opt.Exhaustive.candidate) = c.Opt.Exhaustive.metrics.Array_model.Array_eval.d_array in
        let e (c : Opt.Exhaustive.candidate) = c.Opt.Exhaustive.metrics.Array_model.Array_eval.e_total in
        List.iter
          (fun c ->
            Alcotest.(check bool) "covered" true
              (List.exists
                 (fun f -> d f <= d c +. 1e-30 && e f <= e c +. 1e-30)
                 front))
          all);
    case "knee lies on the front" (fun () ->
        let _, all =
          Opt.Exhaustive.search_all ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        match Opt.Pareto.knee all with
        | Some k ->
          Alcotest.(check bool) "member" true
            (List.exists (fun c -> c == k) (Opt.Pareto.front all))
        | None -> Alcotest.fail "no knee");
    case "empty input yields empty front and no knee" (fun () ->
        Alcotest.(check bool) "front" true (Opt.Pareto.front [] = []);
        Alcotest.(check bool) "knee" true (Opt.Pareto.knee [] = None)) ]

(* Pareto invariants as QCheck properties over synthetic candidates:
   the front logic only reads (d_array, e_total), so a dummy geometry
   and nominal rails let us drive it with arbitrary objective points
   instead of the handful a real search produces. *)
let synth_candidate (d, e) =
  { Opt.Exhaustive.geometry =
      Array_model.Geometry.create ~nr:16 ~nc:16 ~n_pre:1 ~n_wr:1 ();
    assist = Array_model.Components.no_assist;
    metrics =
      { Array_model.Array_eval.d_read = d; d_write = d; d_array = d;
        e_read = e; e_write = e; e_switching = e; e_leakage = 0.0;
        e_total = e; edp = d *. e; d_bl_read = d; d_row_path_read = 0.0;
        d_col_path = 0.0 };
    score = d *. e }

let points_arb =
  QCheck.(
    list_of_size (Gen.int_range 1 40)
      (pair (float_range 1e-3 1e3) (float_range 1e-3 1e3)))

let dm (c : Opt.Exhaustive.candidate) = c.Opt.Exhaustive.metrics.Array_model.Array_eval.d_array
let em (c : Opt.Exhaustive.candidate) = c.Opt.Exhaustive.metrics.Array_model.Array_eval.e_total
let dominates a b = dm a <= dm b && em a <= em b && (dm a < dm b || em a < em b)

let pareto_prop_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"front is mutually non-dominated" ~count:300
         points_arb (fun points ->
           let front = Opt.Pareto.front (List.map synth_candidate points) in
           front <> []
           && List.for_all
                (fun a -> List.for_all (fun b -> a == b || not (dominates b a)) front)
                front));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"every candidate is covered by the front" ~count:300
         points_arb (fun points ->
           let all = List.map synth_candidate points in
           let front = Opt.Pareto.front all in
           List.for_all
             (fun c ->
               List.exists (fun f -> dm f <= dm c && em f <= em c) front)
             all));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"front extraction is idempotent" ~count:300
         points_arb (fun points ->
           let front = Opt.Pareto.front (List.map synth_candidate points) in
           let again = Opt.Pareto.front front in
           List.length again = List.length front
           && List.for_all
                (fun f -> List.exists (fun g -> dm f = dm g && em f = em g) again)
                front));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"knee is a front member" ~count:300 points_arb
         (fun points ->
           let all = List.map synth_candidate points in
           match Opt.Pareto.knee all with
           | None -> false
           | Some k ->
             List.exists
               (fun f -> dm f = dm k && em f = em k)
               (Opt.Pareto.front all)));
  ]

let anneal_tests =
  [ case "annealing is deterministic per seed" (fun () ->
        let run () =
          Opt.Anneal.search ~space:Opt.Space.reduced
            ~schedule:{ Opt.Anneal.initial_temperature = 0.3; cooling = 0.99; steps = 300 }
            ~seed:5 ~env:env_hvt ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        let a = run () and b = run () in
        (* Determinism means the whole design point, not just the score:
           same geometry, same assist rail, bit-identical floats. *)
        let ga = a.Opt.Exhaustive.best.Opt.Exhaustive.geometry in
        let gb = b.Opt.Exhaustive.best.Opt.Exhaustive.geometry in
        Alcotest.(check int) "nr" ga.Array_model.Geometry.nr gb.Array_model.Geometry.nr;
        Alcotest.(check int) "nc" ga.Array_model.Geometry.nc gb.Array_model.Geometry.nc;
        Alcotest.(check int) "n_pre" ga.Array_model.Geometry.n_pre gb.Array_model.Geometry.n_pre;
        Alcotest.(check int) "n_wr" ga.Array_model.Geometry.n_wr gb.Array_model.Geometry.n_wr;
        let bits r =
          Int64.bits_of_float r.Opt.Exhaustive.best.Opt.Exhaustive.score
        in
        Alcotest.(check int64) "score bits" (bits a) (bits b);
        let vssc r =
          Int64.bits_of_float
            r.Opt.Exhaustive.best.Opt.Exhaustive.assist.Array_model.Components.vssc
        in
        Alcotest.(check int64) "vssc bits" (vssc a) (vssc b);
        Alcotest.(check int) "same trajectory" a.Opt.Exhaustive.evaluated
          b.Opt.Exhaustive.evaluated);
    case "annealing lands within 10% of the exhaustive optimum" (fun () ->
        let exact =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        let approx =
          Opt.Anneal.search ~space:Opt.Space.reduced ~seed:7 ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        check_within "quality" ~lo:1.0 ~hi:1.10
          (approx.Opt.Exhaustive.best.Opt.Exhaustive.score
           /. exact.Opt.Exhaustive.best.Opt.Exhaustive.score));
    case "annealing spends far fewer evaluations" (fun () ->
        let approx =
          Opt.Anneal.search ~space:Opt.Space.reduced ~seed:7 ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        Alcotest.(check bool) "cheap" true
          (approx.Opt.Exhaustive.evaluated
           < Opt.Space.size Opt.Space.reduced ~capacity_bits:small_cap Opt.Space.M2)) ]

let local_search_tests =
  [ case "coordinate descent lands near the exhaustive optimum" (fun () ->
        (* The reduced grid is deliberately coarse, which leaves real local
           minima; a few extra restarts keep the gap in single digits. *)
        let exact =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        let local =
          Opt.Local_search.search ~space:Opt.Space.reduced ~restarts:8
            ~env:env_hvt ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        check_within "quality" ~lo:1.0 ~hi:1.10
          (local.Opt.Exhaustive.best.Opt.Exhaustive.score
           /. exact.Opt.Exhaustive.best.Opt.Exhaustive.score));
    case "full-grid coordinate descent is within 2% of exhaustive" (fun () ->
        let exact =
          Opt.Exhaustive.search ~env:env_hvt ~capacity_bits:small_cap
            ~method_:Opt.Space.M2 ()
        in
        let local =
          Opt.Local_search.search ~env:env_hvt ~capacity_bits:small_cap
            ~method_:Opt.Space.M2 ()
        in
        check_within "quality" ~lo:1.0 ~hi:1.02
          (local.Opt.Exhaustive.best.Opt.Exhaustive.score
           /. exact.Opt.Exhaustive.best.Opt.Exhaustive.score));
    case "coordinate descent is deterministic" (fun () ->
        let run () =
          (Opt.Local_search.search ~space:Opt.Space.reduced ~env:env_hvt
             ~capacity_bits:small_cap ~method_:Opt.Space.M2 ())
            .Opt.Exhaustive.best.Opt.Exhaustive.score
        in
        check_close "same" (run ()) (run ()));
    case "coordinate descent spends far fewer evaluations" (fun () ->
        let local =
          Opt.Local_search.search ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        Alcotest.(check bool) "cheap" true
          (local.Opt.Exhaustive.evaluated
           < Opt.Space.size Opt.Space.reduced ~capacity_bits:small_cap Opt.Space.M2));
    case "respects injected levels" (fun () ->
        let levels = { Opt.Yield.vddc_min = 0.60; vwl_min = 0.60; hsnm_nominal = 0.2 } in
        let r =
          Opt.Local_search.search ~space:Opt.Space.reduced ~levels ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        check_close "pins" 0.60
          r.Opt.Exhaustive.best.Opt.Exhaustive.assist.Array_model.Components.vddc) ]

let journal_tests =
  [ case "anneal result JSON round-trips the considered count" (fun () ->
        let r =
          Opt.Anneal.search ~space:Opt.Space.reduced ~seed:7 ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        Alcotest.(check int) "a heuristic considers what it evaluates"
          r.Opt.Exhaustive.evaluated r.Opt.Exhaustive.considered;
        let j = Opt.Exhaustive.result_to_json r in
        Alcotest.(check (option int)) "considered on the wire"
          (Some r.Opt.Exhaustive.considered)
          (Persist.Json.int_field j "considered");
        match Opt.Exhaustive.result_of_json j with
        | None -> Alcotest.fail "result does not decode"
        | Some r' ->
          Alcotest.(check int) "considered survives the round-trip"
            r.Opt.Exhaustive.considered r'.Opt.Exhaustive.considered);
    slow_case "journal is observation-only: winners bit-identical on/off"
      (fun () ->
        let fingerprint (r : Opt.Exhaustive.result) =
          let b = r.Opt.Exhaustive.best in
          let g = b.Opt.Exhaustive.geometry in
          Printf.sprintf "%d/%d/%d/%d %.17g %.17g" g.Array_model.Geometry.nr
            g.Array_model.Geometry.nc g.Array_model.Geometry.n_pre
            g.Array_model.Geometry.n_wr
            b.Opt.Exhaustive.assist.Array_model.Components.vssc
            b.Opt.Exhaustive.score
        in
        let search jobs =
          let pool = Runtime.Pool.create ~jobs () in
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~pool ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        List.iter
          (fun jobs ->
            Obs.Search.disarm ();
            let off = fingerprint (search jobs) in
            Obs.Search.arm ();
            Obs.Control.set_enabled true;
            let on = fingerprint (search jobs) in
            let s = Obs.Search.summary () in
            Obs.Control.set_enabled false;
            Obs.Search.disarm ();
            Alcotest.(check string)
              (Printf.sprintf "identical design at jobs=%d" jobs)
              off on;
            Alcotest.(check bool)
              (Printf.sprintf "journal saw the search at jobs=%d" jobs)
              true
              (s.Obs.Search.incumbents > 0 || s.Obs.Search.prunes > 0))
          [ 1; 2; 4 ];
        (* The armed run fed the bound-quality histogram; gaps are
           relative, so every observation is non-negative. *)
        match
          List.find_opt
            (fun (sn : Obs.Histogram.snapshot) ->
              sn.Obs.Histogram.name = "opt.bound_gap")
            (Obs.Histogram.snapshots ())
        with
        | None -> Alcotest.fail "opt.bound_gap histogram never registered"
        | Some sn ->
          Alcotest.(check bool) "bound gaps observed" true
            (sn.Obs.Histogram.count > 0);
          Alcotest.(check bool) "gaps non-negative" true
            (sn.Obs.Histogram.min_s >= 0.0)) ]

let explain_tests =
  let result =
    lazy
      (Opt.Exhaustive.search ~space:Opt.Space.reduced ~env:env_hvt
         ~capacity_bits:small_cap ~method_:Opt.Space.M2 ())
  in
  [ case "no grid neighbor of the exhaustive winner is better" (fun () ->
        let r = Lazy.force result in
        let axes =
          Opt.Explain.sensitivity ~space:Opt.Space.reduced ~env:env_hvt
            ~pins:r.Opt.Exhaustive.pins ~winner:r.Opt.Exhaustive.best ()
        in
        Alcotest.(check (list string))
          "axes in search order"
          [ "n_r"; "N_pre"; "N_wr"; "V_SSC" ]
          (List.map (fun a -> a.Opt.Explain.ax_name) axes);
        List.iter
          (fun (ax : Opt.Explain.axis) ->
            List.iter
              (function
                | None -> ()
                | Some (n : Opt.Explain.neighbor) ->
                  if n.Opt.Explain.nb_delta < 0.0 then
                    Alcotest.failf
                      "%s neighbor at %g beats the winner by %.3g%%"
                      ax.Opt.Explain.ax_name n.Opt.Explain.nb_value
                      (-100.0 *. n.Opt.Explain.nb_delta))
              [ ax.Opt.Explain.ax_minus; ax.Opt.Explain.ax_plus ])
          axes);
    case "energy rollup reproduces E_total" (fun () ->
        let r = Lazy.force result in
        let b = r.Opt.Exhaustive.best in
        let at =
          Array_model.Array_eval.attribute env_hvt b.Opt.Exhaustive.geometry
            b.Opt.Exhaustive.assist
        in
        Alcotest.(check bool) "terms refold bit-exactly" true
          (Array_model.Array_eval.attribution_consistent at);
        let rollup = Opt.Explain.energy_rollup at in
        let total = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 rollup in
        check_close "weighted shares sum to the total"
          at.Array_model.Array_eval.at_metrics.Array_model.Array_eval.e_total
          total);
    slow_case "pareto provenance accounts for every candidate" (fun () ->
        let p =
          Opt.Explain.pareto ~space:Opt.Space.reduced ~env:env_hvt
            ~capacity_bits:small_cap ~method_:Opt.Space.M2 ()
        in
        Alcotest.(check int) "front + dominated = evaluated"
          p.Opt.Explain.pv_evaluated
          (List.length p.Opt.Explain.pv_front + p.Opt.Explain.pv_dominated);
        Alcotest.(check bool) "front nonempty" true
          (p.Opt.Explain.pv_front <> []);
        let best_front =
          List.fold_left
            (fun acc (c : Opt.Exhaustive.candidate) ->
              min acc c.Opt.Exhaustive.score)
            infinity p.Opt.Explain.pv_front
        in
        let r = Lazy.force result in
        (* The EDP winner is Pareto-optimal, so the front must contain
           a point with exactly the winning score. *)
        Alcotest.(check int64) "winner sits on the front"
          (Int64.bits_of_float r.Opt.Exhaustive.best.Opt.Exhaustive.score)
          (Int64.bits_of_float best_front)) ]

let array_yield_tests =
  let g = Array_model.Geometry.create ~nr:128 ~nc:256 ~n_pre:24 ~n_wr:2 () in
  [ case "zero cell failures give unit yield" (fun () ->
        check_close "one" 1.0 (Opt.Array_yield.array_yield ~geometry:g ~cell_fail:0.0 ()));
    case "yield falls with cell failure probability" (fun () ->
        let y p = Opt.Array_yield.array_yield ~geometry:g ~cell_fail:p () in
        check_decreasing ~strict:true "monotone" [| y 1e-8; y 1e-6; y 1e-4 |]);
    case "spare rows raise the yield" (fun () ->
        let at spare_rows =
          Opt.Array_yield.array_yield ~spare_rows ~geometry:g ~cell_fail:1e-5 ()
        in
        check_increasing ~strict:true "repair" [| at 0; at 1; at 4 |]);
    case "cell failure probability combines the three margins" (fun () ->
        let good = [| 0.2; 0.21; 0.19; 0.2; 0.22; 0.18 |] in
        let marginal = [| 0.02; 0.01; -0.01; 0.03; 0.0; 0.02 |] in
        let p_good =
          Opt.Array_yield.cell_failure_probability
            { Sram_cell.Montecarlo.hsnm = good; rsnm = good; wm = good }
        in
        let p_marginal =
          Opt.Array_yield.cell_failure_probability
            { Sram_cell.Montecarlo.hsnm = good; rsnm = marginal; wm = good }
        in
        Alcotest.(check bool) "ordering" true (p_good < 1e-6 && p_marginal > 0.1));
    case "yield-solved boost undercuts the 35% proxy rule" (fun () ->
        let cfg = { Opt.Yield_mc.default_config with Opt.Yield_mc.samples = 12 } in
        let s =
          Opt.Array_yield.solve_vddc ~config:cfg ~flavor:Finfet.Library.Hvt
            ~geometry:g ()
        in
        Alcotest.(check bool) "meets target" true
          (s.Opt.Array_yield.achieved_yield >= 0.99);
        let proxy = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "cheaper than proxy" true
          (s.Opt.Array_yield.vddc_min <= proxy.Opt.Yield.vddc_min)) ]

let () =
  Alcotest.run "opt"
    [ ("yield", yield_tests);
      ("space", space_tests);
      ("exhaustive", exhaustive_tests);
      ("objective", objective_tests);
      ("pareto", pareto_tests);
      ("pareto_props", pareto_prop_tests);
      ("anneal", anneal_tests);
      ("local_search", local_search_tests);
      ("journal", journal_tests);
      ("explain", explain_tests);
      ("array_yield", array_yield_tests) ]
