(* Tests for lib/serve: wire-frame robustness (truncated / oversized /
   corrupted frames are typed errors, never crashes), QCheck round-trips
   of the request/response codecs (bit-exact through every float), and
   end-to-end daemon behaviour against a real forked server — garbage
   frames and clients killed mid-request leave the server answering,
   deadlines cancel cleanly, and a repeated query hits the warm memo
   with a checksum identical to the in-process one-shot path. *)

open Testutil
module F = Serve.Frame
module P = Serve.Protocol
module J = Persist.Json

(* ----- scratch ----- *)

let tmp_root =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sram_opt_test_serve_%d" (Unix.getpid ()))
  in
  (if not (Sys.file_exists d) then Sys.mkdir d 0o755);
  d

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat tmp_root (Printf.sprintf "s%d.sock" !n)

(* ----- frames ----- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () -> f r w)

let check_read = Alcotest.(check (result string string))

let read_str ?max_len fd =
  Result.map_error F.error_to_string (F.read ?max_len fd)

let frame_tests =
  [ case "write/read round-trips payloads" (fun () ->
        with_pipe (fun r w ->
            (* Payloads must fit the pipe buffer: reader and writer are
               the same process, so an over-full write would deadlock. *)
            List.iter
              (fun p ->
                F.write w p;
                check_read "payload" (Ok p) (read_str r))
              [ ""; "x"; String.make 30_000 '\xff'; "{\"id\":1}" ]));
    case "clean close between frames is Eof" (fun () ->
        with_pipe (fun r w ->
            Unix.close w;
            check_read "eof" (Error "connection closed") (read_str r)));
    case "close mid-frame is Truncated, not a hang or crash" (fun () ->
        with_pipe (fun r w ->
            (* Header promises 100 bytes; send 3 and die. *)
            let b = Bytes.create 8 in
            Bytes.set_int32_le b 0 100l;
            Bytes.set_int32_le b 4 0l;
            ignore (Unix.write w b 0 8);
            ignore (Unix.write_substring w "abc" 0 3);
            Unix.close w;
            check_read "truncated" (Error "connection closed mid-frame")
              (read_str r)));
    case "length prefix beyond max_len is Oversized, no allocation"
      (fun () ->
        with_pipe (fun r w ->
            let b = Bytes.create 8 in
            Bytes.set_int32_le b 0 0x7fffff00l;
            Bytes.set_int32_le b 4 0l;
            ignore (Unix.write w b 0 8);
            match F.read ~max_len:4096 r with
            | Error (F.Oversized n) ->
              Alcotest.(check int) "declared length" 0x7fffff00 n
            | other ->
              Alcotest.failf "expected Oversized, got %s"
                (match other with
                | Ok _ -> "a frame"
                | Error e -> F.error_to_string e)));
    case "corrupted payload is Crc_mismatch" (fun () ->
        with_pipe (fun r w ->
            let payload = "hello, server" in
            let crc = Persist.Crc32.string payload in
            let b = Bytes.create 8 in
            Bytes.set_int32_le b 0 (Int32.of_int (String.length payload));
            Bytes.set_int32_le b 4 (Int32.of_int (crc lxor 0xdead));
            ignore (Unix.write w b 0 8);
            ignore
              (Unix.write_substring w payload 0 (String.length payload));
            check_read "crc" (Error "frame checksum mismatch") (read_str r)));
    case "decoder pops frames fed one byte at a time" (fun () ->
        let d = F.decoder () in
        (* Build two frames in a string via a pipe, then drip-feed. *)
        let wire =
          with_pipe (fun r w ->
              F.write w "first";
              F.write w "second";
              Unix.close w;
              let b = Bytes.create 4096 in
              let n = ref 0 in
              let k = ref (Unix.read r b !n (4096 - !n)) in
              while !k > 0 do
                n := !n + !k;
                k := Unix.read r b !n (4096 - !n)
              done;
              Bytes.sub_string b 0 !n)
        in
        let got = ref [] in
        String.iter
          (fun c ->
            F.feed d (Bytes.make 1 c) 1;
            match F.next d with
            | Ok (Some p) -> got := p :: !got
            | Ok None -> ()
            | Error e -> Alcotest.failf "decoder: %s" (F.error_to_string e))
          wire;
        Alcotest.(check (list string))
          "frames" [ "first"; "second" ] (List.rev !got);
        Alcotest.(check int) "nothing buffered" 0 (F.buffered d));
    case "decoder error is sticky" (fun () ->
        let d = F.decoder ~max_len:16 () in
        let b = Bytes.create 8 in
        Bytes.set_int32_le b 0 1000l;
        Bytes.set_int32_le b 4 0l;
        F.feed d b 8;
        (match F.next d with
        | Error (F.Oversized _) -> ()
        | _ -> Alcotest.fail "expected Oversized");
        match F.next d with
        | Error (F.Oversized _) -> ()
        | _ -> Alcotest.fail "error must persist")
  ]

(* ----- protocol codecs (QCheck) ----- *)

let query_gen =
  let open QCheck.Gen in
  let farr = small_list (float_range (-2.0) 2.0) >|= Array.of_list in
  let iarr lo hi = small_list (int_range lo hi) >|= Array.of_list in
  let opt g = oneof [ return None; map Option.some g ] in
  let* capacity_bits = int_range 1 (1 lsl 24) in
  let* flavor = oneofl [ Finfet.Library.Lvt; Finfet.Library.Hvt ] in
  let* method_ = oneofl [ Opt.Space.M1; Opt.Space.M2 ] in
  let* strategy =
    oneofl
      [ Opt.Strategy.Exhaustive; Opt.Strategy.Local_search;
        Opt.Strategy.Anneal; Opt.Strategy.Nsga2; Opt.Strategy.Surrogate ]
  in
  let* rng_seed = int_range 0 10_000 in
  let* objective =
    oneofl
      [ Opt.Objective.Energy_delay_product;
        Opt.Objective.Energy_delay_squared; Opt.Objective.Energy_only;
        Opt.Objective.Delay_only ]
  in
  let* accounting =
    oneofl [ Array_model.Array_eval.Paper_strict; Array_model.Array_eval.Physical ]
  in
  let* w = int_range 1 512 in
  let* vssc = opt farr in
  let* nr = opt (iarr 16 1024) in
  let* n_pre = opt (iarr 1 64) in
  let* n_wr = opt (iarr 1 64) in
  return
    { P.capacity_bits; flavor; method_; strategy; rng_seed; objective;
      accounting; w; space = { P.vssc; nr; n_pre; n_wr } }

let trace_id_gen =
  let open QCheck.Gen in
  oneof
    [ return None;
      map Option.some (string_size ~gen:printable (int_bound 24)) ]

let request_gen =
  let open QCheck.Gen in
  let* id = int_range 0 max_int in
  let* deadline_ms = oneof [ return None; map Option.some (float_range 0.0 1e6) ] in
  let* trace_id = trace_id_gen in
  let* endpoint =
    oneof
      [ return P.Ping; return P.Stats; return P.Metrics; return P.Shutdown;
        map (fun q -> P.Optimize q) query_gen;
        map (fun q -> P.Explain q) query_gen ]
  in
  return { P.id; deadline_ms; trace_id; endpoint }

let response_gen =
  let open QCheck.Gen in
  let* rid = int_range 0 max_int in
  let* rtrace_id = trace_id_gen in
  let* body =
    oneof
      [ map (fun s -> Ok (J.String s)) (string_size ~gen:printable (int_bound 16));
        map (fun f -> Ok (J.Obj [ ("x", J.Float f) ])) (float_range (-1e12) 1e12);
        (let* code =
           oneofl
             [ P.Bad_request; P.Busy; P.Deadline; P.Shutting_down; P.Internal ]
         in
         let* msg = string_size ~gen:printable (int_bound 24) in
         return (Error (code, msg)))
      ]
  in
  return { P.rid; rtrace_id; body }

(* Structural equality through the JSON tree, floats compared by bits. *)
let rec json_eq a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Int x, J.Int y -> x = y
  | J.Float x, J.Float y -> Int64.bits_of_float x = Int64.bits_of_float y
  | J.String x, J.String y -> String.equal x y
  | J.List x, J.List y ->
    List.length x = List.length y && List.for_all2 json_eq x y
  | J.Obj x, J.Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_eq v1 v2)
         x y
  | _ -> false

let protocol_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"requests round-trip bit-exactly" ~count:300
         (QCheck.make request_gen)
         (fun r ->
           match P.request_of_json (P.request_to_json r) with
           | Ok r' -> json_eq (P.request_to_json r') (P.request_to_json r)
           | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"responses round-trip bit-exactly" ~count:300
         (QCheck.make response_gen)
         (fun r ->
           match P.response_of_json (P.response_to_json r) with
           | Ok r' -> json_eq (P.response_to_json r') (P.response_to_json r)
           | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e));
    case "garbage JSON is a decode error, not an exception" (fun () ->
        List.iter
          (fun s ->
            match J.of_string s with
            | Error _ -> ()
            | Ok j -> (
              match P.request_of_json j with
              | Error _ -> ()
              | Ok _ -> Alcotest.failf "accepted %s" s))
          [ "[]"; "{}"; "{\"id\":\"x\"}"; "{\"id\":1}";
            "{\"id\":1,\"endpoint\":\"warp\"}";
            "{\"id\":1,\"endpoint\":\"optimize\"}";
            "{\"id\":1,\"endpoint\":\"explain\"}";
            "{\"id\":1,\"endpoint\":\"optimize\",\"query\":{\"w\":0}}"; "7" ]);
    case "space_of_override replaces only the named axes" (fun () ->
        let s = P.space_of_override { P.no_override with P.nr = Some [| 64 |] } in
        Alcotest.(check (array int)) "nr" [| 64 |] s.Opt.Space.nr_values;
        Alcotest.(check int) "vssc untouched"
          (Array.length Opt.Space.default.Opt.Space.vssc_values)
          (Array.length s.Opt.Space.vssc_values))
  ]

(* ----- end-to-end, against a forked server ----- *)

let with_server ?(configure = fun c -> c) f =
  Runtime.Pool.set_default_jobs 1;
  let path = fresh_sock () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Runtime.Memo.reset_all ();
    let cfg =
      configure
        { Serve.Server.default_config with
          Serve.Server.socket_path = Some path;
          install_signals = false }
    in
    (try ignore (Serve.Server.run cfg) with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (* Belt and braces: ask nicely, then reap; kill if the ask
           cannot be delivered. *)
        (match Serve.Client.connect ~socket_path:path () with
        | Ok c ->
          ignore (Serve.Client.shutdown c);
          Serve.Client.close c
        | Error _ -> (
          try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()));
        ignore (Unix.waitpid [] pid))
      (fun () ->
        match Serve.Client.wait_ready ~socket_path:path () with
        | Error e -> Alcotest.failf "server did not come up: %s" e
        | Ok c -> Fun.protect ~finally:(fun () -> Serve.Client.close c)
                    (fun () -> f path c))

let reduced_query =
  { P.default_query with
    P.capacity_bits = 1024 * 8;
    space = P.reduced_override }

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let server_tests =
  [ case "warm repeat answers bit-identically to the one-shot path"
      (fun () ->
        with_server (fun _path c ->
            let a = get (Serve.Client.optimize c reduced_query) in
            let b = get (Serve.Client.optimize c reduced_query) in
            Alcotest.(check string) "warm = cold checksum"
              a.Serve.Client.checksum b.Serve.Client.checksum;
            let local =
              Sram_edp.Framework.optimize ~space:Opt.Space.reduced
                ~capacity_bits:(1024 * 8)
                ~config:
                  { Sram_edp.Framework.flavor = Finfet.Library.Hvt;
                    method_ = Opt.Space.M2 }
                ()
            in
            Alcotest.(check string) "server = in-process checksum"
              (Opt.Exhaustive.checksum [ local.Sram_edp.Framework.result ])
              a.Serve.Client.checksum;
            Alcotest.(check string) "decoded winner re-derives checksum"
              a.Serve.Client.checksum
              (Opt.Exhaustive.checksum [ a.Serve.Client.result ])));
    case "wire method=nsga2 matches the one-shot strategy path bit-for-bit"
      (fun () ->
        with_server (fun path c ->
            (* Through the typed client: strategy + seed in the query
               record. *)
            let q =
              { reduced_query with
                P.strategy = Opt.Strategy.Nsga2;
                rng_seed = Opt.Strategy.default_seed }
            in
            let a = get (Serve.Client.optimize c q) in
            let local =
              Sram_edp.Framework.optimize ~space:Opt.Space.reduced
                ~strategy:Opt.Strategy.Nsga2
                ~rng_seed:Opt.Strategy.default_seed
                ~capacity_bits:(1024 * 8)
                ~config:
                  { Sram_edp.Framework.flavor = Finfet.Library.Hvt;
                    method_ = Opt.Space.M2 }
                ()
            in
            Alcotest.(check string) "server nsga2 = in-process checksum"
              (Opt.Exhaustive.checksum [ local.Sram_edp.Framework.result ])
              a.Serve.Client.checksum;
            (* Raw frame speaking the "method" grammar: no "strategy"
               field at all, ["method"] = "nsga2" selects the engine. *)
            let patch_query = function
              | J.Obj fields ->
                J.Obj
                  (List.filter_map
                     (function
                       | "strategy", _ -> None
                       | "method", _ -> Some ("method", J.String "nsga2")
                       | kv -> Some kv)
                     fields)
              | j -> j
            in
            let raw_request ~id ~method_str =
              match
                P.request_to_json
                  { P.id; deadline_ms = None; trace_id = None;
                    endpoint = P.Optimize reduced_query }
              with
              | J.Obj fields ->
                J.to_string
                  (J.Obj
                     (List.map
                        (function
                          | "query", qj ->
                            let qj = patch_query qj in
                            let qj =
                              match (qj, method_str) with
                              | J.Obj fs, Some s ->
                                J.Obj
                                  (List.map
                                     (function
                                       | "method", _ ->
                                         ("method", J.String s)
                                       | kv -> kv)
                                     fs)
                              | _ -> qj
                            in
                            ("query", qj)
                          | kv -> kv)
                        fields))
              | _ -> Alcotest.fail "request_to_json is not an object"
            in
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
            Unix.connect fd (Unix.ADDR_UNIX path);
            F.write fd (raw_request ~id:11 ~method_str:None);
            (match F.read fd with
            | Ok s -> (
              match Result.bind (J.of_string s) P.response_of_json with
              | Ok { P.body = Ok payload; _ } ->
                Alcotest.(check (option string))
                  "wire method=nsga2 checksum = typed-client checksum"
                  (Some a.Serve.Client.checksum)
                  (J.string_field payload "checksum")
              | Ok { P.body = Error (_, m); _ } ->
                Alcotest.failf "method=nsga2 rejected: %s" m
              | Error e -> Alcotest.failf "undecodable response: %s" e)
            | Error e ->
              Alcotest.failf "no response to method=nsga2: %s"
                (F.error_to_string e));
            (* An unknown method spelling is a typed bad_request and the
               connection survives it. *)
            F.write fd (raw_request ~id:12 ~method_str:(Some "warp-drive"));
            (match F.read fd with
            | Ok s -> (
              match Result.bind (J.of_string s) P.response_of_json with
              | Ok { P.body = Error (P.Bad_request, _); _ } -> ()
              | Ok _ -> Alcotest.fail "expected bad_request for warp-drive"
              | Error e -> Alcotest.failf "undecodable response: %s" e)
            | Error e ->
              Alcotest.failf "no response to bad method: %s"
                (F.error_to_string e));
            F.write fd
              (J.to_string
                 (P.request_to_json
                    { P.id = 13; deadline_ms = None; trace_id = None;
                      endpoint = P.Ping }));
            match F.read fd with
            | Ok _ -> ()
            | Error e ->
              Alcotest.failf "ping after bad method: %s"
                (F.error_to_string e)));
    case "explain reuses the optimize memo and refolds bit-exactly"
      (fun () ->
        with_server (fun _path c ->
            let a = get (Serve.Client.optimize c reduced_query) in
            let e = get (Serve.Client.explain c reduced_query) in
            (* Same memoized search: the explain payload names the very
               winner optimize returned. *)
            Alcotest.(check (option string)) "same winner checksum"
              (Some a.Serve.Client.checksum)
              (J.string_field e "checksum");
            Alcotest.(check (option bool)) "attribution refolds bit-exactly"
              (Some true)
              (Option.bind
                 (J.member "attribution" e)
                 (fun at -> Option.bind
                     (J.member "consistent_bitwise" at) J.to_bool));
            let edp_bits j =
              Option.map Int64.bits_of_float
                (Option.bind (J.member "attribution" j) (fun at ->
                     Option.bind (J.member "metrics" at) (fun m ->
                         J.float_field m "edp_js")))
            in
            let winner_edp =
              a.Serve.Client.result.Opt.Exhaustive.best.Opt.Exhaustive.metrics
                .Array_model.Array_eval.edp
            in
            Alcotest.(check (option int64)) "attributed EDP is the winner's"
              (Some (Int64.bits_of_float winner_edp))
              (edp_bits e);
            (match Option.bind (J.member "sensitivity" e) J.to_list with
            | Some axes ->
              Alcotest.(check int) "four sensitivity axes" 4 (List.length axes)
            | None -> Alcotest.fail "sensitivity section missing");
            (* The journal armed at server startup saw the search; the
               exposition carries its counters. *)
            let text = get (Serve.Client.metrics c) in
            Alcotest.(check bool) "search counters exposed" true
              (contains ~needle:"sram_opt_search_incumbents_total" text)));
    case "a corrupt frame gets an answer and the server keeps serving"
      (fun () ->
        with_server (fun path c ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            (* Valid header, wrong CRC: the server must answer (or
               close) this connection without dying. *)
            let payload = "{\"id\":9,\"endpoint\":\"ping\"}" in
            let b = Bytes.create 8 in
            Bytes.set_int32_le b 0 (Int32.of_int (String.length payload));
            Bytes.set_int32_le b 4 0xBAD0BADl;
            ignore (Unix.write fd b 0 8);
            ignore
              (Unix.write_substring fd payload 0 (String.length payload));
            (match F.read fd with
            | Ok _ | Error _ -> ());
            Unix.close fd;
            (* The healthy connection still works. *)
            ignore (get (Serve.Client.ping c))));
    case "unparseable request JSON answers bad_request, keeps connection"
      (fun () ->
        with_server (fun path c ->
            ignore c;
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            F.write fd "{\"not\":\"a request\"}";
            (match F.read fd with
            | Ok s -> (
              match Result.bind (J.of_string s) P.response_of_json with
              | Ok { P.body = Error (P.Bad_request, _); _ } -> ()
              | Ok _ -> Alcotest.fail "expected bad_request"
              | Error e -> Alcotest.failf "undecodable response: %s" e)
            | Error e ->
              Alcotest.failf "expected a response frame, got %s"
                (F.error_to_string e));
            (* Same connection still usable after the rejection. *)
            F.write fd
              (J.to_string
                 (P.request_to_json
                    { P.id = 2; deadline_ms = None; trace_id = None;
                      endpoint = P.Ping }));
            (match F.read fd with
            | Ok _ -> ()
            | Error e ->
              Alcotest.failf "ping after bad request: %s"
                (F.error_to_string e));
            Unix.close fd));
    case "client killed mid-request does not take the server down"
      (fun () ->
        with_server (fun path c ->
            flush stdout;
            flush stderr;
            (match Unix.fork () with
            | 0 ->
              (* Send a full optimize request, then vanish without
                 reading the response. *)
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              (try
                 Unix.connect fd (Unix.ADDR_UNIX path);
                 F.write fd
                   (J.to_string
                      (P.request_to_json
                         { P.id = 1; deadline_ms = None; trace_id = None;
                           endpoint = P.Optimize reduced_query }))
               with _ -> ());
              Unix._exit 0
            | pid -> ignore (Unix.waitpid [] pid));
            (* And one that dies mid-frame: header only, then gone. *)
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            let b = Bytes.create 8 in
            Bytes.set_int32_le b 0 64l;
            Bytes.set_int32_le b 4 0l;
            ignore (Unix.write fd b 0 8);
            Unix.close fd;
            ignore (get (Serve.Client.ping c));
            ignore (get (Serve.Client.optimize c reduced_query))));
    case "an impossible deadline is a clean Deadline error" (fun () ->
        with_server (fun _path c ->
            (* Full default space at 16KB takes far longer than 1ms
               cold; the search must be cancelled, answered, and the
               server left healthy. *)
            let big = { P.default_query with P.capacity_bits = 16 * 1024 * 8 } in
            (match Serve.Client.optimize ~deadline_ms:1.0 c big with
            | Ok _ -> Alcotest.fail "expected a deadline error"
            | Error e ->
              Alcotest.(check bool)
                (Printf.sprintf "mentions deadline: %s" e)
                true
                (String.length e >= 8
                && (let lower = String.lowercase_ascii e in
                    let rec find i =
                      i + 8 <= String.length lower
                      && (String.sub lower i 8 = "deadline" || find (i + 1))
                    in
                    find 0)));
            (* Aborted search cached nothing and broke nothing. *)
            ignore (get (Serve.Client.optimize c reduced_query))));
    case "stats endpoint reports the served traffic" (fun () ->
        with_server (fun _path c ->
            ignore (get (Serve.Client.optimize c reduced_query));
            ignore (get (Serve.Client.optimize c reduced_query));
            let stats = get (Serve.Client.stats c) in
            let server =
              match J.member "server" stats with
              | Some s -> s
              | None -> Alcotest.fail "no server section in stats"
            in
            (match J.int_field server "req.optimize" with
            | Some n -> Alcotest.(check bool) "optimize counted" true (n >= 2)
            | None -> Alcotest.fail "no req.optimize counter");
            match J.member "memos" stats with
            | Some (J.List _) -> ()
            | _ -> Alcotest.fail "no memos section"));
    case "shutdown endpoint drains and the process exits" (fun () ->
        Runtime.Pool.set_default_jobs 1;
        let path = fresh_sock () in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
          Runtime.Memo.reset_all ();
          let cfg =
            { Serve.Server.default_config with
              Serve.Server.socket_path = Some path;
              install_signals = false }
          in
          (try ignore (Serve.Server.run cfg) with _ -> ());
          Unix._exit 0
        | pid ->
          let c = get (Serve.Client.wait_ready ~socket_path:path ()) in
          get (Serve.Client.shutdown c);
          Serve.Client.close c;
          (match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "server exited abnormally");
          Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path))
  ]

(* ----- observability: trace ids, metrics, flight dumps ----- *)

let check_has what needle text =
  Alcotest.(check bool) what true (contains ~needle text)

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

(* Structural check of the text exposition (format 0.0.4): every
   non-empty line is either a # comment or `name[{labels}] value` with
   a parseable value and a well-formed metric name. *)
let check_exposition_format text =
  List.iteri
    (fun i line ->
      if line <> "" && not (String.starts_with ~prefix:"#" line) then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "metrics line %d has no value: %S" i line
        | Some sp ->
          let name = String.sub line 0 sp in
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          (match float_of_string_opt value with
          | Some _ -> ()
          | None ->
            if value <> "+Inf" && value <> "-Inf" && value <> "NaN" then
              Alcotest.failf "metrics line %d value %S does not parse" i value);
          (match name.[0] with
          | 'a' .. 'z' | 'A' .. 'Z' | '_' -> ()
          | c -> Alcotest.failf "metrics line %d name starts with %c" i c)
      end)
    (String.split_on_char '\n' text)

let observability_tests =
  [ case "responses echo the client trace id or carry a generated one"
      (fun () ->
        with_server (fun _path c ->
            (match Serve.Client.call ~trace_id:"my-trace-1" c P.Ping with
            | Ok r ->
              Alcotest.(check (option string)) "client id echoed"
                (Some "my-trace-1") r.P.rtrace_id
            | Error e -> Alcotest.failf "ping: %s" e);
            match Serve.Client.call c P.Ping with
            | Ok r -> (
              match r.P.rtrace_id with
              | Some id ->
                Alcotest.(check bool) "generated id non-empty" true
                  (String.length id > 0)
              | None -> Alcotest.fail "expected a server-generated trace id")
            | Error e -> Alcotest.failf "ping: %s" e));
    case "observability off: ids echoed when supplied, never invented"
      (fun () ->
        with_server
          ~configure:(fun cfg ->
            { cfg with Serve.Server.observability = false })
          (fun _path c ->
            (match Serve.Client.call ~trace_id:"still-echoed" c P.Ping with
            | Ok r ->
              Alcotest.(check (option string)) "echoed" (Some "still-echoed")
                r.P.rtrace_id
            | Error e -> Alcotest.failf "ping: %s" e);
            match Serve.Client.call c P.Ping with
            | Ok r ->
              Alcotest.(check (option string)) "no invented id" None
                r.P.rtrace_id
            | Error e -> Alcotest.failf "ping: %s" e));
    case "metrics endpoint serves parseable Prometheus exposition"
      (fun () ->
        with_server (fun _path c ->
            ignore (get (Serve.Client.optimize c reduced_query));
            let text = get (Serve.Client.metrics c) in
            check_has "requests counter typed"
              "# TYPE sram_opt_serve_requests_total counter" text;
            check_has "requests counter present"
              "sram_opt_serve_requests_total " text;
            check_has "windowed e2e p99"
              "sram_opt_serve_e2e_seconds_window{window=\"10s\",quantile=\"0.99\"}"
              text;
            check_has "cumulative e2e summary"
              "sram_opt_serve_e2e_seconds{quantile=\"0.5\"}" text;
            check_has "SLO counters windowed"
              "sram_opt_serve_events_window{event=\"serve_deadline_expired\",window=\"60s\"}"
              text;
            check_has "memo hit rate" "sram_opt_memo_hit_rate" text;
            check_has "gc words" "sram_opt_gc_major_words_total" text;
            check_has "build info" "sram_opt_build_info" text;
            check_exposition_format text));
    case "GET /metrics HTTP shim answers a plain scrape on the same listener"
      (fun () ->
        with_server (fun path c ->
            ignore (get (Serve.Client.ping c));
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            let req = "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n" in
            ignore (Unix.write_substring fd req 0 (String.length req));
            let buf = Buffer.create 4096 in
            let b = Bytes.create 4096 in
            let rec drain () =
              match Unix.read fd b 0 4096 with
              | 0 -> ()
              | n ->
                Buffer.add_subbytes buf b 0 n;
                drain ()
              | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
                -> ()
            in
            drain ();
            Unix.close fd;
            let text = Buffer.contents buf in
            Alcotest.(check bool) "HTTP 200" true
              (String.starts_with ~prefix:"HTTP/1.1 200 OK\r\n" text);
            check_has "exposition content type"
              "Content-Type: text/plain; version=0.0.4" text;
            check_has "serve counters over HTTP"
              "sram_opt_serve_requests_total" text;
            (* The frame protocol still works after an HTTP exchange. *)
            ignore (get (Serve.Client.ping c))));
    case "stats exposes windowed views alongside cumulative" (fun () ->
        with_server (fun _path c ->
            ignore (get (Serve.Client.optimize c reduced_query));
            let stats = get (Serve.Client.stats c) in
            let windows =
              match J.member "windows" stats with
              | Some w -> w
              | None -> Alcotest.fail "no windows section in stats"
            in
            (match J.member "histograms" windows with
            | Some (J.List rows) ->
              Alcotest.(check bool) "serve.e2e windowed" true
                (List.exists
                   (fun r -> J.string_field r "name" = Some "serve.e2e")
                   rows);
              List.iter
                (fun r ->
                  match J.member "windows" r with
                  | Some (J.List (_ :: _)) -> ()
                  | _ -> Alcotest.fail "histogram row without window slices")
                rows
            | _ -> Alcotest.fail "windows.histograms missing");
            match J.member "counters" windows with
            | Some (J.List rows) ->
              Alcotest.(check bool) "deadline SLO counter windowed" true
                (List.exists
                   (fun r ->
                     J.string_field r "name" = Some "serve.deadline_expired")
                   rows)
            | _ -> Alcotest.fail "windows.counters missing"));
    case "deadline-cancelled request leaves a flight dump with its trace id"
      (fun () ->
        let dir = Filename.concat tmp_root "flight_deadline" in
        with_server
          ~configure:(fun cfg ->
            { cfg with Serve.Server.flight_dir = Some dir })
          (fun _path c ->
            let big =
              { P.default_query with P.capacity_bits = 16 * 1024 * 8 }
            in
            (match
               Serve.Client.call ~deadline_ms:1.0 ~trace_id:"dl-trace-7" c
                 (P.Optimize big)
             with
            | Ok { P.body = Error (P.Deadline, _); rtrace_id; _ } ->
              Alcotest.(check (option string)) "deadline response echoes id"
                (Some "dl-trace-7") rtrace_id
            | Ok _ -> Alcotest.fail "expected a deadline error"
            | Error e -> Alcotest.failf "call: %s" e);
            (* The dump is written before the loop takes the next
               request, so a served ping means it is on disk. *)
            ignore (get (Serve.Client.ping c));
            let dumps =
              Sys.readdir dir |> Array.to_list
              |> List.filter (String.starts_with ~prefix:"flight-")
            in
            Alcotest.(check bool) "a flight dump exists" true (dumps <> []);
            let text = read_file (Filename.concat dir (List.hd dumps)) in
            check_has "chrome trace shape" "\"traceEvents\"" text;
            check_has "request attributed" "dl-trace-7" text;
            match Persist.Json.of_string text with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "dump is not valid JSON: %s" e)) ]

let () =
  Alcotest.run "serve"
    [ ("frame", frame_tests);
      ("protocol", protocol_tests);
      ("server", server_tests);
      ("observability", observability_tests)
    ]
