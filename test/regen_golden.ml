(* Deliberate golden-file regeneration: `make regen-golden` (or
   `dune exec test/regen_golden.exe -- <dir>`).  Rewrites every file
   that test_golden.ml diffs against; review the git diff before
   committing. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, content) ->
      let path = Filename.concat dir name in
      let oc = open_out_bin path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n%!" path (String.length content))
    (Testutil.Golden_gen.files ())
