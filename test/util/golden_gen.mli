(** Golden-file content, generated deterministically from a
    reduced-space Table-4 sweep.  [test_golden.ml] diffs these strings
    against the committed [test/golden/*]; [regen_golden.ml] rewrites
    the files deliberately (`make regen-golden`). *)

val capacities : int list
(** Capacities covered by the golden sweep (bits). *)

val table4_json : unit -> string
(** The design table as pretty-printed JSON, newline-terminated. *)

val report_text : unit -> string
(** The Table-4 text rendering ({!Sram_edp.Report}). *)

val datasheet_text : unit -> string
(** Datasheet of the 1KB 6T-HVT-M2 design point. *)

val files : unit -> (string * string) list
(** [(basename, content)] for every golden file. *)
