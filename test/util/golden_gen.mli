(** Golden-file content, generated deterministically from a
    reduced-space Table-4 sweep.  [test_golden.ml] diffs these strings
    against the committed [test/golden/*]; [regen_golden.ml] rewrites
    the files deliberately (`make regen-golden`). *)

val capacities : int list
(** Capacities covered by the golden sweep (bits). *)

val table4_json : unit -> string
(** The design table as pretty-printed JSON, newline-terminated. *)

val report_text : unit -> string
(** The Table-4 text rendering ({!Sram_edp.Report}). *)

val datasheet_text : unit -> string
(** Datasheet of the 1KB 6T-HVT-M2 design point. *)

val stats_schema : unit -> string
(** The `stats` endpoint payload reduced to its schema shape (scalars
    become type names, lists collapse to their first element) over a
    synthesized full serving state — pins the key set and nesting of
    DESIGN.md §7 without golding non-deterministic timings. *)

val files : unit -> (string * string) list
(** [(basename, content)] for every golden file. *)
