(* Golden-file content generation, shared by the regression tests
   (test_golden.ml, which diffs against the files under test/golden)
   and the regenerator (regen_golden.ml, `make regen-golden`).  Everything here
   must be bit-stable run to run: the searches are deterministic at any
   job count and Json_out prints floats with enough digits to
   round-trip, so a golden diff means the model output changed, not
   that the harness wobbled. *)

open Sram_edp

(* Reduced space keeps regeneration and `dune runtest` fast while still
   exercising the staged kernel, yield pinning and both methods; the
   full-space Table 4 lives in the bench harness, not the goldens. *)
let capacities = [ 128 * 8; 1024 * 8; 4 * 1024 * 8 ]

let designs =
  lazy
    (Framework.sweep_capacities ~space:Opt.Space.reduced ~capacities
       ~configs:Framework.all_configs ())

let rows =
  lazy
    (List.map
       (fun (o : Framework.optimized) ->
         let g = Framework.geometry o in
         let a = Framework.assist o in
         let m = Framework.metrics o in
         { Experiments.capacity_bits = o.Framework.capacity_bits;
           config = o.Framework.config;
           nr = g.Array_model.Geometry.nr;
           nc = g.Array_model.Geometry.nc;
           n_pre = g.Array_model.Geometry.n_pre;
           n_wr = g.Array_model.Geometry.n_wr;
           vddc = a.Array_model.Components.vddc;
           vssc = a.Array_model.Components.vssc;
           vwl = a.Array_model.Components.vwl;
           d_array = m.Array_model.Array_eval.d_array;
           e_total = m.Array_model.Array_eval.e_total;
           edp = m.Array_model.Array_eval.edp;
           d_bl_read = m.Array_model.Array_eval.d_bl_read })
       (Lazy.force designs))

let table4_json () =
  Json_out.to_string_pretty
    (Json_out.List (List.map Json_out.of_design_row (Lazy.force rows)))
  ^ "\n"

let report_text () =
  let table =
    Report.create
      ~columns:
        [ "M"; "SRAM"; "n_r"; "n_c"; "N_pre"; "N_wr"; "V_DDC"; "V_SSC"; "V_WL" ]
  in
  let last_capacity = ref 0 in
  List.iter
    (fun (r : Experiments.design_row) ->
      if !last_capacity <> 0 && r.Experiments.capacity_bits <> !last_capacity
      then Report.add_separator table;
      last_capacity := r.Experiments.capacity_bits;
      Report.add_row table
        [ Units.capacity r.Experiments.capacity_bits;
          Framework.config_name r.Experiments.config;
          string_of_int r.Experiments.nr;
          string_of_int r.Experiments.nc;
          string_of_int r.Experiments.n_pre;
          string_of_int r.Experiments.n_wr;
          Units.mv r.Experiments.vddc;
          Units.mv r.Experiments.vssc;
          Units.mv r.Experiments.vwl ])
    (Lazy.force rows);
  Report.to_string table

let datasheet_text () =
  let pick =
    List.find
      (fun (o : Framework.optimized) ->
        o.Framework.capacity_bits = 1024 * 8
        && o.Framework.config.Framework.flavor = Finfet.Library.Hvt
        && o.Framework.config.Framework.method_ = Opt.Space.M2)
      (Lazy.force designs)
  in
  Datasheet.to_string (Datasheet.build pick)

let files () =
  [ ("table4.json", table4_json ());
    ("report.txt", report_text ());
    ("datasheet.txt", datasheet_text ()) ]
