(* Golden-file content generation, shared by the regression tests
   (test_golden.ml, which diffs against the files under test/golden)
   and the regenerator (regen_golden.ml, `make regen-golden`).  Everything here
   must be bit-stable run to run: the searches are deterministic at any
   job count and Json_out prints floats with enough digits to
   round-trip, so a golden diff means the model output changed, not
   that the harness wobbled. *)

open Sram_edp

(* Reduced space keeps regeneration and `dune runtest` fast while still
   exercising the staged kernel, yield pinning and both methods; the
   full-space Table 4 lives in the bench harness, not the goldens. *)
let capacities = [ 128 * 8; 1024 * 8; 4 * 1024 * 8 ]

let designs =
  lazy
    (Framework.sweep_capacities ~space:Opt.Space.reduced ~capacities
       ~configs:Framework.all_configs ())

let rows =
  lazy
    (List.map
       (fun (o : Framework.optimized) ->
         let g = Framework.geometry o in
         let a = Framework.assist o in
         let m = Framework.metrics o in
         { Experiments.capacity_bits = o.Framework.capacity_bits;
           config = o.Framework.config;
           nr = g.Array_model.Geometry.nr;
           nc = g.Array_model.Geometry.nc;
           n_pre = g.Array_model.Geometry.n_pre;
           n_wr = g.Array_model.Geometry.n_wr;
           vddc = a.Array_model.Components.vddc;
           vssc = a.Array_model.Components.vssc;
           vwl = a.Array_model.Components.vwl;
           d_array = m.Array_model.Array_eval.d_array;
           e_total = m.Array_model.Array_eval.e_total;
           edp = m.Array_model.Array_eval.edp;
           d_bl_read = m.Array_model.Array_eval.d_bl_read })
       (Lazy.force designs))

let table4_json () =
  Json_out.to_string_pretty
    (Json_out.List (List.map Json_out.of_design_row (Lazy.force rows)))
  ^ "\n"

let report_text () =
  let table =
    Report.create
      ~columns:
        [ "M"; "SRAM"; "n_r"; "n_c"; "N_pre"; "N_wr"; "V_DDC"; "V_SSC"; "V_WL" ]
  in
  let last_capacity = ref 0 in
  List.iter
    (fun (r : Experiments.design_row) ->
      if !last_capacity <> 0 && r.Experiments.capacity_bits <> !last_capacity
      then Report.add_separator table;
      last_capacity := r.Experiments.capacity_bits;
      Report.add_row table
        [ Units.capacity r.Experiments.capacity_bits;
          Framework.config_name r.Experiments.config;
          string_of_int r.Experiments.nr;
          string_of_int r.Experiments.nc;
          string_of_int r.Experiments.n_pre;
          string_of_int r.Experiments.n_wr;
          Units.mv r.Experiments.vddc;
          Units.mv r.Experiments.vssc;
          Units.mv r.Experiments.vwl ])
    (Lazy.force rows);
  Report.to_string table

let datasheet_text () =
  let pick =
    List.find
      (fun (o : Framework.optimized) ->
        o.Framework.capacity_bits = 1024 * 8
        && o.Framework.config.Framework.flavor = Finfet.Library.Hvt
        && o.Framework.config.Framework.method_ = Opt.Space.M2)
      (Lazy.force designs)
  in
  Datasheet.to_string (Datasheet.build pick)

(* ----- stats endpoint schema ----- *)

(* The `stats` payload carries timings, so its VALUES are not golden —
   its SHAPE is.  Every scalar is collapsed to its type name and every
   list to its first element, giving a schema tree that is bit-stable
   while pinning the key set and nesting documented in DESIGN.md §7:
   a golden diff here means a client-visible schema change. *)
let rec schema_of = function
  | Json_out.Null -> Json_out.String "null"
  | Json_out.Bool _ -> Json_out.String "bool"
  | Json_out.Int _ -> Json_out.String "int"
  | Json_out.Float _ -> Json_out.String "float"
  | Json_out.String _ -> Json_out.String "string"
  | Json_out.List [] -> Json_out.List []
  | Json_out.List (x :: _) -> Json_out.List [ schema_of x ]
  | Json_out.Obj fields ->
    Json_out.Obj (List.map (fun (k, v) -> (k, schema_of v)) fields)

(* Synthesize the full serving state a live daemon would have —
   windowed request histograms, SLO counters, serve.* telemetry — so
   the schema covers every optional section ("windows", "server"), then
   reset so the synthetic state cannot leak into other goldens. *)
let stats_schema () =
  ignore (Lazy.force designs);  (* memo caches registered and warm *)
  Runtime.Telemetry.reset ();
  Obs.Histogram.reset_all ();
  Obs.Window.reset_all ();
  let slo =
    [ "serve.requests"; "serve.responses"; "serve.errors";
      "serve.deadline_expired"; "serve.rejected_busy"; "serve.bad_request";
      "serve.bad_frame" ]
  in
  List.iteri
    (fun i name -> Runtime.Telemetry.add (Runtime.Telemetry.counter name) i)
    slo;
  List.iter
    (fun name ->
      let counter = Runtime.Telemetry.counter name in
      Obs.Window.track name (fun () -> Runtime.Telemetry.value counter))
    slo;
  List.iter
    (fun name ->
      let h = Obs.Histogram.create name in
      List.iter (Obs.Histogram.observe h) [ 1e-5; 2e-4; 3e-3 ];
      ignore (Obs.Window.create h))
    [ "serve.queue_wait"; "serve.handle.optimize"; "serve.e2e" ];
  Obs.Window.rotate_all ();
  let text =
    Json_out.to_string_pretty (schema_of (Json_out.runtime_stats_json ()))
    ^ "\n"
  in
  Runtime.Telemetry.reset ();
  Obs.Histogram.reset_all ();
  Obs.Window.reset_all ();
  text

(* ----- strategy result schema ----- *)

(* Routing every engine through {!Opt.Strategy.run} must not change the
   result JSON a client sees (the serve payloads and the checkpoint
   journal both embed it).  Values legitimately differ per engine — the
   heuristics evaluate a subset — so the golden pins the SHAPE of
   [Opt.Exhaustive.result_to_json] for each strategy, same collapse as
   the stats schema. *)
let rec persist_schema_of = function
  | Persist.Json.Null -> Json_out.String "null"
  | Persist.Json.Bool _ -> Json_out.String "bool"
  | Persist.Json.Int _ -> Json_out.String "int"
  | Persist.Json.Float _ -> Json_out.String "float"
  | Persist.Json.String _ -> Json_out.String "string"
  | Persist.Json.List [] -> Json_out.List []
  | Persist.Json.List (x :: _) -> Json_out.List [ persist_schema_of x ]
  | Persist.Json.Obj fields ->
    Json_out.Obj (List.map (fun (k, v) -> (k, persist_schema_of v)) fields)

let strategies_schema () =
  let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
  let result_of st =
    Opt.Strategy.run st ~space:Opt.Space.reduced ~env
      ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ()
  in
  Json_out.to_string_pretty
    (Json_out.Obj
       (List.map
          (fun st ->
            ( Opt.Strategy.name st,
              persist_schema_of (Opt.Exhaustive.result_to_json (result_of st))
            ))
          [ Opt.Strategy.Exhaustive; Opt.Strategy.Local_search;
            Opt.Strategy.Anneal; Opt.Strategy.Nsga2; Opt.Strategy.Surrogate ]))
  ^ "\n"

let files_memo =
  (* Sequenced lets: [stats_schema] mutates (then resets) global
     telemetry state, so it must not interleave with the sweep-backed
     generators.  The whole list is memoized because generation is not
     idempotent either — [strategies_schema] registers the heuristic
     engines' telemetry counters, which would leak into a *second*
     [stats_schema] run's counter listing. *)
  lazy
    (let table4 = table4_json () in
     let report = report_text () in
     let datasheet = datasheet_text () in
     let stats = stats_schema () in
     let strategies = strategies_schema () in
     [ ("table4.json", table4);
       ("report.txt", report);
       ("datasheet.txt", datasheet);
       ("stats.json", stats);
       ("strategies.json", strategies) ])

let files () = Lazy.force files_memo
