let check_close ?(tol = 1e-9) msg expected actual =
  let scale = max (max (abs_float expected) (abs_float actual)) 1e-30 in
  if abs_float (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.12g, got %.12g (rel tol %g)" msg expected
      actual tol

let check_close_abs ?(tol = 1e-12) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (abs tol %g)" msg expected
      actual tol

let check_within msg ~lo ~hi x =
  if not (x >= lo && x <= hi) then
    Alcotest.failf "%s: %.12g outside [%.12g, %.12g]" msg x lo hi

let check_increasing ?(strict = false) msg xs =
  for i = 0 to Array.length xs - 2 do
    let ok = if strict then xs.(i) < xs.(i + 1) else xs.(i) <= xs.(i + 1) in
    if not ok then
      Alcotest.failf "%s: not increasing at index %d (%.12g -> %.12g)" msg i
        xs.(i) xs.(i + 1)
  done

let check_decreasing ?(strict = false) msg xs =
  for i = 0 to Array.length xs - 2 do
    let ok = if strict then xs.(i) > xs.(i + 1) else xs.(i) >= xs.(i + 1) in
    if not ok then
      Alcotest.failf "%s: not decreasing at index %d (%.12g -> %.12g)" msg i
        xs.(i) xs.(i + 1)
  done

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

module Golden_gen = Golden_gen
