(** Shared assertion helpers for the test suites. *)

val check_close : ?tol:float -> string -> float -> float -> unit
(** Relative closeness: |a - b| <= tol * max(|a|, |b|, 1e-30).
    Default tolerance 1e-9. *)

val check_close_abs : ?tol:float -> string -> float -> float -> unit
(** Absolute closeness; default tolerance 1e-12. *)

val check_within : string -> lo:float -> hi:float -> float -> unit
(** Asserts lo <= x <= hi. *)

val check_increasing : ?strict:bool -> string -> float array -> unit
val check_decreasing : ?strict:bool -> string -> float array -> unit

val case : string -> (unit -> unit) -> unit Alcotest.test_case
(** Quick test case shorthand. *)

val slow_case : string -> (unit -> unit) -> unit Alcotest.test_case
(** `Slow test case (excluded by [dune runtest] with ALCOTEST_QUICK). *)

module Golden_gen : module type of Golden_gen
(** Golden-file content generation (re-exported through the library's
    main module so test binaries can reach it). *)
