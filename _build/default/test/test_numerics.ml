(* Unit and property tests for the numerics substrate. *)

open Testutil

(* --- Rng --- *)

let rng_tests =
  [ case "equal seeds give equal streams" (fun () ->
        let a = Numerics.Rng.create ~seed:7 in
        let b = Numerics.Rng.create ~seed:7 in
        for _ = 1 to 100 do
          check_close "stream" (Numerics.Rng.uniform a) (Numerics.Rng.uniform b)
        done);
    case "different seeds give different streams" (fun () ->
        let a = Numerics.Rng.create ~seed:1 in
        let b = Numerics.Rng.create ~seed:2 in
        let same = ref 0 in
        for _ = 1 to 50 do
          if Numerics.Rng.uniform a = Numerics.Rng.uniform b then incr same
        done;
        Alcotest.(check bool) "streams differ" true (!same < 5));
    case "uniform stays in [0,1)" (fun () ->
        let rng = Numerics.Rng.create ~seed:3 in
        for _ = 1 to 10_000 do
          check_within "uniform" ~lo:0.0 ~hi:0.999999999999 (Numerics.Rng.uniform rng)
        done);
    case "uniform_range respects bounds" (fun () ->
        let rng = Numerics.Rng.create ~seed:4 in
        for _ = 1 to 1000 do
          check_within "range" ~lo:(-2.5) ~hi:7.0
            (Numerics.Rng.uniform_range rng ~lo:(-2.5) ~hi:7.0)
        done);
    case "uniform mean near 0.5" (fun () ->
        let rng = Numerics.Rng.create ~seed:5 in
        let n = 20_000 in
        let acc = ref 0.0 in
        for _ = 1 to n do
          acc := !acc +. Numerics.Rng.uniform rng
        done;
        check_within "mean" ~lo:0.49 ~hi:0.51 (!acc /. float_of_int n));
    case "gaussian moments" (fun () ->
        let rng = Numerics.Rng.create ~seed:6 in
        let xs =
          Array.init 20_000 (fun _ -> Numerics.Rng.gaussian rng ~mu:3.0 ~sigma:2.0)
        in
        check_within "mu" ~lo:2.95 ~hi:3.05 (Numerics.Stats.mean xs);
        check_within "sigma" ~lo:1.95 ~hi:2.05 (Numerics.Stats.stddev xs));
    case "int_below bounds and coverage" (fun () ->
        let rng = Numerics.Rng.create ~seed:8 in
        let seen = Array.make 10 false in
        for _ = 1 to 1000 do
          let k = Numerics.Rng.int_below rng 10 in
          Alcotest.(check bool) "in range" true (k >= 0 && k < 10);
          seen.(k) <- true
        done;
        Array.iteri
          (fun i s -> Alcotest.(check bool) (Printf.sprintf "saw %d" i) true s)
          seen);
    case "copy forks the state" (fun () ->
        let a = Numerics.Rng.create ~seed:9 in
        let _ = Numerics.Rng.uniform a in
        let b = Numerics.Rng.copy a in
        check_close "fork" (Numerics.Rng.uniform a) (Numerics.Rng.uniform b));
    case "split decorrelates" (fun () ->
        let a = Numerics.Rng.create ~seed:10 in
        let b = Numerics.Rng.split a in
        let same = ref 0 in
        for _ = 1 to 50 do
          if Numerics.Rng.uniform a = Numerics.Rng.uniform b then incr same
        done;
        Alcotest.(check bool) "split stream differs" true (!same < 5)) ]

(* --- Stats --- *)

let stats_tests =
  [ case "mean" (fun () -> check_close "mean" 2.5 (Numerics.Stats.mean [| 1.;2.;3.;4. |]));
    case "variance unbiased" (fun () ->
        check_close "var" (5.0 /. 3.0) (Numerics.Stats.variance [| 1.;2.;3.;4. |]));
    case "variance of singleton is zero" (fun () ->
        check_close_abs "var1" 0.0 (Numerics.Stats.variance [| 42.0 |]));
    case "stddev" (fun () ->
        check_close "sd" (sqrt (5.0 /. 3.0)) (Numerics.Stats.stddev [| 1.;2.;3.;4. |]));
    case "min_max" (fun () ->
        let lo, hi = Numerics.Stats.min_max [| 3.; -1.; 7.; 2. |] in
        check_close "min" (-1.0) lo;
        check_close "max" 7.0 hi);
    case "percentile endpoints" (fun () ->
        let xs = [| 5.; 1.; 3. |] in
        check_close "p0" 1.0 (Numerics.Stats.percentile xs ~p:0.0);
        check_close "p100" 5.0 (Numerics.Stats.percentile xs ~p:100.0);
        check_close "p50" 3.0 (Numerics.Stats.percentile xs ~p:50.0));
    case "percentile interpolates" (fun () ->
        check_close "p25" 1.5 (Numerics.Stats.percentile [| 1.; 2.; 3. |] ~p:25.0));
    case "geometric mean" (fun () ->
        check_close "gm" 2.0 (Numerics.Stats.geometric_mean [| 1.; 2.; 4. |]));
    case "mu_minus_k_sigma" (fun () ->
        let xs = [| 1.; 2.; 3.; 4. |] in
        check_close "mks"
          (Numerics.Stats.mean xs -. (3.0 *. Numerics.Stats.stddev xs))
          (Numerics.Stats.mu_minus_k_sigma xs ~k:3.0));
    case "normal_cdf anchors" (fun () ->
        check_close ~tol:1e-6 "median" 0.5 (Numerics.Stats.normal_cdf 0.0);
        check_close ~tol:1e-4 "95th two-sided" 0.975 (Numerics.Stats.normal_cdf 1.96);
        check_close ~tol:1e-4 "one sigma" 0.8413 (Numerics.Stats.normal_cdf 1.0);
        check_close ~tol:1e-4 "shifted" 0.8413
          (Numerics.Stats.normal_cdf ~mu:2.0 ~sigma:3.0 5.0));
    case "normal_cdf symmetry" (fun () ->
        check_close ~tol:1e-7 "sym" 1.0
          (Numerics.Stats.normal_cdf 1.3 +. Numerics.Stats.normal_cdf (-1.3)));
    case "log_choose matches small factorials" (fun () ->
        check_close ~tol:1e-9 "10 choose 3" (log 120.0) (Numerics.Stats.log_choose 10 3);
        check_close_abs ~tol:1e-12 "edge" 0.0 (Numerics.Stats.log_choose 7 0));
    case "binomial_cdf anchors" (fun () ->
        check_close ~tol:1e-6 "fair coin" 0.623046875
          (Numerics.Stats.binomial_cdf ~n:10 ~p:0.5 5);
        check_close ~tol:1e-12 "all" 1.0 (Numerics.Stats.binomial_cdf ~n:5 ~p:0.3 5);
        check_close ~tol:1e-12 "none" (0.7 ** 5.0)
          (Numerics.Stats.binomial_cdf ~n:5 ~p:0.3 0);
        check_close ~tol:1e-12 "p zero" 1.0 (Numerics.Stats.binomial_cdf ~n:9 ~p:0.0 0)) ]

(* --- Roots --- *)

let roots_tests =
  let f x = (x *. x) -. 2.0 in
  [ case "bisect sqrt2" (fun () ->
        check_close ~tol:1e-9 "sqrt2" (sqrt 2.0)
          (Numerics.Roots.bisect f ~lo:0.0 ~hi:2.0));
    case "brent sqrt2" (fun () ->
        check_close ~tol:1e-9 "sqrt2" (sqrt 2.0)
          (Numerics.Roots.brent f ~lo:0.0 ~hi:2.0));
    case "brent on transcendental" (fun () ->
        let g x = cos x -. x in
        check_close ~tol:1e-9 "dottie" 0.7390851332151607
          (Numerics.Roots.brent g ~lo:0.0 ~hi:1.0));
    case "bisect raises without bracket" (fun () ->
        Alcotest.check_raises "no bracket" Numerics.Roots.No_bracket (fun () ->
            ignore (Numerics.Roots.bisect f ~lo:2.0 ~hi:3.0)));
    case "brent raises without bracket" (fun () ->
        Alcotest.check_raises "no bracket" Numerics.Roots.No_bracket (fun () ->
            ignore (Numerics.Roots.brent f ~lo:2.0 ~hi:3.0)));
    case "bisect returns exact endpoint root" (fun () ->
        check_close_abs "root at lo" 0.0 (Numerics.Roots.bisect (fun x -> x) ~lo:0.0 ~hi:1.0));
    case "newton_scalar" (fun () ->
        check_close ~tol:1e-9 "sqrt2" (sqrt 2.0)
          (Numerics.Roots.newton_scalar ~f ~df:(fun x -> 2.0 *. x) 1.0));
    case "golden_min quadratic" (fun () ->
        let x, v = Numerics.Roots.golden_min (fun x -> (x -. 1.5) ** 2.0) ~lo:0.0 ~hi:4.0 in
        check_close ~tol:1e-4 "argmin" 1.5 x;
        check_close_abs ~tol:1e-8 "min" 0.0 v);
    case "find_bracket locates sign change" (fun () ->
        match Numerics.Roots.find_bracket f ~lo:0.0 ~hi:2.0 ~n:8 with
        | Some (lo, hi) ->
          Alcotest.(check bool) "brackets" true (f lo *. f hi <= 0.0)
        | None -> Alcotest.fail "no bracket found");
    case "find_bracket returns None when none" (fun () ->
        Alcotest.(check bool) "none" true
          (Numerics.Roots.find_bracket f ~lo:2.0 ~hi:3.0 ~n:8 = None)) ]

(* --- Matrix / Lu --- *)

let matrix_tests =
  [ case "identity mat_vec" (fun () ->
        let m = Numerics.Matrix.identity 3 in
        let v = [| 1.; 2.; 3. |] in
        Array.iteri
          (fun i x -> check_close "id" v.(i) x)
          (Numerics.Matrix.mat_vec m v));
    case "mat_mul matches hand result" (fun () ->
        let a = Numerics.Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
        let b = Numerics.Matrix.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
        let c = Numerics.Matrix.mat_mul a b in
        check_close "c00" 19.0 (Numerics.Matrix.get c 0 0);
        check_close "c01" 22.0 (Numerics.Matrix.get c 0 1);
        check_close "c10" 43.0 (Numerics.Matrix.get c 1 0);
        check_close "c11" 50.0 (Numerics.Matrix.get c 1 1));
    case "transpose" (fun () ->
        let a = Numerics.Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
        let t = Numerics.Matrix.transpose a in
        Alcotest.(check int) "rows" 3 (Numerics.Matrix.rows t);
        check_close "t21" 6.0 (Numerics.Matrix.get t 2 1));
    case "add_to stamps" (fun () ->
        let m = Numerics.Matrix.create ~rows:2 ~cols:2 in
        Numerics.Matrix.add_to m 0 0 1.5;
        Numerics.Matrix.add_to m 0 0 2.5;
        check_close "stamp" 4.0 (Numerics.Matrix.get m 0 0));
    case "lu solves a known system" (fun () ->
        let a = Numerics.Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
        let x = Numerics.Lu.solve a [| 5.; 10. |] in
        check_close "x0" 1.0 x.(0);
        check_close "x1" 3.0 x.(1));
    case "lu needs pivoting" (fun () ->
        (* Zero pivot in the (0,0) position forces a row swap. *)
        let a = Numerics.Matrix.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
        let x = Numerics.Lu.solve a [| 2.; 3. |] in
        check_close "x0" 3.0 x.(0);
        check_close "x1" 2.0 x.(1));
    case "lu det" (fun () ->
        let a = Numerics.Matrix.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |] in
        check_close "det" 6.0 (Numerics.Lu.det (Numerics.Lu.factorize a)));
    case "lu det with permutation sign" (fun () ->
        let a = Numerics.Matrix.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
        check_close "det" (-1.0) (Numerics.Lu.det (Numerics.Lu.factorize a)));
    case "lu raises on singular" (fun () ->
        let a = Numerics.Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
        Alcotest.check_raises "singular" Numerics.Lu.Singular (fun () ->
            ignore (Numerics.Lu.factorize a)));
    case "least squares recovers a line" (fun () ->
        (* Overdetermined y = 2x + 1 exactly. *)
        let a =
          Numerics.Matrix.of_arrays
            [| [| 1.; 0. |]; [| 1.; 1. |]; [| 1.; 2. |]; [| 1.; 3. |] |]
        in
        let x = Numerics.Lu.solve_least_squares a [| 1.; 3.; 5.; 7. |] in
        check_close "intercept" 1.0 x.(0);
        check_close "slope" 2.0 x.(1)) ]

let lu_roundtrip_prop =
  QCheck.Test.make ~name:"lu solve roundtrip on random diagonally-dominant systems"
    ~count:100
    QCheck.(pair (int_bound 1000) (int_range 1 6))
    (fun (seed, n) ->
      let rng = Numerics.Rng.create ~seed in
      let a = Numerics.Matrix.create ~rows:n ~cols:n in
      for i = 0 to n - 1 do
        let mutable_sum = ref 0.0 in
        for j = 0 to n - 1 do
          if i <> j then begin
            let v = Numerics.Rng.uniform_range rng ~lo:(-1.0) ~hi:1.0 in
            Numerics.Matrix.set a i j v;
            mutable_sum := !mutable_sum +. abs_float v
          end
        done;
        Numerics.Matrix.set a i i (!mutable_sum +. 1.0)
      done;
      let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
      let b = Numerics.Matrix.mat_vec a x_true in
      let x = Numerics.Lu.solve a b in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-8) x_true x)

(* --- Sparse --- *)

let sparse_tests =
  [ case "builder sums duplicates" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:2 in
        Numerics.Sparse.Builder.add b 0 0 1.0;
        Numerics.Sparse.Builder.add b 0 0 2.0;
        Numerics.Sparse.Builder.add b 1 1 1.0;
        let m = Numerics.Sparse.of_builder b in
        check_close "dup" 3.0 (Numerics.Sparse.get m 0 0);
        Alcotest.(check int) "nnz" 2 (Numerics.Sparse.nnz m));
    case "explicit zeros dropped" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:2 in
        Numerics.Sparse.Builder.add b 0 1 1.0;
        Numerics.Sparse.Builder.add b 0 1 (-1.0);
        Numerics.Sparse.Builder.add b 1 0 2.0;
        let m = Numerics.Sparse.of_builder b in
        Alcotest.(check int) "nnz" 1 (Numerics.Sparse.nnz m);
        check_close_abs "cancelled" 0.0 (Numerics.Sparse.get m 0 1));
    case "mat_vec matches dense" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:3 in
        Numerics.Sparse.Builder.add b 0 0 2.0;
        Numerics.Sparse.Builder.add b 0 2 1.0;
        Numerics.Sparse.Builder.add b 1 1 3.0;
        Numerics.Sparse.Builder.add b 2 0 1.0;
        Numerics.Sparse.Builder.add b 2 2 4.0;
        let s = Numerics.Sparse.of_builder b in
        let d = Numerics.Sparse.to_dense s in
        let v = [| 1.; 2.; 3. |] in
        let sv = Numerics.Sparse.mat_vec s v in
        let dv = Numerics.Matrix.mat_vec d v in
        Array.iteri (fun i x -> check_close "matvec" dv.(i) x) sv);
    case "cg solves an SPD system" (fun () ->
        (* 1-D Laplacian: tridiagonal (2, -1). *)
        let n = 20 in
        let b = Numerics.Sparse.Builder.create ~n in
        for i = 0 to n - 1 do
          Numerics.Sparse.Builder.add b i i 2.0;
          if i > 0 then Numerics.Sparse.Builder.add b i (i - 1) (-1.0);
          if i < n - 1 then Numerics.Sparse.Builder.add b i (i + 1) (-1.0)
        done;
        let a = Numerics.Sparse.of_builder b in
        let rhs = Array.make n 1.0 in
        let x = Numerics.Sparse.cg a rhs in
        check_close_abs ~tol:1e-6 "residual" 0.0
          (Numerics.Sparse.residual_norm a ~x ~b:rhs));
    case "bicgstab solves a nonsymmetric system" (fun () ->
        let n = 12 in
        let b = Numerics.Sparse.Builder.create ~n in
        for i = 0 to n - 1 do
          Numerics.Sparse.Builder.add b i i 4.0;
          if i > 0 then Numerics.Sparse.Builder.add b i (i - 1) (-1.0);
          if i < n - 1 then Numerics.Sparse.Builder.add b i (i + 1) (-2.0)
        done;
        let a = Numerics.Sparse.of_builder b in
        let rhs = Array.init n (fun i -> float_of_int (i mod 3)) in
        let x = Numerics.Sparse.bicgstab a rhs in
        check_close_abs ~tol:1e-6 "residual" 0.0
          (Numerics.Sparse.residual_norm a ~x ~b:rhs)) ]

(* --- Newton --- *)

let newton_tests =
  [ case "solves a 2-D nonlinear system" (fun () ->
        (* x^2 + y^2 = 4, x = y -> x = y = sqrt 2 *)
        let residual v =
          [| (v.(0) *. v.(0)) +. (v.(1) *. v.(1)) -. 4.0; v.(0) -. v.(1) |]
        in
        let r = Numerics.Newton.solve_fd ~residual ~x0:[| 1.0; 1.2 |] () in
        Alcotest.(check bool) "converged" true r.Numerics.Newton.converged;
        check_close ~tol:1e-6 "x" (sqrt 2.0) r.Numerics.Newton.x.(0);
        check_close ~tol:1e-6 "y" (sqrt 2.0) r.Numerics.Newton.x.(1));
    case "analytic jacobian path" (fun () ->
        let residual v = [| exp v.(0) -. 2.0 |] in
        let jacobian v =
          let m = Numerics.Matrix.create ~rows:1 ~cols:1 in
          Numerics.Matrix.set m 0 0 (exp v.(0));
          m
        in
        let r = Numerics.Newton.solve ~residual ~jacobian ~x0:[| 0.0 |] () in
        Alcotest.(check bool) "converged" true r.Numerics.Newton.converged;
        check_close ~tol:1e-9 "ln2" (log 2.0) r.Numerics.Newton.x.(0));
    case "reports non-convergence" (fun () ->
        (* No root: x^2 + 1 = 0 over the reals. *)
        let residual v = [| (v.(0) *. v.(0)) +. 1.0 |] in
        let r = Numerics.Newton.solve_fd ~max_iter:25 ~residual ~x0:[| 0.5 |] () in
        Alcotest.(check bool) "not converged" false r.Numerics.Newton.converged);
    case "max_step clamps the first move" (fun () ->
        let residual v = [| v.(0) -. 100.0 |] in
        let r =
          Numerics.Newton.solve_fd ~max_iter:5 ~max_step:1.0 ~residual
            ~x0:[| 0.0 |] ()
        in
        (* After 5 unit steps the iterate cannot exceed 5. *)
        Alcotest.(check bool) "clamped" true (r.Numerics.Newton.x.(0) <= 5.0 +. 1e-9)) ]

(* --- Interp --- *)

let interp_tests =
  [ case "table1d interpolates linearly" (fun () ->
        let t = Numerics.Interp.Table1d.create [| 0.; 1.; 2. |] [| 0.; 10.; 40. |] in
        check_close "mid1" 5.0 (Numerics.Interp.Table1d.eval t 0.5);
        check_close "mid2" 25.0 (Numerics.Interp.Table1d.eval t 1.5));
    case "table1d clamps by default" (fun () ->
        let t = Numerics.Interp.Table1d.create [| 0.; 1. |] [| 1.; 3. |] in
        check_close "below" 1.0 (Numerics.Interp.Table1d.eval t (-5.0));
        check_close "above" 3.0 (Numerics.Interp.Table1d.eval t 9.0));
    case "table1d extrapolates when asked" (fun () ->
        let t =
          Numerics.Interp.Table1d.create ~extrapolation:Numerics.Interp.Extrapolate
            [| 0.; 1. |] [| 1.; 3. |]
        in
        check_close "extrap" 5.0 (Numerics.Interp.Table1d.eval t 2.0));
    case "table1d errors when asked" (fun () ->
        let t =
          Numerics.Interp.Table1d.create ~extrapolation:Numerics.Interp.Error
            [| 0.; 1. |] [| 1.; 3. |]
        in
        Alcotest.(check bool) "raises" true
          (try ignore (Numerics.Interp.Table1d.eval t 2.0); false
           with Invalid_argument _ -> true));
    case "table1d rejects non-increasing xs" (fun () ->
        Alcotest.(check bool) "raises" true
          (try ignore (Numerics.Interp.Table1d.create [| 1.; 1. |] [| 0.; 0. |]); false
           with Invalid_argument _ -> true));
    case "of_fn samples the function" (fun () ->
        let t = Numerics.Interp.Table1d.of_fn ~lo:0.0 ~hi:1.0 ~n:11 (fun x -> x *. x) in
        check_close ~tol:1e-2 "quad" 0.25 (Numerics.Interp.Table1d.eval t 0.5));
    case "table2d bilinear" (fun () ->
        let t =
          Numerics.Interp.Table2d.create ~xs:[| 0.; 1. |] ~ys:[| 0.; 1. |]
            [| [| 0.; 1. |]; [| 2.; 3. |] |]
        in
        check_close "center" 1.5 (Numerics.Interp.Table2d.eval t ~x:0.5 ~y:0.5);
        check_close "corner" 3.0 (Numerics.Interp.Table2d.eval t ~x:1.0 ~y:1.0));
    case "pchip hits the knots" (fun () ->
        let xs = [| 0.; 1.; 2.; 3. |] and ys = [| 0.; 1.; 4.; 9. |] in
        let f = Numerics.Interp.pchip ~xs ~ys in
        Array.iteri (fun i x -> check_close "knot" ys.(i) (f x)) xs);
    case "pchip preserves monotonicity" (fun () ->
        let xs = [| 0.; 1.; 2.; 3.; 4. |] in
        let ys = [| 0.; 0.1; 0.5; 2.0; 2.1 |] in
        let f = Numerics.Interp.pchip ~xs ~ys in
        let samples = Array.init 101 (fun i -> f (0.04 *. float_of_int i)) in
        check_increasing "monotone" samples) ]

(* --- Fit --- *)

let fit_tests =
  [ case "linear fit exact" (fun () ->
        let r = Numerics.Fit.linear ~xs:[| 0.; 1.; 2. |] ~ys:[| 1.; 3.; 5. |] in
        check_close "slope" 2.0 r.Numerics.Fit.slope;
        check_close "intercept" 1.0 r.Numerics.Fit.intercept;
        check_close "r2" 1.0 r.Numerics.Fit.r_squared);
    case "polynomial fit recovers a cubic" (fun () ->
        let f x = 1.0 +. (2.0 *. x) -. (0.5 *. x *. x *. x) in
        let xs = Array.init 12 (fun i -> 0.3 *. float_of_int i) in
        let ys = Array.map f xs in
        let c = Numerics.Fit.polynomial ~degree:3 ~xs ~ys in
        check_close ~tol:1e-6 "c0" 1.0 c.(0);
        check_close ~tol:1e-6 "c1" 2.0 c.(1);
        check_close_abs ~tol:1e-6 "c2" 0.0 c.(2);
        check_close ~tol:1e-6 "c3" (-0.5) c.(3));
    case "eval_polynomial is Horner" (fun () ->
        check_close "horner" 20.0 (Numerics.Fit.eval_polynomial [| 2.; 3.; 1. |] 3.0));
    case "power law recovers synthetic parameters" (fun () ->
        let a = 1.3 and b = 9.5e-5 and vt = 0.335 in
        let vs = Array.init 10 (fun i -> 0.5 +. (0.03 *. float_of_int i)) in
        let is_ = Array.map (fun v -> b *. ((v -. vt) ** a)) vs in
        let fit = Numerics.Fit.power_law ~vt_lo:0.1 ~vt_hi:0.45 vs is_ in
        check_close ~tol:1e-3 "a" a fit.Numerics.Fit.a;
        check_close ~tol:1e-2 "b" b fit.Numerics.Fit.b;
        check_close ~tol:1e-2 "vt" vt fit.Numerics.Fit.vt;
        check_close_abs ~tol:1e-4 "rms" 0.0 fit.Numerics.Fit.rms_error);
    case "power law with fixed vt" (fun () ->
        let vs = [| 0.5; 0.6; 0.7 |] in
        let is_ = Array.map (fun v -> 2.0 *. ((v -. 0.3) ** 1.5)) vs in
        let fit = Numerics.Fit.power_law_fixed_vt ~vt:0.3 ~vs ~is_ in
        check_close ~tol:1e-6 "a" 1.5 fit.Numerics.Fit.a;
        check_close ~tol:1e-6 "b" 2.0 fit.Numerics.Fit.b);
    case "fixed vt rejects samples below threshold" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Numerics.Fit.power_law_fixed_vt ~vt:0.5 ~vs:[| 0.4; 0.6 |]
                  ~is_:[| 1.0; 2.0 |]);
             false
           with Invalid_argument _ -> true)) ]

(* --- Ode --- *)

let ode_tests =
  [ case "rk4 integrates exponential decay" (fun () ->
        let f _t y = [| -.y.(0) |] in
        let events = Numerics.Ode.rk4 ~f ~t0:0.0 ~t1:1.0 ~dt:0.01 [| 1.0 |] in
        let final = List.nth events (List.length events - 1) in
        check_close ~tol:1e-6 "e^-1" (exp (-1.0)) final.Numerics.Ode.state.(0));
    case "backward euler is stable on a stiff system" (fun () ->
        (* dy/dt = -1000 y with dt far above the explicit stability limit. *)
        let f _t y = [| -1000.0 *. y.(0) |] in
        let events = Numerics.Ode.backward_euler ~f ~t0:0.0 ~t1:0.1 ~dt:0.005 [| 1.0 |] in
        let final = List.nth events (List.length events - 1) in
        check_within "decays" ~lo:0.0 ~hi:1e-3 final.Numerics.Ode.state.(0));
    case "backward euler accuracy on slow decay" (fun () ->
        let f _t y = [| -.y.(0) |] in
        let events = Numerics.Ode.backward_euler ~f ~t0:0.0 ~t1:1.0 ~dt:0.002 [| 1.0 |] in
        let final = List.nth events (List.length events - 1) in
        check_close ~tol:2e-3 "e^-1" (exp (-1.0)) final.Numerics.Ode.state.(0));
    case "first_crossing finds the threshold time" (fun () ->
        let f _t y = [| -.y.(0) |] in
        let events = Numerics.Ode.rk4 ~f ~t0:0.0 ~t1:2.0 ~dt:0.001 [| 1.0 |] in
        match
          Numerics.Ode.first_crossing ~events ~index:0 ~threshold:0.5
            ~direction:`Falling
        with
        | Some t -> check_close ~tol:1e-4 "ln2" (log 2.0) t
        | None -> Alcotest.fail "no crossing");
    case "first_crossing respects direction" (fun () ->
        let f _t y = [| -.y.(0) |] in
        let events = Numerics.Ode.rk4 ~f ~t0:0.0 ~t1:2.0 ~dt:0.01 [| 1.0 |] in
        Alcotest.(check bool) "no rising crossing" true
          (Numerics.Ode.first_crossing ~events ~index:0 ~threshold:0.5
             ~direction:`Rising
           = None)) ]

let sparse_lu_tests =
  [ case "matches dense LU on a small system" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:4 in
        let dense = Numerics.Matrix.create ~rows:4 ~cols:4 in
        List.iter
          (fun (i, j, v) ->
            Numerics.Sparse.Builder.add b i j v;
            Numerics.Matrix.add_to dense i j v)
          [ (0, 0, 4.0); (0, 1, -1.0); (1, 0, -1.0); (1, 1, 4.0); (1, 2, -1.0);
            (2, 1, -1.0); (2, 2, 4.0); (2, 3, -1.0); (3, 2, -1.0); (3, 3, 4.0) ];
        let a = Numerics.Sparse.of_builder b in
        let rhs = [| 1.0; 2.0; 3.0; 4.0 |] in
        let xs = Numerics.Sparse_lu.solve a rhs in
        let xd = Numerics.Lu.solve dense rhs in
        Array.iteri (fun i v -> check_close ~tol:1e-10 "x" xd.(i) v) xs);
    case "needs pivoting" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:2 in
        Numerics.Sparse.Builder.add b 0 1 1.0;
        Numerics.Sparse.Builder.add b 1 0 1.0;
        let a = Numerics.Sparse.of_builder b in
        let x = Numerics.Sparse_lu.solve a [| 2.0; 3.0 |] in
        check_close "x0" 3.0 x.(0);
        check_close "x1" 2.0 x.(1));
    case "raises on singular input" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:2 in
        Numerics.Sparse.Builder.add b 0 0 1.0;
        Numerics.Sparse.Builder.add b 1 0 2.0;
        let a = Numerics.Sparse.of_builder b in
        Alcotest.check_raises "singular" Numerics.Lu.Singular (fun () ->
            ignore (Numerics.Sparse_lu.solve a [| 1.0; 1.0 |])));
    case "1000-node ladder solves to machine precision" (fun () ->
        let n = 1000 in
        let b = Numerics.Sparse.Builder.create ~n in
        for i = 0 to n - 1 do
          Numerics.Sparse.Builder.add b i i 2.0;
          if i > 0 then Numerics.Sparse.Builder.add b i (i - 1) (-1.0);
          if i < n - 1 then Numerics.Sparse.Builder.add b i (i + 1) (-1.0)
        done;
        let a = Numerics.Sparse.of_builder b in
        let rhs = Array.make n 1.0 in
        let x = Numerics.Sparse_lu.solve a rhs in
        check_close_abs ~tol:1e-8 "resid" 0.0
          (Numerics.Sparse.residual_norm a ~x ~b:rhs));
    case "factorization reuse across right-hand sides" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:3 in
        List.iter (fun (i, j, v) -> Numerics.Sparse.Builder.add b i j v)
          [ (0, 0, 2.0); (1, 1, 3.0); (2, 2, 4.0); (0, 2, 1.0) ];
        let a = Numerics.Sparse.of_builder b in
        let f = Numerics.Sparse_lu.factorize a in
        let x1 = Numerics.Sparse_lu.solve_factored f [| 2.0; 3.0; 4.0 |] in
        let x2 = Numerics.Sparse_lu.solve_factored f [| 4.0; 6.0; 8.0 |] in
        Array.iteri (fun i v -> check_close "scaled" (2.0 *. x1.(i)) v) x2;
        Alcotest.(check bool) "nnz counted" true (Numerics.Sparse_lu.nnz_factors f >= 4));
    case "iter walks every stored entry" (fun () ->
        let b = Numerics.Sparse.Builder.create ~n:3 in
        Numerics.Sparse.Builder.add b 0 2 5.0;
        Numerics.Sparse.Builder.add b 2 0 7.0;
        let a = Numerics.Sparse.of_builder b in
        let seen = ref [] in
        Numerics.Sparse.iter a (fun i j v -> seen := (i, j, v) :: !seen);
        Alcotest.(check int) "two entries" 2 (List.length !seen)) ]

let sparse_lu_random_prop =
  QCheck.Test.make ~name:"sparse LU matches dense LU on random sparse systems"
    ~count:60
    QCheck.(pair (int_bound 10_000) (int_range 3 25))
    (fun (seed, n) ->
      let rng = Numerics.Rng.create ~seed in
      let b = Numerics.Sparse.Builder.create ~n in
      let dense = Numerics.Matrix.create ~rows:n ~cols:n in
      for i = 0 to n - 1 do
        let sum = ref 0.0 in
        for _ = 1 to 3 do
          let j = Numerics.Rng.int_below rng n in
          if j <> i then begin
            let v = Numerics.Rng.uniform_range rng ~lo:(-1.0) ~hi:1.0 in
            Numerics.Sparse.Builder.add b i j v;
            Numerics.Matrix.add_to dense i j v;
            sum := !sum +. abs_float v
          end
        done;
        Numerics.Sparse.Builder.add b i i (!sum +. 1.0);
        Numerics.Matrix.add_to dense i i (!sum +. 1.0)
      done;
      let a = Numerics.Sparse.of_builder b in
      let rhs = Array.init n (fun i -> float_of_int ((i mod 5) - 2)) in
      let xs = Numerics.Sparse_lu.solve a rhs in
      let xd = Numerics.Lu.solve dense rhs in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-8) xs xd)

let () =
  Alcotest.run "numerics"
    [ ("rng", rng_tests);
      ("stats", stats_tests);
      ("roots", roots_tests);
      ("matrix_lu", matrix_tests @ [ QCheck_alcotest.to_alcotest lu_roundtrip_prop ]);
      ("sparse", sparse_tests);
      ("sparse_lu", sparse_lu_tests @ [ QCheck_alcotest.to_alcotest sparse_lu_random_prop ]);
      ("newton", newton_tests);
      ("interp", interp_tests);
      ("fit", fit_tests);
      ("ode", ode_tests) ]
