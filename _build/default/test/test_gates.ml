(* Tests of the logical-effort gate models, superbuffer designer,
   decoder LUT generator, and the sense amplifier (validated against the
   circuit simulator in test_spice.ml). *)

open Testutil

let lib = Lazy.force Finfet.Library.default
let nfet = Finfet.Library.nfet lib Finfet.Library.Lvt
let pfet = Finfet.Library.pfet lib Finfet.Library.Lvt

let le = Gates.Logical_effort.inverter ~nfet ~pfet ~nfin:1

let logical_effort_tests =
  [ case "tau is positive and sub-picosecond-scale" (fun () ->
        let tau = Gates.Logical_effort.tau ~nfet ~pfet in
        check_within "tau" ~lo:1e-15 ~hi:5e-12 tau);
    case "r_eff is p-limited" (fun () ->
        Alcotest.(check bool) "pfet weaker" true
          (Gates.Logical_effort.r_eff pfet > Gates.Logical_effort.r_eff nfet));
    case "inverter has unit logical effort" (fun () ->
        check_close "g" 1.0 le.Gates.Logical_effort.g;
        check_close "p" 1.0 le.Gates.Logical_effort.p);
    case "inverter input cap scales with fins" (fun () ->
        let inv3 = Gates.Logical_effort.inverter ~nfet ~pfet ~nfin:3 in
        check_close "3x" (3.0 *. le.Gates.Logical_effort.c_in)
          inv3.Gates.Logical_effort.c_in);
    case "nand efforts follow (m+2)/3" (fun () ->
        let n2 = Gates.Logical_effort.nand ~nfet ~pfet ~inputs:2 ~nfin:1 in
        let n3 = Gates.Logical_effort.nand ~nfet ~pfet ~inputs:3 ~nfin:1 in
        check_close "g2" (4.0 /. 3.0) n2.Gates.Logical_effort.g;
        check_close "g3" (5.0 /. 3.0) n3.Gates.Logical_effort.g;
        check_close "p2" 2.0 n2.Gates.Logical_effort.p);
    case "stage delay is g h + p in tau units" (fun () ->
        let tau = Gates.Logical_effort.tau ~nfet ~pfet in
        let d =
          Gates.Logical_effort.stage_delay ~tau le
            ~c_load:(4.0 *. le.Gates.Logical_effort.c_in)
        in
        check_close "fo4" (tau *. 5.0) d);
    case "stage energy is CV^2" (fun () ->
        let e = Gates.Logical_effort.stage_energy le ~c_load:1e-15 ~vdd:0.45 in
        check_close "cv2" ((le.Gates.Logical_effort.c_par +. 1e-15) *. 0.45 *. 0.45) e);
    case "chain sums stages" (fun () ->
        let tau = Gates.Logical_effort.tau ~nfet ~pfet in
        let single =
          Gates.Logical_effort.chain ~tau ~vdd:0.45 ~stages:[ (le, 1e-15) ]
        in
        let double =
          Gates.Logical_effort.chain ~tau ~vdd:0.45 ~stages:[ (le, 0.0); (le, 1e-15) ]
        in
        Alcotest.(check bool) "longer chain is slower" true
          (double.Gates.Logical_effort.delay > single.Gates.Logical_effort.delay)) ]

let superbuffer_tests =
  [ case "paper driver constants" (fun () ->
        Alcotest.(check int) "27-fin WL driver" 27 Gates.Superbuffer.wl_driver_fins;
        Alcotest.(check int) "20-fin rail driver" 20 Gates.Superbuffer.rail_driver_fins);
    case "default WL driver is 1-3-9-27" (fun () ->
        let d = Gates.Superbuffer.default_wl_driver ~nfet ~pfet in
        Alcotest.(check (list int)) "stages" [ 1; 3; 9; 27 ]
          d.Gates.Superbuffer.stage_fins;
        Alcotest.(check int) "final" 27 (Gates.Superbuffer.final_stage_fins d));
    case "input cap is the first stage's" (fun () ->
        let d = Gates.Superbuffer.default_wl_driver ~nfet ~pfet in
        check_close "c_in" le.Gates.Logical_effort.c_in
          (Gates.Superbuffer.input_cap d));
    case "first-stages delay excludes the last stage" (fun () ->
        let d = Gates.Superbuffer.default_wl_driver ~nfet ~pfet in
        let partial = Gates.Superbuffer.first_stages_delay d in
        check_within "positive" ~lo:1e-15 ~hi:1e-10 partial);
    case "designed driver fins are sane and quantized" (fun () ->
        let d = Gates.Superbuffer.design ~nfet ~pfet ~c_load:50e-15 in
        List.iter
          (fun f -> Alcotest.(check bool) "fin >= 1" true (f >= 1))
          d.Gates.Superbuffer.stage_fins;
        Alcotest.(check bool) "at most 4 stages" true
          (List.length d.Gates.Superbuffer.stage_fins <= 4);
        check_increasing "monotone sizing"
          (Array.of_list (List.map float_of_int d.Gates.Superbuffer.stage_fins)));
    case "bigger loads get bigger final stages" (fun () ->
        let small = Gates.Superbuffer.design ~nfet ~pfet ~c_load:5e-15 in
        let large = Gates.Superbuffer.design ~nfet ~pfet ~c_load:100e-15 in
        Alcotest.(check bool) "scaling" true
          (Gates.Superbuffer.final_stage_fins large
           >= Gates.Superbuffer.final_stage_fins small)) ]

let decoder_tests =
  [ case "zero bits decode for free" (fun () ->
        let r = Gates.Decoder.decode ~nfet ~pfet ~bits:0 ~c_out:1e-15 in
        check_close_abs "d" 0.0 r.Gates.Decoder.delay;
        check_close_abs "e" 0.0 r.Gates.Decoder.energy);
    case "delay grows with address width" (fun () ->
        let delays =
          Array.init 10 (fun i ->
              (Gates.Decoder.decode ~nfet ~pfet ~bits:(i + 1) ~c_out:1e-15)
                .Gates.Decoder.delay)
        in
        check_increasing "delay(bits)" delays);
    case "delay growth is logarithmic, not linear" (fun () ->
        let d at = (Gates.Decoder.decode ~nfet ~pfet ~bits:at ~c_out:1e-15).Gates.Decoder.delay in
        (* Quadrupling the rows (8 -> 10 bits) must cost far less than 4x. *)
        check_within "buffered growth" ~lo:1.0 ~hi:1.6 (d 10 /. d 8));
    case "energy grows with address width" (fun () ->
        let energies =
          Array.init 10 (fun i ->
              (Gates.Decoder.decode ~nfet ~pfet ~bits:(i + 1) ~c_out:1e-15)
                .Gates.Decoder.energy)
        in
        check_increasing "energy(bits)" energies);
    case "characterize covers 0..max" (fun () ->
        let lut = Gates.Decoder.characterize ~nfet ~pfet ~max_bits:10 ~c_out:1e-15 in
        Alcotest.(check int) "length" 11 (Array.length lut));
    case "bigger output load costs delay" (fun () ->
        let small = Gates.Decoder.decode ~nfet ~pfet ~bits:6 ~c_out:1e-15 in
        let large = Gates.Decoder.decode ~nfet ~pfet ~bits:6 ~c_out:40e-15 in
        Alcotest.(check bool) "load" true
          (large.Gates.Decoder.delay > small.Gates.Decoder.delay)) ]

let sense_amp_tests =
  [ case "node cap and gm are positive" (fun () ->
        let sa = Gates.Sense_amp.default ~nfet ~pfet in
        check_within "cap" ~lo:1e-18 ~hi:1e-14 (Gates.Sense_amp.node_cap sa);
        check_within "gm" ~lo:1e-9 ~hi:1e-2 (Gates.Sense_amp.gm sa));
    case "delay decreases with input split" (fun () ->
        let sa = Gates.Sense_amp.default ~nfet ~pfet in
        let d1 = Gates.Sense_amp.delay sa ~delta_v:0.060 in
        let d2 = Gates.Sense_amp.delay sa ~delta_v:0.120 in
        Alcotest.(check bool) "smaller split slower" true (d1 > d2));
    case "delay is logarithmic in the split" (fun () ->
        let sa = Gates.Sense_amp.default ~nfet ~pfet in
        let tau = Gates.Sense_amp.node_cap sa /. Gates.Sense_amp.gm sa in
        let d1 = Gates.Sense_amp.delay sa ~delta_v:0.060 in
        let d2 = Gates.Sense_amp.delay sa ~delta_v:0.120 in
        check_close ~tol:1e-6 "ln 2 gap" (tau *. log 2.0) (d1 -. d2));
    case "analytic delay agrees with the simulated latch" (fun () ->
        (* Regeneration time constant from the transient: measure how long
           the latch takes to widen its split from dv to 2 dv and compare
           against C/gm ln 2. *)
        let sa = Gates.Sense_amp.default ~nfet ~pfet in
        let netlist, a, b = Gates.Sense_amp.build_netlist sa ~delta_v:0.02 in
        let vdd = Finfet.Tech.vdd_nominal in
        let tr =
          Spice.Transient.run ~t_stop:40e-12
            ~ic:[ (a, (0.5 *. vdd) +. 0.01); (b, (0.5 *. vdd) -. 0.01) ]
            netlist
        in
        let times = tr.Spice.Transient.times in
        let va = Spice.Transient.node_trace tr a in
        let vb = Spice.Transient.node_trace tr b in
        let split k = va.(k) -. vb.(k) in
        let find_split target =
          let rec go k =
            if k >= Array.length times then None
            else if split k >= target then Some times.(k)
            else go (k + 1)
          in
          go 0
        in
        (match (find_split 0.02, find_split 0.04) with
         | Some t1, Some t2 ->
           let tau_model = Gates.Sense_amp.node_cap sa /. Gates.Sense_amp.gm sa in
           let tau_sim = (t2 -. t1) /. log 2.0 in
           check_within "tau ratio" ~lo:0.4 ~hi:2.5 (tau_sim /. tau_model)
         | _ -> Alcotest.fail "latch did not regenerate"));
    case "energy scales with vdd^2" (fun () ->
        let sa = Gates.Sense_amp.default ~nfet ~pfet in
        check_close "quadratic"
          (4.0 *. Gates.Sense_amp.energy sa ~vdd:0.45)
          (Gates.Sense_amp.energy sa ~vdd:0.90)) ]

let gate_sim_tests =
  [ case "inverter chain switches and has finite delay" (fun () ->
        let built =
          Gates.Gate_sim.build_inverter_chain ~nfet ~pfet ~fins:[ 1; 3 ]
            ~c_load:2e-15
        in
        let d = Gates.Gate_sim.measure_delay built in
        check_within "delay" ~lo:1e-13 ~hi:1e-10 d);
    case "nand2 stage switches" (fun () ->
        let built =
          Gates.Gate_sim.build_nand2_stage ~nfet ~pfet ~nfin:1 ~c_load:2e-15
        in
        check_within "delay" ~lo:1e-13 ~hi:1e-10
          (Gates.Gate_sim.measure_delay built));
    case "logical effort matches the transistor-level superbuffer" (fun () ->
        (* The paper: the driver design is "derived analytically and
           verified by SPICE simulations" — this is that check. *)
        let driver = Gates.Superbuffer.default_wl_driver ~nfet ~pfet in
        List.iter
          (fun c_load ->
            let sim = Gates.Gate_sim.superbuffer_simulated_delay driver ~c_load in
            let model = Gates.Gate_sim.superbuffer_model_delay driver ~c_load in
            check_within "sim/model" ~lo:0.6 ~hi:1.4 (sim /. model))
          [ 5e-15; 20e-15; 50e-15 ]);
    case "simulated delay grows with load" (fun () ->
        let driver = Gates.Superbuffer.default_wl_driver ~nfet ~pfet in
        let d5 = Gates.Gate_sim.superbuffer_simulated_delay driver ~c_load:5e-15 in
        let d50 = Gates.Gate_sim.superbuffer_simulated_delay driver ~c_load:50e-15 in
        Alcotest.(check bool) "monotone" true (d50 > 1.5 *. d5));
    case "longer chains invert accordingly (odd vs even switch direction)" (fun () ->
        (* Both parities must still produce a measurable delay. *)
        List.iter
          (fun fins ->
            let built =
              Gates.Gate_sim.build_inverter_chain ~nfet ~pfet ~fins ~c_load:1e-15
            in
            check_within "delay" ~lo:1e-13 ~hi:1e-10
              (Gates.Gate_sim.measure_delay built))
          [ [ 1 ]; [ 1; 2 ]; [ 1; 2; 4 ] ]) ]

let decoder_sim_tests =
  [ case "structural decoder path switches at every width" (fun () ->
        List.iter
          (fun bits ->
            check_within "delay" ~lo:1e-12 ~hi:1e-10
              (Gates.Gate_sim.decoder_simulated_delay ~nfet ~pfet ~bits
                 ~c_out:1e-15))
          [ 2; 4; 6 ]);
    case "LE decoder LUT tracks the transistor-level path within 3x" (fun () ->
        (* The LUT assumes optimally inserted buffers; the structural path
           is minimally sized, so it bounds the model from above. *)
        List.iter
          (fun bits ->
            let sim =
              Gates.Gate_sim.decoder_simulated_delay ~nfet ~pfet ~bits ~c_out:1e-15
            in
            let model =
              (Gates.Decoder.decode ~nfet ~pfet ~bits ~c_out:1e-15).Gates.Decoder.delay
            in
            check_within "ratio" ~lo:1.0 ~hi:3.0 (sim /. model))
          [ 2; 4; 6 ]);
    case "structural growth with width is logarithmic, like the model" (fun () ->
        let d bits =
          Gates.Gate_sim.decoder_simulated_delay ~nfet ~pfet ~bits ~c_out:1e-15
        in
        (* 16x the rows costs well under 2x the decode time. *)
        check_within "log growth" ~lo:0.8 ~hi:2.0 (d 6 /. d 2)) ]

let sa_offset_tests =
  [ case "trip point sits mid-supply" (fun () ->
        check_within "trip" ~lo:0.15 ~hi:0.30 (Gates.Sa_offset.trip_point ~nfet ~pfet));
    case "identical devices have zero offset" (fun () ->
        let t1 = Gates.Sa_offset.trip_point ~nfet ~pfet in
        let t2 = Gates.Sa_offset.trip_point ~nfet ~pfet in
        check_close_abs ~tol:1e-6 "same" 0.0 (t1 -. t2));
    case "mismatch produces a near-zero-mean offset distribution" (fun () ->
        let s = Gates.Sa_offset.analyze ~n:60 ~nfet ~pfet () in
        check_within "mean" ~lo:(-0.01) ~hi:0.01 s.Gates.Sa_offset.mean;
        Alcotest.(check bool) "spread" true (s.Gates.Sa_offset.sigma > 0.005));
    case "required swing brackets the paper's 120 mV" (fun () ->
        let s = Gates.Sa_offset.analyze ~n:150 ~nfet ~pfet () in
        check_within "dvs" ~lo:0.080 ~hi:0.170 s.Gates.Sa_offset.required_swing);
    case "offset scales with the mismatch sigma" (fun () ->
        let small = Gates.Sa_offset.analyze ~sigma_vt:0.005 ~n:60 ~nfet ~pfet () in
        let large = Gates.Sa_offset.analyze ~sigma_vt:0.030 ~n:60 ~nfet ~pfet () in
        Alcotest.(check bool) "scales" true
          (large.Gates.Sa_offset.sigma > 3.0 *. small.Gates.Sa_offset.sigma)) ]

let () =
  Alcotest.run "gates"
    [ ("logical_effort", logical_effort_tests);
      ("superbuffer", superbuffer_tests);
      ("decoder", decoder_tests);
      ("sense_amp", sense_amp_tests);
      ("gate_sim", gate_sim_tests);
      ("decoder_sim", decoder_sim_tests);
      ("sa_offset", sa_offset_tests) ]
