(* Tests of the analytical array model: Table 1 capacitances against
   hand-evaluated formulas, Table 2 component pricing, the periphery LUTs,
   and the Table 3 / Equations (2)-(5) assembly. *)

open Testutil

let lib = Lazy.force Finfet.Library.default

let dcaps =
  Array_model.Caps.device_caps_of
    ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
    ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
    ()

let geometry_tests =
  [ case "create validates powers of two" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Array_model.Geometry.create ~nr:48 ~nc:64 ~n_pre:1 ~n_wr:1 ());
             false
           with Invalid_argument _ -> true));
    case "create validates fin counts" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Array_model.Geometry.create ~nr:64 ~nc:64 ~n_pre:0 ~n_wr:1 ());
             false
           with Invalid_argument _ -> true));
    case "capacity and address widths" (fun () ->
        let g = Array_model.Geometry.create ~nr:128 ~nc:256 ~n_pre:4 ~n_wr:2 () in
        Alcotest.(check int) "bits" 32768 (Array_model.Geometry.capacity_bits g);
        Alcotest.(check int) "row bits" 7 (Array_model.Geometry.row_address_bits g);
        Alcotest.(check int) "col bits" 2 (Array_model.Geometry.column_address_bits g);
        Alcotest.(check bool) "mux" true (Array_model.Geometry.has_column_mux g));
    case "no column mux when nc <= w" (fun () ->
        let g = Array_model.Geometry.create ~nr:128 ~nc:64 ~n_pre:4 ~n_wr:2 () in
        Alcotest.(check int) "col bits" 0 (Array_model.Geometry.column_address_bits g);
        Alcotest.(check bool) "mux" false (Array_model.Geometry.has_column_mux g));
    case "area and aspect ratio follow the cell footprint" (fun () ->
        let g = Array_model.Geometry.create ~nr:64 ~nc:64 ~n_pre:1 ~n_wr:1 () in
        (* Equal counts: aspect = width / height per cell = 2.5. *)
        check_close "aspect" 2.5 (Array_model.Geometry.aspect_ratio g);
        check_close "area"
          (64.0 *. Finfet.Tech.cell_width *. 64.0 *. Finfet.Tech.cell_height)
          (Array_model.Geometry.area g));
    case "is_power_of_two" (fun () ->
        Alcotest.(check bool) "64" true (Array_model.Geometry.is_power_of_two 64);
        Alcotest.(check bool) "0" false (Array_model.Geometry.is_power_of_two 0);
        Alcotest.(check bool) "63" false (Array_model.Geometry.is_power_of_two 63)) ]

(* Hand evaluation of Table 1 for a reference geometry. *)
let g_mux = Array_model.Geometry.create ~nr:128 ~nc:256 ~n_pre:5 ~n_wr:3 ()
let g_nomux = Array_model.Geometry.create ~nr:128 ~nc:64 ~n_pre:5 ~n_wr:3 ()

let caps_tests =
  let cw = Finfet.Tech.c_width and ch = Finfet.Tech.c_height in
  let { Array_model.Caps.c_dn; c_dp; c_gn; c_gp; c_width = _; c_height = _ } = dcaps in
  [ case "C_CVDD formula" (fun () ->
        check_close "cvdd"
          ((256.0 *. (cw +. (2.0 *. c_dp))) +. (2.0 *. 20.0 *. c_dp))
          (Array_model.Caps.cvdd dcaps g_mux));
    case "C_CVSS formula" (fun () ->
        check_close "cvss"
          ((256.0 *. (cw +. (2.0 *. c_dn))) +. (2.0 *. 20.0 *. c_dn))
          (Array_model.Caps.cvss dcaps g_mux));
    case "C_WL formula" (fun () ->
        check_close "wl"
          ((256.0 *. (cw +. (2.0 *. c_gn))) +. (27.0 *. (c_dn +. c_dp)))
          (Array_model.Caps.wl dcaps g_mux));
    case "C_COL with a mux" (fun () ->
        check_close "col"
          ((256.0 *. cw) +. (27.0 *. (c_dn +. c_dp))
           +. (2.0 *. 64.0 *. 3.0 *. (c_gn +. c_gp)))
          (Array_model.Caps.col dcaps g_mux));
    case "C_COL is zero without a mux" (fun () ->
        check_close_abs "col" 0.0 (Array_model.Caps.col dcaps g_nomux));
    case "C_BL with a mux (two transmission gates)" (fun () ->
        check_close "bl"
          ((128.0 *. (ch +. c_dn)) +. (6.0 *. c_dp)
           +. (2.0 *. 3.0 *. (c_dn +. c_dp)))
          (Array_model.Caps.bl dcaps g_mux));
    case "C_BL without a mux (write gate + equalizer)" (fun () ->
        check_close "bl"
          ((128.0 *. (ch +. c_dn)) +. (6.0 *. c_dp)
           +. (3.0 *. (c_dn +. c_dp)) +. c_dp)
          (Array_model.Caps.bl dcaps g_nomux));
    case "BL capacitance grows with rows, WL with columns" (fun () ->
        let tall = Array_model.Geometry.create ~nr:512 ~nc:64 ~n_pre:5 ~n_wr:3 () in
        Alcotest.(check bool) "bl" true
          (Array_model.Caps.bl dcaps tall > Array_model.Caps.bl dcaps g_nomux);
        Alcotest.(check bool) "wl" true
          (Array_model.Caps.wl dcaps g_mux > Array_model.Caps.wl dcaps g_nomux)) ]

let currents =
  Array_model.Currents.create ~lib ~cell_flavor:Finfet.Library.Hvt
    ~read_current_model:`Simulated

let currents_tests =
  let pfet_lvt = Finfet.Library.pfet lib Finfet.Library.Lvt in
  [ case "I_ON_PFET is the single-fin LVT PFET ON current" (fun () ->
        check_close "ion" (Finfet.Device.i_on pfet_lvt ())
          (Array_model.Currents.i_on_pfet currents));
    case "WL read current carries the 0.25 x 27 coefficient" (fun () ->
        check_close "wl"
          (0.25 *. 27.0 *. Finfet.Device.i_on pfet_lvt ())
          (Array_model.Currents.wl_read currents));
    case "column driver carries 0.33 x 27" (fun () ->
        check_close "col"
          (0.33 *. 27.0 *. Finfet.Device.i_on pfet_lvt ())
          (Array_model.Currents.col_driver currents));
    case "precharge scales with fins" (fun () ->
        check_close "pre"
          (4.0 /. 2.0)
          (Array_model.Currents.precharge currents ~n_pre:4
           /. Array_model.Currents.precharge currents ~n_pre:2));
    case "write buffer scales with fins" (fun () ->
        check_close "wr" 5.0
          (Array_model.Currents.bl_write currents ~n_wr:10
           /. Array_model.Currents.bl_write currents ~n_wr:2));
    case "transmission gate combines both polarities" (fun () ->
        let vdd = Finfet.Tech.vdd_nominal in
        let nfet_lvt = Finfet.Library.nfet lib Finfet.Library.Lvt in
        check_close "tg"
          (Finfet.Device.ids nfet_lvt ~vgs:vdd ~vds:(0.5 *. vdd)
           +. Finfet.Device.ids pfet_lvt ~vgs:vdd ~vds:(0.5 *. vdd))
          (Array_model.Currents.i_on_tg currents));
    case "read current cache is consistent" (fun () ->
        let a = Array_model.Currents.read_current currents ~vddc:0.55 ~vssc:(-0.1) in
        let b = Array_model.Currents.read_current currents ~vddc:0.55 ~vssc:(-0.1) in
        check_close "cached" a b;
        check_close ~tol:1e-6 "matches library"
          (Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.55 ~vssc:(-0.1))
          a);
    case "paper-fit model returns the analytic formula" (fun () ->
        let c =
          Array_model.Currents.create ~lib ~cell_flavor:Finfet.Library.Hvt
            ~read_current_model:`Paper_fit
        in
        check_close "fit"
          (Finfet.Calibration.paper_read_current ~vddc:0.55 ~vssc:(-0.2))
          (Array_model.Currents.read_current c ~vddc:0.55 ~vssc:(-0.2))) ]

let assist_nom = Array_model.Components.no_assist
let assist_m2 = { Array_model.Components.vddc = 0.55; vssc = -0.24; vwl = 0.55 }

let components_tests =
  [ case "unmoved rails are free" (fun () ->
        let c = Array_model.Components.cvdd dcaps currents g_mux assist_nom in
        check_close_abs "d" 0.0 c.Array_model.Components.delay;
        check_close_abs "e" 0.0 c.Array_model.Components.energy);
    case "component pricing follows Equation (1)" (fun () ->
        let c = Array_model.Components.bl_read dcaps currents g_mux assist_m2 in
        let cap = Array_model.Caps.bl dcaps g_mux in
        let i = Array_model.Currents.read_current currents ~vddc:0.55 ~vssc:(-0.24) in
        check_close "delay" (cap *. 0.12 /. i) c.Array_model.Components.delay;
        check_close "energy" (cap *. (0.55 +. 0.24) *. 0.12)
          c.Array_model.Components.energy);
    case "negative Gnd shortens the BL read delay" (fun () ->
        let slow = Array_model.Components.bl_read dcaps currents g_mux
            { assist_m2 with Array_model.Components.vssc = 0.0 } in
        let fast = Array_model.Components.bl_read dcaps currents g_mux assist_m2 in
        Alcotest.(check bool) "faster" true
          (fast.Array_model.Components.delay < 0.5 *. slow.Array_model.Components.delay));
    case "precharge read swings only Delta V_S" (fun () ->
        let rd = Array_model.Components.precharge_read dcaps currents g_mux assist_nom in
        let wr = Array_model.Components.precharge_write dcaps currents g_mux assist_nom in
        check_close "ratio"
          (Finfet.Tech.delta_v_sense /. Finfet.Tech.vdd_nominal)
          (rd.Array_model.Components.delay /. wr.Array_model.Components.delay));
    case "column component free without a mux" (fun () ->
        let c = Array_model.Components.col dcaps currents g_nomux assist_nom in
        check_close_abs "d" 0.0 c.Array_model.Components.delay) ]

let periphery = Array_model.Periphery.shared ~cell_flavor:Finfet.Library.Hvt

let periphery_tests =
  [ case "shared is memoized" (fun () ->
        let a = Array_model.Periphery.shared ~cell_flavor:Finfet.Library.Hvt in
        Alcotest.(check bool) "same" true (a == periphery));
    case "decoder LUT spans 0..max_address_bits" (fun () ->
        Alcotest.(check int) "len" (Array_model.Periphery.max_address_bits + 1)
          (Array.length periphery.Array_model.Periphery.row_decoder));
    case "write delay LUT decreases with V_WL" (fun () ->
        let d v = Array_model.Periphery.write_delay periphery ~vwl:v in
        check_decreasing "wd" [| d 0.45; d 0.50; d 0.55; d 0.60 |]);
    case "write delay clamps outside the grid" (fun () ->
        let low = Array_model.Periphery.write_delay periphery ~vwl:0.10 in
        let at_edge = Array_model.Periphery.write_delay periphery ~vwl:0.42 in
        check_close "clamped" at_edge low);
    case "leakage matches the cell analysis" (fun () ->
        check_close ~tol:0.03 "p_leak" 0.082e-9 periphery.Array_model.Periphery.p_leak_cell);
    case "sense delay positive" (fun () ->
        check_within "sa" ~lo:1e-13 ~hi:5e-11 periphery.Array_model.Periphery.sense_delay) ]

let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()

let eval_tests =
  [ case "d_array is the max of read and write" (fun () ->
        let m = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        check_close "max"
          (max m.Array_model.Array_eval.d_read m.Array_model.Array_eval.d_write)
          m.Array_model.Array_eval.d_array);
    case "Equation (3): switching mix" (fun () ->
        let m = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        check_close "mix"
          ((0.5 *. m.Array_model.Array_eval.e_read)
           +. (0.5 *. m.Array_model.Array_eval.e_write))
          m.Array_model.Array_eval.e_switching);
    case "Equation (4): leakage energy" (fun () ->
        let m = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        check_close "leak"
          (float_of_int (Array_model.Geometry.capacity_bits g_mux)
           *. periphery.Array_model.Periphery.p_leak_cell
           *. m.Array_model.Array_eval.d_array)
          m.Array_model.Array_eval.e_leakage);
    case "Equation (5): total energy" (fun () ->
        let m = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        check_close "total"
          ((0.5 *. m.Array_model.Array_eval.e_switching)
           +. m.Array_model.Array_eval.e_leakage)
          m.Array_model.Array_eval.e_total);
    case "EDP is energy times delay" (fun () ->
        let m = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        check_close "edp"
          (m.Array_model.Array_eval.e_total *. m.Array_model.Array_eval.d_array)
          m.Array_model.Array_eval.edp;
        check_close "shortcut" m.Array_model.Array_eval.edp
          (Array_model.Array_eval.edp env g_mux assist_m2));
    case "physical accounting charges more than strict" (fun () ->
        let phys =
          Array_model.Array_eval.make_env
            ~accounting:Array_model.Array_eval.Physical
            ~cell_flavor:Finfet.Library.Hvt ()
        in
        let ms = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        let mp = Array_model.Array_eval.evaluate phys g_mux assist_m2 in
        Alcotest.(check bool) "physical >= strict" true
          (mp.Array_model.Array_eval.e_read >= ms.Array_model.Array_eval.e_read));
    case "negative Gnd reduces total read delay" (fun () ->
        let slow =
          Array_model.Array_eval.evaluate env g_mux
            { assist_m2 with Array_model.Components.vssc = 0.0 }
        in
        let fast = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        Alcotest.(check bool) "faster" true
          (fast.Array_model.Array_eval.d_read < slow.Array_model.Array_eval.d_read));
    case "LVT leaks more than HVT at the same design point" (fun () ->
        let env_lvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Lvt () in
        let mh = Array_model.Array_eval.evaluate env g_mux assist_m2 in
        let ml = Array_model.Array_eval.evaluate env_lvt g_mux assist_m2 in
        check_within "20x" ~lo:15.0 ~hi:26.0
          (ml.Array_model.Array_eval.e_leakage /. ml.Array_model.Array_eval.d_array
           /. (mh.Array_model.Array_eval.e_leakage /. mh.Array_model.Array_eval.d_array)));
    case "more prechargers shorten the precharge-bound write" (fun () ->
        let few = Array_model.Geometry.create ~nr:512 ~nc:64 ~n_pre:1 ~n_wr:8 () in
        let many = Array_model.Geometry.create ~nr:512 ~nc:64 ~n_pre:40 ~n_wr:8 () in
        let mf = Array_model.Array_eval.evaluate env few assist_nom in
        let mm = Array_model.Array_eval.evaluate env many assist_nom in
        Alcotest.(check bool) "faster write" true
          (mm.Array_model.Array_eval.d_write < mf.Array_model.Array_eval.d_write));
    case "delay grows with capacity at fixed aspect" (fun () ->
        let d cap_side =
          let g = Array_model.Geometry.create ~nr:cap_side ~nc:cap_side ~n_pre:8 ~n_wr:2 () in
          (Array_model.Array_eval.evaluate env g assist_m2).Array_model.Array_eval.d_array
        in
        check_increasing ~strict:true "d(n)" [| d 64; d 128; d 256; d 512 |]) ]

let segmented_tests =
  let big = Array_model.Geometry.create ~nr:256 ~nc:512 ~n_pre:16 ~n_wr:2 () in
  [ case "one segment per access group is n_c / W" (fun () ->
        Alcotest.(check int) "natural" 8 (Array_model.Segmented.natural_segments big);
        Alcotest.(check int) "narrow row" 1
          (Array_model.Segmented.natural_segments g_nomux));
    case "invalid segment counts are rejected" (fun () ->
        Alcotest.(check bool) "too many" true
          (try
             ignore (Array_model.Segmented.wl dcaps currents big assist_m2 ~segments:16);
             false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "zero" true
          (try
             ignore (Array_model.Segmented.wl dcaps currents big assist_m2 ~segments:0);
             false
           with Invalid_argument _ -> true));
    case "more segments shorten the WL path" (fun () ->
        let d segments =
          (Array_model.Segmented.wl dcaps currents big assist_m2 ~segments)
            .Array_model.Segmented.d_total
        in
        check_decreasing ~strict:true "wl(segments)" [| d 1; d 2; d 4; d 8 |]);
    case "global line grows with segment count, local shrinks" (fun () ->
        let at segments = Array_model.Segmented.wl dcaps currents big assist_m2 ~segments in
        Alcotest.(check bool) "global" true
          ((at 8).Array_model.Segmented.c_global > (at 2).Array_model.Segmented.c_global);
        Alcotest.(check bool) "local" true
          ((at 8).Array_model.Segmented.c_local < (at 2).Array_model.Segmented.c_local));
    case "full segmentation beats the flat WL on energy" (fun () ->
        let flat = Array_model.Array_eval.evaluate env big assist_m2 in
        let seg = Array_model.Segmented.evaluate env big assist_m2 ~segments:8 in
        Alcotest.(check bool) "read energy" true
          (seg.Array_model.Array_eval.e_read < flat.Array_model.Array_eval.e_read));
    case "segmented metrics keep the Equation (2)-(5) identities" (fun () ->
        let m = Array_model.Segmented.evaluate env big assist_m2 ~segments:4 in
        check_close "max"
          (max m.Array_model.Array_eval.d_read m.Array_model.Array_eval.d_write)
          m.Array_model.Array_eval.d_array;
        check_close "edp"
          (m.Array_model.Array_eval.e_total *. m.Array_model.Array_eval.d_array)
          m.Array_model.Array_eval.edp) ]

let () =
  Alcotest.run "array_model"
    [ ("geometry", geometry_tests);
      ("caps", caps_tests);
      ("currents", currents_tests);
      ("components", components_tests);
      ("periphery", periphery_tests);
      ("array_eval", eval_tests);
      ("segmented", segmented_tests) ]
