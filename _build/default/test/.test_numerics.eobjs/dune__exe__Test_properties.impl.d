test/test_properties.ml: Alcotest Array Array_model Finfet Gen Hashtbl Int64 Lazy List Numerics Opt Printf QCheck QCheck_alcotest Spice Sram_macro Workload
