test/test_macro.mli:
