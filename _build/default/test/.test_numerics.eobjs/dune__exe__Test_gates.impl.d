test/test_gates.ml: Alcotest Array Finfet Gates Lazy List Spice Testutil
