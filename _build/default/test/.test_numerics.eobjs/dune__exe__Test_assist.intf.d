test/test_assist.mli:
