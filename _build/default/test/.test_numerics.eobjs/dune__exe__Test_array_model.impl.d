test/test_array_model.ml: Alcotest Array Array_model Finfet Lazy Testutil
