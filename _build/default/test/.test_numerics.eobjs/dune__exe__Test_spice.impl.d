test/test_spice.ml: Alcotest Array Finfet Float Gates Lazy List Option Spice String Testutil
