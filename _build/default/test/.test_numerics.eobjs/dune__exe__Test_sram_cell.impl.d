test/test_sram_cell.ml: Alcotest Array Finfet Lazy Numerics Sram_cell Testutil
