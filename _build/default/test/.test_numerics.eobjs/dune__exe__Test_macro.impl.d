test/test_macro.ml: Alcotest Array_model Finfet Int64 Opt Sram_macro Testutil Workload
