test/test_sram_cell.mli:
