test/test_core.ml: Alcotest Array Array_model Assist Filename Finfet List Opt Sram_edp String Testutil
