test/test_finfet.mli:
