test/test_workload.ml: Alcotest Finfet Lazy List Sram_cell Testutil Workload
