test/test_numerics.ml: Alcotest Array List Numerics Printf QCheck QCheck_alcotest Testutil
