test/test_extensions.ml: Alcotest Array Array_model Cache_model Finfet Float Gates Lazy List Opt Sram_cell Sram_edp Testutil
