test/test_opt.ml: Alcotest Array Array_model Finfet List Opt Sram_cell Testutil
