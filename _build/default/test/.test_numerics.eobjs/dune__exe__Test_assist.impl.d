test/test_assist.ml: Alcotest Array Array_model Assist Finfet Lazy Sram_cell Testutil
