test/test_finfet.ml: Alcotest Array Finfet Float Lazy Numerics Option QCheck QCheck_alcotest Testutil
