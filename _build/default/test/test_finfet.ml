(* Tests of the calibrated 7nm FinFET device model: every anchor the
   paper states must hold, plus physical sanity of the I-V surface. *)

open Testutil

let lib = Lazy.force Finfet.Library.default
let nfet_hvt = Finfet.Library.nfet lib Finfet.Library.Hvt
let nfet_lvt = Finfet.Library.nfet lib Finfet.Library.Lvt
let pfet_hvt = Finfet.Library.pfet lib Finfet.Library.Hvt
let pfet_lvt = Finfet.Library.pfet lib Finfet.Library.Lvt

let tech_tests =
  [ case "nominal supply is 450 mV" (fun () ->
        check_close "vdd" 0.450 Finfet.Tech.vdd_nominal);
    case "margin rule is 35% of Vdd" (fun () ->
        check_close "delta" (0.35 *. 0.45) Finfet.Tech.min_margin);
    case "cell geometry follows the layout" (fun () ->
        check_close "width" (5.0 *. 43e-9) Finfet.Tech.cell_width;
        check_close "height" (0.4 *. Finfet.Tech.cell_width) Finfet.Tech.cell_height);
    case "wire capacitance of one cell width" (fun () ->
        (* 5 x 43nm x 0.17 fF/um = 36.55 aF *)
        check_close ~tol:1e-6 "c_width" 36.55e-18 Finfet.Tech.c_width;
        check_close ~tol:1e-6 "c_height" (0.4 *. 36.55e-18) Finfet.Tech.c_height);
    case "sense swing is 120 mV" (fun () ->
        check_close "dvs" 0.120 Finfet.Tech.delta_v_sense) ]

let device_tests =
  [ case "zero current at vds = 0" (fun () ->
        check_close_abs "ids0" 0.0 (Finfet.Device.ids nfet_hvt ~vgs:0.45 ~vds:0.0));
    case "current monotone in vgs" (fun () ->
        let samples =
          Array.init 30 (fun i ->
              Finfet.Device.ids nfet_hvt ~vgs:(0.02 *. float_of_int i) ~vds:0.45)
        in
        check_increasing ~strict:true "ids(vgs)" samples);
    case "current monotone in vds" (fun () ->
        let samples =
          Array.init 30 (fun i ->
              Finfet.Device.ids nfet_hvt ~vgs:0.45 ~vds:(0.02 *. float_of_int (i + 1)))
        in
        check_increasing ~strict:true "ids(vds)" samples);
    case "saturation flattens the vds dependence" (fun () ->
        let i1 = Finfet.Device.ids nfet_lvt ~vgs:0.45 ~vds:0.40 in
        let i2 = Finfet.Device.ids nfet_lvt ~vgs:0.45 ~vds:0.45 in
        check_within "saturated" ~lo:0.97 ~hi:1.0 (i1 /. i2));
    case "fin count scales current linearly" (fun () ->
        let i1 =
          Finfet.Device.drain_source_current nfet_hvt ~nfin:1 ~vg:0.45 ~vd:0.45 ~vs:0.0
        in
        let i4 =
          Finfet.Device.drain_source_current nfet_hvt ~nfin:4 ~vg:0.45 ~vd:0.45 ~vs:0.0
        in
        check_close "4 fins" (4.0 *. i1) i4);
    case "reverse conduction is antisymmetric" (fun () ->
        let fwd =
          Finfet.Device.drain_source_current nfet_hvt ~nfin:1 ~vg:0.45 ~vd:0.3 ~vs:0.1
        in
        let rev =
          Finfet.Device.drain_source_current nfet_hvt ~nfin:1 ~vg:0.45 ~vd:0.1 ~vs:0.3
        in
        (* Swapping drain and source re-references vgs to the new source,
           so magnitudes match only when the gate overdrive does; check the
           sign discipline and the exact symmetric case. *)
        Alcotest.(check bool) "signs" true (fwd > 0.0 && rev < 0.0);
        let rev_sym =
          Finfet.Device.drain_source_current nfet_hvt ~nfin:1 ~vg:0.65 ~vd:0.1 ~vs:0.3
        in
        let fwd_sym =
          Finfet.Device.drain_source_current nfet_hvt ~nfin:1 ~vg:0.65 ~vd:0.3 ~vs:0.1
        in
        check_close "antisymmetric" fwd_sym (-.rev_sym));
    case "pfet conducts with source high" (fun () ->
        let i =
          Finfet.Device.drain_source_current pfet_lvt ~nfin:1 ~vg:0.0 ~vd:0.0 ~vs:0.45
        in
        Alcotest.(check bool) "negative ids (source to drain)" true (i < 0.0));
    case "pfet off with gate high" (fun () ->
        let i =
          Finfet.Device.drain_source_current pfet_lvt ~nfin:1 ~vg:0.45 ~vd:0.0 ~vs:0.45
        in
        check_within "leakage only" ~lo:(-1e-8) ~hi:0.0 i);
    case "subthreshold swing is physically plausible" (fun () ->
        check_within "SS hvt" ~lo:55.0 ~hi:90.0 (Finfet.Device.subthreshold_swing nfet_hvt);
        check_within "SS lvt" ~lo:55.0 ~hi:90.0 (Finfet.Device.subthreshold_swing nfet_lvt));
    case "with_vt replaces the threshold" (fun () ->
        let d = Finfet.Device.with_vt nfet_hvt 0.123 in
        check_close "vt" 0.123 d.Finfet.Device.vt;
        check_close "beta kept" nfet_hvt.Finfet.Device.beta d.Finfet.Device.beta) ]

let ids_nonneg_prop =
  QCheck.Test.make ~name:"ids is nonnegative and finite over the bias box"
    ~count:300
    QCheck.(pair (float_range 0.0 0.8) (float_range 0.0 0.8))
    (fun (vgs, vds) ->
      let i = Finfet.Device.ids nfet_hvt ~vgs ~vds in
      i >= 0.0 && Float.is_finite i)

let calibration_tests =
  [ case "HVT read-current fit anchor at the reference point" (fun () ->
        let target = Finfet.Calibration.paper_read_current ~vddc:0.550 ~vssc:0.0 in
        let got = Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.550 ~vssc:0.0 in
        check_close ~tol:1e-3 "i_read(550,0)" target got);
    case "paper fit formula" (fun () ->
        check_close "fit" (9.5e-5 *. (0.215 ** 1.3))
          (Finfet.Calibration.paper_read_current ~vddc:0.550 ~vssc:0.0);
        check_close_abs "below threshold" 0.0
          (Finfet.Calibration.paper_read_current ~vddc:0.3 ~vssc:0.0));
    case "ION ratio LVT/HVT = 2" (fun () ->
        check_close ~tol:1e-3 "ion ratio" 2.0
          (Finfet.Device.i_on nfet_lvt () /. Finfet.Device.i_on nfet_hvt ()));
    case "IOFF ratio LVT/HVT ~ 20.6 (the paper's leakage anchors)" (fun () ->
        check_within "ioff ratio" ~lo:19.5 ~hi:21.5
          (Finfet.Device.i_off nfet_lvt () /. Finfet.Device.i_off nfet_hvt ()));
    case "ON/OFF improvement ~ 10x" (fun () ->
        check_within "on/off" ~lo:9.0 ~hi:11.5
          (Finfet.Device.on_off_ratio nfet_hvt () /. Finfet.Device.on_off_ratio nfet_lvt ()));
    case "HVT threshold is the paper's 335 mV" (fun () ->
        check_close "vt" 0.335 nfet_hvt.Finfet.Device.vt);
    case "LVT threshold is below HVT" (fun () ->
        Alcotest.(check bool) "ordering" true
          (nfet_lvt.Finfet.Device.vt < nfet_hvt.Finfet.Device.vt));
    case "alpha is the paper's 1.3 exponent" (fun () ->
        check_close "alpha" 1.3 nfet_hvt.Finfet.Device.alpha);
    case "pfet drive ratio" (fun () ->
        check_close "ratio" Finfet.Calibration.pfet_strength_ratio
          (pfet_hvt.Finfet.Device.beta /. nfet_hvt.Finfet.Device.beta));
    case "negative Gnd boosts the stack current" (fun () ->
        let i0 = Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.550 ~vssc:0.0 in
        let i1 = Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.550 ~vssc:(-0.240) in
        (* Paper quotes 4.3x; its own fit gives 2.65x; the simulated stack
           (access transistor included) lands between. *)
        check_within "boost factor" ~lo:2.5 ~hi:4.5 (i1 /. i0));
    case "stack current monotone in vssc depth" (fun () ->
        let samples =
          Array.init 9 (fun i ->
              Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.550
                ~vssc:(-0.030 *. float_of_int i))
        in
        check_increasing ~strict:true "i_read(|vssc|)" samples);
    case "stack current zero when bitline at cell ground" (fun () ->
        check_close_abs "no drive" 0.0
          (Finfet.Calibration.stack_read_current ~access:nfet_hvt
             ~pull_down:nfet_hvt ~vwl:0.45 ~vbl:0.0 ~vddc:0.45 ~vssc:0.0));
    case "power-law refit of the simulated stack is clean" (fun () ->
        let fit = Finfet.Library.fit_read_current lib Finfet.Library.Hvt in
        check_within "a" ~lo:1.1 ~hi:1.7 fit.Numerics.Fit.a;
        check_within "rms" ~lo:0.0 ~hi:0.02 fit.Numerics.Fit.rms_error);
    case "flavor string round trip" (fun () ->
        Alcotest.(check (option string)) "lvt" (Some "LVT")
          (Option.map Finfet.Library.flavor_to_string
             (Finfet.Library.flavor_of_string "lvt"));
        Alcotest.(check bool) "bad" true (Finfet.Library.flavor_of_string "xvt" = None)) ]

let variation_tests =
  [ case "sampling is deterministic per seed" (fun () ->
        let s1 =
          Finfet.Variation.sample_cell (Numerics.Rng.create ~seed:11)
            ~nfet:nfet_hvt ~pfet:pfet_hvt
        in
        let s2 =
          Finfet.Variation.sample_cell (Numerics.Rng.create ~seed:11)
            ~nfet:nfet_hvt ~pfet:pfet_hvt
        in
        check_close "same vt" s1.Finfet.Variation.pull_up_l.Finfet.Device.vt
          s2.Finfet.Variation.pull_up_l.Finfet.Device.vt);
    case "sampled thresholds stay positive" (fun () ->
        let rng = Numerics.Rng.create ~seed:12 in
        for _ = 1 to 200 do
          let d = Finfet.Variation.sample_device ~sigma_vt:0.2 rng nfet_hvt in
          Alcotest.(check bool) "positive vt" true (d.Finfet.Device.vt > 0.0)
        done);
    case "sample spread matches sigma" (fun () ->
        let rng = Numerics.Rng.create ~seed:13 in
        let vts =
          Array.init 3000 (fun _ ->
              (Finfet.Variation.sample_device ~sigma_vt:0.02 rng nfet_hvt).Finfet.Device.vt)
        in
        check_within "mu" ~lo:0.333 ~hi:0.337 (Numerics.Stats.mean vts);
        check_within "sigma" ~lo:0.018 ~hi:0.022 (Numerics.Stats.stddev vts));
    case "nominal cell carries the nominal devices" (fun () ->
        let c = Finfet.Variation.nominal_cell ~nfet:nfet_hvt ~pfet:pfet_hvt in
        check_close "pd vt" nfet_hvt.Finfet.Device.vt
          c.Finfet.Variation.pull_down_l.Finfet.Device.vt;
        check_close "pu vt" pfet_hvt.Finfet.Device.vt
          c.Finfet.Variation.pull_up_r.Finfet.Device.vt) ]

let iv_table_tests =
  let table = Finfet.Iv_table.build nfet_hvt in
  [ case "tabulated model matches the compact model within 3%" (fun () ->
        check_within "max err" ~lo:0.0 ~hi:0.03
          (Finfet.Iv_table.max_relative_error table nfet_hvt));
    case "zero at non-positive vds like the compact model" (fun () ->
        check_close_abs "zero" 0.0 (Finfet.Iv_table.ids table ~vgs:0.45 ~vds:0.0);
        check_close_abs "negative" 0.0 (Finfet.Iv_table.ids table ~vgs:0.45 ~vds:(-0.1)));
    case "ON current interpolates accurately" (fun () ->
        check_close ~tol:0.02 "ion" (Finfet.Device.i_on nfet_hvt ())
          (Finfet.Iv_table.ids table ~vgs:0.45 ~vds:0.45));
    case "subthreshold decades interpolate accurately" (fun () ->
        let exact = Finfet.Device.ids nfet_hvt ~vgs:0.1 ~vds:0.3 in
        check_close ~tol:0.05 "sub" exact
          (Finfet.Iv_table.ids table ~vgs:0.1 ~vds:0.3));
    case "clamping beyond the grid" (fun () ->
        let edge = Finfet.Iv_table.ids table ~vgs:0.85 ~vds:0.85 in
        check_close ~tol:1e-6 "clamped" edge
          (Finfet.Iv_table.ids table ~vgs:1.2 ~vds:1.2)) ]

let () =
  Alcotest.run "finfet"
    [ ("tech", tech_tests);
      ("device", device_tests @ [ QCheck_alcotest.to_alcotest ids_nonneg_prop ]);
      ("calibration", calibration_tests);
      ("variation", variation_tests);
      ("iv_table", iv_table_tests) ]
