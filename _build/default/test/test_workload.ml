(* Tests of the workload-trace extension and the thermal derating model. *)

open Testutil

let trace_tests =
  [ case "generation is deterministic per seed" (fun () ->
        let p = Workload.Trace.Uniform { activity = 0.5; read_fraction = 0.5 } in
        let a = Workload.Trace.generate ~seed:3 p ~length:500 in
        let b = Workload.Trace.generate ~seed:3 p ~length:500 in
        Alcotest.(check bool) "equal" true (a = b));
    case "uniform profile hits its parameters" (fun () ->
        let p = Workload.Trace.Uniform { activity = 0.6; read_fraction = 0.8 } in
        let s = Workload.Trace.characterize (Workload.Trace.generate ~seed:4 p ~length:50_000) in
        check_within "alpha" ~lo:0.58 ~hi:0.62 s.Workload.Trace.alpha;
        check_within "beta" ~lo:0.78 ~hi:0.82 s.Workload.Trace.beta);
    case "counts add up" (fun () ->
        let p = Workload.Trace.Uniform { activity = 0.3; read_fraction = 0.5 } in
        let t = Workload.Trace.generate ~seed:5 p ~length:1000 in
        let s = Workload.Trace.characterize t in
        Alcotest.(check int) "sum" 1000
          (s.Workload.Trace.reads + s.Workload.Trace.writes + s.Workload.Trace.idles);
        Alcotest.(check int) "cycles" 1000 s.Workload.Trace.cycles);
    case "bursty profile has the right duty cycle" (fun () ->
        let p = Workload.Trace.Bursty { burst = 10; idle = 30; read_fraction = 1.0 } in
        let s = Workload.Trace.characterize (Workload.Trace.generate ~seed:6 p ~length:4000) in
        check_close ~tol:1e-6 "duty" 0.25 s.Workload.Trace.alpha;
        check_close "all reads" 1.0 s.Workload.Trace.beta);
    case "phased profiles mix their segments" (fun () ->
        let p =
          Workload.Trace.Phased
            [ (Workload.Trace.Uniform { activity = 1.0; read_fraction = 1.0 }, 100);
              (Workload.Trace.Uniform { activity = 0.0; read_fraction = 0.5 }, 100) ]
        in
        let s = Workload.Trace.characterize (Workload.Trace.generate ~seed:7 p ~length:2000) in
        check_close ~tol:1e-6 "half active" 0.5 s.Workload.Trace.alpha);
    case "an all-idle trace defaults beta to 0.5" (fun () ->
        let p = Workload.Trace.Uniform { activity = 0.0; read_fraction = 0.9 } in
        let s = Workload.Trace.characterize (Workload.Trace.generate p ~length:100) in
        check_close "beta" 0.5 s.Workload.Trace.beta;
        check_close_abs "alpha" 0.0 s.Workload.Trace.alpha);
    case "named suite covers the corners" (fun () ->
        Alcotest.(check int) "five profiles" 5 (List.length Workload.Trace.named_profiles)) ]

let sensitivity_tests =
  [ case "study returns one row per named profile" (fun () ->
        let rows = Workload.Sensitivity.study ~length:2_000 ~capacity_bits:(1024 * 8) () in
        Alcotest.(check int) "rows" (List.length Workload.Trace.named_profiles)
          (List.length rows));
    case "low-activity workloads amplify the HVT advantage" (fun () ->
        let rows = Workload.Sensitivity.study ~length:5_000 ~capacity_bits:(4096 * 8) () in
        let adv name =
          (List.find
             (fun (r : Workload.Sensitivity.study_row) ->
               r.Workload.Sensitivity.name = name)
             rows)
            .Workload.Sensitivity.hvt_advantage
        in
        Alcotest.(check bool) "idle >> paper" true
          (adv "low-activity" > adv "paper" +. 0.15)) ]

let lib = Lazy.force Finfet.Library.default
let nfet_hvt = Finfet.Library.nfet lib Finfet.Library.Hvt

let thermal_tests =
  [ case "reference temperature is the identity" (fun () ->
        let d = Finfet.Thermal.at_temperature ~celsius:Finfet.Thermal.t_ref_celsius nfet_hvt in
        check_close "vt" nfet_hvt.Finfet.Device.vt d.Finfet.Device.vt;
        check_close "beta" nfet_hvt.Finfet.Device.beta d.Finfet.Device.beta;
        check_close "swing" nfet_hvt.Finfet.Device.s_smooth d.Finfet.Device.s_smooth);
    case "heat lowers Vt and drive, softens the swing" (fun () ->
        let hot = Finfet.Thermal.at_temperature ~celsius:125.0 nfet_hvt in
        Alcotest.(check bool) "vt down" true (hot.Finfet.Device.vt < nfet_hvt.Finfet.Device.vt);
        Alcotest.(check bool) "beta down" true (hot.Finfet.Device.beta < nfet_hvt.Finfet.Device.beta);
        Alcotest.(check bool) "swing up" true
          (hot.Finfet.Device.s_smooth > nfet_hvt.Finfet.Device.s_smooth));
    case "vt shift follows the -0.7 mV/K coefficient" (fun () ->
        let hot = Finfet.Thermal.at_temperature ~celsius:125.0 nfet_hvt in
        check_close ~tol:1e-9 "dvt"
          (nfet_hvt.Finfet.Device.vt +. (Finfet.Thermal.dvt_dt *. 100.0))
          hot.Finfet.Device.vt);
    case "leakage grows strongly with temperature" (fun () ->
        let leak celsius =
          let f = Finfet.Thermal.at_temperature ~celsius in
          let cell =
            Finfet.Variation.nominal_cell ~nfet:(f nfet_hvt)
              ~pfet:(f (Finfet.Library.pfet lib Finfet.Library.Hvt))
          in
          Sram_cell.Leakage.power ~cell ()
        in
        check_within "85C" ~lo:5.0 ~hi:100.0 (leak 85.0 /. leak 25.0);
        Alcotest.(check bool) "monotone" true (leak 125.0 > leak 85.0));
    case "the LVT/HVT leakage ratio narrows when hot" (fun () ->
        let ratio celsius =
          let f = Finfet.Thermal.at_temperature ~celsius in
          let cell flavor =
            Finfet.Variation.nominal_cell
              ~nfet:(f (Finfet.Library.nfet lib flavor))
              ~pfet:(f (Finfet.Library.pfet lib flavor))
          in
          Sram_cell.Leakage.power ~cell:(cell Finfet.Library.Lvt) ()
          /. Sram_cell.Leakage.power ~cell:(cell Finfet.Library.Hvt) ()
        in
        Alcotest.(check bool) "narrows" true (ratio 125.0 < ratio 25.0));
    case "cell derating touches all six transistors" (fun () ->
        let cell =
          Finfet.Variation.nominal_cell ~nfet:nfet_hvt
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
        in
        let hot = Finfet.Thermal.cell_at_temperature ~celsius:125.0 cell in
        Alcotest.(check bool) "pu" true
          (hot.Finfet.Variation.pull_up_l.Finfet.Device.vt
           < cell.Finfet.Variation.pull_up_l.Finfet.Device.vt);
        Alcotest.(check bool) "ax" true
          (hot.Finfet.Variation.access_r.Finfet.Device.vt
           < cell.Finfet.Variation.access_r.Finfet.Device.vt));
    case "out-of-range temperatures are rejected" (fun () ->
        Alcotest.(check bool) "asserts" true
          (try
             ignore (Finfet.Thermal.at_temperature ~celsius:200.0 nfet_hvt);
             false
           with Assert_failure _ -> true)) ]

let () =
  Alcotest.run "workload_thermal"
    [ ("trace", trace_tests);
      ("sensitivity", sensitivity_tests);
      ("thermal", thermal_tests) ]
