(* Tests of the circuit-simulation substrate: netlist hygiene, DC
   operating points against hand-solvable circuits, sweeps, and the
   backward-Euler transient against analytic RC behaviour. *)

open Testutil

let lib = Lazy.force Finfet.Library.default
let nfet = Finfet.Library.nfet lib Finfet.Library.Lvt
let pfet = Finfet.Library.pfet lib Finfet.Library.Lvt

let netlist_tests =
  [ case "fresh nodes count up from 1" (fun () ->
        let n = Spice.Netlist.create () in
        Alcotest.(check int) "a" 1 (Spice.Netlist.fresh_node n "a");
        Alcotest.(check int) "b" 2 (Spice.Netlist.fresh_node n "b");
        Alcotest.(check int) "count" 3 (Spice.Netlist.num_nodes n));
    case "node names survive" (fun () ->
        let n = Spice.Netlist.create () in
        let a = Spice.Netlist.fresh_node n "alpha" in
        Alcotest.(check string) "gnd" "gnd" (Spice.Netlist.node_name n 0);
        Alcotest.(check string) "alpha" "alpha" (Spice.Netlist.node_name n a));
    case "vsource count tracks" (fun () ->
        let n = Spice.Netlist.create () in
        let a = Spice.Netlist.fresh_node n "a" in
        Spice.Netlist.vdc n ~plus:a ~minus:Spice.Netlist.ground ~volts:1.0;
        Spice.Netlist.vdc n ~plus:a ~minus:Spice.Netlist.ground ~volts:2.0;
        Alcotest.(check int) "two sources" 2 (Spice.Netlist.vsource_count n));
    case "validate rejects bad nodes" (fun () ->
        let n = Spice.Netlist.create () in
        Spice.Netlist.resistor n ~plus:5 ~minus:0 ~ohms:10.0;
        Alcotest.(check bool) "invalid" true
          (match Spice.Netlist.validate n with Error _ -> true | Ok () -> false));
    case "validate rejects non-positive resistance" (fun () ->
        let n = Spice.Netlist.create () in
        let a = Spice.Netlist.fresh_node n "a" in
        Spice.Netlist.resistor n ~plus:a ~minus:0 ~ohms:0.0;
        Alcotest.(check bool) "invalid" true
          (match Spice.Netlist.validate n with Error _ -> true | Ok () -> false));
    case "validate accepts a good netlist" (fun () ->
        let n = Spice.Netlist.create () in
        let a = Spice.Netlist.fresh_node n "a" in
        Spice.Netlist.vdc n ~plus:a ~minus:0 ~volts:1.0;
        Spice.Netlist.resistor n ~plus:a ~minus:0 ~ohms:100.0;
        Alcotest.(check bool) "valid" true (Spice.Netlist.validate n = Ok ()));
    case "waveform const" (fun () ->
        check_close "const" 1.5 (Spice.Netlist.waveform_at (Spice.Netlist.Const 1.5) 99.0));
    case "waveform step ramps linearly" (fun () ->
        let w = Spice.Netlist.Step { t_delay = 1.0; t_rise = 2.0; v0 = 0.0; v1 = 4.0 } in
        check_close "before" 0.0 (Spice.Netlist.waveform_at w 0.5);
        check_close "mid" 2.0 (Spice.Netlist.waveform_at w 2.0);
        check_close "after" 4.0 (Spice.Netlist.waveform_at w 5.0);
        check_close "final" 4.0 (Spice.Netlist.waveform_final w));
    case "waveform pwl interpolates and clamps" (fun () ->
        let w = Spice.Netlist.Pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0) ] in
        check_close "interp" 1.0 (Spice.Netlist.waveform_at w 0.5);
        check_close "clamp lo" 0.0 (Spice.Netlist.waveform_at w (-1.0));
        check_close "clamp hi" 2.0 (Spice.Netlist.waveform_at w 10.0)) ]

let divider () =
  let n = Spice.Netlist.create () in
  let vin = Spice.Netlist.fresh_node n "vin" in
  let mid = Spice.Netlist.fresh_node n "mid" in
  Spice.Netlist.vdc n ~plus:vin ~minus:Spice.Netlist.ground ~volts:1.0;
  Spice.Netlist.resistor n ~plus:vin ~minus:mid ~ohms:1000.0;
  Spice.Netlist.resistor n ~plus:mid ~minus:Spice.Netlist.ground ~ohms:3000.0;
  (n, mid)

let dc_tests =
  [ case "resistor divider" (fun () ->
        let n, mid = divider () in
        let s = Spice.Dc.operating_point n in
        Alcotest.(check bool) "converged" true s.Spice.Dc.converged;
        check_close ~tol:1e-6 "3/4 volt" 0.75 (Spice.Dc.node_voltage s mid));
    case "source current of the divider" (fun () ->
        let n, _ = divider () in
        let s = Spice.Dc.operating_point n in
        (* 1 V across 4 kOhm: 0.25 mA leaves the + terminal, so the branch
           current (into +) is -0.25 mA. *)
        check_close ~tol:1e-6 "branch" (-0.25e-3) s.Spice.Dc.source_currents.(0));
    case "current source into a resistor" (fun () ->
        let n = Spice.Netlist.create () in
        let a = Spice.Netlist.fresh_node n "a" in
        Spice.Netlist.resistor n ~plus:a ~minus:Spice.Netlist.ground ~ohms:2000.0;
        Spice.Netlist.idc n ~from_node:Spice.Netlist.ground ~to_node:a ~amps:1e-3;
        let s = Spice.Dc.operating_point n in
        check_close ~tol:1e-5 "IR" 2.0 (Spice.Dc.node_voltage s a));
    case "floating node settles to ground through gmin" (fun () ->
        let n = Spice.Netlist.create () in
        let a = Spice.Netlist.fresh_node n "floating" in
        ignore a;
        let s = Spice.Dc.operating_point n in
        check_close_abs ~tol:1e-6 "float" 0.0 (Spice.Dc.node_voltage s a));
    case "inverter rails" (fun () ->
        let build vin_v =
          let n = Spice.Netlist.create () in
          let vdd = Spice.Netlist.fresh_node n "vdd" in
          let vin = Spice.Netlist.fresh_node n "vin" in
          let vout = Spice.Netlist.fresh_node n "vout" in
          Spice.Netlist.vdc n ~plus:vdd ~minus:0 ~volts:0.45;
          Spice.Netlist.vdc n ~plus:vin ~minus:0 ~volts:vin_v;
          Spice.Netlist.fet n ~params:pfet ~gate:vin ~drain:vout ~source:vdd ();
          Spice.Netlist.fet n ~params:nfet ~gate:vin ~drain:vout ~source:0 ();
          n
        in
        let s0 = Spice.Dc.operating_point (build 0.0) in
        let s1 = Spice.Dc.operating_point (build 0.45) in
        check_close ~tol:1e-3 "out high" 0.45 (Spice.Dc.node_voltage s0 3);
        check_close_abs ~tol:1e-3 "out low" 0.0 (Spice.Dc.node_voltage s1 3));
    case "inverter VTC is monotone decreasing" (fun () ->
        let build vin_v =
          let n = Spice.Netlist.create () in
          let vdd = Spice.Netlist.fresh_node n "vdd" in
          let vin = Spice.Netlist.fresh_node n "vin" in
          let vout = Spice.Netlist.fresh_node n "vout" in
          ignore vout;
          Spice.Netlist.vdc n ~plus:vdd ~minus:0 ~volts:0.45;
          Spice.Netlist.vdc n ~plus:vin ~minus:0 ~volts:vin_v;
          Spice.Netlist.fet n ~params:pfet ~gate:vin ~drain:vout ~source:vdd ();
          Spice.Netlist.fet n ~params:nfet ~gate:vin ~drain:vout ~source:0 ();
          n
        in
        let points = Array.init 19 (fun i -> 0.025 *. float_of_int i) in
        let sols = Spice.Dc.sweep ~build ~points in
        let outs = Array.map (fun s -> Spice.Dc.node_voltage s 3) sols in
        check_decreasing "VTC" outs;
        Array.iter
          (fun s -> Alcotest.(check bool) "conv" true s.Spice.Dc.converged)
          sols);
    case "warm start reproduces cold-start solutions" (fun () ->
        let n, mid = divider () in
        let cold = Spice.Dc.operating_point n in
        let warm = Spice.Dc.operating_point ~x0:(Spice.Dc.solution_vector cold) n in
        check_close ~tol:1e-9 "same" (Spice.Dc.node_voltage cold mid)
          (Spice.Dc.node_voltage warm mid));
    case "operating_point rejects invalid netlists" (fun () ->
        let n = Spice.Netlist.create () in
        Spice.Netlist.resistor n ~plus:9 ~minus:0 ~ohms:1.0;
        Alcotest.(check bool) "raises" true
          (try ignore (Spice.Dc.operating_point n); false
           with Invalid_argument _ -> true)) ]

let rc_netlist () =
  let n = Spice.Netlist.create () in
  let vin = Spice.Netlist.fresh_node n "vin" in
  let out = Spice.Netlist.fresh_node n "out" in
  Spice.Netlist.vwave n ~plus:vin ~minus:Spice.Netlist.ground
    ~wave:(Spice.Netlist.Step { t_delay = 0.0; t_rise = 1e-12; v0 = 0.0; v1 = 1.0 });
  Spice.Netlist.resistor n ~plus:vin ~minus:out ~ohms:1000.0;
  Spice.Netlist.capacitor n ~plus:out ~minus:Spice.Netlist.ground ~farads:1e-9;
  (n, out)

let transient_tests =
  [ case "RC charge curve" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run ~t_stop:5e-6 ~ic:[ (out, 0.0) ] n in
        check_close ~tol:6e-3 "one tau" (1.0 -. exp (-1.0))
          (Spice.Transient.value_at tr ~node:out ~time:1e-6);
        check_close ~tol:2e-2 "three tau" (1.0 -. exp (-3.0))
          (Spice.Transient.value_at tr ~node:out ~time:3e-6));
    case "RC 50% crossing at tau ln 2" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run ~t_stop:5e-6 ~ic:[ (out, 0.0) ] n in
        match
          Spice.Transient.crossing_time tr ~node:out ~threshold:0.5 ~direction:`Rising
        with
        | Some t -> check_close ~tol:2e-2 "ln2 us" (log 2.0 *. 1e-6) t
        | None -> Alcotest.fail "no crossing");
    case "initial conditions pin storage nodes" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run ~t_stop:1e-9 ~ic:[ (out, 0.7) ] n in
        check_close "ic" 0.7 (Spice.Transient.node_trace tr out).(0));
    case "no crossing returns None" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run ~t_stop:1e-8 ~ic:[ (out, 0.0) ] n in
        Alcotest.(check bool) "none" true
          (Spice.Transient.crossing_time tr ~node:out ~threshold:0.99
             ~direction:`Rising
           = None));
    case "falling crossing direction" (fun () ->
        let n = Spice.Netlist.create () in
        let vin = Spice.Netlist.fresh_node n "vin" in
        let out = Spice.Netlist.fresh_node n "out" in
        Spice.Netlist.vwave n ~plus:vin ~minus:0
          ~wave:(Spice.Netlist.Step { t_delay = 0.0; t_rise = 1e-12; v0 = 1.0; v1 = 0.0 });
        Spice.Netlist.resistor n ~plus:vin ~minus:out ~ohms:1000.0;
        Spice.Netlist.capacitor n ~plus:out ~minus:0 ~farads:1e-9;
        let tr = Spice.Transient.run ~t_stop:5e-6 ~ic:[ (out, 1.0) ] n in
        match
          Spice.Transient.crossing_time tr ~node:out ~threshold:0.5 ~direction:`Falling
        with
        | Some t -> check_close ~tol:2e-2 "ln2 us" (log 2.0 *. 1e-6) t
        | None -> Alcotest.fail "no falling crossing");
    case "value_at clamps outside the window" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run ~t_stop:1e-6 ~ic:[ (out, 0.25) ] n in
        check_close "before start" 0.25
          (Spice.Transient.value_at tr ~node:out ~time:(-1.0)));
    case "source energy of an RC charge is C V^2" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run ~t_stop:10e-6 ~ic:[ (out, 0.0) ] n in
        (* 1 nF to 1 V: the source delivers C V^2 = 1 nJ (half stored,
           half dissipated in the resistor). *)
        check_close ~tol:2e-2 "cv2" 1e-9
          (Spice.Transient.source_energy tr n ~source_index:0);
        check_close ~tol:2e-2 "total" 1e-9 (Spice.Transient.delivered_energy tr n));
    case "a source charging nothing delivers nothing" (fun () ->
        let n = Spice.Netlist.create () in
        let a = Spice.Netlist.fresh_node n "a" in
        Spice.Netlist.vdc n ~plus:a ~minus:0 ~volts:1.0;
        Spice.Netlist.resistor n ~plus:a ~minus:a ~ohms:50.0;
        let tr = Spice.Transient.run ~t_stop:1e-9 n in
        check_close_abs ~tol:1e-15 "zero" 0.0 (Spice.Transient.delivered_energy tr n));
    case "cross-coupled latch regenerates (sense-amp physics)" (fun () ->
        let sa = Gates.Sense_amp.default ~nfet ~pfet in
        let netlist, a, b = Gates.Sense_amp.build_netlist sa ~delta_v:0.06 in
        let vdd = Finfet.Tech.vdd_nominal in
        let tr =
          Spice.Transient.run ~t_stop:60e-12
            ~ic:[ (a, (0.5 *. vdd) +. 0.03); (b, (0.5 *. vdd) -. 0.03) ]
            netlist
        in
        let va = Spice.Transient.node_trace tr a in
        let vb = Spice.Transient.node_trace tr b in
        let last = Array.length va - 1 in
        Alcotest.(check bool) "separated" true (va.(last) -. vb.(last) > 0.8 *. vdd *. 0.9)) ]

let integration_tests =
  let exact t = 1.0 -. exp (-.t /. 1e-6) in
  let err ?method_ dt =
    let n, out = rc_netlist () in
    let tr = Spice.Transient.run ?method_ ~dt ~t_stop:3e-6 ~ic:[ (out, 0.0) ] n in
    abs_float (Spice.Transient.value_at tr ~node:out ~time:2e-6 -. exact 2e-6)
  in
  [ case "backward Euler converges at first order" (fun () ->
        check_within "ratio" ~lo:1.7 ~hi:2.3
          (err ~method_:Spice.Transient.Backward_euler 2e-8
           /. err ~method_:Spice.Transient.Backward_euler 1e-8));
    case "trapezoidal converges at second order" (fun () ->
        check_within "ratio" ~lo:3.3 ~hi:4.7
          (err ~method_:Spice.Transient.Trapezoidal 2e-8
           /. err ~method_:Spice.Transient.Trapezoidal 1e-8));
    case "trapezoidal beats backward Euler at equal step" (fun () ->
        Alcotest.(check bool) "sharper" true
          (err ~method_:Spice.Transient.Trapezoidal 2e-8
           < 0.1 *. err ~method_:Spice.Transient.Backward_euler 2e-8));
    case "adaptive stepping is accurate with far fewer steps" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run_adaptive ~t_stop:10e-6 ~ic:[ (out, 0.0) ] n in
        Alcotest.(check bool) "fewer steps" true
          (Array.length tr.Spice.Transient.times < 250);
        check_close_abs ~tol:0.01 "accurate" (exact 2e-6)
          (Spice.Transient.value_at tr ~node:out ~time:2e-6));
    case "adaptive steps stretch on the flat tail" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run_adaptive ~t_stop:10e-6 ~ic:[ (out, 0.0) ] n in
        let times = tr.Spice.Transient.times in
        let k = Array.length times in
        let early = times.(1) -. times.(0) in
        let late = times.(k - 1) -. times.(k - 2) in
        Alcotest.(check bool) "stretch" true (late > 3.0 *. early));
    case "adaptive honours monotone time" (fun () ->
        let n, out = rc_netlist () in
        let tr = Spice.Transient.run_adaptive ~t_stop:2e-6 ~ic:[ (out, 0.0) ] n in
        check_increasing ~strict:true "time" tr.Spice.Transient.times) ]

let ac_netlist () =
  let n = Spice.Netlist.create () in
  let vin = Spice.Netlist.fresh_node n "vin" in
  let out = Spice.Netlist.fresh_node n "out" in
  Spice.Netlist.vdc n ~plus:vin ~minus:0 ~volts:0.0;
  Spice.Netlist.resistor n ~plus:vin ~minus:out ~ohms:1000.0;
  Spice.Netlist.capacitor n ~plus:out ~minus:0 ~farads:1e-9;
  (n, out)

let ac_tests =
  [ case "RC low-pass magnitude and phase at the corner" (fun () ->
        let n, out = ac_netlist () in
        let f3db = 1.0 /. (2.0 *. Float.pi *. 1000.0 *. 1e-9) in
        let p = Spice.Ac.at_frequency n ~source_index:0 ~output:out ~frequency:f3db in
        check_close ~tol:1e-3 "mag" (1.0 /. sqrt 2.0) p.Spice.Ac.magnitude;
        check_close ~tol:1e-3 "phase" (-.Float.pi /. 4.0) p.Spice.Ac.phase);
    case "dc gain of the RC is unity" (fun () ->
        let n, out = ac_netlist () in
        check_close ~tol:1e-6 "gain" 1.0 (Spice.Ac.dc_gain n ~source_index:0 ~output:out));
    case "corner extraction recovers 1/(2 pi R C)" (fun () ->
        let n, out = ac_netlist () in
        match
          Spice.Ac.corner_frequency ~points_per_decade:40 n ~source_index:0
            ~output:out ~f_start:1e3 ~f_stop:1e7
        with
        | Some f -> check_close ~tol:2e-2 "f3db" 159154.9 f
        | None -> Alcotest.fail "no corner");
    case "magnitude rolls off monotonically past the corner" (fun () ->
        let n, out = ac_netlist () in
        let points =
          Spice.Ac.sweep ~points_per_decade:5 n ~source_index:0 ~output:out
            ~f_start:1e6 ~f_stop:1e8
        in
        check_decreasing ~strict:true "rolloff"
          (Array.of_list (List.map (fun p -> p.Spice.Ac.magnitude) points)));
    case "inverter small-signal gain is negative and > 1 in magnitude" (fun () ->
        let lib = Lazy.force Finfet.Library.default in
        let nf = Finfet.Library.nfet lib Finfet.Library.Lvt in
        let pf = Finfet.Library.pfet lib Finfet.Library.Lvt in
        let n = Spice.Netlist.create () in
        let vdd = Spice.Netlist.fresh_node n "vdd" in
        let vin = Spice.Netlist.fresh_node n "vin" in
        let out = Spice.Netlist.fresh_node n "out" in
        Spice.Netlist.vdc n ~plus:vdd ~minus:0 ~volts:0.45;
        Spice.Netlist.vdc n ~plus:vin ~minus:0
          ~volts:(Gates.Sa_offset.trip_point ~nfet:nf ~pfet:pf);
        Spice.Netlist.fet n ~params:pf ~gate:vin ~drain:out ~source:vdd ();
        Spice.Netlist.fet n ~params:nf ~gate:vin ~drain:out ~source:0 ();
        Spice.Netlist.capacitor n ~plus:out ~minus:0 ~farads:1e-16;
        let gain = Spice.Ac.dc_gain n ~source_index:1 ~output:out in
        Alcotest.(check bool) "inverting" true (gain < -1.5));
    case "bad stimulus or output are rejected" (fun () ->
        let n, out = ac_netlist () in
        Alcotest.(check bool) "source" true
          (try ignore (Spice.Ac.dc_gain n ~source_index:5 ~output:out); false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "ground output" true
          (try ignore (Spice.Ac.dc_gain n ~source_index:0 ~output:0); false
           with Invalid_argument _ -> true)) ]

let deck_tests =
  [ case "engineering suffixes parse" (fun () ->
        let expect v raw =
          match Spice.Deck.parse_value raw with
          | Ok x -> check_close ~tol:1e-9 raw v x
          | Error e -> Alcotest.fail e
        in
        expect 4700.0 "4.7k";
        expect 1e-7 "0.1u";
        expect 3e6 "3meg";
        expect 2e-12 "2p";
        expect 5e-15 "5f";
        expect 1.5e-3 "1.5m";
        expect 2e9 "2g";
        expect 42.0 "42");
    case "bad values are rejected" (fun () ->
        Alcotest.(check bool) "error" true
          (match Spice.Deck.parse_value "fourk" with Error _ -> true | Ok _ -> false));
    case "a divider deck parses and solves" (fun () ->
        let deck = "VIN in 0 DC 1.0\nR1 in mid 1k\nR2 mid 0 3k\n.end\n" in
        match Spice.Deck.parse ~lib deck with
        | Error e -> Alcotest.fail e
        | Ok (n, names) ->
          let mid = Option.get (Spice.Deck.node names "mid") in
          let s = Spice.Dc.operating_point n in
          check_close ~tol:1e-6 "mid" 0.75 (Spice.Dc.node_voltage s mid));
    case "comments, blanks and .end are ignored" (fun () ->
        let deck = "* title\n\nVIN a 0 DC 1\nR1 a 0 1k\n.END\n" in
        Alcotest.(check bool) "parses" true
          (match Spice.Deck.parse ~lib deck with Ok _ -> true | Error _ -> false));
    case "fets parse with models and fins" (fun () ->
        let deck = "VDD vdd 0 DC 0.45\nVG g 0 DC 0.45\nM1 out g 0 nfet_hvt nfin=3\nM2 out g vdd pfet_lvt\n.end\n" in
        match Spice.Deck.parse ~lib deck with
        | Error e -> Alcotest.fail e
        | Ok (n, names) ->
          let out = Option.get (Spice.Deck.node names "out") in
          let s = Spice.Dc.operating_point n in
          (* Gate high: the 3-fin HVT pull-down wins against the LVT load. *)
          Alcotest.(check bool) "pulled low" true (Spice.Dc.node_voltage s out < 0.15));
    case "unknown models are reported with the line" (fun () ->
        match Spice.Deck.parse ~lib "M1 a b 0 bogus_model\n" with
        | Error e ->
          Alcotest.(check bool) "mentions model" true
            (String.length e > 0
             && (let rec has i =
                   i + 5 <= String.length e
                   && (String.sub e i 5 = "bogus" || has (i + 1))
                 in
                 has 0))
        | Ok _ -> Alcotest.fail "expected an error");
    case "pwl sources parse and drive transients" (fun () ->
        let deck = "VIN in 0 PWL(0 0 1n 1.0)\nR1 in out 1k\nC1 out 0 1n\n.end\n" in
        match Spice.Deck.parse ~lib deck with
        | Error e -> Alcotest.fail e
        | Ok (n, names) ->
          let out = Option.get (Spice.Deck.node names "out") in
          let tr = Spice.Transient.run ~t_stop:5e-6 ~ic:[ (out, 0.0) ] n in
          Alcotest.(check bool) "charges" true
            (Spice.Transient.value_at tr ~node:out ~time:5e-6 > 0.9));
    case "print/parse round trip is electrically identical" (fun () ->
        let n = Spice.Netlist.create () in
        let vdd = Spice.Netlist.fresh_node n "vdd" in
        let inp = Spice.Netlist.fresh_node n "inp" in
        let out = Spice.Netlist.fresh_node n "out" in
        Spice.Netlist.vdc n ~plus:vdd ~minus:0 ~volts:0.45;
        Spice.Netlist.vdc n ~plus:inp ~minus:0 ~volts:0.2;
        Spice.Netlist.fet n ~params:pfet ~gate:inp ~drain:out ~source:vdd ();
        Spice.Netlist.fet n ~params:nfet ~nfin:2 ~gate:inp ~drain:out ~source:0 ();
        Spice.Netlist.resistor n ~plus:out ~minus:0 ~ohms:1e6;
        let original = Spice.Dc.node_voltage (Spice.Dc.operating_point n) out in
        match Spice.Deck.parse ~lib (Spice.Deck.print n) with
        | Error e -> Alcotest.fail e
        | Ok (n2, names) ->
          let out2 = Option.get (Spice.Deck.node names "out") in
          check_close ~tol:1e-6 "same op" original
            (Spice.Dc.node_voltage (Spice.Dc.operating_point n2) out2)) ]

let () =
  Alcotest.run "spice"
    [ ("netlist", netlist_tests);
      ("dc", dc_tests);
      ("transient", transient_tests);
      ("integration", integration_tests);
      ("ac", ac_tests);
      ("deck", deck_tests) ]
