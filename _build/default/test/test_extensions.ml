(* Tests of the extension modules: column-transient validation of
   Equation (1), Monte-Carlo yield pinning, process corners, retention
   analysis, and the banked-memory level. *)

open Testutil

let lib = Lazy.force Finfet.Library.default
let nfet_hvt = Finfet.Library.nfet lib Finfet.Library.Hvt
let pfet_hvt = Finfet.Library.pfet lib Finfet.Library.Hvt
let hvt = Finfet.Variation.nominal_cell ~nfet:nfet_hvt ~pfet:pfet_hvt

let column_tests =
  [ case "analytic delay is Equation (1)" (fun () ->
        let cfg = Sram_cell.Column.default_config in
        let cond = Sram_cell.Sram6t.read ~vddc:0.55 () in
        let c = Sram_cell.Column.bl_capacitance ~cell:hvt cfg in
        let i =
          Finfet.Calibration.stack_read_current ~access:nfet_hvt
            ~pull_down:nfet_hvt ~vwl:0.45 ~vbl:0.45 ~vddc:0.55 ~vssc:0.0
        in
        check_close ~tol:1e-6 "cdv/i" (c *. 0.12 /. i)
          (Sram_cell.Column.analytic_delay ~cell:hvt cfg cond));
    case "bl capacitance matches Table 1 (no mux)" (fun () ->
        let cfg = { Sram_cell.Column.default_config with Sram_cell.Column.nr = 64 } in
        let dcaps = Array_model.Caps.device_caps_of ~nfet:nfet_hvt ~pfet:pfet_hvt () in
        let g = Array_model.Geometry.create ~nr:64 ~nc:64 ~n_pre:1 ~n_wr:1 () in
        check_close "table1" (Array_model.Caps.bl dcaps g)
          (Sram_cell.Column.bl_capacitance ~cell:hvt cfg));
    case "transient validates Equation (1) within 10% (64 rows)" (fun () ->
        let r =
          Sram_cell.Column.validate ~cell:hvt Sram_cell.Column.default_config
            (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        Alcotest.(check bool) "finite" true (Float.is_finite r.Sram_cell.Column.simulated);
        check_within "error" ~lo:(-0.10) ~hi:0.10 r.Sram_cell.Column.relative_error);
    case "negative Gnd keeps the validation tight" (fun () ->
        let r =
          Sram_cell.Column.validate ~cell:hvt Sram_cell.Column.default_config
            (Sram_cell.Sram6t.read ~vddc:0.55 ~vssc:(-0.24) ())
        in
        check_within "error" ~lo:(-0.10) ~hi:0.10 r.Sram_cell.Column.relative_error);
    case "wire resistance adds delay at long bitlines" (fun () ->
        let base =
          { Sram_cell.Column.default_config with Sram_cell.Column.nr = 256 }
        in
        let with_r =
          Sram_cell.Column.validate ~cell:hvt base (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        let without_r =
          Sram_cell.Column.validate ~cell:hvt
            { base with Sram_cell.Column.with_wire_resistance = false }
            (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        Alcotest.(check bool) "R slows" true
          (with_r.Sram_cell.Column.simulated > without_r.Sram_cell.Column.simulated));
    case "write-path pricing validates while the TG is the bottleneck" (fun () ->
        List.iter
          (fun (nr, n_wr) ->
            let config =
              { Sram_cell.Column.default_config with Sram_cell.Column.nr; n_wr }
            in
            let r = Sram_cell.Column.validate_write ~cell:hvt config in
            check_within "error" ~lo:(-0.25) ~hi:0.25
              r.Sram_cell.Column.relative_error)
          [ (64, 1); (64, 4); (256, 2) ]);
    case "wire RC breaks the write model for strong buffers on long lines" (fun () ->
        let config =
          { Sram_cell.Column.default_config with Sram_cell.Column.nr = 512; n_wr = 8 }
        in
        let r = Sram_cell.Column.validate_write ~cell:hvt config in
        Alcotest.(check bool) "analytic underestimates" true
          (r.Sram_cell.Column.relative_error > 0.3));
    case "analytic write delay follows Table 2" (fun () ->
        (* D = C_BL(N_wr) Vdd / (0.5 N_wr I_ON,TG): more fins drive harder
           but also load the bitline, so the scaling is slightly sublinear
           in 1/N_wr. *)
        let config = { Sram_cell.Column.default_config with Sram_cell.Column.n_wr = 4 } in
        let nfet_lvt = Finfet.Library.nfet lib Finfet.Library.Lvt in
        let pfet_lvt = Finfet.Library.pfet lib Finfet.Library.Lvt in
        let vdd = Finfet.Tech.vdd_nominal in
        let i_tg =
          Finfet.Device.ids nfet_lvt ~vgs:vdd ~vds:(0.5 *. vdd)
          +. Finfet.Device.ids pfet_lvt ~vgs:vdd ~vds:(0.5 *. vdd)
        in
        check_close ~tol:1e-9 "formula"
          (Sram_cell.Column.bl_capacitance ~cell:hvt config *. vdd
           /. (0.5 *. 4.0 *. i_tg))
          (Sram_cell.Column.analytic_write_delay ~cell:hvt config));
    case "segment count converges" (fun () ->
        let cond = Sram_cell.Sram6t.read ~vddc:0.55 () in
        let at segments =
          (Sram_cell.Column.validate ~cell:hvt
             { Sram_cell.Column.default_config with Sram_cell.Column.segments }
             cond).Sram_cell.Column.simulated
        in
        let d8 = at 8 and d16 = at 16 in
        check_close ~tol:0.03 "converged" d8 d16) ]

let minarray_tests =
  [ case "8x4 read: sensing works, every cell retains" (fun () ->
        let r =
          Sram_cell.Minarray.read_experiment ~cell:hvt
            (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        Alcotest.(check bool) "sensed" true (Float.is_finite r.Sram_cell.Minarray.sensed_delay);
        Alcotest.(check bool) "accessed retains" true r.Sram_cell.Minarray.accessed_retains;
        Alcotest.(check bool) "row mates retain" true r.Sram_cell.Minarray.row_mates_retain;
        Alcotest.(check bool) "unselected retain" true r.Sram_cell.Minarray.unselected_retain;
        (* Short bitlines carry a fixed startup transient, so the error
           bound is loose here; the 32-row slow test tightens it. *)
        check_within "error" ~lo:(-0.1) ~hi:0.45 r.Sram_cell.Minarray.relative_error);
    case "the experiment exercises the sparse DC path" (fun () ->
        let r =
          Sram_cell.Minarray.read_experiment ~cell:hvt
            (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        Alcotest.(check bool) "large system" true (r.Sram_cell.Minarray.unknowns >= 80));
    case "full-array write: flips the target, spares everyone else" (fun () ->
        let r = Sram_cell.Minarray.write_experiment ~cell:hvt ~vwl:0.55 () in
        Alcotest.(check bool) "flipped" true r.Sram_cell.Minarray.flipped;
        Alcotest.(check bool) "mates survive half-select" true
          r.Sram_cell.Minarray.mates_survive;
        Alcotest.(check bool) "other rows untouched" true
          r.Sram_cell.Minarray.others_survive;
        check_within "delay" ~lo:0.3e-12 ~hi:10e-12 r.Sram_cell.Minarray.write_delay);
    case "full-array write agrees with the isolated-cell LUT" (fun () ->
        let r = Sram_cell.Minarray.write_experiment ~cell:hvt ~vwl:0.55 () in
        let per = Array_model.Periphery.shared ~cell_flavor:Finfet.Library.Hvt in
        let lut = Array_model.Periphery.write_delay per ~vwl:0.55 in
        check_within "ratio" ~lo:0.5 ~hi:2.0 (r.Sram_cell.Minarray.write_delay /. lut));
    case "an under-driven word line cannot write" (fun () ->
        let r = Sram_cell.Minarray.write_experiment ~cell:hvt ~vwl:0.30 () in
        Alcotest.(check bool) "no flip" false r.Sram_cell.Minarray.flipped;
        Alcotest.(check bool) "mates still safe" true r.Sram_cell.Minarray.mates_survive);
    case "WL overdrive shortens the in-array write" (fun () ->
        let slow = Sram_cell.Minarray.write_experiment ~cell:hvt ~vwl:0.45 () in
        let fast = Sram_cell.Minarray.write_experiment ~cell:hvt ~vwl:0.60 () in
        Alcotest.(check bool) "both flip" true
          (slow.Sram_cell.Minarray.flipped && fast.Sram_cell.Minarray.flipped);
        Alcotest.(check bool) "faster" true
          (fast.Sram_cell.Minarray.write_delay < slow.Sram_cell.Minarray.write_delay));
    slow_case "32x2 read converges to the analytic delay within 15%" (fun () ->
        let r =
          Sram_cell.Minarray.read_experiment ~nr:32 ~nc:2 ~cell:hvt
            (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        check_within "error" ~lo:(-0.1) ~hi:0.15 r.Sram_cell.Minarray.relative_error;
        Alcotest.(check bool) "all retain" true
          (r.Sram_cell.Minarray.accessed_retains
           && r.Sram_cell.Minarray.row_mates_retain
           && r.Sram_cell.Minarray.unselected_retain)) ]

let yield_mc_tests =
  [ case "worst margin is deterministic and memoized" (fun () ->
        let v1 =
          Opt.Yield_mc.worst_margin ~flavor:Finfet.Library.Hvt ~vddc:0.55
            ~vssc:0.0 ~vwl:0.55 ()
        in
        let v2 =
          Opt.Yield_mc.worst_margin ~flavor:Finfet.Library.Hvt ~vddc:0.55
            ~vssc:0.0 ~vwl:0.55 ()
        in
        check_close "memo" v1 v2);
    case "stricter k lowers the worst margin" (fun () ->
        let at k =
          Opt.Yield_mc.worst_margin
            ~config:{ Opt.Yield_mc.default_config with Opt.Yield_mc.k }
            ~flavor:Finfet.Library.Hvt ~vddc:0.55 ~vssc:0.0 ~vwl:0.55 ()
        in
        Alcotest.(check bool) "monotone in k" true (at 6.0 < at 1.0));
    case "solved pins satisfy their own constraint" (fun () ->
        let cfg = { Opt.Yield_mc.default_config with Opt.Yield_mc.samples = 10 } in
        let l = Opt.Yield_mc.solve ~config:cfg ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "achieved >= 0" true
          (l.Opt.Yield_mc.achieved_margin >= -0.005);
        check_within "vddc grid" ~lo:Finfet.Tech.vdd_nominal ~hi:0.80
          l.Opt.Yield_mc.vddc_min);
    case "k-sigma (k=3, mu-k sigma >= 0) is weaker than the 35% rule" (fun () ->
        (* The paper's simplified delta = 0.35 Vdd encodes a much higher
           yield bar than raw 3-sigma positivity; MC pins land at or below
           the simplified pins. *)
        let cfg = { Opt.Yield_mc.default_config with Opt.Yield_mc.samples = 10 } in
        let mc = Opt.Yield_mc.solve ~config:cfg ~flavor:Finfet.Library.Hvt () in
        let simplified = Opt.Yield.solve ~flavor:Finfet.Library.Hvt () in
        Alcotest.(check bool) "vddc" true
          (mc.Opt.Yield_mc.vddc_min <= simplified.Opt.Yield.vddc_min);
        Alcotest.(check bool) "vwl" true
          (mc.Opt.Yield_mc.vwl_min <= simplified.Opt.Yield.vwl_min));
    case "injected levels steer the exhaustive search" (fun () ->
        let env = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt () in
        let levels =
          { Opt.Yield.vddc_min = 0.60; vwl_min = 0.60; hsnm_nominal = 0.2 }
        in
        let r =
          Opt.Exhaustive.search ~space:Opt.Space.reduced ~levels ~env
            ~capacity_bits:(1024 * 8) ~method_:Opt.Space.M2 ()
        in
        check_close "pins used" 0.60
          r.Opt.Exhaustive.best.Opt.Exhaustive.assist.Array_model.Components.vddc) ]

let corners_tests =
  [ case "TT is the identity corner" (fun () ->
        let d = Finfet.Corners.apply Finfet.Corners.TT nfet_hvt in
        check_close "vt" nfet_hvt.Finfet.Device.vt d.Finfet.Device.vt);
    case "FF lowers and SS raises thresholds" (fun () ->
        let ff = Finfet.Corners.apply Finfet.Corners.FF nfet_hvt in
        let ss = Finfet.Corners.apply Finfet.Corners.SS nfet_hvt in
        check_close "ff" (nfet_hvt.Finfet.Device.vt -. (3.0 *. Finfet.Corners.sigma_global))
          ff.Finfet.Device.vt;
        check_close "ss" (nfet_hvt.Finfet.Device.vt +. (3.0 *. Finfet.Corners.sigma_global))
          ss.Finfet.Device.vt);
    case "FS treats the polarities oppositely" (fun () ->
        let n = Finfet.Corners.apply Finfet.Corners.FS nfet_hvt in
        let p = Finfet.Corners.apply Finfet.Corners.FS pfet_hvt in
        Alcotest.(check bool) "n fast" true (n.Finfet.Device.vt < nfet_hvt.Finfet.Device.vt);
        Alcotest.(check bool) "p slow" true (p.Finfet.Device.vt > pfet_hvt.Finfet.Device.vt));
    case "FS is the worst read corner, SF the worst write corner" (fun () ->
        let rsnm corner =
          Sram_cell.Margins.read_snm ~points:41
            ~cell:(Finfet.Corners.cell corner ~nfet:nfet_hvt ~pfet:pfet_hvt)
            (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        let wm corner =
          Sram_cell.Margins.write_margin
            ~cell:(Finfet.Corners.cell corner ~nfet:nfet_hvt ~pfet:pfet_hvt)
            (Sram_cell.Sram6t.write0 ~vwl:0.55 ())
        in
        List.iter
          (fun c ->
            Alcotest.(check bool) "fs worst read" true
              (rsnm Finfet.Corners.FS <= rsnm c +. 1e-9))
          Finfet.Corners.all;
        List.iter
          (fun c ->
            Alcotest.(check bool) "sf worst write" true
              (wm Finfet.Corners.SF <= wm c +. 1e-9))
          Finfet.Corners.all);
    case "FF leaks the most, SS the least" (fun () ->
        let leak corner =
          Sram_cell.Leakage.power
            ~cell:(Finfet.Corners.cell corner ~nfet:nfet_hvt ~pfet:pfet_hvt) ()
        in
        List.iter
          (fun c ->
            Alcotest.(check bool) "ff max" true (leak Finfet.Corners.FF >= leak c);
            Alcotest.(check bool) "ss min" true (leak Finfet.Corners.SS <= leak c))
          Finfet.Corners.all) ]

let retention_tests =
  [ case "retention voltage sits below nominal" (fun () ->
        let v = Sram_cell.Retention.retention_voltage ~cell:hvt () in
        check_within "v_ret" ~lo:0.05 ~hi:0.30 v);
    case "at the retention voltage the rule just holds" (fun () ->
        let v = Sram_cell.Retention.retention_voltage ~cell:hvt () in
        let snm = Sram_cell.Margins.hold_snm ~points:41 ~cell:hvt (v +. 0.01) in
        Alcotest.(check bool) "holds just above" true (snm >= 0.35 *. (v +. 0.01) -. 2e-3));
    case "standby saves leakage" (fun () ->
        let s = Sram_cell.Retention.standby ~cell:hvt () in
        check_within "savings" ~lo:0.2 ~hi:0.9 s.Sram_cell.Retention.savings;
        Alcotest.(check bool) "rail ordering" true
          (s.Sram_cell.Retention.v_retention <= s.Sram_cell.Retention.v_standby));
    case "HVT retains slightly deeper than LVT" (fun () ->
        let lvt =
          Finfet.Variation.nominal_cell
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Lvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Lvt)
        in
        let vh = Sram_cell.Retention.retention_voltage ~cell:hvt () in
        let vl = Sram_cell.Retention.retention_voltage ~cell:lvt () in
        Alcotest.(check bool) "ordering" true (vh <= vl +. 1e-3)) ]

let env_hvt = Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()

let banked_tests =
  [ case "htree constants are positive and plausible" (fun () ->
        let t = Cache_model.Htree.of_technology ~lib in
        check_within "d/m" ~lo:1e-12 ~hi:1e-6 t.Cache_model.Htree.delay_per_m;
        check_within "e/m" ~lo:1e-12 ~hi:1e-9 t.Cache_model.Htree.energy_per_m);
    case "route length is the square-root law" (fun () ->
        check_close "sqrt" 1e-3 (Cache_model.Htree.route_length ~total_area:1e-6));
    case "banking rejects bad bank counts" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Cache_model.Banked.evaluate_banking ~space:Opt.Space.reduced
                  ~env:env_hvt ~capacity_bits:(64 * 1024 * 8)
                  ~method_:Opt.Space.M2 ~banks:3 ());
             false
           with Invalid_argument _ -> true));
    case "totals assemble from the parts" (fun () ->
        let d =
          Cache_model.Banked.evaluate_banking ~space:Opt.Space.reduced
            ~env:env_hvt ~capacity_bits:(16 * 1024 * 8) ~method_:Opt.Space.M2
            ~banks:4 ()
        in
        let bank_m = d.Cache_model.Banked.per_bank.Opt.Exhaustive.best.Opt.Exhaustive.metrics in
        check_close "delay sum"
          (d.Cache_model.Banked.d_htree +. bank_m.Array_model.Array_eval.d_array)
          d.Cache_model.Banked.d_total;
        check_close "edp" (d.Cache_model.Banked.e_total *. d.Cache_model.Banked.d_total)
          d.Cache_model.Banked.edp);
    case "more banks shorten the array component" (fun () ->
        let at banks =
          Cache_model.Banked.evaluate_banking ~space:Opt.Space.reduced
            ~env:env_hvt ~capacity_bits:(64 * 1024 * 8) ~method_:Opt.Space.M2
            ~banks ()
        in
        let b1 = at 1 and b8 = at 8 in
        Alcotest.(check bool) "faster banks" true
          (b8.Cache_model.Banked.d_total -. b8.Cache_model.Banked.d_htree
           < b1.Cache_model.Banked.d_total -. b1.Cache_model.Banked.d_htree));
    case "optimize returns the sweep minimum" (fun () ->
        let best, all =
          Cache_model.Banked.optimize ~space:Opt.Space.reduced ~max_banks:8
            ~env:env_hvt ~capacity_bits:(32 * 1024 * 8) ~method_:Opt.Space.M2 ()
        in
        List.iter
          (fun (d : Cache_model.Banked.bank_design) ->
            Alcotest.(check bool) "minimum" true
              (best.Cache_model.Banked.edp <= d.Cache_model.Banked.edp +. 1e-40))
          all) ]

let eight_t_tests =
  let eight = Sram_cell.Sram8t.of_library lib Finfet.Library.Lvt in
  [ case "read SNM equals hold SNM (decoupled port)" (fun () ->
        let vdd = Finfet.Tech.vdd_nominal in
        check_close "decoupled"
          (Sram_cell.Sram8t.hold_snm ~points:41 eight ~vdd)
          (Sram_cell.Sram8t.read_snm ~points:41 eight ~vdd));
    case "8T read stability meets the yield rule at nominal" (fun () ->
        Alcotest.(check bool) "rsnm ok" true
          (Sram_cell.Sram8t.read_snm ~points:41 eight ~vdd:Finfet.Tech.vdd_nominal
           >= Finfet.Tech.min_margin));
    case "write margin matches the 6T core's" (fun () ->
        let core =
          Finfet.Variation.nominal_cell
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Lvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Lvt)
        in
        let cond = Sram_cell.Sram6t.write0 ~vwl:0.51 () in
        check_close ~tol:1e-6 "same write port"
          (Sram_cell.Margins.write_margin ~cell:core cond)
          (Sram_cell.Sram8t.write_margin eight cond));
    case "8T leaks more than its 6T core (extra read-port path)" (fun () ->
        let core =
          Finfet.Variation.nominal_cell
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Lvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Lvt)
        in
        let p6 = Sram_cell.Leakage.power ~cell:core () in
        let p8 = Sram_cell.Sram8t.leakage_power eight in
        check_within "extra path" ~lo:(1.05 *. p6) ~hi:(2.0 *. p6) p8);
    case "negative Gnd boosts the 8T read stack" (fun () ->
        let base = Sram_cell.Sram8t.read_current eight () in
        let boosted = Sram_cell.Sram8t.read_current eight ~vssc:(-0.24) () in
        Alcotest.(check bool) "boost" true (boosted > 1.8 *. base));
    case "array comparison ranks 6T-HVT first on EDP" (fun () ->
        let rows = Sram_edp.Eight_t.compare ~capacity_bits:(16384 * 8) in
        let edp name =
          (List.find (fun (r : Sram_edp.Eight_t.comparison_row) ->
               r.Sram_edp.Eight_t.name = name) rows).Sram_edp.Eight_t.edp
        in
        Alcotest.(check bool) "hvt beats 8t" true
          (edp "6T-HVT-M2" < edp "8T-LVT");
        Alcotest.(check bool) "hvt beats lvt" true
          (edp "6T-HVT-M2" < edp "6T-LVT-M2"));
    case "8T pays the area premium" (fun () ->
        let rows = Sram_edp.Eight_t.compare ~capacity_bits:(4096 * 8) in
        let area name =
          (List.find (fun (r : Sram_edp.Eight_t.comparison_row) ->
               r.Sram_edp.Eight_t.name = name) rows).Sram_edp.Eight_t.area
        in
        check_close ~tol:0.02 "1.3x"
          (Sram_cell.Sram8t.area_factor *. area "6T-LVT-M2")
          (area "8T-LVT")) ]

let stat_timing_tests =
  [ case "distribution summary is consistent" (fun () ->
        let d = Sram_cell.Stat_timing.summarize [| 3.0; 1.0; 2.0 |] in
        check_close "mu" 2.0 d.Sram_cell.Stat_timing.mu;
        check_close "sigma" 1.0 d.Sram_cell.Stat_timing.sigma;
        check_close "sorted" 1.0 d.Sram_cell.Stat_timing.samples.(0);
        check_close "p50" 2.0 (Sram_cell.Stat_timing.percentile d ~p:50.0));
    case "current distribution is deterministic per seed" (fun () ->
        let run () =
          Sram_cell.Stat_timing.read_current_distribution ~seed:5 ~n:20
            ~nfet:nfet_hvt ~condition:(Sram_cell.Sram6t.read ~vddc:0.55 ()) ()
        in
        let a = run () and b = run () in
        check_close "mu" a.Sram_cell.Stat_timing.mu b.Sram_cell.Stat_timing.mu);
    case "mean current sits near the nominal stack" (fun () ->
        let d =
          Sram_cell.Stat_timing.read_current_distribution ~seed:6 ~n:400
            ~nfet:nfet_hvt ~condition:(Sram_cell.Sram6t.read ~vddc:0.55 ()) ()
        in
        let nominal = Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.55 ~vssc:0.0 in
        check_close ~tol:0.15 "mu" nominal d.Sram_cell.Stat_timing.mu);
    case "guardband exceeds one and covers the mean" (fun () ->
        let g =
          Sram_cell.Stat_timing.bl_delay_guardband ~cell:hvt
            ~column:Sram_cell.Column.default_config
            ~condition:(Sram_cell.Sram6t.read ~vddc:0.55 ()) ()
        in
        Alcotest.(check bool) "derate > 1" true (g.Sram_cell.Stat_timing.derate > 1.0);
        Alcotest.(check bool) "3s > mean" true
          (g.Sram_cell.Stat_timing.k_sigma_delay > g.Sram_cell.Stat_timing.mean_delay));
    case "negative Gnd shrinks the relative guardband" (fun () ->
        let at vssc =
          (Sram_cell.Stat_timing.bl_delay_guardband ~cell:hvt
             ~column:Sram_cell.Column.default_config
             ~condition:(Sram_cell.Sram6t.read ~vddc:0.55 ~vssc ())
             ())
            .Sram_cell.Stat_timing.derate
        in
        Alcotest.(check bool) "tighter" true (at (-0.24) < at 0.0)) ]

let dcdc_tests =
  [ case "no conversion means no overhead" (fun () ->
        check_close "identity" 1.0
          (Array_model.Dcdc.efficiency ~v_out:Finfet.Tech.vdd_nominal ());
        check_close "zero rail" 1.0 (Array_model.Dcdc.efficiency ~v_out:0.0 ()));
    case "boost rails land between the ratio points" (fun () ->
        (* 550 mV from 450 mV uses the 4/3 ratio (600 mV ideal). *)
        check_close ~tol:1e-6 "eta"
          (0.95 *. (0.550 /. 0.600))
          (Array_model.Dcdc.efficiency ~v_out:0.550 ()));
    case "negative rails use the inverting ratios" (fun () ->
        (* |-240| mV from the 2/3 ratio (300 mV ideal). *)
        check_close ~tol:1e-6 "eta"
          (0.95 *. (0.240 /. 0.300))
          (Array_model.Dcdc.efficiency ~v_out:(-0.240) ()));
    case "overhead is the reciprocal" (fun () ->
        check_close "inverse"
          (1.0 /. Array_model.Dcdc.efficiency ~v_out:0.55 ())
          (Array_model.Dcdc.overhead ~v_out:0.55 ()));
    case "ideal ratio hits are the most efficient" (fun () ->
        let on_ratio = Array_model.Dcdc.efficiency ~v_out:(0.45 *. 1.5) () in
        let off_ratio = Array_model.Dcdc.efficiency ~v_out:0.58 () in
        Alcotest.(check bool) "on-ratio better" true (on_ratio > off_ratio);
        check_close ~tol:1e-9 "peak" (1.0 -. Array_model.Dcdc.intrinsic_loss) on_ratio);
    case "assist_overhead takes the worst rail" (fun () ->
        let a = { Array_model.Components.vddc = 0.55; vssc = -0.24; vwl = 0.55 } in
        check_close "worst"
          (Array_model.Dcdc.overhead ~v_out:(-0.24) ())
          (Array_model.Dcdc.assist_overhead a));
    case "a no-assist configuration has unit overhead" (fun () ->
        check_close "unit" 1.0
          (Array_model.Dcdc.assist_overhead Array_model.Components.no_assist)) ]

let quantization_tests =
  [ case "continuous optimum is a lower bound" (fun () ->
        let nfet = Finfet.Library.nfet lib Finfet.Library.Lvt in
        let pfet = Finfet.Library.pfet lib Finfet.Library.Lvt in
        List.iter
          (fun c_load ->
            Alcotest.(check bool) "bound" true
              (Gates.Superbuffer.quantization_penalty ~nfet ~pfet ~c_load
               >= -0.02))
          [ 1e-15; 5e-15; 20e-15; 80e-15 ]);
    case "penalty stays small (sub-5%)" (fun () ->
        let nfet = Finfet.Library.nfet lib Finfet.Library.Lvt in
        let pfet = Finfet.Library.pfet lib Finfet.Library.Lvt in
        List.iter
          (fun c_load ->
            check_within "small" ~lo:(-0.02) ~hi:0.05
              (Gates.Superbuffer.quantization_penalty ~nfet ~pfet ~c_load))
          [ 2e-15; 10e-15; 40e-15 ]) ]

let () =
  Alcotest.run "extensions"
    [ ("column", column_tests);
      ("minarray", minarray_tests);
      ("yield_mc", yield_mc_tests);
      ("corners", corners_tests);
      ("retention", retention_tests);
      ("banked", banked_tests);
      ("eight_t", eight_t_tests);
      ("stat_timing", stat_timing_tests);
      ("dcdc", dcdc_tests);
      ("quantization", quantization_tests) ]
