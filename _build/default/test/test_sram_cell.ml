(* Tests of the 6T cell analyses: bistability, butterfly/SNM extraction,
   write margin, dynamics, leakage and Monte Carlo — including every
   cell-level anchor the paper reports. *)

open Testutil

let lib = Lazy.force Finfet.Library.default

let cell_of flavor =
  Finfet.Variation.nominal_cell
    ~nfet:(Finfet.Library.nfet lib flavor)
    ~pfet:(Finfet.Library.pfet lib flavor)

let lvt = cell_of Finfet.Library.Lvt
let hvt = cell_of Finfet.Library.Hvt
let vdd = Finfet.Tech.vdd_nominal
let delta = Finfet.Tech.min_margin

let condition_tests =
  [ case "hold condition has WL off and bitlines precharged" (fun () ->
        let c = Sram_cell.Sram6t.hold () in
        check_close_abs "wl" 0.0 c.Sram_cell.Sram6t.vwl;
        check_close "bl" vdd c.Sram_cell.Sram6t.vbl;
        check_close "vddc" vdd c.Sram_cell.Sram6t.vddc;
        check_close_abs "vssc" 0.0 c.Sram_cell.Sram6t.vssc);
    case "read condition clamps both bitlines" (fun () ->
        let c = Sram_cell.Sram6t.read ~vddc:0.55 ~vssc:(-0.1) () in
        check_close "vddc" 0.55 c.Sram_cell.Sram6t.vddc;
        check_close "vssc" (-0.1) c.Sram_cell.Sram6t.vssc;
        check_close "wl on" vdd c.Sram_cell.Sram6t.vwl;
        check_close "blb" vdd c.Sram_cell.Sram6t.vblb);
    case "write0 drives BL low and BLB high" (fun () ->
        let c = Sram_cell.Sram6t.write0 ~vwl:0.54 () in
        check_close_abs "bl" 0.0 c.Sram_cell.Sram6t.vbl;
        check_close "blb" vdd c.Sram_cell.Sram6t.vblb;
        check_close "vwl" 0.54 c.Sram_cell.Sram6t.vwl) ]

let state_tests =
  [ case "hold state is bistable" (fun () ->
        let q0, qb0 = Sram_cell.Sram6t.solve_state ~q_init:0.0 ~cell:hvt (Sram_cell.Sram6t.hold ()) in
        let q1, qb1 = Sram_cell.Sram6t.solve_state ~q_init:vdd ~cell:hvt (Sram_cell.Sram6t.hold ()) in
        Alcotest.(check bool) "lobe 0" true (q0 < 0.1 *. vdd && qb0 > 0.9 *. vdd);
        Alcotest.(check bool) "lobe 1" true (q1 > 0.9 *. vdd && qb1 < 0.1 *. vdd));
    case "read disturbs but does not flip the nominal cell" (fun () ->
        let q, qb = Sram_cell.Sram6t.solve_state ~q_init:0.0 ~cell:hvt (Sram_cell.Sram6t.read ()) in
        Alcotest.(check bool) "still holds 0" true (q < qb);
        Alcotest.(check bool) "bump above ground" true (q > 0.0));
    case "storage node cap sums the attached terminals" (fun () ->
        let c = Sram_cell.Sram6t.storage_node_cap hvt in
        let expected =
          hvt.Finfet.Variation.pull_up_l.Finfet.Device.c_drain
          +. hvt.Finfet.Variation.pull_down_l.Finfet.Device.c_drain
          +. hvt.Finfet.Variation.access_l.Finfet.Device.c_drain
          +. hvt.Finfet.Variation.pull_up_r.Finfet.Device.c_gate
          +. hvt.Finfet.Variation.pull_down_r.Finfet.Device.c_gate
        in
        check_close "cap" expected c) ]

let butterfly_tests =
  [ case "VTC is full swing and decreasing" (fun () ->
        let vtc =
          Sram_cell.Butterfly.trace_vtc ~points:41 ~cell:hvt ~side:`Left
            ~access_on:false (Sram_cell.Sram6t.hold ())
        in
        check_decreasing "vtc" vtc.Sram_cell.Butterfly.outputs;
        let n = Array.length vtc.Sram_cell.Butterfly.outputs in
        check_close ~tol:1e-2 "high end" vdd vtc.Sram_cell.Butterfly.outputs.(0);
        check_close_abs ~tol:5e-3 "low end" 0.0 vtc.Sram_cell.Butterfly.outputs.(n - 1));
    case "hold butterfly lobes are symmetric for a nominal cell" (fun () ->
        let b =
          Sram_cell.Butterfly.trace ~points:41 ~cell:hvt ~access_on:false
            (Sram_cell.Sram6t.hold ())
        in
        let snm = Sram_cell.Butterfly.snm_of_butterfly b in
        check_close ~tol:0.02 "lobes" snm.Sram_cell.Butterfly.lobe_high
          snm.Sram_cell.Butterfly.lobe_low);
    case "HSNM exceeds RSNM (access disturbance)" (fun () ->
        let h = Sram_cell.Margins.hold_snm ~points:41 ~cell:hvt vdd in
        let r = Sram_cell.Margins.read_snm ~points:41 ~cell:hvt (Sram_cell.Sram6t.read ()) in
        Alcotest.(check bool) "hsnm > rsnm" true (h > r));
    case "HSNM at nominal exceeds the yield rule (paper)" (fun () ->
        Alcotest.(check bool) "lvt" true (Sram_cell.Margins.hold_snm ~points:41 ~cell:lvt vdd > delta);
        Alcotest.(check bool) "hvt" true (Sram_cell.Margins.hold_snm ~points:41 ~cell:hvt vdd > delta));
    case "HSNM shrinks with the supply" (fun () ->
        let snms =
          Array.map
            (fun v -> Sram_cell.Margins.hold_snm ~points:41 ~cell:hvt v)
            [| 0.15; 0.25; 0.35; 0.45 |]
        in
        check_increasing ~strict:true "snm(vdd)" snms);
    case "RSNM at nominal fails the yield rule without assist (paper)" (fun () ->
        Alcotest.(check bool) "lvt" true
          (Sram_cell.Margins.read_snm ~points:41 ~cell:lvt (Sram_cell.Sram6t.read ()) < delta);
        Alcotest.(check bool) "hvt" true
          (Sram_cell.Margins.read_snm ~points:41 ~cell:hvt (Sram_cell.Sram6t.read ()) < delta));
    case "Vdd boost raises RSNM monotonically" (fun () ->
        let snms =
          Array.map
            (fun vddc ->
              Sram_cell.Margins.read_snm ~points:41 ~cell:hvt
                (Sram_cell.Sram6t.read ~vddc ()))
            [| 0.45; 0.50; 0.55; 0.60 |]
        in
        check_increasing ~strict:true "rsnm(vddc)" snms);
    case "HVT RSNM meets the rule near the paper's 550 mV boost" (fun () ->
        let at v =
          Sram_cell.Margins.read_snm ~points:61 ~cell:hvt (Sram_cell.Sram6t.read ~vddc:v ())
        in
        Alcotest.(check bool) "500 fails" true (at 0.50 < delta);
        Alcotest.(check bool) "550 passes" true (at 0.55 >= delta));
    case "HVT needs less boost than LVT (paper ordering)" (fun () ->
        let need cell =
          Numerics.Roots.bisect ~tol:1e-3
            (fun v ->
              Sram_cell.Margins.read_snm ~points:41 ~cell
                (Sram_cell.Sram6t.read ~vddc:v ())
              -. delta)
            ~lo:0.45 ~hi:0.75
        in
        Alcotest.(check bool) "ordering" true (need hvt < need lvt));
    case "WL underdrive raises RSNM" (fun () ->
        let low =
          Sram_cell.Margins.read_snm ~points:41 ~cell:hvt
            (Sram_cell.Sram6t.read ~vwl:0.30 ())
        in
        let nom =
          Sram_cell.Margins.read_snm ~points:41 ~cell:hvt (Sram_cell.Sram6t.read ())
        in
        Alcotest.(check bool) "wlud stabilizes" true (low > nom)) ]

let write_tests =
  [ case "cell flips above the minimum WL level and not below" (fun () ->
        let c = Sram_cell.Sram6t.write0 () in
        let flip = Sram_cell.Margins.minimum_flipping_vwl ~cell:hvt c in
        Alcotest.(check bool) "below holds" false
          (Sram_cell.Margins.flips_at_vwl ~cell:hvt c ~vwl:(flip -. 0.02));
        Alcotest.(check bool) "above flips" true
          (Sram_cell.Margins.flips_at_vwl ~cell:hvt c ~vwl:(flip +. 0.02)));
    case "WM at nominal WL fails the yield rule (paper)" (fun () ->
        Alcotest.(check bool) "hvt" true
          (Sram_cell.Margins.write_margin ~cell:hvt (Sram_cell.Sram6t.write0 ()) < delta));
    case "WL overdrive adds exactly its own headroom" (fun () ->
        let base = Sram_cell.Margins.write_margin ~cell:hvt (Sram_cell.Sram6t.write0 ()) in
        let boosted =
          Sram_cell.Margins.write_margin ~cell:hvt (Sram_cell.Sram6t.write0 ~vwl:0.54 ())
        in
        check_close ~tol:1e-2 "linear headroom" (base +. 0.09) boosted);
    case "HVT WM meets the rule near the paper's 540 mV overdrive" (fun () ->
        let wm v =
          Sram_cell.Margins.write_margin ~cell:hvt (Sram_cell.Sram6t.write0 ~vwl:v ())
        in
        Alcotest.(check bool) "510 fails" true (wm 0.51 < delta);
        Alcotest.(check bool) "560 passes" true (wm 0.56 >= delta));
    case "negative BL improves the write margin" (fun () ->
        let base = Sram_cell.Margins.write_margin ~cell:hvt (Sram_cell.Sram6t.write0 ()) in
        let assisted =
          Sram_cell.Margins.write_margin ~cell:hvt
            (Sram_cell.Sram6t.write0 ~vbl:(-0.10) ())
        in
        Alcotest.(check bool) "negbl helps" true (assisted > base +. 0.03)) ]

let dynamics_tests =
  [ case "write completes and the delay is picosecond-scale" (fun () ->
        let r = Sram_cell.Dynamics.write_delay ~cell:hvt (Sram_cell.Sram6t.write0 ()) in
        Alcotest.(check bool) "flipped" true r.Sram_cell.Dynamics.flipped;
        check_within "delay" ~lo:0.2e-12 ~hi:15e-12 r.Sram_cell.Dynamics.delay);
    case "WL overdrive shortens the write (Figure 5a trend)" (fun () ->
        let base = Sram_cell.Dynamics.write_delay ~cell:hvt (Sram_cell.Sram6t.write0 ()) in
        let fast =
          Sram_cell.Dynamics.write_delay ~cell:hvt (Sram_cell.Sram6t.write0 ~vwl:0.60 ())
        in
        Alcotest.(check bool) "faster" true
          (fast.Sram_cell.Dynamics.delay < base.Sram_cell.Dynamics.delay));
    case "too-low WL never flips in the window" (fun () ->
        let r =
          Sram_cell.Dynamics.write_delay ~cell:hvt (Sram_cell.Sram6t.write0 ~vwl:0.20 ())
        in
        Alcotest.(check bool) "no flip" false r.Sram_cell.Dynamics.flipped);
    case "read current matches the calibrated stack solve" (fun () ->
        let from_cell =
          Sram_cell.Dynamics.read_current ~cell:hvt (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        let from_stack = Finfet.Library.i_read lib Finfet.Library.Hvt ~vddc:0.55 ~vssc:0.0 in
        check_close ~tol:0.05 "stack vs cell" from_stack from_cell);
    case "negative Gnd boosts the cell read current" (fun () ->
        let base = Sram_cell.Dynamics.read_current ~cell:hvt (Sram_cell.Sram6t.read ()) in
        let boosted =
          Sram_cell.Dynamics.read_current ~cell:hvt
            (Sram_cell.Sram6t.read ~vssc:(-0.24) ())
        in
        Alcotest.(check bool) "boost" true (boosted > 2.0 *. base)) ]

let leakage_tests =
  [ case "LVT leakage matches the paper's 1.692 nW" (fun () ->
        check_close ~tol:0.02 "lvt" 1.692e-9 (Sram_cell.Leakage.power ~cell:lvt ()));
    case "HVT leakage matches the paper's 0.082 nW" (fun () ->
        check_close ~tol:0.03 "hvt" 0.082e-9 (Sram_cell.Leakage.power ~cell:hvt ()));
    case "leakage grows with the supply" (fun () ->
        let ps =
          Array.map
            (fun v -> Sram_cell.Leakage.power ~vdd:v ~cell:lvt ())
            [| 0.15; 0.25; 0.35; 0.45 |]
        in
        check_increasing ~strict:true "p(vdd)" ps);
    case "scaled LVT still leaks more than nominal HVT (paper: 5x)" (fun () ->
        let lvt_100 = Sram_cell.Leakage.power ~vdd:0.100 ~cell:lvt () in
        let hvt_450 = Sram_cell.Leakage.power ~cell:hvt () in
        check_within "ratio" ~lo:3.0 ~hi:7.0 (lvt_100 /. hvt_450));
    case "leakage is positive under assist rails too" (fun () ->
        let p =
          Sram_cell.Leakage.power_at_condition ~cell:hvt
            (Sram_cell.Sram6t.read ~vddc:0.55 ~vssc:(-0.24) ())
        in
        Alcotest.(check bool) "positive" true (p > 0.0)) ]

let montecarlo_tests =
  [ case "sampling is deterministic per seed" (fun () ->
        let run () =
          Sram_cell.Montecarlo.sample_margins ~points:31 ~seed:21 ~n:5
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
            ~read_condition:(Sram_cell.Sram6t.read ~vddc:0.55 ())
            ~write_condition:(Sram_cell.Sram6t.write0 ~vwl:0.55 ())
            ()
        in
        let a = run () and b = run () in
        Array.iteri
          (fun i x -> check_close "same rsnm" x b.Sram_cell.Montecarlo.rsnm.(i))
          a.Sram_cell.Montecarlo.rsnm);
    case "means sit near the nominal margins" (fun () ->
        let s =
          Sram_cell.Montecarlo.sample_margins ~points:31 ~sigma_vt:0.010 ~seed:22
            ~n:12
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
            ~read_condition:(Sram_cell.Sram6t.read ~vddc:0.55 ())
            ~write_condition:(Sram_cell.Sram6t.write0 ~vwl:0.55 ())
            ()
        in
        let summary = Sram_cell.Montecarlo.summarize ~k:3.0 s in
        let nominal_rsnm =
          Sram_cell.Margins.read_snm ~points:31 ~cell:hvt
            (Sram_cell.Sram6t.read ~vddc:0.55 ())
        in
        check_close ~tol:0.2 "mu rsnm" nominal_rsnm summary.Sram_cell.Montecarlo.mu_rsnm;
        Alcotest.(check bool) "variation spreads" true
          (summary.Sram_cell.Montecarlo.sigma_rsnm > 0.0));
    case "k-sigma constraint is stricter for larger k" (fun () ->
        let s =
          Sram_cell.Montecarlo.sample_margins ~points:31 ~sigma_vt:0.015 ~seed:23
            ~n:10
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
            ~read_condition:(Sram_cell.Sram6t.read ~vddc:0.55 ())
            ~write_condition:(Sram_cell.Sram6t.write0 ~vwl:0.55 ())
            ()
        in
        let w1 = (Sram_cell.Montecarlo.summarize ~k:1.0 s).Sram_cell.Montecarlo.worst_mu_minus_k_sigma in
        let w6 = (Sram_cell.Montecarlo.summarize ~k:6.0 s).Sram_cell.Montecarlo.worst_mu_minus_k_sigma in
        Alcotest.(check bool) "k=6 stricter" true (w6 < w1));
    case "yield fraction is a fraction" (fun () ->
        let s =
          Sram_cell.Montecarlo.sample_margins ~points:31 ~seed:24 ~n:8
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
            ~read_condition:(Sram_cell.Sram6t.read ~vddc:0.55 ())
            ~write_condition:(Sram_cell.Sram6t.write0 ~vwl:0.55 ())
            ()
        in
        check_within "fraction" ~lo:0.0 ~hi:1.0
          (Sram_cell.Montecarlo.yield_fraction ~delta:0.10 s)) ]

let weak_cell =
  (* +3 sigma pull-down, -3 sigma access: the classic read-unstable tail. *)
  { hvt with
    Finfet.Variation.pull_down_l =
      Finfet.Device.with_vt (Finfet.Library.nfet lib Finfet.Library.Hvt) 0.47;
    Finfet.Variation.access_l =
      Finfet.Device.with_vt (Finfet.Library.nfet lib Finfet.Library.Hvt) 0.23 }

let dynamic_tests =
  [ case "a statically bistable cell survives any pulse" (fun () ->
        Alcotest.(check bool) "none" true
          (Sram_cell.Dynamic_stability.critical_pulse ~cell:hvt
             ~condition:(Sram_cell.Sram6t.read ()) ()
           = None));
    case "a statically unstable tail cell has a finite critical pulse" (fun () ->
        let cond = Sram_cell.Sram6t.read () in
        Alcotest.(check bool) "statically dead" true
          (Sram_cell.Margins.read_snm ~points:41 ~cell:weak_cell cond < 0.01);
        match Sram_cell.Dynamic_stability.critical_pulse ~cell:weak_cell ~condition:cond () with
        | Some p -> check_within "pulse" ~lo:2e-12 ~hi:150e-12 p
        | None -> Alcotest.fail "expected a finite critical pulse");
    case "survival is monotone in the pulse width" (fun () ->
        let cond = Sram_cell.Sram6t.read () in
        match Sram_cell.Dynamic_stability.critical_pulse ~cell:weak_cell ~condition:cond () with
        | None -> Alcotest.fail "expected instability"
        | Some p ->
          Alcotest.(check bool) "short ok" true
            (Sram_cell.Dynamic_stability.survives_pulse ~cell:weak_cell
               ~condition:cond ~pulse:(0.5 *. p) ());
          Alcotest.(check bool) "long flips" false
            (Sram_cell.Dynamic_stability.survives_pulse ~cell:weak_cell
               ~condition:cond ~pulse:(3.0 *. p) ()));
    case "the Vdd-boost assist extends the critical pulse" (fun () ->
        let base =
          Sram_cell.Dynamic_stability.critical_pulse ~cell:weak_cell
            ~condition:(Sram_cell.Sram6t.read ()) ()
        in
        let boosted =
          Sram_cell.Dynamic_stability.critical_pulse ~cell:weak_cell
            ~condition:(Sram_cell.Sram6t.read ~vddc:0.55 ()) ()
        in
        match (base, boosted) with
        | Some b, Some a -> Alcotest.(check bool) "longer" true (a > b)
        | Some _, None -> () (* boost made it statically stable: even better *)
        | None, _ -> Alcotest.fail "expected base instability") ]

let () =
  Alcotest.run "sram_cell"
    [ ("conditions", condition_tests);
      ("state", state_tests);
      ("butterfly", butterfly_tests);
      ("write", write_tests);
      ("dynamics", dynamics_tests);
      ("leakage", leakage_tests);
      ("dynamic", dynamic_tests);
      ("montecarlo", montecarlo_tests) ]
