(* Tests of the functional SRAM macro: memory semantics, cost accounting
   that reconciles with the analytical model, and trace playback. *)

open Testutil

let make ?(capacity = 1024 * 8) () =
  Sram_macro.Macro.create_optimized ~space:Opt.Space.reduced
    ~capacity_bits:capacity ~flavor:Finfet.Library.Hvt ~method_:Opt.Space.M2 ()

let shared = make ()

let functional_tests =
  [ case "write then read returns the data" (fun () ->
        let m = shared in
        ignore (Sram_macro.Macro.write m ~addr:3 ~data:0x123456789ABCDEFL);
        let r = Sram_macro.Macro.read m ~addr:3 in
        Alcotest.(check int64) "roundtrip" 0x123456789ABCDEFL r.Sram_macro.Macro.data);
    case "distinct addresses hold distinct data" (fun () ->
        let m = shared in
        ignore (Sram_macro.Macro.write m ~addr:0 ~data:1L);
        ignore (Sram_macro.Macro.write m ~addr:1 ~data:2L);
        ignore
          (Sram_macro.Macro.write m
             ~addr:(Sram_macro.Macro.words m - 1)
             ~data:3L);
        Alcotest.(check int64) "a0" 1L (Sram_macro.Macro.read m ~addr:0).Sram_macro.Macro.data;
        Alcotest.(check int64) "a1" 2L (Sram_macro.Macro.read m ~addr:1).Sram_macro.Macro.data;
        Alcotest.(check int64) "last" 3L
          (Sram_macro.Macro.read m ~addr:(Sram_macro.Macro.words m - 1)).Sram_macro.Macro.data);
    case "data survives other traffic" (fun () ->
        let m = shared in
        ignore (Sram_macro.Macro.write m ~addr:7 ~data:0x55L);
        for addr = 20 to 40 do
          ignore (Sram_macro.Macro.write m ~addr ~data:0xFFL)
        done;
        Sram_macro.Macro.idle m;
        Alcotest.(check int64) "retained" 0x55L
          (Sram_macro.Macro.read m ~addr:7).Sram_macro.Macro.data);
    case "writes mask to the word width" (fun () ->
        let m = shared in
        let r = Sram_macro.Macro.write m ~addr:2 ~data:(-1L) in
        let bits = Sram_macro.Macro.word_bits m in
        if bits < 64 then
          Alcotest.(check int64) "masked"
            Int64.(sub (shift_left 1L bits) 1L)
            r.Sram_macro.Macro.data
        else Alcotest.(check int64) "full" (-1L) r.Sram_macro.Macro.data);
    case "out-of-range addresses are rejected" (fun () ->
        let m = shared in
        Alcotest.(check bool) "raises" true
          (try ignore (Sram_macro.Macro.read m ~addr:(Sram_macro.Macro.words m)); false
           with Invalid_argument _ -> true);
        Alcotest.(check bool) "negative" true
          (try ignore (Sram_macro.Macro.read m ~addr:(-1)); false
           with Invalid_argument _ -> true));
    case "power-up contents are reproducible per seed" (fun () ->
        let a = make () and b = make () in
        Alcotest.(check int64) "same garbage"
          (Sram_macro.Macro.read a ~addr:5).Sram_macro.Macro.data
          (Sram_macro.Macro.read b ~addr:5).Sram_macro.Macro.data);
    case "capacity bookkeeping" (fun () ->
        let m = shared in
        Alcotest.(check int) "bits" (1024 * 8) (Sram_macro.Macro.capacity_bits m);
        Alcotest.(check int) "words x width" (1024 * 8)
          (Sram_macro.Macro.words m * Sram_macro.Macro.word_bits m)) ]

let accounting_tests =
  [ case "per-op energies accumulate exactly" (fun () ->
        let m = make () in
        Sram_macro.Macro.reset_stats m;
        let e1 = (Sram_macro.Macro.write m ~addr:0 ~data:9L).Sram_macro.Macro.energy in
        let e2 = (Sram_macro.Macro.read m ~addr:0).Sram_macro.Macro.energy in
        let s = Sram_macro.Macro.stats m in
        check_close "sum" (e1 +. e2) s.Sram_macro.Macro.total_energy;
        Alcotest.(check int) "reads" 1 s.Sram_macro.Macro.reads;
        Alcotest.(check int) "writes" 1 s.Sram_macro.Macro.writes);
    case "idle cycles cost leakage only" (fun () ->
        let m = make () in
        Sram_macro.Macro.reset_stats m;
        Sram_macro.Macro.idle m;
        let s = Sram_macro.Macro.stats m in
        check_close_abs "no switching" 0.0 s.Sram_macro.Macro.switching_energy;
        Alcotest.(check bool) "leaks" true (s.Sram_macro.Macro.leakage_energy > 0.0));
    case "leakage accrues as P_leak x elapsed" (fun () ->
        let m = make () in
        Sram_macro.Macro.reset_stats m;
        for _ = 1 to 10 do
          Sram_macro.Macro.idle m
        done;
        ignore (Sram_macro.Macro.read m ~addr:1);
        let s = Sram_macro.Macro.stats m in
        (* elapsed and leakage must be proportional with the array's total
           leakage power as the constant. *)
        let p = s.Sram_macro.Macro.leakage_energy /. s.Sram_macro.Macro.elapsed in
        let per = Array_model.Periphery.shared ~cell_flavor:Finfet.Library.Hvt in
        check_close ~tol:1e-9 "power"
          (float_of_int (Sram_macro.Macro.capacity_bits m)
           *. per.Array_model.Periphery.p_leak_cell)
          p);
    case "worst delay tracks the slowest op" (fun () ->
        let m = make () in
        Sram_macro.Macro.reset_stats m;
        let r = Sram_macro.Macro.read m ~addr:0 in
        let w = Sram_macro.Macro.write m ~addr:0 ~data:0L in
        let s = Sram_macro.Macro.stats m in
        check_close "worst"
          (max r.Sram_macro.Macro.delay w.Sram_macro.Macro.delay)
          s.Sram_macro.Macro.worst_op_delay);
    case "reset clears counters but not contents" (fun () ->
        let m = make () in
        ignore (Sram_macro.Macro.write m ~addr:11 ~data:77L);
        Sram_macro.Macro.reset_stats m;
        let s = Sram_macro.Macro.stats m in
        Alcotest.(check int) "zero ops" 0 (s.Sram_macro.Macro.reads + s.Sram_macro.Macro.writes);
        Alcotest.(check int64) "content kept" 77L
          (Sram_macro.Macro.read m ~addr:11).Sram_macro.Macro.data) ]

let trace_tests =
  [ case "trace playback counts match the trace" (fun () ->
        let m = make () in
        let profile = Workload.Trace.Uniform { activity = 0.5; read_fraction = 0.5 } in
        let trace = Workload.Trace.generate ~seed:9 profile ~length:2000 in
        let summary = Workload.Trace.characterize trace in
        let s = Sram_macro.Macro.run_trace m trace in
        Alcotest.(check int) "reads" summary.Workload.Trace.reads s.Sram_macro.Macro.reads;
        Alcotest.(check int) "writes" summary.Workload.Trace.writes s.Sram_macro.Macro.writes;
        Alcotest.(check int) "idles" summary.Workload.Trace.idles s.Sram_macro.Macro.idle_cycles);
    case "busier traces burn more switching energy" (fun () ->
        let m = make () in
        let quiet =
          Workload.Trace.generate ~seed:9
            (Workload.Trace.Uniform { activity = 0.1; read_fraction = 0.5 })
            ~length:2000
        in
        let busy =
          Workload.Trace.generate ~seed:9
            (Workload.Trace.Uniform { activity = 0.9; read_fraction = 0.5 })
            ~length:2000
        in
        let sq = Sram_macro.Macro.run_trace m quiet in
        let sb = Sram_macro.Macro.run_trace m busy in
        Alcotest.(check bool) "busy > quiet" true
          (sb.Sram_macro.Macro.switching_energy > 3.0 *. sq.Sram_macro.Macro.switching_energy)) ]

let () =
  Alcotest.run "macro"
    [ ("functional", functional_tests);
      ("accounting", accounting_tests);
      ("trace", trace_tests) ]
