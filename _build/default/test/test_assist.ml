(* Tests of the assist-technique layer: condition construction, sweep
   behaviour (the Figure 3 / Figure 5 trends), and crossing extraction. *)

open Testutil

let technique_tests =
  [ case "read conditions apply the right rail" (fun () ->
        let vdd = Finfet.Tech.vdd_nominal in
        let boost = Assist.Technique.read_condition Assist.Technique.Vdd_boost ~voltage:0.6 in
        check_close "vddc" 0.6 boost.Sram_cell.Sram6t.vddc;
        check_close "wl stays" vdd boost.Sram_cell.Sram6t.vwl;
        let gnd = Assist.Technique.read_condition Assist.Technique.Negative_gnd ~voltage:(-0.2) in
        check_close "vssc" (-0.2) gnd.Sram_cell.Sram6t.vssc;
        check_close "vddc stays" vdd gnd.Sram_cell.Sram6t.vddc;
        let ud = Assist.Technique.read_condition Assist.Technique.Wl_underdrive ~voltage:0.3 in
        check_close "vwl" 0.3 ud.Sram_cell.Sram6t.vwl);
    case "write conditions apply the right rail" (fun () ->
        let od = Assist.Technique.write_condition Assist.Technique.Wl_overdrive ~voltage:0.55 in
        check_close "vwl" 0.55 od.Sram_cell.Sram6t.vwl;
        check_close_abs "bl" 0.0 od.Sram_cell.Sram6t.vbl;
        let nb = Assist.Technique.write_condition Assist.Technique.Negative_bl ~voltage:(-0.1) in
        check_close "vbl" (-0.1) nb.Sram_cell.Sram6t.vbl;
        check_close "vwl nominal" Finfet.Tech.vdd_nominal nb.Sram_cell.Sram6t.vwl);
    case "default ranges span the paper's sweeps" (fun () ->
        let boost = Assist.Technique.default_read_range Assist.Technique.Vdd_boost in
        check_close "start" 0.450 boost.(0);
        check_close "end" 0.700 boost.(Array.length boost - 1);
        let gnd = Assist.Technique.default_read_range Assist.Technique.Negative_gnd in
        check_close_abs "start" 0.0 gnd.(0);
        check_close "end" (-0.240) gnd.(Array.length gnd - 1));
    case "names are human readable" (fun () ->
        Alcotest.(check string) "neggnd" "negative Gnd"
          (Assist.Technique.read_assist_name Assist.Technique.Negative_gnd);
        Alcotest.(check string) "wlod" "WL overdrive"
          (Assist.Technique.write_assist_name Assist.Technique.Wl_overdrive)) ]

let sweep_tests =
  [ case "negative Gnd: current up, BL delay down, RSNM up" (fun () ->
        let points =
          Assist.Sweep.read_sweep ~points:41 ~flavor:Finfet.Library.Hvt
            ~technique:Assist.Technique.Negative_gnd
            ~voltages:[| 0.0; -0.08; -0.16; -0.24 |] ()
        in
        let currents = Array.map (fun p -> p.Assist.Sweep.read_current) points in
        let delays = Array.map (fun p -> p.Assist.Sweep.bl_delay) points in
        let rsnms = Array.map (fun p -> p.Assist.Sweep.rsnm) points in
        check_increasing ~strict:true "current" currents;
        check_decreasing ~strict:true "delay" delays;
        check_increasing "rsnm" rsnms);
    case "WL underdrive: RSNM up, delay explodes" (fun () ->
        let points =
          Assist.Sweep.read_sweep ~points:41 ~flavor:Finfet.Library.Hvt
            ~technique:Assist.Technique.Wl_underdrive
            ~voltages:[| 0.30; 0.38; 0.45 |] ()
        in
        check_decreasing ~strict:true "rsnm falls as wl rises"
          (Array.map (fun p -> p.Assist.Sweep.rsnm) points);
        Alcotest.(check bool) "delay at 300 mV is >5x nominal" true
          (points.(0).Assist.Sweep.bl_delay
           > 5.0 *. points.(2).Assist.Sweep.bl_delay));
    case "write sweep: overdrive raises WM and shortens the write" (fun () ->
        let points =
          Assist.Sweep.write_sweep ~flavor:Finfet.Library.Hvt
            ~technique:Assist.Technique.Wl_overdrive
            ~voltages:[| 0.45; 0.54; 0.63 |] ()
        in
        check_increasing ~strict:true "wm"
          (Array.map (fun p -> p.Assist.Sweep.wm) points);
        check_decreasing ~strict:true "delay"
          (Array.map (fun p -> p.Assist.Sweep.cell_write_delay) points));
    case "bl_delay_of_current is C dV / I" (fun () ->
        let d = Assist.Sweep.bl_delay_of_current ~flavor:Finfet.Library.Hvt 10e-6 in
        let lib = Lazy.force Finfet.Library.default in
        let dcaps =
          Array_model.Caps.device_caps_of
            ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
            ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
            ()
        in
        let c = Array_model.Caps.bl dcaps Assist.Sweep.reference_column in
        check_close "cdv/i" (c *. 0.12 /. 10e-6) d);
    case "zero current means infinite delay" (fun () ->
        Alcotest.(check bool) "inf" true
          (Assist.Sweep.bl_delay_of_current ~flavor:Finfet.Library.Hvt 0.0 = infinity));
    case "reference column is 64 rows" (fun () ->
        Alcotest.(check int) "rows" 64 Assist.Sweep.reference_column.Array_model.Geometry.nr) ]

let crossing_tests =
  [ case "crossing interpolates linearly" (fun () ->
        let points = [| (0.0, 0.0); (1.0, 10.0) |] in
        match Assist.Sweep.crossing_voltage ~points ~threshold:2.5 with
        | Some v -> check_close "quarter" 0.25 v
        | None -> Alcotest.fail "no crossing");
    case "crossing works on decreasing series" (fun () ->
        let points = [| (0.0, 10.0); (1.0, 0.0) |] in
        match Assist.Sweep.crossing_voltage ~points ~threshold:5.0 with
        | Some v -> check_close "half" 0.5 v
        | None -> Alcotest.fail "no crossing");
    case "no crossing returns None" (fun () ->
        Alcotest.(check bool) "none" true
          (Assist.Sweep.crossing_voltage ~points:[| (0.0, 1.0); (1.0, 2.0) |]
             ~threshold:5.0
           = None));
    case "first crossing wins" (fun () ->
        let points = [| (0.0, 0.0); (1.0, 10.0); (2.0, 0.0); (3.0, 10.0) |] in
        match Assist.Sweep.crossing_voltage ~points ~threshold:5.0 with
        | Some v -> check_close "first" 0.5 v
        | None -> Alcotest.fail "no crossing") ]

let () =
  Alcotest.run "assist"
    [ ("technique", technique_tests);
      ("sweep", sweep_tests);
      ("crossing", crossing_tests) ]
