(* PVT margin signoff of the co-optimized design.

   The paper optimizes at the nominal corner; a design team would not tape
   out without checking the chosen assist levels across process corners,
   temperature, and local mismatch.  This example runs that flow for the
   4KB 6T-HVT-M2 optimum: five global corners x three temperatures for the
   static margins, plus a Monte Carlo mu - k sigma summary at the worst
   corner.

   Run with: dune exec examples/margin_signoff.exe *)

let delta = Finfet.Tech.min_margin

let () =
  (* The design under signoff: the co-optimized 4KB HVT array. *)
  let o =
    Sram_edp.Framework.optimize ~capacity_bits:(4096 * 8)
      ~config:{ Sram_edp.Framework.flavor = Finfet.Library.Hvt;
                method_ = Opt.Space.M2 }
      ()
  in
  let a = Sram_edp.Framework.assist o in
  let vddc = a.Array_model.Components.vddc in
  let vwl = a.Array_model.Components.vwl in
  let vssc = a.Array_model.Components.vssc in
  Printf.printf "Design under signoff: 4KB 6T-HVT-M2, V_DDC=%s V_SSC=%s V_WL=%s\n"
    (Sram_edp.Units.mv vddc) (Sram_edp.Units.mv vssc) (Sram_edp.Units.mv vwl);

  let lib = Lazy.force Finfet.Library.default in
  let nfet0 = Finfet.Library.nfet lib Finfet.Library.Hvt in
  let pfet0 = Finfet.Library.pfet lib Finfet.Library.Hvt in

  (* Corners x temperature sweep of the three static margins. *)
  let table =
    Sram_edp.Report.create
      ~columns:[ "corner"; "T"; "HSNM"; "RSNM"; "WM"; "min margin"; "verdict" ]
  in
  let worst = ref (Finfet.Corners.TT, 25.0, infinity) in
  List.iter
    (fun corner ->
      List.iter
        (fun celsius ->
          let derate d =
            Finfet.Thermal.at_temperature ~celsius (Finfet.Corners.apply corner d)
          in
          let cell =
            Finfet.Variation.nominal_cell ~nfet:(derate nfet0) ~pfet:(derate pfet0)
          in
          let hsnm =
            Sram_cell.Margins.hold_snm ~points:41 ~cell Finfet.Tech.vdd_nominal
          in
          let rsnm =
            Sram_cell.Margins.read_snm ~points:41 ~cell
              (Sram_cell.Sram6t.read ~vddc ~vssc ())
          in
          let wm =
            Sram_cell.Margins.write_margin ~cell (Sram_cell.Sram6t.write0 ~vwl ())
          in
          let min_margin = min hsnm (min rsnm wm) in
          let _, _, worst_margin = !worst in
          if min_margin < worst_margin then worst := (corner, celsius, min_margin);
          Sram_edp.Report.add_row table
            [ Finfet.Corners.name corner;
              Printf.sprintf "%.0f C" celsius;
              Sram_edp.Units.mv hsnm;
              Sram_edp.Units.mv rsnm;
              Sram_edp.Units.mv wm;
              Sram_edp.Units.mv min_margin;
              (if min_margin >= delta then "pass"
               else if min_margin >= 0.8 *. delta then "MARGINAL"
               else "FAIL") ])
        [ 25.0; 85.0; 125.0 ])
    Finfet.Corners.all;
  Sram_edp.Report.print
    ~title:
      (Printf.sprintf "Static margins across PVT (requirement: %s at nominal conditions)"
         (Sram_edp.Units.mv delta))
    table;

  (* Monte Carlo at the worst static corner. *)
  let corner, celsius, margin = !worst in
  Printf.printf
    "\nWorst static point: %s corner at %.0f C (min margin %s) — running local-mismatch MC there.\n"
    (Finfet.Corners.name corner) celsius (Sram_edp.Units.mv margin);
  let derate d =
    Finfet.Thermal.at_temperature ~celsius (Finfet.Corners.apply corner d)
  in
  let samples =
    Sram_cell.Montecarlo.sample_margins ~points:31 ~seed:404 ~n:30
      ~nfet:(derate nfet0) ~pfet:(derate pfet0)
      ~read_condition:(Sram_cell.Sram6t.read ~vddc ~vssc ())
      ~write_condition:(Sram_cell.Sram6t.write0 ~vwl ())
      ()
  in
  let passes_k k =
    (Sram_cell.Montecarlo.summarize ~k samples).Sram_cell.Montecarlo
      .worst_mu_minus_k_sigma >= 0.0
  in
  List.iter
    (fun k ->
      let s = Sram_cell.Montecarlo.summarize ~k samples in
      Printf.printf "  mu - %.0f sigma (worst of three margins): %s -> %s\n" k
        (Sram_edp.Units.mv s.Sram_cell.Montecarlo.worst_mu_minus_k_sigma)
        (if passes_k k then "pass" else "FAIL"))
    [ 3.0; 6.0 ];
  if passes_k 3.0 then
    Printf.printf
      "\nVerdict: the nominal-corner optimization survives its worst corner at\n\
       3 sigma.\n"
  else begin
    Printf.printf
      "\nVerdict: the nominal-corner assist levels do NOT survive the %s corner\n\
       under mismatch — exactly why production flows re-solve the assist\n\
       voltages per corner.  Re-solving the pins at that corner:\n"
      (Finfet.Corners.name corner);
    let fixed =
      Opt.Yield.solve ~corner ~celsius ~flavor:Finfet.Library.Hvt ()
    in
    Printf.printf
      "  corner-aware pins: V_DDC >= %s, V_WL >= %s (nominal-corner pins were %s / %s)\n"
      (Sram_edp.Units.mv fixed.Opt.Yield.vddc_min)
      (Sram_edp.Units.mv fixed.Opt.Yield.vwl_min)
      (Sram_edp.Units.mv vddc) (Sram_edp.Units.mv vwl);
    (* Confirm the re-solved write level restores the margin. *)
    let derated =
      Finfet.Variation.nominal_cell
        ~nfet:(derate nfet0) ~pfet:(derate pfet0)
    in
    let wm_fixed =
      Sram_cell.Margins.write_margin ~cell:derated
        (Sram_cell.Sram6t.write0 ~vwl:fixed.Opt.Yield.vwl_min ())
    in
    Printf.printf "  WM at the %s corner with the re-solved V_WL: %s (%s)\n"
      (Finfet.Corners.name corner) (Sram_edp.Units.mv wm_fixed)
      (if wm_fixed >= delta then "pass" else "still short — raise further")
  end
