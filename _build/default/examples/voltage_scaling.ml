(* Supply-voltage scaling study (the Figure 2 question):

   How far can each cell flavor scale Vdd before retention fails, and
   what does the leakage-power landscape look like along the way?  The
   paper's argument — "lowering Vdd saves less than switching to HVT
   devices" — is reproduced quantitatively here.

   Run with: dune exec examples/voltage_scaling.exe *)

let () =
  let vdds = Array.init 15 (fun i -> 0.100 +. (0.025 *. float_of_int i)) in
  let hsnm = Sram_edp.Experiments.fig2a_hsnm ~vdds () in
  let leak = Sram_edp.Experiments.fig2b_leakage ~vdds () in
  let table =
    Sram_edp.Report.create
      ~columns:[ "Vdd"; "HSNM/Vdd LVT"; "HSNM/Vdd HVT"; "P_leak LVT"; "P_leak HVT" ]
  in
  Array.iteri
    (fun i (h : Sram_edp.Experiments.voltage_point) ->
      let l = leak.(i) in
      let pct x = Printf.sprintf "%.0f%%" (100.0 *. x /. h.Sram_edp.Experiments.vdd) in
      Sram_edp.Report.add_row table
        [ Sram_edp.Units.mv h.Sram_edp.Experiments.vdd;
          pct h.Sram_edp.Experiments.lvt;
          pct h.Sram_edp.Experiments.hvt;
          Sram_edp.Units.nw l.Sram_edp.Experiments.lvt;
          Sram_edp.Units.nw l.Sram_edp.Experiments.hvt ])
    hsnm;
  Sram_edp.Report.print ~title:"Voltage scaling: retention margin and leakage" table;
  (* Minimum retention-safe Vdd per flavor: the smallest supply whose HSNM
     still exceeds 35% of itself. *)
  let min_safe pick =
    let rec scan i =
      if i >= Array.length hsnm then None
      else if pick hsnm.(i) >= 0.35 *. hsnm.(i).Sram_edp.Experiments.vdd then
        Some hsnm.(i).Sram_edp.Experiments.vdd
      else scan (i + 1)
    in
    scan 0
  in
  let show label = function
    | Some v -> Printf.printf "%s retains data down to ~%s\n" label (Sram_edp.Units.mv v)
    | None -> Printf.printf "%s never meets the retention rule in this range\n" label
  in
  show "6T-LVT" (min_safe (fun p -> p.Sram_edp.Experiments.lvt));
  show "6T-HVT" (min_safe (fun p -> p.Sram_edp.Experiments.hvt));
  (* The paper's punchline: compare scaled-LVT leakage against nominal-HVT
     leakage. *)
  let lvt_at vdd =
    let cell =
      let lib = Lazy.force Finfet.Library.default in
      Finfet.Variation.nominal_cell
        ~nfet:(Finfet.Library.nfet lib Finfet.Library.Lvt)
        ~pfet:(Finfet.Library.pfet lib Finfet.Library.Lvt)
    in
    Sram_cell.Leakage.power ~vdd ~cell ()
  in
  let hvt_nominal =
    let lib = Lazy.force Finfet.Library.default in
    let cell =
      Finfet.Variation.nominal_cell
        ~nfet:(Finfet.Library.nfet lib Finfet.Library.Hvt)
        ~pfet:(Finfet.Library.pfet lib Finfet.Library.Hvt)
    in
    Sram_cell.Leakage.power ~cell ()
  in
  Printf.printf
    "\n6T-LVT at 100 mV still leaks %.1fx more than 6T-HVT at nominal 450 mV (paper: 5x).\n"
    (lvt_at 0.100 /. hvt_nominal)
