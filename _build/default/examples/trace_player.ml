(* Trace player: drive a co-optimized SRAM macro with the synthetic
   workload suite and report what the memory actually consumed.

   This is the integration the library exists for — a system-level
   simulator instantiates the macro, issues reads/writes, and gets
   functionally correct data back with per-operation delay and energy.

   Run with: dune exec examples/trace_player.exe *)

let () =
  let macro =
    Sram_macro.Macro.create_optimized ~capacity_bits:(4096 * 8)
      ~flavor:Finfet.Library.Hvt ~method_:Opt.Space.M2 ()
  in
  Printf.printf "Macro: %s, %d words x %d bits\n"
    (Sram_edp.Units.capacity (Sram_macro.Macro.capacity_bits macro))
    (Sram_macro.Macro.words macro)
    (Sram_macro.Macro.word_bits macro);

  (* Functional check: the memory is a memory. *)
  let r1 = Sram_macro.Macro.write macro ~addr:17 ~data:0xDEADBEEFL in
  let r2 = Sram_macro.Macro.read macro ~addr:17 in
  Printf.printf "write/read roundtrip @17: %Lx -> %Lx (read costs %s, %s)\n\n"
    r1.Sram_macro.Macro.data r2.Sram_macro.Macro.data
    (Sram_edp.Units.ps r2.Sram_macro.Macro.delay)
    (Sram_edp.Units.fj r2.Sram_macro.Macro.energy);

  (* Play the workload suite. *)
  let table =
    Sram_edp.Report.create
      ~columns:
        [ "workload"; "ops (r/w/idle)"; "time"; "switching"; "leakage";
          "total"; "avg power" ]
  in
  List.iter
    (fun (name, profile) ->
      let trace = Workload.Trace.generate ~seed:42 profile ~length:20_000 in
      let s = Sram_macro.Macro.run_trace macro trace in
      Sram_edp.Report.add_row table
        [ name;
          Printf.sprintf "%d/%d/%d" s.Sram_macro.Macro.reads
            s.Sram_macro.Macro.writes s.Sram_macro.Macro.idle_cycles;
          Printf.sprintf "%.2f us" (s.Sram_macro.Macro.elapsed *. 1e6);
          Printf.sprintf "%.2f pJ" (s.Sram_macro.Macro.switching_energy *. 1e12);
          Printf.sprintf "%.2f pJ" (s.Sram_macro.Macro.leakage_energy *. 1e12);
          Printf.sprintf "%.2f pJ" (s.Sram_macro.Macro.total_energy *. 1e12);
          Printf.sprintf "%.1f uW"
            (s.Sram_macro.Macro.total_energy /. s.Sram_macro.Macro.elapsed *. 1e6) ])
    Workload.Trace.named_profiles;
  Sram_edp.Report.print ~title:"20,000-cycle traces on the 4KB 6T-HVT-M2 macro" table;
  print_endline
    "\nOn the low-activity trace leakage is already a quarter of the HVT\n\
     macro's energy; with LVT cells that term would be 20x larger and\n\
     dominate everything — which is the paper's point."
