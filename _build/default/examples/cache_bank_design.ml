(* Designing the data banks of a 32KB L1 cache.

   Scenario: an embedded SoC needs a 32KB L1 data cache built from four
   8KB SRAM banks, reading a 64-bit word per access.  The team must pick
   the cell flavor and voltage-pin budget, justify them against a latency
   budget, and know what the energy-optimal fallback would cost.  This is
   the workload the paper's introduction motivates: a capacity regime
   where leakage dominates and HVT cells pay off.

   Run with: dune exec examples/cache_bank_design.exe *)

let bank_bits = 8 * 1024 * 8
let latency_budget = 160e-12 (* per-bank access budget at the L1 pipeline *)

let metrics = Sram_edp.Framework.metrics

let () =
  Printf.printf "L1 cache study: 4 banks x %s, W = 64 bits, budget %s/bank\n\n"
    (Sram_edp.Units.capacity bank_bits) (Sram_edp.Units.ps latency_budget);
  (* Step 1: optimize every (flavor, method) configuration for one bank. *)
  let results =
    List.map
      (fun config ->
        (config, Sram_edp.Framework.optimize ~capacity_bits:bank_bits ~config ()))
      Sram_edp.Framework.all_configs
  in
  let table =
    Sram_edp.Report.create
      ~columns:[ "config"; "org"; "V_SSC"; "delay"; "energy"; "EDP"; "in budget" ]
  in
  List.iter
    (fun (config, o) ->
      let g = Sram_edp.Framework.geometry o in
      let a = Sram_edp.Framework.assist o in
      let m = metrics o in
      Sram_edp.Report.add_row table
        [ Sram_edp.Framework.config_name config;
          Printf.sprintf "%dx%d" g.Array_model.Geometry.nr g.Array_model.Geometry.nc;
          Sram_edp.Units.mv a.Array_model.Components.vssc;
          Sram_edp.Units.ps m.Array_model.Array_eval.d_array;
          Sram_edp.Units.fj m.Array_model.Array_eval.e_total;
          Printf.sprintf "%.3g Js" m.Array_model.Array_eval.edp;
          (if m.Array_model.Array_eval.d_array <= latency_budget then "yes" else "NO") ])
    results;
  Sram_edp.Report.print ~title:"Per-bank optima" table;
  (* Step 2: among configurations meeting the latency budget, pick the
     lowest-energy one; the whole-cache numbers follow (4 banks leak, one
     is active per access under this interleaving). *)
  let feasible =
    List.filter
      (fun (_, o) -> (metrics o).Array_model.Array_eval.d_array <= latency_budget)
      results
  in
  (match feasible with
   | [] -> print_endline "No configuration meets the latency budget."
   | _ :: _ ->
     let best =
       List.fold_left
         (fun (bc, bo) (c, o) ->
           if (metrics o).Array_model.Array_eval.e_total
              < (metrics bo).Array_model.Array_eval.e_total
           then (c, o) else (bc, bo))
         (List.hd feasible) (List.tl feasible)
     in
     let config, o = best in
     let m = metrics o in
     let idle_leak_per_bank =
       m.Array_model.Array_eval.e_leakage /. m.Array_model.Array_eval.d_array
     in
     Printf.printf "Pick: %s — active energy %s/access; idle banks leak %s each.\n"
       (Sram_edp.Framework.config_name config)
       (Sram_edp.Units.fj m.Array_model.Array_eval.e_total)
       (Sram_edp.Units.si idle_leak_per_bank ^ "W"));
  (* Step 3: show the delay-energy Pareto front of the winning flavor so
     the architect can see what a tighter or looser budget would buy. *)
  let env =
    Array_model.Array_eval.make_env ~cell_flavor:Finfet.Library.Hvt ()
  in
  let _, all =
    Opt.Exhaustive.search_all ~space:Opt.Space.reduced ~env
      ~capacity_bits:bank_bits ~method_:Opt.Space.M2 ()
  in
  let front = Opt.Pareto.front all in
  let front_table =
    Sram_edp.Report.create ~columns:[ "delay"; "energy"; "org"; "V_SSC"; "knee" ]
  in
  let knee = Opt.Pareto.knee all in
  let is_knee c = match knee with Some k -> k == c | None -> false in
  let shown =
    List.filteri (fun i c -> i mod 3 = 0 || is_knee c) front
  in
  List.iter
    (fun (c : Opt.Exhaustive.candidate) ->
      let m = c.Opt.Exhaustive.metrics in
      let g = c.Opt.Exhaustive.geometry in
      Sram_edp.Report.add_row front_table
        [ Sram_edp.Units.ps m.Array_model.Array_eval.d_array;
          Sram_edp.Units.fj m.Array_model.Array_eval.e_total;
          Printf.sprintf "%dx%d" g.Array_model.Geometry.nr g.Array_model.Geometry.nc;
          Sram_edp.Units.mv c.Opt.Exhaustive.assist.Array_model.Components.vssc;
          (if is_knee c then "<-- knee" else "") ])
    shown;
  Sram_edp.Report.print
    ~title:"HVT-M2 delay-energy Pareto front (every 3rd point, reduced grid)"
    front_table
