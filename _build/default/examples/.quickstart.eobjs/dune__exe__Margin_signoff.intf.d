examples/margin_signoff.mli:
