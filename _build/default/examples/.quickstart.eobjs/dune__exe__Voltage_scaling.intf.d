examples/voltage_scaling.mli:
