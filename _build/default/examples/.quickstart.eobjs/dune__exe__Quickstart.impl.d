examples/quickstart.ml: Array_model Finfet Opt Printf Sram_edp
