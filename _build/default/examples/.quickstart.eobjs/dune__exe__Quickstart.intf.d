examples/quickstart.mli:
