examples/margin_signoff.ml: Array_model Finfet Lazy List Opt Printf Sram_cell Sram_edp
