examples/cache_bank_design.mli:
