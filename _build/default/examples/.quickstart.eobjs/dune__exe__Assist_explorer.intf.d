examples/assist_explorer.mli:
