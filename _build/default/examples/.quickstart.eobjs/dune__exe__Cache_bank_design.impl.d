examples/cache_bank_design.ml: Array_model Finfet List Opt Printf Sram_edp
