examples/assist_explorer.ml: Array Assist Finfet List Printf Sram_edp
