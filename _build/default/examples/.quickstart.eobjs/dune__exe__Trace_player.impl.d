examples/trace_player.ml: Finfet List Opt Printf Sram_edp Sram_macro Workload
