examples/voltage_scaling.ml: Array Finfet Lazy Printf Sram_cell Sram_edp
