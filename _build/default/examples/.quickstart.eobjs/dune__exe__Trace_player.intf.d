examples/trace_player.mli:
