(* Quickstart: co-optimize a 4KB SRAM array built from HVT cells with
   unrestricted assist voltage levels (the paper's best configuration),
   then compare it against the LVT baseline.

   Run with: dune exec examples/quickstart.exe *)

let () =
  let capacity_bits = 4096 * 8 in
  (* One call runs the whole flow: solve the minimum assist voltages that
     meet the cell yield rule, then exhaustively search the array
     organization and negative-Gnd level for minimum energy-delay
     product. *)
  let hvt =
    Sram_edp.Framework.optimize ~capacity_bits
      ~config:{ Sram_edp.Framework.flavor = Finfet.Library.Hvt;
                method_ = Opt.Space.M2 }
      ()
  in
  let lvt =
    Sram_edp.Framework.optimize ~capacity_bits
      ~config:{ Sram_edp.Framework.flavor = Finfet.Library.Lvt;
                method_ = Opt.Space.M2 }
      ()
  in
  let describe label o =
    let g = Sram_edp.Framework.geometry o in
    let a = Sram_edp.Framework.assist o in
    let m = Sram_edp.Framework.metrics o in
    Printf.printf "%s: %dx%d, N_pre=%d, N_wr=%d, V_SSC=%s -> D=%s E=%s EDP=%.3g Js\n"
      label g.Array_model.Geometry.nr g.Array_model.Geometry.nc
      g.Array_model.Geometry.n_pre g.Array_model.Geometry.n_wr
      (Sram_edp.Units.mv a.Array_model.Components.vssc)
      (Sram_edp.Units.ps m.Array_model.Array_eval.d_array)
      (Sram_edp.Units.fj m.Array_model.Array_eval.e_total)
      m.Array_model.Array_eval.edp
  in
  describe "6T-HVT-M2" hvt;
  describe "6T-LVT-M2" lvt;
  let edp o = (Sram_edp.Framework.metrics o).Array_model.Array_eval.edp in
  let delay o = (Sram_edp.Framework.metrics o).Array_model.Array_eval.d_array in
  Printf.printf
    "HVT cells with negative-Gnd assist cut the EDP by %.1f%% for a %.1f%% delay penalty.\n"
    (100.0 *. (1.0 -. (edp hvt /. edp lvt)))
    (100.0 *. ((delay hvt /. delay lvt) -. 1.0))
